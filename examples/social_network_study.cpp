/**
 * @file
 * Example: a characterization study of the Social Network, mirroring
 * how the paper uses the suite. Builds the full 36-microservice
 * application, drives it with the mixed query workload at increasing
 * load, and reports:
 *   - per-query-type latency (composePost vs readTimeline vs repost)
 *   - the per-microservice latency breakdown from distributed traces
 *   - the critical-path attribution at low vs high load (Sec 7)
 *
 *   $ ./build/examples/social_network_study
 */

#include <iostream>

#include "apps/social_network.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "trace/analysis.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

void
studyAtLoad(double qps)
{
    apps::WorldConfig config;
    config.workerServers = 5;
    apps::World world(config);
    const auto queries = apps::buildSocialNetwork(world);
    service::App &app = *world.app;

    workload::runLoad(app, qps, secToTicks(1.0), secToTicks(5.0),
                      workload::QueryMix::fromApp(app),
                      workload::UserPopulation::zipf(500, 0.9), 21);

    printBanner(std::cout, strCat("Social Network @ ", qps, " QPS"));

    // Query diversity (Sec 3.8): repost reads, prepends and
    // re-broadcasts, so it is the slowest class.
    TextTable queries_table({"query type", "share", "p50(ms)", "p99(ms)"});
    for (unsigned qt = 0; qt < app.queryTypes().size(); ++qt) {
        const auto &h = app.endToEndLatencyFor(qt);
        if (h.count() == 0)
            continue;
        queries_table.add(
            app.queryTypes()[qt].name,
            fmtDouble(100.0 * static_cast<double>(h.count()) /
                          static_cast<double>(app.completed()),
                      1) + "%",
            fmtDouble(ticksToMs(h.p50()), 2),
            fmtDouble(ticksToMs(h.p99()), 2));
    }
    queries_table.print(std::cout);
    (void)queries;

    // Critical path: which tiers own the end-to-end time?
    trace::TraceAnalysis analysis(app.traceStore());
    const auto critical = analysis.criticalPath();
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto &[svc, ns] : critical)
        ranked.emplace_back(ns, svc);
    std::sort(ranked.rbegin(), ranked.rend());
    std::cout << "top critical-path contributors (mean us/request):\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size());
         ++i)
        std::cout << "  " << ranked[i].second << ": "
                  << fmtDouble(ranked[i].first / 1000.0, 0) << " us\n";
}

} // namespace

int
main()
{
    // At low load the front-end dominates latency; at high load the
    // back-end storage tiers take over (Sec 7).
    studyAtLoad(200.0);
    studyAtLoad(1800.0);
    return 0;
}
