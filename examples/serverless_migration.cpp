/**
 * @file
 * Example: migrating an end-to-end service to a serverless platform
 * (Sec 7 / Fig 21). Takes the Banking System, rewrites it for
 * Lambda-style execution with S3 vs remote-memory state passing, and
 * prints the latency/cost trade-off against reserved containers.
 *
 *   $ ./build/examples/serverless_migration
 */

#include <iostream>

#include "apps/banking.hh"
#include "core/table.hh"
#include "serverless/platform.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

struct RunResult
{
    Tick p50, p95;
    double costPer10Min;
};

RunResult
run(bool lambda, serverless::StateStoreKind store)
{
    apps::WorldConfig config;
    config.workerServers = 5;
    apps::World world(config);
    apps::buildBanking(world);

    serverless::LambdaConfig lcfg;
    lcfg.stateStore = store;
    if (lambda)
        serverless::LambdaPlatform::applyToApp(*world.app, lcfg,
                                               world.cluster);

    workload::runLoad(*world.app, 250.0, secToTicks(1.0),
                      secToTicks(4.0),
                      workload::QueryMix::fromApp(*world.app),
                      workload::UserPopulation::uniform(1000), 5);

    RunResult r;
    r.p50 = world.app->endToEndLatency().p50();
    r.p95 = world.app->endToEndLatency().percentile(95);
    const Tick window = secToTicks(600.0);
    if (!lambda) {
        r.costPer10Min = serverless::Ec2CostModel{}.cost(56, window);
    } else {
        serverless::LambdaCostModel cost;
        const auto invocations =
            serverless::LambdaPlatform::invocations(*world.app,
                                                    lcfg.storeName);
        const auto billed = serverless::LambdaPlatform::billedDuration(
            *world.app, cost, lcfg.storeName);
        r.costPer10Min = cost.cost(invocations, billed) * 150.0;
        if (store == serverless::StateStoreKind::RemoteMemory)
            r.costPer10Min +=
                serverless::Ec2CostModel{}.cost(4, window);
    }
    return r;
}

} // namespace

int
main()
{
    TextTable table(
        {"platform", "p50(ms)", "p95(ms)", "cost $/10min"});
    const RunResult ec2 =
        run(false, serverless::StateStoreKind::S3);
    table.add("Amazon EC2 (reserved)", fmtDouble(ticksToMs(ec2.p50), 1),
              fmtDouble(ticksToMs(ec2.p95), 1),
              fmtDouble(ec2.costPer10Min, 1));
    const RunResult s3 = run(true, serverless::StateStoreKind::S3);
    table.add("AWS Lambda (S3 state)", fmtDouble(ticksToMs(s3.p50), 1),
              fmtDouble(ticksToMs(s3.p95), 1),
              fmtDouble(s3.costPer10Min, 1));
    const RunResult mem =
        run(true, serverless::StateStoreKind::RemoteMemory);
    table.add("AWS Lambda (memory state)",
              fmtDouble(ticksToMs(mem.p50), 1),
              fmtDouble(ticksToMs(mem.p95), 1),
              fmtDouble(mem.costPer10Min, 1));

    std::cout << "Banking System across deployment platforms:\n";
    table.print(std::cout);
    std::cout << "\nTake-aways (Sec 7): S3 state passing dominates "
                 "function latency; remote memory recovers most of it; "
                 "per-request billing is far cheaper than reserved "
                 "instances at this load.\n";
    return 0;
}
