/**
 * @file
 * Quickstart: build a small custom microservice application with the
 * public API, drive it with an open-loop workload, and read the
 * results (latency percentiles, per-service traces, DOT export).
 *
 *   $ ./build/examples/quickstart
 *
 * The app is a minimal three-tier chain:
 *
 *   client --http--> api-gateway --rpc--> product --rpc--> product-db
 *                                  \--rpc--> product-cache
 */

#include <iostream>

#include "apps/builder.hh"
#include "apps/profiles.hh"
#include "core/table.hh"
#include "trace/analysis.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

int
main()
{
    // 1. A world: simulator + 3 worker servers + network + app runtime.
    apps::WorldConfig config;
    config.workerServers = 3;
    config.seed = 1;
    apps::World world(config);
    service::App &app = *world.app;

    // 2. Describe the tiers. Each tier has a static profile (for the
    //    microarchitectural model), a handler program, and a protocol.
    {
        service::ServiceDef db;
        db.name = "product-db";
        db.kind = service::ServiceKind::Database;
        db.profile = apps::mongodbProfile("product-db");
        db.handler.compute(apps::computeUs(300.0, 0.5));
        app.addService(std::move(db)).addInstance(world.worker(2));

        service::ServiceDef cache;
        cache.name = "product-cache";
        cache.kind = service::ServiceKind::Cache;
        cache.profile = apps::memcachedProfile("product-cache");
        cache.handler.compute(apps::computeUs(50.0, 0.4));
        app.addService(std::move(cache)).addInstance(world.worker(1));

        service::ServiceDef product;
        product.name = "product";
        product.profile = apps::goMicroProfile("product");
        product.handler.compute(apps::computeUs(150.0, 0.5))
            .cache("product-cache", "product-db", 0.9);
        app.addService(std::move(product)).addInstance(world.worker(1));

        service::ServiceDef gw;
        gw.name = "api-gateway";
        gw.kind = service::ServiceKind::Frontend;
        gw.profile = apps::nginxProfile("api-gateway");
        gw.protocol = rpc::ProtocolModel::restHttp1();
        gw.handler.compute(apps::computeUs(60.0, 0.4)).call("product");
        gw.threadsPerInstance = 64;
        app.addService(std::move(gw)).addInstance(world.worker(0));
    }
    app.setEntry("api-gateway");
    app.addQueryType({"getProduct", 1.0, 1.0, 0, {}});
    app.setQosLatency(5 * kTicksPerMs);
    app.validate();

    // 3. Drive it with an open-loop Poisson workload at 500 QPS.
    auto result = workload::runLoad(
        app, 500.0, secToTicks(1.0), secToTicks(5.0),
        workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(1000), /*seed=*/7);

    std::cout << "completed " << result.completed << " requests\n"
              << "  p50 " << ticksToMs(result.p50) << " ms\n"
              << "  p95 " << ticksToMs(result.p95) << " ms\n"
              << "  p99 " << ticksToMs(result.p99) << " ms\n"
              << "  goodput " << result.goodputQps << " qps (QoS "
              << ticksToMs(app.config().qosLatency) << " ms)\n"
              << "  network-processing share "
              << fmtDouble(100.0 * result.networkShare, 1) << "%\n\n";

    // 4. Ask the tracing system where time went.
    trace::TraceAnalysis analysis(app.traceStore());
    std::cout << "per-service view (from distributed traces):\n";
    for (const auto &s : analysis.perService()) {
        std::cout << "  " << s.service << ": mean "
                  << fmtDouble(s.meanLatencyUs, 0) << " us over "
                  << s.spanCount << " spans, network "
                  << fmtDouble(100.0 * s.networkShare, 0) << "%\n";
    }

    // 5. Export the dependency graph for graphviz.
    std::cout << "\nGraphviz DOT of the app:\n" << app.exportDot();
    return 0;
}
