/**
 * @file
 * Example: cluster-management machinery. Runs the E-commerce site into
 * a load spike with a utilization-threshold autoscaler attached and
 * prints the reaction timeline - then repeats with rate limiting as
 * the recovery mechanism instead.
 *
 *   $ ./build/examples/autoscaler_demo
 */

#include <iostream>

#include "apps/ecommerce.hh"
#include "core/table.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "manager/qos.hh"
#include "manager/rate_limiter.hh"
#include "workload/generators.hh"

using namespace uqsim;

int
main()
{
    apps::WorldConfig config;
    config.workerServers = 6;
    apps::World world(config);
    apps::buildEcommerce(world);
    service::App &app = *world.app;

    manager::Monitor monitor(app, secToTicks(5.0));
    monitor.start();

    manager::AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = secToTicks(5.0);
    cfg.startupDelay = secToTicks(15.0);
    cfg.cooldown = secToTicks(20.0);
    manager::AutoScaler scaler(app, monitor, cfg,
                               [&]() -> cpu::Server & {
                                   return world.nextWorker();
                               });
    scaler.watchAllStateless();
    scaler.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(2000), 3);
    gen.setQps(300.0);
    gen.start();

    // Flash-sale spike at t=60s.
    world.sim.schedule(secToTicks(60.0), [&gen] { gen.setQps(2600.0); });
    world.sim.runUntil(secToTicks(240.0));

    TextTable table({"t(s)", "front-end p99(ms)", "orders p99(ms)",
                     "queueMaster p99(ms)", "instances added"});
    for (const auto &round : monitor.history()) {
        const int t = static_cast<int>(ticksToSec(round[0].time));
        if (t % 20 != 0)
            continue;
        manager::TierSample fe, orders, qm;
        for (const auto &s : round) {
            if (s.service == "front-end")
                fe = s;
            if (s.service == "orders")
                orders = s;
            if (s.service == "queueMaster")
                qm = s;
        }
        std::size_t added = 0;
        for (const auto &e : scaler.events())
            if (e.time <= round[0].time)
                ++added;
        table.add(t, fmtDouble(ticksToMs(fe.p99), 1),
                  fmtDouble(ticksToMs(orders.p99), 1),
                  fmtDouble(ticksToMs(qm.p99), 1), added);
    }
    std::cout << "E-commerce flash sale with autoscaling "
                 "(spike at t=60s):\n";
    table.print(std::cout);

    manager::QosTracker qos(app, monitor, app.config().qosLatency);
    const Tick detect = qos.firstEndToEndViolation();
    std::cout << "\nQoS violation detected at t="
              << fmtDouble(ticksToSec(detect), 0) << "s; "
              << scaler.events().size() << " scale-outs:";
    for (const auto &e : scaler.events())
        std::cout << " " << e.service << "@t="
                  << fmtDouble(ticksToSec(e.time), 0) << "s";
    std::cout << "\nNote queueMaster: its order serialization makes it "
                 "a scaling-resistant bottleneck (Sec 7).\n";
    return 0;
}
