/**
 * @file
 * Example: export every application's microservice dependency graph
 * (Figs 4-8 / the "DeathStar" graphs of Fig 18) as Graphviz DOT, one
 * file per app in the current directory.
 *
 *   $ ./build/examples/graph_export
 *   $ dot -Tsvg social_network.dot -o social_network.svg
 */

#include <fstream>
#include <iostream>

#include "apps/catalog.hh"

using namespace uqsim;

int
main()
{
    for (apps::AppId id : apps::allApps()) {
        apps::WorldConfig config;
        config.workerServers = 5;
        apps::World world(config);
        apps::buildApp(world, id);

        std::string filename = apps::appName(id);
        for (char &c : filename)
            c = (c == ' ' || c == '-') ? '_' : static_cast<char>(
                                                   tolower(c));
        filename += ".dot";

        std::ofstream out(filename);
        out << world.app->exportDot();
        std::cout << "wrote " << filename << " ("
                  << world.app->services().size() << " services)\n";
    }
    return 0;
}
