/**
 * @file
 * Example: the cloud-vs-edge trade-off for the Swarm IoT service
 * (Sec 3.6 / Fig 9). Builds both deployments over a 24-drone swarm and
 * compares image-recognition and obstacle-avoidance latency at a given
 * load, showing the asymmetry the paper highlights: offload the heavy
 * vision pipeline, keep safety-critical obstacle avoidance local.
 *
 *   $ ./build/examples/swarm_offload [qps]
 */

#include <cstdlib>
#include <iostream>

#include "apps/swarm.hh"
#include "core/table.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

int
main(int argc, char **argv)
{
    const double qps = argc > 1 ? std::atof(argv[1]) : 6.0;

    TextTable table({"variant", "query", "p50(ms)", "p99(ms)",
                     "drops"});
    for (auto variant :
         {apps::SwarmVariant::Edge, apps::SwarmVariant::Cloud}) {
        apps::WorldConfig config;
        config.workerServers = 5;
        apps::World world(config);
        apps::SwarmOptions options;
        options.drones = 24;
        const auto queries = apps::buildSwarm(world, variant, options);

        workload::runLoad(*world.app, qps, secToTicks(4.0),
                          secToTicks(10.0),
                          workload::QueryMix::fromApp(*world.app),
                          workload::UserPopulation::uniform(64), 31);

        const char *name =
            variant == apps::SwarmVariant::Edge ? "edge" : "cloud";
        const auto &ir =
            world.app->endToEndLatencyFor(queries.imageRecognition);
        const auto &oa =
            world.app->endToEndLatencyFor(queries.obstacleAvoidance);
        table.add(name, "imageRecognition",
                  fmtDouble(ticksToMs(ir.p50()), 0),
                  fmtDouble(ticksToMs(ir.p99()), 0),
                  world.app->droppedRequests());
        table.add(name, "obstacleAvoidance",
                  fmtDouble(ticksToMs(oa.p50()), 0),
                  fmtDouble(ticksToMs(oa.p99()), 0), "");
    }
    std::cout << "Swarm coordination at " << qps << " QPS, 24 drones:\n";
    table.print(std::cout);
    std::cout << "\nExpected: cloud wins image recognition by a wide "
                 "margin (on-board resources bound the drones), while "
                 "obstacle avoidance is better served on the edge at "
                 "low load - offloading it risks late route "
                 "adjustments (Fig 9).\n";
    return 0;
}
