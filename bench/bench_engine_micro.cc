/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event queue throughput, RNG draws, histogram recording, and
 * end-to-end cost per simulated request on the Social Network graph.
 */

#include <benchmark/benchmark.h>

#include "apps/social_network.hh"
#include "core/histogram.hh"
#include "core/rng.hh"
#include "core/simulator.hh"
#include "workload/generators.hh"

using namespace uqsim;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < 1000; ++i)
            sim.schedule(static_cast<Tick>(i * 7 % 500), [] {});
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_RngExponential(benchmark::State &state)
{
    Rng rng(1);
    double sink = 0.0;
    for (auto _ : state)
        sink += rng.exponential(100.0);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

static void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    Rng rng(2);
    for (auto _ : state)
        h.record(static_cast<std::uint64_t>(rng.exponential(1e6)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void
BM_HistogramPercentile(benchmark::State &state)
{
    Histogram h;
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<std::uint64_t>(rng.exponential(1e6)));
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += h.p99();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HistogramPercentile);

static void
BM_SocialNetworkRequest(benchmark::State &state)
{
    // Cost of one fully simulated end-to-end request through the
    // 36-service graph (events, RPC hops, tracing).
    apps::WorldConfig c;
    c.workerServers = 5;
    apps::World w(c);
    apps::buildSocialNetwork(w);
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users = workload::UserPopulation::uniform(100);
    Rng rng(7);
    for (auto _ : state) {
        w.app->inject(mix.sample(rng), users.sample(rng));
        w.sim.run();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["events/req"] = benchmark::Counter(
        static_cast<double>(w.sim.eventsExecuted()) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SocialNetworkRequest);
