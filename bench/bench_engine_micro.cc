/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event queue throughput, RNG draws, histogram recording, and
 * end-to-end cost per simulated request on the Social Network graph.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <queue>
#include <vector>

#include "apps/social_network.hh"
#include "core/histogram.hh"
#include "core/rng.hh"
#include "core/simulator.hh"
#include "workload/generators.hh"

using namespace uqsim;

namespace {

/**
 * The pre-ladder-queue scheduler, kept as an in-bench baseline: a
 * std::priority_queue of entries with one shared_ptr cancellation
 * state allocated per event. Used to quantify the ladder queue's
 * speedup on identical workloads (BM_EventChurn_* below).
 */
class BaselineHeapQueue
{
  public:
    struct State
    {
        bool cancelled = false;
    };
    using Handle = std::shared_ptr<State>;

    Handle
    schedule(Tick when, EventCallback cb)
    {
        auto state = std::make_shared<State>();
        heap_.push(Entry{when, nextSeq_++, std::move(cb), state});
        ++live_;
        return state;
    }

    void
    cancel(const Handle &h)
    {
        if (h && !h->cancelled) {
            h->cancelled = true;
            --live_;
        }
    }

    bool empty() const { return live_ == 0; }

    std::pair<Tick, EventCallback>
    popNext()
    {
        while (heap_.top().state->cancelled)
            heap_.pop();
        Entry entry = heap_.top();
        heap_.pop();
        --live_;
        return {entry.when, std::move(entry.cb)};
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventCallback cb;
        std::shared_ptr<State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t live_ = 0;
};

/** Adapter giving EventQueue the same driver surface as the baseline. */
class LadderQueueDriver
{
  public:
    EventHandle
    schedule(Tick when, EventCallback cb)
    {
        return queue_.schedule(when, std::move(cb));
    }

    void cancel(EventHandle &h) { h.cancel(); }
    bool empty() const { return queue_.empty(); }
    std::pair<Tick, EventCallback> popNext() { return queue_.popNext(); }

  private:
    EventQueue queue_;
};

/**
 * Steady-state churn: keep @p depth events in flight; every pop
 * schedules a successor a short exponential-ish delay ahead, the DES
 * pattern every service/network model produces. Executes @p events
 * events total.
 */
template <class Queue>
void
runChurn(Queue &q, std::uint64_t events, unsigned depth, Rng &rng)
{
    Tick now = 0;
    for (unsigned i = 0; i < depth; ++i)
        q.schedule(1 + rng.uniformInt(2000), [] {});
    for (std::uint64_t done = 0; done < events; ++done) {
        auto [when, cb] = q.popNext();
        now = when;
        cb();
        q.schedule(now + 1 + rng.uniformInt(2000), [] {});
    }
}

/** Churn with one extra schedule+cancel per pop (timeout pattern). */
template <class Queue>
void
runChurnCancel(Queue &q, std::uint64_t events, unsigned depth, Rng &rng)
{
    Tick now = 0;
    for (unsigned i = 0; i < depth; ++i)
        q.schedule(1 + rng.uniformInt(2000), [] {});
    for (std::uint64_t done = 0; done < events; ++done) {
        auto [when, cb] = q.popNext();
        now = when;
        cb();
        q.schedule(now + 1 + rng.uniformInt(2000), [] {});
        auto timeout = q.schedule(now + 5000 + rng.uniformInt(5000), [] {});
        q.cancel(timeout);
    }
}

constexpr std::uint64_t kChurnEvents = 1'000'000;
constexpr unsigned kChurnDepth = 4096;

} // namespace

static void
BM_EventChurn_Ladder(benchmark::State &state)
{
    for (auto _ : state) {
        LadderQueueDriver q;
        Rng rng(11);
        runChurn(q, kChurnEvents, kChurnDepth, rng);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kChurnEvents));
}
BENCHMARK(BM_EventChurn_Ladder)->Unit(benchmark::kMillisecond);

static void
BM_EventChurn_HeapBaseline(benchmark::State &state)
{
    for (auto _ : state) {
        BaselineHeapQueue q;
        Rng rng(11);
        runChurn(q, kChurnEvents, kChurnDepth, rng);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kChurnEvents));
}
BENCHMARK(BM_EventChurn_HeapBaseline)->Unit(benchmark::kMillisecond);

static void
BM_EventChurnCancel_Ladder(benchmark::State &state)
{
    for (auto _ : state) {
        LadderQueueDriver q;
        Rng rng(13);
        runChurnCancel(q, kChurnEvents, kChurnDepth, rng);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kChurnEvents));
}
BENCHMARK(BM_EventChurnCancel_Ladder)->Unit(benchmark::kMillisecond);

static void
BM_EventChurnCancel_HeapBaseline(benchmark::State &state)
{
    for (auto _ : state) {
        BaselineHeapQueue q;
        Rng rng(13);
        runChurnCancel(q, kChurnEvents, kChurnDepth, rng);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kChurnEvents));
}
BENCHMARK(BM_EventChurnCancel_HeapBaseline)->Unit(benchmark::kMillisecond);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        for (int i = 0; i < 1000; ++i)
            sim.schedule(static_cast<Tick>(i * 7 % 500), [] {});
        sim.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_RngExponential(benchmark::State &state)
{
    Rng rng(1);
    double sink = 0.0;
    for (auto _ : state)
        sink += rng.exponential(100.0);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

static void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    Rng rng(2);
    for (auto _ : state)
        h.record(static_cast<std::uint64_t>(rng.exponential(1e6)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void
BM_HistogramPercentile(benchmark::State &state)
{
    Histogram h;
    Rng rng(3);
    for (int i = 0; i < 100000; ++i)
        h.record(static_cast<std::uint64_t>(rng.exponential(1e6)));
    std::uint64_t sink = 0;
    for (auto _ : state)
        sink += h.p99();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_HistogramPercentile);

static void
BM_SocialNetworkRequest(benchmark::State &state)
{
    // Cost of one fully simulated end-to-end request through the
    // 36-service graph (events, RPC hops, tracing).
    apps::WorldConfig c;
    c.workerServers = 5;
    apps::World w(c);
    apps::buildSocialNetwork(w);
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users = workload::UserPopulation::uniform(100);
    Rng rng(7);
    for (auto _ : state) {
        w.app->inject(mix.sample(rng), users.sample(rng));
        w.sim.run();
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["events/req"] = benchmark::Counter(
        static_cast<double>(w.sim.eventsExecuted()) /
        static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SocialNetworkRequest);
