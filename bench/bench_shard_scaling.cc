/**
 * @file
 * Shard-scaling throughput of the parallel DES core, in both
 * deployment modes.
 *
 * Replicate panel: the social-network world as N replica shards with
 * a fixed per-shard load (total simulated work grows with N), driven
 * by N worker threads — weak scaling of independent worlds.
 *
 * Partition panel: ONE social-network world at a fixed total load,
 * split across N shards by the placement layer — strong scaling of a
 * single application graph. The engine's conservative lookahead is
 * the inter-shard wire latency, so the panel uses a cross-rack wire
 * (--wire-us, default 100us) to keep barrier rounds coarse enough to
 * amortize; a datacenter-local 10us wire stresses the barrier path
 * instead of the scaling claim.
 *
 * The digest column doubles as a correctness check: for a fixed shard
 * count it must not change with the thread count, and the recorded
 * value lets CI diff runs across commits.
 *
 * By default the bench only records (--min-speedup 0 and
 * --min-partition-speedup 0): meaningful speedups need as many
 * physical cores as shards, which CI runners and laptops may not
 * have. Pass --min-speedup 2 / --min-partition-speedup 1.5 on a
 * >=4-core machine to enforce the scaling claims.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "core/json.hh"
#include "core/logging.hh"
#include "core/table.hh"

using namespace uqsim;

namespace {

struct Row
{
    unsigned shards = 1;
    unsigned threads = 1;
    std::uint64_t events = 0;
    double wallSec = 0.0;
    double eventsPerSec = 0.0;
    double speedup = 1.0;
    std::uint64_t digest = 0;
};

Row
runConfig(unsigned shards, double qps_per_shard, double duration_sec)
{
    apps::Scenario scn;
    scn.app = "social-network";
    scn.qps = qps_per_shard * shards;
    scn.durationSec = duration_sec;
    scn.warmupSec = 0.5;
    scn.shards = shards;
    scn.threads = shards;

    apps::WorldHandle w(apps::worldConfigFor(scn), scn.shards,
                        scn.threads);
    for (unsigned s = 0; s < shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.warmup = secToTicks(scn.warmupSec);
    load.measure = secToTicks(scn.durationSec);
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;

    const auto t0 = std::chrono::steady_clock::now();
    apps::runWorld(w, load);
    const auto t1 = std::chrono::steady_clock::now();

    Row row;
    row.shards = shards;
    row.threads = shards;
    row.events = w.engine().eventsExecuted();
    row.wallSec = std::chrono::duration<double>(t1 - t0).count();
    row.eventsPerSec =
        row.wallSec > 0.0 ? static_cast<double>(row.events) / row.wallSec
                          : 0.0;
    row.digest = w.engine().executionDigest();
    return row;
}

Row
runPartitionConfig(unsigned shards, double qps, double duration_sec,
                   Tick wire_latency)
{
    apps::Scenario scn;
    scn.app = "social-network";
    scn.qps = qps;
    scn.durationSec = duration_sec;
    scn.warmupSec = 0.5;
    scn.shards = shards;
    scn.threads = shards;

    apps::WorldConfig config = apps::worldConfigFor(scn);
    config.netConfig.wireLatency = wire_latency;
    apps::WorldHandle w(config, shards, shards,
                        apps::Deployment::Partition);
    for (unsigned s = 0; s < shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    w.enablePartition({}); // round-robin homes, entry on shard 0

    apps::LoadSpec spec;
    spec.qps = scn.qps;
    spec.warmup = secToTicks(scn.warmupSec);
    spec.measure = secToTicks(scn.durationSec);
    spec.users = workload::UserPopulation::uniform(scn.users);
    spec.seed = scn.seed + 1;

    const auto t0 = std::chrono::steady_clock::now();
    apps::runWorld(w, spec);
    const auto t1 = std::chrono::steady_clock::now();

    Row row;
    row.shards = shards;
    row.threads = shards;
    row.events = w.engine().eventsExecuted();
    row.wallSec = std::chrono::duration<double>(t1 - t0).count();
    row.eventsPerSec =
        row.wallSec > 0.0 ? static_cast<double>(row.events) / row.wallSec
                          : 0.0;
    row.digest = w.engine().executionDigest();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    double min_speedup = 0.0;
    double min_partition_speedup = 0.0;
    double qps_per_shard = 300.0;
    double qps_partition = 1200.0;
    double wire_us = 100.0;
    double duration_sec = 3.0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&] {
            if (i + 1 >= argc)
                fatal(strCat("missing value for ", a));
            return std::string(argv[++i]);
        };
        if (a == "--out")
            out_path = need();
        else if (a == "--min-speedup")
            min_speedup = std::atof(need().c_str());
        else if (a == "--min-partition-speedup")
            min_partition_speedup = std::atof(need().c_str());
        else if (a == "--qps-per-shard")
            qps_per_shard = std::atof(need().c_str());
        else if (a == "--qps-partition")
            qps_partition = std::atof(need().c_str());
        else if (a == "--wire-us")
            wire_us = std::atof(need().c_str());
        else if (a == "--duration")
            duration_sec = std::atof(need().c_str());
        else
            fatal(strCat("unknown option '", a, "'"));
    }
    const Tick wire_latency =
        static_cast<Tick>(wire_us * kTicksPerUs);

    printBanner(std::cout, "shard scaling (social-network, fixed "
                           "per-shard load)");
    TextTable table({"shards", "threads", "events", "wall(s)",
                     "events/sec", "speedup", "digest"});
    std::vector<Row> rows;
    for (unsigned shards : {1u, 2u, 4u}) {
        Row row = runConfig(shards, qps_per_shard, duration_sec);
        if (!rows.empty())
            row.speedup = row.eventsPerSec / rows.front().eventsPerSec;
        rows.push_back(row);
        std::ostringstream digest;
        digest << std::hex << row.digest;
        table.add(row.shards, row.threads, row.events,
                  fmtDouble(row.wallSec, 2),
                  fmtDouble(row.eventsPerSec / 1e6, 2) + "M",
                  fmtDouble(row.speedup, 2) + "x", digest.str());
    }
    table.print(std::cout);

    printBanner(std::cout, "partition scaling (ONE social-network "
                           "world, fixed total load)");
    TextTable ptable({"shards", "threads", "events", "wall(s)",
                      "events/sec", "speedup", "digest"});
    std::vector<Row> prows;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        Row row = runPartitionConfig(shards, qps_partition,
                                     duration_sec, wire_latency);
        if (!prows.empty())
            row.speedup =
                row.eventsPerSec / prows.front().eventsPerSec;
        prows.push_back(row);
        std::ostringstream digest;
        digest << std::hex << row.digest;
        ptable.add(row.shards, row.threads, row.events,
                   fmtDouble(row.wallSec, 2),
                   fmtDouble(row.eventsPerSec / 1e6, 2) + "M",
                   fmtDouble(row.speedup, 2) + "x", digest.str());
    }
    ptable.print(std::cout);

    auto writeRows = [](json::Writer &w, const std::vector<Row> &rs) {
        for (const Row &row : rs) {
            w.beginObject();
            w.field("shards", row.shards);
            w.field("threads", row.threads);
            w.field("events", row.events);
            w.field("wall_sec", row.wallSec);
            w.field("events_per_sec", row.eventsPerSec);
            w.field("speedup_vs_1", row.speedup);
            std::ostringstream digest;
            digest << std::hex << row.digest;
            w.field("digest", digest.str());
            w.endObject();
        }
    };

    json::Writer w;
    w.beginObject();
    w.field("bench", "shard_scaling");
    w.field("app", "social-network");
    w.field("qps_per_shard", qps_per_shard);
    w.field("qps_partition", qps_partition);
    w.field("wire_us", wire_us);
    w.field("duration_sec", duration_sec);
    w.beginArray("rows");
    writeRows(w, rows);
    w.endArray();
    w.beginArray("partition_rows");
    writeRows(w, prows);
    w.endArray();
    w.endObject();
    const std::string doc = w.str() + "\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal(strCat("cannot open '", out_path, "' for writing"));
        out << doc;
        std::cout << "wrote " << out_path << "\n";
    } else {
        std::cout << doc;
    }

    const double best = rows.back().speedup;
    if (min_speedup > 0.0 && best < min_speedup) {
        std::cerr << "FAIL: speedup " << best << "x at "
                  << rows.back().shards << " shards is below the --min-"
                  << "speedup " << min_speedup << "x gate\n";
        return 1;
    }
    // The partition gate reads the 4-shard row (index 2), not the
    // 8-shard tail: 8 partitioned shards oversubscribe the 4-vCPU CI
    // runners the gate is tuned for.
    const double part4 = prows[2].speedup;
    if (min_partition_speedup > 0.0 && part4 < min_partition_speedup) {
        std::cerr << "FAIL: partition speedup " << part4 << "x at "
                  << prows[2].shards << " shards is below the --min-"
                  << "partition-speedup " << min_partition_speedup
                  << "x gate\n";
        return 1;
    }
    return 0;
}
