/**
 * @file
 * Shard-scaling throughput of the parallel DES core.
 *
 * Builds the social-network world as N replica shards with a fixed
 * per-shard load (so total simulated work grows with N), drives it
 * with N worker threads, and reports wall-clock events/sec per
 * configuration plus the speedup over the one-shard baseline as JSON.
 *
 * The digest column doubles as a correctness check: for a fixed shard
 * count it must not change with the thread count, and the recorded
 * value lets CI diff runs across commits.
 *
 * By default the bench only records (--min-speedup 0): meaningful
 * speedups need as many physical cores as shards, which CI runners
 * and laptops may not have. Pass --min-speedup 2 on a >=4-core
 * machine to enforce the scaling claim.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "core/json.hh"
#include "core/logging.hh"
#include "core/table.hh"

using namespace uqsim;

namespace {

struct Row
{
    unsigned shards = 1;
    unsigned threads = 1;
    std::uint64_t events = 0;
    double wallSec = 0.0;
    double eventsPerSec = 0.0;
    double speedup = 1.0;
    std::uint64_t digest = 0;
};

Row
runConfig(unsigned shards, double qps_per_shard, double duration_sec)
{
    apps::Scenario scn;
    scn.app = "social-network";
    scn.qps = qps_per_shard * shards;
    scn.durationSec = duration_sec;
    scn.warmupSec = 0.5;
    scn.shards = shards;
    scn.threads = shards;

    apps::ShardedWorld w(apps::worldConfigFor(scn), scn.shards,
                         scn.threads);
    for (unsigned s = 0; s < shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    const workload::UserPopulation users =
        workload::UserPopulation::uniform(scn.users);

    const auto t0 = std::chrono::steady_clock::now();
    apps::runShardedLoad(w, scn.qps, secToTicks(scn.warmupSec),
                         secToTicks(scn.durationSec), users,
                         scn.seed + 1);
    const auto t1 = std::chrono::steady_clock::now();

    Row row;
    row.shards = shards;
    row.threads = shards;
    row.events = w.engine().eventsExecuted();
    row.wallSec = std::chrono::duration<double>(t1 - t0).count();
    row.eventsPerSec =
        row.wallSec > 0.0 ? static_cast<double>(row.events) / row.wallSec
                          : 0.0;
    row.digest = w.engine().executionDigest();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    double min_speedup = 0.0;
    double qps_per_shard = 300.0;
    double duration_sec = 3.0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&] {
            if (i + 1 >= argc)
                fatal(strCat("missing value for ", a));
            return std::string(argv[++i]);
        };
        if (a == "--out")
            out_path = need();
        else if (a == "--min-speedup")
            min_speedup = std::atof(need().c_str());
        else if (a == "--qps-per-shard")
            qps_per_shard = std::atof(need().c_str());
        else if (a == "--duration")
            duration_sec = std::atof(need().c_str());
        else
            fatal(strCat("unknown option '", a, "'"));
    }

    printBanner(std::cout, "shard scaling (social-network, fixed "
                           "per-shard load)");
    TextTable table({"shards", "threads", "events", "wall(s)",
                     "events/sec", "speedup", "digest"});
    std::vector<Row> rows;
    for (unsigned shards : {1u, 2u, 4u}) {
        Row row = runConfig(shards, qps_per_shard, duration_sec);
        if (!rows.empty())
            row.speedup = row.eventsPerSec / rows.front().eventsPerSec;
        rows.push_back(row);
        std::ostringstream digest;
        digest << std::hex << row.digest;
        table.add(row.shards, row.threads, row.events,
                  fmtDouble(row.wallSec, 2),
                  fmtDouble(row.eventsPerSec / 1e6, 2) + "M",
                  fmtDouble(row.speedup, 2) + "x", digest.str());
    }
    table.print(std::cout);

    json::Writer w;
    w.beginObject();
    w.field("bench", "shard_scaling");
    w.field("app", "social-network");
    w.field("qps_per_shard", qps_per_shard);
    w.field("duration_sec", duration_sec);
    w.beginArray("rows");
    for (const Row &row : rows) {
        w.beginObject();
        w.field("shards", row.shards);
        w.field("threads", row.threads);
        w.field("events", row.events);
        w.field("wall_sec", row.wallSec);
        w.field("events_per_sec", row.eventsPerSec);
        w.field("speedup_vs_1", row.speedup);
        std::ostringstream digest;
        digest << std::hex << row.digest;
        w.field("digest", digest.str());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    const std::string doc = w.str() + "\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal(strCat("cannot open '", out_path, "' for writing"));
        out << doc;
        std::cout << "wrote " << out_path << "\n";
    } else {
        std::cout << doc;
    }

    const double best = rows.back().speedup;
    if (min_speedup > 0.0 && best < min_speedup) {
        std::cerr << "FAIL: speedup " << best << "x at "
                  << rows.back().shards << " shards is below the --min-"
                  << "speedup " << min_speedup << "x gate\n";
        return 1;
    }
    return 0;
}
