/**
 * @file
 * Fig 16: speedup from offloading TCP processing to a bump-in-the-wire
 * FPGA, per end-to-end service: network-processing time alone and
 * end-to-end (tail) latency.
 */

#include "bench_common.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

struct Run
{
    double tcpPerReqUs = 0.0; ///< mean kernel-TCP (or FPGA-path) time
    Tick p50 = 0;
    Tick p99 = 0;
};

Run
runWith(apps::AppId id, bool fpga, double qps)
{
    apps::WorldConfig c;
    c.workerServers = 5;
    if (fpga)
        c.appConfig.fpga = net::FpgaOffloadModel::on();
    apps::World w(c);
    apps::buildApp(w, id);

    // Measure the per-request TCP-processing time directly from the
    // request accounting (the component the offload replaces).
    double tcp_total = 0.0;
    std::uint64_t done = 0;
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users =
        workload::UserPopulation::uniform(1000);
    workload::OpenLoopGenerator gen(*w.app, mix, users, 7);
    gen.setQps(qps);
    gen.start();
    w.sim.runFor(simTime(1.0));
    w.app->statReset();
    // Hook completions through manual injection of extra probes.
    Rng rng(3);
    for (int i = 0; i < 400; ++i) {
        w.sim.runFor(simTime(2.0) / 400);
        w.app->inject(mix.sample(rng), users.sample(rng),
                      [&](const service::Request &req) {
                          if (!req.dropped) {
                              tcp_total += static_cast<double>(
                                  req.tcpProcTime);
                              ++done;
                          }
                      });
    }
    w.sim.runFor(simTime(1.0));
    gen.stop();
    Run out;
    out.tcpPerReqUs = done ? tcp_total / done / 1000.0 : 0.0;
    out.p50 = w.app->endToEndLatency().p50();
    out.p99 = w.app->endToEndLatency().p99();
    return out;
}

} // namespace

int
main()
{
    header("Fig 16: FPGA RPC/TCP offload",
           "network processing improves 10-68x over native TCP; "
           "end-to-end tail latency improves 43% up to 2.2x");

    TextTable table({"Service", "TCP proc native(us)", "TCP proc FPGA(us)",
                     "NetProc speedup", "p99 native", "p99 FPGA",
                     "E2E speedup"});
    struct Pt
    {
        apps::AppId id;
        double qps;
    };
    for (const Pt &pt : {Pt{apps::AppId::SocialNetwork, 2000},
                         Pt{apps::AppId::MediaService, 1000},
                         Pt{apps::AppId::Ecommerce, 1000},
                         Pt{apps::AppId::Banking, 1000},
                         Pt{apps::AppId::SwarmCloud, 8},
                         Pt{apps::AppId::SwarmEdge, 3}}) {
        const Run native = runWith(pt.id, false, pt.qps);
        const Run fpga = runWith(pt.id, true, pt.qps);
        table.add(apps::appName(pt.id), fmtDouble(native.tcpPerReqUs, 0),
                  fmtDouble(fpga.tcpPerReqUs, 0),
                  fmtDouble(native.tcpPerReqUs /
                                std::max(0.1, fpga.tcpPerReqUs),
                            1) +
                      "x",
                  fmtMs(native.p99), fmtMs(fpga.p99),
                  fmtDouble(static_cast<double>(native.p99) /
                                std::max<double>(1.0,
                                                 static_cast<double>(
                                                     fpga.p99)),
                            2) +
                      "x");
    }
    table.print(std::cout);
    std::cout << "\nNote: Thrift marshalling stays on the host, so the "
                 "network-processing speedup here covers the kernel TCP "
                 "share the FPGA absorbs.\n";
    return 0;
}
