/**
 * @file
 * Fig 10: top-down cycle breakdown and IPC for every microservice of
 * the Social Network and E-commerce applications, plus back-ends and
 * the monolithic counterparts.
 */

#include "bench_common.hh"
#include "apps/profiles.hh"
#include "cpu/microarch.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
breakdownFor(apps::AppId id, const std::string &monolith_note)
{
    auto w = makeWorld(5);
    apps::buildApp(*w, id);
    const cpu::CoreModel xeon = cpu::CoreModel::xeon();

    TextTable table({"Service", "Front-end%", "BadSpec%", "Back-end%",
                     "Retiring%", "IPC"});
    double retiring_sum = 0.0;
    unsigned n = 0;
    for (const auto *svc : w->app->services()) {
        const auto &p = svc->def().profile;
        const auto b = cpu::MicroarchModel::cycleBreakdown(p, xeon);
        const double ipc = cpu::MicroarchModel::effectiveIpc(p, xeon);
        table.add(svc->name(), fmtDouble(100 * b.frontend, 1),
                  fmtDouble(100 * b.badSpec, 1),
                  fmtDouble(100 * b.backend, 1),
                  fmtDouble(100 * b.retiring, 1), fmtDouble(ipc, 2));
        retiring_sum += b.retiring;
        ++n;
    }
    // Monolithic counterpart.
    {
        const auto p = apps::monolithProfile();
        const auto b = cpu::MicroarchModel::cycleBreakdown(p, xeon);
        const double ipc = cpu::MicroarchModel::effectiveIpc(p, xeon);
        table.add("Monolith", fmtDouble(100 * b.frontend, 1),
                  fmtDouble(100 * b.badSpec, 1),
                  fmtDouble(100 * b.backend, 1),
                  fmtDouble(100 * b.retiring, 1), fmtDouble(ipc, 2));
    }
    printBanner(std::cout, apps::appName(id));
    table.print(std::cout);
    std::cout << "mean retiring across microservices: "
              << fmtDouble(100.0 * retiring_sum / n, 1) << "% ("
              << monolith_note << ")\n";
}

} // namespace

int
main()
{
    header("Fig 10: cycle breakdown and IPC",
           "front-end-stall dominated; ~21% average retiring (Social "
           "Network); Search high IPC; Recommender lowest IPC; monolith "
           "slightly higher retiring");
    breakdownFor(apps::AppId::SocialNetwork,
                 "paper: ~21% average for Social Network");
    breakdownFor(apps::AppId::Ecommerce,
                 "paper: Search is the high-IPC outlier, recommender "
                 "lowest");
    return 0;
}
