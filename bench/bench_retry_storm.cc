/**
 * @file
 * Retry-storm / metastable-failure demonstration.
 *
 * A two-tier app (front -> backend, ~2000 rps backend capacity) runs
 * at 1200 rps with a tight 2ms attempt timeout. A 2-second x50
 * slowdown on the backend's server collapses capacity; naive retries
 * (5 attempts, no budget) quintuple demand to ~3x healthy capacity,
 * so the backend spends its whole post-trigger capacity on attempts
 * whose callers already timed out: goodput stays near zero long after
 * the trigger clears — the metastable regime. A 10% retry budget plus
 * a circuit breaker caps amplification and the same trigger recovers
 * within a second.
 *
 * Prints goodput per 500ms window for three policies: no retries,
 * naive retries, budget+breaker.
 */

#include <vector>

#include "bench_common.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

struct Windows
{
    std::vector<unsigned> good;
    std::uint64_t retries = 0;
    std::uint64_t breakerFastFails = 0;
};

Windows
runPolicy(bool retries, bool mitigated)
{
    const Tick window = 500 * kTicksPerMs;
    const Tick horizon = 8 * kTicksPerSec;

    auto world = makeWorld(2);
    service::App &app = *world->app;
    service::ServiceDef backend;
    backend.name = "backend";
    backend.handler.compute(apps::computeUsConst(1000.0));
    backend.threadsPerInstance = 2;
    app.addService(std::move(backend)).addInstance(world->worker(1));
    service::ServiceDef front;
    front.name = "front";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(apps::computeUsConst(20.0)).call("backend");
    front.threadsPerInstance = 64;
    app.addService(std::move(front)).addInstance(world->worker(0));
    app.setEntry("front");
    app.addQueryType({"q", 1.0, 1.0, 0, {}});
    app.validate();

    rpc::ResiliencePolicy &pol =
        app.service("backend").mutableDef().resilience;
    pol.timeout = 2 * kTicksPerMs;
    if (retries) {
        pol.retry.maxAttempts = 5;
        pol.retry.baseBackoff = 1 * kTicksPerMs;
    }
    if (mitigated) {
        pol.retry.budgetRatio = 0.1;
        pol.breaker.enabled = true;
    }

    fault::FaultInjector inj(app, 42);
    fault::FaultSpec slow;
    slow.kind = fault::FaultKind::Slowdown;
    slow.server = world->worker(1).id();
    slow.factor = 50.0;
    slow.start = 2 * kTicksPerSec;
    slow.duration = 2 * kTicksPerSec;
    inj.add(slow);
    inj.arm();

    Windows out;
    out.good.assign(static_cast<std::size_t>(horizon / window), 0);
    const Tick interval = static_cast<Tick>(kTicksPerSec / 1200.0);
    for (Tick t = interval; t < horizon; t += interval)
        world->sim.scheduleAt(t, [&world, &out, window, t]() {
            world->app->inject(
                0, t / kTicksPerMs, [&out, window](const auto &r) {
                    if (r.failStatus != 0 || r.dropped)
                        return;
                    const std::size_t idx =
                        static_cast<std::size_t>(r.completeTime / window);
                    if (idx < out.good.size())
                        ++out.good[idx];
                });
        });
    world->sim.run();
    out.retries = app.metrics().counter("rpc.retries").value();
    out.breakerFastFails =
        app.metrics().counter("rpc.breaker_fast_fails").value();
    return out;
}

} // namespace

int
main()
{
    header("Retry storm & mitigation (two-tier, 1200 rps offered)",
           "metastable failures outlive their trigger; retry budgets "
           "and breakers restore stability");

    const Windows none = runPolicy(false, false);
    const Windows naive = runPolicy(true, false);
    const Windows cured = runPolicy(true, true);

    TextTable table({"window", "t (s)", "no-retry", "naive x5",
                     "budget+breaker"});
    for (std::size_t i = 0; i < none.good.size(); ++i) {
        const double t0 = static_cast<double>(i) * 0.5;
        std::string tag = i >= 4 && i < 8 ? " <- slowdown x50" : "";
        table.add(i, fmtDouble(t0, 1) + "-" + fmtDouble(t0 + 0.5, 1),
                  none.good[i], std::to_string(naive.good[i]) + tag,
                  cured.good[i]);
    }
    table.print(std::cout);
    std::cout << "retries: naive=" << naive.retries
              << " mitigated=" << cured.retries
              << "; breaker fast-fails (mitigated)="
              << cured.breakerFastFails << "\n"
              << "Naive goodput stays collapsed after the trigger "
                 "clears at t=4s; the budgeted run returns to the "
                 "offered rate.\n";
    return 0;
}
