/**
 * @file
 * Fig 12: tail latency with increasing load and decreasing frequency
 * (RAPL), for five single-tier interactive services (top row) and the
 * five end-to-end DeathStarBench services (bottom row).
 *
 * For each application the bench first finds the max load sustaining
 * QoS at nominal frequency, then sweeps (load fraction x frequency)
 * and reports p99 normalized to the QoS target - the same quantity the
 * paper's heatmaps encode (values > 1 are QoS violations).
 */

#include <functional>

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

using BuildFn = std::function<void(apps::World &)>;

void
panel(const std::string &name, const BuildFn &build, double lo_qps,
      double hi_qps)
{
    auto probe = [&](double qps, double freq) {
        auto w = makeWorld(5, 42);
        build(*w);
        if (freq > 0.0)
            w->cluster.setAllFrequenciesMhz(freq);
        return drive(*w->app, qps, 0.8, 1.6, 7);
    };

    // Saturation point at nominal frequency.
    Tick qos = 0;
    {
        auto w = makeWorld(5, 42);
        build(*w);
        qos = w->app->config().qosLatency;
    }
    const double max_qps = workload::findMaxQps(
        [&](double qps) { return probe(qps, 0.0).meetsQos(qos); },
        lo_qps, hi_qps, 5);

    TextTable table({"load", "2400MHz", "1800MHz", "1200MHz", "1000MHz"});
    for (double frac : {0.45, 0.9}) {
        std::vector<std::string> row{fmtDouble(frac * 100, 0) + "% (" +
                                     fmtDouble(frac * max_qps, 0) +
                                     " qps)"};
        for (double freq : {2400.0, 1800.0, 1200.0, 1000.0}) {
            const auto r = probe(frac * max_qps, freq);
            const double norm = static_cast<double>(r.p99) /
                                static_cast<double>(qos);
            row.push_back(fmtDouble(norm, 2) +
                          (norm > 1.0 ? " *VIOL*" : ""));
        }
        table.addRow(row);
    }
    printBanner(std::cout,
                name + "  (p99 / QoS; max QPS under QoS at nominal = " +
                    fmtDouble(max_qps, 0) + ")");
    table.print(std::cout);
}

} // namespace

int
main()
{
    header("Fig 12: tail latency vs load x frequency (RAPL)",
           "MongoDB tolerates minimum frequency (I/O-bound); Xapian "
           "most frequency-sensitive; end-to-end microservice apps more "
           "sensitive than any single-tier service; Swarm least "
           "(network-bound)");

    // Top row: traditional single-tier interactive services.
    for (auto kind :
         {apps::SingleTierKind::Nginx, apps::SingleTierKind::Memcached,
          apps::SingleTierKind::MongoDB, apps::SingleTierKind::Xapian,
          apps::SingleTierKind::Recommender}) {
        panel(apps::singleTierName(kind),
              [kind](apps::World &w) {
                  apps::buildSingleTier(w, kind, 1);
                  w.app->service(w.app->entry())
                      .setThreadsPerInstance(8);
              },
              20.0, 30000.0);
    }

    // Bottom row: the end-to-end services.
    for (apps::AppId id : apps::cloudApps()) {
        panel(apps::appName(id),
              [id](apps::World &w) { apps::buildApp(w, id); }, 100.0,
              20000.0);
    }
    panel("Swarm-Cloud",
          [](apps::World &w) {
              apps::SwarmOptions so;
              so.drones = 16;
              apps::buildSwarm(w, apps::SwarmVariant::Cloud, so);
          },
          2.0, 120.0);
    return 0;
}
