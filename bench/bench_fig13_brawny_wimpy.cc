/**
 * @file
 * Fig 13: throughput vs tail latency on a high-end Xeon server, the
 * same Xeon capped to 1.8GHz, and a Cavium ThunderX (in-order wimpy
 * cores), for the end-to-end services. Prints the latency curves the
 * figure plots: the ThunderX meets latency targets only at low load
 * and saturates far earlier than either Xeon configuration.
 */

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

Tick
p99At(apps::AppId id, const cpu::CoreModel &model, double qps)
{
    apps::WorldConfig c;
    c.workerServers = 5;
    c.coreModel = model;
    apps::World w(c);
    apps::buildApp(w, id);
    auto r = drive(*w.app, qps, 0.8, 1.6, 7);
    return r.p99;
}

void
curves(apps::AppId id, const std::vector<double> &grid)
{
    TextTable table({"QPS", "Xeon p99(ms)", "Xeon@1.8 p99(ms)",
                     "ThunderX p99(ms)"});
    for (double qps : grid) {
        table.add(
            fmtDouble(qps, 0),
            fmtDouble(ticksToMs(p99At(id, cpu::CoreModel::xeon(), qps)),
                      1),
            fmtDouble(
                ticksToMs(p99At(id, cpu::CoreModel::xeonAt1800(), qps)),
                1),
            fmtDouble(
                ticksToMs(p99At(id, cpu::CoreModel::thunderx(), qps)),
                1));
    }
    printBanner(std::cout, apps::appName(id));
    table.print(std::cout);
}

} // namespace

int
main()
{
    header("Fig 13: brawny vs wimpy cores",
           "ThunderX meets the QoS target only at low load and "
           "saturates much earlier; Xeon@1.8GHz sits in between; "
           "Social Network / Media are hit hardest (strict latency), "
           "E-commerce because it is compute-heavy; Swarm least");

    const std::vector<double> cloud_grid = {250, 1000, 2500, 5000,
                                            9000, 14000};
    curves(apps::AppId::SocialNetwork, cloud_grid);
    curves(apps::AppId::MediaService, cloud_grid);
    curves(apps::AppId::Ecommerce, cloud_grid);
    curves(apps::AppId::Banking, cloud_grid);
    curves(apps::AppId::SwarmCloud, {2, 10, 25, 60, 100});
    return 0;
}
