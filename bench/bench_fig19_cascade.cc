/**
 * @file
 * Fig 19: cascading QoS violations in the Social Network. A back-end
 * hotspot (the server hosting the post/timeline storage shards slows
 * down) propagates upstream tier by tier until the front-end violates
 * QoS, while per-tier CPU utilization stays misleading: high-utilization
 * middle tiers are healthy and low-utilization tiers are the ones
 * blocked on the saturated back-end.
 */

#include <map>

#include "bench_common.hh"
#include "manager/monitor.hh"
#include "obs/culprit.hh"
#include "obs/pipeline.hh"
#include "trace/analysis.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

/** Order tiers back-end (top) to front-end (bottom), as in the figure. */
const std::vector<std::string> kTierOrder = {
    "posts-db",      "timeline-db",   "posts-memcached",
    "timeline-memcached", "writeTimeline", "postsStorage",
    "readPost",      "readTimeline",  "composePost",
    "php-fpm",       "nginx-lb",
};

} // namespace

int
main()
{
    header("Fig 19: cascading QoS violations",
           "a back-end hotspot propagates to the front-end; utilization "
           "is misleading (high-util middle tiers are not the culprits)");

    auto w = makeWorld(6);
    apps::AppOptions opt;
    opt.instancesPerTier = 1;
    apps::buildSocialNetwork(*w, opt);
    service::App &app = *w->app;

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();

    // The online observability pipeline watches the same run: an SLO
    // on end-to-end latency plus per-tier interval series, so the
    // localizer can answer "which tier degraded first" afterwards.
    obs::PipelineConfig pc;
    pc.interval = secToTicks(1.0);
    pc.ring = 256;
    pc.slo.latency = 20 * kTicksPerMs;
    pc.slo.window = 3;
    obs::Pipeline pipe(app, pc);
    pipe.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(500), 3);
    gen.setQps(1400.0);
    gen.start();

    // Healthy period, then the hotspot: the server hosting the first
    // posts-db shard becomes slow (e.g. co-scheduled antagonist).
    w->sim.runUntil(secToTicks(60.0));
    const unsigned hot_server =
        app.service("posts-db").instances()[0]->server().id();
    w->cluster.server(hot_server).setSlowFactor(14.0);
    w->sim.runUntil(secToTicks(180.0));

    const auto baseline = mon.baselineLatency(10);

    // (a) latency increase over baseline, per tier over time.
    TextTable lat({"tier \\ t(s)", "30", "60", "90", "120", "150", "180"});
    TextTable util({"tier \\ t(s)", "30", "60", "90", "120", "150", "180"});
    std::map<std::string, std::map<int, const manager::TierSample *>> grid;
    for (const auto &round : mon.history())
        for (const auto &s : round)
            grid[s.service][static_cast<int>(ticksToSec(s.time))] = &s;

    for (const std::string &tier : kTierOrder) {
        std::vector<std::string> lrow{tier}, urow{tier};
        for (int t : {30, 60, 90, 120, 150, 180}) {
            const manager::TierSample *sample = nullptr;
            for (int dt = 0; dt < 6 && !sample; ++dt) {
                auto it = grid[tier].find(t - dt);
                if (it != grid[tier].end())
                    sample = it->second;
            }
            if (!sample || !baseline.count(tier) ||
                baseline.at(tier) <= 0.0) {
                lrow.push_back("-");
                urow.push_back("-");
                continue;
            }
            const double incr =
                100.0 * (sample->meanLatency / baseline.at(tier) - 1.0);
            lrow.push_back(fmtDouble(std::max(0.0, incr), 0) + "%");
            urow.push_back(fmtDouble(100.0 * sample->occupancy, 0) + "%");
        }
        lat.addRow(lrow);
        util.addRow(urow);
    }
    printBanner(std::cout,
                "(a) latency increase vs baseline (hotspot at t=60s, "
                "back-end rows on top)");
    lat.print(std::cout);
    printBanner(std::cout,
                "(b) per-tier utilization (worker-thread occupancy)");
    util.print(std::cout);
    std::cout << "\nExpect the latency hotspot to start in the top rows "
                 "after t=60s and spread downward to nginx-lb, while "
                 "utilization alone cannot identify posts-db as the "
                 "culprit.\n";

    // (c) What the interval series say: the end-to-end SLO trips some
    // time after the hotspot, and the culprit localizer ranks tiers by
    // degradation onset — the tiers hosted on the slow server must
    // lead, with positive lead time over the user-visible violation.
    printBanner(std::cout, "(c) slo violation and culprit ranking");
    if (!pipe.slo().violated()) {
        std::cout << "no SLO violation recorded (unexpected)\n";
        return 1;
    }
    const obs::SloViolation &v = pipe.slo().violations().front();
    std::cout << "e2e p99 SLO (20ms) tripped at t="
              << fmtDouble(ticksToSec(v.time), 0) << "s (onset t="
              << fmtDouble(ticksToSec(v.onset), 0) << "s; hotspot at "
              << "t=60s on server " << hot_server << ")\n";
    trace::TraceAnalysis ta(app.traceStore());
    obs::CulpritLocalizer loc(pipe.store());
    const auto ranking =
        loc.localize(pipe.slo().firstViolationTime(),
                     obs::CulpritLocalizer::tierDepths(app),
                     ta.criticalPathBreakdown());
    std::cout << obs::culpritTable(ranking);
    if (!ranking.empty()) {
        const std::string &top = ranking.front().tier;
        const unsigned top_server = app.service(top)
                                        .instances()[0]
                                        ->server()
                                        .id();
        std::cout << "top culprit: " << top << " (hosted on server "
                  << top_server << ", hot server is " << hot_server
                  << ")\n";
    }
    return 0;
}
