/**
 * @file
 * Fig 19: cascading QoS violations in the Social Network. A back-end
 * hotspot (the server hosting the post/timeline storage shards slows
 * down) propagates upstream tier by tier until the front-end violates
 * QoS, while per-tier CPU utilization stays misleading: high-utilization
 * middle tiers are healthy and low-utilization tiers are the ones
 * blocked on the saturated back-end.
 */

#include <map>

#include "bench_common.hh"
#include "manager/monitor.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

/** Order tiers back-end (top) to front-end (bottom), as in the figure. */
const std::vector<std::string> kTierOrder = {
    "posts-db",      "timeline-db",   "posts-memcached",
    "timeline-memcached", "writeTimeline", "postsStorage",
    "readPost",      "readTimeline",  "composePost",
    "php-fpm",       "nginx-lb",
};

} // namespace

int
main()
{
    header("Fig 19: cascading QoS violations",
           "a back-end hotspot propagates to the front-end; utilization "
           "is misleading (high-util middle tiers are not the culprits)");

    auto w = makeWorld(6);
    apps::AppOptions opt;
    opt.instancesPerTier = 1;
    apps::buildSocialNetwork(*w, opt);
    service::App &app = *w->app;

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(500), 3);
    gen.setQps(1400.0);
    gen.start();

    // Healthy period, then the hotspot: the server hosting the first
    // posts-db shard becomes slow (e.g. co-scheduled antagonist).
    w->sim.runUntil(secToTicks(60.0));
    const unsigned hot_server =
        app.service("posts-db").instances()[0]->server().id();
    w->cluster.server(hot_server).setSlowFactor(14.0);
    w->sim.runUntil(secToTicks(180.0));

    const auto baseline = mon.baselineLatency(10);

    // (a) latency increase over baseline, per tier over time.
    TextTable lat({"tier \\ t(s)", "30", "60", "90", "120", "150", "180"});
    TextTable util({"tier \\ t(s)", "30", "60", "90", "120", "150", "180"});
    std::map<std::string, std::map<int, const manager::TierSample *>> grid;
    for (const auto &round : mon.history())
        for (const auto &s : round)
            grid[s.service][static_cast<int>(ticksToSec(s.time))] = &s;

    for (const std::string &tier : kTierOrder) {
        std::vector<std::string> lrow{tier}, urow{tier};
        for (int t : {30, 60, 90, 120, 150, 180}) {
            const manager::TierSample *sample = nullptr;
            for (int dt = 0; dt < 6 && !sample; ++dt) {
                auto it = grid[tier].find(t - dt);
                if (it != grid[tier].end())
                    sample = it->second;
            }
            if (!sample || !baseline.count(tier) ||
                baseline.at(tier) <= 0.0) {
                lrow.push_back("-");
                urow.push_back("-");
                continue;
            }
            const double incr =
                100.0 * (sample->meanLatency / baseline.at(tier) - 1.0);
            lrow.push_back(fmtDouble(std::max(0.0, incr), 0) + "%");
            urow.push_back(fmtDouble(100.0 * sample->occupancy, 0) + "%");
        }
        lat.addRow(lrow);
        util.addRow(urow);
    }
    printBanner(std::cout,
                "(a) latency increase vs baseline (hotspot at t=60s, "
                "back-end rows on top)");
    lat.print(std::cout);
    printBanner(std::cout,
                "(b) per-tier utilization (worker-thread occupancy)");
    util.print(std::cout);
    std::cout << "\nExpect the latency hotspot to start in the top rows "
                 "after t=60s and spread downward to nginx-lb, while "
                 "utilization alone cannot identify posts-db as the "
                 "culprit.\n";
    return 0;
}
