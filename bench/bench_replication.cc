/**
 * @file
 * Characterization of the replicated keyed-data tier: what quorum
 * writes, read preferences and 2PC transactions cost at steady state.
 *
 * Three panels over the social-network app with a keyed posts tier:
 *
 *  A. Read preference x apply lag: leader reads stay fresh but pay
 *     nothing; nearest reads spread load at the price of staleness;
 *     read-your-writes bounces recently-written keys to the leader,
 *     so redirects grow with the lag window.
 *  B. Write quorum: W=1 acks at the leader, W=2 waits for the fastest
 *     follower to apply — so the end-to-end tail tracks the configured
 *     apply lag almost linearly.
 *  C. 2PC: multi-partition write transactions add a prepare round per
 *     participant group; commits dominate at steady state and the
 *     tail pays the extra round-trips.
 *
 * `--out FILE` records every panel as JSON for CI diffing.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "bench_common.hh"
#include "core/json.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

struct RunStats
{
    workload::LoadResult load;
    std::uint64_t staleReads = 0;
    std::uint64_t rywRedirects = 0;
    std::uint64_t quorumLost = 0;
    std::uint64_t txnStarted = 0;
    std::uint64_t txnCommits = 0;
    std::uint64_t txnAborts = 0;
};

RunStats
runOnce(const apps::Scenario &scn)
{
    apps::WorldHandle w(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(w.shard(0), scn);
    apps::LoadSpec spec;
    spec.qps = scn.qps;
    spec.warmup = simTime(1.0);
    spec.measure = simTime(3.0);
    spec.users = workload::UserPopulation::uniform(scn.users);
    spec.seed = scn.seed + 1;
    RunStats out;
    out.load = apps::runWorld(w, spec);
    MetricsRegistry &m = w.shard(0).app->metrics();
    auto tier = [&m](const char *event) {
        return m.counter(std::string("replica.posts-memcached.") +
                         event)
            .value();
    };
    if (scn.replicaFactor >= 2) {
        out.staleReads = tier("stale_reads");
        out.rywRedirects = tier("ryw_redirects");
        out.quorumLost = tier("quorum_lost");
    }
    if (scn.txnKeys >= 2) {
        out.txnStarted = m.counter("rpc.txn_started").value();
        out.txnCommits = m.counter("rpc.txn_commits").value();
        out.txnAborts = m.counter("rpc.txn_aborts").value();
    }
    return out;
}

apps::Scenario
baseScenario()
{
    apps::Scenario scn;
    scn.qps = 400.0;
    scn.dataKeys = 20000;
    scn.dataCapacity = 4096;
    scn.replicaFactor = 2;
    scn.replicaQuorum = 1;
    return scn;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else
            fatal(strCat("unknown option '", a, "'"));
    }

    header("Replicated keyed-data tier characterization",
           "replication trades freshness and write latency for "
           "availability: stale follower reads are free, quorum acks "
           "and 2PC prepares are paid in the tail");

    json::Writer jw;
    jw.beginObject();
    jw.field("bench", "replication");

    // -- Panel A: read preference x apply lag -----------------------
    {
        TextTable table({"read pref", "apply lag", "p99(ms)",
                         "stale reads", "ryw redirects"});
        jw.beginArray("read_preference");
        for (const char *pref : {"leader", "nearest", "ryw"}) {
            for (const Tick lag :
                 {1 * kTicksPerMs, 5 * kTicksPerMs}) {
                apps::Scenario scn = baseScenario();
                scn.replicaRead = pref;
                scn.replicaApplyLag = lag;
                const RunStats r = runOnce(scn);
                table.add(pref, fmtDouble(ticksToMs(lag), 0) + "ms",
                          fmtDouble(ticksToMs(r.load.p99), 2),
                          r.staleReads, r.rywRedirects);
                jw.beginObject();
                jw.field("read", pref);
                jw.field("apply_lag_ms", ticksToMs(lag));
                jw.field("p99_ms", ticksToMs(r.load.p99));
                jw.field("stale_reads", r.staleReads);
                jw.field("ryw_redirects", r.rywRedirects);
                jw.endObject();
            }
        }
        jw.endArray();
        printBanner(std::cout,
                    "A. Read preference x apply lag (factor 2, W=1)");
        table.print(std::cout);
        std::cout << "leader reads never go stale; nearest reads do; "
                     "read-your-writes redirects scale with the lag "
                     "window\n";
    }

    // -- Panel B: write quorum cost ---------------------------------
    {
        TextTable table({"write quorum", "apply lag", "p99(ms)",
                         "mean(ms)"});
        jw.beginArray("write_quorum");
        for (const unsigned quorum : {1u, 2u}) {
            for (const Tick lag :
                 {1 * kTicksPerMs, 2 * kTicksPerMs, 5 * kTicksPerMs}) {
                apps::Scenario scn = baseScenario();
                scn.replicaQuorum = quorum;
                scn.replicaApplyLag = lag;
                const RunStats r = runOnce(scn);
                table.add(quorum, fmtDouble(ticksToMs(lag), 0) + "ms",
                          fmtDouble(ticksToMs(r.load.p99), 2),
                          fmtDouble(r.load.meanMs, 2));
                jw.beginObject();
                jw.field("quorum", quorum);
                jw.field("apply_lag_ms", ticksToMs(lag));
                jw.field("p99_ms", ticksToMs(r.load.p99));
                jw.field("mean_ms", r.load.meanMs);
                jw.endObject();
            }
        }
        jw.endArray();
        printBanner(std::cout, "B. Write quorum cost (factor 2)");
        table.print(std::cout);
        std::cout << "W=1 acks at the leader regardless of lag; W=2 "
                     "waits for the follower apply, so the write tail "
                     "tracks the configured lag\n";
    }

    // -- Panel C: 2PC transaction overhead --------------------------
    {
        TextTable table({"txn keys", "p99(ms)", "started", "committed",
                         "aborted"});
        jw.beginArray("transactions");
        for (const unsigned keys : {0u, 2u, 3u}) {
            apps::Scenario scn = baseScenario();
            scn.txnKeys = keys;
            const RunStats r = runOnce(scn);
            table.add(keys, fmtDouble(ticksToMs(r.load.p99), 2),
                      r.txnStarted, r.txnCommits, r.txnAborts);
            jw.beginObject();
            jw.field("txn_keys", keys);
            jw.field("p99_ms", ticksToMs(r.load.p99));
            jw.field("started", r.txnStarted);
            jw.field("committed", r.txnCommits);
            jw.field("aborted", r.txnAborts);
            jw.endObject();
        }
        jw.endArray();
        printBanner(std::cout,
                    "C. 2PC multi-partition writes (factor 2, W=1)");
        table.print(std::cout);
        std::cout << "each write-tagged stage becomes prepare rounds "
                     "across its participant groups plus a quorum "
                     "commit; healthy groups commit everything\n";
    }

    jw.endObject();
    const std::string doc = jw.str() + "\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal(strCat("cannot open '", out_path, "' for writing"));
        out << doc;
        std::cout << "wrote " << out_path << "\n";
    }
    return 0;
}
