/**
 * @file
 * Fig 11: L1 instruction-cache MPKI for every microservice of the
 * Social Network and E-commerce applications, their back-ends, and the
 * monolithic implementations.
 */

#include <algorithm>

#include "bench_common.hh"
#include "apps/profiles.hh"
#include "cpu/microarch.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
mpkiFor(apps::AppId id)
{
    auto w = makeWorld(5);
    apps::buildApp(*w, id);
    const cpu::CoreModel xeon = cpu::CoreModel::xeon();

    TextTable table({"Service", "Footprint(KB)", "L1i MPKI"});
    for (const auto *svc : w->app->services()) {
        const auto &p = svc->def().profile;
        table.add(svc->name(), fmtDouble(p.codeFootprintKb, 0),
                  fmtDouble(cpu::MicroarchModel::l1iMpki(p, xeon), 1));
    }
    const auto mono = apps::monolithProfile();
    table.add("Monolith", fmtDouble(mono.codeFootprintKb, 0),
              fmtDouble(cpu::MicroarchModel::l1iMpki(mono, xeon), 1));
    printBanner(std::cout, apps::appName(id));
    table.print(std::cout);
}

} // namespace

int
main()
{
    header("Fig 11: L1-i MPKI",
           "monolith ~65-75 >> nginx ~30, MongoDB ~38, memcached ~12 >> "
           "single-concern microservices (wishlist ~0)");
    mpkiFor(apps::AppId::SocialNetwork);
    mpkiFor(apps::AppId::Ecommerce);
    return 0;
}
