/**
 * @file
 * Tracing-overhead bench: the cost of always-on span collection.
 *
 * Drives the same end-to-end social-network requests (the
 * BM_SocialNetworkRequest workload) four times — tracing disabled,
 * trace-coherent sampling at 1-in-64, full always-on collection, and
 * full collection plus the online telemetry pipeline (per-tier latency
 * sketches sampled every 10ms of sim time) — and compares simulation
 * cost. Runs are timed with thread CPU time, not wall clock, so
 * preemption on a shared machine does not masquerade as overhead. The
 * ring-buffer span store is designed so full-on tracing stays under
 * 10% overhead, and the telemetry sampler must add under 10% on top of
 * that; this bench enforces both budgets (pass --non-fatal to report
 * without failing, e.g. on noisy CI machines).
 *
 *   bench_trace_overhead [--requests N] [--repeats N] [--non-fatal]
 */

#include <ctime>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "apps/social_network.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "obs/pipeline.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

struct Mode
{
    const char *name;
    bool tracing;
    std::uint64_t sampleEvery;
    bool telemetry;
};

/** CPU time consumed by this thread, in seconds. */
double
threadSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** One full run: @p requests back-to-back requests; returns seconds. */
double
runOnce(const Mode &mode, unsigned requests)
{
    apps::WorldConfig c;
    c.workerServers = 5;
    c.appConfig.tracing = mode.tracing;
    c.appConfig.traceSampleEvery = mode.sampleEvery;
    apps::World w(c);
    apps::buildSocialNetwork(w);
    std::unique_ptr<obs::Pipeline> pipe;
    if (mode.telemetry) {
        obs::PipelineConfig pc;
        pc.interval = 10 * kTicksPerMs;
        pc.slo.latency = 100 * kTicksPerMs; // keep the monitor armed
        pipe = std::make_unique<obs::Pipeline>(*w.app, pc);
        pipe->start();
    }
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users =
        workload::UserPopulation::uniform(100);
    Rng rng(7);

    const double begin = threadSeconds();
    for (unsigned i = 0; i < requests; ++i) {
        w.app->inject(mix.sample(rng), users.sample(rng));
        w.sim.run();
    }
    return threadSeconds() - begin;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned requests = 2000;
    unsigned repeats = 3;
    bool non_fatal = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal(strCat("missing value for ", a));
            return argv[++i];
        };
        if (a == "--requests")
            requests = static_cast<unsigned>(std::atoi(need()));
        else if (a == "--repeats")
            repeats = static_cast<unsigned>(std::atoi(need()));
        else if (a == "--non-fatal")
            non_fatal = true;
        else
            fatal(strCat("unknown option '", a, "'"));
    }
    if (requests == 0 || repeats == 0)
        fatal("--requests and --repeats must be positive");

    const Mode modes[] = {
        {"off", false, 1, false},
        {"sampled 1/64", true, 64, false},
        {"full on", true, 1, false},
        {"full on + telemetry", true, 1, true},
    };

    // Best-of-N CPU time per mode filters residual noise (cache
    // pollution from neighbors); interleave the modes so thermal drift
    // does not bias one of them.
    double best[4] = {0.0, 0.0, 0.0, 0.0};
    for (unsigned r = 0; r < repeats; ++r)
        for (int m = 0; m < 4; ++m) {
            const double secs = runOnce(modes[m], requests);
            if (r == 0 || secs < best[m])
                best[m] = secs;
        }

    printBanner(std::cout,
                strCat("tracing overhead (", std::to_string(requests),
                       " requests, best of ", std::to_string(repeats),
                       ")"));
    TextTable table({"mode", "cpu(s)", "us/request", "overhead"});
    for (int m = 0; m < 4; ++m) {
        const double over = 100.0 * (best[m] / best[0] - 1.0);
        table.add(modes[m].name, fmtDouble(best[m], 3),
                  fmtDouble(1e6 * best[m] / requests, 1),
                  fmtDouble(over, 1) + "%");
    }
    table.print(std::cout);

    const double full_overhead = 100.0 * (best[2] / best[0] - 1.0);
    const bool full_ok = full_overhead < 10.0;
    std::cout << "full-on tracing overhead: "
              << fmtDouble(full_overhead, 1) << "% (budget <10%): "
              << (full_ok ? "PASS" : "FAIL") << "\n";
    // The sampler's own cost, on top of full-on tracing: the per-event
    // clock-observer check plus the O(1) sketch updates per RPC.
    const double obs_overhead = 100.0 * (best[3] / best[2] - 1.0);
    const bool obs_ok = obs_overhead < 10.0;
    std::cout << "telemetry sampling overhead: "
              << fmtDouble(obs_overhead, 1) << "% (budget <10%): "
              << (obs_ok ? "PASS" : "FAIL") << "\n";
    if (!(full_ok && obs_ok) && !non_fatal)
        return 1;
    return 0;
}
