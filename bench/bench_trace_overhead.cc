/**
 * @file
 * Tracing-overhead bench: the cost of always-on span collection.
 *
 * Drives the same end-to-end social-network requests (the
 * BM_SocialNetworkRequest workload) three times — tracing disabled,
 * trace-coherent sampling at 1-in-64, and full always-on collection —
 * and compares wall-clock simulation time. The ring-buffer span store
 * is designed so full-on tracing stays under 10% overhead; this bench
 * enforces that budget (pass --non-fatal to report without failing,
 * e.g. on noisy CI machines).
 *
 *   bench_trace_overhead [--requests N] [--repeats N] [--non-fatal]
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/social_network.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

struct Mode
{
    const char *name;
    bool tracing;
    std::uint64_t sampleEvery;
};

/** One full run: @p requests back-to-back requests; returns seconds. */
double
runOnce(const Mode &mode, unsigned requests)
{
    apps::WorldConfig c;
    c.workerServers = 5;
    c.appConfig.tracing = mode.tracing;
    c.appConfig.traceSampleEvery = mode.sampleEvery;
    apps::World w(c);
    apps::buildSocialNetwork(w);
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users =
        workload::UserPopulation::uniform(100);
    Rng rng(7);

    const auto begin = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < requests; ++i) {
        w.app->inject(mix.sample(rng), users.sample(rng));
        w.sim.run();
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - begin).count();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned requests = 2000;
    unsigned repeats = 3;
    bool non_fatal = false;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal(strCat("missing value for ", a));
            return argv[++i];
        };
        if (a == "--requests")
            requests = static_cast<unsigned>(std::atoi(need()));
        else if (a == "--repeats")
            repeats = static_cast<unsigned>(std::atoi(need()));
        else if (a == "--non-fatal")
            non_fatal = true;
        else
            fatal(strCat("unknown option '", a, "'"));
    }
    if (requests == 0 || repeats == 0)
        fatal("--requests and --repeats must be positive");

    const Mode modes[] = {
        {"off", false, 1},
        {"sampled 1/64", true, 64},
        {"full on", true, 1},
    };

    // Best-of-N wall time per mode filters scheduler noise; interleave
    // the modes so thermal drift does not bias one of them.
    double best[3] = {0.0, 0.0, 0.0};
    for (unsigned r = 0; r < repeats; ++r)
        for (int m = 0; m < 3; ++m) {
            const double secs = runOnce(modes[m], requests);
            if (r == 0 || secs < best[m])
                best[m] = secs;
        }

    printBanner(std::cout,
                strCat("tracing overhead (", std::to_string(requests),
                       " requests, best of ", std::to_string(repeats),
                       ")"));
    TextTable table({"mode", "wall(s)", "us/request", "overhead"});
    for (int m = 0; m < 3; ++m) {
        const double over = 100.0 * (best[m] / best[0] - 1.0);
        table.add(modes[m].name, fmtDouble(best[m], 3),
                  fmtDouble(1e6 * best[m] / requests, 1),
                  fmtDouble(over, 1) + "%");
    }
    table.print(std::cout);

    const double full_overhead = 100.0 * (best[2] / best[0] - 1.0);
    const bool ok = full_overhead < 10.0;
    std::cout << "full-on tracing overhead: "
              << fmtDouble(full_overhead, 1) << "% (budget <10%): "
              << (ok ? "PASS" : "FAIL") << "\n";
    if (!ok && !non_fatal)
        return 1;
    return 0;
}
