/**
 * @file
 * Fig 22: tail-at-scale effects on the Social Network.
 *  (a) Cascading hotspots from a routing misconfiguration that funnels
 *      all composePost/readPost traffic to single instances; recovery
 *      through rate limiting.
 *  (b) Max load meeting QoS as request skew grows ([100-u] where u% of
 *      users issue 90% of requests).
 *  (c) Goodput as a fraction of servers is slow, for microservices vs
 *      monolith across cluster sizes.
 */

#include "bench_common.hh"
#include "manager/monitor.hh"
#include "manager/rate_limiter.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

// ---- (a) routing misconfiguration + rate limiting --------------------

void
panelA()
{
    auto w = makeWorld(8);
    apps::AppOptions opt;
    opt.instancesPerTier = 3;
    opt.frontendInstances = 3;
    apps::buildSocialNetwork(*w, opt);
    service::App &app = *w->app;
    // Balanced provisioning: the two misrouted tiers run with worker
    // pools sized for 1/3rd of the traffic each instance normally sees.
    app.service("composePost").setThreadsPerInstance(2);
    app.service("readPost").setThreadsPerInstance(1);

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();
    manager::RateLimiter limiter(app, 0.0); // unlimited initially

    Rng rng(11);
    workload::QueryMix mix = workload::QueryMix::fromApp(app);
    workload::UserPopulation users = workload::UserPopulation::zipf(500,
                                                                    0.9);
    const double qps = 3000.0;
    std::function<void()> arrivals = [&]() {
        limiter.tryInject(mix.sample(rng), users.sample(rng));
        const Tick gap = std::max<Tick>(
            1, static_cast<Tick>(
                   rng.exponential(static_cast<double>(kTicksPerSec) /
                                   qps)));
        w->sim.schedule(gap, arrivals);
    };
    w->sim.schedule(1, arrivals);

    TextTable table({"t(s)", "entry p99(ms)", "composePost p99(ms)",
                     "readPost p99(ms)", "rejected", "drops"});
    std::uint64_t last_rejected = 0;
    for (int t = 20; t <= 280; t += 20) {
        // Fault/recovery schedule around the stepped execution.
        if (t == 80) {
            // Switch routing misconfiguration overloads one instance
            // of composePost and readPost (t=60s in the figure).
            app.service("composePost").setRouteMisconfigured(true);
            app.service("readPost").setRouteMisconfigured(true);
        }
        if (t == 180) {
            // Operators rate-limit admitted traffic and fix routing.
            limiter.setRateQps(800.0);
            app.service("composePost").setRouteMisconfigured(false);
            app.service("readPost").setRouteMisconfigured(false);
        }
        if (t == 240)
            limiter.setRateQps(0.0); // limits lifted once queues drain
        w->sim.runUntil(secToTicks(static_cast<double>(t)));
        manager::TierSample entry, compose, read;
        for (const auto &round : {mon.history().back()})
            for (const auto &s : round) {
                if (s.service == app.entry())
                    entry = s;
                if (s.service == "composePost")
                    compose = s;
                if (s.service == "readPost")
                    read = s;
            }
        table.add(t, fmtDouble(ticksToMs(entry.p99), 1),
                  fmtDouble(ticksToMs(compose.p99), 2),
                  fmtDouble(ticksToMs(read.p99), 2),
                  limiter.rejected() - last_rejected,
                  app.droppedRequests());
        last_rejected = limiter.rejected();
    }
    printBanner(std::cout,
                "(a) routing misconfiguration at t=80s; rate limiting + "
                "fix at t=180s; limits lifted at t=240s");
    table.print(std::cout);
}

// ---- (b) request skew -------------------------------------------------

void
panelB()
{
    TextTable table({"skew %", "max QPS at QoS", "normalized"});
    double base = 0.0;
    for (double skew : {0.0, 20.0, 50.0, 80.0, 90.0, 99.0}) {
        const double max_qps = workload::findMaxQps(
            [&](double qps) {
                auto w = makeWorld(5);
                apps::AppOptions opt;
                opt.cacheShards = 8;
                opt.dbShards = 8;
                apps::buildSocialNetwork(*w, opt);
                apps::tightenStatefulTiers(*w->app, 11.0, 2, 8.0, 4);
                auto r = workload::runLoad(
                    *w->app, qps, simTime(0.8), simTime(1.6),
                    workload::QueryMix::fromApp(*w->app),
                    workload::UserPopulation::skewed(50, skew), 13);
                return r.meetsQos(w->app->config().qosLatency);
            },
            50.0, 12000.0, 6);
        if (skew == 0.0)
            base = max_qps;
        table.add(fmtDouble(skew, 0), fmtDouble(max_qps, 0),
                  fmtDouble(max_qps / std::max(1.0, base), 2));
    }
    printBanner(std::cout, "(b) max QPS under QoS vs request skew");
    table.print(std::cout);
    std::cout << "Paper: goodput collapses toward zero once <20% of "
                 "users issue the vast majority of requests.\n";
}

// ---- (c) slow servers ---------------------------------------------------

void
panelC()
{
    TextTable table({"cluster", "slow servers", "micro goodput frac",
                     "mono goodput frac"});
    for (unsigned servers : {10u, 20u, 40u}) {
        for (unsigned slow : {0u, 1u, 2u, 4u}) {
            auto frac = [&](bool monolith) {
                auto w = makeWorld(servers, 42 + servers + slow);
                apps::AppOptions opt;
                opt.instancesPerTier = std::max(1u, servers / 5);
                opt.frontendInstances = std::max(2u, servers / 4);
                opt.cacheShards = std::max(2u, servers / 5);
                opt.dbShards = std::max(2u, servers / 5);
                if (monolith)
                    apps::buildSocialNetworkMonolith(*w, opt);
                else
                    apps::buildSocialNetwork(*w, opt);
                // Balanced provisioning (Sec 3.8): tiers sized so a
                // drastically slowed instance saturates instead of
                // just running warm.
                apps::throttleLogicTiers(*w->app, 24, 8);
                // QoS sized so a slowed DB shard alone stays within budget
                // while any slowed compute instance violates it.
                w->app->setQosLatency(60 * kTicksPerMs);
                // Aggressive power management makes the affected
                // servers drastically slow (Sec 8). Start at server 2
                // so the entry load balancer itself stays healthy (the
                // paper's slow servers hit backend machines).
                for (unsigned i = 0; i < slow; ++i)
                    w->cluster.server((2 + i) % servers)
                        .setSlowFactor(300.0);
                const double qps = 120.0 * servers;
                auto r = workload::runLoad(
                    *w->app, qps, simTime(0.8), simTime(1.6),
                    workload::QueryMix::fromApp(*w->app),
                    workload::UserPopulation::uniform(1000), 17);
                return std::min(1.0, r.goodputQps /
                                         std::max(1.0, r.offeredQps));
            };
            table.add(strCat(servers, " servers"), slow,
                      fmtDouble(frac(false), 2), fmtDouble(frac(true), 2));
        }
    }
    printBanner(std::cout, "(c) goodput fraction vs slow servers");
    table.print(std::cout);
    std::cout << "Paper: >=1% slow servers push microservices goodput "
                 "toward zero at >=100 instances; the monolith only "
                 "loses the share of requests landing on slow servers "
                 "(plus shared DB shards).\n";
}

} // namespace

int
main()
{
    header("Fig 22: tail at scale",
           "(a) misrouting cascade + rate-limited recovery; (b) goodput "
           "collapse under skew; (c) slow servers hurt microservices "
           "far more than monoliths");
    panelA();
    panelB();
    panelC();
    return 0;
}
