/**
 * @file
 * Fig 22: tail-at-scale effects on the Social Network.
 *  (a) Cascading hotspots from a routing misconfiguration that funnels
 *      all composePost/readPost traffic to single instances; recovery
 *      through rate limiting.
 *  (b) Max load meeting QoS as request skew grows ([100-u] where u% of
 *      users issue 90% of requests).
 *  (c) Goodput as a fraction of servers is slow, for microservices vs
 *      monolith across cluster sizes.
 */

#include <fstream>

#include "apps/scenario.hh"
#include "bench_common.hh"
#include "core/json.hh"
#include "manager/monitor.hh"
#include "manager/rate_limiter.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

// ---- (a) routing misconfiguration + rate limiting --------------------

void
panelA()
{
    auto w = makeWorld(8);
    apps::AppOptions opt;
    opt.instancesPerTier = 3;
    opt.frontendInstances = 3;
    apps::buildSocialNetwork(*w, opt);
    service::App &app = *w->app;
    // Balanced provisioning: the two misrouted tiers run with worker
    // pools sized for 1/3rd of the traffic each instance normally sees.
    app.service("composePost").setThreadsPerInstance(2);
    app.service("readPost").setThreadsPerInstance(1);

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();
    manager::RateLimiter limiter(app, 0.0); // unlimited initially

    Rng rng(11);
    workload::QueryMix mix = workload::QueryMix::fromApp(app);
    workload::UserPopulation users = workload::UserPopulation::zipf(500,
                                                                    0.9);
    const double qps = 3000.0;
    std::function<void()> arrivals = [&]() {
        limiter.tryInject(mix.sample(rng), users.sample(rng));
        const Tick gap = std::max<Tick>(
            1, static_cast<Tick>(
                   rng.exponential(static_cast<double>(kTicksPerSec) /
                                   qps)));
        w->sim.schedule(gap, arrivals);
    };
    w->sim.schedule(1, arrivals);

    TextTable table({"t(s)", "entry p99(ms)", "composePost p99(ms)",
                     "readPost p99(ms)", "rejected", "drops"});
    std::uint64_t last_rejected = 0;
    for (int t = 20; t <= 280; t += 20) {
        // Fault/recovery schedule around the stepped execution.
        if (t == 80) {
            // Switch routing misconfiguration overloads one instance
            // of composePost and readPost (t=60s in the figure).
            app.service("composePost").setRouteMisconfigured(true);
            app.service("readPost").setRouteMisconfigured(true);
        }
        if (t == 180) {
            // Operators rate-limit admitted traffic and fix routing.
            limiter.setRateQps(800.0);
            app.service("composePost").setRouteMisconfigured(false);
            app.service("readPost").setRouteMisconfigured(false);
        }
        if (t == 240)
            limiter.setRateQps(0.0); // limits lifted once queues drain
        w->sim.runUntil(secToTicks(static_cast<double>(t)));
        manager::TierSample entry, compose, read;
        for (const auto &round : {mon.history().back()})
            for (const auto &s : round) {
                if (s.service == app.entry())
                    entry = s;
                if (s.service == "composePost")
                    compose = s;
                if (s.service == "readPost")
                    read = s;
            }
        table.add(t, fmtDouble(ticksToMs(entry.p99), 1),
                  fmtDouble(ticksToMs(compose.p99), 2),
                  fmtDouble(ticksToMs(read.p99), 2),
                  limiter.rejected() - last_rejected,
                  app.droppedRequests());
        last_rejected = limiter.rejected();
    }
    printBanner(std::cout,
                "(a) routing misconfiguration at t=80s; rate limiting + "
                "fix at t=180s; limits lifted at t=240s");
    table.print(std::cout);
}

// ---- (b) request skew -------------------------------------------------

void
panelB()
{
    TextTable table({"skew %", "max QPS at QoS", "normalized"});
    double base = 0.0;
    for (double skew : {0.0, 20.0, 50.0, 80.0, 90.0, 99.0}) {
        const double max_qps = workload::findMaxQps(
            [&](double qps) {
                auto w = makeWorld(5);
                apps::AppOptions opt;
                opt.cacheShards = 8;
                opt.dbShards = 8;
                apps::buildSocialNetwork(*w, opt);
                apps::tightenStatefulTiers(*w->app, 11.0, 2, 8.0, 4);
                auto r = workload::runLoad(
                    *w->app, qps, simTime(0.8), simTime(1.6),
                    workload::QueryMix::fromApp(*w->app),
                    workload::UserPopulation::skewed(50, skew), 13);
                return r.meetsQos(w->app->config().qosLatency);
            },
            50.0, 12000.0, 6);
        if (skew == 0.0)
            base = max_qps;
        table.add(fmtDouble(skew, 0), fmtDouble(max_qps, 0),
                  fmtDouble(max_qps / std::max(1.0, base), 2));
    }
    printBanner(std::cout, "(b) max QPS under QoS vs request skew");
    table.print(std::cout);
    std::cout << "Paper: goodput collapses toward zero once <20% of "
                 "users issue the vast majority of requests.\n";
}

// ---- (c) slow servers ---------------------------------------------------

void
panelC()
{
    TextTable table({"cluster", "slow servers", "micro goodput frac",
                     "mono goodput frac"});
    for (unsigned servers : {10u, 20u, 40u}) {
        for (unsigned slow : {0u, 1u, 2u, 4u}) {
            auto frac = [&](bool monolith) {
                auto w = makeWorld(servers, 42 + servers + slow);
                apps::AppOptions opt;
                opt.instancesPerTier = std::max(1u, servers / 5);
                opt.frontendInstances = std::max(2u, servers / 4);
                opt.cacheShards = std::max(2u, servers / 5);
                opt.dbShards = std::max(2u, servers / 5);
                if (monolith)
                    apps::buildSocialNetworkMonolith(*w, opt);
                else
                    apps::buildSocialNetwork(*w, opt);
                // Balanced provisioning (Sec 3.8): tiers sized so a
                // drastically slowed instance saturates instead of
                // just running warm.
                apps::throttleLogicTiers(*w->app, 24, 8);
                // QoS sized so a slowed DB shard alone stays within budget
                // while any slowed compute instance violates it.
                w->app->setQosLatency(60 * kTicksPerMs);
                // Aggressive power management makes the affected
                // servers drastically slow (Sec 8). Start at server 2
                // so the entry load balancer itself stays healthy (the
                // paper's slow servers hit backend machines).
                for (unsigned i = 0; i < slow; ++i)
                    w->cluster.server((2 + i) % servers)
                        .setSlowFactor(300.0);
                const double qps = 120.0 * servers;
                auto r = workload::runLoad(
                    *w->app, qps, simTime(0.8), simTime(1.6),
                    workload::QueryMix::fromApp(*w->app),
                    workload::UserPopulation::uniform(1000), 17);
                return std::min(1.0, r.goodputQps /
                                         std::max(1.0, r.offeredQps));
            };
            table.add(strCat(servers, " servers"), slow,
                      fmtDouble(frac(false), 2), fmtDouble(frac(true), 2));
        }
    }
    printBanner(std::cout, "(c) goodput fraction vs slow servers");
    table.print(std::cout);
    std::cout << "Paper: >=1% slow servers push microservices goodput "
                 "toward zero at >=100 instances; the monolith only "
                 "loses the share of requests landing on slow servers "
                 "(plus shared DB shards).\n";
}

// ---- (d) keyed hot-key skew -------------------------------------------

/**
 * Keyed data tier under increasing Zipf key skew. The caches are far
 * smaller than the key universe, so the hit ratio is emergent: heavier
 * skew concentrates accesses on fewer keys (hit ratio climbs) while the
 * hottest keys hash to single cache shards (hot-shard tails). Results
 * go to the table and, with --out FILE, to a JSON series.
 */
void
panelD(const std::string &out_path)
{
    TextTable table(
        {"zipf s", "lookups", "hit %", "p50(ms)", "p99(ms)"});
    json::Writer w;
    w.beginObject();
    w.beginArray("keyed_skew");
    for (const double s : {0.9, 1.1, 1.3}) {
        apps::Scenario scn;
        scn.qps = 600.0;
        scn.dataKeys = 100000;
        scn.dataCapacity = 1024;
        scn.dataZipfS = s;
        apps::WorldHandle sw(apps::worldConfigFor(scn), 1, 1);
        apps::buildScenarioApp(sw.shard(0), scn);
        apps::LoadSpec load;
        load.qps = scn.qps;
        load.warmup = simTime(1.0);
        load.measure = simTime(4.0);
        load.users = workload::UserPopulation::uniform(scn.users);
        load.seed = scn.seed + 1;
        const auto r = apps::runWorld(sw, load);

        // Aggregate hit ratio over every keyed tier (registry counters
        // include misses on downed shards, none here).
        std::uint64_t hits = 0, misses = 0;
        service::App &app = *sw.shard(0).app;
        for (service::Microservice *svc : app.services()) {
            if (!svc->hasCacheModels())
                continue;
            MetricsRegistry &m = app.metrics();
            hits += m.counter("data." + svc->name() + ".hits").value();
            misses +=
                m.counter("data." + svc->name() + ".misses").value();
        }
        const std::uint64_t lookups = hits + misses;
        const double hit_ratio =
            lookups ? static_cast<double>(hits) /
                          static_cast<double>(lookups)
                    : 0.0;
        table.add(fmtDouble(s, 1), lookups,
                  fmtDouble(100.0 * hit_ratio, 1),
                  fmtDouble(ticksToMs(r.p50), 2),
                  fmtDouble(ticksToMs(r.p99), 2));
        w.beginObject();
        w.field("zipf_s", s);
        w.field("lookups", lookups);
        w.field("hit_ratio", hit_ratio);
        w.field("p50_ms", ticksToMs(r.p50));
        w.field("p99_ms", ticksToMs(r.p99));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    printBanner(std::cout,
                "(d) keyed data tier: emergent hit ratio and tail vs "
                "Zipf key skew");
    table.print(std::cout);
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal(strCat("cannot open '", out_path, "' for writing"));
        out << w.str() << "\n";
        std::cout << "wrote keyed-skew series to " << out_path << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string panels = "abcd";
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (a == "--panels" && i + 1 < argc)
            panels = argv[++i];
        else
            fatal(strCat("unknown argument '", a,
                         "' (want --out FILE, --panels abcd)"));
    }
    header("Fig 22: tail at scale",
           "(a) misrouting cascade + rate-limited recovery; (b) goodput "
           "collapse under skew; (c) slow servers hurt microservices "
           "far more than monoliths; (d) keyed hot-key skew");
    if (panels.find('a') != std::string::npos)
        panelA();
    if (panels.find('b') != std::string::npos)
        panelB();
    if (panels.find('c') != std::string::npos)
        panelC();
    if (panels.find('d') != std::string::npos)
        panelD(out_path);
    return 0;
}
