/**
 * @file
 * Fig 20: recovery from a QoS violation under autoscaling, for the
 * microservices Social Network vs its monolithic implementation. Both
 * see the same load spike; the monolith recovers quickly because the
 * autoscaler just clones the single binary, while the microservices
 * version upsizes the most-utilized (wrong) tiers first and takes far
 * longer to reach the culprit.
 */

#include "apps/scenario.hh"
#include "bench_common.hh"
#include "fault/injector.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "manager/qos.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
runDesign(bool monolith, const char *label)
{
    auto w = makeWorld(8);
    if (monolith)
        apps::buildSocialNetworkMonolith(*w);
    else
        apps::buildSocialNetwork(*w);
    service::App &app = *w->app;
    app.setQosLatency(20 * kTicksPerMs);
    // Balanced provisioning (Sec 3.8): per-tier worker pools sized so
    // tiers saturate within the load range the experiment drives.
    apps::throttleLogicTiers(app, /*frontend=*/24, /*logic=*/2);

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();
    manager::AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = secToTicks(5.0);
    cfg.startupDelay = secToTicks(15.0);
    cfg.cooldown = secToTicks(20.0);
    cfg.signal = manager::AutoScaler::Signal::ThreadOccupancy;
    cfg.maxScaleOutsPerRound = 1; // gradual upsizing, as real scalers
    manager::AutoScaler scaler(app, mon, cfg, [&]() -> cpu::Server & {
        return w->nextWorker();
    });
    scaler.watchAllStateless();
    scaler.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(500), 3);
    gen.setQps(400.0);
    gen.start();

    // Load spike at t=60s pushes several tiers past saturation.
    w->sim.runUntil(secToTicks(60.0));
    gen.setQps(3600.0);
    w->sim.runUntil(secToTicks(300.0));

    TextTable table({"t(s)", "entry p99(ms)", "QoS?", "instances added"});
    std::size_t events_seen = 0;
    for (const auto &round : mon.history()) {
        const int t = static_cast<int>(ticksToSec(round[0].time));
        if (t % 15 != 0)
            continue;
        manager::TierSample entry;
        for (const auto &s : round)
            if (s.service == app.entry())
                entry = s;
        std::size_t added = 0;
        for (const auto &e : scaler.events())
            if (e.time <= round[0].time)
                ++added;
        table.add(t, fmtDouble(ticksToMs(entry.p99), 1),
                  entry.p99 <= app.config().qosLatency ? "ok" : "VIOL",
                  added);
        events_seen = added;
    }
    printBanner(std::cout, label);
    table.print(std::cout);

    manager::QosTracker qos(app, mon, app.config().qosLatency);
    const Tick detect = qos.firstEndToEndViolation();
    const Tick recover = detect ? qos.recoveryTime(detect, 2) : 0;
    if (detect == 0) {
        std::cout << "no QoS violation observed; scale-outs="
                  << events_seen << "\n";
    } else {
        std::cout << "QoS violation detected at t="
                  << fmtDouble(ticksToSec(detect), 0)
                  << "s; recovery took "
                  << (recover ? fmtDouble(ticksToSec(recover), 0) + "s"
                              : std::string(
                                    "(not recovered in window)"))
                  << "; scale-outs=" << events_seen << "\n";
    }
}

/**
 * Post-crash cold-cache recovery: crash one posts-memcached shard for
 * 2s under keyed steady load. While it is down its keys are
 * unreachable (hit-ratio dip); on restart the shard is cold, so the
 * dip persists until the hot set re-warms — and every one of those
 * extra misses is a database round-trip, which is the entry-tier p99
 * overshoot *after* the fault has already cleared.
 */
void
runColdCacheRecovery()
{
    apps::Scenario scn;
    scn.qps = 600.0;
    scn.dataKeys = 20000;
    scn.dataCapacity = 4096;

    apps::ShardedWorld sw(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(sw.shard(0), scn);
    service::App &app = *sw.shard(0).app;

    fault::FaultInjector inj(app, scn.seed);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.service = "posts-memcached";
    crash.instance = 0;
    crash.start = simTime(6.0);
    crash.duration = simTime(2.0);
    inj.add(crash);
    inj.arm();

    manager::Monitor mon(app, simTime(1.0));
    mon.start();

    apps::runShardedLoad(sw, scn.qps, 0, simTime(20.0),
                         workload::UserPopulation::uniform(scn.users),
                         scn.seed + 1);

    TextTable table({"t(s)", "posts-mc hit %", "lookups",
                     "entry p99(ms)"});
    for (const auto &round : mon.history()) {
        manager::TierSample cache, entry;
        for (const auto &s : round) {
            if (s.service == "posts-memcached")
                cache = s;
            if (s.service == app.entry())
                entry = s;
        }
        table.add(fmtDouble(ticksToSec(round[0].time) / timeScale(), 0),
                  fmtDouble(100.0 * cache.hitRatio, 1),
                  cache.cacheLookups, fmtDouble(ticksToMs(entry.p99), 2));
    }
    printBanner(std::cout,
                "Keyed data tier: cold-cache warm-up after a "
                "posts-memcached crash (down t=6s..8s)");
    table.print(std::cout);
    const data::CacheStats st =
        app.service("posts-memcached").dataStats();
    std::cout << "cold restarts=" << st.coldRestarts
              << "; evictions=" << st.evictions
              << "; the post-restart rows show the hit ratio climbing "
                 "back while p99 overshoots on the extra DB fills\n";
}

} // namespace

int
main()
{
    header("Fig 20: recovery from QoS violation with autoscaling",
           "microservices take much longer than the monolith to recover "
           "because the autoscaler upsizes saturated-looking tiers that "
           "are not the culprit");
    runDesign(true, "Monolith + autoscaler");
    runDesign(false, "Microservices + autoscaler");
    runColdCacheRecovery();
    return 0;
}
