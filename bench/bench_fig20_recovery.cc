/**
 * @file
 * Fig 20: recovery from a QoS violation under autoscaling, for the
 * microservices Social Network vs its monolithic implementation. Both
 * see the same load spike; the monolith recovers quickly because the
 * autoscaler just clones the single binary, while the microservices
 * version upsizes the most-utilized (wrong) tiers first and takes far
 * longer to reach the culprit.
 */

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "bench_common.hh"
#include "core/json.hh"
#include "fault/injector.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "manager/qos.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
runDesign(bool monolith, const char *label)
{
    auto w = makeWorld(8);
    if (monolith)
        apps::buildSocialNetworkMonolith(*w);
    else
        apps::buildSocialNetwork(*w);
    service::App &app = *w->app;
    app.setQosLatency(20 * kTicksPerMs);
    // Balanced provisioning (Sec 3.8): per-tier worker pools sized so
    // tiers saturate within the load range the experiment drives.
    apps::throttleLogicTiers(app, /*frontend=*/24, /*logic=*/2);

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();
    manager::AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = secToTicks(5.0);
    cfg.startupDelay = secToTicks(15.0);
    cfg.cooldown = secToTicks(20.0);
    cfg.signal = manager::AutoScaler::Signal::ThreadOccupancy;
    cfg.maxScaleOutsPerRound = 1; // gradual upsizing, as real scalers
    manager::AutoScaler scaler(app, mon, cfg, [&]() -> cpu::Server & {
        return w->nextWorker();
    });
    scaler.watchAllStateless();
    scaler.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(500), 3);
    gen.setQps(400.0);
    gen.start();

    // Load spike at t=60s pushes several tiers past saturation.
    w->sim.runUntil(secToTicks(60.0));
    gen.setQps(3600.0);
    w->sim.runUntil(secToTicks(300.0));

    TextTable table({"t(s)", "entry p99(ms)", "QoS?", "instances added"});
    std::size_t events_seen = 0;
    for (const auto &round : mon.history()) {
        const int t = static_cast<int>(ticksToSec(round[0].time));
        if (t % 15 != 0)
            continue;
        manager::TierSample entry;
        for (const auto &s : round)
            if (s.service == app.entry())
                entry = s;
        std::size_t added = 0;
        for (const auto &e : scaler.events())
            if (e.time <= round[0].time)
                ++added;
        table.add(t, fmtDouble(ticksToMs(entry.p99), 1),
                  entry.p99 <= app.config().qosLatency ? "ok" : "VIOL",
                  added);
        events_seen = added;
    }
    printBanner(std::cout, label);
    table.print(std::cout);

    manager::QosTracker qos(app, mon, app.config().qosLatency);
    const Tick detect = qos.firstEndToEndViolation();
    const Tick recover = detect ? qos.recoveryTime(detect, 2) : 0;
    if (detect == 0) {
        std::cout << "no QoS violation observed; scale-outs="
                  << events_seen << "\n";
    } else {
        std::cout << "QoS violation detected at t="
                  << fmtDouble(ticksToSec(detect), 0)
                  << "s; recovery took "
                  << (recover ? fmtDouble(ticksToSec(recover), 0) + "s"
                              : std::string(
                                    "(not recovered in window)"))
                  << "; scale-outs=" << events_seen << "\n";
    }
}

/** One sampling-interval row of a crash-recovery curve. */
struct CurvePoint
{
    double t = 0.0; ///< unscaled seconds
    double hitRatio = 0.0;
    std::uint64_t lookups = 0;
    double entryP99Ms = 0.0;
};

/** One crash-recovery run of the posts-memcached tier. */
struct RecoveryOutcome
{
    std::vector<CurvePoint> curve;
    double baseline = 0.0;    ///< pre-crash mean hit ratio
    double recoverySec = 0.0; ///< crash start -> hit ratio restored
    std::uint64_t coldRestarts = 0;
    std::uint64_t failovers = 0;
    std::uint64_t logTrims = 0;
};

constexpr double kCrashStartSec = 6.0;
constexpr double kCrashDurSec = 2.0;

/**
 * Post-crash recovery of the keyed posts tier under steady load,
 * replicated or not. Unreplicated (the PR-5 arc): while the shard is
 * down its keys are unreachable, and the restart is *cold*, so the
 * hit-ratio dip persists until the hot set re-warms — every extra
 * miss a database round-trip, which is the entry-tier p99 overshoot
 * after the fault has cleared. Replicated: the crash deposes group
 * 0's leader, the caught-up follower is promoted after one election
 * timeout with the warm store minus the un-applied log tail, and the
 * hit ratio snaps back without any cold warm-up.
 */
RecoveryOutcome
runCacheRecovery(bool replicated)
{
    apps::Scenario scn;
    scn.qps = 600.0;
    scn.dataKeys = 20000;
    scn.dataCapacity = 4096;
    if (replicated) {
        scn.replicaFactor = 2;
        scn.replicaQuorum = 1; // the lone survivor can still lead
    }

    apps::WorldHandle sw(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(sw.shard(0), scn);
    service::App &app = *sw.shard(0).app;

    fault::FaultInjector inj(app, scn.seed);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.service = "posts-memcached";
    crash.instance = 0; // group 0 when role-addressed
    crash.role = replicated ? fault::CrashRole::Leader
                            : fault::CrashRole::None;
    crash.start = simTime(kCrashStartSec);
    crash.duration = simTime(kCrashDurSec);
    inj.add(crash);
    inj.arm();

    manager::Monitor mon(app, simTime(0.25));
    mon.start();

    apps::LoadSpec load;
    load.qps = scn.qps;
    load.measure = simTime(20.0);
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    apps::runWorld(sw, load);

    RecoveryOutcome out;
    for (const auto &round : mon.history()) {
        manager::TierSample cache, entry;
        for (const auto &s : round) {
            if (s.service == "posts-memcached")
                cache = s;
            if (s.service == app.entry())
                entry = s;
        }
        CurvePoint p;
        p.t = ticksToSec(round[0].time) / timeScale();
        p.hitRatio = cache.hitRatio;
        p.lookups = cache.cacheLookups;
        p.entryP99Ms = ticksToMs(entry.p99);
        out.curve.push_back(p);
    }

    // Pre-crash baseline, then recovery = crash start until two
    // consecutive samples are back within 90% of it (one sample can
    // flatter a cold store that merely got lucky).
    double sum = 0.0;
    unsigned n = 0;
    for (const CurvePoint &p : out.curve)
        if (p.t > 2.0 && p.t <= kCrashStartSec && p.lookups > 0) {
            sum += p.hitRatio;
            ++n;
        }
    out.baseline = n ? sum / n : 0.0;
    const double bar = 0.9 * out.baseline;
    for (std::size_t i = 0; i + 1 < out.curve.size(); ++i) {
        const CurvePoint &a = out.curve[i];
        const CurvePoint &b = out.curve[i + 1];
        if (a.t <= kCrashStartSec)
            continue;
        if (a.lookups > 0 && a.hitRatio >= bar && b.lookups > 0 &&
            b.hitRatio >= bar) {
            out.recoverySec = a.t - kCrashStartSec;
            break;
        }
    }

    const data::CacheStats st =
        app.service("posts-memcached").dataStats();
    out.coldRestarts = st.coldRestarts;
    if (replicated) {
        out.failovers =
            app.metrics()
                .counter("replica.posts-memcached.failovers")
                .value();
        out.logTrims =
            app.metrics()
                .counter("replica.posts-memcached.log_trims")
                .value();
    }
    return out;
}

void
printRecovery(const RecoveryOutcome &r, const char *label)
{
    TextTable table({"t(s)", "posts-mc hit %", "lookups",
                     "entry p99(ms)"});
    for (const CurvePoint &p : r.curve) {
        // The 0.25s sampling grain feeds the recovery metric; the
        // printed table keeps the 1s rows readable.
        const double frac = p.t - static_cast<double>(
                                      static_cast<long>(p.t));
        if (frac > 0.01)
            continue;
        table.add(fmtDouble(p.t, 0), fmtDouble(100.0 * p.hitRatio, 1),
                  p.lookups, fmtDouble(p.entryP99Ms, 2));
    }
    printBanner(std::cout, label);
    table.print(std::cout);
    std::cout << "cold restarts=" << r.coldRestarts
              << "; failovers=" << r.failovers
              << "; log trims=" << r.logTrims << "; recovery="
              << (r.recoverySec > 0.0
                      ? fmtDouble(r.recoverySec, 2) + "s"
                      : std::string("(not within window)"))
              << " after the crash hit\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&] {
            if (i + 1 >= argc)
                fatal(strCat("missing value for ", a));
            return std::string(argv[++i]);
        };
        if (a == "--out")
            out_path = need();
        else if (a == "--min-failover-speedup")
            min_speedup = std::atof(need().c_str());
        else
            fatal(strCat("unknown option '", a, "'"));
    }

    header("Fig 20: recovery from QoS violation with autoscaling",
           "microservices take much longer than the monolith to recover "
           "because the autoscaler upsizes saturated-looking tiers that "
           "are not the culprit");
    runDesign(true, "Monolith + autoscaler");
    runDesign(false, "Microservices + autoscaler");

    // Replicated panel: the same leader crash, with and without the
    // replica layer. Failover inherits the warm store; the cold
    // restart has to re-learn the hot set from the database.
    const RecoveryOutcome cold = runCacheRecovery(false);
    const RecoveryOutcome warm = runCacheRecovery(true);
    printRecovery(cold,
                  "Unreplicated: cold-cache warm-up after a "
                  "posts-memcached crash (down t=6s..8s)");
    printRecovery(warm,
                  "Replicated (factor 2, W=1): leader failover with "
                  "log catch-up, same crash window");

    const double window = 20.0 - kCrashStartSec; // recovery bound
    const double cold_eff =
        cold.recoverySec > 0.0 ? cold.recoverySec : window;
    const double speedup =
        warm.recoverySec > 0.0 ? cold_eff / warm.recoverySec : 0.0;
    std::cout << "\nfailover recovery speedup over cold restart: "
              << (warm.recoverySec > 0.0
                      ? fmtDouble(speedup, 1) + "x"
                      : std::string("(never recovered)"))
              << "\n";

    json::Writer w;
    w.beginObject();
    w.field("bench", "fig20_recovery_replicated");
    w.field("crash_start_s", kCrashStartSec);
    w.field("crash_dur_s", kCrashDurSec);
    w.field("speedup", speedup);
    auto emit = [&w](const char *name, const RecoveryOutcome &r) {
        w.beginObject(name);
        w.field("baseline_hit_ratio", r.baseline);
        w.field("recovery_s", r.recoverySec);
        w.field("cold_restarts", r.coldRestarts);
        w.field("failovers", r.failovers);
        w.field("log_trims", r.logTrims);
        w.beginArray("curve");
        for (const CurvePoint &p : r.curve) {
            w.beginObject();
            w.field("t_s", p.t);
            w.field("hit_ratio", p.hitRatio);
            w.field("lookups", p.lookups);
            w.field("entry_p99_ms", p.entryP99Ms);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    };
    emit("cold", cold);
    emit("replicated", warm);
    w.endObject();
    const std::string doc = w.str() + "\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal(strCat("cannot open '", out_path,
                         "' for writing"));
        out << doc;
        std::cout << "wrote " << out_path << "\n";
    }

    if (min_speedup > 0.0 &&
        (warm.recoverySec <= 0.0 || speedup < min_speedup)) {
        std::cerr << "FAIL: replicated failover recovered "
                  << (warm.recoverySec > 0.0
                          ? fmtDouble(speedup, 2) + "x"
                          : std::string("never"))
                  << " vs the cold restart, below the "
                  << "--min-failover-speedup gate of " << min_speedup
                  << "x\n";
        return 1;
    }
    return 0;
}
