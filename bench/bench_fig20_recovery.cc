/**
 * @file
 * Fig 20: recovery from a QoS violation under autoscaling, for the
 * microservices Social Network vs its monolithic implementation. Both
 * see the same load spike; the monolith recovers quickly because the
 * autoscaler just clones the single binary, while the microservices
 * version upsizes the most-utilized (wrong) tiers first and takes far
 * longer to reach the culprit.
 */

#include "bench_common.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "manager/qos.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
runDesign(bool monolith, const char *label)
{
    auto w = makeWorld(8);
    if (monolith)
        apps::buildSocialNetworkMonolith(*w);
    else
        apps::buildSocialNetwork(*w);
    service::App &app = *w->app;
    app.setQosLatency(20 * kTicksPerMs);
    // Balanced provisioning (Sec 3.8): per-tier worker pools sized so
    // tiers saturate within the load range the experiment drives.
    apps::throttleLogicTiers(app, /*frontend=*/24, /*logic=*/2);

    manager::Monitor mon(app, secToTicks(5.0));
    mon.start();
    manager::AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = secToTicks(5.0);
    cfg.startupDelay = secToTicks(15.0);
    cfg.cooldown = secToTicks(20.0);
    cfg.signal = manager::AutoScaler::Signal::ThreadOccupancy;
    cfg.maxScaleOutsPerRound = 1; // gradual upsizing, as real scalers
    manager::AutoScaler scaler(app, mon, cfg, [&]() -> cpu::Server & {
        return w->nextWorker();
    });
    scaler.watchAllStateless();
    scaler.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(500), 3);
    gen.setQps(400.0);
    gen.start();

    // Load spike at t=60s pushes several tiers past saturation.
    w->sim.runUntil(secToTicks(60.0));
    gen.setQps(3600.0);
    w->sim.runUntil(secToTicks(300.0));

    TextTable table({"t(s)", "entry p99(ms)", "QoS?", "instances added"});
    std::size_t events_seen = 0;
    for (const auto &round : mon.history()) {
        const int t = static_cast<int>(ticksToSec(round[0].time));
        if (t % 15 != 0)
            continue;
        manager::TierSample entry;
        for (const auto &s : round)
            if (s.service == app.entry())
                entry = s;
        std::size_t added = 0;
        for (const auto &e : scaler.events())
            if (e.time <= round[0].time)
                ++added;
        table.add(t, fmtDouble(ticksToMs(entry.p99), 1),
                  entry.p99 <= app.config().qosLatency ? "ok" : "VIOL",
                  added);
        events_seen = added;
    }
    printBanner(std::cout, label);
    table.print(std::cout);

    manager::QosTracker qos(app, mon, app.config().qosLatency);
    const Tick detect = qos.firstEndToEndViolation();
    const Tick recover = detect ? qos.recoveryTime(detect, 2) : 0;
    if (detect == 0) {
        std::cout << "no QoS violation observed; scale-outs="
                  << events_seen << "\n";
    } else {
        std::cout << "QoS violation detected at t="
                  << fmtDouble(ticksToSec(detect), 0)
                  << "s; recovery took "
                  << (recover ? fmtDouble(ticksToSec(recover), 0) + "s"
                              : std::string(
                                    "(not recovered in window)"))
                  << "; scale-outs=" << events_seen << "\n";
    }
}

} // namespace

int
main()
{
    header("Fig 20: recovery from QoS violation with autoscaling",
           "microservices take much longer than the monolith to recover "
           "because the autoscaler upsizes saturated-looking tiers that "
           "are not the culprit");
    runDesign(true, "Monolith + autoscaler");
    runDesign(false, "Microservices + autoscaler");
    return 0;
}
