/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Every bench binary regenerates one table/figure of the paper: it
 * builds fresh worlds per data point, drives them with the workload
 * harness, and prints the same rows/series the paper reports, with the
 * paper's headline numbers quoted alongside for comparison (see
 * EXPERIMENTS.md). Durations scale down when UQSIM_FAST is set.
 */

#ifndef UQSIM_BENCH_COMMON_HH
#define UQSIM_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "apps/catalog.hh"
#include "apps/single_tier.hh"
#include "apps/social_network.hh"
#include "apps/swarm.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "workload/load_sweep.hh"

namespace uqsim::bench {

/** Global duration scale: 1.0 normally, 0.4 under UQSIM_FAST. */
inline double
timeScale()
{
    static const double scale = std::getenv("UQSIM_FAST") ? 0.4 : 1.0;
    return scale;
}

/** Scaled simulated duration. */
inline Tick
simTime(double seconds)
{
    return secToTicks(seconds * timeScale());
}

/** Fresh world with the given worker count / core model. */
inline std::unique_ptr<apps::World>
makeWorld(unsigned servers, std::uint64_t seed = 42,
          cpu::CoreModel model = cpu::CoreModel::xeon())
{
    apps::WorldConfig c;
    c.workerServers = servers;
    c.coreModel = std::move(model);
    c.seed = seed;
    return std::make_unique<apps::World>(c);
}

/** Drive an app with its own query mix at the given rate. */
inline workload::LoadResult
drive(service::App &app, double qps, double warm_s, double measure_s,
      std::uint64_t seed = 7, std::uint64_t users = 1000)
{
    return workload::runLoad(app, qps, simTime(warm_s),
                             simTime(measure_s),
                             workload::QueryMix::fromApp(app),
                             workload::UserPopulation::uniform(users),
                             seed);
}

/** Print the bench header with the paper reference. */
inline void
header(const std::string &what, const std::string &paper_claim)
{
    std::cout << "\n################################################\n"
              << "# " << what << "\n"
              << "# Paper reference: " << paper_claim << "\n"
              << "################################################\n";
}

} // namespace uqsim::bench

#endif // UQSIM_BENCH_COMMON_HH
