/**
 * @file
 * Sec 7 (Application & Programming Framework Implications): the
 * performance trade-off between binary RPC and RESTful HTTP APIs.
 *
 * The paper observes that RPCs introduce considerably lower latency
 * than HTTP at low load, while at high load network processing hurts
 * both (Sec 5), and HTTP/1's connection blocking additionally exposes
 * services to backpressure (Sec 6). This bench rebuilds the Social
 * Network with every internal edge switched between Apache-Thrift-like
 * RPC, gRPC and REST/HTTP1 and compares latency and network work.
 */

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

/** Switch every non-frontend tier's inbound protocol. */
void
setInternalProtocol(service::App &app, const rpc::ProtocolModel &proto)
{
    for (service::Microservice *svc : app.services()) {
        if (svc->def().kind == service::ServiceKind::Frontend)
            continue; // client-facing edges stay HTTP
        svc->mutableDef().protocol = proto;
    }
}

struct Row
{
    double meanMs, netShare;
    Tick p50, p99;
};

Row
run(const rpc::ProtocolModel &proto, double qps)
{
    auto w = makeWorld(5);
    apps::buildSocialNetwork(*w);
    setInternalProtocol(*w->app, proto);
    auto r = drive(*w->app, qps, 1.0, 3.0);
    return Row{r.meanMs, r.networkShare, r.p50, r.p99};
}

} // namespace

int
main()
{
    header("Sec 7: RPC vs RESTful APIs",
           "RPCs introduce considerably lower latencies than HTTP at "
           "low load; at high load network processing dominates both "
           "(Sec 5), and HTTP/1 connection blocking adds backpressure "
           "risk (Sec 6)");

    TextTable table({"internal protocol", "load", "mean(ms)", "p50(ms)",
                     "p99(ms)", "net work share"});
    struct Proto
    {
        const char *name;
        rpc::ProtocolModel model;
    };
    const Proto protos[] = {
        {"Thrift RPC", rpc::ProtocolModel::thrift()},
        {"gRPC", rpc::ProtocolModel::grpc()},
        {"REST/HTTP1", rpc::ProtocolModel::restHttp1()},
    };
    for (const Proto &p : protos) {
        for (double qps : {150.0, 3000.0}) {
            const Row r = run(p.model, qps);
            table.add(p.name, fmtDouble(qps, 0) + " qps",
                      fmtDouble(r.meanMs, 2),
                      fmtDouble(ticksToMs(r.p50), 2),
                      fmtDouble(ticksToMs(r.p99), 2),
                      fmtDouble(100.0 * r.netShare, 1) + "%");
        }
    }
    table.print(std::cout);
    std::cout << "\nExpect Thrift < gRPC < REST at every load: smaller "
                 "framing and cheaper (de)serialization; the REST "
                 "configuration also carries HTTP/1 blocking pools on "
                 "every internal edge.\n";
    return 0;
}
