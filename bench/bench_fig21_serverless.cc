/**
 * @file
 * Fig 21: performance and cost of the end-to-end services on
 * reserved containers (EC2) vs AWS-Lambda-style functions with S3 or
 * remote-memory state passing (top), and tail latency under a
 * compressed diurnal load for EC2-with-autoscaler vs Lambda (bottom).
 */

#include "bench_common.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "serverless/platform.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

struct Percentiles
{
    Tick p5, p25, p50, p75, p95;
};

Percentiles
pct(const Histogram &h)
{
    return {h.percentile(5), h.percentile(25), h.percentile(50),
            h.percentile(75), h.percentile(95)};
}

std::string
boxRow(const Percentiles &p)
{
    return strCat(fmtDouble(ticksToMs(p.p5), 1), " / ",
                  fmtDouble(ticksToMs(p.p25), 1), " / ",
                  fmtDouble(ticksToMs(p.p50), 1), " / ",
                  fmtDouble(ticksToMs(p.p75), 1), " / ",
                  fmtDouble(ticksToMs(p.p95), 1));
}

void
topPanel()
{
    TextTable table({"Service", "Platform", "lat p5/p25/p50/p75/p95 (ms)",
                     "cost ($ / 10min)"});
    const serverless::Ec2CostModel ec2_cost;
    const serverless::LambdaCostModel lambda_cost;
    const Tick window = secToTicks(600.0); // the paper's 10 minutes

    struct Pt
    {
        apps::AppId id;
        double qps;
        unsigned ec2Instances; // paper: 20-64 m5.12xlarge per service
    };
    // EC2 fleet sizes back-derived from the paper's 10-minute costs
    // (m5.12xlarge at $2.304/h): $28.8 / $24.1 / $37.6 / $21.6 / $14.8.
    for (const Pt &pt : {Pt{apps::AppId::SocialNetwork, 300, 75},
                         Pt{apps::AppId::MediaService, 250, 63},
                         Pt{apps::AppId::Ecommerce, 250, 98},
                         Pt{apps::AppId::Banking, 250, 56},
                         Pt{apps::AppId::SwarmCloud, 10, 39}}) {
        // EC2: reserved containers.
        {
            auto w = makeWorld(5);
            apps::buildApp(*w, pt.id);
            drive(*w->app, pt.qps, 1.0, 4.0);
            table.add(apps::appName(pt.id), "Amazon EC2",
                      boxRow(pct(w->app->endToEndLatency())),
                      fmtDouble(ec2_cost.cost(pt.ec2Instances, window), 1));
        }
        // Lambda with S3 / remote-memory state passing.
        for (auto store : {serverless::StateStoreKind::S3,
                           serverless::StateStoreKind::RemoteMemory}) {
            auto w = makeWorld(5);
            apps::buildApp(*w, pt.id);
            serverless::LambdaConfig cfg;
            cfg.stateStore = store;
            cfg.storeShards = 16;
            serverless::LambdaPlatform::applyToApp(*w->app, cfg,
                                                   w->cluster);
            drive(*w->app, pt.qps, 1.0, 4.0);
            const std::uint64_t invocations =
                serverless::LambdaPlatform::invocations(*w->app,
                                                        cfg.storeName);
            const Tick billed = serverless::LambdaPlatform::billedDuration(
                *w->app, lambda_cost, cfg.storeName);
            // Scale measured cost to the 10-minute window.
            const double scale =
                ticksToSec(window) / (4.0 * timeScale());
            double cost =
                lambda_cost.cost(invocations, billed) * scale;
            std::string platform = store == serverless::StateStoreKind::S3
                                       ? "AWS Lambda (S3)"
                                       : "AWS Lambda (mem)";
            if (store == serverless::StateStoreKind::RemoteMemory)
                cost += ec2_cost.cost(4, window); // the 4 extra instances
            table.add(apps::appName(pt.id), platform,
                      boxRow(pct(w->app->endToEndLatency())),
                      fmtDouble(cost, 1));
        }
    }
    printBanner(std::cout, "EC2 vs Lambda: latency and cost");
    table.print(std::cout);
    std::cout << "Paper costs for 10min (Social Network): EC2 $28.8, "
                 "Lambda(S3) $2.85, Lambda(mem) $3.93 - about an order "
                 "of magnitude cheaper on Lambda.\n";
}

void
diurnalPanel()
{
    printBanner(std::cout,
                "Diurnal load replay: EC2 autoscaler vs Lambda");
    TextTable table({"t(s)", "load multiplier", "EC2 p99(ms)",
                     "Lambda p99(ms)", "EC2 instances"});

    const double base_qps = 3600.0;
    const Tick period = secToTicks(240.0);

    // -- EC2: fixed containers + reactive autoscaler -------------------
    // Balanced provisioning: at the diurnal peak the initial fleet is
    // undersized, so the autoscaler must chase the ramps.
    auto ec2 = makeWorld(8);
    apps::buildSocialNetwork(*ec2);
    apps::throttleLogicTiers(*ec2->app, 24, 2);
    manager::Monitor mon(*ec2->app, secToTicks(5.0));
    mon.start();
    manager::AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = secToTicks(5.0);
    cfg.startupDelay = secToTicks(60.0); // EC2 instance boot time
    cfg.cooldown = secToTicks(10.0);
    manager::AutoScaler scaler(*ec2->app, mon, cfg,
                               [&]() -> cpu::Server & {
                                   return ec2->nextWorker();
                               });
    scaler.watchAllStateless();
    scaler.start();
    workload::OpenLoopGenerator gen_ec2(
        *ec2->app, workload::QueryMix::fromApp(*ec2->app),
        workload::UserPopulation::uniform(500), 3);
    workload::DiurnalShape shape(period, 0.12);
    gen_ec2.setQps(base_qps);
    gen_ec2.setRateShape([&](Tick t) { return shape.at(t); });
    gen_ec2.start();

    // -- Lambda: per-request scaling -----------------------------------
    auto lam = makeWorld(8);
    apps::buildSocialNetwork(*lam);
    serverless::LambdaConfig lcfg;
    lcfg.stateStore = serverless::StateStoreKind::RemoteMemory;
    lcfg.storeShards = 16;
    lcfg.coldStartProb = 0.001; // warmed-up steady deployment
    serverless::LambdaPlatform::applyToApp(*lam->app, lcfg, lam->cluster);
    workload::OpenLoopGenerator gen_lam(
        *lam->app, workload::QueryMix::fromApp(*lam->app),
        workload::UserPopulation::uniform(500), 3);
    gen_lam.setQps(base_qps);
    gen_lam.setRateShape([&](Tick t) { return shape.at(t); });
    gen_lam.start();

    for (int t = 20; t <= 240; t += 20) {
        const Tick now = secToTicks(static_cast<double>(t));
        ec2->app->statReset();
        lam->app->statReset();
        ec2->sim.runUntil(now);
        lam->sim.runUntil(now);
        unsigned instances = 0;
        for (const auto *svc : ec2->app->services())
            instances += static_cast<unsigned>(svc->instances().size());
        table.add(t, fmtDouble(shape.at(now), 2),
                  fmtDouble(ticksToMs(ec2->app->endToEndLatency().p99()),
                            1),
                  fmtDouble(ticksToMs(lam->app->endToEndLatency().p99()),
                            1),
                  instances);
    }
    table.print(std::cout);
    std::cout << "Expect Lambda to track the ramps (cold starts aside) "
                 "while the EC2 autoscaler lags the morning/evening "
                 "surges (paper Fig 21 bottom).\n";
}

} // namespace

int
main()
{
    header("Fig 21: serverless (EC2 vs AWS Lambda)",
           "Lambda+S3 much slower (state passing), Lambda+mem close to "
           "EC2; Lambda ~an order of magnitude cheaper; Lambda tracks "
           "diurnal ramps faster than the EC2 autoscaler");
    topPanel();
    diurnalPanel();
    return 0;
}
