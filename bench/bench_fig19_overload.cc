/**
 * @file
 * Fig 19 (overload companion): graceful degradation under server-side
 * admission control vs goodput collapse without it.
 *
 * A two-tier app (wide front, 1000 rps backend bottleneck) is driven
 * at 1x..100x its capacity. The user-facing share of the load is held
 * at 90% of capacity; everything above it is batch traffic. Each
 * multiplier runs twice: an uncontrolled FIFO backend, and the same
 * backend with QoS admission control (bounded per-class queues,
 * batch shed at half the bound, lopsided WRR weights).
 *
 * Uncontrolled, the shared queue grows without bound, every arrival
 * waits past the attempt timeout and the backend burns its capacity
 * on zombie work: user-facing goodput falls off the Fig-19 cliff.
 * Controlled, batch is refused at the door and user-facing goodput
 * stays near the offered 900 rps at every multiplier.
 *
 * `--out FILE` records the sweep as JSON for CI diffing; the optional
 * `--min-controlled FRAC` gate fails the run if controlled user
 * goodput drops below FRAC x capacity at any multiplier >= 10.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/builder.hh"
#include "bench_common.hh"
#include "core/json.hh"
#include "service/admission.hh"
#include "service/app.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

constexpr double kCapacityRps = 1000.0; // backend: 1 thread x 1ms
constexpr double kUserRps = 900.0;      // user-facing offered load

struct Row
{
    double multiplier = 0.0;
    double offeredRps = 0.0;
    double naiveGoodput = 0.0;      ///< user-facing, uncontrolled
    double controlledGoodput = 0.0; ///< user-facing, with admission
    std::uint64_t shedBatch = 0;    ///< batch refusals, controlled run
};

/** User-facing goodput (rps) of one run at @p mult x capacity. */
double
runOnce(double mult, bool controlled, Tick horizon, Tick from,
        std::uint64_t &shed_batch)
{
    apps::WorldConfig c;
    c.workerServers = 2;
    c.seed = 42;
    apps::World world(c);
    service::App &app = *world.app;

    service::ServiceDef backend;
    backend.name = "backend";
    backend.handler.compute(apps::computeUsConst(1000.0));
    backend.threadsPerInstance = 1;
    app.addService(std::move(backend)).addInstance(world.worker(1));

    service::ServiceDef front;
    front.name = "front";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(apps::computeUsConst(20.0)).call("backend");
    front.threadsPerInstance = 64;
    app.addService(std::move(front)).addInstance(world.worker(0));

    app.setEntry("front");
    app.addQueryType({"user", 1.0, 1.0, 0, {}});
    app.addQueryType({"batch", 1.0, 1.0, 0, {}});
    app.validate();
    app.service("backend").mutableDef().resilience.timeout =
        50 * kTicksPerMs;

    if (controlled) {
        service::QosConfig qc;
        qc.policy.enabled = true;
        qc.policy.weights = {100, 1, 1};
        qc.policy.classQueueCapacity = 32;
        qc.batchQueries = {"batch"};
        app.enableQos(qc);
    }

    unsigned user_ok = 0;
    auto loop = [&](unsigned query, double qps) {
        if (qps <= 0.0)
            return;
        const Tick interval = static_cast<Tick>(kTicksPerSec / qps);
        for (Tick t = interval; t < horizon; t += interval)
            world.sim.scheduleAt(t, [&world, &user_ok, query, t, from,
                                     horizon]() {
                world.app->inject(
                    query, t / kTicksPerMs,
                    [&user_ok, query, from,
                     horizon](const service::Request &r) {
                        if (query == 0 && r.failStatus == 0 &&
                            !r.dropped && r.completeTime >= from &&
                            r.completeTime < horizon)
                            ++user_ok;
                    });
            });
    };
    loop(0, kUserRps);
    loop(1, mult * kCapacityRps - kUserRps);
    world.sim.run();

    if (controlled)
        shed_batch =
            app.metrics().counter("admission.shed.batch").value();
    const double window_sec =
        static_cast<double>(horizon - from) / kTicksPerSec;
    return static_cast<double>(user_ok) / window_sec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    double min_controlled = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&] {
            if (i + 1 >= argc)
                fatal(strCat("missing value for ", a));
            return std::string(argv[++i]);
        };
        if (a == "--out")
            out_path = need();
        else if (a == "--min-controlled")
            min_controlled = std::atof(need().c_str());
        else
            fatal(strCat("unknown option '", a, "'"));
    }

    header("Fig 19 (overload): admission control vs goodput collapse",
           "once a tier saturates, queues grow without bound and QoS "
           "collapses; shedding low-priority work restores graceful "
           "degradation");

    const Tick horizon = simTime(3.0);
    const Tick from = simTime(1.0); // skip the fill-up transient

    TextTable table({"overload", "offered(rps)", "naive user(rps)",
                     "naive %cap", "qos user(rps)", "qos %cap",
                     "batch shed"});
    std::vector<Row> rows;
    for (double mult : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
        Row row;
        row.multiplier = mult;
        row.offeredRps = mult * kCapacityRps;
        std::uint64_t unused = 0;
        row.naiveGoodput = runOnce(mult, false, horizon, from, unused);
        row.controlledGoodput =
            runOnce(mult, true, horizon, from, row.shedBatch);
        rows.push_back(row);
        table.add(fmtDouble(mult, 0) + "x", row.offeredRps,
                  fmtDouble(row.naiveGoodput, 0),
                  fmtDouble(100.0 * row.naiveGoodput / kCapacityRps, 0) +
                      "%",
                  fmtDouble(row.controlledGoodput, 0),
                  fmtDouble(100.0 * row.controlledGoodput / kCapacityRps,
                            0) +
                      "%",
                  row.shedBatch);
    }
    table.print(std::cout);
    std::cout << "\nExpect the naive column to collapse once the offered "
                 "load exceeds capacity, while the qos column stays near "
              << fmtDouble(kUserRps, 0) << " rps at every multiplier.\n";

    json::Writer w;
    w.beginObject();
    w.field("bench", "fig19_overload");
    w.field("capacity_rps", kCapacityRps);
    w.field("user_rps", kUserRps);
    w.beginArray("rows");
    for (const Row &row : rows) {
        w.beginObject();
        w.field("multiplier", row.multiplier);
        w.field("offered_rps", row.offeredRps);
        w.field("naive_user_goodput_rps", row.naiveGoodput);
        w.field("controlled_user_goodput_rps", row.controlledGoodput);
        w.field("controlled_batch_shed", row.shedBatch);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    const std::string doc = w.str() + "\n";
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal(strCat("cannot open '", out_path, "' for writing"));
        out << doc;
        std::cout << "wrote " << out_path << "\n";
    } else {
        std::cout << doc;
    }

    if (min_controlled > 0.0)
        for (const Row &row : rows)
            if (row.multiplier >= 10.0 &&
                row.controlledGoodput < min_controlled * kCapacityRps) {
                std::cerr << "FAIL: controlled user goodput "
                          << row.controlledGoodput << " rps at "
                          << row.multiplier << "x is below the --min-"
                          << "controlled gate of "
                          << min_controlled * kCapacityRps << " rps\n";
                return 1;
            }
    return 0;
}
