/**
 * @file
 * Fig 3: share of execution time spent on network processing vs
 * application processing, for three monolithic single-tier services
 * (NGINX, memcached, MongoDB) and the end-to-end Social Network, plus
 * the monolithic Social Network for contrast.
 */

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

int
main()
{
    header("Fig 3: network vs application processing",
           "NGINX 5.3% (1293us), memcached 19.8% (186us), MongoDB 13.6% "
           "(383us), Social Network 36.3% (3827us)");

    TextTable table({"Workload", "Mean latency", "Network proc %",
                     "App proc %", "Paper net%"});

    struct SingleRow
    {
        apps::SingleTierKind kind;
        double qps;
        const char *paper;
    };
    for (const SingleRow &row :
         {SingleRow{apps::SingleTierKind::Nginx, 150.0, "5.3%"},
          SingleRow{apps::SingleTierKind::Memcached, 400.0, "19.8%"},
          SingleRow{apps::SingleTierKind::MongoDB, 250.0, "13.6%"}}) {
        auto w = makeWorld(3);
        apps::buildSingleTier(*w, row.kind);
        auto r = drive(*w->app, row.qps, 1.0, 4.0);
        table.add(apps::singleTierName(row.kind),
                  fmtDouble(r.meanMs * 1000.0, 0) + "us",
                  fmtDouble(100.0 * r.networkShare, 1),
                  fmtDouble(100.0 * (1.0 - r.networkShare), 1), row.paper);
    }

    {
        auto w = makeWorld(5);
        apps::buildSocialNetwork(*w);
        auto r = drive(*w->app, 250.0, 1.0, 5.0);
        table.add("Social Network (microservices)",
                  fmtDouble(r.meanMs * 1000.0, 0) + "us",
                  fmtDouble(100.0 * r.networkShare, 1),
                  fmtDouble(100.0 * (1.0 - r.networkShare), 1), "36.3%");
    }
    {
        auto w = makeWorld(5);
        apps::buildSocialNetworkMonolith(*w);
        auto r = drive(*w->app, 250.0, 1.0, 5.0);
        table.add("Social Network (monolith)",
                  fmtDouble(r.meanMs * 1000.0, 0) + "us",
                  fmtDouble(100.0 * r.networkShare, 1),
                  fmtDouble(100.0 * (1.0 - r.networkShare), 1),
                  "(small)");
    }
    table.print(std::cout);
    return 0;
}
