/**
 * @file
 * Ablations over the design choices DESIGN.md calls out:
 *
 *  1. Tracing overhead: the paper claims its distributed tracing adds
 *     <0.1% end-to-end latency (Sec 3.7). The simulated tracer is
 *     off-path, so this validates that enabling collection does not
 *     perturb results (determinism check), and reports the memory-side
 *     span volume.
 *  2. HTTP/1 connection pool sizing: the backpressure lever of Fig 17B.
 *  3. Kernel TCP cost sensitivity: how the Fig 3 network share moves
 *     with the per-message kernel cost (the knob the FPGA removes).
 */

#include "bench_common.hh"
#include "cpu/power.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
tracingOverhead()
{
    printBanner(std::cout, "Ablation 1: tracing overhead (paper: <0.1%)");
    TextTable table({"tracing", "completed", "p50(ms)", "p99(ms)",
                     "spans stored"});
    for (bool tracing : {true, false}) {
        apps::WorldConfig c;
        c.workerServers = 5;
        c.appConfig.tracing = tracing;
        apps::World w(c);
        apps::buildSocialNetwork(w);
        auto r = drive(*w.app, 400.0, 1.0, 3.0);
        table.add(tracing ? "on" : "off", r.completed,
                  fmtDouble(ticksToMs(r.p50), 3),
                  fmtDouble(ticksToMs(r.p99), 3),
                  w.app->traceStore().size());
    }
    table.print(std::cout);
    std::cout << "Identical latency rows => zero perturbation from "
                 "collection, matching the paper's <0.1% bound.\n";
}

void
poolSizing()
{
    printBanner(std::cout,
                "Ablation 2: HTTP/1 connections per caller-callee pair");
    TextTable table({"pool size", "p50(ms)", "p99(ms)",
                     "frontend occupancy"});
    for (unsigned conns : {1u, 2u, 4u, 8u, 32u}) {
        auto w = makeWorld(4);
        service::App &app = *w->app;
        service::ServiceDef mc;
        mc.name = "memcached";
        mc.kind = service::ServiceKind::Cache;
        mc.handler.compute(Dist::lognormalMean(1200.0 * 1440.0, 0.4));
        mc.threadsPerInstance = 64;
        mc.protocol = rpc::ProtocolModel::restHttp1();
        mc.protocol.connectionsPerPair = conns;
        app.addService(std::move(mc)).addInstance(w->worker(1));
        service::ServiceDef fe;
        fe.name = "nginx";
        fe.kind = service::ServiceKind::Frontend;
        fe.handler.compute(Dist::lognormalMean(100.0 * 1440.0, 0.4))
            .call("memcached");
        fe.threadsPerInstance = 64;
        app.addService(std::move(fe)).addInstance(w->worker(0));
        app.setEntry("nginx");
        app.addQueryType({"read", 1, 1.0, 0, {}});
        app.setQosLatency(20 * kTicksPerMs);
        app.validate();
        auto r = drive(app, 2500.0, 1.0, 3.0);
        table.add(conns, fmtDouble(ticksToMs(r.p50), 2),
                  fmtDouble(ticksToMs(r.p99), 2),
                  fmtDouble(app.service("nginx").meanOccupancy(), 2));
    }
    table.print(std::cout);
    std::cout << "Small pools throttle a healthy backend (p99 explodes "
                 "below ~4 connections at this load): the same "
                 "mechanism that transmits backpressure in Fig 17B.\n";
}

void
tcpCostSensitivity()
{
    printBanner(std::cout,
                "Ablation 3: kernel TCP cost vs network share (Fig 3)");
    TextTable table({"per-msg cost scale", "net share", "mean lat (ms)"});
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        apps::WorldConfig c;
        c.workerServers = 5;
        c.appConfig.tcp.sendBaseCycles = static_cast<Cycles>(
            5000 * scale);
        c.appConfig.tcp.recvBaseCycles = static_cast<Cycles>(
            6500 * scale);
        apps::World w(c);
        apps::buildSocialNetwork(w);
        auto r = drive(*w.app, 300.0, 1.0, 3.0);
        table.add(fmtDouble(scale, 2),
                  fmtDouble(100.0 * r.networkShare, 1) + "%",
                  fmtDouble(r.meanMs, 2));
    }
    table.print(std::cout);
    std::cout << "The Social Network's Fig 3 share (36.3%) sits between "
                 "the 0.5x and 1x rows; the calibration is documented "
                 "in EXPERIMENTS.md.\n";
}

void
jsqVsRoundRobin()
{
    printBanner(std::cout,
                "Ablation 4: load-balancing policy under a slow server "
                "(extension to Fig 22c)");
    TextTable table({"policy", "goodput frac (healthy)",
                     "goodput frac (1 slow server)"});
    auto run = [&](service::LbPolicy policy, bool slow) {
        auto w = makeWorld(10);
        apps::AppOptions opt;
        opt.instancesPerTier = 2;
        apps::buildSocialNetwork(*w, opt);
        apps::throttleLogicTiers(*w->app, 24, 8);
        for (service::Microservice *svc : w->app->services())
            if (svc->def().kind == service::ServiceKind::Stateless)
                svc->mutableDef().lbPolicy = policy;
        if (slow)
            w->cluster.injectSlowServers(1, 300.0);
        auto r = workload::runLoad(
            *w->app, 1500.0, simTime(0.8), simTime(2.0),
            workload::QueryMix::fromApp(*w->app),
            workload::UserPopulation::uniform(1000), 19);
        return std::min(1.0,
                        r.goodputQps / std::max(1.0, r.offeredQps));
    };
    for (auto policy : {service::LbPolicy::RoundRobin,
                        service::LbPolicy::JoinShortestQueue}) {
        table.add(policy == service::LbPolicy::RoundRobin
                      ? "round-robin"
                      : "join-shortest-queue",
                  fmtDouble(run(policy, false), 2),
                  fmtDouble(run(policy, true), 2));
    }
    table.print(std::cout);
    std::cout << "Queue-aware balancing recovers much of the goodput a "
                 "slow server destroys under round-robin - the "
                 "dependency-aware management the paper calls for.\n";
}

void
energyVsFrequency()
{
    printBanner(std::cout,
                "Ablation 5: energy vs frequency (the other side of "
                "Fig 12's RAPL study)");
    TextTable table({"frequency", "p99(ms)", "avg power (W)",
                     "joules/request"});
    for (double freq : {2400.0, 1800.0, 1200.0, 1000.0}) {
        auto w = makeWorld(5);
        apps::buildSocialNetwork(*w);
        w->cluster.setAllFrequenciesMhz(freq);
        cpu::EnergyMeter meter(w->sim, w->cluster,
                               cpu::PowerModel::xeon());
        meter.start();
        auto r = drive(*w->app, 1200.0, 1.0, 3.0);
        table.add(fmtDouble(freq, 0) + "MHz",
                  fmtDouble(ticksToMs(r.p99), 1),
                  fmtDouble(meter.averageWatts(), 0),
                  fmtDouble(meter.totalJoules() /
                                std::max<double>(1.0, r.completed),
                            1));
    }
    table.print(std::cout);
    std::cout << "Capping frequency trades tail latency for power - at "
                 "this (low) utilization the idle floor dominates, the "
                 "paper's energy-proportionality problem.\n";
}

} // namespace

int
main()
{
    header("Design ablations",
           "tracing overhead, connection-pool sizing, TCP cost "
           "calibration, LB policy, energy");
    tracingOverhead();
    poolSizing();
    tcpCostSensitivity();
    jsqVsRoundRobin();
    energyVsFrequency();
    return 0;
}
