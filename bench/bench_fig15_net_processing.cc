/**
 * @file
 * Fig 15: (a) per-microservice time in application vs network
 * processing for the Social Network at low and high load (and for the
 * monolith); (b) the network-processing share of tail latency for all
 * end-to-end services at low vs high load.
 */

#include "bench_common.hh"
#include "trace/analysis.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

struct AppRun
{
    double networkShare = 0.0;
    Tick p99 = 0;
};

AppRun
runShare(apps::AppId id, double qps)
{
    auto w = makeWorld(5);
    apps::buildApp(*w, id);
    auto r = drive(*w->app, qps, 1.0, 3.0);
    return AppRun{r.networkShare, r.p99};
}

} // namespace

int
main()
{
    header("Fig 15: application vs network processing time",
           "RPC processing is 5-75% per Social Network microservice at "
           "low load (18% of end-to-end tail), growing sharply at high "
           "load (3.2x tail impact); E-commerce/Banking less affected; "
           "monolith dramatically lower");

    // ---- (a) per-microservice, Social Network, low vs high load -----
    for (double qps : {200.0, 4000.0}) {
        auto w = makeWorld(5);
        apps::buildSocialNetwork(*w);
        drive(*w->app, qps, 1.0, 3.0);
        trace::TraceAnalysis ta(w->app->traceStore());
        TextTable table({"Microservice", "mean lat(us)", "app proc %",
                         "network proc %", "queue %"});
        for (const auto &s : ta.perService()) {
            if (s.service == "client")
                continue;
            table.add(s.service, fmtDouble(s.meanLatencyUs, 0),
                      fmtDouble(100 * s.appShare, 1),
                      fmtDouble(100 * s.networkShare, 1),
                      fmtDouble(100 * s.queueShare, 1));
        }
        printBanner(std::cout,
                    strCat("Social Network per-microservice @ ",
                           fmtDouble(qps, 0), " QPS"));
        table.print(std::cout);
    }

    // ---- (b) end-to-end network-processing share, low vs high load --
    TextTable table({"Service", "net share @low", "net share @high",
                     "p99 @low", "p99 @high"});
    struct Loads
    {
        apps::AppId id;
        double lo, hi;
    };
    for (const Loads &l :
         {Loads{apps::AppId::SocialNetwork, 150, 4000},
          Loads{apps::AppId::MediaService, 150, 3500},
          Loads{apps::AppId::Ecommerce, 150, 3500},
          Loads{apps::AppId::Banking, 150, 3500},
          Loads{apps::AppId::SwarmCloud, 4, 40},
          Loads{apps::AppId::SwarmEdge, 2, 12}}) {
        const AppRun low = runShare(l.id, l.lo);
        const AppRun high = runShare(l.id, l.hi);
        table.add(apps::appName(l.id),
                  fmtDouble(100 * low.networkShare, 1) + "%",
                  fmtDouble(100 * high.networkShare, 1) + "%",
                  fmtMs(low.p99), fmtMs(high.p99));
    }
    // Monolith row for contrast (Fig 15a right-most bars).
    {
        auto w = makeWorld(5);
        apps::buildSocialNetworkMonolith(*w);
        auto lo = drive(*w->app, 150, 1.0, 3.0);
        auto w2 = makeWorld(5);
        apps::buildSocialNetworkMonolith(*w2);
        auto hi = drive(*w2->app, 4000, 1.0, 3.0);
        table.add("Social Network (monolith)",
                  fmtDouble(100 * lo.networkShare, 1) + "%",
                  fmtDouble(100 * hi.networkShare, 1) + "%",
                  fmtMs(lo.p99), fmtMs(hi.p99));
    }
    printBanner(std::cout, "End-to-end network-processing share");
    table.print(std::cout);
    return 0;
}
