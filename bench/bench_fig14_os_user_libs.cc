/**
 * @file
 * Fig 14: breakdown of cycles (C) and instructions (I) into kernel,
 * user and library execution for each end-to-end service. The shares
 * here are *measured*: every simulated task charges its cycles and
 * retired instructions to a mode, and the bench aggregates over all
 * services of each application after serving real traffic.
 */

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

int
main()
{
    header("Fig 14: OS vs user vs library time",
           "Social/Media kernel-heavy (memcached, high network traffic); "
           "E-commerce/Banking more user time; Swarm ~half in libraries");

    TextTable table({"Service", "C kernel%", "C user%", "C libs%",
                     "I kernel%", "I user%", "I libs%"});
    for (apps::AppId id : apps::allApps()) {
        auto w = makeWorld(5);
        apps::buildApp(*w, id);
        const bool swarm = id == apps::AppId::SwarmCloud ||
                           id == apps::AppId::SwarmEdge;
        drive(*w->app, swarm ? 8.0 : 250.0, 1.0, 4.0);

        double ck = 0, cu = 0, cl = 0, ik = 0, iu = 0, il = 0;
        for (const auto *svc : w->app->services()) {
            ck += svc->kernelCycles();
            cu += svc->userCycles();
            cl += svc->libCycles();
            ik += svc->kernelInstr();
            iu += svc->userInstr();
            il += svc->libInstr();
        }
        const double ct = std::max(1.0, ck + cu + cl);
        const double it = std::max(1.0, ik + iu + il);
        table.add(apps::appName(id), fmtDouble(100 * ck / ct, 1),
                  fmtDouble(100 * cu / ct, 1), fmtDouble(100 * cl / ct, 1),
                  fmtDouble(100 * ik / it, 1), fmtDouble(100 * iu / it, 1),
                  fmtDouble(100 * il / it, 1));
    }
    table.print(std::cout);
    return 0;
}
