/**
 * @file
 * Fig 17: backpressure in a two-tier (nginx -> memcached) service.
 *
 * Case A: the client overloads nginx itself; a utilization-based
 * autoscaler detects the hotspot and scaling out nginx restores QoS.
 *
 * Case B: memcached is slightly degraded and HTTP/1 allows only one
 * outstanding request per connection, so nginx's worker threads park
 * on the connection pool. nginx *appears* saturated (full occupancy),
 * the autoscaler scales nginx out - and latency does not recover,
 * because admitting more traffic feeds the real bottleneck.
 */

#include "bench_common.hh"
#include "apps/profiles.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "obs/culprit.hh"
#include "obs/pipeline.hh"
#include "workload/generators.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
runCase(bool degraded_backend, double qps, const char *label)
{
    auto w = makeWorld(4);
    service::App &app = *w->app;

    service::ServiceDef mc;
    mc.name = "memcached";
    mc.kind = service::ServiceKind::Cache;
    mc.handler.compute(Dist::lognormalMean(80.0 * 1440.0, 0.4));
    mc.profile = apps::memcachedProfile();
    // Case B: the instance lost most of its worker threads (e.g. a
    // bad config push); the runtime slowdown below then caps it at
    // ~600 op/s behind 4 HTTP/1 connections.
    mc.threadsPerInstance = degraded_backend ? 2 : 16;
    mc.protocol = rpc::ProtocolModel::restHttp1();
    mc.protocol.connectionsPerPair = 4;
    app.addService(std::move(mc)).addInstance(w->worker(1));

    service::ServiceDef nginx;
    nginx.name = "nginx";
    nginx.kind = service::ServiceKind::Frontend;
    nginx.profile = apps::nginxProfile();
    nginx.handler.compute(Dist::lognormalMean(300.0 * 1440.0, 0.4))
        .call("memcached");
    nginx.threadsPerInstance = 24;
    nginx.protocol = rpc::ProtocolModel::restHttp1();
    nginx.protocol.connectionsPerPair = 256;
    app.addService(std::move(nginx)).addInstance(w->worker(0));

    app.setEntry("nginx");
    app.addQueryType({"read", 1, 1.0, 0, {}});
    app.setQosLatency(5 * kTicksPerMs);
    app.validate();

    manager::Monitor mon(app, secToTicks(1.0));
    mon.start();

    // SLO monitor on the end-to-end stream: the same 5ms QoS target
    // the autoscaler chases, evaluated per interval, so the localizer
    // can name the tier that degraded first in each case.
    obs::PipelineConfig pc;
    pc.interval = secToTicks(1.0);
    pc.ring = 128;
    pc.slo.latency = 5 * kTicksPerMs;
    pc.slo.window = 3;
    obs::Pipeline pipe(app, pc);
    pipe.start();

    manager::AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = secToTicks(1.0);
    cfg.startupDelay = secToTicks(3.0);
    cfg.cooldown = secToTicks(10.0);
    cfg.signal = manager::AutoScaler::Signal::ThreadOccupancy;
    manager::AutoScaler scaler(app, mon, cfg, [&]() -> cpu::Server & {
        return w->nextWorker();
    });
    scaler.watch("nginx");
    // Let the arrival process settle before the first decision.
    w->sim.schedule(secToTicks(4.0), [&scaler] { scaler.start(); });

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(100), 3);
    gen.setQps(qps);
    gen.start();
    if (!degraded_backend) {
        // Case A: the client load ramps up twice, pushing nginx past
        // its capacity each time (the paper's t=14s / t=35s pattern).
        w->sim.schedule(secToTicks(8.0), [&gen, qps] {
            gen.setQps(3.0 * qps);
        });
        w->sim.schedule(secToTicks(28.0), [&gen, qps] {
            gen.setQps(5.0 * qps);
        });
    } else {
        // Case B: healthy until t=10s, then a co-scheduled antagonist
        // slows the memcached server 40x (~80us/op becomes ~3.2ms/op)
        // — a seemingly negligible per-op cost that saturates the
        // 2-thread instance.
        w->sim.schedule(secToTicks(10.0), [&] {
            const unsigned mc_server = app.service("memcached")
                                           .instances()[0]
                                           ->server()
                                           .id();
            w->cluster.server(mc_server).setSlowFactor(40.0);
        });
    }

    TextTable table({"t(s)", "nginx p99(ms)", "memcached p99(ms)",
                     "nginx occup", "nginx CPU util", "nginx inst",
                     "drops"});
    for (int t = 4; t <= 60; t += 4) {
        w->sim.runUntil(secToTicks(static_cast<double>(t)));
        const auto n = mon.latest("nginx");
        const auto m = mon.latest("memcached");
        table.add(t, fmtDouble(ticksToMs(n.p99), 2),
                  fmtDouble(ticksToMs(m.p99), 2),
                  fmtDouble(n.occupancy, 2), fmtDouble(n.cpuUtil, 2),
                  n.instances, app.droppedRequests());
    }
    printBanner(std::cout, label);
    table.print(std::cout);
    std::cout << "scale-out events: " << scaler.events().size() << " (";
    for (const auto &e : scaler.events())
        std::cout << "t=" << fmtDouble(ticksToSec(e.time), 0) << "s ";
    std::cout << ")\n";

    if (pipe.slo().violated()) {
        const obs::SloViolation &v = pipe.slo().violations().front();
        std::cout << "e2e p99 SLO (5ms) tripped at t="
                  << fmtDouble(ticksToSec(v.time), 0) << "s; culprit "
                  << "ranking (expect "
                  << (degraded_backend ? "memcached" : "nginx")
                  << " first):\n";
        obs::CulpritLocalizer loc(pipe.store());
        std::cout << obs::culpritTable(
            loc.localize(pipe.slo().firstViolationTime(),
                         obs::CulpritLocalizer::tierDepths(app)));
    } else {
        std::cout << "no e2e SLO violation recorded\n";
    }
}

} // namespace

int
main()
{
    header("Fig 17: backpressure in a two-tier service",
           "Case A: autoscaler fixes nginx saturation (scale-outs ~t=14s,"
           " 35s). Case B: memcached backpressures nginx through HTTP/1 "
           "connections; scaling nginx does not help and can make it "
           "worse");
    // Case A: nginx is the true bottleneck (24 threads x ~0.43ms
    // service => ~55k/s... driven well past one instance's capacity
    // via CPU-heavy requests at high rate).
    runCase(false, 16000.0, "Case A: true NGINX saturation");
    // Case B: memcached degraded to ~3.2ms/op behind 4 connections
    // (~1.2k op/s ceiling) while nginx is offered 2.5k QPS.
    runCase(true, 2500.0, "Case B: memcached backpressures NGINX");
    return 0;
}
