/**
 * @file
 * Fig 9: throughput vs tail latency for the Swarm service when the
 * computation runs on the edge devices vs in the cloud, separately for
 * image recognition and obstacle avoidance queries.
 */

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

namespace {

void
sweep(apps::SwarmVariant variant, const char *label,
      const std::vector<double> &qps_points)
{
    TextTable table({"QPS", "ImageRecogn p50(ms)", "ImageRecogn p99(ms)",
                     "ObstacleAvoid p50(ms)", "ObstacleAvoid p99(ms)",
                     "drops"});
    for (double qps : qps_points) {
        auto w = makeWorld(5, 42 + static_cast<std::uint64_t>(qps));
        apps::SwarmOptions so;
        so.drones = 24; // the paper's 24 Parrot AR2.0 drones
        const auto q = apps::buildSwarm(*w, variant, so);
        drive(*w->app, qps, 4.0, 10.0, 7, 64);
        const auto &ir = w->app->endToEndLatencyFor(q.imageRecognition);
        const auto &oa = w->app->endToEndLatencyFor(q.obstacleAvoidance);
        table.add(fmtDouble(qps, 0), fmtMs(ir.p50()), fmtMs(ir.p99()),
                  fmtMs(oa.p50()), fmtMs(oa.p99()),
                  w->app->droppedRequests());
    }
    printBanner(std::cout, label);
    table.print(std::cout);
}

} // namespace

int
main()
{
    header("Fig 9: Swarm edge vs cloud",
           "cloud reaches ~7.8x the edge throughput at equal tail "
           "latency (image recognition); obstacle avoidance favours the "
           "edge at low load");
    sweep(apps::SwarmVariant::Edge, "Swarm Edge (compute on drones)",
          {1, 2, 4, 8, 12, 16, 24});
    sweep(apps::SwarmVariant::Cloud, "Swarm Cloud (compute offloaded)",
          {1, 4, 8, 16, 32, 56, 80});
    std::cout << "\nExpect: edge image-recognition latency ~5x cloud at "
                 "low load and saturating by ~10-20 QPS; cloud obstacle "
                 "avoidance paying the wireless round trips.\n";
    return 0;
}
