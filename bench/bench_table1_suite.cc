/**
 * @file
 * Table 1: characteristics and code composition of each end-to-end
 * application. Prints the original suite's metadata alongside the
 * structural facts of our models (verified service counts, entry,
 * protocol mix, query types) and emits the dependency-graph sizes.
 */

#include "bench_common.hh"

using namespace uqsim;
using namespace uqsim::bench;

int
main()
{
    header("Table 1: suite characteristics",
           "36/38/41/34/25/21 unique microservices per service");

    TextTable table({"Service", "Unique uServices (model)",
                     "Unique uServices (paper)", "Protocol",
                     "Comm LoCs handwritten", "Comm LoCs autogen",
                     "Query types", "Graph edges"});

    for (apps::AppId id : apps::allApps()) {
        auto w = makeWorld(5);
        apps::buildApp(*w, id);
        const apps::AppInfo &info = apps::appInfo(id);
        unsigned edges = 0;
        for (const auto *svc : w->app->services())
            edges += static_cast<unsigned>(
                svc->def().handler.callTargets().size());
        table.add(info.name, w->app->services().size(),
                  info.uniqueMicroservices, info.protocol,
                  info.handwrittenCommLoc, info.autogenCommLoc,
                  w->app->queryTypes().size(), edges);
    }
    table.print(std::cout);

    std::cout << "\nPer-language LoC breakdown of the original suite "
                 "(Table 1):\n";
    for (apps::AppId id : apps::allApps())
        std::cout << "  " << apps::appInfo(id).name << ": "
                  << apps::appInfo(id).languageMix << "\n";
    return 0;
}
