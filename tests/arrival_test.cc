/**
 * @file
 * Statistical and structural validation of the arrival-process
 * library (workload/generators.hh).
 *
 * The processes are validated against closed forms, not against
 * golden numbers: Poisson gaps must pass an exponential chi-square
 * test, MMPP(2) must reproduce its solved base/peak rates and its
 * analytic index of dispersion of counts, the diurnal shape must keep
 * the configured long-run mean rate, and a flash crowd must elevate
 * arrivals exactly over its window. A final test drives an M/M/k
 * station from an ArrivalProcess and pins the sojourn time to the
 * Erlang-C prediction, tying the library into the same closed-form
 * chain the core validation tier uses.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.hh"
#include "core/simulator.hh"
#include "core/types.hh"
#include "workload/generators.hh"

namespace uqsim {
namespace {

using workload::ArrivalConfig;
using workload::ArrivalKind;
using workload::ArrivalProcess;
using workload::MmppProcess;
using workload::PoissonProcess;

/** Draw @p n consecutive gaps, advancing absolute time. */
std::vector<Tick>
drawGaps(ArrivalProcess &p, std::size_t n)
{
    std::vector<Tick> gaps;
    gaps.reserve(n);
    Tick now = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Tick g = p.nextGap(now);
        gaps.push_back(g);
        now += g;
    }
    return gaps;
}

/**
 * Chi-square statistic of @p gaps against Exponential(@p meanTicks),
 * using @p bins equal-probability bins (expected count n/bins each).
 * Degrees of freedom: bins - 1 (the mean is the nominal rate, not
 * fitted from the sample, so no parameter is lost).
 */
double
chiSquareExponential(const std::vector<Tick> &gaps, double meanTicks,
                     unsigned bins)
{
    // Upper boundary of bin j (0-based): -mean * ln(1 - (j+1)/bins).
    std::vector<double> bounds;
    for (unsigned j = 0; j + 1 < bins; ++j)
        bounds.push_back(
            -meanTicks *
            std::log(1.0 - static_cast<double>(j + 1) /
                               static_cast<double>(bins)));
    std::vector<double> counts(bins, 0.0);
    for (const Tick g : gaps) {
        const double x = static_cast<double>(g);
        unsigned j = 0;
        while (j < bounds.size() && x > bounds[j])
            ++j;
        counts[j] += 1.0;
    }
    const double expected =
        static_cast<double>(gaps.size()) / static_cast<double>(bins);
    double chi2 = 0.0;
    for (const double c : counts)
        chi2 += (c - expected) * (c - expected) / expected;
    return chi2;
}

// Chi-square(df=19) upper 0.001 quantile is 43.82; a fixed seed makes
// each run deterministic, so a small margin only guards the seeds we
// actually draw.
constexpr unsigned kBins = 20;
constexpr double kChi2Bound = 45.0;
constexpr std::uint64_t kSeeds[] = {9001, 9002, 9003};

TEST(ArrivalProcessTest, PoissonGapsAreExponential)
{
    const double qps = 1000.0;
    const double mean = static_cast<double>(kTicksPerSec) / qps;
    for (const std::uint64_t seed : kSeeds) {
        PoissonProcess p(qps, seed);
        const std::vector<Tick> gaps = drawGaps(p, 20000);
        EXPECT_LT(chiSquareExponential(gaps, mean, kBins), kChi2Bound)
            << "seed=" << seed;
    }
}

TEST(ArrivalProcessTest, MmppWithBurstOneIsPoisson)
{
    const double qps = 1000.0;
    const double mean = static_cast<double>(kTicksPerSec) / qps;
    for (const std::uint64_t seed : kSeeds) {
        MmppProcess p(qps, 1.0, 0.1, 200 * kTicksPerMs, seed);
        EXPECT_DOUBLE_EQ(p.lowRate(), p.highRate());
        EXPECT_NEAR(p.idc(), 1.0, 1e-9);
        const std::vector<Tick> gaps = drawGaps(p, 20000);
        EXPECT_LT(chiSquareExponential(gaps, mean, kBins), kChi2Bound)
            << "seed=" << seed;
    }
}

TEST(ArrivalProcessTest, MmppRatesSolveTheStationaryMean)
{
    // lambda_low = qps / (1 - duty + duty * burst), lambda_high =
    // burst * lambda_low; the duty-weighted mix must be exactly qps.
    MmppProcess p(1000.0, 4.0, 0.25, 50 * kTicksPerMs, 1);
    EXPECT_NEAR(p.lowRate(), 1000.0 / 1.75, 1e-9);
    EXPECT_NEAR(p.highRate(), 4.0 * 1000.0 / 1.75, 1e-9);
    EXPECT_NEAR(0.75 * p.lowRate() + 0.25 * p.highRate(), 1000.0,
                1e-9);
    EXPECT_DOUBLE_EQ(p.meanRate(), 1000.0);

    // And the realized long-run rate must land on it.
    const std::size_t n = 200000;
    std::vector<Tick> gaps = drawGaps(p, n);
    double span = 0.0;
    for (const Tick g : gaps)
        span += static_cast<double>(g);
    const double rate =
        static_cast<double>(n) / (span / static_cast<double>(kTicksPerSec));
    EXPECT_NEAR(rate, 1000.0, 0.03 * 1000.0);
}

TEST(ArrivalProcessTest, MmppWindowCountsMatchAnalyticIdc)
{
    // Symmetric chain (duty 0.5, dwell 20ms in both states) counted
    // over 500ms windows: theta*t = 50, so the finite-window IDC
    //   IDC(t) = IDC - (IDC - 1) * (1 - e^{-theta t}) / (theta t)
    // sits within 2% of the asymptote the process reports.
    const double qps = 2000.0;
    MmppProcess p(qps, 4.0, 0.5, 20 * kTicksPerMs, 9007);
    const double idc = p.idc();
    EXPECT_GT(idc, 5.0); // genuinely bursty configuration

    const Tick window = 500 * kTicksPerMs;
    const unsigned windows = 2000;
    std::vector<double> counts(windows, 0.0);
    Tick now = 0;
    while (true) {
        now += p.nextGap(now);
        const std::uint64_t w = now / window;
        if (w >= windows)
            break;
        counts[w] += 1.0;
    }
    double mean = 0.0;
    for (const double c : counts)
        mean += c;
    mean /= windows;
    double var = 0.0;
    for (const double c : counts)
        var += (c - mean) * (c - mean);
    var /= windows - 1;
    EXPECT_NEAR(var / mean, idc, 0.15 * idc);

    // The window-count mean recovers the stationary rate too.
    EXPECT_NEAR(mean, qps * ticksToSec(window), 0.05 * qps * ticksToSec(window));
}

TEST(ArrivalProcessTest, DiurnalKeepsTheConfiguredMeanRate)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Diurnal;
    cfg.period = 1 * kTicksPerSec;
    cfg.low = 0.2;
    const double qps = 500.0;
    auto p = ArrivalProcess::make(cfg, qps, 9100);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), ArrivalKind::Diurnal);
    // The shape is normalized by its own mean multiplier, so the
    // reported long-run rate is exactly qps...
    EXPECT_NEAR(p->meanRate(), qps, 1e-6);
    // ...and the realized rate over many whole periods matches.
    const Tick horizon = 200 * cfg.period;
    std::uint64_t n = 0;
    Tick now = 0;
    while (true) {
        now += p->nextGap(now);
        if (now >= horizon)
            break;
        ++n;
    }
    const double rate = static_cast<double>(n) / ticksToSec(horizon);
    EXPECT_NEAR(rate, qps, 0.025 * qps);
}

TEST(ArrivalProcessTest, FlashMultiplierIsPiecewise)
{
    const Tick at = 2 * kTicksPerSec;
    const Tick ramp = 200 * kTicksPerMs;
    const Tick hold = 1 * kTicksPerSec;
    const double mult = 8.0;
    auto f = [&](Tick t) {
        return workload::flashMultiplierAt(t, at, ramp, mult, hold);
    };
    EXPECT_DOUBLE_EQ(f(0), 1.0);
    EXPECT_DOUBLE_EQ(f(at - 1), 1.0);
    EXPECT_NEAR(f(at + ramp / 2), (1.0 + mult) / 2.0, 0.05);
    EXPECT_NEAR(f(at + ramp), mult, 1e-9);
    EXPECT_NEAR(f(at + ramp + hold / 2), mult, 1e-9); // plateau
    // Exponential decay with time constant `ramp`: monotone toward 1.
    const Tick decay0 = at + ramp + hold;
    double prev = f(decay0);
    for (unsigned i = 1; i <= 5; ++i) {
        const double cur = f(decay0 + i * ramp);
        EXPECT_LT(cur, prev);
        prev = cur;
    }
    EXPECT_LT(f(decay0 + 5 * ramp), 1.0 + 0.05 * (mult - 1.0));
}

TEST(ArrivalProcessTest, FlashCrowdElevatesItsWindow)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Flash;
    cfg.flashAt = 2 * kTicksPerSec;
    cfg.flashRamp = 200 * kTicksPerMs;
    cfg.flashMult = 8.0;
    cfg.flashHold = 1 * kTicksPerSec;
    const double qps = 200.0;
    auto p = ArrivalProcess::make(cfg, qps, 9200);
    ASSERT_NE(p, nullptr);
    std::uint64_t before = 0, plateau = 0;
    Tick now = 0;
    while (now < 4 * kTicksPerSec) {
        now += p->nextGap(now);
        if (now >= kTicksPerSec / 2 && now < kTicksPerSec + kTicksPerSec / 2)
            ++before; // 1s baseline window well before the crowd
        else if (now >= 2200 * kTicksPerMs && now < 3200 * kTicksPerMs)
            ++plateau; // the 1s plateau at full multiplier
    }
    // Baseline ~200 arrivals, plateau ~1600; demand a 5x elevation to
    // stay far from both tails.
    EXPECT_GT(before, 120u);
    EXPECT_LT(before, 300u);
    EXPECT_GT(plateau, 5 * before);
}

TEST(ArrivalProcessTest, SameSeedSameGapsDifferentSeedDiffers)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal,
          ArrivalKind::Flash}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        auto a = ArrivalProcess::make(cfg, 500.0, 77);
        auto b = ArrivalProcess::make(cfg, 500.0, 77);
        auto c = ArrivalProcess::make(cfg, 500.0, 78);
        ASSERT_NE(a, nullptr);
        EXPECT_EQ(a->kind(), kind);
        const std::vector<Tick> ga = drawGaps(*a, 500);
        const std::vector<Tick> gb = drawGaps(*b, 500);
        const std::vector<Tick> gc = drawGaps(*c, 500);
        EXPECT_EQ(ga, gb) << arrivalKindName(kind);
        EXPECT_NE(ga, gc) << arrivalKindName(kind);
    }
}

TEST(ArrivalProcessTest, KindNamesRoundTrip)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal,
          ArrivalKind::Flash}) {
        ArrivalKind parsed;
        ASSERT_TRUE(
            workload::arrivalKindByName(arrivalKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    ArrivalKind parsed;
    EXPECT_FALSE(workload::arrivalKindByName("weibull", parsed));
    EXPECT_FALSE(workload::arrivalKindByName("", parsed));
}

TEST(ArrivalProcessTest, GapsAreAtLeastOneTick)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Mmpp, ArrivalKind::Diurnal,
          ArrivalKind::Flash}) {
        ArrivalConfig cfg;
        cfg.kind = kind;
        // A rate so high the continuous gap rounds to zero ticks.
        auto p = ArrivalProcess::make(cfg, 1e12, 5);
        Tick now = 0;
        for (unsigned i = 0; i < 200; ++i) {
            const Tick g = p->nextGap(now);
            EXPECT_GE(g, 1u);
            now += g;
        }
    }
}

// -- Erlang-C with process-driven arrivals ------------------------------

/**
 * M/M/k FCFS station whose arrivals come from an ArrivalProcess
 * (service times exponential from a separate stream). Returns the
 * mean sojourn over @p jobs measured completions.
 */
double
stationMeanSojourn(ArrivalProcess &arrivals, double meanServiceTicks,
                   unsigned k, std::uint64_t jobs, std::uint64_t seed)
{
    const std::uint64_t warmup = jobs / 5;
    const std::uint64_t total = warmup + jobs + jobs / 5;

    Simulator sim;
    Rng service(seed);

    std::deque<Tick> waiting;
    unsigned busy = 0;
    std::uint64_t arrived = 0, completed = 0, measured = 0;
    double sumSojourn = 0.0;

    std::function<void(Tick)> startService;
    startService = [&](Tick when) {
        sim.schedule(
            static_cast<Tick>(service.exponential(meanServiceTicks)) + 1,
            [&, when] {
                ++completed;
                if (completed > warmup && measured < jobs) {
                    sumSojourn += static_cast<double>(sim.now() - when);
                    ++measured;
                }
                if (!waiting.empty()) {
                    const Tick next = waiting.front();
                    waiting.pop_front();
                    startService(next);
                } else {
                    --busy;
                }
            });
    };

    std::function<void()> arrive = [&] {
        if (arrived < total) {
            ++arrived;
            sim.schedule(arrivals.nextGap(sim.now()), arrive);
            if (busy < k) {
                ++busy;
                startService(sim.now());
            } else {
                waiting.push_back(sim.now());
            }
        }
    };

    sim.schedule(0, arrive);
    sim.run();
    return sumSojourn / static_cast<double>(measured);
}

/** Erlang-C: probability an M/M/k arrival waits (offered load a). */
double
erlangC(unsigned k, double a)
{
    double invSum = 0.0, term = 1.0;
    for (unsigned i = 0; i < k; ++i) {
        invSum += term;
        term *= a / static_cast<double>(i + 1);
    }
    const double last =
        term * static_cast<double>(k) / (static_cast<double>(k) - a);
    return last / (invSum + last);
}

TEST(ArrivalProcessTest, ProcessDrivenStationMatchesErlangC)
{
    const unsigned k = 2;
    const double rho = 0.7;
    const double meanServiceTicks = 100.0 * kTicksPerUs;
    const double mu = 1.0 / meanServiceTicks;
    const double a = rho * static_cast<double>(k);
    const double lambdaTicks = a * mu; // arrivals per tick
    const double qps =
        lambdaTicks * static_cast<double>(kTicksPerSec);
    const double expected =
        erlangC(k, a) / (static_cast<double>(k) * mu - lambdaTicks) +
        meanServiceTicks;

    // Both the plain Poisson process and the burst=1 MMPP degenerate
    // case must land on the same closed form.
    for (const std::uint64_t seed : kSeeds) {
        PoissonProcess pp(qps, seed);
        EXPECT_NEAR(
            stationMeanSojourn(pp, meanServiceTicks, k, 100000, seed + 50),
            expected, 0.05 * expected)
            << "poisson seed=" << seed;
        MmppProcess mp(qps, 1.0, 0.2, 50 * kTicksPerMs, seed);
        EXPECT_NEAR(
            stationMeanSojourn(mp, meanServiceTicks, k, 100000, seed + 50),
            expected, 0.05 * expected)
            << "mmpp seed=" << seed;
    }
}

TEST(ArrivalProcessTest, BurstyArrivalsQueueLongerAtEqualMeanRate)
{
    // Same station, same stationary rate: an MMPP with a real burst
    // ratio must wait strictly longer than Poisson — burstiness, not
    // mean load, drives the excess (the IDC story of the paper's
    // tail studies).
    const double meanServiceTicks = 100.0 * kTicksPerUs;
    const double qps = 0.7 / meanServiceTicks *
                       static_cast<double>(kTicksPerSec);
    PoissonProcess pp(qps, 4242);
    const double poisson =
        stationMeanSojourn(pp, meanServiceTicks, 1, 60000, 4293);
    MmppProcess mp(qps, 6.0, 0.15, 20 * kTicksPerMs, 4242);
    const double bursty =
        stationMeanSojourn(mp, meanServiceTicks, 1, 60000, 4293);
    EXPECT_GT(bursty, 1.5 * poisson);
}

} // namespace
} // namespace uqsim
