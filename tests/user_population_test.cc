/**
 * @file
 * Tests for user populations and skew statistics (Sec 8 inputs).
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/user_population.hh"

namespace uqsim::workload {
namespace {

TEST(UserPopulationTest, UniformCoversRange)
{
    auto pop = UserPopulation::uniform(10);
    Rng rng(1);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        counts[pop.sample(rng)]++;
    EXPECT_EQ(counts.size(), 10u);
    for (const auto &[user, n] : counts)
        EXPECT_NEAR(n, 2000, 300);
}

TEST(UserPopulationTest, SkewZeroIsUniform)
{
    auto pop = UserPopulation::skewed(100, 0.0);
    EXPECT_NEAR(pop.hottestShardLoad(10), 0.1, 1e-9);
}

TEST(UserPopulationTest, SkewMatchesPaperDefinition)
{
    // skew = 100 - u, u = % of users issuing 90% of requests.
    // At skew 80%, 20% of users get 90% of the traffic.
    auto pop = UserPopulation::skewed(1000, 80.0);
    Rng rng(3);
    std::uint64_t hot = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (pop.sample(rng) < 200) // the hot 20%
            ++hot;
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.9 + 0.1 * 0.2, 0.02);
}

TEST(UserPopulationTest, ExtremeSkewConcentrates)
{
    auto pop = UserPopulation::skewed(1000, 99.0);
    Rng rng(5);
    std::uint64_t hot = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        if (pop.sample(rng) < 10) // hot 1%
            ++hot;
    EXPECT_GT(static_cast<double>(hot) / n, 0.85);
}

TEST(UserPopulationTest, HottestShardLoadGrowsWithSkew)
{
    // Small population (the deployed Social Network has hundreds of
    // users): extreme skew leaves fewer hot users than shards.
    double prev = 0.0;
    for (double skew : {0.0, 50.0, 80.0, 95.0, 99.0}) {
        auto pop = UserPopulation::skewed(100, skew);
        const double load = pop.hottestShardLoad(8);
        EXPECT_GE(load, prev) << "skew=" << skew;
        prev = load;
    }
    EXPECT_GT(prev, 0.5); // at 99% skew one shard absorbs most load
}

TEST(UserPopulationTest, ZipfMatchesPaperRealTraffic)
{
    // Paper: ~5% of users generate >30% of requests in real traffic.
    auto pop = UserPopulation::zipf(1000, 0.95);
    Rng rng(7);
    std::uint64_t top5 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (pop.sample(rng) < 50)
            ++top5;
    EXPECT_GT(static_cast<double>(top5) / n, 0.30);
}

TEST(UserPopulationDeathTest, InvalidSkewFatal)
{
    EXPECT_DEATH(UserPopulation::skewed(10, 100.0), "skew");
}

} // namespace
} // namespace uqsim::workload
