/**
 * @file
 * QuantileSketch property tests: the O(1) streaming sketch must answer
 * any quantile within its documented relative error bound
 * (1/2^subBucketBits, <= 2% at the default resolution) against the
 * exact order statistics, across distribution shapes — uniform,
 * exponential (heavy right tail) and bimodal (the classic cache
 * hit/miss latency mixture a mean would hide).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/sketch.hh"

namespace uqsim::obs {
namespace {

/** Exact order statistic with the sketch's own rank convention. */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size()) + 0.5;
    std::uint64_t rank = static_cast<std::uint64_t>(pos);
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

/** Assert every interesting quantile is within the documented bound. */
void
expectWithinBound(const std::vector<std::uint64_t> &samples,
                  const char *label)
{
    QuantileSketch sketch;
    for (std::uint64_t v : samples)
        sketch.record(v);
    ASSERT_EQ(sketch.count(), samples.size());

    const double bound = sketch.relativeErrorBound();
    EXPECT_LE(bound, 0.02) << "documented contract is <= 2%";

    for (double q : {0.50, 0.90, 0.95, 0.99, 0.999}) {
        const std::uint64_t exact = exactQuantile(samples, q);
        const std::uint64_t approx = sketch.quantile(q);
        // The sketch answers the upper bound of the bucket holding
        // the requested rank: never below the exact order statistic,
        // never more than one bucket width above it.
        EXPECT_GE(approx, exact) << label << " q=" << q;
        EXPECT_LE(static_cast<double>(approx),
                  static_cast<double>(exact) * (1.0 + bound) + 1.0)
            << label << " q=" << q << " exact=" << exact
            << " approx=" << approx;
    }
}

TEST(QuantileSketchTest, UniformWithinBound)
{
    std::mt19937_64 rng(1);
    std::uniform_int_distribution<std::uint64_t> d(1000, 50'000'000);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i)
        samples.push_back(d(rng));
    expectWithinBound(samples, "uniform");
}

TEST(QuantileSketchTest, ExponentialWithinBound)
{
    std::mt19937_64 rng(2);
    std::exponential_distribution<double> d(1.0 / 2'000'000.0);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i)
        samples.push_back(static_cast<std::uint64_t>(d(rng)) + 1);
    expectWithinBound(samples, "exponential");
}

TEST(QuantileSketchTest, BimodalWithinBound)
{
    // Cache-hit (~200us) / cache-miss (~8ms) mixture: quantiles must
    // land on the correct mode, which a mean-based summary cannot do.
    std::mt19937_64 rng(3);
    std::normal_distribution<double> hit(200'000.0, 20'000.0);
    std::normal_distribution<double> miss(8'000'000.0, 500'000.0);
    std::bernoulli_distribution is_hit(0.9);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 20000; ++i) {
        const double v = is_hit(rng) ? hit(rng) : miss(rng);
        samples.push_back(static_cast<std::uint64_t>(std::max(1.0, v)));
    }
    expectWithinBound(samples, "bimodal");

    QuantileSketch sketch;
    for (std::uint64_t v : samples)
        sketch.record(v);
    EXPECT_LT(sketch.p50(), 400'000u) << "p50 must sit on the hit mode";
    EXPECT_GT(sketch.p99(), 6'000'000u)
        << "p99 must sit on the miss mode";
}

TEST(QuantileSketchTest, ExactScalarsAndEmptyState)
{
    QuantileSketch s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.quantile(0.99), 0u);

    s.record(100);
    s.record(300);
    s.record(200);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.min(), 100u); // min/max/mean are exact, not bucketed
    EXPECT_EQ(s.max(), 300u);
    EXPECT_DOUBLE_EQ(s.mean(), 200.0);
}

TEST(QuantileSketchTest, QuantileClampsToObservedRange)
{
    QuantileSketch s;
    for (int i = 0; i < 100; ++i)
        s.record(1'000'000);
    EXPECT_EQ(s.quantile(0.0), 1'000'000u);
    EXPECT_EQ(s.quantile(1.0), 1'000'000u);
    EXPECT_EQ(s.p99(), 1'000'000u);
}

TEST(QuantileSketchTest, MergeMatchesCombinedStream)
{
    std::mt19937_64 rng(4);
    std::uniform_int_distribution<std::uint64_t> d(1, 10'000'000);
    QuantileSketch a, b, all;
    std::vector<std::uint64_t> combined;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t va = d(rng), vb = d(rng);
        a.record(va);
        b.record(vb);
        all.record(va);
        all.record(vb);
        combined.push_back(va);
        combined.push_back(vb);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    for (double q : {0.5, 0.95, 0.99})
        EXPECT_EQ(a.quantile(q), all.quantile(q))
            << "merge must be exact at q=" << q;
}

TEST(QuantileSketchTest, ResetForgetsEverything)
{
    QuantileSketch s;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        s.record(v * 1000);
    ASSERT_GT(s.p99(), 0u);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.quantile(0.99), 0u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 0u);

    // And the sketch is fully reusable after the O(touched) reset.
    s.record(42);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.quantile(0.5), 42u);
}

TEST(QuantileSketchTest, BatchQuantilesMatchScalarCalls)
{
    // The one-pass batch used by the telemetry sampler must agree
    // exactly with per-quantile queries, whatever the request order,
    // including the q<=0 / q>=1 exact endpoints.
    std::mt19937_64 rng(5);
    std::exponential_distribution<double> d(1.0 / 750'000.0);
    QuantileSketch s;
    for (int i = 0; i < 10000; ++i)
        s.record(static_cast<std::uint64_t>(d(rng)) + 1);

    const double qs[] = {0.99, 0.0, 0.50, 1.0, 0.95, 0.50};
    std::uint64_t out[6];
    s.quantiles(qs, 6, out);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(out[i], s.quantile(qs[i])) << "q=" << qs[i];

    // Empty sketch: everything is 0, same as quantile().
    QuantileSketch empty;
    std::uint64_t zeros[2] = {7, 7};
    const double both[] = {0.5, 0.99};
    empty.quantiles(both, 2, zeros);
    EXPECT_EQ(zeros[0], 0u);
    EXPECT_EQ(zeros[1], 0u);
}

TEST(QuantileSketchTest, HigherResolutionTightensTheBound)
{
    QuantileSketch coarse(3), fine(10);
    EXPECT_DOUBLE_EQ(coarse.relativeErrorBound(), 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(fine.relativeErrorBound(), 1.0 / 1024.0);
}

} // namespace
} // namespace uqsim::obs
