/**
 * @file
 * Integration tests of the fault-injection engine against the
 * client-side resilience layer, on a purpose-built two-tier app.
 *
 * Each scenario arms a FaultInjector with a small schedule and drives
 * an open load loop, then asserts on end-to-end request outcomes,
 * span/metric accounting and — for the retry-storm scenario — the
 * per-window goodput trajectory that distinguishes a metastable
 * failure from a recovering one.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "apps/builder.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "manager/monitor.hh"
#include "service/app.hh"
#include "trace/span.hh"

namespace uqsim::fault {
namespace {

using service::App;
using service::Request;
using service::ServiceDef;
using service::ServiceKind;

/** One finished request, timestamped for windowed goodput. */
struct Outcome
{
    Tick done = 0;
    bool ok = false;
    std::uint8_t status = 0;
    std::uint32_t retries = 0;
};

/** Fixture with a front tier on worker 0 calling a backend on worker 1. */
class FaultScenarioTest : public ::testing::Test
{
  protected:
    FaultScenarioTest() { rebuild(42); }

    void
    rebuild(std::uint64_t seed)
    {
        apps::WorldConfig c;
        c.workerServers = 2;
        c.seed = seed;
        world_ = std::make_unique<apps::World>(c);
    }

    /**
     * front (worker 0) -> backend (worker 1). The backend does
     * @p backend_us of deterministic compute on @p backend_threads
     * worker threads; the front tier is kept wide so it never
     * bottlenecks.
     */
    void
    buildPair(double backend_us, unsigned backend_threads)
    {
        App &app = *world_->app;
        ServiceDef backend;
        backend.name = "backend";
        backend.handler.compute(apps::computeUsConst(backend_us));
        backend.threadsPerInstance = backend_threads;
        app.addService(std::move(backend)).addInstance(world_->worker(1));

        ServiceDef front;
        front.name = "front";
        front.kind = ServiceKind::Frontend;
        front.handler.compute(apps::computeUsConst(20.0)).call("backend");
        front.threadsPerInstance = 64;
        app.addService(std::move(front)).addInstance(world_->worker(0));

        app.setEntry("front");
        app.addQueryType({"q", 1.0, 1.0, 0, {}});
        app.validate();
    }

    /** Resilience policy governing calls *to* the backend. */
    rpc::ResiliencePolicy &
    backendPolicy()
    {
        return world_->app->service("backend").mutableDef().resilience;
    }

    /**
     * Schedule an open-loop arrival stream: one injection every
     * 1/`qps` seconds over [0, duration), recording outcomes.
     */
    void
    openLoop(double qps, Tick duration, std::vector<Outcome> &out)
    {
        const Tick interval = static_cast<Tick>(kTicksPerSec / qps);
        for (Tick t = interval; t < duration; t += interval)
            world_->sim.scheduleAt(t, [this, &out, t]() {
                world_->app->inject(
                    0, t / kTicksPerMs, [&out](const Request &r) {
                        out.push_back({r.completeTime,
                                       r.failStatus == 0 && !r.dropped,
                                       r.failStatus, r.retries});
                    });
            });
    }

    /** Successful completions per @p width window of simulated time. */
    static std::vector<unsigned>
    goodputWindows(const std::vector<Outcome> &outcomes, Tick width,
                   Tick horizon)
    {
        std::vector<unsigned> w(static_cast<std::size_t>(horizon / width),
                                0);
        for (const Outcome &o : outcomes) {
            if (!o.ok)
                continue;
            const std::size_t idx = static_cast<std::size_t>(o.done / width);
            if (idx < w.size())
                ++w[idx];
        }
        return w;
    }

    std::uint64_t
    counter(const std::string &name)
    {
        return world_->app->metrics().counter(name).value();
    }

    std::unique_ptr<apps::World> world_;
};

// -- Crash / restart ----------------------------------------------------

TEST_F(FaultScenarioTest, CrashFailsInFlightAndRestartRecovers)
{
    buildPair(/*backend_us=*/10000.0, /*threads=*/4); // ~10ms handler
    FaultInjector inj(*world_->app, 42);
    FaultSpec crash;
    crash.kind = FaultKind::Crash;
    crash.service = "backend";
    crash.instance = 0;
    crash.start = 5 * kTicksPerMs;
    crash.duration = 20 * kTicksPerMs;
    inj.add(crash);
    inj.arm();

    // In flight when the crash fires at t=5ms (handler runs 10ms).
    Request victim, survivor;
    world_->sim.scheduleAt(1 * kTicksPerMs, [&]() {
        world_->app->inject(0, 1, [&](const Request &r) { victim = r; });
    });
    // Injected after the restart at t=25ms; must complete normally.
    world_->sim.scheduleAt(30 * kTicksPerMs, [&]() {
        world_->app->inject(0, 2, [&](const Request &r) { survivor = r; });
    });
    world_->sim.run();

    EXPECT_EQ(victim.failStatus,
              static_cast<std::uint8_t>(trace::SpanStatus::Crashed));
    EXPECT_EQ(counter("rpc.crashed_in_flight"), 1u);
    EXPECT_EQ(counter("fault.crashes"), 1u);
    EXPECT_EQ(inj.crashes(), 1u);
    EXPECT_EQ(survivor.failStatus, 0);
    EXPECT_FALSE(survivor.dropped);
    EXPECT_EQ(world_->app->failedRequests(), 1u);
    EXPECT_EQ(world_->app->completed(), 1u);
}

TEST_F(FaultScenarioTest, RequestsDuringOutageFailWithoutWedgingTheApp)
{
    buildPair(/*backend_us=*/500.0, /*threads=*/8);
    FaultInjector inj(*world_->app, 42);
    FaultSpec crash;
    crash.kind = FaultKind::Crash;
    crash.service = "backend";
    crash.instance = 0;
    crash.start = 100 * kTicksPerMs;
    crash.duration = 200 * kTicksPerMs;
    inj.add(crash);
    inj.arm();

    std::vector<Outcome> outcomes;
    openLoop(/*qps=*/200.0, /*duration=*/500 * kTicksPerMs, outcomes);
    world_->sim.run();

    // Every injection resolved: nothing hangs on a dead instance.
    ASSERT_EQ(outcomes.size(), 99u);
    unsigned during_fail = 0, after_ok = 0;
    for (const Outcome &o : outcomes) {
        if (o.done > 100 * kTicksPerMs && o.done <= 300 * kTicksPerMs)
            during_fail += o.ok ? 0 : 1;
        if (o.done > 320 * kTicksPerMs)
            after_ok += o.ok ? 1 : 0;
    }
    // The outage window fails its requests; recovery is complete.
    EXPECT_GT(during_fail, 30u);
    EXPECT_GT(after_ok, 30u);
    EXPECT_EQ(world_->app->completed() + world_->app->failedRequests(),
              99u);
}

// -- Transient error windows -------------------------------------------

TEST_F(FaultScenarioTest, ErrorWindowFailsRequestsAndMonitorSeesIt)
{
    buildPair(/*backend_us=*/200.0, /*threads=*/8);
    manager::Monitor monitor(*world_->app, 20 * kTicksPerMs);
    monitor.start();
    FaultInjector inj(*world_->app, 42);
    FaultSpec err;
    err.kind = FaultKind::ErrorRate;
    err.service = "backend";
    err.rate = 1.0;
    err.start = 50 * kTicksPerMs;
    err.duration = 100 * kTicksPerMs;
    inj.add(err);
    inj.arm();

    std::vector<Outcome> outcomes;
    openLoop(/*qps=*/500.0, /*duration=*/250 * kTicksPerMs, outcomes);
    world_->sim.scheduleAt(260 * kTicksPerMs,
                           [&monitor]() { monitor.stop(); });
    world_->sim.run();

    unsigned in_window_fail = 0, outside_fail = 0;
    for (const Outcome &o : outcomes) {
        const bool in_window = o.done > 50 * kTicksPerMs &&
                               o.done <= 151 * kTicksPerMs;
        if (!o.ok && in_window) {
            ++in_window_fail;
            EXPECT_EQ(o.status,
                      static_cast<std::uint8_t>(trace::SpanStatus::Error));
        }
        if (!o.ok && !in_window)
            ++outside_fail;
    }
    EXPECT_GT(in_window_fail, 40u);
    EXPECT_EQ(outside_fail, 0u);
    EXPECT_EQ(inj.requestsFailed(), counter("fault.requests_failed"));
    EXPECT_GT(inj.requestsFailed(), 0u);

    // The operator's error-rate panel lights up during the window.
    double peak = 0.0;
    for (const auto &round : monitor.history())
        for (const auto &s : round)
            if (s.service == "backend")
                peak = std::max(peak, s.errorRate);
    EXPECT_GT(peak, 0.9);
}

TEST_F(FaultScenarioTest, RetriesMaskTransientErrors)
{
    // 30% injected error rate over the whole run: naive callers lose
    // ~30% of requests, four attempts lose ~0.8%.
    auto run = [this](unsigned max_attempts) {
        rebuild(42);
        buildPair(/*backend_us=*/200.0, /*threads=*/16);
        if (max_attempts > 1) {
            rpc::ResiliencePolicy &pol = backendPolicy();
            pol.retry.maxAttempts = max_attempts;
            pol.retry.baseBackoff = 200 * kTicksPerUs;
            pol.retry.jitter = 0.5;
        }
        FaultInjector inj(*world_->app, 42);
        FaultSpec err;
        err.kind = FaultKind::ErrorRate;
        err.service = "backend";
        err.rate = 0.3;
        err.start = 0;
        err.duration = kTicksPerSec;
        inj.add(err);
        inj.arm();
        std::vector<Outcome> outcomes;
        openLoop(/*qps=*/1000.0, /*duration=*/800 * kTicksPerMs, outcomes);
        world_->sim.run();
        unsigned failed = 0;
        for (const Outcome &o : outcomes)
            failed += o.ok ? 0 : 1;
        return static_cast<double>(failed) /
               static_cast<double>(outcomes.size());
    };

    const double naive = run(1);
    const double retried = run(4);
    EXPECT_NEAR(naive, 0.3, 0.06);
    EXPECT_LT(retried, 0.05);
    EXPECT_GT(counter("rpc.retries"), 100u);
}

// -- Network partitions -------------------------------------------------

TEST_F(FaultScenarioTest, PartitionTimesOutCallsAndHeals)
{
    buildPair(/*backend_us=*/200.0, /*threads=*/8);
    rpc::ResiliencePolicy &pol = backendPolicy();
    pol.timeout = 5 * kTicksPerMs;

    FaultInjector inj(*world_->app, 42);
    FaultSpec part;
    part.kind = FaultKind::Partition;
    part.groupA = {world_->worker(0).id(), world_->worker(0).id()};
    part.groupB = {world_->worker(1).id(), world_->worker(1).id()};
    part.loss = 1.0;
    part.start = 50 * kTicksPerMs;
    part.duration = 100 * kTicksPerMs;
    inj.add(part);
    inj.arm();

    std::vector<Outcome> outcomes;
    openLoop(/*qps=*/200.0, /*duration=*/300 * kTicksPerMs, outcomes);
    world_->sim.run();

    ASSERT_EQ(outcomes.size(), 59u);
    unsigned timed_out = 0, late_ok = 0;
    for (const Outcome &o : outcomes) {
        if (o.status ==
            static_cast<std::uint8_t>(trace::SpanStatus::Timeout))
            ++timed_out;
        if (o.ok && o.done > 160 * kTicksPerMs)
            ++late_ok;
    }
    EXPECT_GT(timed_out, 15u);
    EXPECT_GT(late_ok, 20u);
    EXPECT_GT(world_->network->messagesDropped(), 0u);
    EXPECT_EQ(world_->network->messagesDropped(), inj.messagesDropped());
    EXPECT_GT(counter("rpc.timeouts"), 0u);
}

// -- Load shedding ------------------------------------------------------

TEST_F(FaultScenarioTest, ShedRefusesArrivalsAboveQueueDepth)
{
    buildPair(/*backend_us=*/5000.0, /*threads=*/1); // 5ms, one thread
    backendPolicy().shedQueueLength = 3;

    std::vector<Outcome> outcomes;
    // 10 arrivals within 1ms: one in service, three queued, the rest
    // refused with a retryable shed error instead of a silent drop.
    for (int i = 0; i < 10; ++i)
        world_->sim.scheduleAt(100 * kTicksPerUs * (i + 1), [this,
                                                            &outcomes]() {
            world_->app->inject(0, 1, [&outcomes](const Request &r) {
                outcomes.push_back({r.completeTime,
                                    r.failStatus == 0 && !r.dropped,
                                    r.failStatus, r.retries});
            });
        });
    world_->sim.run();

    ASSERT_EQ(outcomes.size(), 10u);
    unsigned ok = 0, shed = 0;
    for (const Outcome &o : outcomes) {
        ok += o.ok ? 1 : 0;
        if (o.status == static_cast<std::uint8_t>(trace::SpanStatus::Shed))
            ++shed;
    }
    EXPECT_EQ(ok, 4u);   // the served one + the three queued
    EXPECT_EQ(shed, 6u); // everything beyond the shed threshold
    EXPECT_EQ(counter("rpc.shed"), 6u);
    EXPECT_EQ(world_->app->droppedRequests(), 0u); // shed != drop
}

// -- Determinism --------------------------------------------------------

TEST_F(FaultScenarioTest, FaultScheduleIsDeterministic)
{
    auto run = [this](std::uint64_t seed) {
        rebuild(seed);
        buildPair(/*backend_us=*/300.0, /*threads=*/4);
        rpc::ResiliencePolicy &pol = backendPolicy();
        pol.timeout = 5 * kTicksPerMs;
        pol.retry.maxAttempts = 3;
        pol.retry.budgetRatio = 0.2;
        pol.breaker.enabled = true;
        FaultInjector inj(*world_->app, seed);
        FaultSpec err;
        err.kind = FaultKind::ErrorRate;
        err.service = "backend";
        err.rate = 0.5;
        err.start = 20 * kTicksPerMs;
        err.duration = 60 * kTicksPerMs;
        inj.add(err);
        FaultSpec crash;
        crash.kind = FaultKind::Crash;
        crash.service = "backend";
        crash.instance = 0;
        crash.start = 100 * kTicksPerMs;
        crash.duration = 30 * kTicksPerMs;
        inj.add(crash);
        inj.arm();
        std::vector<Outcome> outcomes;
        openLoop(/*qps=*/400.0, /*duration=*/200 * kTicksPerMs, outcomes);
        world_->sim.run();
        return world_->sim.executionDigest();
    };

    const std::uint64_t a = run(7);
    const std::uint64_t b = run(7);
    const std::uint64_t c = run(8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST_F(FaultScenarioTest, ArmedEmptyScheduleKeepsLegacyDigest)
{
    auto run = [this](bool with_injector) {
        rebuild(42);
        buildPair(/*backend_us=*/300.0, /*threads=*/4);
        std::unique_ptr<FaultInjector> inj;
        if (with_injector) {
            inj = std::make_unique<FaultInjector>(*world_->app, 42);
            inj->arm();
        }
        std::vector<Outcome> outcomes;
        openLoop(/*qps=*/400.0, /*duration=*/100 * kTicksPerMs, outcomes);
        world_->sim.run();
        return world_->sim.executionDigest();
    };

    EXPECT_EQ(run(false), run(true));
}

// -- Retry storm & mitigation ------------------------------------------

/**
 * The metastable-failure scenario the resilience layer exists for.
 *
 * Backend capacity is ~2000 rps (2 threads x 1ms). Offered load is
 * 1200 rps with a tight 2ms attempt timeout and 5 attempts per
 * request. A 2s slowdown window (x50 service time) collapses capacity
 * to ~40 rps; every attempt times out and naive retries quintuple
 * demand to ~6000 attempts/s — 3x healthy capacity. Once queue
 * wait exceeds ~1ms, served attempts finish after their callers gave
 * up, so the backend burns its whole capacity on zombie work and the
 * overload outlives the trigger: goodput stays near zero long after
 * the slowdown ends.
 *
 * A 10% retry budget caps retry amplification at 1.1x (~660
 * attempts/s < capacity), so the same trigger drains and goodput
 * returns to the offered rate.
 */
TEST_F(FaultScenarioTest, RetryStormPersistsAndBudgetCuresIt)
{
    const Tick window = 500 * kTicksPerMs;
    const Tick horizon = 8 * kTicksPerSec;

    auto run = [&](bool mitigated) {
        rebuild(42);
        buildPair(/*backend_us=*/1000.0, /*threads=*/2);
        rpc::ResiliencePolicy &pol = backendPolicy();
        // Tight timeout: barely 2x the healthy service time. Once queue
        // wait exceeds ~1ms every served attempt completes after its
        // caller gave up — capacity burned on zombie work, the
        // metastable mechanism.
        pol.timeout = 2 * kTicksPerMs;
        pol.retry.maxAttempts = 5;
        pol.retry.baseBackoff = 1 * kTicksPerMs;
        pol.retry.jitter = 0.5;
        if (mitigated) {
            pol.retry.budgetRatio = 0.1;
            pol.breaker.enabled = true;
        }
        FaultInjector inj(*world_->app, 42);
        FaultSpec slow;
        slow.kind = FaultKind::Slowdown;
        slow.server = world_->worker(1).id();
        slow.factor = 50.0;
        slow.start = 2 * kTicksPerSec;
        slow.duration = 2 * kTicksPerSec;
        inj.add(slow);
        inj.arm();
        std::vector<Outcome> outcomes;
        openLoop(/*qps=*/1200.0, horizon, outcomes);
        world_->sim.run();
        return goodputWindows(outcomes, window, horizon);
    };

    const std::vector<unsigned> naive = run(false);
    const std::vector<unsigned> cured = run(true);
    auto dump = [](const char *tag, const std::vector<unsigned> &w) {
        std::cerr << tag << ":";
        for (unsigned v : w)
            std::cerr << ' ' << v;
        std::cerr << '\n';
    };
    dump("naive", naive);
    dump("cured", cured);
    ASSERT_EQ(naive.size(), 16u);
    ASSERT_EQ(cured.size(), 16u);

    // Healthy before the trigger (~600 successes per 500ms window).
    for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_GT(naive[i], 500u) << "window " << i;
        EXPECT_GT(cured[i], 500u) << "window " << i;
    }
    // The slowdown ends at t=4s. Naive retries keep the backend
    // saturated with doomed attempts: goodput never recovers.
    unsigned naive_tail = 0, cured_tail = 0;
    for (std::size_t i = 12; i < 16; ++i) {
        naive_tail += naive[i];
        cured_tail += cured[i];
    }
    EXPECT_LT(naive_tail, 400u) << "storm should persist past the trigger";
    EXPECT_GT(cured_tail, 1000u) << "budget+breaker should restore goodput";
    EXPECT_GT(cured_tail, 4 * naive_tail);
    // The mitigated run spends its budget and trips the breaker.
    EXPECT_GT(counter("rpc.retry_budget_exhausted"), 0u);
}

} // namespace
} // namespace uqsim::fault
