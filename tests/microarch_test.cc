/**
 * @file
 * Tests for core models and the analytical microarchitecture model,
 * checking the calibration targets from Figs 10, 11 and 14.
 */

#include <gtest/gtest.h>

#include "apps/profiles.hh"
#include "cpu/core_model.hh"
#include "cpu/microarch.hh"

namespace uqsim::cpu {
namespace {

using apps::memcachedProfile;
using apps::mongodbProfile;
using apps::monolithProfile;
using apps::nginxProfile;
using apps::recommenderProfile;
using apps::xapianProfile;

TEST(CoreModelTest, Presets)
{
    EXPECT_FALSE(CoreModel::xeon().inOrder);
    EXPECT_TRUE(CoreModel::thunderx().inOrder);
    EXPECT_EQ(CoreModel::xeonAt1800().nominalFreqMhz, 1800.0);
    EXPECT_GT(CoreModel::thunderx().coresPerServer,
              CoreModel::xeon().coresPerServer);
    EXPECT_LT(CoreModel::edgeArm().coresPerServer, 8u);
}

TEST(MicroarchTest, MpkiMonotoneInFootprint)
{
    const CoreModel xeon = CoreModel::xeon();
    ServiceProfile p;
    double prev = 0.0;
    for (double kb : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
        p.codeFootprintKb = kb;
        const double mpki = MicroarchModel::l1iMpki(p, xeon);
        EXPECT_GE(mpki, prev);
        prev = mpki;
    }
}

TEST(MicroarchTest, MonolithMpkiMatchesPaper)
{
    // Fig 11: monolith ~65-75 MPKI.
    const double mpki =
        MicroarchModel::l1iMpki(monolithProfile(), CoreModel::xeon());
    EXPECT_GT(mpki, 60.0);
    EXPECT_LT(mpki, 76.0);
}

TEST(MicroarchTest, NginxMpkiMatchesPaper)
{
    // Fig 11: nginx ~25-40 MPKI.
    const double mpki =
        MicroarchModel::l1iMpki(nginxProfile(), CoreModel::xeon());
    EXPECT_GT(mpki, 20.0);
    EXPECT_LT(mpki, 45.0);
}

TEST(MicroarchTest, SmallMicroserviceMpkiIsLow)
{
    // Fig 11: tiny single-concern microservices nearly miss-free.
    const double mpki = MicroarchModel::l1iMpki(
        apps::cppMicroProfile("uniqueID"), CoreModel::xeon());
    EXPECT_LT(mpki, 12.0);
}

TEST(MicroarchTest, MonolithBeatsMicroOnRetiring)
{
    // Paper: monoliths retire slightly more due to fewer network waits.
    const CoreModel xeon = CoreModel::xeon();
    const auto mono =
        MicroarchModel::cycleBreakdown(monolithProfile(), xeon);
    const auto micro = MicroarchModel::cycleBreakdown(
        memcachedProfile(), xeon);
    EXPECT_GT(mono.retiring, micro.retiring);
}

TEST(MicroarchTest, BreakdownSumsToOne)
{
    const CoreModel xeon = CoreModel::xeon();
    for (const ServiceProfile &p :
         {nginxProfile(), memcachedProfile(), mongodbProfile(),
          monolithProfile(), recommenderProfile(), xapianProfile()}) {
        const auto b = MicroarchModel::cycleBreakdown(p, xeon);
        EXPECT_NEAR(b.frontend + b.badSpec + b.backend + b.retiring, 1.0,
                    1e-9)
            << p.name;
        EXPECT_GE(b.frontend, 0.0);
        EXPECT_GE(b.badSpec, 0.0);
        EXPECT_GE(b.backend, 0.0);
        EXPECT_GE(b.retiring, 0.0);
    }
}

TEST(MicroarchTest, FrontendDominatesForKernelHeavyServices)
{
    // Fig 10: a large fraction of cycles stalls in the front-end.
    const auto b = MicroarchModel::cycleBreakdown(memcachedProfile(),
                                                  CoreModel::xeon());
    EXPECT_GT(b.frontend, b.retiring);
    EXPECT_GT(b.frontend, b.badSpec);
}

TEST(MicroarchTest, RetiringInPaperRange)
{
    // Fig 10: ~21% average retiring for Social Network tiers.
    const auto b = MicroarchModel::cycleBreakdown(
        apps::cppMicroProfile("composePost"), CoreModel::xeon());
    EXPECT_GT(b.retiring, 0.10);
    EXPECT_LT(b.retiring, 0.35);
}

TEST(MicroarchTest, SearchHasHighIpcRecommenderLow)
{
    // Fig 10 E-commerce: Search is the IPC outlier, recommender lowest.
    const CoreModel xeon = CoreModel::xeon();
    const double search =
        MicroarchModel::effectiveIpc(xapianProfile(), xeon);
    const double recommender =
        MicroarchModel::effectiveIpc(recommenderProfile(), xeon);
    const double typical = MicroarchModel::effectiveIpc(
        apps::cppMicroProfile("text"), xeon);
    EXPECT_GT(search, typical);
    EXPECT_LT(recommender, typical);
    EXPECT_LT(recommender, 0.5);
    EXPECT_GT(search, 0.8);
}

TEST(MicroarchTest, InOrderCoreLosesIpc)
{
    // Fig 13 mechanism: ThunderX cannot hide stalls.
    for (const ServiceProfile &p :
         {nginxProfile(), memcachedProfile(), xapianProfile()}) {
        const double xeon =
            MicroarchModel::effectiveIpc(p, CoreModel::xeon());
        const double tx =
            MicroarchModel::effectiveIpc(p, CoreModel::thunderx());
        EXPECT_LT(tx, xeon) << p.name;
        EXPECT_LT(tx, 0.6 * xeon) << p.name; // substantially worse
    }
}

TEST(MicroarchTest, FrequencyCapDoesNotChangeIpc)
{
    const double a = MicroarchModel::effectiveIpc(nginxProfile(),
                                                  CoreModel::xeon());
    const double b = MicroarchModel::effectiveIpc(
        nginxProfile(), CoreModel::xeonAt1800());
    EXPECT_NEAR(a, b, 1e-12);
}

TEST(MicroarchTest, ModeBreakdownsSumToOne)
{
    for (const ServiceProfile &p :
         {nginxProfile(), mongodbProfile(), monolithProfile()}) {
        const auto c = MicroarchModel::cycleModes(p);
        const auto i = MicroarchModel::instructionModes(p);
        EXPECT_NEAR(c.kernel + c.user + c.libs + c.other, 1.0, 1e-9);
        EXPECT_NEAR(i.kernel + i.user + i.libs + i.other, 1.0, 1e-9);
        // Kernel instruction share below its cycle share (stally code).
        EXPECT_LE(i.kernel, c.kernel);
    }
}

TEST(MicroarchTest, MongoIsIoBound)
{
    EXPECT_GT(mongodbProfile().ioBoundFraction, 0.5);
    EXPECT_LT(nginxProfile().ioBoundFraction, 0.2);
}

} // namespace
} // namespace uqsim::cpu
