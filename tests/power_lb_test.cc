/**
 * @file
 * Tests for the power/energy model and the join-shortest-queue load
 * balancing policy (extension features; see DESIGN.md ablations).
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "cpu/power.hh"
#include "service/app.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

apps::WorldConfig
cfg(unsigned servers = 3)
{
    apps::WorldConfig c;
    c.workerServers = servers;
    return c;
}

TEST(PowerModelTest, IdleAtZeroUtilization)
{
    cpu::PowerModel m = cpu::PowerModel::xeon();
    EXPECT_NEAR(m.watts(0.0, 2400.0, 2400.0), m.idleWatts, 1e-9);
}

TEST(PowerModelTest, PeakAtFullUtilizationNominalFrequency)
{
    cpu::PowerModel m = cpu::PowerModel::xeon();
    EXPECT_NEAR(m.watts(1.0, 2400.0, 2400.0), m.peakWatts, 1e-9);
}

TEST(PowerModelTest, CubicFrequencyScaling)
{
    cpu::PowerModel m = cpu::PowerModel::xeon();
    const double full = m.watts(1.0, 2400.0, 2400.0) - m.idleWatts;
    const double half = m.watts(1.0, 1200.0, 2400.0) - m.idleWatts;
    EXPECT_NEAR(half, full / 8.0, 1e-9);
}

TEST(EnergyMeterTest, IdleClusterBurnsIdlePower)
{
    apps::World w(cfg(2));
    cpu::EnergyMeter meter(w.sim, w.cluster, cpu::PowerModel::xeon(),
                           100 * kTicksPerMs);
    meter.start();
    w.sim.runFor(10 * kTicksPerSec);
    // 3 servers (2 workers + client) x 120W x 10s = 3600 J.
    EXPECT_NEAR(meter.totalJoules(), 3600.0, 40.0);
    EXPECT_NEAR(meter.averageWatts(), 360.0, 5.0);
}

TEST(EnergyMeterTest, LoadIncreasesEnergy)
{
    auto measure = [&](double qps) {
        apps::World w(cfg(2));
        service::ServiceDef fe;
        fe.name = "fe";
        fe.kind = service::ServiceKind::Frontend;
        fe.handler.compute(Dist::exponential(3000.0 * 1440.0));
        fe.threadsPerInstance = 64;
        w.app->addService(std::move(fe)).addInstance(w.worker(0));
        w.app->setEntry("fe");
        w.app->addQueryType({"q", 1, 1.0, 0, {}});
        w.app->validate();
        cpu::EnergyMeter meter(w.sim, w.cluster,
                               cpu::PowerModel::xeon());
        meter.start();
        workload::runLoad(*w.app, qps, kTicksPerSec, 3 * kTicksPerSec,
                          workload::QueryMix({1.0}),
                          workload::UserPopulation::uniform(10), 3);
        return meter.totalJoules();
    };
    EXPECT_GT(measure(4000.0), 1.02 * measure(100.0));
}

TEST(EnergyMeterTest, ResetClearsIntegration)
{
    apps::World w(cfg(2));
    cpu::EnergyMeter meter(w.sim, w.cluster, cpu::PowerModel::xeon());
    meter.start();
    w.sim.runFor(kTicksPerSec);
    EXPECT_GT(meter.totalJoules(), 0.0);
    meter.reset();
    EXPECT_EQ(meter.totalJoules(), 0.0);
}

TEST(LbPolicyTest, JsqPrefersIdleInstance)
{
    apps::World w(cfg(3));
    service::App &app = *w.app;
    service::ServiceDef def;
    def.name = "svc";
    def.lbPolicy = service::LbPolicy::JoinShortestQueue;
    def.handler.compute(Dist::constant(1000.0));
    def.threadsPerInstance = 4;
    service::Microservice &tier = app.addService(std::move(def));
    tier.addInstance(w.worker(0));
    tier.addInstance(w.worker(1));

    service::Request req;
    // With no load JSQ picks deterministically the first instance;
    // consecutive *selections* without dispatch stay there.
    EXPECT_EQ(tier.selectInstance(req).index(), 0u);
    EXPECT_EQ(tier.selectInstance(req).index(), 0u);
}

TEST(LbPolicyTest, JsqRoutesAroundSlowInstance)
{
    // One instance on a drastically slow server: JSQ steers traffic
    // away once its queue builds, RR keeps feeding it.
    auto goodput = [&](service::LbPolicy policy) {
        apps::World w(cfg(3));
        service::App &app = *w.app;
        service::ServiceDef def;
        def.name = "fe";
        def.kind = service::ServiceKind::Frontend;
        def.lbPolicy = policy;
        def.handler.compute(Dist::exponential(800.0 * 1440.0));
        def.threadsPerInstance = 4;
        service::Microservice &tier = app.addService(std::move(def));
        tier.addInstance(w.worker(0));
        tier.addInstance(w.worker(1));
        tier.addInstance(w.worker(2));
        app.setEntry("fe");
        app.addQueryType({"q", 1, 1.0, 0, {}});
        app.setQosLatency(10 * kTicksPerMs);
        app.validate();
        w.cluster.server(0).setSlowFactor(50.0);
        auto r = workload::runLoad(
            app, 3000.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(50), 3);
        return r.goodputQps;
    };
    EXPECT_GT(goodput(service::LbPolicy::JoinShortestQueue),
              1.3 * goodput(service::LbPolicy::RoundRobin));
}

} // namespace
} // namespace uqsim
