/**
 * @file
 * Admission-control validation: unit behaviour of the token bucket
 * and the multi-class queue, plus closed-form queueing checks.
 *
 * The statistical tier follows queueing_theory_test.cc: nothing about
 * blocking or priority delay is hard-coded in the model, so driving
 * the AdmissionQueue as a bounded M/M/1/K station must reproduce the
 * Erlang loss-chain blocking probability (checked with a chi-square
 * statistic), and a 2-class weighted queue with lopsided weights must
 * match the non-preemptive priority mean-wait formulas.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>

#include "core/rng.hh"
#include "core/simulator.hh"
#include "core/types.hh"
#include "service/admission.hh"

namespace uqsim::service {
namespace {

AdmissionPolicy
policyWith(unsigned cap, double rate = 0.0, double burst = 32.0)
{
    AdmissionPolicy pol;
    pol.enabled = true;
    pol.classQueueCapacity = cap;
    pol.ratePerInstance = rate;
    pol.burst = burst;
    return pol;
}

TEST(TokenBucketTest, BurstThenDry)
{
    TokenBucket tb(1000.0, 10.0); // 1000 tokens/s, burst 10
    tb.reset(0);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(tb.tryAcquire(0, 1.0)) << "token " << i;
    EXPECT_FALSE(tb.tryAcquire(0, 1.0));
    // 1000/s == one token per millisecond.
    EXPECT_TRUE(tb.tryAcquire(kTicksPerMs, 1.0));
    EXPECT_FALSE(tb.tryAcquire(kTicksPerMs, 1.0));
}

TEST(TokenBucketTest, RefillClampsAtBurst)
{
    TokenBucket tb(1000.0, 4.0);
    tb.reset(0);
    EXPECT_NEAR(tb.available(100 * kTicksPerSec), 4.0, 1e-9);
}

TEST(TokenBucketTest, ReserveOrderingProtectsHighPriority)
{
    const AdmissionPolicy pol = policyWith(16, 100.0, 32.0);
    const double user = qosTokenReserve(pol, QosClass::UserFacing);
    const double batch = qosTokenReserve(pol, QosClass::Batch);
    const double best = qosTokenReserve(pol, QosClass::BestEffort);
    EXPECT_LT(user, batch);
    EXPECT_LT(batch, best);
    EXPECT_DOUBLE_EQ(user, 1.0); // user-facing may take the last token

    // Drain the bucket to just above one token: only user-facing
    // still gets through.
    TokenBucket tb(100.0, 32.0);
    tb.reset(0);
    while (tb.available(0) >= best)
        tb.tryAcquire(0, 1.0);
    EXPECT_FALSE(tb.tryAcquire(0, best));
    EXPECT_TRUE(tb.tryAcquire(0, user));
}

TEST(AdmissionQueueTest, WeightedRoundRobinOrder)
{
    AdmissionPolicy pol = policyWith(64);
    pol.weights = {2, 1, 1};
    AdmissionQueue<int> q(pol, 4096, 0);
    for (int i = 0; i < 4; ++i)
        q.push(QosClass::UserFacing, 100 + i);
    for (int i = 0; i < 2; ++i)
        q.push(QosClass::Batch, 200 + i);
    for (int i = 0; i < 2; ++i)
        q.push(QosClass::BestEffort, 300 + i);

    // Per grant cycle: 2 user, 1 batch, 1 best-effort, FIFO within a
    // class.
    const int expect[] = {100, 101, 200, 300, 102, 103, 201, 301};
    for (int want : expect) {
        QosClass cls;
        int item = 0;
        ASSERT_TRUE(q.pop(cls, item));
        EXPECT_EQ(item, want);
    }
    QosClass cls;
    int item = 0;
    EXPECT_FALSE(q.pop(cls, item));
}

TEST(AdmissionQueueTest, ShedsLowPriorityFirst)
{
    // cap 16: best-effort sheds at total >= 4, batch at >= 8,
    // user-facing only at >= 16.
    AdmissionQueue<int> q(policyWith(16), 4096, 0);
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(q.offer(QosClass::BestEffort, 0),
                  AdmissionVerdict::Admit);
        q.push(QosClass::BestEffort, i);
    }
    EXPECT_EQ(q.offer(QosClass::BestEffort, 0), AdmissionVerdict::Shed);
    EXPECT_EQ(q.offer(QosClass::Batch, 0), AdmissionVerdict::Admit);
    for (int i = 0; i < 4; ++i) {
        ASSERT_EQ(q.offer(QosClass::Batch, 0), AdmissionVerdict::Admit);
        q.push(QosClass::Batch, i);
    }
    EXPECT_EQ(q.offer(QosClass::Batch, 0), AdmissionVerdict::Shed);
    for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(q.offer(QosClass::UserFacing, 0),
                  AdmissionVerdict::Admit);
        q.push(QosClass::UserFacing, i);
    }
    // Aggregate backlog reached the full bound: now even user-facing
    // work is refused.
    EXPECT_EQ(q.offer(QosClass::UserFacing, 0), AdmissionVerdict::Shed);
}

TEST(AdmissionQueueTest, PerClassBoundOverflows)
{
    AdmissionQueue<int> q(policyWith(4), 4096, 0);
    // Fill the batch class directly (bypassing offer) to its bound:
    // the next batch offer is a hard Overflow, checked before the
    // shed thresholds.
    for (int i = 0; i < 4; ++i)
        q.push(QosClass::Batch, i);
    EXPECT_EQ(q.offer(QosClass::Batch, 0), AdmissionVerdict::Overflow);
    EXPECT_EQ(q.length(QosClass::Batch), 4u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.offer(QosClass::Batch, 0), AdmissionVerdict::Admit);
}

TEST(AdmissionQueueTest, FallbackCapacityInheritsTier)
{
    AdmissionQueue<int> q(policyWith(0), 128, 0);
    EXPECT_EQ(q.capacity(), 128u);
    AdmissionQueue<int> q2(policyWith(16), 128, 0);
    EXPECT_EQ(q2.capacity(), 16u);
}

// ---- closed-form: M/M/1/K blocking probability ----------------------

/** M/M/1/K blocking probability (Erlang loss chain). */
double
mm1kBlocking(double rho, unsigned K)
{
    return (1.0 - rho) * std::pow(rho, K) /
           (1.0 - std::pow(rho, K + 1));
}

struct Mm1kResult
{
    std::uint64_t offered = 0;
    std::uint64_t blocked = 0;
};

/**
 * Drive the AdmissionQueue as the waiting room of an M/M/1/K station:
 * one server, K-1 waiting slots, blocked arrivals counted. Every
 * admission decision goes through offer(), so the measured blocking
 * probability is emergent.
 */
Mm1kResult
simulateMm1k(std::uint64_t seed, double meanServiceTicks, double rho,
             unsigned K, std::uint64_t arrivals)
{
    const double meanInterarrival = meanServiceTicks / rho;
    Simulator sim;
    Rng rng(seed);

    AdmissionQueue<Tick> waiting(policyWith(K - 1), 4096, 0);
    bool busy = false;
    Mm1kResult r;
    std::uint64_t generated = 0;

    std::function<void()> startService = [&] {
        busy = true;
        sim.schedule(
            static_cast<Tick>(rng.exponential(meanServiceTicks)) + 1,
            [&] {
                QosClass cls;
                Tick arrived = 0;
                if (waiting.pop(cls, arrived))
                    startService();
                else
                    busy = false;
            });
    };

    std::function<void()> arrive = [&] {
        if (generated < arrivals) {
            ++generated;
            sim.schedule(
                static_cast<Tick>(rng.exponential(meanInterarrival)) + 1,
                arrive);
            ++r.offered;
            if (!busy) {
                startService();
            } else if (waiting.offer(QosClass::UserFacing, sim.now()) ==
                       AdmissionVerdict::Admit) {
                waiting.push(QosClass::UserFacing, sim.now());
            } else {
                ++r.blocked;
            }
        }
    };

    sim.schedule(0, arrive);
    sim.run();
    return r;
}

TEST(AdmissionClosedFormTest, Mm1kBlockingMatchesChiSquare)
{
    const double rho = 0.8;
    const unsigned K = 5;
    const double meanService = 100.0 * kTicksPerUs;
    const std::uint64_t arrivals = 200000;
    const double pK = mm1kBlocking(rho, K);

    for (std::uint64_t seed : {9001ull, 9002ull, 9003ull}) {
        const Mm1kResult r =
            simulateMm1k(seed, meanService, rho, K, arrivals);
        ASSERT_EQ(r.offered, arrivals);
        const double expBlocked = pK * static_cast<double>(arrivals);
        const double expAdmitted =
            (1.0 - pK) * static_cast<double>(arrivals);
        const double dB =
            static_cast<double>(r.blocked) - expBlocked;
        const double dA =
            static_cast<double>(arrivals - r.blocked) - expAdmitted;
        // Pearson chi-square over (blocked, admitted), 1 dof. The
        // 0.001 critical value is 10.83; exceeding it would mean the
        // bounded queue does not follow the Erlang loss chain.
        const double chi2 =
            dB * dB / expBlocked + dA * dA / expAdmitted;
        EXPECT_LT(chi2, 10.83)
            << "seed=" << seed << " blocked=" << r.blocked
            << " expected=" << expBlocked;
    }
}

// ---- closed-form: 2-class non-preemptive priority -------------------

struct PriorityResult
{
    double meanWaitHigh = 0.0; // queueing delay, ticks
    double meanWaitLow = 0.0;
};

/**
 * Two Poisson classes, one server, exponential service, lopsided WRR
 * weights (10000:1): between grant cycles this is exact head-of-line
 * priority, so the measured mean waits must match the non-preemptive
 * M/M/1 priority formulas.
 */
PriorityResult
simulatePriority(std::uint64_t seed, double meanServiceTicks,
                 double rhoHigh, double rhoLow, std::uint64_t jobs)
{
    Simulator sim;
    Rng rng(seed);

    AdmissionPolicy pol = policyWith(1u << 20);
    pol.weights = {10000, 1, 1};
    AdmissionQueue<Tick> waiting(pol, 4096, 0);

    const double rho = rhoHigh + rhoLow;
    const double meanInterarrival = meanServiceTicks / rho;
    const double pHigh = rhoHigh / rho;
    const std::uint64_t warmup = jobs / 5;

    bool busy = false;
    std::uint64_t generated = 0, completedJobs = 0;
    double sumWait[2] = {0.0, 0.0};
    std::uint64_t measured[2] = {0, 0};

    // @p waited is the queueing delay this job saw before its service
    // began (0 when it found the server idle).
    std::function<void(QosClass, Tick)> startService =
        [&](QosClass cls, Tick waited) {
            busy = true;
            sim.schedule(
                static_cast<Tick>(rng.exponential(meanServiceTicks)) + 1,
                [&, cls, waited] {
                    ++completedJobs;
                    if (completedJobs > warmup) {
                        const std::size_t k =
                            cls == QosClass::UserFacing ? 0 : 1;
                        sumWait[k] += static_cast<double>(waited);
                        ++measured[k];
                    }
                    QosClass next;
                    Tick next_arrived = 0;
                    if (waiting.pop(next, next_arrived))
                        startService(
                            next,
                            static_cast<Tick>(sim.now() - next_arrived));
                    else
                        busy = false;
                });
        };

    std::function<void()> arrive = [&] {
        if (generated < jobs + warmup + jobs / 5) {
            ++generated;
            sim.schedule(
                static_cast<Tick>(rng.exponential(meanInterarrival)) + 1,
                arrive);
            const QosClass cls = rng.uniform01() < pHigh
                                     ? QosClass::UserFacing
                                     : QosClass::Batch;
            if (!busy)
                startService(cls, 0); // no wait
            else
                waiting.push(cls, sim.now());
        }
    };

    sim.schedule(0, arrive);
    sim.run();

    PriorityResult r;
    r.meanWaitHigh = sumWait[0] / static_cast<double>(measured[0]);
    r.meanWaitLow = sumWait[1] / static_cast<double>(measured[1]);
    return r;
}

TEST(AdmissionClosedFormTest, PriorityMeanWaitsMatchClosedForm)
{
    const double meanService = 100.0 * kTicksPerUs;
    const double rho1 = 0.35, rho2 = 0.35, rho = rho1 + rho2;
    // Non-preemptive M/M/1 priority with a common service rate:
    //   E[R]   = rho / mu          (mean residual service at arrival)
    //   Wq_hi  = E[R] / (1 - rho1)
    //   Wq_lo  = E[R] / ((1 - rho1) (1 - rho))
    const double residual = rho * meanService;
    const double expHigh = residual / (1.0 - rho1);
    const double expLow = residual / ((1.0 - rho1) * (1.0 - rho));

    for (std::uint64_t seed : {9101ull, 9102ull, 9103ull}) {
        const PriorityResult r =
            simulatePriority(seed, meanService, rho1, rho2, 150000);
        EXPECT_NEAR(r.meanWaitHigh, expHigh, 0.08 * expHigh)
            << "seed=" << seed;
        EXPECT_NEAR(r.meanWaitLow, expLow, 0.08 * expLow)
            << "seed=" << seed;
        EXPECT_LT(r.meanWaitHigh, r.meanWaitLow);
        // Work conservation: the class-weighted waits must add up to
        // the FCFS M/M/1 value (Kleinrock's conservation law).
        const double fcfs = residual / (1.0 - rho);
        const double conserved =
            (rho1 * r.meanWaitHigh + rho2 * r.meanWaitLow) / rho;
        EXPECT_NEAR(conserved, fcfs, 0.08 * fcfs) << "seed=" << seed;
    }
}

} // namespace
} // namespace uqsim::service
