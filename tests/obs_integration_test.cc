/**
 * @file
 * Integration tests of the telemetry pipeline inside full application
 * models: the opt-in contract (no telemetry => the pinned execution
 * digest — and, stronger, *enabled* telemetry keeps the same digest,
 * bit for bit), seed determinism and thread-count invariance of the
 * exported series, the sketch-vs-exact percentile contract on a live
 * request stream, the Perfetto counter-track export, the scenario
 * `slo:` block round-trip, and the Monitor's in-flight gauge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/builder.hh"
#include "apps/scenario.hh"
#include "core/json.hh"
#include "manager/monitor.hh"
#include "obs/export.hh"
#include "obs/pipeline.hh"
#include "obs/sketch.hh"
#include "trace/export.hh"
#include "workload/generators.hh"
#include "workload/user_population.hh"

namespace uqsim {
namespace {

// -- Scenario-level contract -------------------------------------------

struct ObsRun
{
    std::uint64_t digest = 0;
    std::uint64_t completed = 0;
    /** Shard-0 exports (empty when observability is off). */
    std::string json;
    std::string csv;
    std::uint64_t intervals = 0;
    unsigned pipelines = 0;
};

ObsRun
runScenario(const apps::Scenario &scn, Tick warmup, Tick measure)
{
    apps::WorldHandle w(apps::worldConfigFor(scn), scn.shards,
                        scn.threads);
    // Declared after the world: destroyed first, while the tapped
    // apps are still alive (the uqsim_run layering).
    std::vector<std::unique_ptr<obs::Pipeline>> pipes;
    for (unsigned s = 0; s < scn.shards; ++s) {
        apps::buildScenarioApp(w.shard(s), scn);
        if (auto p = apps::attachObservability(w.shard(s), scn))
            pipes.push_back(std::move(p));
    }
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.warmup = warmup;
    load.measure = measure;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);
    ObsRun out;
    out.digest = w.engine().executionDigest();
    out.completed = r.completed;
    out.pipelines = static_cast<unsigned>(pipes.size());
    if (!pipes.empty()) {
        out.json = obs::toTimeSeriesJson(pipes.front()->store());
        out.csv = obs::toTimeSeriesCsv(pipes.front()->store());
        out.intervals = pipes.front()->store().intervalsSampled();
    }
    return out;
}

TEST(ObsIntegrationTest, DisabledTelemetryKeepsThePinnedDigest)
{
    // The exact run `uqsim_run --app social-network --shards 1`
    // performs, with no obs/slo configuration: attachObservability
    // must return null and the digest must stay at the pinned value.
    const apps::Scenario scn;
    const ObsRun r = runScenario(scn, secToTicks(scn.warmupSec),
                                 secToTicks(scn.durationSec));
    EXPECT_EQ(r.pipelines, 0u);
    EXPECT_EQ(r.digest, 0x3e4c3130724e0248ull);
    EXPECT_EQ(r.completed, 3039u);
}

TEST(ObsIntegrationTest, EnabledTelemetryKeepsThePinnedDigestToo)
{
    // The stronger half of the contract: the pipeline runs between
    // events and never schedules, so even *enabled* telemetry leaves
    // the event stream bit-identical to the pinned seed digest.
    apps::Scenario scn;
    scn.obsEnabled = true;
    scn.sloLatency = 5 * kTicksPerMs;
    const ObsRun r = runScenario(scn, secToTicks(scn.warmupSec),
                                 secToTicks(scn.durationSec));
    EXPECT_EQ(r.pipelines, 1u);
    EXPECT_EQ(r.digest, 0x3e4c3130724e0248ull);
    EXPECT_EQ(r.completed, 3039u);
    EXPECT_GT(r.intervals, 0u);
    EXPECT_NE(r.json.find("\"e2e\""), std::string::npos);
}

TEST(ObsIntegrationTest, SeriesAreSeedDeterministicAndThreadInvariant)
{
    apps::Scenario scn;
    scn.obsEnabled = true;
    scn.sloLatency = 5 * kTicksPerMs;
    scn.shards = 2;

    scn.threads = 1;
    const ObsRun a =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    const ObsRun b =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.json, b.json) << "series must be seed-deterministic";
    EXPECT_EQ(a.csv, b.csv);

    scn.threads = 4;
    const ObsRun c =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_EQ(a.digest, c.digest);
    EXPECT_EQ(a.json, c.json)
        << "series must be invariant under the worker-thread count";
    EXPECT_EQ(a.csv, c.csv);
}

// -- Sketch vs exact on a live stream ----------------------------------

/**
 * An ObsTap that records the exact end-to-end completions (with
 * timestamps) and forwards every signal to the real pipeline, so the
 * sketch-backed series and the exact stream describe the same run.
 */
class ForwardTap : public service::ObsTap
{
  public:
    ForwardTap(service::App &app, obs::Pipeline &inner)
        : app_(app), inner_(inner)
    {
        app.setObsTap(this); // after inner.start(): override the tap
    }

    void
    onTierLatency(const service::Microservice &svc,
                  Tick latency) override
    {
        inner_.onTierLatency(svc, latency);
    }

    void
    onEndToEnd(Tick latency, bool ok) override
    {
        if (ok)
            e2e.emplace_back(app_.ctx().now(), latency);
        inner_.onEndToEnd(latency, ok);
    }

    void
    onAdmissionReject(const service::Microservice &svc) override
    {
        inner_.onAdmissionReject(svc);
    }

    std::vector<std::pair<Tick, Tick>> e2e; ///< (completion, latency)

  private:
    service::App &app_;
    obs::Pipeline &inner_;
};

/** Exact order statistic with the sketch's rank convention. */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> values, double q)
{
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size()) + 0.5;
    std::uint64_t rank = static_cast<std::uint64_t>(pos);
    rank = std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                          rank, values.size()));
    return values[rank - 1];
}

TEST(ObsIntegrationTest, IntervalPercentilesTrackExactWithinBound)
{
    apps::WorldConfig c;
    c.workerServers = 2;
    apps::World w(c);
    service::App &app = *w.app;

    service::ServiceDef back;
    back.name = "backend";
    back.handler.compute(Dist::lognormalMean(150.0 * 1440.0, 0.5));
    back.threadsPerInstance = 8;
    app.addService(std::move(back)).addInstance(w.worker(1));
    service::ServiceDef front;
    front.name = "frontend";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(Dist::lognormalMean(60.0 * 1440.0, 0.4))
        .call("backend");
    front.threadsPerInstance = 8;
    app.addService(std::move(front)).addInstance(w.worker(0));
    app.setEntry("frontend");
    app.addQueryType({"read", 1, 1.0, 0, {}});
    app.validate();

    obs::PipelineConfig pc;
    pc.interval = 100 * kTicksPerMs;
    obs::Pipeline pipe(app, pc);
    pipe.start();
    ForwardTap tap(app, pipe); // installed over the pipeline's tap

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(50), 1);
    gen.setQps(800.0);
    gen.start();
    w.sim.runUntil(2 * kTicksPerSec);

    const obs::Series *e2e = pipe.store().find(obs::kEndToEndSeries);
    ASSERT_NE(e2e, nullptr);
    const double bound = obs::QuantileSketch().relativeErrorBound();
    ASSERT_LE(bound, 0.02);

    unsigned compared = 0;
    for (std::size_t i = 0; i < e2e->size(); ++i) {
        const obs::IntervalSample &row = e2e->at(i);
        // The exact completions of this interval: a boundary B closes
        // everything that finished in [B - interval, B).
        std::vector<std::uint64_t> exact;
        for (const auto &done : tap.e2e)
            if (done.first >= row.start && done.first < row.end)
                exact.push_back(done.second);
        ASSERT_EQ(exact.size(), row.count)
            << "interval [" << row.start << ", " << row.end << ")";
        if (exact.empty())
            continue;
        ++compared;
        for (const auto &probe :
             {std::make_pair(0.50, row.p50),
              std::make_pair(0.95, row.p95),
              std::make_pair(0.99, row.p99)}) {
            const std::uint64_t ex = exactQuantile(exact, probe.first);
            EXPECT_GE(probe.second, ex) << "q=" << probe.first;
            EXPECT_LE(static_cast<double>(probe.second),
                      static_cast<double>(ex) * (1.0 + bound) + 1.0)
                << "q=" << probe.first << " interval " << i;
        }
    }
    EXPECT_GE(compared, 15u) << "too few populated intervals";
}

// -- Perfetto counter tracks -------------------------------------------

TEST(ObsIntegrationTest, PerfettoExportGainsCounterTracks)
{
    apps::WorldConfig c;
    c.workerServers = 2;
    c.appConfig.tracing = true;
    apps::World w(c);
    service::App &app = *w.app;
    service::ServiceDef back;
    back.name = "backend";
    back.handler.compute(Dist::constant(100.0 * 1440.0));
    back.threadsPerInstance = 8;
    app.addService(std::move(back)).addInstance(w.worker(1));
    service::ServiceDef front;
    front.name = "frontend";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(Dist::constant(50.0 * 1440.0))
        .call("backend");
    front.threadsPerInstance = 8;
    app.addService(std::move(front)).addInstance(w.worker(0));
    app.setEntry("frontend");
    app.addQueryType({"read", 1, 1.0, 0, {}});
    app.validate();

    obs::PipelineConfig pc;
    pc.interval = 100 * kTicksPerMs;
    obs::Pipeline pipe(app, pc);
    pipe.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(50), 1);
    gen.setQps(300.0);
    gen.start();
    w.sim.runUntil(kTicksPerSec);

    const std::string frag = obs::perfettoCounterEvents(pipe.store());
    ASSERT_FALSE(frag.empty());
    EXPECT_NE(frag.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(frag.find("latency_ns"), std::string::npos);
    EXPECT_EQ(frag.find("[,"), std::string::npos);
    EXPECT_NE(frag.back(), ','); // a splice-ready fragment

    // Spliced into the span export, the whole document stays valid
    // JSON with the counter tracks on the observability process.
    std::ostringstream os;
    trace::exportPerfettoJson(app.traceStore(), os, 0, frag);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("observability"), std::string::npos);
    std::string error;
    json::Value parsed;
    ASSERT_TRUE(json::parse(doc, parsed, error)) << error;
}

// -- Scenario round-trip (the `slo:` block) ----------------------------

TEST(ObsIntegrationTest, ScenarioSloBlockRoundTripsByteStable)
{
    apps::Scenario s;
    s.obsEnabled = true;
    s.obsInterval = 250 * kTicksPerMs;
    s.obsRing = 512;
    s.sloLatency = 25 * kTicksPerMs;
    s.sloQuantile = 0.95;
    s.sloWindow = 5;
    s.sloErrorRate = 0.05;
    s.sloTier = "nginx-lb";

    const std::string text = apps::scenarioToJson(s);
    apps::Scenario parsed;
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson(text, parsed, error)) << error;
    EXPECT_TRUE(parsed.obsEnabled);
    EXPECT_EQ(parsed.obsInterval, 250 * kTicksPerMs);
    EXPECT_EQ(parsed.obsRing, 512u);
    EXPECT_EQ(parsed.sloLatency, 25 * kTicksPerMs);
    EXPECT_DOUBLE_EQ(parsed.sloQuantile, 0.95);
    EXPECT_EQ(parsed.sloWindow, 5u);
    EXPECT_DOUBLE_EQ(parsed.sloErrorRate, 0.05);
    EXPECT_EQ(parsed.sloTier, "nginx-lb");
    EXPECT_EQ(apps::scenarioToJson(parsed), text)
        << "dump -> parse -> dump must be byte-stable";

    // The derived pipeline config mirrors the scenario fields.
    const obs::PipelineConfig pc = apps::obsConfigFor(parsed);
    EXPECT_EQ(pc.interval, 250 * kTicksPerMs);
    EXPECT_EQ(pc.ring, 512u);
    EXPECT_EQ(pc.slo.latency, 25 * kTicksPerMs);
    EXPECT_EQ(pc.slo.tier, "nginx-lb");

    // An unknown key inside the block is rejected, like any other.
    apps::Scenario out;
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"slo\": {\"latency\": \"10ms\", \"typo\": 1}}", out, error));
    EXPECT_NE(error.find("slo.typo"), std::string::npos);
}

// -- Monitor in-flight gauge -------------------------------------------

TEST(ObsIntegrationTest, MonitorPublishesInFlightGauge)
{
    apps::WorldConfig c;
    c.workerServers = 2;
    apps::World w(c);
    service::App &app = *w.app;
    service::ServiceDef back;
    back.name = "backend";
    // Slow enough that requests are reliably in flight at boundaries.
    back.handler.compute(Dist::constant(4000.0 * 1440.0));
    back.threadsPerInstance = 8;
    app.addService(std::move(back)).addInstance(w.worker(1));
    service::ServiceDef front;
    front.name = "frontend";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(Dist::constant(50.0 * 1440.0))
        .call("backend");
    front.threadsPerInstance = 16;
    app.addService(std::move(front)).addInstance(w.worker(0));
    app.setEntry("frontend");
    app.addQueryType({"read", 1, 1.0, 0, {}});
    app.validate();

    manager::Monitor mon(app, 100 * kTicksPerMs);
    mon.start();
    workload::OpenLoopGenerator gen(
        app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(50), 1);
    gen.setQps(1000.0);
    gen.start();
    w.sim.runUntil(kTicksPerSec);

    EXPECT_GT(mon.latest("backend").inFlight, 0.0);
    EXPECT_GT(
        app.metrics().gauge("monitor.in_flight.backend").value(), 0.0);
    EXPECT_GE(
        app.metrics().gauge("monitor.in_flight.frontend").value(), 0.0);
}

} // namespace
} // namespace uqsim
