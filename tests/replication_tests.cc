/**
 * @file
 * Tests of the replicated keyed-data tier: the ReplicaSet state
 * machine in isolation (quorum write delays, elections, partitions,
 * read preferences, log-replay trims) and the replication layer inside
 * full application models (the opt-in digest pin, seed determinism and
 * thread-count invariance of replicated runs, warm failover beating
 * the PR-5 cold restart, typed QuorumLost rejects instead of hangs,
 * and 2PC transaction aborts that stay retryable).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "manager/monitor.hh"
#include "replica/replication.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

using replica::ReadPreference;
using replica::ReplicaSet;
using replica::ReplicationConfig;
using replica::RouteDecision;
using replica::Verdict;

ReplicationConfig
baseConfig(unsigned factor = 3, unsigned quorum = 0)
{
    ReplicationConfig cfg;
    cfg.factor = factor;
    cfg.writeQuorum = quorum;
    cfg.applyLag = 1 * kTicksPerMs;
    cfg.electionTimeout = 50 * kTicksPerMs;
    cfg.catchUp = 100 * kTicksPerMs;
    return cfg;
}

// -- ReplicaSet state machine -------------------------------------------

TEST(ReplicaSetTest, SuccessorGroupsAndQuorumClamp)
{
    ReplicaSet rs(baseConfig(3), 5);
    EXPECT_EQ(rs.groups(), 5u);
    EXPECT_EQ(rs.replicas(), 3u);
    EXPECT_EQ(rs.quorum(), 2u); // majority of 3
    EXPECT_EQ(rs.memberAt(0, 0), 0u);
    EXPECT_EQ(rs.memberAt(0, 2), 2u);
    EXPECT_EQ(rs.memberAt(4, 1), 0u); // wraps the ring

    // Fewer instances than the factor: N and the quorum clamp down.
    ReplicaSet small(baseConfig(3), 2);
    EXPECT_EQ(small.replicas(), 2u);
    EXPECT_EQ(small.quorum(), 2u);
}

TEST(ReplicaSetTest, QuorumWriteDelayIsTheWthFastestAck)
{
    // Follower p lags by p * applyLag, so the (W-1)-th smallest
    // eligible-follower lag is the deterministic quorum delay.
    const Tick lag = baseConfig().applyLag;
    {
        ReplicaSet rs(baseConfig(3, 2), 3);
        const RouteDecision d = rs.route(0, 7, true, 0);
        EXPECT_EQ(d.verdict, Verdict::Ok);
        EXPECT_EQ(d.instance, 0u);
        EXPECT_EQ(d.quorumDelay, lag); // leader + follower 1
    }
    {
        ReplicaSet rs(baseConfig(3, 3), 3);
        const RouteDecision d = rs.route(0, 7, true, 0);
        EXPECT_EQ(d.quorumDelay, 2 * lag); // must wait for follower 2
    }
    {
        ReplicaSet rs(baseConfig(3, 1), 3);
        const RouteDecision d = rs.route(0, 7, true, 0);
        EXPECT_EQ(d.quorumDelay, 0u); // leader-only ack
    }
}

TEST(ReplicaSetTest, DownFollowerRaisesTheQuorumDelay)
{
    // With the fast follower down, the ack set falls back to the
    // slower one; a restart only helps after catch-up completes.
    const ReplicationConfig cfg = baseConfig(3, 2);
    ReplicaSet rs(cfg, 3);
    rs.onInstanceDown(1, 0);
    EXPECT_EQ(rs.route(0, 7, true, 0).quorumDelay, 2 * cfg.applyLag);

    const Tick up = 10 * kTicksPerMs;
    rs.onInstanceUp(1, up);
    EXPECT_EQ(rs.route(0, 7, true, up + 1).quorumDelay,
              2 * cfg.applyLag)
        << "a replaying member must not count toward the quorum";
    const Tick caught = up + cfg.catchUp;
    EXPECT_EQ(rs.route(0, 7, true, caught).quorumDelay, cfg.applyLag);
}

TEST(ReplicaSetTest, LeaderCrashPromotesMostCaughtUpFollower)
{
    const ReplicationConfig cfg = baseConfig(3, 2);
    ReplicaSet rs(cfg, 3);
    const Tick t0 = 10 * kTicksPerMs;
    rs.onInstanceDown(0, t0);

    // Mid-election: typed reject, never a hang.
    EXPECT_EQ(rs.route(0, 7, true, t0 + 1).verdict,
              Verdict::QuorumLost);
    EXPECT_EQ(rs.leaderOf(0, t0 + 1), -1);

    // The election completes lazily at the timeout; position 1 is the
    // most caught-up survivor and must win.
    const Tick te = t0 + cfg.electionTimeout;
    EXPECT_EQ(rs.leaderOf(0, te), 1);
    EXPECT_EQ(rs.termOf(0), 2u);
    ASSERT_EQ(rs.history(0).size(), 2u);
    EXPECT_EQ(rs.history(0)[0].leader, 0u);
    EXPECT_EQ(rs.history(0)[1].leader, 1u);

    // Log-replay trim: the promoted member trails the deposed leader
    // by one hop of apply lag, so exactly that tail leaves the store.
    const replica::Maintenance m = rs.poll(0, te);
    EXPECT_TRUE(m.trim);
    EXPECT_EQ(m.trimCutoff, t0 - cfg.applyLag);
    EXPECT_FALSE(rs.poll(0, te).trim) << "maintenance must be one-shot";
    EXPECT_GE(rs.counts().failovers, 1u);
    EXPECT_GE(rs.counts().trims, 1u);
}

TEST(ReplicaSetTest, PartitionNeverElectsTwoLeadersPerTerm)
{
    const ReplicationConfig cfg = baseConfig(3, 2);
    ReplicaSet rs(cfg, 3);

    // Cut instance 0 (the leader of group 0) away from {1, 2}.
    rs.setSevered([](unsigned a, unsigned b) {
        return (a == 0) != (b == 0);
    });
    const Tick t0 = 10 * kTicksPerMs;
    rs.onTopologyChange(t0);
    EXPECT_EQ(rs.leaderOf(0, t0), -1) << "cut-off leader must step down";

    // Only the majority side can crown a successor.
    const Tick te = t0 + cfg.electionTimeout;
    EXPECT_EQ(rs.leaderOf(0, te), 1);
    const auto &hist = rs.history(0);
    for (std::size_t i = 1; i < hist.size(); ++i)
        EXPECT_GT(hist[i].term, hist[i - 1].term)
            << "terms must be strictly increasing";

    // A full mesh cut leaves every component below quorum: no leader,
    // typed rejects, and the heal ends the outage.
    rs.setSevered([](unsigned a, unsigned b) { return a != b; });
    rs.onTopologyChange(te);
    const Tick t1 = te + cfg.electionTimeout;
    EXPECT_EQ(rs.leaderOf(0, t1), -1);
    EXPECT_EQ(rs.route(0, 7, true, t1).verdict, Verdict::QuorumLost);
    rs.setSevered(nullptr);
    EXPECT_NE(rs.leaderOf(0, t1 + 1), -1);
}

TEST(ReplicaSetTest, NearestReadsAreDeterministicAndStaleOffLeader)
{
    ReplicationConfig cfg = baseConfig(3, 2);
    cfg.readPreference = ReadPreference::Nearest;
    ReplicaSet rs(cfg, 3);

    unsigned stale = 0;
    for (std::uint64_t key = 0; key < 64; ++key) {
        const RouteDecision a = rs.route(0, key, false, 0);
        const RouteDecision b = rs.route(0, key, false, 0);
        EXPECT_EQ(a.instance, b.instance) << "pick must be sticky";
        EXPECT_EQ(a.verdict, Verdict::Ok);
        EXPECT_EQ(a.stale, a.instance != 0u);
        stale += a.stale;
    }
    EXPECT_GT(stale, 0u) << "nearest never left the leader";
    EXPECT_LT(stale, 64u) << "nearest never picked the leader";
    EXPECT_EQ(rs.counts().staleReads, 2u * stale);
}

TEST(ReplicaSetTest, ReadYourWritesRedirectsUntilTheLagClears)
{
    ReplicationConfig cfg = baseConfig(3, 2);
    cfg.readPreference = ReadPreference::ReadYourWrites;
    ReplicaSet rs(cfg, 3);

    const Tick tw = 10 * kTicksPerMs;
    rs.recordWrite(0, tw);

    unsigned redirected = 0;
    for (std::uint64_t key = 0; key < 64; ++key) {
        const RouteDecision d = rs.route(0, key, false, tw + 1);
        if (d.redirected) {
            EXPECT_EQ(d.instance, 0u) << "redirect must hit the leader";
            ++redirected;
        }
    }
    EXPECT_GT(redirected, 0u);

    // Once the slowest follower has applied the write, freshness is
    // free everywhere and no read needs the leader.
    const Tick clear = tw + cfg.applyLag * 2;
    for (std::uint64_t key = 0; key < 64; ++key)
        EXPECT_FALSE(rs.route(0, key, false, clear).redirected);
}

TEST(ReplicaSetTest, ReadYourWritesRejectsFreshReadsMidElection)
{
    ReplicationConfig cfg = baseConfig(3, 2);
    cfg.readPreference = ReadPreference::ReadYourWrites;
    ReplicaSet rs(cfg, 3);

    const Tick tw = 10 * kTicksPerMs;
    rs.recordWrite(0, tw);
    rs.onInstanceDown(0, tw + 1);

    // A recent write with no leader: freshness is unsatisfiable, so
    // the verdict is a typed StaleRead (retryable), not a hang.
    const RouteDecision d = rs.route(0, 7, false, tw + 2);
    EXPECT_EQ(d.verdict, Verdict::StaleRead);
    EXPECT_GE(rs.counts().staleRejects, 1u);
}

TEST(ReplicaSetTest, WholeGroupDeathLosesTheStore)
{
    // factor 2 over 2 instances with W=1 so a lone survivor can lead.
    ReplicaSet rs(baseConfig(2, 1), 2);
    rs.onInstanceDown(0, 0);
    rs.onInstanceDown(1, 0);
    EXPECT_TRUE(rs.dead(0));
    EXPECT_TRUE(rs.dead(1));
    EXPECT_EQ(rs.route(0, 7, true, 1).verdict, Verdict::Unreachable);
    EXPECT_EQ(rs.counts().storeLosses, 2u);

    // First member back revives the group around an empty store.
    const Tick up = 10 * kTicksPerMs;
    rs.onInstanceUp(0, up);
    EXPECT_FALSE(rs.dead(0));
    const Tick ready = up + rs.config().catchUp +
                       rs.config().electionTimeout;
    EXPECT_EQ(rs.leaderOf(0, ready), 0);
    EXPECT_TRUE(rs.poll(0, ready).clearStore);
}

TEST(ReplicaSetTest, StalenessBoundTracksLagAndElections)
{
    const ReplicationConfig cfg = baseConfig(3, 2);
    ReplicaSet rs(cfg, 3);
    // Healthy: the slowest follower's lag.
    EXPECT_EQ(rs.stalenessBound(0, 0), 2 * cfg.applyLag);
    EXPECT_EQ(rs.maxStalenessBound(0), 2 * cfg.applyLag);

    // Leaderless: the election gap grows with wall time.
    const Tick t0 = 10 * kTicksPerMs;
    rs.onInstanceDown(0, t0);
    EXPECT_EQ(rs.stalenessBound(0, t0 + 5), 5u);
}

TEST(ReplicaSetTest, UncountedResolutionLeavesTheCountsAlone)
{
    ReplicationConfig cfg = baseConfig(3, 2);
    cfg.readPreference = ReadPreference::Nearest;
    ReplicaSet rs(cfg, 3);
    (void)rs.route(0, 1, false, 0, /*count=*/false);
    rs.onInstanceDown(0, 0);
    (void)rs.route(0, 1, true, 1, /*count=*/false);
    EXPECT_EQ(rs.counts().staleReads, 0u);
    EXPECT_EQ(rs.counts().quorumLostWrites, 0u);
}

// -- Full-model integration ---------------------------------------------

struct RunOutcome
{
    std::uint64_t digest = 0;
    std::uint64_t completed = 0;
    std::uint64_t counter(const std::string &name) const
    {
        std::uint64_t v = 0;
        for (const auto &m : perShard)
            v += m.count(name) ? m.at(name) : 0;
        return v;
    }
    std::vector<std::map<std::string, std::uint64_t>> perShard;
};

RunOutcome
runScenario(const apps::Scenario &scn, Tick warmup, Tick measure,
            const std::vector<std::string> &counters)
{
    apps::WorldHandle w(apps::worldConfigFor(scn), scn.shards,
                        scn.threads);
    for (unsigned s = 0; s < scn.shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.warmup = warmup;
    load.measure = measure;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);
    RunOutcome out;
    out.digest = w.engine().executionDigest();
    out.completed = r.completed;
    out.perShard.resize(scn.shards);
    for (unsigned s = 0; s < scn.shards; ++s) {
        MetricsRegistry &m = w.shard(s).app->metrics();
        for (const std::string &name : counters)
            out.perShard[s][name] = m.counter(name).value();
    }
    return out;
}

apps::Scenario
replicatedScenario()
{
    apps::Scenario scn;
    scn.qps = 200.0;
    scn.dataKeys = 20000;
    scn.dataCapacity = 512;
    scn.replicaFactor = 2;
    scn.replicaQuorum = 1; // a lone survivor can still lead
    return scn;
}

TEST(ReplicationIntegrationTest, DisabledKeepsTheLegacyDigest)
{
    // All defaults: replication off. The digest is pinned to the
    // pre-replication value, so any event-stream perturbation by the
    // (disabled) replica path is a loud failure.
    const apps::Scenario scn;
    const RunOutcome r =
        runScenario(scn, secToTicks(scn.warmupSec),
                    secToTicks(scn.durationSec), {});
    EXPECT_EQ(r.digest, 0x3e4c3130724e0248ull);
    EXPECT_EQ(r.completed, 3039u);
}

TEST(ReplicationIntegrationTest, ReplicatedRunsAreSeedDeterministic)
{
    apps::Scenario scn = replicatedScenario();
    const std::vector<std::string> names = {
        "rpc.quorum_lost", "replica.posts-memcached.stale_reads"};
    const RunOutcome a =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec, names);
    const RunOutcome b =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec, names);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.counter("replica.posts-memcached.stale_reads"),
              b.counter("replica.posts-memcached.stale_reads"));

    scn.seed = 43;
    const RunOutcome c =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec, names);
    EXPECT_NE(c.digest, a.digest);
}

TEST(ReplicationIntegrationTest, ReplicatedDigestIsThreadCountInvariant)
{
    apps::Scenario scn = replicatedScenario();
    scn.shards = 2;
    scn.replicaRead = "nearest";

    scn.threads = 1;
    const RunOutcome one =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec, {});
    scn.threads = 4;
    const RunOutcome four =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec, {});
    EXPECT_EQ(one.digest, four.digest);
}

TEST(ReplicationIntegrationTest, ReadPreferencesDriveTheTypedCounters)
{
    // Nearest serves stale reads; read-your-writes redirects the
    // fresh ones to the leader instead.
    apps::Scenario scn = replicatedScenario();
    scn.replicaRead = "nearest";
    scn.replicaApplyLag = 5 * kTicksPerMs;
    const RunOutcome near = runScenario(
        scn, kTicksPerSec / 2, 2 * kTicksPerSec,
        {"replica.posts-memcached.stale_reads",
         "replica.posts-memcached.ryw_redirects"});
    EXPECT_GT(near.counter("replica.posts-memcached.stale_reads"), 0u);
    EXPECT_EQ(near.counter("replica.posts-memcached.ryw_redirects"),
              0u);

    scn.replicaRead = "ryw";
    const RunOutcome ryw = runScenario(
        scn, kTicksPerSec / 2, 2 * kTicksPerSec,
        {"replica.posts-memcached.ryw_redirects"});
    EXPECT_GT(ryw.counter("replica.posts-memcached.ryw_redirects"), 0u);
}

/** One leader-crash run; returns the monitor plus the outcome. */
struct CrashRun
{
    std::map<std::string, std::uint64_t> counters;
    data::CacheStats stats;
    std::vector<std::vector<manager::TierSample>> history;
    std::uint64_t completed = 0;
};

CrashRun
runLeaderCrash(bool replicated, fault::CrashRole role)
{
    apps::Scenario scn;
    scn.qps = 300.0;
    scn.dataKeys = 5000;
    scn.dataCapacity = 2048;
    if (replicated) {
        scn.replicaFactor = 2;
        scn.replicaQuorum = 1;
    }

    apps::WorldHandle w(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(w.shard(0), scn);
    service::App &app = *w.shard(0).app;

    fault::FaultInjector inj(app, scn.seed);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.service = "posts-memcached";
    crash.instance = 0; // group 0 when a role is set
    crash.role = role;
    crash.start = 3 * kTicksPerSec;
    crash.duration = kTicksPerSec;
    inj.add(crash);
    inj.arm();

    manager::Monitor monitor(app, kTicksPerSec / 4);
    monitor.start();
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.measure = 9 * kTicksPerSec;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);
    monitor.stop();

    CrashRun out;
    out.completed = r.completed;
    out.stats = app.service("posts-memcached").dataStats();
    out.history = monitor.history();
    for (const char *name :
         {"replica.posts-memcached.failovers",
          "replica.posts-memcached.log_trims",
          "replica.posts-memcached.elections",
          "replica.posts-memcached.quorum_lost", "rpc.quorum_lost"}) {
        if (replicated)
            out.counters[name] = app.metrics().counter(name).value();
    }
    return out;
}

double
phaseHitRatio(const CrashRun &run, Tick from, Tick to)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const auto &round : run.history)
        for (const manager::TierSample &s : round) {
            if (s.service != "posts-memcached" || s.time <= from ||
                s.time > to || s.cacheLookups == 0)
                continue;
            sum += s.hitRatio;
            ++n;
        }
    EXPECT_GT(n, 0u) << "no samples in [" << from << ", " << to << "]";
    return n ? sum / n : 0.0;
}

TEST(ReplicationIntegrationTest, WarmFailoverBeatsTheColdRestart)
{
    // The same leader crash, replicated vs not. The unreplicated tier
    // loses shard 0 outright (PR-5 behaviour: unreachable, then a cold
    // restart); the replicated tier promotes the warm follower after
    // one election timeout, so its outage-window hit ratio stays near
    // the healthy level and no cold restart ever happens.
    const CrashRun cold =
        runLeaderCrash(false, fault::CrashRole::None);
    const CrashRun warm =
        runLeaderCrash(true, fault::CrashRole::Leader);

    EXPECT_GE(cold.stats.coldRestarts, 1u);
    EXPECT_EQ(warm.stats.coldRestarts, 0u)
        << "failover must inherit the store, not clear it";
    EXPECT_GE(warm.counters.at("replica.posts-memcached.failovers"),
              1u);
    EXPECT_GE(warm.counters.at("replica.posts-memcached.log_trims"),
              1u);

    const Tick lo = 3 * kTicksPerSec + kTicksPerSec / 4;
    const Tick hi = 4 * kTicksPerSec;
    const double cold_outage = phaseHitRatio(cold, lo, hi);
    const double warm_outage = phaseHitRatio(warm, lo, hi);
    EXPECT_GT(warm_outage, cold_outage + 0.1)
        << "replication bought no availability during the outage";
}

TEST(ReplicationIntegrationTest, QuorumLossRejectsTypedAndNeverHangs)
{
    // factor 2 with the default majority quorum (2): a leader crash
    // leaves one survivor, below quorum, so group 0 serves typed
    // QuorumLost rejects until the restart — and the run completing at
    // all is the no-hang proof. Retries ride the normal budget.
    apps::Scenario scn = replicatedScenario();
    scn.replicaQuorum = 0; // majority of 2 = 2
    scn.retries = 2;
    scn.replicaElectionTimeout = 200 * kTicksPerMs;

    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.service = "posts-memcached";
    crash.instance = 0;
    crash.role = fault::CrashRole::Leader;
    crash.start = 1 * kTicksPerSec;
    crash.duration = kTicksPerSec;

    apps::WorldHandle w(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(w.shard(0), scn);
    service::App &app = *w.shard(0).app;
    fault::FaultInjector inj(app, scn.seed);
    inj.add(crash);
    inj.arm();

    apps::LoadSpec load;
    load.qps = scn.qps;
    load.measure = 4 * kTicksPerSec;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);

    EXPECT_GT(r.completed, 0u);
    EXPECT_GT(app.metrics().counter("rpc.quorum_lost").value(), 0u);
    EXPECT_GT(app.metrics()
                  .counter("replica.posts-memcached.quorum_lost")
                  .value(),
              0u);
    // Each rejected access may be re-resolved by retries, so the
    // rpc-level count dominates the per-access tier count.
    EXPECT_GE(app.metrics().counter("rpc.quorum_lost").value(),
              app.metrics()
                  .counter("replica.posts-memcached.quorum_lost")
                  .value());
}

TEST(ReplicationIntegrationTest, TxnCommitsAndRetryableAborts)
{
    // 2PC across groups: healthy traffic commits; a leader crash makes
    // prepares fail on group 0 so transactions abort with the typed
    // TxnAborted status (retryable), and the run still completes.
    apps::Scenario scn = replicatedScenario();
    scn.txnKeys = 2;
    scn.retries = 1;
    scn.replicaElectionTimeout = 200 * kTicksPerMs;

    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.service = "posts-memcached";
    crash.instance = 0;
    crash.role = fault::CrashRole::Leader;
    crash.start = 1 * kTicksPerSec;
    crash.duration = kTicksPerSec;

    apps::WorldHandle w(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(w.shard(0), scn);
    service::App &app = *w.shard(0).app;
    fault::FaultInjector inj(app, scn.seed);
    inj.add(crash);
    inj.arm();

    apps::LoadSpec load;
    load.qps = scn.qps;
    load.measure = 4 * kTicksPerSec;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);

    EXPECT_GT(r.completed, 0u);
    const std::uint64_t started =
        app.metrics().counter("rpc.txn_started").value();
    const std::uint64_t commits =
        app.metrics().counter("rpc.txn_commits").value();
    const std::uint64_t aborts =
        app.metrics().counter("rpc.txn_aborts").value();
    EXPECT_GT(started, 0u);
    EXPECT_GT(commits, 0u);
    EXPECT_GT(aborts, 0u);
    EXPECT_LE(commits + aborts, started);
}

} // namespace
} // namespace uqsim
