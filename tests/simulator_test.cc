/**
 * @file
 * Unit tests for the simulation driver, including the regression test
 * for clock visibility inside callbacks.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "core/types.hh"

namespace uqsim {
namespace {

TEST(SimulatorTest, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
}

TEST(SimulatorTest, CallbackSeesItsFiringTime)
{
    // Regression: callbacks must observe now() == their firing time,
    // not the previous event's time.
    Simulator sim;
    Tick seen = 0;
    sim.schedule(100, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, NestedSchedulingIsRelativeToFiringTime)
{
    Simulator sim;
    Tick inner = 0;
    sim.schedule(100, [&] {
        sim.schedule(50, [&] { inner = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(inner, 150u);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline)
{
    Simulator sim;
    sim.schedule(10, [] {});
    sim.runUntil(500);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(SimulatorTest, RunUntilLeavesLaterEventsQueued)
{
    Simulator sim;
    bool early = false, late = false;
    sim.schedule(10, [&] { early = true; });
    sim.schedule(1000, [&] { late = true; });
    sim.runUntil(100);
    EXPECT_TRUE(early);
    EXPECT_FALSE(late);
    EXPECT_EQ(sim.queue().size(), 1u);
    sim.run();
    EXPECT_TRUE(late);
}

TEST(SimulatorTest, RunForIsRelative)
{
    Simulator sim;
    sim.runFor(100);
    sim.runFor(100);
    EXPECT_EQ(sim.now(), 200u);
}

TEST(SimulatorTest, EventAtDeadlineRuns)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(100, [&] { fired = true; });
    sim.runUntil(100);
    EXPECT_TRUE(fired);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    Tick seen = 0;
    sim.scheduleAt(77, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 77u);
}

TEST(SimulatorTest, EventsExecutedCounts)
{
    Simulator sim;
    for (int i = 0; i < 5; ++i)
        sim.schedule(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 5u);
}

TEST(SimulatorDeathTest, ScheduleAtPastPanics)
{
    Simulator sim;
    sim.schedule(10, [] {});
    sim.runUntil(100);
    EXPECT_DEATH(sim.scheduleAt(50, [] {}), "in the past");
}

TEST(SimulatorDeathTest, RunUntilPastPanics)
{
    Simulator sim;
    sim.runUntil(100);
    EXPECT_DEATH(sim.runUntil(50), "in the past");
}

} // namespace
} // namespace uqsim
