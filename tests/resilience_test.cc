/**
 * @file
 * Unit tests of the client-side resilience primitives (circuit
 * breaker, retry budget, policy activation) and of the declarative
 * fault-schedule parsers (flag syntax, durations, JSON files).
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "rpc/resilience.hh"

namespace uqsim {
namespace {

using rpc::BreakerPolicy;
using rpc::CircuitBreaker;
using rpc::ResiliencePolicy;
using rpc::RetryBudget;
using rpc::RetryPolicy;

BreakerPolicy
smallBreaker()
{
    BreakerPolicy p;
    p.enabled = true;
    p.window = 1000;
    p.buckets = 10;
    p.failureThreshold = 0.5;
    p.minVolume = 4;
    p.cooldown = 500;
    p.halfOpenProbes = 1;
    return p;
}

TEST(ResiliencePolicyTest, InactiveByDefault)
{
    ResiliencePolicy pol;
    EXPECT_FALSE(pol.active());
    EXPECT_FALSE(pol.retry.enabled());
    EXPECT_FALSE(pol.breaker.enabled);
}

TEST(ResiliencePolicyTest, AnyKnobActivates)
{
    ResiliencePolicy pol;
    pol.timeout = 1;
    EXPECT_TRUE(pol.active());

    ResiliencePolicy retry;
    retry.retry.maxAttempts = 2;
    EXPECT_TRUE(retry.active());

    ResiliencePolicy shed;
    shed.shedQueueLength = 10;
    EXPECT_TRUE(shed.active());
}

TEST(CircuitBreakerTest, StaysClosedBelowMinVolume)
{
    CircuitBreaker br(smallBreaker());
    // 3 failures < minVolume 4: not enough evidence to trip.
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(br.allow(100));
        br.record(100, false);
    }
    EXPECT_TRUE(br.allow(100));
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
}

TEST(CircuitBreakerTest, TripsOnFailureRate)
{
    CircuitBreaker br(smallBreaker());
    for (int i = 0; i < 4; ++i)
        br.record(100, false);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_FALSE(br.allow(101));
    EXPECT_EQ(br.timesOpened(), 1u);
}

TEST(CircuitBreakerTest, MixedOutcomesRespectThreshold)
{
    CircuitBreaker br(smallBreaker());
    // 3 failures / 8 total = 37.5% < 50%: stays closed.
    for (int i = 0; i < 5; ++i)
        br.record(100, true);
    for (int i = 0; i < 3; ++i)
        br.record(100, false);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    // Two more failures push it to 50%.
    br.record(100, false);
    br.record(100, false);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
}

TEST(CircuitBreakerTest, HalfOpenProbeSuccessCloses)
{
    CircuitBreaker br(smallBreaker());
    for (int i = 0; i < 4; ++i)
        br.record(100, false);
    ASSERT_EQ(br.state(), CircuitBreaker::State::Open);

    // Still open before the cooldown expires.
    EXPECT_FALSE(br.allow(300));
    // After the cooldown one probe goes through...
    EXPECT_TRUE(br.allow(700));
    EXPECT_EQ(br.state(), CircuitBreaker::State::HalfOpen);
    // ...but only one (halfOpenProbes = 1).
    EXPECT_FALSE(br.allow(700));
    br.record(700, true);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    EXPECT_TRUE(br.allow(701));
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopens)
{
    CircuitBreaker br(smallBreaker());
    for (int i = 0; i < 4; ++i)
        br.record(100, false);
    ASSERT_TRUE(br.allow(700));
    br.record(700, false);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(br.timesOpened(), 2u);
    // The cooldown restarts from the reopen.
    EXPECT_FALSE(br.allow(1100));
    EXPECT_TRUE(br.allow(1300));
}

TEST(CircuitBreakerTest, WindowForgetsOldFailures)
{
    CircuitBreaker br(smallBreaker());
    for (int i = 0; i < 3; ++i)
        br.record(100, false);
    // More than a full window later the old failures rotated out; the
    // one new failure is below minVolume.
    br.record(2500, false);
    EXPECT_EQ(br.state(), CircuitBreaker::State::Closed);
    EXPECT_LT(br.failureRate(2500), 1.1);
}

TEST(RetryBudgetTest, StartsAtCapAndStopsEarningAtRatioZero)
{
    // The bucket starts full (burst allowance) but a zero earn rate
    // never refills it. (The RPC layer skips the budget entirely when
    // budgetRatio is 0 — this covers the primitive's own contract.)
    RetryBudget budget(0.0, 2.0);
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_TRUE(budget.tryWithdraw());
    budget.onAttempt();
    EXPECT_FALSE(budget.tryWithdraw());
}

TEST(RetryBudgetTest, EarnsPerAttemptAndSpends)
{
    // 0.25 is exact in binary, so four deposits make exactly one token.
    RetryBudget budget(0.25, 3.0);
    // Starts at cap: 3 retries available...
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_TRUE(budget.tryWithdraw());
    // ...then dry.
    EXPECT_FALSE(budget.tryWithdraw());
    // Four first attempts earn one more retry at ratio 0.25.
    for (int i = 0; i < 4; ++i)
        budget.onAttempt();
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_FALSE(budget.tryWithdraw());
}

TEST(RetryBudgetTest, CapBoundsSavings)
{
    RetryBudget budget(1.0, 2.0);
    for (int i = 0; i < 100; ++i)
        budget.onAttempt();
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_TRUE(budget.tryWithdraw());
    EXPECT_FALSE(budget.tryWithdraw());
}

// ---- Fault-schedule parsing -------------------------------------------

TEST(FaultParseTest, Durations)
{
    Tick t = 0;
    EXPECT_TRUE(fault::parseDuration("250ms", t));
    EXPECT_EQ(t, 250 * kTicksPerMs);
    EXPECT_TRUE(fault::parseDuration("2s", t));
    EXPECT_EQ(t, 2 * kTicksPerSec);
    EXPECT_TRUE(fault::parseDuration("1500us", t));
    EXPECT_EQ(t, 1500 * kTicksPerUs);
    EXPECT_TRUE(fault::parseDuration("800ns", t));
    EXPECT_EQ(t, 800u);
    EXPECT_TRUE(fault::parseDuration("42", t)); // bare = ms
    EXPECT_EQ(t, 42 * kTicksPerMs);
    EXPECT_TRUE(fault::parseDuration("1.5s", t));
    EXPECT_EQ(t, kTicksPerSec + kTicksPerSec / 2);

    EXPECT_FALSE(fault::parseDuration("", t));
    EXPECT_FALSE(fault::parseDuration("abc", t));
    EXPECT_FALSE(fault::parseDuration("10parsecs", t));
    EXPECT_FALSE(fault::parseDuration("ms", t));
}

TEST(FaultParseTest, CrashFlag)
{
    fault::FaultSpec spec;
    std::string error;
    ASSERT_TRUE(fault::parseFaultFlag(
        "crash@t=2s,dur=1s,service=backend,instance=3", spec, error))
        << error;
    EXPECT_EQ(spec.kind, fault::FaultKind::Crash);
    EXPECT_EQ(spec.start, 2 * kTicksPerSec);
    EXPECT_EQ(spec.duration, kTicksPerSec);
    EXPECT_EQ(spec.service, "backend");
    EXPECT_EQ(spec.instance, 3u);
    EXPECT_EQ(spec.end(), 3 * kTicksPerSec);
}

TEST(FaultParseTest, ErrorRateAndSlowAndPartitionFlags)
{
    fault::FaultSpec spec;
    std::string error;
    ASSERT_TRUE(fault::parseFaultFlag(
        "errors@t=1s,dur=2s,service=db,rate=0.8", spec, error));
    EXPECT_EQ(spec.kind, fault::FaultKind::ErrorRate);
    EXPECT_DOUBLE_EQ(spec.rate, 0.8);

    ASSERT_TRUE(fault::parseFaultFlag(
        "slow@t=500ms,dur=2s,server=4,factor=12.5", spec, error));
    EXPECT_EQ(spec.kind, fault::FaultKind::Slowdown);
    EXPECT_EQ(spec.server, 4u);
    EXPECT_DOUBLE_EQ(spec.factor, 12.5);

    ASSERT_TRUE(fault::parseFaultFlag(
        "partition@t=3s,dur=1s,a=0-1,b=2-4,loss=0.9", spec, error));
    EXPECT_EQ(spec.kind, fault::FaultKind::Partition);
    EXPECT_EQ(spec.groupA.first, 0u);
    EXPECT_EQ(spec.groupA.last, 1u);
    EXPECT_EQ(spec.groupB.first, 2u);
    EXPECT_EQ(spec.groupB.last, 4u);
    EXPECT_DOUBLE_EQ(spec.loss, 0.9);
    EXPECT_TRUE(spec.groupA.contains(1));
    EXPECT_FALSE(spec.groupA.contains(2));
}

TEST(FaultParseTest, RejectsMalformedFlags)
{
    fault::FaultSpec spec;
    std::string error;
    EXPECT_FALSE(fault::parseFaultFlag("nonsense", spec, error));
    EXPECT_FALSE(fault::parseFaultFlag("meteor@t=1s", spec, error));
    EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
    EXPECT_FALSE(fault::parseFaultFlag("crash@t=1s", spec, error));
    EXPECT_NE(error.find("service"), std::string::npos);
    EXPECT_FALSE(
        fault::parseFaultFlag("crash@t=1s,service=x,bogus=1", spec, error));
    EXPECT_NE(error.find("unknown fault key"), std::string::npos);
    EXPECT_FALSE(fault::parseFaultFlag(
        "errors@t=1s,dur=1s,service=x,rate=1.5", spec, error));
    EXPECT_FALSE(fault::parseFaultFlag(
        "errors@t=1s,service=x,rate=0.5", spec, error)); // missing dur
    EXPECT_FALSE(fault::parseFaultFlag(
        "slow@t=1s,dur=1s,server=0,factor=0.5", spec, error));
    EXPECT_FALSE(fault::parseFaultFlag("crash@t=oops,service=x", spec,
                                       error));
}

TEST(FaultParseTest, JsonSchedule)
{
    const std::string json = R"({
      "faults": [
        {"kind": "crash", "t": "2s", "dur": "1s",
         "service": "backend", "instance": 1},
        {"kind": "errors", "t": 1000, "dur": "2s",
         "service": "db", "rate": 0.5},
        {"kind": "partition", "t": "3s", "dur": "1s",
         "a": "0-1", "b": "2-4", "loss": 1}
      ]
    })";
    std::vector<fault::FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(fault::parseFaultFile(json, specs, error)) << error;
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].kind, fault::FaultKind::Crash);
    EXPECT_EQ(specs[0].instance, 1u);
    EXPECT_EQ(specs[1].start, kTicksPerSec); // bare number = ms
    EXPECT_DOUBLE_EQ(specs[1].rate, 0.5);
    EXPECT_EQ(specs[2].groupB.last, 4u);
}

TEST(FaultParseTest, JsonTopLevelArrayAlsoAccepted)
{
    std::vector<fault::FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(fault::parseFaultFile(
        R"([{"kind": "slow", "t": "1s", "dur": "1s", "server": 2}])",
        specs, error))
        << error;
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].server, 2u);
}

TEST(FaultParseTest, JsonErrorsAreNamed)
{
    std::vector<fault::FaultSpec> specs;
    std::string error;
    EXPECT_FALSE(fault::parseFaultFile("{", specs, error));
    EXPECT_FALSE(fault::parseFaultFile("{\"x\": 1}", specs, error));
    EXPECT_NE(error.find("faults"), std::string::npos);
    EXPECT_FALSE(fault::parseFaultFile(
        R"([{"kind": "crash", "t": "1s"}])", specs, error));
    EXPECT_NE(error.find("fault #0"), std::string::npos);
    EXPECT_FALSE(fault::parseFaultFile(
        R"([{"kind": "crash", "t": "1s", "service": "x",)"
        R"( "instance": [1]}])",
        specs, error));
}

} // namespace
} // namespace uqsim
