/**
 * @file
 * Tests for the protocol cost models (Thrift vs gRPC vs REST/HTTP1).
 */

#include <gtest/gtest.h>

#include "rpc/protocol.hh"

namespace uqsim::rpc {
namespace {

TEST(ProtocolTest, Names)
{
    EXPECT_EQ(protocolName(ProtocolKind::ThriftRpc), "Thrift-RPC");
    EXPECT_EQ(protocolName(ProtocolKind::Grpc), "gRPC");
    EXPECT_EQ(protocolName(ProtocolKind::RestHttp1), "REST/HTTP1");
}

TEST(ProtocolTest, HttpFramingLargerThanThrift)
{
    // Sec 5: RPCs introduce considerably lower latency than HTTP.
    const auto thrift = ProtocolModel::thrift();
    const auto http = ProtocolModel::restHttp1();
    EXPECT_GT(http.framingBytes, thrift.framingBytes);
    EXPECT_GT(http.wireSize(512), thrift.wireSize(512));
}

TEST(ProtocolTest, HttpSerializationCostlier)
{
    const auto thrift = ProtocolModel::thrift();
    const auto http = ProtocolModel::restHttp1();
    EXPECT_GT(http.serializeCost(512), thrift.serializeCost(512));
    EXPECT_GT(http.deserializeCost(512), thrift.deserializeCost(512));
}

TEST(ProtocolTest, OnlyHttp1Blocks)
{
    EXPECT_FALSE(ProtocolModel::thrift().connectionBlocking);
    EXPECT_FALSE(ProtocolModel::grpc().connectionBlocking);
    EXPECT_TRUE(ProtocolModel::restHttp1().connectionBlocking);
}

TEST(ProtocolTest, CostsGrowWithPayload)
{
    const auto m = ProtocolModel::thrift();
    EXPECT_GT(m.serializeCost(100000), m.serializeCost(100));
    EXPECT_EQ(m.wireSize(1000), 1000u + m.framingBytes);
}

TEST(ProtocolTest, SerializationEfficiencyScalesCost)
{
    ProtocolModel tuned = ProtocolModel::thrift();
    ProtocolModel handrolled = tuned;
    handrolled.serializationEfficiency = 0.5;
    EXPECT_NEAR(static_cast<double>(handrolled.serializeCost(1000)),
                2.0 * static_cast<double>(tuned.serializeCost(1000)),
                2.0);
}

} // namespace
} // namespace uqsim::rpc
