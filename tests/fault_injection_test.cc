/**
 * @file
 * Tests for the fault-injection and provisioning levers the
 * tail-at-scale experiments rely on: routing misconfiguration,
 * provisioning helpers, and the TCP-processing accounting used by the
 * FPGA study.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "apps/social_network.hh"
#include "service/app.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

apps::WorldConfig
cfg(unsigned servers = 4)
{
    apps::WorldConfig c;
    c.workerServers = servers;
    return c;
}

TEST(RouteMisconfigTest, FunnelsAllTrafficToFirstInstance)
{
    apps::World w(cfg());
    service::App &app = *w.app;
    service::ServiceDef svc;
    svc.name = "svc";
    svc.handler.compute(Dist::constant(1000.0));
    service::Microservice &tier = app.addService(std::move(svc));
    tier.addInstance(w.worker(0));
    tier.addInstance(w.worker(1));
    tier.addInstance(w.worker(2));

    service::Request req;
    tier.setRouteMisconfigured(true);
    EXPECT_TRUE(tier.routeMisconfigured());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(tier.selectInstance(req).index(), 0u);

    tier.setRouteMisconfigured(false);
    std::set<unsigned> seen;
    for (int i = 0; i < 6; ++i)
        seen.insert(tier.selectInstance(req).index());
    EXPECT_EQ(seen.size(), 3u); // back to round-robin
}

TEST(RouteMisconfigTest, OverloadsSingleInstanceUnderLoad)
{
    apps::World w(cfg());
    service::App &app = *w.app;
    service::ServiceDef svc;
    svc.name = "svc";
    svc.kind = service::ServiceKind::Frontend;
    svc.handler.compute(Dist::exponential(800.0 * 1440.0));
    svc.threadsPerInstance = 2;
    service::Microservice &tier = app.addService(std::move(svc));
    for (int i = 0; i < 3; ++i)
        tier.addInstance(w.worker(i));
    app.setEntry("svc");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.setQosLatency(10 * kTicksPerMs);
    app.validate();

    auto healthy = workload::runLoad(
        app, 4000.0, kTicksPerSec, 2 * kTicksPerSec,
        workload::QueryMix({1.0}), workload::UserPopulation::uniform(50),
        3);
    EXPECT_LT(healthy.p99, 10 * kTicksPerMs);

    tier.setRouteMisconfigured(true);
    auto broken = workload::runLoad(
        app, 4000.0, kTicksPerSec, 2 * kTicksPerSec,
        workload::QueryMix({1.0}), workload::UserPopulation::uniform(50),
        3);
    // One instance takes 3x its capacity: the tail explodes.
    EXPECT_GT(broken.p99, 4 * healthy.p99);
}

TEST(ProvisioningTest, ThrottleLogicTiersSetsThreads)
{
    apps::World w(cfg(5));
    apps::buildSocialNetwork(w);
    apps::throttleLogicTiers(*w.app, 24, 3);
    for (const auto *svc : w.app->services()) {
        switch (svc->def().kind) {
          case service::ServiceKind::Frontend:
            EXPECT_EQ(svc->def().threadsPerInstance, 24u) << svc->name();
            break;
          case service::ServiceKind::Stateless:
            EXPECT_EQ(svc->def().threadsPerInstance, 3u) << svc->name();
            break;
          default:
            EXPECT_NE(svc->def().threadsPerInstance, 3u) << svc->name();
            break;
        }
    }
}

TEST(ProvisioningTest, TightenStatefulTiersScalesCostAndThreads)
{
    apps::World w(cfg(5));
    apps::buildSocialNetwork(w);
    // Sample a cache tier's compute before/after.
    Rng probe(5);
    auto &cache = w.app->service("posts-memcached");
    const double before =
        cache.def().handler.stages[0].computeCycles.mean();
    apps::tightenStatefulTiers(*w.app, 10.0, 2, 8.0, 4);
    const double after =
        cache.def().handler.stages[0].computeCycles.mean();
    EXPECT_NEAR(after, 10.0 * before, 1e-6 * after);
    EXPECT_EQ(cache.def().threadsPerInstance, 2u);
    EXPECT_EQ(w.app->service("posts-db").def().threadsPerInstance, 4u);
    // Stateless tiers untouched.
    EXPECT_NE(w.app->service("composePost").def().threadsPerInstance, 2u);
    (void)probe;
}

TEST(TcpAccountingTest, TcpProcTimeIsPartOfNetworkTime)
{
    apps::World w(cfg(3));
    service::App &app = *w.app;
    service::ServiceDef leaf;
    leaf.name = "leaf";
    leaf.handler.compute(Dist::constant(50000.0));
    app.addService(std::move(leaf)).addInstance(w.worker(1));
    service::ServiceDef fe;
    fe.name = "fe";
    fe.kind = service::ServiceKind::Frontend;
    fe.handler.compute(Dist::constant(50000.0)).call("leaf");
    app.addService(std::move(fe)).addInstance(w.worker(0));
    app.setEntry("fe");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.validate();

    service::Request out;
    app.inject(0, 1, [&](const service::Request &r) { out = r; });
    w.sim.run();
    EXPECT_GT(out.tcpProcTime, 0u);
    EXPECT_LE(out.tcpProcTime, out.networkTime);
}

TEST(TcpAccountingTest, FpgaShrinksTcpTimeSpecifically)
{
    auto measure = [&](bool fpga) {
        apps::WorldConfig c = cfg(3);
        if (fpga)
            c.appConfig.fpga = net::FpgaOffloadModel::on();
        apps::World w(c);
        service::App &app = *w.app;
        service::ServiceDef fe;
        fe.name = "fe";
        fe.kind = service::ServiceKind::Frontend;
        fe.handler.compute(Dist::constant(50000.0));
        app.addService(std::move(fe)).addInstance(w.worker(0));
        app.setEntry("fe");
        app.addQueryType({"q", 1, 1.0, 0, {}});
        app.validate();
        service::Request out;
        app.inject(0, 1, [&](const service::Request &r) { out = r; });
        w.sim.run();
        return out;
    };
    const auto native = measure(false);
    const auto offload = measure(true);
    // Fig 16's band: >=10x less TCP processing time.
    EXPECT_LT(offload.tcpProcTime * 10, native.tcpProcTime);
}

TEST(SlowServerTest, SlowFactorStretchesOnlyAffectedInstances)
{
    apps::World w(cfg(4));
    service::App &app = *w.app;
    service::ServiceDef fe;
    fe.name = "fe";
    fe.kind = service::ServiceKind::Frontend;
    fe.handler.compute(Dist::constant(1000000.0)); // ~0.7ms
    service::Microservice &tier = app.addService(std::move(fe));
    tier.addInstance(w.worker(0));
    tier.addInstance(w.worker(1));
    app.setEntry("fe");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.validate();

    w.cluster.server(0).setSlowFactor(10.0);
    // Round-robin alternates between the slow and healthy instance.
    std::vector<Tick> latencies;
    for (int i = 0; i < 8; ++i) {
        app.inject(0, 1, [&](const service::Request &r) {
            latencies.push_back(r.latency());
        });
        w.sim.run();
    }
    ASSERT_EQ(latencies.size(), 8u);
    std::sort(latencies.begin(), latencies.end());
    // Half the requests are ~10x slower than the other half.
    EXPECT_GT(latencies.back(), 5 * latencies.front());
}

} // namespace
} // namespace uqsim
