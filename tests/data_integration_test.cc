/**
 * @file
 * Integration tests of the keyed data tier inside full application
 * models: the opt-in contract (no keyspace => the PR-4 execution
 * digest, bit for bit), seed determinism of keyed runs at any thread
 * count, emergent skew effects on the hit ratio, and the post-crash
 * cold-cache recovery arc (hit-ratio dip during the outage, warm-up
 * climb after the restart).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "manager/monitor.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

struct RunOutcome
{
    std::uint64_t digest = 0;
    std::uint64_t completed = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

RunOutcome
runScenario(const apps::Scenario &scn, Tick warmup, Tick measure)
{
    apps::WorldHandle w(apps::worldConfigFor(scn), scn.shards,
                        scn.threads);
    for (unsigned s = 0; s < scn.shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.warmup = warmup;
    load.measure = measure;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);
    RunOutcome out;
    out.digest = w.engine().executionDigest();
    out.completed = r.completed;
    for (unsigned s = 0; s < scn.shards; ++s) {
        MetricsRegistry &m = w.shard(s).app->metrics();
        out.hits += m.counter("data.posts-memcached.hits").value();
        out.misses += m.counter("data.posts-memcached.misses").value();
    }
    return out;
}

TEST(DataIntegrationTest, NoKeyspaceKeepsTheLegacyDigest)
{
    // The exact run `uqsim_run --app social-network --shards 1`
    // performs; the digest is pinned to the pre-data-tier value, so
    // any perturbation of the event stream by the (disabled) keyed
    // path is a test failure, not a silent behaviour change.
    const apps::Scenario scn; // all defaults; dataKeys == 0
    const RunOutcome r = runScenario(scn, secToTicks(scn.warmupSec),
                                     secToTicks(scn.durationSec));
    EXPECT_EQ(r.digest, 0x3e4c3130724e0248ull);
    EXPECT_EQ(r.completed, 3039u);
    EXPECT_EQ(r.hits + r.misses, 0u); // no keyed lookups happened
}

TEST(DataIntegrationTest, KeyedRunsAreSeedDeterministic)
{
    apps::Scenario scn;
    scn.qps = 200.0;
    scn.dataKeys = 20000;
    scn.dataCapacity = 512;

    const RunOutcome a =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    const RunOutcome b =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_GT(a.hits + a.misses, 0u) << "keyed path never exercised";

    scn.seed = 43;
    const RunOutcome c =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_NE(c.digest, a.digest);
}

TEST(DataIntegrationTest, KeyedDigestIsThreadCountInvariant)
{
    apps::Scenario scn;
    scn.qps = 200.0;
    scn.shards = 2;
    scn.dataKeys = 20000;
    scn.dataCapacity = 512;

    scn.threads = 1;
    const RunOutcome one =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    scn.threads = 4;
    const RunOutcome four =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_EQ(one.digest, four.digest);
    EXPECT_EQ(one.hits, four.hits);
    EXPECT_EQ(one.misses, four.misses);
}

TEST(DataIntegrationTest, SkewRaisesTheEmergentHitRatio)
{
    // With the store much smaller than the key universe, a heavier
    // Zipf tail concentrates accesses on fewer keys and the hit ratio
    // must rise — emergent, not configured.
    auto hitRatioAt = [](double s) {
        apps::Scenario scn;
        scn.qps = 200.0;
        scn.dataKeys = 50000;
        scn.dataCapacity = 256;
        scn.dataZipfS = s;
        const RunOutcome r =
            runScenario(scn, kTicksPerSec, 3 * kTicksPerSec);
        const std::uint64_t n = r.hits + r.misses;
        EXPECT_GT(n, 0u);
        return static_cast<double>(r.hits) / static_cast<double>(n);
    };
    const double low = hitRatioAt(0.6);
    const double high = hitRatioAt(1.3);
    EXPECT_GT(high, low + 0.1)
        << "zipf 1.3 should clearly out-hit zipf 0.6";
}

TEST(DataIntegrationTest, CrashColdCacheDipsAndRecovers)
{
    // Crash one posts-memcached shard for 1s mid-run. While it is
    // down its keys are unreachable (counted as misses); when it
    // restarts it is cold and must re-learn the hot set, so the
    // tier's interval hit ratio dips and then climbs back.
    apps::Scenario scn;
    scn.qps = 300.0;
    scn.dataKeys = 5000;
    scn.dataCapacity = 2048;

    apps::WorldHandle w(apps::worldConfigFor(scn), 1, 1);
    apps::buildScenarioApp(w.shard(0), scn);
    service::App &app = *w.shard(0).app;

    fault::FaultInjector inj(app, scn.seed);
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.service = "posts-memcached";
    crash.instance = 0;
    crash.start = 3 * kTicksPerSec;
    crash.duration = kTicksPerSec;
    inj.add(crash);
    inj.arm();

    manager::Monitor monitor(app, kTicksPerSec / 4);
    monitor.start();

    apps::LoadSpec load;
    load.qps = scn.qps;
    load.measure = 9 * kTicksPerSec;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    apps::runWorld(w, load);
    monitor.stop();

    // The restart wiped the shard's store.
    const data::CacheStats st =
        app.service("posts-memcached").dataStats();
    EXPECT_GE(st.coldRestarts, 1u);

    // Mean interval hit ratio per phase of the run.
    auto phaseMean = [&](Tick from, Tick to) {
        double sum = 0.0;
        unsigned n = 0;
        for (const auto &round : monitor.history())
            for (const manager::TierSample &s : round) {
                if (s.service != "posts-memcached" || s.time <= from ||
                    s.time > to || s.cacheLookups == 0)
                    continue;
                sum += s.hitRatio;
                ++n;
            }
        EXPECT_GT(n, 0u) << "no samples in [" << from << ", " << to
                         << "]";
        return n ? sum / n : 0.0;
    };
    const double before = phaseMean(kTicksPerSec, 3 * kTicksPerSec);
    const double outage =
        phaseMean(3 * kTicksPerSec + kTicksPerSec / 4,
                  4 * kTicksPerSec);
    const double recovered = phaseMean(7 * kTicksPerSec,
                                       9 * kTicksPerSec);

    EXPECT_LT(outage, before - 0.1)
        << "no hit-ratio dip while the shard was down";
    EXPECT_GT(recovered, outage + 0.1)
        << "hit ratio never climbed back after the cold restart";
}

} // namespace
} // namespace uqsim
