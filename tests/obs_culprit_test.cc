/**
 * @file
 * Culprit-localization tests: the ranking semantics on synthetic
 * interval series (onset detection, baseline medians, exclusion rules,
 * tie-breaking), tier-depth BFS, and the end-to-end regression the
 * header promises — an injected backend bottleneck in a live app must
 * rank first with positive lead time over the client-side violation.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/builder.hh"
#include "apps/social_network.hh"
#include "obs/culprit.hh"
#include "obs/pipeline.hh"
#include "service/app.hh"
#include "workload/generators.hh"

namespace uqsim::obs {
namespace {

// -- Synthetic-store semantics -----------------------------------------

IntervalSample
row(Tick start, Tick end, double mean_ns, std::uint64_t count = 10)
{
    IntervalSample s;
    s.start = start;
    s.end = end;
    s.count = count;
    s.meanLatencyNs = mean_ns;
    return s;
}

/** Append one row per 10-tick interval, values from @p means. */
void
fill(TimeSeriesStore &store, const std::string &name,
     const std::vector<double> &means)
{
    Series &s = store.series(name);
    for (std::size_t i = 0; i < means.size(); ++i)
        s.append(row(i * 10, (i + 1) * 10, means[i]));
}

TEST(CulpritLocalizerTest, RanksEarliestSustainedOnsetFirst)
{
    TimeSeriesStore store(10, 64);
    // 10 healthy intervals (baseline window is the earliest 8), then
    // backend degrades at t=100, frontend follows at t=120. "late"
    // only degrades at the violation itself and explains nothing.
    fill(store, "backend",
         {100, 100, 100, 100, 100, 100, 100, 100, 100, 100,  //
          1000, 1000, 1000, 1000, 1000, 1000});
    fill(store, "frontend",
         {200, 200, 200, 200, 200, 200, 200, 200, 200, 200,  //
          200, 200, 900, 900, 900, 900});
    fill(store, "late",
         {100, 100, 100, 100, 100, 100, 100, 100, 100, 100,  //
          100, 100, 100, 100, 100, 1000});
    // The end-to-end series is never a culprit candidate.
    fill(store, kEndToEndSeries,
         {300, 300, 300, 300, 300, 300, 300, 300, 300, 300,  //
          2000, 2000, 2000, 2000, 2000, 2000});

    CulpritLocalizer loc(store);
    const auto ranking = loc.localize(
        150, {{"backend", 2}, {"frontend", 0}, {"late", 1}});
    ASSERT_EQ(ranking.size(), 2u);
    EXPECT_EQ(ranking[0].tier, "backend");
    EXPECT_EQ(ranking[0].onset, Tick{100});
    EXPECT_EQ(ranking[0].lead, Tick{50});
    EXPECT_DOUBLE_EQ(ranking[0].inflation, 10.0);
    EXPECT_DOUBLE_EQ(ranking[0].baselineNs, 100.0);
    EXPECT_EQ(ranking[0].depth, 2u);
    EXPECT_EQ(ranking[1].tier, "frontend");
    EXPECT_EQ(ranking[1].onset, Tick{120});
    EXPECT_EQ(ranking[1].lead, Tick{30});
}

TEST(CulpritLocalizerTest, DepthBreaksOnsetTies)
{
    // A cascade reaches the backend and its caller within the same
    // interval: the deeper tier must rank first.
    TimeSeriesStore store(10, 64);
    const std::vector<double> means = {100, 100, 100, 100, 100,
                                       100, 100, 100, 100, 100,
                                       800, 800, 800};
    fill(store, "caller", means);
    fill(store, "callee", means);

    CulpritLocalizer loc(store);
    const auto ranking =
        loc.localize(130, {{"caller", 1}, {"callee", 2}});
    ASSERT_EQ(ranking.size(), 2u);
    EXPECT_EQ(ranking[0].tier, "callee");
    EXPECT_EQ(ranking[0].onset, ranking[1].onset);
    EXPECT_GT(ranking[0].depth, ranking[1].depth);
}

TEST(CulpritLocalizerTest, SingleBadIntervalIsNotAnOnset)
{
    // A one-interval blip (below `sustain` = 2) resets: only a
    // sustained degradation counts as an onset.
    TimeSeriesStore store(10, 64);
    fill(store, "blippy",
         {100, 100, 1000, 100, 100, 100, 100, 100, 100, 100});
    CulpritLocalizer loc(store);
    EXPECT_TRUE(loc.localize(100, {}).empty());
}

TEST(CulpritLocalizerTest, AlwaysSlowTierHasNoOnset)
{
    // A tier degraded from t=0 never had a healthy baseline: the
    // localizer cannot (and does not) name it — the documented limit.
    TimeSeriesStore store(10, 64);
    fill(store, "born-slow",
         {1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000});
    CulpritLocalizer loc(store);
    EXPECT_TRUE(loc.localize(80, {}).empty());
}

TEST(CulpritLocalizerTest, TrafficFreeIntervalsAreNeutral)
{
    TimeSeriesStore store(10, 64);
    Series &s = store.series("spiky");
    for (int i = 0; i < 10; ++i)
        s.append(row(i * 10, (i + 1) * 10, 100));
    s.append(row(100, 110, 1000));
    s.append(row(110, 120, 0.0, /*count=*/0)); // quiet interval
    s.append(row(120, 130, 1000));
    CulpritLocalizer loc(store);
    // The quiet interval neither resets nor extends the streak: the
    // two degraded intervals around it form a sustained onset.
    const auto ranking = loc.localize(140, {});
    ASSERT_EQ(ranking.size(), 1u);
    EXPECT_EQ(ranking[0].onset, Tick{100});
}

TEST(CulpritLocalizerTest, CriticalPathBreakdownFillsShares)
{
    TimeSeriesStore store(10, 64);
    const std::vector<double> means = {100, 100, 100, 100, 100,
                                       100, 100, 100, 100, 100,
                                       900, 900};
    fill(store, "hot", means);
    std::vector<trace::CriticalPathEntry> breakdown(2);
    breakdown[0].service = "hot";
    breakdown[0].exclusiveNs = 750.0;
    breakdown[1].service = "other";
    breakdown[1].exclusiveNs = 250.0;
    CulpritLocalizer loc(store);
    const auto ranking = loc.localize(120, {}, breakdown);
    ASSERT_EQ(ranking.size(), 1u);
    EXPECT_DOUBLE_EQ(ranking[0].share, 0.75);
}

TEST(CulpritTableTest, RendersRankingAndEmptyState)
{
    TimeSeriesStore store(10, 64);
    CulpritLocalizer loc(store);
    EXPECT_NE(culpritTable(loc.localize(100, {}))
                  .find("no tier degraded"),
              std::string::npos);

    CulpritEntry e;
    e.tier = "backend";
    e.onset = 5 * kTicksPerSec;
    e.lead = 2 * kTicksPerSec;
    e.inflation = 12.5;
    e.depth = 2;
    const std::string table = culpritTable({e});
    EXPECT_NE(table.find("backend"), std::string::npos);
    EXPECT_NE(table.find("12.50x"), std::string::npos);
}

// -- Tier depths --------------------------------------------------------

struct Chain
{
    Chain() : world(makeConfig())
    {
        service::App &app = *world.app;
        service::ServiceDef back;
        back.name = "backend";
        back.handler.compute(Dist::constant(120.0 * 1440.0));
        back.threadsPerInstance = 8;
        app.addService(std::move(back))
            .addInstance(world.worker(2));

        service::ServiceDef mid;
        mid.name = "mid";
        mid.handler.compute(Dist::constant(80.0 * 1440.0))
            .call("backend");
        mid.threadsPerInstance = 8;
        app.addService(std::move(mid)).addInstance(world.worker(1));

        service::ServiceDef front;
        front.name = "frontend";
        front.kind = service::ServiceKind::Frontend;
        front.handler.compute(Dist::constant(60.0 * 1440.0))
            .call("mid");
        front.threadsPerInstance = 8;
        app.addService(std::move(front))
            .addInstance(world.worker(0));
        app.setEntry("frontend");
        app.addQueryType({"read", 1, 1.0, 0, {}});
        app.validate();
    }

    static apps::WorldConfig
    makeConfig()
    {
        apps::WorldConfig c;
        c.workerServers = 3;
        return c;
    }

    apps::World world;
};

TEST(TierDepthsTest, BfsFromEntryOverCallTargets)
{
    Chain t;
    const auto depths =
        CulpritLocalizer::tierDepths(*t.world.app);
    ASSERT_EQ(depths.size(), 3u);
    EXPECT_EQ(depths.at("frontend"), 0u);
    EXPECT_EQ(depths.at("mid"), 1u);
    EXPECT_EQ(depths.at("backend"), 2u);
}

// -- Live regressions ----------------------------------------------------

TEST(CulpritRegressionTest, InjectedBackendBottleneckRanksFirst)
{
    // Three-tier chain, one tier per server. The backend's server is
    // slowed 30x at t=5s; the e2e SLO trips and the localizer must
    // name the backend, ahead of the violation.
    Chain t;
    service::App &app = *t.world.app;

    PipelineConfig pc;
    pc.interval = 500 * kTicksPerMs;
    pc.ring = 64;
    pc.slo.latency = 2 * kTicksPerMs;
    pc.slo.window = 3;
    Pipeline pipe(app, pc);
    pipe.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(100), 1);
    gen.setQps(300.0);
    gen.start();
    t.world.sim.schedule(secToTicks(5.0), [&] {
        const unsigned id =
            app.service("backend").instances()[0]->server().id();
        t.world.cluster.server(id).setSlowFactor(30.0);
    });
    t.world.sim.runUntil(secToTicks(12.0));

    ASSERT_TRUE(pipe.slo().violated());
    const SloViolation &v = pipe.slo().violations().front();
    EXPECT_GE(v.onset, secToTicks(5.0));
    EXPECT_EQ(v.kind, SloViolation::Kind::Latency);

    CulpritLocalizer loc(pipe.store());
    const auto ranking =
        loc.localize(pipe.slo().firstViolationTime(),
                     CulpritLocalizer::tierDepths(app));
    ASSERT_FALSE(ranking.empty());
    EXPECT_EQ(ranking.front().tier, "backend");
    EXPECT_GT(ranking.front().lead, Tick{0});
    EXPECT_GT(ranking.front().inflation, 2.0);
}

TEST(CulpritRegressionTest, SocialNetworkHotspotLocalizesToHotServer)
{
    // The fig19 scenario at test scale: single-instance tiers across
    // 6 servers, a healthy period, then the posts-db server slows.
    // The top-ranked culprit must be hosted on the hot server, with
    // positive lead over the end-to-end violation.
    apps::WorldConfig c;
    c.workerServers = 6;
    apps::World w(c);
    apps::AppOptions opt;
    opt.instancesPerTier = 1;
    apps::buildSocialNetwork(w, opt);
    service::App &app = *w.app;

    PipelineConfig pc;
    pc.interval = secToTicks(1.0);
    pc.ring = 128;
    pc.slo.latency = 20 * kTicksPerMs;
    pc.slo.window = 3;
    Pipeline pipe(app, pc);
    pipe.start();

    workload::OpenLoopGenerator gen(
        app, workload::QueryMix::fromApp(app),
        workload::UserPopulation::uniform(500), 3);
    gen.setQps(1400.0);
    gen.start();

    w.sim.runUntil(secToTicks(15.0));
    const unsigned hot_server =
        app.service("posts-db").instances()[0]->server().id();
    w.cluster.server(hot_server).setSlowFactor(14.0);
    w.sim.runUntil(secToTicks(30.0));

    ASSERT_TRUE(pipe.slo().violated());
    EXPECT_GE(pipe.slo().violations().front().onset,
              secToTicks(15.0));

    CulpritLocalizer loc(pipe.store());
    const auto ranking =
        loc.localize(pipe.slo().firstViolationTime(),
                     CulpritLocalizer::tierDepths(app));
    ASSERT_FALSE(ranking.empty());
    // Round-robin placement co-hosts several tiers per server, so the
    // robust invariant is "the top culprit lives on the hot server",
    // not a specific tier name.
    const std::string &top = ranking.front().tier;
    EXPECT_EQ(app.service(top).instances()[0]->server().id(),
              hot_server)
        << "top culprit '" << top
        << "' is not hosted on the degraded server";
    EXPECT_GT(ranking.front().lead, Tick{0});
}

} // namespace
} // namespace uqsim::obs
