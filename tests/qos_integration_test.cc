/**
 * @file
 * Integration tests of server-side admission control inside full
 * application models: the opt-in contract (no qos block => the pinned
 * execution digest, bit for bit), seed determinism and thread-count
 * invariance of QoS-enabled runs, the retry interplay with the
 * client-side resilience layer, and the Fig-19 overload regression —
 * at 10x offered load a controlled deployment keeps user-facing
 * goodput near capacity while the uncontrolled FIFO collapses.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/builder.hh"
#include "apps/scenario.hh"
#include "core/logging.hh"
#include "service/admission.hh"
#include "service/app.hh"
#include "trace/span.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

using service::App;
using service::QosConfig;
using service::Request;
using service::ServiceDef;
using service::ServiceKind;

// -- Scenario-level contract -------------------------------------------

struct RunOutcome
{
    std::uint64_t digest = 0;
    std::uint64_t completed = 0;
    std::uint64_t admitted = 0;
    std::uint64_t refused = 0; ///< shed + throttled + overflow
};

RunOutcome
runScenario(const apps::Scenario &scn, Tick warmup, Tick measure)
{
    apps::WorldHandle w(apps::worldConfigFor(scn), scn.shards,
                        scn.threads);
    for (unsigned s = 0; s < scn.shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.warmup = warmup;
    load.measure = measure;
    load.users = workload::UserPopulation::uniform(scn.users);
    load.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, load);
    RunOutcome out;
    out.digest = w.engine().executionDigest();
    out.completed = r.completed;
    for (unsigned s = 0; s < scn.shards; ++s) {
        MetricsRegistry &m = w.shard(s).app->metrics();
        for (unsigned c = 0; c < service::kQosClassCount; ++c) {
            const char *cls = service::qosClassName(
                static_cast<service::QosClass>(c));
            out.admitted +=
                m.counter(strCat("admission.admitted.", cls)).value();
            out.refused +=
                m.counter(strCat("admission.shed.", cls)).value() +
                m.counter(strCat("admission.throttled.", cls)).value() +
                m.counter(strCat("admission.overflow.", cls)).value();
        }
    }
    return out;
}

/** A qos-enabled social-network run that actually exercises refusals. */
apps::Scenario
qosScenario()
{
    apps::Scenario scn;
    scn.qps = 200.0;
    scn.qosEnabled = true;
    scn.qosQueue = 4;
    scn.qosRate = 30.0; // well under per-tier demand: throttles fire
    scn.qosBurst = 8.0;
    scn.qosBatch = "composePost-image,composePost-video";
    scn.qosBestEffort = "repost";
    return scn;
}

TEST(QosIntegrationTest, NoQosKeepsTheLegacyDigest)
{
    // The exact run `uqsim_run --app social-network --shards 1`
    // performs; the digest is pinned to the pre-admission value, so
    // any perturbation of the event stream by the (absent) admission
    // path is a test failure, not a silent behaviour change.
    const apps::Scenario scn; // all defaults; qosEnabled == false
    const RunOutcome r = runScenario(scn, secToTicks(scn.warmupSec),
                                     secToTicks(scn.durationSec));
    EXPECT_EQ(r.digest, 0x3e4c3130724e0248ull);
    EXPECT_EQ(r.completed, 3039u);
    EXPECT_EQ(r.admitted + r.refused, 0u); // no admission decisions
}

TEST(QosIntegrationTest, QosRunsAreSeedDeterministic)
{
    apps::Scenario scn = qosScenario();

    const RunOutcome a =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    const RunOutcome b =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.refused, b.refused);
    EXPECT_GT(a.admitted, 0u) << "admission path never exercised";
    EXPECT_GT(a.refused, 0u) << "nothing was ever refused";

    scn.seed = 43;
    const RunOutcome c =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_NE(c.digest, a.digest);
}

TEST(QosIntegrationTest, QosDigestIsThreadCountInvariant)
{
    apps::Scenario scn = qosScenario();
    scn.shards = 2;

    scn.threads = 1;
    const RunOutcome one =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    scn.threads = 4;
    const RunOutcome four =
        runScenario(scn, kTicksPerSec / 2, 2 * kTicksPerSec);
    EXPECT_EQ(one.digest, four.digest);
    EXPECT_EQ(one.admitted, four.admitted);
    EXPECT_EQ(one.refused, four.refused);
    EXPECT_GT(one.admitted, 0u);
}

// -- Purpose-built overload fixture ------------------------------------

/** One finished request, timestamped and classed for goodput. */
struct Outcome
{
    Tick done = 0;
    bool ok = false;
    std::uint8_t status = 0;
    unsigned query = 0;
};

/**
 * Fixture with a front tier on worker 0 calling a backend on worker 1
 * and two query types: "user" (interactive) and "batch" (bulk). The
 * backend is the bottleneck; the front tier is kept wide.
 */
class QosOverloadTest : public ::testing::Test
{
  protected:
    QosOverloadTest() { rebuild(42); }

    void
    rebuild(std::uint64_t seed)
    {
        apps::WorldConfig c;
        c.workerServers = 2;
        c.seed = seed;
        world_ = std::make_unique<apps::World>(c);
    }

    void
    buildPair(double backend_us, unsigned backend_threads)
    {
        App &app = *world_->app;
        ServiceDef backend;
        backend.name = "backend";
        backend.handler.compute(apps::computeUsConst(backend_us));
        backend.threadsPerInstance = backend_threads;
        app.addService(std::move(backend)).addInstance(world_->worker(1));

        ServiceDef front;
        front.name = "front";
        front.kind = ServiceKind::Frontend;
        front.handler.compute(apps::computeUsConst(20.0)).call("backend");
        front.threadsPerInstance = 64;
        app.addService(std::move(front)).addInstance(world_->worker(0));

        app.setEntry("front");
        app.addQueryType({"user", 1.0, 1.0, 0, {}});
        app.addQueryType({"batch", 1.0, 1.0, 0, {}});
        app.validate();
    }

    rpc::ResiliencePolicy &
    backendPolicy()
    {
        return world_->app->service("backend").mutableDef().resilience;
    }

    /** Open-loop arrivals of @p query at @p qps over [0, duration). */
    void
    openLoop(unsigned query, double qps, Tick duration,
             std::vector<Outcome> &out)
    {
        const Tick interval = static_cast<Tick>(kTicksPerSec / qps);
        for (Tick t = interval; t < duration; t += interval)
            world_->sim.scheduleAt(t, [this, &out, query, t]() {
                world_->app->inject(
                    query, t / kTicksPerMs, [&out, query](const Request &r) {
                        out.push_back({r.completeTime,
                                       r.failStatus == 0 && !r.dropped,
                                       r.failStatus, query});
                    });
            });
    }

    std::uint64_t
    counter(const std::string &name)
    {
        return world_->app->metrics().counter(name).value();
    }

    std::unique_ptr<apps::World> world_;
};

/**
 * The Fig-19 regression this PR exists for. Backend capacity is
 * 1000 rps (1 thread x 1ms). Offered load is 10x: 900 rps of
 * user-facing traffic plus 9100 rps of batch, with a 50ms attempt
 * timeout and no retries.
 *
 * Uncontrolled, the shared FIFO backlog grows by ~9000 requests/s;
 * within tens of milliseconds every arrival waits past the timeout,
 * the backend burns all capacity on zombie work and user-facing
 * goodput collapses toward zero — the cliff.
 *
 * With admission control the batch class is refused at the door (shed
 * threshold at half the 32-deep class bound) and lopsided WRR weights
 * hand nearly every service slot to the user class, so user-facing
 * goodput stays near the offered 900 rps — graceful degradation.
 */
TEST_F(QosOverloadTest, TenXOverloadDegradesGracefullyUnderControl)
{
    const Tick horizon = 4 * kTicksPerSec;
    const Tick from = kTicksPerSec; // skip the fill-up transient

    auto run = [&](bool controlled) {
        rebuild(42);
        buildPair(/*backend_us=*/1000.0, /*threads=*/1);
        backendPolicy().timeout = 50 * kTicksPerMs;
        if (controlled) {
            QosConfig qc;
            qc.policy.enabled = true;
            qc.policy.weights = {100, 1, 1};
            qc.policy.classQueueCapacity = 32;
            qc.batchQueries = {"batch"};
            world_->app->enableQos(qc);
        }
        std::vector<Outcome> outcomes;
        openLoop(/*query=*/0, /*qps=*/900.0, horizon, outcomes);
        openLoop(/*query=*/1, /*qps=*/9100.0, horizon, outcomes);
        world_->sim.run();
        unsigned user_ok = 0;
        for (const Outcome &o : outcomes)
            if (o.query == 0 && o.ok && o.done >= from &&
                o.done < horizon)
                ++user_ok;
        return user_ok;
    };

    // Backend capacity over the 3s measured window.
    const double capacity = 1000.0 * 3.0;
    const unsigned naive = run(false);
    const unsigned controlled = run(true);

    EXPECT_LT(naive, 0.3 * capacity)
        << "uncontrolled overload should collapse user-facing goodput";
    EXPECT_GT(controlled, 0.8 * capacity)
        << "admission control should preserve user-facing goodput";

    // The controlled run refused batch work at the door, cheaply:
    // shed responses, not silent drops or burned service time.
    EXPECT_GT(counter("admission.shed.batch"), 1000u);
    EXPECT_GT(counter("admission.served.user-facing"), 2000u);
    EXPECT_EQ(world_->app->droppedRequests(), 0u);
}

/**
 * Admission rejections are typed fast-fail errors, so the PR-3 client
 * resilience layer treats them like any other retryable failure: with
 * a retry policy a briefly-throttled request succeeds on a later
 * attempt instead of failing outright.
 */
TEST_F(QosOverloadTest, ThrottledRejectionsAreRetryable)
{
    buildPair(/*backend_us=*/100.0, /*threads=*/4);
    // The throttler guards every tier, including the entry tier the
    // synthetic client calls — so the retry policy must cover both
    // edges (client->front and front->backend).
    for (const char *svc : {"front", "backend"}) {
        rpc::ResiliencePolicy &pol =
            world_->app->service(svc).mutableDef().resilience;
        pol.retry.maxAttempts = 4;
        pol.retry.baseBackoff = 20 * kTicksPerMs;
        pol.retry.jitter = 0.5;
    }

    QosConfig qc;
    qc.policy.enabled = true;
    qc.policy.ratePerInstance = 100.0; // half the offered 200 rps
    qc.policy.burst = 4.0;
    world_->app->enableQos(qc);

    std::vector<Outcome> outcomes;
    openLoop(/*query=*/0, /*qps=*/200.0, 2 * kTicksPerSec, outcomes);
    world_->sim.run();

    unsigned ok = 0, throttled = 0;
    for (const Outcome &o : outcomes) {
        ok += o.ok ? 1 : 0;
        if (o.status ==
            static_cast<std::uint8_t>(trace::SpanStatus::Throttled))
            ++throttled;
    }
    // The throttler refused well over half the attempts...
    EXPECT_GT(counter("admission.throttled.user-facing"), 100u);
    // ...yet retries against later bucket refills recover some of
    // them: strictly more successes than the no-retry bound, and the
    // requests that still fail carry the typed Throttled status.
    EXPECT_GT(counter("rpc.retries"), 50u);
    EXPECT_GT(ok, 150u);
    EXPECT_GT(throttled, 0u);
    EXPECT_EQ(ok + throttled, outcomes.size());
}

} // namespace
} // namespace uqsim
