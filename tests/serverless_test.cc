/**
 * @file
 * Tests for the serverless platform rewrite and the cost models
 * (Fig 21 machinery).
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "serverless/platform.hh"
#include "workload/load_sweep.hh"

namespace uqsim::serverless {
namespace {

apps::WorldConfig
smallConfig()
{
    apps::WorldConfig c;
    c.workerServers = 4;
    return c;
}

void
buildTwoTier(apps::World &w)
{
    service::ServiceDef leaf;
    leaf.name = "leaf";
    leaf.handler.compute(Dist::constant(100000.0));
    leaf.threadsPerInstance = 32;
    w.app->addService(std::move(leaf)).addInstance(w.worker(1));
    service::ServiceDef front;
    front.name = "front";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(Dist::constant(100000.0)).call("leaf");
    front.threadsPerInstance = 32;
    w.app->addService(std::move(front)).addInstance(w.worker(0));
    w.app->setEntry("front");
    w.app->addQueryType({"q", 1, 1.0, 0, {}});
    w.app->setQosLatency(kTicksPerSec);
    w.app->validate();
}

TEST(CostModelTest, Ec2CostScalesWithInstancesAndTime)
{
    Ec2CostModel ec2;
    const double one = ec2.cost(1, secToTicks(3600));
    EXPECT_NEAR(one, ec2.pricePerInstanceHour, 1e-9);
    EXPECT_NEAR(ec2.cost(10, secToTicks(3600)), 10.0 * one, 1e-9);
    EXPECT_NEAR(ec2.cost(1, secToTicks(1800)), 0.5 * one, 1e-9);
}

TEST(CostModelTest, LambdaBillingQuantumRoundsUp)
{
    LambdaCostModel l;
    EXPECT_EQ(l.billedDuration(1), l.billingQuantum);
    EXPECT_EQ(l.billedDuration(l.billingQuantum), l.billingQuantum);
    EXPECT_EQ(l.billedDuration(l.billingQuantum + 1),
              2 * l.billingQuantum);
}

TEST(CostModelTest, LambdaCostComponents)
{
    LambdaCostModel l;
    // 1M requests, no duration: just the request price.
    EXPECT_NEAR(l.cost(1000000, 0), l.pricePerMillionRequests, 1e-9);
    // GB-seconds: 1000 s at memoryGb.
    EXPECT_NEAR(l.cost(0, secToTicks(1000)),
                1000.0 * l.memoryGb * l.pricePerGbSecond, 1e-9);
}

TEST(LambdaPlatformTest, ApplyAddsStoreAndRewritesHandlers)
{
    apps::World w(smallConfig());
    buildTwoTier(w);
    LambdaConfig cfg;
    LambdaPlatform::applyToApp(*w.app, cfg, w.cluster);
    ASSERT_TRUE(w.app->hasService("state-store"));
    // Entry gets dispatch + original + write; leaf also reads input.
    const auto &front = w.app->service("front").def().handler.stages;
    const auto &leaf = w.app->service("leaf").def().handler.stages;
    EXPECT_EQ(front.front().kind, service::Stage::Kind::Delay);
    EXPECT_EQ(front.back().kind, service::Stage::Kind::Call);
    EXPECT_EQ(front.back().target, "state-store");
    // The entry skips the read-input call; leaf functions read their
    // input state first: dispatch, read, original work, write.
    ASSERT_EQ(leaf.size(), 4u);
    EXPECT_EQ(leaf[1].kind, service::Stage::Kind::Call);
    EXPECT_EQ(leaf[1].target, "state-store");
    EXPECT_NE(front[1].kind, service::Stage::Kind::Call);
}

TEST(LambdaPlatformTest, ApplyIsIdempotent)
{
    apps::World w(smallConfig());
    buildTwoTier(w);
    LambdaConfig cfg;
    LambdaPlatform::applyToApp(*w.app, cfg, w.cluster);
    const std::size_t stages =
        w.app->service("front").def().handler.stages.size();
    LambdaPlatform::applyToApp(*w.app, cfg, w.cluster);
    EXPECT_EQ(w.app->service("front").def().handler.stages.size(), stages);
}

TEST(LambdaPlatformTest, S3SlowerThanRemoteMemory)
{
    auto run = [&](StateStoreKind store) {
        apps::World w(smallConfig());
        buildTwoTier(w);
        LambdaConfig cfg;
        cfg.stateStore = store;
        cfg.coldStartProb = 0.0; // isolate the store effect
        LambdaPlatform::applyToApp(*w.app, cfg, w.cluster);
        auto r = workload::runLoad(
            *w.app, 100.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(20), 5);
        return r.p50;
    };
    const Tick s3 = run(StateStoreKind::S3);
    const Tick mem = run(StateStoreKind::RemoteMemory);
    EXPECT_GT(s3, 3 * mem); // Fig 21: most overhead is the S3 path
}

TEST(LambdaPlatformTest, InvocationsCountFunctionTiers)
{
    apps::World w(smallConfig());
    buildTwoTier(w);
    LambdaConfig cfg;
    cfg.coldStartProb = 0.0;
    LambdaPlatform::applyToApp(*w.app, cfg, w.cluster);
    for (int i = 0; i < 10; ++i)
        w.app->inject(0, 1);
    w.sim.run();
    // 10 requests x 2 function tiers.
    EXPECT_EQ(LambdaPlatform::invocations(*w.app, "state-store"), 20u);
    LambdaCostModel cost;
    EXPECT_GT(LambdaPlatform::billedDuration(*w.app, cost, "state-store"),
              0u);
}

TEST(LambdaPlatformTest, ColdStartsFattenTail)
{
    auto run = [&](double cold_prob) {
        apps::World w(smallConfig());
        buildTwoTier(w);
        LambdaConfig cfg;
        cfg.stateStore = StateStoreKind::RemoteMemory;
        cfg.coldStartProb = cold_prob;
        LambdaPlatform::applyToApp(*w.app, cfg, w.cluster);
        auto r = workload::runLoad(
            *w.app, 100.0, kTicksPerSec, 3 * kTicksPerSec,
            workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(20), 5);
        return r;
    };
    const auto warm = run(0.0);
    const auto cold = run(0.10);
    EXPECT_GT(cold.p99, warm.p99 * 2);
}

} // namespace
} // namespace uqsim::serverless
