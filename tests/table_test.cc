/**
 * @file
 * Tests for the bench-output table formatter and helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/table.hh"
#include "core/types.hh"

namespace uqsim {
namespace {

TEST(TextTableTest, PrintsHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.add("alpha", 1);
    t.add("beta", 2.5);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableTest, ColumnsAligned)
{
    TextTable t({"a", "b"});
    t.add("longvaluehere", "x");
    std::ostringstream os;
    t.print(os);
    // Header row must be padded to at least the widest cell.
    std::istringstream is(os.str());
    std::string header, rule;
    std::getline(is, header);
    std::getline(is, rule);
    EXPECT_GE(header.size(), std::string("longvaluehere").size());
}

TEST(TextTableDeathTest, WrongCellCountPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(FormatTest, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(FormatTest, FmtMs)
{
    EXPECT_EQ(fmtMs(1500000), "1.500ms");
}

TEST(FormatTest, UnitConversions)
{
    EXPECT_EQ(usToTicks(1.0), kTicksPerUs);
    EXPECT_EQ(msToTicks(1.0), kTicksPerMs);
    EXPECT_EQ(secToTicks(1.0), kTicksPerSec);
    EXPECT_NEAR(ticksToMs(kTicksPerSec), 1000.0, 1e-9);
    EXPECT_NEAR(ticksToSec(kTicksPerMs), 0.001, 1e-12);
}

} // namespace
} // namespace uqsim
