/**
 * @file
 * Tests for the server/cluster compute model: task timing, FCFS core
 * scheduling, DVFS stretching and fault injection.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "cpu/server.hh"

namespace uqsim::cpu {
namespace {

CoreModel
tinyModel(unsigned cores, double mhz)
{
    CoreModel m = CoreModel::xeon();
    m.coresPerServer = cores;
    m.nominalFreqMhz = mhz;
    m.minFreqMhz = 100.0;
    return m;
}

TEST(ServerTest, TaskDurationMatchesCyclesIpcFreq)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0)); // 1 GHz: 1 cycle per ns
    Tick done_at = 0;
    s.execute(5000, 1.0, [&](Tick busy) {
        done_at = sim.now();
        EXPECT_EQ(busy, 5000u);
    });
    sim.run();
    EXPECT_EQ(done_at, 5000u);
}

TEST(ServerTest, IpcScalesDuration)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0));
    Tick done_at = 0;
    s.execute(5000, 2.0, [&](Tick) { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, 2500u);
}

TEST(ServerTest, FrequencyCapStretchesExecution)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0));
    s.setFrequencyMhz(500.0);
    Tick done_at = 0;
    s.execute(5000, 1.0, [&](Tick) { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, 10000u);
}

TEST(ServerTest, FrequencyClampedToMin)
{
    Simulator sim;
    CoreModel m = tinyModel(1, 1000.0);
    m.minFreqMhz = 800.0;
    Server s(sim, 0, m);
    s.setFrequencyMhz(100.0);
    EXPECT_EQ(s.frequencyMhz(), 800.0);
}

TEST(ServerTest, SlowFactorStretchesExecution)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0));
    s.setSlowFactor(3.0);
    Tick done_at = 0;
    s.execute(1000, 1.0, [&](Tick) { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, 3000u);
}

TEST(ServerTest, TasksQueueWhenCoresBusy)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0));
    Tick first = 0, second = 0;
    s.execute(1000, 1.0, [&](Tick) { first = sim.now(); });
    s.execute(1000, 1.0, [&](Tick) { second = sim.now(); });
    EXPECT_EQ(s.busyCores(), 1u);
    EXPECT_EQ(s.queueLength(), 1u);
    sim.run();
    EXPECT_EQ(first, 1000u);
    EXPECT_EQ(second, 2000u); // serialized on the single core
}

TEST(ServerTest, ParallelCoresRunConcurrently)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(2, 1000.0));
    Tick first = 0, second = 0;
    s.execute(1000, 1.0, [&](Tick) { first = sim.now(); });
    s.execute(1000, 1.0, [&](Tick) { second = sim.now(); });
    sim.run();
    EXPECT_EQ(first, 1000u);
    EXPECT_EQ(second, 1000u);
}

TEST(ServerTest, UtilizationReflectsBusyFraction)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(2, 1000.0));
    s.execute(1000, 1.0, [](Tick) {});
    sim.runUntil(2000);
    // One of two cores busy for half the window: 25%.
    EXPECT_NEAR(s.utilizationAvg(), 0.25, 0.02);
}

TEST(ServerTest, StatResetClearsAccounting)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0));
    s.execute(1000, 1.0, [](Tick) {});
    sim.run();
    EXPECT_EQ(s.tasksCompleted(), 1u);
    s.statReset();
    EXPECT_EQ(s.tasksCompleted(), 0u);
    EXPECT_EQ(s.totalBusyTime(), 0u);
}

TEST(ServerTest, InFlightFrequencyChangeAffectsOnlyNewTasks)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(2, 1000.0));
    Tick first = 0, second = 0;
    s.execute(1000, 1.0, [&](Tick) { first = sim.now(); });
    s.setFrequencyMhz(500.0);
    s.execute(1000, 1.0, [&](Tick) { second = sim.now(); });
    sim.run();
    EXPECT_EQ(first, 1000u);  // started before the cap
    EXPECT_EQ(second, 2000u); // started after the cap
}

TEST(ClusterTest, AddAndAccessServers)
{
    Simulator sim;
    Cluster c(sim);
    c.addServers(3, tinyModel(2, 1000.0));
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.server(1).id(), 1u);
}

TEST(ClusterTest, RoundRobinCycles)
{
    Simulator sim;
    Cluster c(sim);
    c.addServers(3, tinyModel(1, 1000.0));
    EXPECT_EQ(c.nextServerRoundRobin().id(), 0u);
    EXPECT_EQ(c.nextServerRoundRobin().id(), 1u);
    EXPECT_EQ(c.nextServerRoundRobin().id(), 2u);
    EXPECT_EQ(c.nextServerRoundRobin().id(), 0u);
}

TEST(ClusterTest, SlowServerInjectionAndClear)
{
    Simulator sim;
    Cluster c(sim);
    c.addServers(4, tinyModel(1, 1000.0));
    c.injectSlowServers(2, 5.0);
    EXPECT_EQ(c.server(0).slowFactor(), 5.0);
    EXPECT_EQ(c.server(1).slowFactor(), 5.0);
    EXPECT_EQ(c.server(2).slowFactor(), 1.0);
    c.clearSlowServers();
    EXPECT_EQ(c.server(0).slowFactor(), 1.0);
}

TEST(ClusterTest, GlobalFrequencyCap)
{
    Simulator sim;
    Cluster c(sim);
    c.addServers(2, tinyModel(1, 2000.0));
    c.setAllFrequenciesMhz(1200.0);
    EXPECT_EQ(c.server(0).frequencyMhz(), 1200.0);
    EXPECT_EQ(c.server(1).frequencyMhz(), 1200.0);
}

TEST(ServerDeathTest, ZeroIpcPanics)
{
    Simulator sim;
    Server s(sim, 0, tinyModel(1, 1000.0));
    EXPECT_DEATH(s.execute(100, 0.0, [](Tick) {}), "IPC");
}

} // namespace
} // namespace uqsim::cpu
