/**
 * @file
 * Randomized stress test of the ladder-queue event scheduler against a
 * naive sorted-reference model.
 *
 * The reference model is an std::multiset ordered by (tick, seq) — the
 * specification of the queue's behaviour. Random interleavings of
 * schedule / cancel / pop (fixed seeds, ~100k ops per profile) must
 * produce identical pop sequences, identical live counts and identical
 * nextTick() answers. Delay profiles are chosen to exercise the
 * near-future bucket ring, the overflow heap, and the boundary between
 * them (including bucket-ring wrap-around).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/event_queue.hh"
#include "core/rng.hh"

namespace uqsim {
namespace {

struct RefEvent
{
    Tick when;
    std::uint64_t seq; // scheduling order, the FIFO tie-breaker
    int id;

    bool
    operator<(const RefEvent &o) const
    {
        if (when != o.when)
            return when < o.when;
        return seq < o.seq;
    }
};

struct StressProfile
{
    const char *name;
    /** Candidate delays ahead of the last popped tick. */
    std::vector<Tick> delaySpans;
    std::uint64_t seed;
};

class EventQueueStressTest
    : public ::testing::TestWithParam<StressProfile>
{};

TEST_P(EventQueueStressTest, MatchesReferenceModel)
{
    const StressProfile &profile = GetParam();
    Rng rng(profile.seed);

    EventQueue q;
    std::multiset<RefEvent> ref;
    // Outstanding (possibly fired or cancelled) handles with their
    // reference keys, so cancels can hit any past event.
    std::vector<std::pair<EventHandle, RefEvent>> handles;

    Tick now = 0;        // last popped tick
    std::uint64_t seq = 0;
    int nextId = 0;
    int lastPopped = -1;

    constexpr int kOps = 100000;
    for (int op = 0; op < kOps; ++op) {
        const double r = rng.uniform01();
        if (r < 0.55 || q.empty()) {
            // Schedule at a random delay from a profile-chosen span;
            // span 0 means "exactly now" to stress same-tick FIFO.
            const Tick span = profile.delaySpans[rng.uniformInt(
                profile.delaySpans.size())];
            const Tick when =
                now + (span == 0 ? 0 : rng.uniformInt(span));
            const int id = nextId++;
            EventHandle h =
                q.schedule(when, [&lastPopped, id] { lastPopped = id; });
            ref.insert(RefEvent{when, seq, id});
            handles.emplace_back(std::move(h), RefEvent{when, seq, id});
            ++seq;
        } else if (r < 0.70) {
            // Cancel a random handle; mirrors on the reference only if
            // the event has not fired yet.
            auto &[h, key] = handles[rng.uniformInt(handles.size())];
            const auto it = ref.find(key);
            const bool wasPending = it != ref.end();
            ASSERT_EQ(wasPending, h.valid() && !h.hasFired() &&
                                      !h.isCancelled());
            h.cancel();
            if (wasPending) {
                ref.erase(it);
                ASSERT_TRUE(h.isCancelled());
            }
        } else {
            ASSERT_FALSE(ref.empty());
            const RefEvent expect = *ref.begin();
            ASSERT_EQ(q.nextTick(), expect.when);
            auto [when, cb] = q.popNext();
            cb();
            ASSERT_EQ(when, expect.when);
            ASSERT_EQ(lastPopped, expect.id);
            ref.erase(ref.begin());
            now = when;
        }
        ASSERT_EQ(q.size(), ref.size());
        ASSERT_EQ(q.empty(), ref.empty());
    }

    // Drain: the full remaining order must match the reference.
    while (!ref.empty()) {
        const RefEvent expect = *ref.begin();
        auto [when, cb] = q.popNext();
        cb();
        ASSERT_EQ(when, expect.when);
        ASSERT_EQ(lastPopped, expect.id);
        ref.erase(ref.begin());
    }
    EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, EventQueueStressTest,
    ::testing::Values(
        // All delays inside the bucket ring (dense same-tick traffic).
        StressProfile{"short", {0, 1, 16, 500, 4000}, 1001},
        // Mostly overflow-heap traffic far beyond the ring.
        StressProfile{"long", {1u << 20, 1u << 24, 1u << 18}, 1002},
        // Mixed, straddling the ring/heap boundary so the same tick
        // can hold both bucketed and heap events.
        StressProfile{
            "mixed", {0, 100, 10000, 16384, 16500, 100000, 1u << 22},
            1003}),
    [](const ::testing::TestParamInfo<StressProfile> &info) {
        return info.param.name;
    });

} // namespace
} // namespace uqsim
