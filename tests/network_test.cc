/**
 * @file
 * Tests for the network fabric: delay composition, NIC queueing,
 * loopback, wireless links and the TCP/FPGA cost models.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "net/network.hh"

namespace uqsim::net {
namespace {

NetworkConfig
cfg()
{
    NetworkConfig c;
    c.wireLatency = 10 * kTicksPerUs;
    c.loopbackLatency = 5 * kTicksPerUs;
    c.linkGbps = 10.0;
    return c;
}

TEST(NetworkTest, DeliveryIncludesWireAndSerialization)
{
    Simulator sim;
    Network net(sim, cfg(), Rng(1));
    Tick at = 0, q = 0, p = 0;
    net.send(0, 1, 1250, [&](Tick queueing_tx, Tick prop) {
        at = sim.now();
        q = queueing_tx;
        p = prop;
    });
    sim.run();
    // 1250B at 10Gbps = 1us serialization + 10us wire.
    EXPECT_EQ(q, 1 * kTicksPerUs);
    EXPECT_EQ(p, 10 * kTicksPerUs);
    EXPECT_EQ(at, 11 * kTicksPerUs);
}

TEST(NetworkTest, LoopbackIsCheapAndLocal)
{
    Simulator sim;
    Network net(sim, cfg(), Rng(1));
    Tick at = 0, q = 99, p = 0;
    net.send(3, 3, 1 * kMiB, [&](Tick queueing_tx, Tick prop) {
        at = sim.now();
        q = queueing_tx;
        p = prop;
    });
    sim.run();
    EXPECT_EQ(q, 0u); // no NIC on the loopback path
    EXPECT_EQ(p, 5 * kTicksPerUs);
    EXPECT_EQ(at, 5 * kTicksPerUs);
}

TEST(NetworkTest, BackToBackMessagesQueueAtNic)
{
    Simulator sim;
    Network net(sim, cfg(), Rng(1));
    Tick first_q = 0, second_q = 0;
    net.send(0, 1, 12500, [&](Tick q, Tick) { first_q = q; });  // 10us tx
    net.send(0, 2, 12500, [&](Tick q, Tick) { second_q = q; }); // queued
    sim.run();
    EXPECT_EQ(first_q, 10 * kTicksPerUs);
    EXPECT_EQ(second_q, 20 * kTicksPerUs); // waited for the first
}

TEST(NetworkTest, SeparateSendersDoNotQueueOnEachOther)
{
    Simulator sim;
    Network net(sim, cfg(), Rng(1));
    Tick q0 = 0, q1 = 0;
    net.send(0, 2, 12500, [&](Tick q, Tick) { q0 = q; });
    net.send(1, 2, 12500, [&](Tick q, Tick) { q1 = q; });
    sim.run();
    EXPECT_EQ(q0, q1); // independent uplinks
}

TEST(NetworkTest, WirelessAddsLatencyAndLowBandwidth)
{
    Simulator sim;
    NetworkConfig c = cfg();
    c.wirelessLatency = 3 * kTicksPerMs;
    c.wirelessJitterSigma = 0.0; // deterministic for the test
    Network net(sim, c, Rng(1));
    net.attachWireless(5);
    Tick p = 0, q = 0;
    net.send(0, 5, 1250, [&](Tick queueing_tx, Tick prop) {
        q = queueing_tx;
        p = prop;
    });
    sim.run();
    EXPECT_EQ(p, 3 * kTicksPerMs);
    // 1250B at 0.05 Gbps = 200us serialization.
    EXPECT_EQ(q, 200 * kTicksPerUs);
}

TEST(NetworkTest, DroneToDroneCrossesRouterTwice)
{
    Simulator sim;
    NetworkConfig c = cfg();
    c.wirelessLatency = 1 * kTicksPerMs;
    c.wirelessJitterSigma = 0.0;
    Network net(sim, c, Rng(1));
    net.attachWireless(1);
    net.attachWireless(2);
    Tick p = 0;
    net.send(1, 2, 125, [&](Tick, Tick prop) { p = prop; });
    sim.run();
    EXPECT_EQ(p, 2 * kTicksPerMs);
}

TEST(NetworkTest, StatsCountMessagesAndBytes)
{
    Simulator sim;
    Network net(sim, cfg(), Rng(1));
    net.send(0, 1, 100, [](Tick, Tick) {});
    net.send(1, 0, 200, [](Tick, Tick) {});
    sim.run();
    EXPECT_EQ(net.messagesDelivered(), 2u);
    EXPECT_EQ(net.bytesDelivered(), 300u);
}

TEST(TcpCostModelTest, CostsScaleWithSize)
{
    TcpCostModel tcp;
    EXPECT_GT(tcp.sendCost(10000), tcp.sendCost(100));
    EXPECT_GT(tcp.recvCost(100), tcp.sendCost(100)); // interrupts cost
}

TEST(FpgaOffloadTest, HostCyclesFarBelowKernel)
{
    TcpCostModel tcp;
    FpgaOffloadModel fpga = FpgaOffloadModel::on();
    EXPECT_TRUE(fpga.enabled);
    EXPECT_LT(fpga.hostSendCycles * 10, tcp.sendCost(1000));
    EXPECT_FALSE(FpgaOffloadModel::off().enabled);
}

} // namespace
} // namespace uqsim::net
