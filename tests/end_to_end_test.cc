/**
 * @file
 * Integration tests across the full stack: queueing-theory sanity,
 * tracing consistency on the large graphs, slow-server tail-at-scale
 * properties and cross-module flows.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/catalog.hh"
#include "apps/social_network.hh"
#include "trace/analysis.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

using apps::AppId;
using apps::World;
using apps::WorldConfig;

WorldConfig
cfg(unsigned servers = 5)
{
    WorldConfig c;
    c.workerServers = servers;
    return c;
}

TEST(IntegrationTest, LittlesLawOnSingleTier)
{
    // L = lambda * W must hold for a stable single-tier system:
    // measured via completions, mean latency, and thread occupancy
    // integrated over time (we check the arrival-rate * wait form).
    WorldConfig c = cfg(2);
    World w(c);
    service::ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::exponential(500.0 * 1440.0));
    front.threadsPerInstance = 64;
    w.app->addService(std::move(front)).addInstance(w.worker(0));
    w.app->setEntry("front");
    w.app->addQueryType({"q", 1, 1.0, 0, {}});
    w.app->validate();

    auto r = workload::runLoad(*w.app, 1000.0, kTicksPerSec,
                               5 * kTicksPerSec, workload::QueryMix({1.0}),
                               workload::UserPopulation::uniform(50), 3);
    // Mean in-flight = lambda * W; W ~ service latency at the tier.
    const auto summary =
        trace::TraceAnalysis(w.app->traceStore()).forService("front");
    const double lambda = r.achievedQps;                 // per second
    const double wait_sec = summary.meanLatencyUs / 1e6; // seconds
    const double in_flight = lambda * wait_sec;
    // Utilization law cross-check: in-flight threads ~ busy time rate.
    const double busy = static_cast<double>(
                            w.app->service("front")
                                .instances()[0]
                                ->cpuBusyTime()) /
                        static_cast<double>(5 * kTicksPerSec);
    EXPECT_NEAR(in_flight, busy, 0.35 * in_flight);
}

TEST(IntegrationTest, TraceTreeMatchesGraphReachability)
{
    World w(cfg());
    apps::buildSocialNetwork(w);
    workload::runLoad(*w.app, 100.0, kTicksPerSec, 2 * kTicksPerSec,
                      workload::QueryMix::fromApp(*w.app),
                      workload::UserPopulation::uniform(100), 5);
    // Every span's service must exist, and every parent-child pair must
    // correspond to an edge of the dependency graph (or client->entry).
    const auto &store = w.app->traceStore();
    std::map<trace::SpanId, const trace::Span *> by_id;
    for (const auto &s : store.spans())
        by_id[s.spanId] = &s;
    unsigned checked = 0;
    const trace::ServiceId client_id = store.serviceId("client");
    for (const auto &s : store.spans()) {
        if (s.service == client_id)
            continue;
        const std::string &svc = store.serviceName(s.service);
        ASSERT_TRUE(w.app->hasService(svc)) << svc;
        auto parent = by_id.find(s.parentSpanId);
        if (parent == by_id.end())
            continue; // parent span sampled out
        if (parent->second->service == client_id) {
            EXPECT_EQ(svc, w.app->entry());
            continue;
        }
        const std::string &parent_svc =
            store.serviceName(parent->second->service);
        const auto targets =
            w.app->service(parent_svc).def().handler.callTargets();
        EXPECT_NE(std::find(targets.begin(), targets.end(), svc),
                  targets.end())
            << parent_svc << " -> " << svc;
        ++checked;
    }
    EXPECT_GT(checked, 100u);
}

TEST(IntegrationTest, SlowServerDegradesMicroservicesMore)
{
    // Fig 22c mechanism: one slow server hurts the microservices
    // deployment (every request touches many servers) much more than
    // the monolith (only requests landing on the slow instance).
    auto goodputFrac = [](bool monolith, bool inject_slow) {
        World w(cfg(10));
        apps::AppOptions opt;
        opt.instancesPerTier = 2;
        if (monolith)
            apps::buildSocialNetworkMonolith(w, opt);
        else
            apps::buildSocialNetwork(w, opt);
        // Balanced provisioning + a drastically slow back-end server,
        // as in bench_fig22_tail_at_scale panel (c).
        apps::throttleLogicTiers(*w.app, 24, 8);
        w.app->setQosLatency(60 * kTicksPerMs);
        if (inject_slow)
            w.cluster.server(2).setSlowFactor(300.0);
        auto r = workload::runLoad(
            *w.app, 1200.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix::fromApp(*w.app),
            workload::UserPopulation::uniform(500), 7);
        return r.goodputQps / std::max(1.0, r.achievedQps);
    };
    const double micro_healthy = goodputFrac(false, false);
    const double micro_slow = goodputFrac(false, true);
    const double mono_healthy = goodputFrac(true, false);
    const double mono_slow = goodputFrac(true, true);
    const double micro_loss = micro_healthy - micro_slow;
    const double mono_loss = mono_healthy - mono_slow;
    EXPECT_GT(micro_loss, mono_loss);
    EXPECT_GT(micro_loss, 0.2); // the slow server really hurts micro
}

TEST(IntegrationTest, SkewCollapsesGoodput)
{
    // Fig 22b mechanism: skewed users concentrate on single stateful
    // shards. Provision the stateful tiers tightly (Sec 3.8) so a hot
    // shard can actually become the bottleneck, and use a small user
    // population as in the paper's deployment (hundreds of users).
    auto goodput = [](double skew) {
        World w(cfg(5));
        apps::AppOptions opt;
        opt.cacheShards = 4;
        opt.dbShards = 4;
        apps::buildSocialNetwork(w, opt);
        apps::tightenStatefulTiers(*w.app, 11.0, 2, 8.0, 4);
        auto r = workload::runLoad(
            *w.app, 4000.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix::fromApp(*w.app),
            workload::UserPopulation::skewed(100, skew), 9);
        return r.goodputQps;
    };
    const double uniform = goodput(0.0);
    const double skewed = goodput(99.0);
    EXPECT_LT(skewed, 0.75 * uniform);
}

TEST(IntegrationTest, FpgaImprovesEndToEndTail)
{
    auto p99At = [](bool fpga) {
        WorldConfig c = cfg();
        if (fpga)
            c.appConfig.fpga = net::FpgaOffloadModel::on();
        World w(c);
        apps::buildSocialNetwork(w);
        auto r = workload::runLoad(
            *w.app, 300.0, kTicksPerSec, 3 * kTicksPerSec,
            workload::QueryMix::fromApp(*w.app),
            workload::UserPopulation::uniform(500), 11);
        return r;
    };
    const auto native = p99At(false);
    const auto offload = p99At(true);
    // Fig 16: end-to-end improves by 43% up to 2.2x.
    EXPECT_LT(offload.p50, native.p50);
    EXPECT_LT(offload.networkShare, native.networkShare);
}

TEST(IntegrationTest, EveryAppTracesConsistently)
{
    for (AppId id : apps::allApps()) {
        World w(cfg());
        apps::buildApp(w, id);
        const bool swarm =
            id == AppId::SwarmCloud || id == AppId::SwarmEdge;
        workload::runLoad(*w.app, swarm ? 3.0 : 80.0, kTicksPerSec,
                          2 * kTicksPerSec,
                          workload::QueryMix::fromApp(*w.app),
                          workload::UserPopulation::uniform(100), 13);
        const auto &store = w.app->traceStore();
        ASSERT_GT(store.size(), 0u) << apps::appName(id);
        for (const auto &s : store.spans()) {
            EXPECT_GE(s.end, s.start);
            EXPECT_LE(s.queueTime, s.duration());
        }
    }
}

} // namespace
} // namespace uqsim
