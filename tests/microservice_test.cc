/**
 * @file
 * Tests for Microservice tiers and instance selection.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "service/app.hh"

namespace uqsim::service {
namespace {

class MicroserviceTest : public ::testing::Test
{
  protected:
    MicroserviceTest() : world_(makeConfig()) {}

    static apps::WorldConfig
    makeConfig()
    {
        apps::WorldConfig c;
        c.workerServers = 4;
        return c;
    }

    ServiceDef
    statelessDef(const std::string &name)
    {
        ServiceDef def;
        def.name = name;
        def.handler.compute(Dist::constant(1000.0));
        return def;
    }

    apps::World world_;
};

TEST_F(MicroserviceTest, AddInstancePlacesOnServer)
{
    Microservice &svc = world_.app->addService(statelessDef("svc"));
    Instance &inst = svc.addInstance(world_.worker(2));
    EXPECT_EQ(inst.server().id(), 2u);
    EXPECT_EQ(inst.index(), 0u);
    EXPECT_EQ(svc.instances().size(), 1u);
    EXPECT_EQ(svc.activeInstances(), 1u);
}

TEST_F(MicroserviceTest, StatelessSelectionRoundRobins)
{
    Microservice &svc = world_.app->addService(statelessDef("svc"));
    svc.addInstance(world_.worker(0));
    svc.addInstance(world_.worker(1));
    svc.addInstance(world_.worker(2));
    Request req;
    std::vector<unsigned> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(svc.selectInstance(req).index());
    EXPECT_EQ(picks, (std::vector<unsigned>{0, 1, 2, 0, 1, 2}));
}

TEST_F(MicroserviceTest, InactiveInstancesSkipped)
{
    Microservice &svc = world_.app->addService(statelessDef("svc"));
    svc.addInstance(world_.worker(0));
    Instance &warming = svc.addInstance(world_.worker(1));
    warming.setActive(false);
    EXPECT_EQ(svc.activeInstances(), 1u);
    Request req;
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(svc.selectInstance(req).index(), 0u);
}

TEST_F(MicroserviceTest, ShardedSelectionIsStablePerUser)
{
    ServiceDef def = statelessDef("db");
    def.kind = ServiceKind::Database;
    Microservice &svc = world_.app->addService(std::move(def));
    for (int i = 0; i < 4; ++i)
        svc.addInstance(world_.worker(i % 4));
    Request req;
    req.userId = 1234;
    const unsigned first = svc.selectInstance(req).index();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(svc.selectInstance(req).index(), first);
    // Different users spread over shards.
    std::set<unsigned> shards;
    for (std::uint64_t u = 0; u < 64; ++u) {
        req.userId = u;
        shards.insert(svc.selectInstance(req).index());
    }
    EXPECT_GT(shards.size(), 2u);
}

TEST_F(MicroserviceTest, CacheKindShardsLikeDatabase)
{
    ServiceDef def = statelessDef("cache");
    def.kind = ServiceKind::Cache;
    Microservice &svc = world_.app->addService(std::move(def));
    svc.addInstance(world_.worker(0));
    svc.addInstance(world_.worker(1));
    Request a, b;
    a.userId = 42;
    b.userId = 42;
    EXPECT_EQ(svc.selectInstance(a).index(), svc.selectInstance(b).index());
}

TEST_F(MicroserviceTest, SetThreadsPerInstanceUpdatesIdleInstances)
{
    Microservice &svc = world_.app->addService(statelessDef("svc"));
    Instance &inst = svc.addInstance(world_.worker(0));
    EXPECT_EQ(inst.freeThreads(), 16u); // default
    svc.setThreadsPerInstance(64);
    EXPECT_EQ(inst.freeThreads(), 64u);
    EXPECT_EQ(svc.def().threadsPerInstance, 64u);
}

TEST_F(MicroserviceTest, OccupancyStartsAtZero)
{
    Microservice &svc = world_.app->addService(statelessDef("svc"));
    Instance &inst = svc.addInstance(world_.worker(0));
    EXPECT_EQ(inst.occupancy(), 0.0);
    EXPECT_EQ(svc.meanOccupancy(), 0.0);
    EXPECT_EQ(svc.meanQueueLength(), 0.0);
}

TEST_F(MicroserviceTest, KindNames)
{
    EXPECT_EQ(serviceKindName(ServiceKind::Frontend), "frontend");
    EXPECT_EQ(serviceKindName(ServiceKind::Stateless), "stateless");
    EXPECT_EQ(serviceKindName(ServiceKind::Cache), "cache");
    EXPECT_EQ(serviceKindName(ServiceKind::Database), "database");
}

} // namespace
} // namespace uqsim::service
