/**
 * @file
 * Tests for HTTP/1-style blocking connection pools (the Fig 17B
 * backpressure primitive).
 */

#include <gtest/gtest.h>

#include <vector>

#include "rpc/connection_pool.hh"

namespace uqsim::rpc {
namespace {

TEST(ConnectionPoolTest, NonBlockingAlwaysGrants)
{
    ConnectionPool pool(1, /*blocking=*/false);
    int granted = 0;
    for (int i = 0; i < 10; ++i)
        pool.acquire([&] { ++granted; });
    EXPECT_EQ(granted, 10);
    EXPECT_EQ(pool.waiting(), 0u);
    EXPECT_EQ(pool.blockedAcquires(), 0u);
}

TEST(ConnectionPoolTest, BlockingGrantsUpToCapacity)
{
    ConnectionPool pool(2, /*blocking=*/true);
    int granted = 0;
    for (int i = 0; i < 5; ++i)
        pool.acquire([&] { ++granted; });
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(pool.inUse(), 2u);
    EXPECT_EQ(pool.waiting(), 3u);
    EXPECT_EQ(pool.blockedAcquires(), 3u);
}

TEST(ConnectionPoolTest, ReleaseGrantsFifo)
{
    ConnectionPool pool(1, true);
    std::vector<int> order;
    pool.acquire([&] { order.push_back(0); });
    pool.acquire([&] { order.push_back(1); });
    pool.acquire([&] { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{0}));
    pool.release();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    pool.release();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(pool.inUse(), 1u); // last grant still holds it
}

TEST(ConnectionPoolTest, ReleaseWithoutWaitersFreesConnection)
{
    ConnectionPool pool(2, true);
    pool.acquire([] {});
    pool.release();
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(ConnectionPoolTest, PeakWaitingTracksHighWatermark)
{
    ConnectionPool pool(1, true);
    for (int i = 0; i < 4; ++i)
        pool.acquire([] {});
    EXPECT_EQ(pool.peakWaiting(), 3u);
    pool.release();
    pool.release();
    EXPECT_EQ(pool.peakWaiting(), 3u);
}

TEST(ConnectionPoolTest, CancelledWaiterNeverRuns)
{
    ConnectionPool pool(1, true);
    pool.acquire([] {});
    bool ran = false;
    const ConnectionPool::Ticket t = pool.acquire([&] { ran = true; });
    ASSERT_NE(t, ConnectionPool::kGrantedImmediately);
    EXPECT_TRUE(pool.cancel(t));
    EXPECT_FALSE(pool.cancel(t)); // second cancel is a no-op
    pool.release();
    EXPECT_FALSE(ran);
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(ConnectionPoolTest, ReentrantGrantCanReacquireAndRelease)
{
    // A waiter granted synchronously from inside release() immediately
    // finishes its (zero-cost) call and releases again, granting the
    // next waiter — recursion through release() must not corrupt the
    // pool or skip waiters.
    ConnectionPool pool(1, true);
    std::vector<int> order;
    pool.acquire([&] { order.push_back(0); });
    for (int i = 1; i <= 3; ++i)
        pool.acquire([&, i] {
            order.push_back(i);
            pool.release(); // cascades to the next waiter
        });
    EXPECT_EQ(pool.waiting(), 3u);
    pool.release(); // releases 0; grants 1 -> 2 -> 3 recursively
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.waiting(), 0u);
}

TEST(ConnectionPoolTest, ReentrantAcquireInsideGrantParksAgain)
{
    // A grant callback that immediately re-acquires must park (the
    // connection it holds is the only one), not self-deadlock or
    // double-grant.
    ConnectionPool pool(1, true);
    int outer = 0, inner = 0;
    pool.acquire([&] { ++outer; });
    pool.acquire([&] {
        ++outer;
        pool.acquire([&] { ++inner; });
    });
    EXPECT_EQ(outer, 1);
    pool.release(); // grants the second acquire, which parks a third
    EXPECT_EQ(outer, 2);
    EXPECT_EQ(inner, 0);
    EXPECT_EQ(pool.waiting(), 1u);
    pool.release();
    EXPECT_EQ(inner, 1);
    EXPECT_EQ(pool.inUse(), 1u);
}

TEST(ConnectionPoolTest, PeakWaitingSurvivesChurn)
{
    // Alternating acquire/release churn must keep the high watermark,
    // and cancelled waiters still count toward it.
    ConnectionPool pool(1, true);
    pool.acquire([] {});
    std::vector<ConnectionPool::Ticket> parked;
    for (int i = 0; i < 5; ++i)
        parked.push_back(pool.acquire([] {}));
    EXPECT_EQ(pool.peakWaiting(), 5u);
    for (ConnectionPool::Ticket t : parked)
        EXPECT_TRUE(pool.cancel(t));
    EXPECT_EQ(pool.waiting(), 0u);
    for (int i = 0; i < 3; ++i) {
        pool.acquire([] {});
        pool.release();
    }
    EXPECT_EQ(pool.peakWaiting(), 5u);
    EXPECT_EQ(pool.blockedAcquires(), 8u);
}

TEST(ConnectionPoolDeathTest, OverReleasePanics)
{
    ConnectionPool pool(1, true);
    EXPECT_DEATH(pool.release(), "no connection");
}

} // namespace
} // namespace uqsim::rpc
