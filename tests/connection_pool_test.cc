/**
 * @file
 * Tests for HTTP/1-style blocking connection pools (the Fig 17B
 * backpressure primitive).
 */

#include <gtest/gtest.h>

#include <vector>

#include "rpc/connection_pool.hh"

namespace uqsim::rpc {
namespace {

TEST(ConnectionPoolTest, NonBlockingAlwaysGrants)
{
    ConnectionPool pool(1, /*blocking=*/false);
    int granted = 0;
    for (int i = 0; i < 10; ++i)
        pool.acquire([&] { ++granted; });
    EXPECT_EQ(granted, 10);
    EXPECT_EQ(pool.waiting(), 0u);
    EXPECT_EQ(pool.blockedAcquires(), 0u);
}

TEST(ConnectionPoolTest, BlockingGrantsUpToCapacity)
{
    ConnectionPool pool(2, /*blocking=*/true);
    int granted = 0;
    for (int i = 0; i < 5; ++i)
        pool.acquire([&] { ++granted; });
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(pool.inUse(), 2u);
    EXPECT_EQ(pool.waiting(), 3u);
    EXPECT_EQ(pool.blockedAcquires(), 3u);
}

TEST(ConnectionPoolTest, ReleaseGrantsFifo)
{
    ConnectionPool pool(1, true);
    std::vector<int> order;
    pool.acquire([&] { order.push_back(0); });
    pool.acquire([&] { order.push_back(1); });
    pool.acquire([&] { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{0}));
    pool.release();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    pool.release();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(pool.inUse(), 1u); // last grant still holds it
}

TEST(ConnectionPoolTest, ReleaseWithoutWaitersFreesConnection)
{
    ConnectionPool pool(2, true);
    pool.acquire([] {});
    pool.release();
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(ConnectionPoolTest, PeakWaitingTracksHighWatermark)
{
    ConnectionPool pool(1, true);
    for (int i = 0; i < 4; ++i)
        pool.acquire([] {});
    EXPECT_EQ(pool.peakWaiting(), 3u);
    pool.release();
    pool.release();
    EXPECT_EQ(pool.peakWaiting(), 3u);
}

TEST(ConnectionPoolDeathTest, OverReleasePanics)
{
    ConnectionPool pool(1, true);
    EXPECT_DEATH(pool.release(), "no connection");
}

} // namespace
} // namespace uqsim::rpc
