/**
 * @file
 * Determinism regression tests.
 *
 * The simulator's core guarantee is that a run is a pure function of
 * its configuration and seed. These tests drive the full social-network
 * application — cluster, network, RPC stack, tracing — twice with the
 * same seed and require the execution digests (FNV-1a over every
 * executed (tick, seq) pair, see EventQueue::executionDigest()) and the
 * exported traces to be byte-identical, and a different seed to produce
 * a different digest. Any nondeterminism anywhere in the stack (map
 * iteration order, uninitialised reads, pointer-keyed containers)
 * breaks this immediately.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/social_network.hh"
#include "trace/export.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

struct RunArtifacts
{
    std::uint64_t digest = 0;
    std::uint64_t executed = 0;
    std::string traceJson;
    std::string runJson;
};

RunArtifacts
runSocialNetwork(std::uint64_t seed, bool tracing = true,
                 std::uint64_t sample_every = 1)
{
    apps::WorldConfig c;
    c.workerServers = 5;
    c.seed = seed;
    c.appConfig.tracing = tracing;
    c.appConfig.traceSampleEvery = sample_every;
    apps::World w(c);
    apps::buildSocialNetwork(w);
    workload::runLoad(*w.app, 200.0, kTicksPerSec / 10,
                      3 * kTicksPerSec / 10,
                      workload::QueryMix::fromApp(*w.app),
                      workload::UserPopulation::uniform(100), seed);
    RunArtifacts a;
    a.digest = w.sim.executionDigest();
    a.executed = w.sim.eventsExecuted();
    a.traceJson = trace::toZipkinJson(w.app->traceStore());
    a.runJson = trace::toRunJson(w.app->traceStore(), a.digest);
    return a;
}

TEST(DeterminismTest, SameSeedSameDigestAndTrace)
{
    const RunArtifacts first = runSocialNetwork(123);
    const RunArtifacts second = runSocialNetwork(123);

    EXPECT_GT(first.executed, 5000u); // the run actually did work
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(first.executed, second.executed);
    EXPECT_EQ(first.traceJson, second.traceJson);
    EXPECT_EQ(first.runJson, second.runJson);
}

TEST(DeterminismTest, DifferentSeedDifferentDigest)
{
    const RunArtifacts a = runSocialNetwork(123);
    const RunArtifacts b = runSocialNetwork(124);
    EXPECT_NE(a.digest, b.digest);
}

TEST(DeterminismTest, TracingIsObservationOnly)
{
    // Collection must never influence the simulation: the digest is
    // identical whether spans are kept, sampled down, or dropped.
    const RunArtifacts traced = runSocialNetwork(123, true);
    const RunArtifacts sampled = runSocialNetwork(123, true, 16);
    const RunArtifacts untraced = runSocialNetwork(123, false);
    EXPECT_EQ(traced.digest, untraced.digest);
    EXPECT_EQ(traced.digest, sampled.digest);
    EXPECT_EQ(traced.executed, untraced.executed);
    EXPECT_GT(traced.traceJson.size(), sampled.traceJson.size());
    EXPECT_EQ(untraced.traceJson, "[]\n");
}

TEST(DeterminismTest, RunJsonEmbedsDigest)
{
    const RunArtifacts a = runSocialNetwork(123);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(a.digest));
    EXPECT_NE(a.runJson.find(hex), std::string::npos);
}

} // namespace
} // namespace uqsim
