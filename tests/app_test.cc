/**
 * @file
 * End-to-end tests of the App runtime on small purpose-built graphs:
 * request completion, accounting, tracing consistency, tagging,
 * caching, drops, media payloads and the FPGA offload.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "service/app.hh"
#include "trace/analysis.hh"

namespace uqsim::service {
namespace {

/** Fixture building a three-tier app: front -> mid -> leaf. */
class AppTest : public ::testing::Test
{
  protected:
    AppTest() : world_(makeConfig()) {}

    static apps::WorldConfig
    makeConfig()
    {
        apps::WorldConfig c;
        c.workerServers = 3;
        return c;
    }

    void
    buildChain(unsigned threads = 16)
    {
        App &app = *world_.app;
        ServiceDef leaf;
        leaf.name = "leaf";
        leaf.handler.compute(Dist::constant(50000.0)); // ~35us
        leaf.threadsPerInstance = threads;
        app.addService(std::move(leaf)).addInstance(world_.worker(2));

        ServiceDef mid;
        mid.name = "mid";
        mid.handler.compute(Dist::constant(80000.0)).call("leaf");
        mid.threadsPerInstance = threads;
        app.addService(std::move(mid)).addInstance(world_.worker(1));

        ServiceDef front;
        front.name = "front";
        front.kind = ServiceKind::Frontend;
        front.handler.compute(Dist::constant(40000.0)).call("mid");
        front.threadsPerInstance = threads;
        app.addService(std::move(front)).addInstance(world_.worker(0));

        app.setEntry("front");
        app.addQueryType({"q", 1.0, 1.0, 0, {}});
        app.validate();
    }

    apps::World world_;
};

TEST_F(AppTest, SingleRequestCompletes)
{
    buildChain();
    bool done = false;
    Request result;
    world_.app->inject(0, 7, [&](const Request &r) {
        done = true;
        result = r;
    });
    world_.sim.run();
    ASSERT_TRUE(done);
    EXPECT_FALSE(result.dropped);
    EXPECT_GT(result.latency(), 0u);
    EXPECT_GT(result.appTime, 0u);
    EXPECT_GT(result.networkTime, 0u);
    EXPECT_EQ(world_.app->completed(), 1u);
    EXPECT_EQ(world_.app->injected(), 1u);
}

TEST_F(AppTest, LatencyContainsComputeAndWire)
{
    buildChain();
    Tick latency = 0;
    world_.app->inject(0, 7, [&](const Request &r) { latency = r.latency(); });
    world_.sim.run();
    // At least the three compute stages plus 6 wire crossings.
    EXPECT_GT(latency, 150 * kTicksPerUs);
    EXPECT_LT(latency, 5 * kTicksPerMs); // sane upper bound unloaded
}

TEST_F(AppTest, AccountingPartsDoNotExceedLatency)
{
    buildChain();
    Request out;
    world_.app->inject(0, 7, [&](const Request &r) { out = r; });
    world_.sim.run();
    // Sequential chain: work components must fit inside the wall time.
    EXPECT_LE(out.appTime, out.latency());
    EXPECT_LE(out.networkTime + out.appTime + out.wireTime + out.queueTime,
              out.latency() + 1000u);
}

TEST_F(AppTest, SpansFormCompleteTree)
{
    buildChain();
    world_.app->inject(0, 7);
    world_.sim.run();
    const auto &store = world_.app->traceStore();
    ASSERT_EQ(store.size(), 4u); // client root + 3 services
    const auto spans = store.byTrace(store.spans()[0].traceId);
    ASSERT_EQ(spans.size(), 4u);
    int roots = 0;
    for (const auto &s : spans)
        if (s.parentSpanId == trace::kNoParent)
            ++roots;
    EXPECT_EQ(roots, 1);
    // Every non-root parent id exists within the trace.
    for (const auto &s : spans) {
        if (s.parentSpanId == trace::kNoParent)
            continue;
        bool found = false;
        for (const auto &p : spans)
            if (p.spanId == s.parentSpanId)
                found = true;
        EXPECT_TRUE(found) << s.service;
    }
}

TEST_F(AppTest, SpanNestingRespectsCallOrder)
{
    buildChain();
    world_.app->inject(0, 7);
    world_.sim.run();
    const auto &store = world_.app->traceStore();
    trace::Span front, mid, leaf;
    for (const auto &s : store.spans()) {
        if (s.service == store.serviceId("front"))
            front = s;
        if (s.service == store.serviceId("mid"))
            mid = s;
        if (s.service == store.serviceId("leaf"))
            leaf = s;
    }
    EXPECT_LE(front.start, mid.start);
    EXPECT_LE(mid.start, leaf.start);
    EXPECT_GE(front.end, mid.end);
    EXPECT_GE(mid.end, leaf.end);
    EXPECT_EQ(mid.parentSpanId, front.spanId);
    EXPECT_EQ(leaf.parentSpanId, mid.spanId);
}

TEST_F(AppTest, TracingOffKeepsStoreEmpty)
{
    world_.app.reset();
    // Rebuild a world with tracing disabled.
    apps::WorldConfig c = makeConfig();
    c.appConfig.tracing = false;
    apps::World w2(c);
    ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(1000.0));
    w2.app->addService(std::move(front)).addInstance(w2.worker(0));
    w2.app->setEntry("front");
    w2.app->addQueryType({"q", 1.0, 1.0, 0, {}});
    w2.app->inject(0, 1);
    w2.sim.run();
    EXPECT_EQ(w2.app->traceStore().size(), 0u);
    EXPECT_EQ(w2.app->completed(), 1u);
}

TEST_F(AppTest, TaggedStagesOnlyRunForMatchingQueries)
{
    App &app = *world_.app;
    ServiceDef extra;
    extra.name = "extra";
    extra.handler.compute(Dist::constant(1000.0));
    app.addService(std::move(extra)).addInstance(world_.worker(1));

    ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(1000.0))
        .callTagged("special", "extra");
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    const unsigned plain = app.addQueryType({"plain", 1, 1.0, 0, {}});
    const unsigned special =
        app.addQueryType({"special", 1, 1.0, 0, {"special"}});
    app.validate();

    app.inject(plain, 1);
    world_.sim.run();
    EXPECT_EQ(app.service("extra").instances()[0]->served(), 0u);
    app.inject(special, 1);
    world_.sim.run();
    EXPECT_EQ(app.service("extra").instances()[0]->served(), 1u);
}

TEST_F(AppTest, ComputeScaleStretchesLatency)
{
    App &app = *world_.app;
    ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(1000000.0)); // ~0.7ms
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    const unsigned small = app.addQueryType({"small", 1, 1.0, 0, {}});
    const unsigned big = app.addQueryType({"big", 1, 4.0, 0, {}});
    app.validate();

    Tick lat_small = 0, lat_big = 0;
    app.inject(small, 1, [&](const Request &r) { lat_small = r.latency(); });
    world_.sim.run();
    app.inject(big, 1, [&](const Request &r) { lat_big = r.latency(); });
    world_.sim.run();
    EXPECT_GT(lat_big, 2 * lat_small);
}

TEST_F(AppTest, CacheMissesHitDatabase)
{
    App &app = *world_.app;
    ServiceDef db;
    db.name = "db";
    db.kind = ServiceKind::Database;
    db.handler.compute(Dist::constant(1000.0));
    app.addService(std::move(db)).addInstance(world_.worker(2));
    ServiceDef cache;
    cache.name = "cache";
    cache.kind = ServiceKind::Cache;
    cache.handler.compute(Dist::constant(500.0));
    app.addService(std::move(cache)).addInstance(world_.worker(1));
    ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(500.0)).cache("cache", "db", 0.8);
    front.threadsPerInstance = 64;
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.validate();

    const int n = 2000;
    for (int i = 0; i < n; ++i)
        app.inject(0, static_cast<std::uint64_t>(i));
    world_.sim.run();
    const auto cache_served =
        app.service("cache").instances()[0]->served();
    const auto db_served = app.service("db").instances()[0]->served();
    EXPECT_EQ(cache_served, static_cast<std::uint64_t>(n));
    EXPECT_NEAR(static_cast<double>(db_served), 0.2 * n, 0.03 * n);
}

TEST_F(AppTest, ProbabilisticStageFrequency)
{
    App &app = *world_.app;
    ServiceDef maybe;
    maybe.name = "maybe";
    maybe.handler.compute(Dist::constant(500.0));
    app.addService(std::move(maybe)).addInstance(world_.worker(1));
    ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(500.0))
        .callWithProbability("maybe", 0.3);
    front.threadsPerInstance = 64;
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.validate();
    const int n = 3000;
    for (int i = 0; i < n; ++i)
        app.inject(0, 1);
    world_.sim.run();
    const double frac =
        static_cast<double>(app.service("maybe").instances()[0]->served()) /
        n;
    EXPECT_NEAR(frac, 0.3, 0.03);
}

TEST_F(AppTest, QueueOverflowDropsRequests)
{
    App &app = *world_.app;
    ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(100000000.0)); // ~70ms each
    front.threadsPerInstance = 1;
    front.queueCapacity = 4;
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.validate();
    for (int i = 0; i < 50; ++i)
        app.inject(0, 1);
    world_.sim.run();
    EXPECT_GT(app.droppedRequests(), 0u);
    EXPECT_EQ(app.droppedRequests() + app.completed(), 50u);
    EXPECT_GT(app.service("front").totalDropped(), 0u);
}

TEST_F(AppTest, ParallelFanoutFasterThanSequential)
{
    App &app = *world_.app;
    ServiceDef leaf;
    leaf.name = "leaf";
    leaf.handler.compute(Dist::constant(2000000.0)); // ~1.4ms
    leaf.threadsPerInstance = 16;
    app.addService(std::move(leaf)).addInstance(world_.worker(1));
    ServiceDef par;
    par.name = "par";
    par.handler.parallelCall("leaf", 4);
    app.addService(std::move(par)).addInstance(world_.worker(0));
    ServiceDef seq;
    seq.name = "seq";
    seq.handler.call("leaf", 4);
    app.addService(std::move(seq)).addInstance(world_.worker(2));
    ServiceDef front;
    front.name = "front";
    front.handler.callTagged("par", "par").callTagged("seq", "seq");
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    const unsigned qpar = app.addQueryType({"par", 1, 1.0, 0, {"par"}});
    const unsigned qseq = app.addQueryType({"seq", 1, 1.0, 0, {"seq"}});
    app.validate();

    Tick lat_par = 0, lat_seq = 0;
    app.inject(qpar, 1, [&](const Request &r) { lat_par = r.latency(); });
    world_.sim.run();
    app.inject(qseq, 1, [&](const Request &r) { lat_seq = r.latency(); });
    world_.sim.run();
    EXPECT_LT(lat_par, lat_seq);
    EXPECT_GT(lat_seq, 2 * lat_par / 2); // sanity
    EXPECT_LT(lat_par * 2, lat_seq);     // ~4x vs ~1x leaf time
}

TEST_F(AppTest, MediaPayloadOnlyOnFlaggedEdges)
{
    App &app = *world_.app;
    ServiceDef plain;
    plain.name = "plain";
    plain.handler.compute(Dist::constant(500.0));
    app.addService(std::move(plain)).addInstance(world_.worker(1));
    ServiceDef media;
    media.name = "media";
    media.handler.compute(Dist::constant(500.0));
    app.addService(std::move(media)).addInstance(world_.worker(2));
    ServiceDef front;
    front.name = "front";
    front.handler.call("plain").callWithMedia("media");
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    app.addQueryType({"q", 1, 1.0, 4 * kMiB, {}});
    app.validate();

    app.inject(0, 1);
    world_.sim.run();
    // 4MiB at 10Gbps is ~3.3ms of serialization on the media edge; the
    // plain edge must stay microseconds. Compare span network shares.
    const auto &store = app.traceStore();
    Tick plain_net = 0, media_net = 0;
    for (const auto &s : store.spans()) {
        if (s.service == store.serviceId("front")) {
            // front's span includes both downstream transfers
            continue;
        }
        if (s.service == store.serviceId("plain"))
            plain_net = s.networkTime;
        if (s.service == store.serviceId("media"))
            media_net = s.networkTime;
    }
    EXPECT_LT(plain_net, 200 * kTicksPerUs);
    EXPECT_GT(media_net, 200 * kTicksPerUs);
}

TEST_F(AppTest, FpgaOffloadCutsNetworkTime)
{
    buildChain();
    Request native;
    world_.app->inject(0, 7, [&](const Request &r) { native = r; });
    world_.sim.run();

    world_.app->setFpga(net::FpgaOffloadModel::on());
    Request offloaded;
    world_.app->inject(0, 7, [&](const Request &r) { offloaded = r; });
    world_.sim.run();
    // Kernel TCP work disappears; Thrift marshalling stays on the
    // host, so the reduction is large but bounded.
    EXPECT_LT(offloaded.networkTime, native.networkTime / 2);
    EXPECT_LT(offloaded.latency(), native.latency());
}

TEST_F(AppTest, StatResetClearsMeasurements)
{
    buildChain();
    world_.app->inject(0, 1);
    world_.sim.run();
    EXPECT_EQ(world_.app->completed(), 1u);
    world_.app->statReset();
    EXPECT_EQ(world_.app->completed(), 0u);
    EXPECT_EQ(world_.app->endToEndLatency().count(), 0u);
    EXPECT_EQ(world_.app->traceStore().size(), 0u);
}

TEST_F(AppTest, DotExportContainsGraph)
{
    buildChain();
    const std::string dot = world_.app->exportDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("\"front\" -> \"mid\""), std::string::npos);
    EXPECT_NE(dot.find("\"mid\" -> \"leaf\""), std::string::npos);
    EXPECT_NE(dot.find("client"), std::string::npos);
}

TEST_F(AppTest, ValidateCatchesMissingTarget)
{
    App &app = *world_.app;
    ServiceDef front;
    front.name = "front";
    front.handler.call("ghost");
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    EXPECT_DEATH(app.validate(), "unknown");
}

TEST_F(AppTest, ValidateCatchesSelfCall)
{
    App &app = *world_.app;
    ServiceDef front;
    front.name = "front";
    front.handler.call("front");
    app.addService(std::move(front)).addInstance(world_.worker(0));
    app.setEntry("front");
    EXPECT_DEATH(app.validate(), "itself");
}

TEST_F(AppTest, DuplicateServiceNameFatal)
{
    App &app = *world_.app;
    ServiceDef a;
    a.name = "dup";
    a.handler.compute(Dist::constant(1.0));
    app.addService(a);
    EXPECT_DEATH(app.addService(a), "duplicate");
}

} // namespace
} // namespace uqsim::service
