/**
 * @file
 * Unit tests of the telemetry building blocks: the clock-observer hook
 * (boundaries fire *between* events and never perturb the execution
 * digest), the bounded Series ring and TimeSeriesStore, the SloMonitor
 * streak machine, and the Pipeline sampling a real two-tier app.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/builder.hh"
#include "core/parallel.hh"
#include "core/simulator.hh"
#include "obs/pipeline.hh"
#include "obs/slo.hh"
#include "obs/timeseries.hh"
#include "service/app.hh"
#include "workload/generators.hh"

namespace uqsim {
namespace {

// -- Clock observers ---------------------------------------------------

TEST(ClockObserverTest, FiresBetweenEventsAtEachBoundary)
{
    Simulator sim;
    std::vector<std::string> log;
    for (Tick t : {Tick{5}, Tick{15}, Tick{25}})
        sim.scheduleAt(t, [&log, t] {
            log.push_back("event@" + std::to_string(t));
        });
    sim.addClockObserver(10, [&log](Tick boundary) {
        log.push_back("tick@" + std::to_string(boundary));
    });
    sim.runUntil(30);

    // Boundary B fires after every event < B and before any event
    // >= B; runUntil flushes boundaries <= deadline at the end.
    const std::vector<std::string> expect = {
        "event@5",  "tick@10", "event@15", "tick@20",
        "event@25", "tick@30",
    };
    EXPECT_EQ(log, expect);
    EXPECT_EQ(sim.now(), Tick{30});
}

TEST(ClockObserverTest, LazyFiringCatchesUpOverQuietGaps)
{
    Simulator sim;
    std::vector<Tick> boundaries;
    sim.scheduleAt(5, [] {});
    sim.scheduleAt(47, [] {});
    sim.addClockObserver(10, [&](Tick b) { boundaries.push_back(b); });
    sim.run();
    // Before executing the t=47 event, every boundary of the quiet
    // gap fires, in order.
    const std::vector<Tick> expect = {10, 20, 30, 40};
    EXPECT_EQ(boundaries, expect);
}

TEST(ClockObserverTest, ObserverLeavesDigestUntouched)
{
    auto run = [](bool observed) {
        Simulator sim;
        std::uint64_t fired = 0;
        if (observed)
            sim.addClockObserver(7, [&fired](Tick) { ++fired; });
        unsigned n = 0;
        for (unsigned i = 0; i < 200; ++i)
            sim.scheduleAt(i * 3 + 1, [&n] { ++n; });
        sim.runUntil(1000);
        return std::pair<std::uint64_t, std::uint64_t>(
            sim.executionDigest(), fired);
    };
    const auto plain = run(false);
    const auto with = run(true);
    EXPECT_EQ(plain.first, with.first)
        << "clock observers must never perturb the event stream";
    EXPECT_GT(with.second, 0u);
}

TEST(ClockObserverTest, ParallelShardsObserveIndependently)
{
    auto run = [](unsigned threads) {
        ParallelSimulator engine({2, kMaxTick, threads});
        std::vector<std::vector<Tick>> fired(2);
        for (unsigned s = 0; s < 2; ++s) {
            engine.addClockObserver(
                s, 10, [&fired, s](Tick b) { fired[s].push_back(b); });
            SimContext ctx = engine.context(s);
            for (unsigned i = 1; i <= 5; ++i)
                ctx.schedule(i * 8, [] {});
        }
        engine.runFor(50);
        return std::pair<std::uint64_t,
                         std::vector<std::vector<Tick>>>(
            engine.executionDigest(), fired);
    };
    const auto one = run(1);
    const auto four = run(4);
    EXPECT_EQ(one.first, four.first);
    EXPECT_EQ(one.second, four.second)
        << "boundary sequence must be invariant to the thread count";
    const std::vector<Tick> expect = {10, 20, 30, 40, 50};
    EXPECT_EQ(one.second[0], expect);
    EXPECT_EQ(one.second[1], expect);
}

// -- Series / store ----------------------------------------------------

obs::IntervalSample
row(Tick start, Tick end, std::uint64_t count = 1,
    std::uint64_t errors = 0)
{
    obs::IntervalSample s;
    s.start = start;
    s.end = end;
    s.count = count;
    s.errors = errors;
    const std::uint64_t fin = count + errors;
    s.errorRate =
        fin ? static_cast<double>(errors) / static_cast<double>(fin)
            : 0.0;
    return s;
}

TEST(SeriesTest, RingEvictsOldestAndKeepsOrder)
{
    obs::Series s("tier", 3);
    for (Tick t = 0; t < 5; ++t)
        s.append(row(t * 10, (t + 1) * 10));
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.total(), 5u);
    EXPECT_EQ(s.evicted(), 2u);
    // Oldest-first iteration over the survivors: intervals 2, 3, 4.
    EXPECT_EQ(s.at(0).start, Tick{20});
    EXPECT_EQ(s.at(1).start, Tick{30});
    EXPECT_EQ(s.at(2).start, Tick{40});
    EXPECT_EQ(s.latest().start, Tick{40});
}

TEST(TimeSeriesStoreTest, KeysAreSortedAndStable)
{
    obs::TimeSeriesStore store(100, 16);
    store.series("zeta");
    store.series("alpha");
    store.series("alpha"); // get-or-create: no duplicate
    const std::vector<std::string> expect = {"alpha", "zeta"};
    EXPECT_EQ(store.names(), expect);
    EXPECT_NE(store.find("alpha"), nullptr);
    EXPECT_EQ(store.find("missing"), nullptr);
    EXPECT_EQ(store.interval(), Tick{100});
    EXPECT_EQ(store.capacity(), 16u);
    EXPECT_EQ(store.intervalsSampled(), 0u);
    store.noteIntervalSampled();
    EXPECT_EQ(store.intervalsSampled(), 1u);
}

// -- SloMonitor --------------------------------------------------------

TEST(SloMonitorTest, TripsAfterWindowConsecutiveBadIntervals)
{
    obs::SloConfig cfg;
    cfg.latency = 1000;
    cfg.window = 3;
    obs::SloMonitor mon(cfg);
    ASSERT_TRUE(cfg.armed());

    // Two bad intervals, one good one: streak resets, nothing trips.
    mon.observe(10, 5000.0, row(0, 10));
    mon.observe(20, 5000.0, row(10, 20));
    mon.observe(30, 100.0, row(20, 30));
    EXPECT_FALSE(mon.violated());

    // Three consecutive bad intervals: exactly one violation, with
    // the onset pointing at the episode's first bad interval.
    mon.observe(40, 5000.0, row(30, 40));
    mon.observe(50, 5000.0, row(40, 50));
    mon.observe(60, 5000.0, row(50, 60));
    ASSERT_EQ(mon.violations().size(), 1u);
    const obs::SloViolation &v = mon.violations().front();
    EXPECT_EQ(v.kind, obs::SloViolation::Kind::Latency);
    EXPECT_EQ(v.time, Tick{60});
    EXPECT_EQ(v.onset, Tick{30});
    EXPECT_EQ(v.series, "e2e");
    EXPECT_EQ(mon.firstViolationTime(), Tick{60});

    // Staying bad does not spam further violations...
    mon.observe(70, 5000.0, row(60, 70));
    EXPECT_EQ(mon.violations().size(), 1u);
    // ...until a good interval re-arms the episode machine.
    mon.observe(80, 100.0, row(70, 80));
    mon.observe(90, 5000.0, row(80, 90));
    mon.observe(100, 5000.0, row(90, 100));
    mon.observe(110, 5000.0, row(100, 110));
    EXPECT_EQ(mon.violations().size(), 2u);
}

TEST(SloMonitorTest, TrafficFreeIntervalsAreNeutral)
{
    obs::SloConfig cfg;
    cfg.latency = 1000;
    cfg.window = 2;
    obs::SloMonitor mon(cfg);
    mon.observe(10, 5000.0, row(0, 10));
    // No finishing traffic: neither extends nor resets the streak.
    mon.observe(20, 0.0, row(10, 20, 0, 0));
    mon.observe(30, 5000.0, row(20, 30));
    ASSERT_TRUE(mon.violated());
    EXPECT_EQ(mon.violations().front().onset, Tick{0});
}

TEST(SloMonitorTest, ErrorRateObjectiveCatchesCollapse)
{
    // Under a total collapse nothing completes, the latency stream
    // goes quiet — the error-rate objective still sees the failures.
    obs::SloConfig cfg;
    cfg.tier = "backend";
    cfg.errorRate = 0.1;
    cfg.window = 2;
    obs::SloMonitor mon(cfg);
    EXPECT_EQ(mon.targetSeries(), "backend");
    mon.observe(10, 0.0, row(0, 10, 0, 50));
    mon.observe(20, 0.0, row(10, 20, 0, 50));
    ASSERT_EQ(mon.violations().size(), 1u);
    EXPECT_EQ(mon.violations().front().kind,
              obs::SloViolation::Kind::ErrorRate);
    EXPECT_EQ(mon.violations().front().series, "backend");
    EXPECT_DOUBLE_EQ(mon.violations().front().value, 1.0);
}

// -- Pipeline over a real app ------------------------------------------

struct TwoTier
{
    TwoTier() : world(makeConfig())
    {
        service::App &app = *world.app;
        service::ServiceDef back;
        back.name = "backend";
        back.handler.compute(Dist::constant(120.0 * 1440.0));
        back.threadsPerInstance = 8;
        app.addService(std::move(back))
            .addInstance(world.worker(1));

        service::ServiceDef front;
        front.name = "frontend";
        front.kind = service::ServiceKind::Frontend;
        front.handler.compute(Dist::constant(60.0 * 1440.0))
            .call("backend");
        front.threadsPerInstance = 8;
        app.addService(std::move(front))
            .addInstance(world.worker(0));
        app.setEntry("frontend");
        app.addQueryType({"read", 1, 1.0, 0, {}});
        app.validate();
    }

    static apps::WorldConfig
    makeConfig()
    {
        apps::WorldConfig c;
        c.workerServers = 2;
        return c;
    }

    apps::World world;
};

TEST(PipelineTest, SamplesEveryTierPlusEndToEnd)
{
    TwoTier t;
    obs::PipelineConfig pc;
    pc.interval = 100 * kTicksPerMs;
    pc.ring = 64;
    obs::Pipeline pipe(*t.world.app, pc);
    pipe.start();

    workload::OpenLoopGenerator gen(
        *t.world.app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(50), 1);
    gen.setQps(400.0);
    gen.start();
    t.world.sim.runUntil(kTicksPerSec);
    gen.stop();
    t.world.sim.runUntil(kTicksPerSec + 100 * kTicksPerMs);

    const std::vector<std::string> expect = {"backend", "e2e",
                                             "frontend"};
    EXPECT_EQ(pipe.store().names(), expect);
    EXPECT_GE(pipe.store().intervalsSampled(), 10u);

    const obs::Series *e2e = pipe.store().find(obs::kEndToEndSeries);
    ASSERT_NE(e2e, nullptr);
    std::uint64_t ok = 0;
    for (std::size_t i = 0; i < e2e->size(); ++i)
        ok += e2e->at(i).count;
    EXPECT_EQ(ok, t.world.app->completed());

    // A mid-run interval carries the derived signals.
    const obs::IntervalSample &mid = e2e->at(e2e->size() / 2);
    EXPECT_GT(mid.rps, 0.0);
    EXPECT_GT(mid.p50, 0u);
    EXPECT_GE(mid.p99, mid.p95);
    EXPECT_GE(mid.p95, mid.p50);
    EXPECT_GT(mid.meanLatencyNs, 0.0);

    const obs::Series *back = pipe.store().find("backend");
    ASSERT_NE(back, nullptr);
    const obs::IntervalSample &bmid = back->at(back->size() / 2);
    EXPECT_GT(bmid.count, 0u);
    EXPECT_GT(bmid.utilization, 0.0);
    EXPECT_LE(bmid.utilization, 1.0);
}

TEST(PipelineTest, AttachingThePipelineKeepsTheDigest)
{
    auto run = [](bool attach) {
        TwoTier t;
        std::unique_ptr<obs::Pipeline> pipe;
        if (attach) {
            obs::PipelineConfig pc;
            pc.interval = 50 * kTicksPerMs;
            pipe = std::make_unique<obs::Pipeline>(*t.world.app, pc);
            pipe->start();
        }
        workload::OpenLoopGenerator gen(
            *t.world.app, workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(50), 1);
        gen.setQps(300.0);
        gen.start();
        t.world.sim.runUntil(kTicksPerSec);
        return t.world.sim.executionDigest();
    };
    EXPECT_EQ(run(false), run(true))
        << "sampling must never perturb the simulated world";
}

} // namespace
} // namespace uqsim
