/**
 * @file
 * Tests for the open/closed-loop generators, the query mix and the
 * diurnal shape.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "workload/generators.hh"

namespace uqsim::workload {
namespace {

apps::WorldConfig
smallConfig()
{
    apps::WorldConfig c;
    c.workerServers = 2;
    return c;
}

void
buildTrivialApp(apps::World &w, unsigned query_types = 1)
{
    service::ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::constant(5000.0));
    front.threadsPerInstance = 64;
    w.app->addService(std::move(front)).addInstance(w.worker(0));
    w.app->setEntry("front");
    for (unsigned i = 0; i < query_types; ++i)
        w.app->addQueryType({"q" + std::to_string(i),
                             static_cast<double>(i + 1), 1.0, 0, {}});
    w.app->validate();
}

TEST(QueryMixTest, WeightsRespected)
{
    QueryMix mix({1.0, 3.0});
    Rng rng(1);
    int second = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        if (mix.sample(rng) == 1)
            ++second;
    EXPECT_NEAR(static_cast<double>(second) / n, 0.75, 0.02);
}

TEST(QueryMixTest, FromAppUsesRegisteredWeights)
{
    apps::World w(smallConfig());
    buildTrivialApp(w, 3);
    QueryMix mix = QueryMix::fromApp(*w.app);
    EXPECT_EQ(mix.size(), 3u);
}

TEST(OpenLoopTest, GeneratesApproximatelyTargetRate)
{
    apps::World w(smallConfig());
    buildTrivialApp(w);
    OpenLoopGenerator gen(*w.app, QueryMix({1.0}),
                          UserPopulation::uniform(10), 3);
    gen.setQps(500.0);
    gen.start();
    w.sim.runFor(4 * kTicksPerSec);
    gen.stop();
    EXPECT_NEAR(static_cast<double>(gen.generated()), 2000.0, 150.0);
    EXPECT_NEAR(static_cast<double>(w.app->injected()), 2000.0, 150.0);
}

TEST(OpenLoopTest, StopHaltsInjection)
{
    apps::World w(smallConfig());
    buildTrivialApp(w);
    OpenLoopGenerator gen(*w.app, QueryMix({1.0}),
                          UserPopulation::uniform(10), 3);
    gen.setQps(1000.0);
    gen.start();
    w.sim.runFor(kTicksPerSec);
    gen.stop();
    const auto count = gen.generated();
    w.sim.runFor(kTicksPerSec);
    EXPECT_EQ(gen.generated(), count);
}

TEST(OpenLoopTest, RateShapeModulatesArrivals)
{
    apps::World w(smallConfig());
    buildTrivialApp(w);
    OpenLoopGenerator gen(*w.app, QueryMix({1.0}),
                          UserPopulation::uniform(10), 3);
    gen.setQps(1000.0);
    gen.setRateShape([](Tick t) {
        return t < kTicksPerSec ? 0.1 : 1.0; // quiet first second
    });
    gen.start();
    w.sim.runFor(kTicksPerSec);
    const auto quiet = gen.generated();
    w.sim.runFor(kTicksPerSec);
    const auto busy = gen.generated() - quiet;
    EXPECT_GT(busy, 5 * quiet);
}

TEST(ClosedLoopTest, ConcurrencyBoundsInFlight)
{
    apps::World w(smallConfig());
    buildTrivialApp(w);
    ClosedLoopGenerator gen(*w.app, QueryMix({1.0}),
                            UserPopulation::uniform(10), 8,
                            Dist::constant(1000000.0), 3);
    gen.start();
    w.sim.runFor(kTicksPerSec);
    gen.stop();
    // Each user cycles roughly every (latency + 1ms think).
    EXPECT_GT(gen.generated(), 1000u);
    EXPECT_LT(gen.generated(), 9000u);
}

TEST(DiurnalTest, ShapeBounded)
{
    DiurnalShape d(kTicksPerSec * 100, 0.2);
    for (Tick t = 0; t < kTicksPerSec * 100; t += kTicksPerSec)
        ASSERT_GE(d.at(t), 0.2);
    for (Tick t = 0; t < kTicksPerSec * 100; t += kTicksPerSec)
        ASSERT_LE(d.at(t), 1.0 + 1e-9);
}

TEST(DiurnalTest, PeakExceedsNight)
{
    DiurnalShape d(kTicksPerSec * 100, 0.2);
    const double night = d.at(0);
    const double midday = d.at(kTicksPerSec * 50);
    EXPECT_GT(midday, 2.0 * night);
}

} // namespace
} // namespace uqsim::workload
