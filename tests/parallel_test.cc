/**
 * @file
 * ParallelSimulator / SimContext engine tests.
 *
 * The sharded core's contract, exercised without any model on top:
 * a one-shard engine is bit-identical to the plain Simulator; digests
 * at a fixed shard count never depend on the worker-thread count;
 * cross-shard mail merges in deterministic (when, src, seq) order; and
 * the conservative-lookahead and past-scheduling invariants die loudly
 * when violated.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/parallel.hh"
#include "core/sim_context.hh"
#include "core/simulator.hh"

namespace uqsim {
namespace {

/** A deterministic little event program, parameterized by context. */
void
seedProgram(SimContext ctx, unsigned depth = 0)
{
    if (depth >= 5)
        return;
    for (Tick d : {3u, 7u, 11u})
        ctx.schedule(d, [ctx, depth]() mutable {
            seedProgram(ctx, depth + 1);
        });
}

TEST(ParallelTest, SingleShardMatchesSimulator)
{
    Simulator sim;
    seedProgram(SimContext(sim));
    sim.run();

    ParallelSimulator par({1, kMaxTick, 1});
    seedProgram(par.context(0));
    par.run();

    EXPECT_GT(sim.eventsExecuted(), 0u);
    EXPECT_EQ(par.eventsExecuted(), sim.eventsExecuted());
    EXPECT_EQ(par.executionDigest(), sim.executionDigest());
}

TEST(ParallelTest, SingleShardRunUntilMatchesSimulator)
{
    Simulator sim;
    seedProgram(SimContext(sim));
    sim.runUntil(20);

    ParallelSimulator par({1, kMaxTick, 1});
    seedProgram(par.context(0));
    par.runUntil(20);

    EXPECT_EQ(par.executionDigest(), sim.executionDigest());
    EXPECT_EQ(par.now(0), sim.now());
    EXPECT_EQ(par.context(0).now(), sim.now());
}

/** Cross-shard ping-pong under a finite lookahead. */
std::uint64_t
pingPongDigest(unsigned threads)
{
    ParallelSimulator par({2, /*lookahead=*/10, threads});
    std::array<SimContext, 2> ctx{par.context(0), par.context(1)};

    // Each bounce runs on its own shard (mail callbacks capture the
    // *destination* context), schedules a local filler event and
    // reposts to the peer >= lookahead out.
    std::function<void(unsigned, unsigned)> bounce =
        [&](unsigned shard, unsigned hops) {
            if (hops == 0)
                return;
            SimContext c = ctx[shard];
            c.schedule(1, []() {});
            const unsigned peer = 1 - shard;
            c.postToShard(peer, 10 + hops % 3, [&bounce, peer, hops]() {
                bounce(peer, hops - 1);
            });
        };
    // Launch from both sides so mail flows in both directions.
    ctx[0].schedule(0, [&bounce]() { bounce(0, 12); });
    ctx[1].schedule(2, [&bounce]() { bounce(1, 12); });
    par.run();
    EXPECT_GT(par.eventsExecuted(), 20u);
    return par.executionDigest();
}

TEST(ParallelTest, CrossShardPingPongThreadInvariant)
{
    const std::uint64_t one = pingPongDigest(1);
    const std::uint64_t two = pingPongDigest(2);
    EXPECT_EQ(one, two);
}

TEST(ParallelTest, MailMergesInDeterministicOrder)
{
    // Several senders post events that all land at the *same* tick on
    // shard 0; the merge must order them by (when, src, seq) no matter
    // which worker appended to the mailbox first.
    auto run = [](unsigned threads) {
        std::vector<int> order;
        ParallelSimulator par({3, /*lookahead=*/5, threads});
        for (unsigned s = 1; s < 3; ++s) {
            SimContext ctx = par.context(s);
            ctx.schedule(1, [ctx, s, &order]() mutable {
                for (int k = 0; k < 3; ++k)
                    ctx.postToShard(0, 9, [s, k, &order]() {
                        order.push_back(static_cast<int>(s) * 10 + k);
                    });
            });
        }
        par.run();
        return order;
    };
    const std::vector<int> expect{10, 11, 12, 20, 21, 22};
    EXPECT_EQ(run(1), expect);
    EXPECT_EQ(run(2), expect);
}

TEST(ParallelTest, FixedShardCountDigestIgnoresThreads)
{
    auto digest = [](unsigned threads) {
        ParallelSimulator par({4, kMaxTick, threads});
        for (unsigned s = 0; s < 4; ++s)
            seedProgram(par.context(s));
        par.run();
        return par.executionDigest();
    };
    const std::uint64_t one = digest(1);
    EXPECT_EQ(digest(2), one);
    EXPECT_EQ(digest(4), one);
    // More threads than shards is capped, not an error.
    EXPECT_EQ(digest(16), one);
}

TEST(ParallelTest, IdenticalShardsDoNotCancel)
{
    // Shards run identical programs, so their digests are equal; the
    // composition must still depend on the shard count (a plain XOR
    // would collapse any even number of replicas to 0).
    ParallelSimulator two({2, kMaxTick, 1});
    for (unsigned s = 0; s < 2; ++s)
        seedProgram(two.context(s));
    two.run();
    EXPECT_EQ(two.shardDigest(0), two.shardDigest(1));
    EXPECT_NE(two.executionDigest(), 0u);
    EXPECT_NE(two.executionDigest(), two.shardDigest(0));
}

TEST(ParallelTest, RunUntilAdvancesIdleShardClocks)
{
    ParallelSimulator par({2, kMaxTick, 1});
    par.context(0).schedule(5, []() {});
    // Shard 1 stays empty; its clock must still land on the deadline.
    par.runUntil(100);
    EXPECT_EQ(par.now(0), 100u);
    EXPECT_EQ(par.now(1), 100u);
}

TEST(ParallelTest, EventHandleCancelIsIdempotentAcrossShards)
{
    ParallelSimulator par({2, /*lookahead=*/10, 1});
    SimContext a = par.context(0);
    SimContext b = par.context(1);

    int fired = 0;
    EventHandle pending = a.schedule(50, [&fired]() { ++fired; });
    EventHandle early = a.schedule(1, [&fired]() { ++fired; });

    // Double-cancel before anything runs: the second is a no-op.
    pending.cancel();
    pending.cancel();

    // Cancel of an already-executed event, issued from the other
    // shard's event code after the rounds have moved past it.
    b.schedule(15, [&early]() mutable { early.cancel(); });
    par.runUntil(30);
    EXPECT_EQ(fired, 1); // 'early' fired once, 'pending' never did

    // Double-cancel across the executed/cancelled boundary: no-ops.
    early.cancel();
    pending.cancel();
    par.run();
    EXPECT_EQ(fired, 1);
}

TEST(ParallelDeathTest, CrossShardBelowLookaheadDies)
{
    ParallelSimulator par({2, /*lookahead=*/100, 1});
    SimContext a = par.context(0);
    a.schedule(0, [a]() mutable {
        a.postToShard(1, 5, []() {}); // 5 < lookahead 100
    });
    EXPECT_DEATH(par.run(), "violates lookahead");
}

TEST(ParallelDeathTest, CrossShardWithoutChannelsDies)
{
    // kMaxTick lookahead declares "no cross-shard channels"; any
    // cross-shard post is then a modelling error.
    ParallelSimulator par({2, kMaxTick, 1});
    SimContext a = par.context(0);
    a.schedule(0, [a]() mutable { a.postToShard(1, 1000, []() {}); });
    EXPECT_DEATH(par.run(), "lookahead");
}

TEST(ParallelDeathTest, ScheduleAtInThePastReportsTicks)
{
    ParallelSimulator par({2, kMaxTick, 1});
    SimContext a = par.context(0);
    a.schedule(10, [a]() mutable { a.scheduleAt(3, []() {}); });
    // The message must name the offending tick, the distance and the
    // clock so the report is actionable.
    EXPECT_DEATH(par.run(),
                 "scheduleAt\\(when=3\\) is 7 ticks in the past "
                 "\\(now=10, shard 0\\)");
}

TEST(ParallelDeathTest, SimulatorScheduleAtInThePastReportsTicks)
{
    Simulator sim;
    sim.schedule(10, [&sim]() { sim.scheduleAt(4, []() {}); });
    EXPECT_DEATH(sim.run(), "scheduleAt\\(when=4\\) is 6 ticks in the "
                            "past \\(now=10\\)");
}

TEST(ParallelDeathTest, ZeroLookaheadRejected)
{
    EXPECT_DEATH(
        {
            ParallelSimulator par({2, 0, 1});
        },
        "zero lookahead");
}

} // namespace
} // namespace uqsim
