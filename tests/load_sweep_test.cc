/**
 * @file
 * Tests for the measurement harness: runLoad summaries, queueing
 * properties (latency grows with load) and the max-QPS bisection.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "workload/load_sweep.hh"

namespace uqsim::workload {
namespace {

apps::WorldConfig
smallConfig()
{
    apps::WorldConfig c;
    c.workerServers = 2;
    return c;
}

/** One-tier app: 0.7ms of work per request, 8 threads on 40 cores. */
void
buildQueueApp(apps::World &w, double work_us = 700.0)
{
    service::ServiceDef front;
    front.name = "front";
    front.handler.compute(Dist::exponential(work_us * 1440.0));
    front.threadsPerInstance = 8;
    w.app->addService(std::move(front)).addInstance(w.worker(0));
    w.app->setEntry("front");
    w.app->addQueryType({"q", 1, 1.0, 0, {}});
    w.app->setQosLatency(20 * kTicksPerMs);
    w.app->validate();
}

LoadResult
measure(double qps, double work_us = 700.0)
{
    apps::World w(smallConfig());
    buildQueueApp(w, work_us);
    return runLoad(*w.app, qps, kTicksPerSec, 3 * kTicksPerSec,
                   QueryMix({1.0}), UserPopulation::uniform(50), 11);
}

TEST(RunLoadTest, ReportsCompletions)
{
    const LoadResult r = measure(200.0);
    EXPECT_NEAR(static_cast<double>(r.completed), 600.0, 80.0);
    EXPECT_NEAR(r.achievedQps, 200.0, 30.0);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_GT(r.p50, 0u);
    EXPECT_LE(r.p50, r.p95);
    EXPECT_LE(r.p95, r.p99);
}

TEST(RunLoadTest, GoodputMatchesThroughputWhenHealthy)
{
    const LoadResult r = measure(200.0);
    EXPECT_NEAR(r.goodputQps, r.achievedQps, 10.0);
    EXPECT_TRUE(r.meetsQos(20 * kTicksPerMs));
}

/**
 * Queueing property: tail latency is non-decreasing in offered load,
 * and explodes near saturation (8 threads / 0.7ms ~ 11.4k QPS per
 * instance, but the instance has only 8 worker threads so the knee
 * appears much earlier under the open-loop tail).
 */
class LoadMonotonicityTest : public ::testing::TestWithParam<double>
{};

TEST_P(LoadMonotonicityTest, TailGrowsWithLoad)
{
    const double qps = GetParam();
    const LoadResult lo = measure(qps);
    const LoadResult hi = measure(qps * 4.0);
    EXPECT_GE(static_cast<double>(hi.p99) * 1.10,
              static_cast<double>(lo.p99))
        << "qps=" << qps;
}

INSTANTIATE_TEST_SUITE_P(Rates, LoadMonotonicityTest,
                         ::testing::Values(100.0, 400.0, 1600.0));

TEST(RunLoadTest, SaturationBlowsUpTail)
{
    // 8 threads at ~0.7ms => ~11.4k req/s capacity; offering beyond
    // that must blow up the open-loop tail and/or drop requests.
    const LoadResult sat = measure(16000.0);
    EXPECT_FALSE(sat.meetsQos(20 * kTicksPerMs));
}

TEST(RunLoadTest, UtilizationGrowsWithLoad)
{
    const LoadResult lo = measure(200.0);
    const LoadResult hi = measure(3000.0);
    EXPECT_GT(hi.meanUtilization, lo.meanUtilization);
}

TEST(FindMaxQpsTest, BisectsSyntheticThreshold)
{
    auto feasible = [](double qps) { return qps <= 730.0; };
    const double max_qps = findMaxQps(feasible, 10.0, 2000.0, 12);
    EXPECT_NEAR(max_qps, 730.0, 15.0);
}

TEST(FindMaxQpsTest, ReturnsHiWhenAllFeasible)
{
    EXPECT_EQ(findMaxQps([](double) { return true; }, 1.0, 500.0), 500.0);
}

TEST(FindMaxQpsTest, ReturnsLoWhenNoneFeasible)
{
    EXPECT_EQ(findMaxQps([](double) { return false; }, 1.0, 500.0), 1.0);
}

TEST(FindMaxQpsTest, RealAppSaturationSearch)
{
    auto feasible = [](double qps) {
        return measure(qps).meetsQos(20 * kTicksPerMs);
    };
    const double max_qps = findMaxQps(feasible, 100.0, 40000.0, 5);
    EXPECT_GT(max_qps, 1000.0);
    EXPECT_LT(max_qps, 40000.0);
}

} // namespace
} // namespace uqsim::workload
