/**
 * @file
 * Scenario config round-trip and validation tests.
 *
 * A scenario JSON file plus the binary version fully describes a run,
 * so the surface must be lossless (dump -> parse -> dump is the
 * identity), strict (unknown keys and malformed values are errors, not
 * silently ignored), and layered (absent keys keep the caller's
 * defaults, which is what lets CLI flags before --config act as
 * defaults the file overrides).
 */

#include <gtest/gtest.h>

#include <string>

#include "apps/scenario.hh"

namespace uqsim {
namespace {

apps::Scenario
fullScenario()
{
    apps::Scenario s;
    s.app = "ecommerce";
    s.qps = 450.5;
    s.durationSec = 8.0;
    s.warmupSec = 1.5;
    s.servers = 7;
    s.drones = 16;
    s.core = "thunderx";
    s.freqMhz = 1800.0;
    s.fpga = true;
    s.lambda = "s3";
    s.slowServers = 2;
    s.slowFactor = 12.5;
    s.skew = 90.0;
    s.users = 5000;
    s.seed = 1234;
    s.shards = 4;
    s.threads = 2;
    s.rpcTimeout = 50 * kTicksPerMs;
    s.deadline = 200 * kTicksPerMs;
    s.retries = 3;
    s.retryBudget = 0.2;
    s.breaker = true;
    s.shed = 64;
    s.qosEnabled = true;
    s.qosWeightUser = 16;
    s.qosWeightBatch = 4;
    s.qosWeightBest = 2;
    s.qosQueue = 24;
    s.qosRate = 500.0;
    s.qosBurst = 12.0;
    s.qosShedBatch = 0.6;
    s.qosShedBest = 0.3;
    s.qosBatch = "addToCart,wishlist";
    s.qosBestEffort = "browseCatalogue";
    s.dataKeys = 100000;
    s.dataCapacity = 2048;
    s.dataPolicy = "slru";
    s.dataPopularity = "hotspot";
    s.dataZipfS = 1.2;
    s.dataHotFraction = 0.05;
    s.dataHotMass = 0.8;
    s.dataTtl = 500 * kTicksPerMs;
    s.dataWrite = "invalidate";
    s.dataShiftPeriod = 2 * kTicksPerSec;
    s.dataVnodes = 32;
    s.traceCapacity = 1 << 12;

    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::Crash;
    crash.start = 2 * kTicksPerSec;
    crash.duration = kTicksPerSec;
    crash.service = "frontend";
    crash.instance = 1;
    s.faults.push_back(crash);

    fault::FaultSpec part;
    part.kind = fault::FaultKind::Partition;
    part.start = 3 * kTicksPerSec;
    part.duration = kTicksPerSec;
    part.groupA = {0, 1};
    part.groupB = {2, 4};
    part.loss = 0.5;
    s.faults.push_back(part);
    return s;
}

TEST(ScenarioTest, DumpParseDumpIsIdentity)
{
    const apps::Scenario original = fullScenario();
    const std::string doc = apps::scenarioToJson(original);

    apps::Scenario parsed; // defaults; every key in doc overrides
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson(doc, parsed, error)) << error;
    EXPECT_EQ(apps::scenarioToJson(parsed), doc);

    // Spot-check semantic equality, not just textual round-trip.
    EXPECT_EQ(parsed.app, "ecommerce");
    EXPECT_DOUBLE_EQ(parsed.qps, 450.5);
    EXPECT_EQ(parsed.rpcTimeout, 50 * kTicksPerMs);
    EXPECT_EQ(parsed.shards, 4u);
    EXPECT_EQ(parsed.threads, 2u);
    EXPECT_TRUE(parsed.fpga);
    ASSERT_EQ(parsed.faults.size(), 2u);
    EXPECT_EQ(parsed.faults[0].kind, fault::FaultKind::Crash);
    EXPECT_EQ(parsed.faults[0].service, "frontend");
    EXPECT_EQ(parsed.faults[1].kind, fault::FaultKind::Partition);
    EXPECT_EQ(parsed.faults[1].groupB.last, 4u);
    EXPECT_DOUBLE_EQ(parsed.faults[1].loss, 0.5);
    EXPECT_EQ(parsed.dataKeys, 100000u);
    EXPECT_EQ(parsed.dataCapacity, 2048u);
    EXPECT_EQ(parsed.dataPolicy, "slru");
    EXPECT_EQ(parsed.dataPopularity, "hotspot");
    EXPECT_DOUBLE_EQ(parsed.dataZipfS, 1.2);
    EXPECT_EQ(parsed.dataTtl, 500 * kTicksPerMs);
    EXPECT_EQ(parsed.dataWrite, "invalidate");
    EXPECT_EQ(parsed.dataShiftPeriod, 2 * kTicksPerSec);
    EXPECT_EQ(parsed.dataVnodes, 32u);
    EXPECT_TRUE(parsed.qosEnabled);
    EXPECT_EQ(parsed.qosWeightUser, 16u);
    EXPECT_EQ(parsed.qosWeightBatch, 4u);
    EXPECT_EQ(parsed.qosWeightBest, 2u);
    EXPECT_EQ(parsed.qosQueue, 24u);
    EXPECT_DOUBLE_EQ(parsed.qosRate, 500.0);
    EXPECT_DOUBLE_EQ(parsed.qosBurst, 12.0);
    EXPECT_DOUBLE_EQ(parsed.qosShedBatch, 0.6);
    EXPECT_DOUBLE_EQ(parsed.qosShedBest, 0.3);
    EXPECT_EQ(parsed.qosBatch, "addToCart,wishlist");
    EXPECT_EQ(parsed.qosBestEffort, "browseCatalogue");
}

TEST(ScenarioTest, RejectsBadQosValues)
{
    apps::Scenario s;
    std::string error;

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"wieghts\": \"8,2,1\"}}", s, error));
    EXPECT_NE(error.find("unknown scenario key 'qos.wieghts'"),
              std::string::npos);

    // Malformed weight triples: wrong arity, junk, and a zero weight
    // (a zero-weight class would starve under WRR).
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"weights\": \"8,2\"}}", s, error));
    EXPECT_NE(error.find("qos.weights"), std::string::npos);
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"weights\": \"8,two,1\"}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"weights\": \"8,0,1\"}}", s, error));

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"rate\": -1}}", s, error));
    EXPECT_NE(error.find("qos.rate"), std::string::npos);
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"burst\": 0}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"shed_batch\": 1.5}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"qos\": {\"shed_best\": 0}}", s, error));
}

TEST(ScenarioTest, AbsentQosKeysKeepCallerDefaults)
{
    apps::Scenario s;
    s.qosQueue = 48;
    s.qosBatch = "wishlist";
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson(
        "{\"qos\": {\"enabled\": true, \"rate\": 250}}", s, error))
        << error;
    EXPECT_TRUE(s.qosEnabled);
    EXPECT_DOUBLE_EQ(s.qosRate, 250.0);
    EXPECT_EQ(s.qosQueue, 48u);       // caller's default survives
    EXPECT_EQ(s.qosBatch, "wishlist");
    EXPECT_EQ(s.qosWeightUser, 8u);   // untouched struct default
}

TEST(ScenarioTest, RejectsBadDataTierValues)
{
    apps::Scenario s;
    std::string error;

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"keyz\": 10}}", s, error));
    EXPECT_NE(error.find("unknown scenario key 'data.keyz'"),
              std::string::npos);

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"policy\": \"mru\"}}", s, error));
    EXPECT_NE(error.find("data.policy"), std::string::npos);

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"popularity\": \"pareto\"}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"write\": \"back\"}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"keys\": 10, \"capacity\": 0}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"hot_fraction\": 1.5}}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"data\": {\"vnodes\": 0}}", s, error));
}

TEST(ScenarioTest, AbsentKeysKeepCallerDefaults)
{
    apps::Scenario s;
    s.qps = 777.0;
    s.shards = 3;
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson("{\"servers\": 9}", s, error))
        << error;
    EXPECT_EQ(s.servers, 9u);      // from the document
    EXPECT_DOUBLE_EQ(s.qps, 777.0); // caller's default survives
    EXPECT_EQ(s.shards, 3u);
}

TEST(ScenarioTest, DurationsAcceptStringsAndBareMilliseconds)
{
    apps::Scenario s;
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson(
        "{\"rpc_timeout\": \"2s\", \"deadline\": 150}", s, error))
        << error;
    EXPECT_EQ(s.rpcTimeout, 2 * kTicksPerSec);
    EXPECT_EQ(s.deadline, 150 * kTicksPerMs);
}

TEST(ScenarioTest, RejectsMalformedInput)
{
    apps::Scenario s;
    std::string error;

    EXPECT_FALSE(apps::parseScenarioJson("not json", s, error));

    EXPECT_FALSE(apps::parseScenarioJson("[1, 2]", s, error));
    EXPECT_NE(error.find("object"), std::string::npos);

    EXPECT_FALSE(apps::parseScenarioJson("{\"qqps\": 10}", s, error));
    EXPECT_NE(error.find("unknown scenario key"), std::string::npos);

    EXPECT_FALSE(apps::parseScenarioJson("{\"qps\": \"fast\"}", s,
                                         error));
    EXPECT_FALSE(apps::parseScenarioJson("{\"servers\": 2.5}", s,
                                         error));
    EXPECT_FALSE(apps::parseScenarioJson("{\"qps\": 0}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson("{\"shards\": 0}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson("{\"skew\": 100}", s, error));
    EXPECT_FALSE(apps::parseScenarioJson("{\"core\": \"pentium\"}", s,
                                         error));
    EXPECT_FALSE(apps::parseScenarioJson("{\"lambda\": \"gcf\"}", s,
                                         error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"faults\": [{\"kind\": \"meteor\"}]}", s, error));
    EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
}

TEST(ScenarioTest, ShardSeedDerivation)
{
    // Shard 0 must reuse the root seed exactly: that is what makes a
    // one-shard WorldHandle bit-identical to a standalone World.
    EXPECT_EQ(apps::WorldHandle::shardSeed(42, 0), 42u);
    EXPECT_NE(apps::WorldHandle::shardSeed(42, 1), 42u);
    EXPECT_NE(apps::WorldHandle::shardSeed(42, 1),
              apps::WorldHandle::shardSeed(42, 2));
}

TEST(ScenarioTest, WorldHandleStructure)
{
    apps::Scenario scn;
    scn.servers = 3;
    apps::WorldHandle w(apps::worldConfigFor(scn), 3, 2);
    EXPECT_EQ(w.shards(), 3u);
    EXPECT_EQ(w.engine().shardCount(), 3u);
    EXPECT_EQ(w.engine().threads(), 2u);
    for (unsigned s = 0; s < 3; ++s) {
        EXPECT_EQ(w.shard(s).config().seed,
                  apps::WorldHandle::shardSeed(scn.seed, s));
        EXPECT_TRUE(w.shard(s).ctx.sharded());
        EXPECT_EQ(w.shard(s).ctx.shard(), s);
    }
}

TEST(ScenarioTest, PlacementRoundTrip)
{
    apps::Scenario s;
    s.placement = "partition";
    s.shards = 4;
    s.pins = {{"posts-db", 3}, {"nginx-lb", 0}};
    const std::string doc = apps::scenarioToJson(s);

    apps::Scenario parsed;
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson(doc, parsed, error)) << error;
    EXPECT_EQ(apps::scenarioToJson(parsed), doc);
    EXPECT_EQ(parsed.placement, "partition");
    ASSERT_EQ(parsed.pins.size(), 2u);
    EXPECT_EQ(parsed.pins[0].tier, "posts-db");
    EXPECT_EQ(parsed.pins[0].shard, 3u);
    EXPECT_EQ(parsed.pins[1].tier, "nginx-lb");
    EXPECT_EQ(parsed.pins[1].shard, 0u);
}

TEST(ScenarioTest, RejectsBadPlacement)
{
    apps::Scenario s;
    std::string error;

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"mode\": \"sharded\"}}", s, error));
    EXPECT_NE(error.find("unknown placement.mode"), std::string::npos);

    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"mdoe\": \"partition\"}}", s, error));
    EXPECT_NE(error.find("unknown scenario key 'placement.mdoe'"),
              std::string::npos);

    // Pins without partition mode.
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"pin\": [{\"tier\": \"a\", \"shard\": 0}]}}",
        s, error));
    EXPECT_NE(error.find("placement.mode 'partition'"),
              std::string::npos);

    // Pin shard out of range for the shard count.
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"shards\": 2, \"placement\": {\"mode\": \"partition\", "
        "\"pin\": [{\"tier\": \"a\", \"shard\": 2}]}}",
        s, error));
    EXPECT_NE(error.find("only 2 shards exist"), std::string::npos);

    // Duplicate pin.
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"shards\": 2, \"placement\": {\"mode\": \"partition\", "
        "\"pin\": [{\"tier\": \"a\", \"shard\": 0}, "
        "{\"tier\": \"a\", \"shard\": 1}]}}",
        s, error));
    EXPECT_NE(error.find("duplicate placement pin"), std::string::npos);

    // Malformed pin entries.
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"shards\": 2, \"placement\": {\"mode\": \"partition\", "
        "\"pin\": [{\"shard\": 0}]}}",
        s, error));
    EXPECT_NE(error.find("'tier' name"), std::string::npos);
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"mode\": \"partition\", "
        "\"pin\": [{\"tier\": \"a\", \"shardd\": 0}]}}",
        s, error));
    EXPECT_NE(error.find("placement.pin.shardd"), std::string::npos);

    // Partition excludes replica-worlds-only features.
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"mode\": \"partition\"}, \"fpga\": true}", s,
        error));
    EXPECT_NE(error.find("does not support fpga"), std::string::npos);
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"mode\": \"partition\"}, "
        "\"app\": \"swarm-edge\"}",
        s, error));
    EXPECT_FALSE(apps::parseScenarioJson(
        "{\"placement\": {\"mode\": \"partition\"}, \"data\": "
        "{\"keys\": 100, \"capacity\": 64}, \"replication\": "
        "{\"factor\": 3}}",
        s, error));
    EXPECT_NE(error.find("does not support replication"),
              std::string::npos);
}

TEST(ScenarioTest, CoreModelNames)
{
    cpu::CoreModel m;
    EXPECT_TRUE(apps::coreModelByName("xeon", m));
    EXPECT_TRUE(apps::coreModelByName("xeon18", m));
    EXPECT_TRUE(apps::coreModelByName("thunderx", m));
    EXPECT_FALSE(apps::coreModelByName("m1", m));
}

} // namespace
} // namespace uqsim
