/**
 * @file
 * Tests for the unified metrics registry: get-or-create semantics,
 * stable references, deterministic snapshots and reset.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/json.hh"
#include "core/metrics.hh"

namespace uqsim {
namespace {

TEST(MetricsRegistryTest, OwnsNamedMetrics)
{
    MetricsRegistry reg;
    reg.counter("app.requests").inc(3);
    reg.gauge("monitor.load").set(0.7);
    reg.histogram("app.latency").record(123);
    EXPECT_EQ(reg.counter("app.requests").value(), 3u);
    EXPECT_EQ(reg.gauge("monitor.load").value(), 0.7);
    EXPECT_EQ(reg.histogram("app.latency").count(), 1u);
    EXPECT_TRUE(reg.has("app.requests"));
    EXPECT_FALSE(reg.has("missing"));
    EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, ReferencesAreStable)
{
    MetricsRegistry reg;
    Counter &first = reg.counter("a");
    // Registering many more metrics must not move the original.
    for (int i = 0; i < 100; ++i)
        reg.counter("filler." + std::to_string(i));
    EXPECT_EQ(&first, &reg.counter("a"));
    first.inc();
    EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(MetricsRegistryTest, DumpIsNameOrdered)
{
    MetricsRegistry reg;
    reg.counter("zeta").inc();
    reg.counter("alpha").inc();
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

TEST(MetricsRegistryTest, JsonSnapshotIsBalancedAndComplete)
{
    MetricsRegistry reg;
    reg.counter("app.requests").inc(42);
    reg.gauge("monitor.util").set(0.25);
    reg.histogram("app.latency").record(1000);
    reg.histogram("app.latency").record(3000);

    std::ostringstream os;
    reg.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"app.requests\":42"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    long depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, ResetAllZeroesEverything)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("c");
    c.inc(9);
    reg.gauge("g").set(5.0);
    reg.histogram("h").record(5);
    reg.resetAll();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
    // Same instance after reset: held references stay valid.
    EXPECT_EQ(&c, &reg.counter("c"));
}

TEST(MetricsRegistryTest, SnapshotJsonIsByteStableAndRoundTrips)
{
    // Names inserted out of order, with every character class the
    // emitter must escape for the snapshot to stay parseable.
    MetricsRegistry reg;
    reg.counter("zeta.\"quoted\"").inc(7);
    reg.counter("alpha\\back").inc(1);
    reg.gauge("tab\there").set(1.5);
    reg.histogram("newline\nname").record(123);

    const std::string a = reg.snapshotJson();
    EXPECT_EQ(a, reg.snapshotJson()); // byte-stable across calls

    // Round-trip through the strict parser: escaped names survive.
    json::Value root;
    std::string error;
    ASSERT_TRUE(json::parse(a, root, error)) << error << "\n" << a;
    const json::Value *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_TRUE(counters->isObject());
    const json::Value *quoted = counters->find("zeta.\"quoted\"");
    ASSERT_NE(quoted, nullptr);
    EXPECT_EQ(quoted->number, 7.0);
    ASSERT_NE(counters->find("alpha\\back"), nullptr);
    const json::Value *gauges = root.find("gauges");
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(gauges->find("tab\there"), nullptr);

    // Keys are sorted unconditionally, whatever the insertion order.
    ASSERT_EQ(counters->object.size(), 2u);
    EXPECT_EQ(counters->object[0].first, "alpha\\back");

    // Escapes the tiny parser cannot read back still render as valid
    // JSON escape sequences, not raw control bytes.
    MetricsRegistry ctrl;
    ctrl.counter(std::string("bell\x07" "cr\rff\fbs\b")).inc();
    const std::string c = ctrl.snapshotJson();
    EXPECT_NE(c.find("\\u0007"), std::string::npos);
    EXPECT_NE(c.find("\\r"), std::string::npos);
    EXPECT_NE(c.find("\\f"), std::string::npos);
    EXPECT_NE(c.find("\\b"), std::string::npos);
    for (char ch : c)
        EXPECT_TRUE(static_cast<unsigned char>(ch) >= 0x20 ||
                    ch == '\n')
            << "raw control byte leaked into the snapshot";
}

} // namespace
} // namespace uqsim
