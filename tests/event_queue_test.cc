/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/event_queue.hh"

namespace uqsim {
namespace {

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.executedCount(), 0u);
}

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickFiresFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(42, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.popNext().second();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PopReturnsFiringTime)
{
    EventQueue q;
    q.schedule(123, [] {});
    EXPECT_EQ(q.nextTick(), 123u);
    auto [when, cb] = q.popNext();
    EXPECT_EQ(when, 123u);
    cb();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    EventHandle h = q.schedule(5, [&] { fired = true; });
    EXPECT_TRUE(h.valid());
    h.cancel();
    EXPECT_TRUE(h.isCancelled());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent)
{
    EventQueue q;
    EventHandle h = q.schedule(5, [] {});
    h.cancel();
    h.cancel();
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, CancelMiddleEventSkipsOnlyIt)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    EventHandle h = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    h.cancel();
    EXPECT_EQ(q.size(), 2u);
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelAfterFireIsNoop)
{
    EventQueue q;
    EventHandle h = q.schedule(1, [] {});
    auto [when, cb] = q.popNext();
    cb();
    EXPECT_TRUE(h.hasFired());
    h.cancel(); // must not corrupt the live count
    EXPECT_TRUE(q.empty());
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, DefaultHandleIsInvalid)
{
    EventHandle h;
    EXPECT_FALSE(h.valid());
    h.cancel(); // safe no-op
}

TEST(EventQueueTest, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(2, [&] { ++fired; });
    });
    while (!q.empty())
        q.popNext().second();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.executedCount(), 2u);
}

TEST(EventQueueTest, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = 0;
    for (int i = 0; i < 10000; ++i)
        q.schedule(static_cast<Tick>((i * 7919) % 1000), [] {});
    while (!q.empty()) {
        auto [when, cb] = q.popNext();
        EXPECT_GE(when, last);
        last = when;
        cb();
    }
    EXPECT_EQ(q.executedCount(), 10000u);
}

} // namespace
} // namespace uqsim
