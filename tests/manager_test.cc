/**
 * @file
 * Tests for the cluster-management components: monitor, autoscaler,
 * rate limiter and QoS tracker.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "manager/autoscaler.hh"
#include "manager/monitor.hh"
#include "manager/qos.hh"
#include "manager/rate_limiter.hh"
#include "workload/generators.hh"

namespace uqsim::manager {
namespace {

apps::WorldConfig
smallConfig()
{
    apps::WorldConfig c;
    c.workerServers = 4;
    return c;
}

void
buildOneTier(apps::World &w, double work_us, unsigned threads)
{
    service::ServiceDef front;
    front.name = "front";
    front.kind = service::ServiceKind::Frontend;
    front.handler.compute(Dist::exponential(work_us * 1440.0));
    front.threadsPerInstance = threads;
    w.app->addService(std::move(front)).addInstance(w.worker(0));
    w.app->setEntry("front");
    w.app->addQueryType({"q", 1, 1.0, 0, {}});
    w.app->setQosLatency(5 * kTicksPerMs);
    w.app->validate();
}

TEST(MonitorTest, SamplesOnInterval)
{
    apps::World w(smallConfig());
    buildOneTier(w, 200.0, 16);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    w.sim.runFor(kTicksPerSec);
    mon.stop();
    EXPECT_NEAR(static_cast<double>(mon.history().size()), 10.0, 1.0);
    EXPECT_EQ(mon.history()[0][0].service, "front");
}

TEST(MonitorTest, LatencyAndUtilizationUnderLoad)
{
    apps::World w(smallConfig());
    buildOneTier(w, 400.0, 16);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    gen.setQps(2000.0);
    gen.start();
    w.sim.runFor(2 * kTicksPerSec);
    const TierSample s = mon.latest("front");
    EXPECT_GT(s.p99, 0u);
    EXPECT_GT(s.cpuUtil, 0.02);
    EXPECT_EQ(s.instances, 1u);
}

TEST(MonitorTest, BaselineLatencyFromEarlyRounds)
{
    apps::World w(smallConfig());
    buildOneTier(w, 200.0, 16);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    gen.setQps(500.0);
    gen.start();
    w.sim.runFor(kTicksPerSec);
    const auto base = mon.baselineLatency(5);
    ASSERT_TRUE(base.count("front"));
    EXPECT_GT(base.at("front"), 0.0);
}

TEST(AutoScalerTest, ScalesOutUnderSaturation)
{
    apps::World w(smallConfig());
    buildOneTier(w, 500.0, 4); // 4 threads: saturates quickly
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    AutoScaler::Config cfg;
    cfg.threshold = 0.7;
    cfg.interval = 200 * kTicksPerMs;
    cfg.startupDelay = 300 * kTicksPerMs;
    cfg.cooldown = 500 * kTicksPerMs;
    AutoScaler scaler(*w.app, mon, cfg,
                      [&]() -> cpu::Server & { return w.nextWorker(); });
    scaler.watch("front");
    scaler.start();

    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    gen.setQps(6000.0);
    gen.start();
    w.sim.runFor(5 * kTicksPerSec);
    EXPECT_GT(scaler.events().size(), 0u);
    EXPECT_GT(w.app->service("front").instances().size(), 1u);
    // New instances eventually become active.
    EXPECT_GT(w.app->service("front").activeInstances(), 1u);
}

TEST(AutoScalerTest, NoScalingWhenIdle)
{
    apps::World w(smallConfig());
    buildOneTier(w, 200.0, 16);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    AutoScaler scaler(*w.app, mon, AutoScaler::Config{},
                      [&]() -> cpu::Server & { return w.nextWorker(); });
    scaler.watch("front");
    scaler.start();
    w.sim.runFor(3 * kTicksPerSec);
    EXPECT_EQ(scaler.events().size(), 0u);
}

TEST(AutoScalerTest, CooldownLimitsRate)
{
    apps::World w(smallConfig());
    buildOneTier(w, 500.0, 2);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    AutoScaler::Config cfg;
    cfg.threshold = 0.5;
    cfg.interval = 100 * kTicksPerMs;
    cfg.cooldown = 2 * kTicksPerSec;
    cfg.startupDelay = 10 * kTicksPerSec; // never activates in test
    AutoScaler scaler(*w.app, mon, cfg,
                      [&]() -> cpu::Server & { return w.nextWorker(); });
    scaler.watch("front");
    scaler.start();
    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    gen.setQps(8000.0);
    gen.start();
    w.sim.runFor(4 * kTicksPerSec);
    EXPECT_LE(scaler.events().size(), 2u); // 4s / 2s cooldown
}

TEST(AutoScalerTest, MaxInstancesCap)
{
    apps::World w(smallConfig());
    buildOneTier(w, 500.0, 2);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    AutoScaler::Config cfg;
    cfg.threshold = 0.4;
    cfg.interval = 100 * kTicksPerMs;
    cfg.cooldown = 100 * kTicksPerMs;
    cfg.startupDelay = 100 * kTicksPerMs;
    cfg.maxInstances = 2;
    AutoScaler scaler(*w.app, mon, cfg,
                      [&]() -> cpu::Server & { return w.nextWorker(); });
    scaler.watch("front");
    scaler.start();
    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    gen.setQps(20000.0);
    gen.start();
    w.sim.runFor(4 * kTicksPerSec);
    EXPECT_LE(w.app->service("front").instances().size(), 2u);
}

TEST(AutoScalerTest, ScaleBudgetLimitsPerRound)
{
    // Two saturated tiers, budget of one scale-out per round: the
    // scaler must alternate instead of upsizing both at once.
    apps::World w(smallConfig());
    service::App &app = *w.app;
    for (const char *name : {"a", "b"}) {
        service::ServiceDef def;
        def.name = name;
        def.handler.compute(Dist::exponential(500.0 * 1440.0));
        def.threadsPerInstance = 2;
        app.addService(std::move(def)).addInstance(w.worker(0));
    }
    service::ServiceDef fe;
    fe.name = "fe";
    fe.kind = service::ServiceKind::Frontend;
    fe.handler.call("a").call("b");
    fe.threadsPerInstance = 64;
    app.addService(std::move(fe)).addInstance(w.worker(1));
    app.setEntry("fe");
    app.addQueryType({"q", 1, 1.0, 0, {}});
    app.validate();

    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    AutoScaler::Config cfg;
    cfg.threshold = 0.5;
    cfg.interval = 100 * kTicksPerMs;
    cfg.cooldown = 100 * kTicksPerMs;
    cfg.startupDelay = 10 * kTicksPerSec; // stay saturated in-test
    cfg.maxScaleOutsPerRound = 1;
    AutoScaler scaler(*w.app, mon, cfg,
                      [&]() -> cpu::Server & { return w.nextWorker(); });
    scaler.watch("a");
    scaler.watch("b");
    scaler.start();

    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    gen.setQps(8000.0);
    gen.start();
    w.sim.runFor(kTicksPerSec);
    // >= 2 rounds happened; with budget 1 no two events share a tick.
    const auto &events = scaler.events();
    ASSERT_GE(events.size(), 2u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].time, events[i - 1].time);
}

TEST(RateLimiterTest, AdmitsUpToRate)
{
    apps::World w(smallConfig());
    buildOneTier(w, 100.0, 32);
    RateLimiter rl(*w.app, 100.0, 10.0);
    // Burst of 50 at t=0: only the bucket depth is admitted.
    int admitted = 0;
    for (int i = 0; i < 50; ++i)
        if (rl.tryInject(0, 1))
            ++admitted;
    EXPECT_EQ(admitted, 10);
    EXPECT_EQ(rl.rejected(), 40u);
    // After a second, ~100 more tokens have accrued (capped at burst).
    w.sim.runFor(kTicksPerSec);
    EXPECT_TRUE(rl.tryInject(0, 1));
}

TEST(RateLimiterTest, UnlimitedWhenRateNonPositive)
{
    apps::World w(smallConfig());
    buildOneTier(w, 100.0, 32);
    RateLimiter rl(*w.app, 0.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(rl.tryInject(0, 1));
    EXPECT_EQ(rl.rejected(), 0u);
}

TEST(QosTrackerTest, DetectsViolationAndRecovery)
{
    apps::World w(smallConfig());
    buildOneTier(w, 500.0, 4);
    w.app->setQosLatency(3 * kTicksPerMs);
    Monitor mon(*w.app, 100 * kTicksPerMs);
    mon.start();
    workload::OpenLoopGenerator gen(*w.app, workload::QueryMix({1.0}),
                                    workload::UserPopulation::uniform(10),
                                    3);
    // Healthy, then overloaded, then healthy again.
    gen.setQps(200.0);
    gen.start();
    w.sim.runFor(kTicksPerSec);
    gen.setQps(9000.0);
    w.sim.runFor(2 * kTicksPerSec);
    gen.setQps(100.0);
    w.sim.runFor(4 * kTicksPerSec);

    QosTracker qos(*w.app, mon, 3 * kTicksPerMs);
    const Tick detect = qos.firstEndToEndViolation();
    EXPECT_GT(detect, 0u);
    EXPECT_GE(detect, kTicksPerSec / 2);
    const Tick recovery = qos.recoveryTime(detect);
    EXPECT_GT(recovery, 0u);
    EXPECT_FALSE(qos.violations().empty());
}

} // namespace
} // namespace uqsim::manager
