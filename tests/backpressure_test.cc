/**
 * @file
 * Backpressure property tests (the Sec 6 mechanism): a slow callee
 * behind a blocking HTTP/1 pool parks the caller's worker threads, so
 * the caller looks saturated (high occupancy, long queues) while its
 * CPU idles - the signal combination that fools utilization-based
 * autoscalers in Fig 17B.
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "service/app.hh"
#include "workload/generators.hh"

namespace uqsim::service {
namespace {

struct TwoTier
{
    explicit TwoTier(bool blocking, double backend_us)
        : world(makeConfig())
    {
        App &app = *world.app;
        ServiceDef back;
        back.name = "memcached";
        back.handler.compute(
            Dist::constant(backend_us * 1440.0));
        back.threadsPerInstance = 8;
        back.protocol = blocking ? rpc::ProtocolModel::restHttp1()
                                 : rpc::ProtocolModel::thrift();
        back.protocol.connectionsPerPair = 4;
        app.addService(std::move(back)).addInstance(world.worker(1));

        ServiceDef front;
        front.name = "nginx";
        front.kind = ServiceKind::Frontend;
        front.handler.compute(Dist::constant(30000.0)).call("memcached");
        front.threadsPerInstance = 32;
        app.addService(std::move(front)).addInstance(world.worker(0));
        app.setEntry("nginx");
        app.addQueryType({"read", 1, 1.0, 0, {}});
        app.validate();
    }

    static apps::WorldConfig
    makeConfig()
    {
        apps::WorldConfig c;
        c.workerServers = 2;
        return c;
    }

    apps::World world;
};

TEST(BackpressureTest, SlowCalleeParksCallerThreads)
{
    // memcached "slightly degraded": ~3.6ms per op, 4 connections:
    // the pool's throughput ceiling is ~1.1k op/s, far below the
    // offered 2.5k QPS, so requests back up inside nginx.
    TwoTier t(/*blocking=*/true, /*backend_us=*/3000.0);
    workload::OpenLoopGenerator gen(
        *t.world.app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(100), 1);
    gen.setQps(2500.0);
    gen.start();
    t.world.sim.runFor(2 * kTicksPerSec);

    Microservice &nginx = t.world.app->service("nginx");
    Microservice &mc = t.world.app->service("memcached");
    // nginx *appears* saturated: most worker threads occupied.
    EXPECT_GT(nginx.meanOccupancy(), 0.7);
    // ...but its CPU is nearly idle (it is just blocked).
    const double nginx_cpu =
        static_cast<double>(
            nginx.instances()[0]->cpuBusyTime()) /
        static_cast<double>(t.world.sim.now());
    EXPECT_LT(nginx_cpu, 0.2 * nginx.def().threadsPerInstance);
    // memcached itself is NOT thread-saturated: the connection limit
    // throttles it below its own capacity.
    EXPECT_LT(mc.meanOccupancy(), 0.9);
}

TEST(BackpressureTest, NonBlockingProtocolAvoidsThreadParking)
{
    TwoTier blocking(true, 3000.0);
    TwoTier rpc(false, 3000.0);
    for (TwoTier *t : {&blocking, &rpc}) {
        workload::OpenLoopGenerator gen(
            *t->world.app, workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(100), 1);
        gen.setQps(2000.0);
        gen.start();
        t->world.sim.runFor(2 * kTicksPerSec);
    }
    // With multiplexed RPC, nginx threads wait on actual service time
    // only; occupancy stays lower than in the blocked configuration.
    EXPECT_LT(rpc.world.app->service("nginx").meanOccupancy(),
              blocking.world.app->service("nginx").meanOccupancy());
}

TEST(BackpressureTest, HealthyBackendKeepsLatencyFlat)
{
    TwoTier t(true, /*backend_us=*/80.0);
    workload::OpenLoopGenerator gen(
        *t.world.app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(100), 1);
    gen.setQps(800.0);
    gen.start();
    t.world.sim.runFor(2 * kTicksPerSec);
    EXPECT_LT(t.world.app->endToEndLatency().p99(), 2 * kTicksPerMs);
    EXPECT_LT(t.world.app->service("nginx").meanOccupancy(), 0.3);
}

TEST(BackpressureTest, PoolWaitersAccumulateUnderOverload)
{
    TwoTier t(true, 3000.0);
    workload::OpenLoopGenerator gen(
        *t.world.app, workload::QueryMix({1.0}),
        workload::UserPopulation::uniform(100), 1);
    gen.setQps(3000.0);
    gen.start();
    t.world.sim.runFor(kTicksPerSec);
    // End-to-end tail blows up (Fig 17B's latency explosion).
    EXPECT_GT(t.world.app->endToEndLatency().p99(), 10 * kTicksPerMs);
}

} // namespace
} // namespace uqsim::service
