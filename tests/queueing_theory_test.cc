/**
 * @file
 * Statistical validation of the simulation core against closed-form
 * queueing theory.
 *
 * A single-tier service with Poisson arrivals and exponential service
 * times is driven directly on the Simulator as an M/M/1 and an M/M/k
 * station. Nothing about waiting or utilisation is hard-coded in the
 * model — queueing delay emerges purely from event dynamics — so the
 * simulated mean sojourn time and server utilisation must match the
 * M/M/1 formula and the Erlang-C prediction within sampling tolerance.
 * This validates the suite's core claim that tail/queueing phenomena
 * in the app models emerge from dynamics, not from baked-in numbers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <functional>

#include "core/rng.hh"
#include "core/simulator.hh"
#include "core/types.hh"

namespace uqsim {
namespace {

/** Erlang-C: probability an arrival must wait in an M/M/k queue. */
double
erlangC(unsigned k, double offeredLoad)
{
    // offeredLoad a = lambda/mu (in Erlangs), requires a < k.
    double invSum = 0.0;
    double term = 1.0; // a^i / i!
    for (unsigned i = 0; i < k; ++i) {
        invSum += term;
        term *= offeredLoad / static_cast<double>(i + 1);
    }
    // term now = a^k / k!
    const double last =
        term * static_cast<double>(k) /
        (static_cast<double>(k) - offeredLoad);
    return last / (invSum + last);
}

struct MmkResult
{
    double meanSojournTicks = 0.0;
    double utilization = 0.0;
};

/**
 * Simulate an M/M/k FCFS station on the event queue.
 * @param meanServiceTicks   1/mu in ticks
 * @param rho                per-server utilisation target in (0,1)
 * @param k                  server count
 * @param jobs               measured completions (after warmup)
 */
MmkResult
simulateMmk(std::uint64_t seed, double meanServiceTicks, double rho,
            unsigned k, std::uint64_t jobs)
{
    const double meanInterarrival =
        meanServiceTicks / (rho * static_cast<double>(k));
    const std::uint64_t warmup = jobs / 5;
    const std::uint64_t totalArrivals = warmup + jobs + jobs / 5;

    Simulator sim;
    Rng rng(seed);

    struct Station
    {
        std::deque<Tick> waiting; // arrival tick of queued jobs
        unsigned busy = 0;
        std::uint64_t arrivals = 0;
        std::uint64_t completed = 0;
        double sumSojourn = 0.0;
        std::uint64_t measured = 0;
        // Busy-server time integral over the measured window.
        Tick lastChange = 0;
        double busyTicks = 0.0;
        Tick measureStart = 0;
        Tick lastCompletion = 0;
        bool measuring = false;
    } st;

    auto accountBusy = [&] {
        if (st.measuring)
            st.busyTicks += static_cast<double>(st.busy) *
                            static_cast<double>(sim.now() - st.lastChange);
        st.lastChange = sim.now();
    };

    // Forward declarations via std::function so the closures can chain.
    std::function<void(Tick)> startService;
    startService = [&](Tick arrived) {
        sim.schedule(
            static_cast<Tick>(rng.exponential(meanServiceTicks)) + 1,
            [&, arrived] {
                ++st.completed;
                if (st.completed == warmup) {
                    // Open the measurement window at a completion
                    // boundary so warmup bias is flushed.
                    st.measureStart = sim.now();
                    st.lastChange = sim.now();
                    st.busyTicks = 0.0;
                    st.measuring = true;
                }
                if (st.completed > warmup &&
                    st.measured < jobs) {
                    st.sumSojourn +=
                        static_cast<double>(sim.now() - arrived);
                    ++st.measured;
                    st.lastCompletion = sim.now();
                }
                accountBusy();
                // Close the busy integral together with the sojourn
                // window, so the drain tail is excluded from both.
                if (st.measured == jobs)
                    st.measuring = false;
                if (!st.waiting.empty()) {
                    const Tick next = st.waiting.front();
                    st.waiting.pop_front();
                    startService(next);
                } else {
                    --st.busy;
                }
            });
    };

    std::function<void()> arrive = [&] {
        if (st.arrivals < totalArrivals) {
            ++st.arrivals;
            sim.schedule(
                static_cast<Tick>(rng.exponential(meanInterarrival)) + 1,
                arrive);
            accountBusy();
            if (st.busy < k) {
                ++st.busy;
                startService(sim.now());
            } else {
                st.waiting.push_back(sim.now());
            }
        }
    };

    sim.schedule(0, arrive);
    sim.run();

    MmkResult r;
    r.meanSojournTicks =
        st.sumSojourn / static_cast<double>(st.measured);
    const double span =
        static_cast<double>(st.lastCompletion - st.measureStart);
    r.utilization = st.busyTicks / (static_cast<double>(k) * span);
    return r;
}

constexpr double kMeanServiceTicks = 100.0 * kTicksPerUs; // 100us
constexpr std::uint64_t kJobs = 150000;
constexpr std::uint64_t kSeeds[] = {7001, 7002, 7003};

TEST(QueueingTheoryTest, Mm1SojournMatchesClosedForm)
{
    const double rho = 0.7;
    // M/M/1 FCFS: E[T] = (1/mu) / (1 - rho).
    const double expected = kMeanServiceTicks / (1.0 - rho);
    for (std::uint64_t seed : kSeeds) {
        const MmkResult r =
            simulateMmk(seed, kMeanServiceTicks, rho, 1, kJobs);
        EXPECT_NEAR(r.meanSojournTicks, expected, 0.05 * expected)
            << "seed=" << seed;
        EXPECT_NEAR(r.utilization, rho, 0.02) << "seed=" << seed;
    }
}

TEST(QueueingTheoryTest, MmkSojournMatchesErlangC)
{
    const unsigned k = 4;
    const double rho = 0.7;
    const double a = rho * static_cast<double>(k); // offered Erlangs
    const double mu = 1.0 / kMeanServiceTicks;
    const double lambda = a * mu;
    // M/M/k FCFS: E[T] = C(k, a) / (k*mu - lambda) + 1/mu.
    const double expected =
        erlangC(k, a) / (static_cast<double>(k) * mu - lambda) +
        kMeanServiceTicks;
    for (std::uint64_t seed : kSeeds) {
        const MmkResult r =
            simulateMmk(seed, kMeanServiceTicks, rho, k, kJobs);
        EXPECT_NEAR(r.meanSojournTicks, expected, 0.05 * expected)
            << "seed=" << seed;
        EXPECT_NEAR(r.utilization, rho, 0.02) << "seed=" << seed;
    }
}

TEST(QueueingTheoryTest, HigherLoadQueuesLonger)
{
    // Sanity on the dynamics: sojourn must grow sharply with rho.
    const MmkResult lo =
        simulateMmk(7010, kMeanServiceTicks, 0.3, 1, 40000);
    const MmkResult hi =
        simulateMmk(7010, kMeanServiceTicks, 0.9, 1, 40000);
    EXPECT_GT(hi.meanSojournTicks, 3.0 * lo.meanSojournTicks);
}

} // namespace
} // namespace uqsim
