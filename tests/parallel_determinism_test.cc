/**
 * @file
 * Determinism of the sharded engine under full application models.
 *
 * Extends tests/determinism_test.cc to WorldHandle: at any fixed
 * shard count the composed execution digest must be identical for
 * --threads 1 and --threads 4 (determinism by construction, not by
 * accident of scheduling), a one-shard WorldHandle must reproduce the
 * standalone World digest bit-for-bit, and the M/M/k statistical
 * validation must keep holding when the stations run as shards of a
 * parallel engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "apps/scenario.hh"
#include "apps/social_network.hh"
#include "core/rng.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

struct ShardedRun
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    std::uint64_t completed = 0;
};

/** The determinism_test social-network workload, sharded. */
ShardedRun
runSharded(const std::string &app_name, unsigned shards,
           unsigned threads, std::uint64_t seed, double qps,
           Tick measure = 3 * kTicksPerSec / 10)
{
    apps::Scenario scn;
    scn.app = app_name;
    scn.seed = seed;
    scn.shards = shards;
    scn.threads = threads;
    if (app_name == "swarm-cloud")
        scn.drones = 8;
    apps::WorldHandle w(apps::worldConfigFor(scn), shards, threads);
    for (unsigned s = 0; s < shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    apps::LoadSpec load;
    load.qps = qps;
    load.warmup = measure / 3;
    load.measure = measure;
    load.users = workload::UserPopulation::uniform(100);
    load.seed = seed;
    const auto r = apps::runWorld(w, load);
    ShardedRun out;
    out.digest = w.engine().executionDigest();
    out.events = w.engine().eventsExecuted();
    out.completed = r.completed;
    return out;
}

TEST(ParallelDeterminismTest, SocialNetworkThreadCountInvariant)
{
    for (unsigned shards : {1u, 2u, 4u}) {
        const ShardedRun one =
            runSharded("social-network", shards, 1, 42, 200.0);
        const ShardedRun four =
            runSharded("social-network", shards, 4, 42, 200.0);
        EXPECT_GT(one.completed, 0u) << "shards=" << shards;
        EXPECT_EQ(one.digest, four.digest) << "shards=" << shards;
        EXPECT_EQ(one.events, four.events) << "shards=" << shards;
        EXPECT_EQ(one.completed, four.completed) << "shards=" << shards;
    }
}

TEST(ParallelDeterminismTest, OneShardMatchesStandaloneWorld)
{
    // The classic single-Simulator path, exactly as determinism_test
    // drives it.
    apps::WorldConfig c;
    c.workerServers = 5;
    c.seed = 42;
    apps::World standalone(c);
    apps::buildSocialNetwork(standalone);
    workload::runLoad(*standalone.app, 200.0, kTicksPerSec / 10,
                      3 * kTicksPerSec / 10,
                      workload::QueryMix::fromApp(*standalone.app),
                      workload::UserPopulation::uniform(100), 42);

    const ShardedRun sharded =
        runSharded("social-network", 1, 1, 42, 200.0);
    EXPECT_EQ(sharded.digest, standalone.sim.executionDigest());
    EXPECT_EQ(sharded.events, standalone.sim.eventsExecuted());
}

TEST(ParallelDeterminismTest, DifferentSeedsDifferentDigests)
{
    const ShardedRun a = runSharded("social-network", 2, 2, 42, 200.0);
    const ShardedRun b = runSharded("social-network", 2, 2, 43, 200.0);
    EXPECT_NE(a.digest, b.digest);
}

TEST(ParallelDeterminismTest, SwarmThreadCountInvariant)
{
    // Swarm requests take ~600ms end to end, so the window must be
    // seconds long for any to complete inside it.
    const ShardedRun one =
        runSharded("swarm-cloud", 2, 1, 7, 8.0, 2 * kTicksPerSec);
    const ShardedRun two =
        runSharded("swarm-cloud", 2, 4, 7, 8.0, 2 * kTicksPerSec);
    EXPECT_GT(one.completed, 0u);
    EXPECT_EQ(one.digest, two.digest);
    EXPECT_EQ(one.events, two.events);
}

// -- M/M/k stations as shards -------------------------------------------

/** Erlang-C: probability an arrival must wait in an M/M/k queue. */
double
erlangC(unsigned k, double offered)
{
    double invSum = 0.0, term = 1.0;
    for (unsigned i = 0; i < k; ++i) {
        invSum += term;
        term *= offered / static_cast<double>(i + 1);
    }
    const double last = term * static_cast<double>(k) /
                        (static_cast<double>(k) - offered);
    return last / (invSum + last);
}

/**
 * An M/M/k FCFS station scheduling through a SimContext — the
 * queueing_theory_test station, shard-hostable. Queueing emerges from
 * event dynamics only.
 */
class MmkStation
{
  public:
    MmkStation(SimContext ctx, std::uint64_t seed, double mean_service,
               double rho, unsigned k, std::uint64_t jobs)
        : ctx_(ctx), rng_(seed), meanService_(mean_service), k_(k),
          jobs_(jobs),
          meanInterarrival_(mean_service /
                            (rho * static_cast<double>(k))),
          warmup_(jobs / 5), totalArrivals_(warmup_ + jobs + jobs / 5)
    {}

    void
    start()
    {
        ctx_.schedule(0, [this]() { arrive(); });
    }

    double
    meanSojournTicks() const
    {
        return sumSojourn_ / static_cast<double>(measured_);
    }

  private:
    void
    arrive()
    {
        if (arrivals_ >= totalArrivals_)
            return;
        ++arrivals_;
        ctx_.schedule(
            static_cast<Tick>(rng_.exponential(meanInterarrival_)) + 1,
            [this]() { arrive(); });
        if (busy_ < k_) {
            ++busy_;
            startService(ctx_.now());
        } else {
            waiting_.push_back(ctx_.now());
        }
    }

    void
    startService(Tick arrived)
    {
        ctx_.schedule(
            static_cast<Tick>(rng_.exponential(meanService_)) + 1,
            [this, arrived]() {
                ++completed_;
                if (completed_ > warmup_ && measured_ < jobs_) {
                    sumSojourn_ +=
                        static_cast<double>(ctx_.now() - arrived);
                    ++measured_;
                }
                if (!waiting_.empty()) {
                    const Tick next = waiting_.front();
                    waiting_.pop_front();
                    startService(next);
                } else {
                    --busy_;
                }
            });
    }

    SimContext ctx_;
    Rng rng_;
    double meanService_;
    unsigned k_;
    std::uint64_t jobs_;
    double meanInterarrival_;
    std::uint64_t warmup_;
    std::uint64_t totalArrivals_;

    std::deque<Tick> waiting_;
    unsigned busy_ = 0;
    std::uint64_t arrivals_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t measured_ = 0;
    double sumSojourn_ = 0.0;
};

TEST(ParallelDeterminismTest, MmkUnderFourShardsMatchesErlangC)
{
    constexpr double kMeanServiceTicks = 100.0 * kTicksPerUs;
    constexpr double kRho = 0.7;
    constexpr unsigned kServers = 4;
    constexpr std::uint64_t kJobs = 60000;
    constexpr unsigned kShards = 4;

    ParallelSimulator par({kShards, kMaxTick, kShards});
    std::vector<std::unique_ptr<MmkStation>> stations;
    for (unsigned s = 0; s < kShards; ++s) {
        stations.push_back(std::make_unique<MmkStation>(
            par.context(s), 9000 + s, kMeanServiceTicks, kRho, kServers,
            kJobs));
        stations.back()->start();
    }
    par.run();

    // Each shard must be bit-identical to the same station driven on a
    // plain Simulator with the same seed.
    for (unsigned s = 0; s < kShards; ++s) {
        Simulator sim;
        MmkStation ref(SimContext(sim), 9000 + s, kMeanServiceTicks,
                       kRho, kServers, kJobs);
        ref.start();
        sim.run();
        EXPECT_EQ(par.shardDigest(s), sim.executionDigest())
            << "shard " << s;
        EXPECT_NEAR(stations[s]->meanSojournTicks(),
                    ref.meanSojournTicks(), 1e-9);
    }

    // Aggregate sojourn across the four independent stations must
    // match the Erlang-C closed form within sampling tolerance.
    const double a = kRho * kServers;
    const double mu = 1.0 / kMeanServiceTicks;
    const double lambda = a * mu;
    const double expected =
        erlangC(kServers, a) / (kServers * mu - lambda) +
        kMeanServiceTicks;
    double mean = 0.0;
    for (const auto &st : stations)
        mean += st->meanSojournTicks() / kShards;
    EXPECT_NEAR(mean, expected, 0.05 * expected);
}

} // namespace
} // namespace uqsim
