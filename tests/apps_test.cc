/**
 * @file
 * Structural tests over the six end-to-end applications: Table-1
 * service counts, graph validity, catalog metadata, DOT export and
 * basic liveness of every app.
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "apps/swarm.hh"
#include "apps/single_tier.hh"
#include "apps/social_network.hh"
#include "workload/load_sweep.hh"

namespace uqsim::apps {
namespace {

WorldConfig
cfg(unsigned servers = 5)
{
    WorldConfig c;
    c.workerServers = servers;
    return c;
}

/** Table-1 service counts must hold for every app model. */
class AppStructureTest : public ::testing::TestWithParam<AppId>
{};

TEST_P(AppStructureTest, UniqueMicroserviceCountMatchesTable1)
{
    World w(cfg());
    buildApp(w, GetParam());
    EXPECT_EQ(w.app->services().size(),
              appInfo(GetParam()).uniqueMicroservices);
}

TEST_P(AppStructureTest, EveryServiceHasInstances)
{
    World w(cfg());
    buildApp(w, GetParam());
    for (const auto *svc : w.app->services())
        EXPECT_GT(svc->instances().size(), 0u) << svc->name();
}

TEST_P(AppStructureTest, DotExportMentionsEveryService)
{
    World w(cfg());
    buildApp(w, GetParam());
    const std::string dot = w.app->exportDot();
    for (const auto *svc : w.app->services())
        EXPECT_NE(dot.find("\"" + svc->name() + "\""), std::string::npos)
            << svc->name();
}

TEST_P(AppStructureTest, ServesTrafficEndToEnd)
{
    World w(cfg());
    buildApp(w, GetParam());
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users =
        workload::UserPopulation::uniform(500);
    const bool swarm = GetParam() == AppId::SwarmCloud ||
                       GetParam() == AppId::SwarmEdge;
    const double qps = swarm ? 4.0 : 150.0;
    auto r = workload::runLoad(*w.app, qps, kTicksPerSec,
                               3 * kTicksPerSec, mix, users, 13);
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_GT(r.p50, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppStructureTest,
    ::testing::ValuesIn(allApps()),
    [](const ::testing::TestParamInfo<AppId> &info) {
        std::string name = appName(info.param);
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(CatalogTest, SixAppsInTableOrder)
{
    EXPECT_EQ(allApps().size(), 6u);
    EXPECT_EQ(cloudApps().size(), 4u);
    EXPECT_EQ(appInfo(AppId::SocialNetwork).uniqueMicroservices, 36u);
    EXPECT_EQ(appInfo(AppId::MediaService).uniqueMicroservices, 38u);
    EXPECT_EQ(appInfo(AppId::Ecommerce).uniqueMicroservices, 41u);
    EXPECT_EQ(appInfo(AppId::Banking).uniqueMicroservices, 34u);
    EXPECT_EQ(appInfo(AppId::SwarmCloud).uniqueMicroservices, 25u);
    EXPECT_EQ(appInfo(AppId::SwarmEdge).uniqueMicroservices, 21u);
}

TEST(CatalogTest, MetadataNonEmpty)
{
    for (AppId id : allApps()) {
        const AppInfo &info = appInfo(id);
        EXPECT_FALSE(info.name.empty());
        EXPECT_GT(info.totalLoc, 0u);
        EXPECT_FALSE(info.protocol.empty());
        EXPECT_FALSE(info.languageMix.empty());
    }
}

TEST(SocialNetworkTest, MonolithHasFourTiers)
{
    World w(cfg());
    buildSocialNetworkMonolith(w);
    // nginx + monolith + 2 caches + 2 DBs = 6 tiers.
    EXPECT_EQ(w.app->services().size(), 6u);
    EXPECT_TRUE(w.app->hasService("monolith"));
}

TEST(SocialNetworkTest, QueryTypesRegistered)
{
    World w(cfg());
    const auto q = buildSocialNetwork(w);
    EXPECT_EQ(w.app->queryTypes().size(), 11u);
    EXPECT_EQ(w.app->queryTypes()[q.composeVideo].name,
              "composePost-video");
    EXPECT_GT(w.app->queryTypes()[q.composeVideo].extraPayloadBytes, 0u);
}

TEST(SocialNetworkTest, RepostIsSlowestQueryClass)
{
    // Sec 3.8: reposting incurs the longest latency across queries.
    World w(cfg());
    const auto q = buildSocialNetwork(w);
    workload::QueryMix mix = workload::QueryMix::fromApp(*w.app);
    workload::UserPopulation users =
        workload::UserPopulation::uniform(500);
    workload::runLoad(*w.app, 200.0, kTicksPerSec, 4 * kTicksPerSec, mix,
                      users, 17);
    const auto &read = w.app->endToEndLatencyFor(q.readTimeline);
    const auto &repost = w.app->endToEndLatencyFor(q.repost);
    ASSERT_GT(read.count(), 0u);
    ASSERT_GT(repost.count(), 0u);
    EXPECT_GT(repost.mean(), read.mean());
}

TEST(SingleTierTest, AllBaselinesServe)
{
    for (SingleTierKind kind :
         {SingleTierKind::Nginx, SingleTierKind::Memcached,
          SingleTierKind::MongoDB, SingleTierKind::Xapian,
          SingleTierKind::Recommender}) {
        World w(cfg(2));
        buildSingleTier(w, kind);
        EXPECT_EQ(w.app->services().size(), 1u);
        auto r = workload::runLoad(
            *w.app, 100.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(50), 19);
        EXPECT_GT(r.completed, 0u) << singleTierName(kind);
    }
}

TEST(SingleTierTest, RelativeLatenciesMatchFig3)
{
    // Fig 3: nginx 1293us > mongodb 383us > memcached 186us unloaded.
    auto meanAt = [](SingleTierKind kind) {
        World w(cfg(2));
        buildSingleTier(w, kind);
        auto r = workload::runLoad(
            *w.app, 50.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix({1.0}),
            workload::UserPopulation::uniform(50), 19);
        return r.meanMs;
    };
    const double nginx = meanAt(SingleTierKind::Nginx);
    const double mongo = meanAt(SingleTierKind::MongoDB);
    const double memcached = meanAt(SingleTierKind::Memcached);
    EXPECT_GT(nginx, mongo);
    EXPECT_GT(mongo, memcached);
    EXPECT_LT(memcached, 0.5); // ~0.2ms
}

TEST(SwarmTest, EdgePlacesPipelineOnDrones)
{
    World w(cfg(3));
    SwarmOptions so;
    so.drones = 4;
    buildSwarm(w, SwarmVariant::Edge, so);
    // Drone-local tiers shard across exactly the 4 drones.
    const auto &ir = w.app->service("imageRecognition");
    EXPECT_EQ(ir.instances().size(), 4u);
    for (const auto &inst : ir.instances())
        EXPECT_TRUE(w.network->isWireless(inst->server().id()));
}

TEST(SwarmTest, CloudPlacesPipelineOnWorkers)
{
    World w(cfg(3));
    SwarmOptions so;
    so.drones = 4;
    buildSwarm(w, SwarmVariant::Cloud, so);
    const auto &ir = w.app->service("imageRecognition");
    for (const auto &inst : ir.instances())
        EXPECT_FALSE(w.network->isWireless(inst->server().id()));
    // Sensors stay on the drones in both variants.
    for (const auto &inst : w.app->service("camera-image").instances())
        EXPECT_TRUE(w.network->isWireless(inst->server().id()));
}

TEST(SwarmTest, DroneAffinityKeepsPipelineLocal)
{
    World w(cfg(3));
    SwarmOptions so;
    so.drones = 6;
    buildSwarm(w, SwarmVariant::Edge, so);
    // For a fixed user (drone) id, all drone-local tiers pick
    // instances on the same server.
    service::Request req;
    req.userId = 77;
    const unsigned server =
        w.app->service("controller").selectInstance(req).server().id();
    for (const char *svc :
         {"camera-image", "imageRecognition", "obstacleAvoidance",
          "motionControl", "location", "log"}) {
        EXPECT_EQ(w.app->service(svc).selectInstance(req).server().id(),
                  server)
            << svc;
    }
}

} // namespace
} // namespace uqsim::apps
