/**
 * @file
 * Unit and statistical tests of the stateful data tier's building
 * blocks: key popularity laws (chi-square against the closed-form
 * oracle), exact-trace replacement behaviour of the cache models
 * (LRU/LFU/SLRU, TTL, write policies, cold restarts), consistent-hash
 * shard placement (determinism, balance, minimal remap), and the Che
 * approximation check that ties the emergent LRU hit ratio under IRM
 * Zipf traffic to queueing-theory ground truth.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "core/rng.hh"
#include "data/cache_model.hh"
#include "data/config.hh"
#include "data/keyspace.hh"
#include "data/shard_map.hh"

namespace uqsim::data {
namespace {

// -- key popularity -----------------------------------------------------

/**
 * Chi-square of observed rank counts against the closed-form
 * rankProbability() oracle. The first `head` ranks are individual
 * cells; everything after is one tail cell.
 */
double
rankChiSquare(const KeyspaceConfig &cfg, std::uint64_t samples,
              std::uint64_t head, std::uint64_t seed)
{
    const KeyPopularity pop(cfg);
    Rng rng(seed);
    std::vector<std::uint64_t> counts(head + 1, 0);
    for (std::uint64_t i = 0; i < samples; ++i) {
        const std::uint64_t r = pop.sampleRank(rng);
        ++counts[r < head ? r : head];
    }
    double tail_p = 1.0;
    double chi2 = 0.0;
    for (std::uint64_t r = 0; r < head; ++r) {
        const double p = pop.rankProbability(r);
        tail_p -= p;
        const double expect = p * static_cast<double>(samples);
        const double diff = static_cast<double>(counts[r]) - expect;
        chi2 += diff * diff / expect;
    }
    const double tail_expect = tail_p * static_cast<double>(samples);
    const double tail_diff =
        static_cast<double>(counts[head]) - tail_expect;
    chi2 += tail_diff * tail_diff / tail_expect;
    return chi2;
}

TEST(KeyPopularityTest, ZipfRanksMatchClosedForm)
{
    KeyspaceConfig cfg;
    cfg.keys = 1000;
    cfg.zipfS = 1.0;
    // 31 cells -> 30 dof; chi-square 0.999 critical value is 59.7.
    EXPECT_LT(rankChiSquare(cfg, 200000, 30, 7), 59.7);

    cfg.zipfS = 1.3;
    EXPECT_LT(rankChiSquare(cfg, 200000, 30, 11), 59.7);
}

TEST(KeyPopularityTest, UniformRanksMatchClosedForm)
{
    KeyspaceConfig cfg;
    cfg.keys = 500;
    cfg.popularity = Popularity::Uniform;
    EXPECT_NEAR(KeyPopularity(cfg).rankProbability(0), 1.0 / 500, 1e-12);
    EXPECT_LT(rankChiSquare(cfg, 200000, 30, 13), 59.7);
}

TEST(KeyPopularityTest, HotspotConcentratesMass)
{
    KeyspaceConfig cfg;
    cfg.keys = 1000;
    cfg.popularity = Popularity::Hotspot;
    cfg.hotFraction = 0.1; // hot set = ranks [0, 100)
    cfg.hotMass = 0.9;
    const KeyPopularity pop(cfg);
    Rng rng(5);
    std::uint64_t hot = 0;
    const std::uint64_t n = 100000;
    for (std::uint64_t i = 0; i < n; ++i)
        if (pop.sampleRank(rng) < 100)
            ++hot;
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.01);
    EXPECT_NEAR(pop.rankProbability(0), 0.9 / 100, 1e-12);
    EXPECT_NEAR(pop.rankProbability(999), 0.1 / 900, 1e-12);
}

TEST(KeyspaceTest, SampleConsumesExactlyOneDraw)
{
    // The keyed cache stage replaces a one-draw bernoulli, so a key
    // sample must advance the RNG stream by exactly one draw for every
    // popularity law — otherwise keyed runs perturb unrelated events.
    for (const Popularity p :
         {Popularity::Zipf, Popularity::Uniform, Popularity::Hotspot}) {
        KeyspaceConfig cfg;
        cfg.keys = 64;
        cfg.popularity = p;
        const Keyspace ks(cfg);
        Rng a(99), b(99);
        for (int i = 0; i < 100; ++i)
            ks.sampleKey(a, 0);
        for (int i = 0; i < 100; ++i)
            b.uniform01();
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(a.next(), b.next()) << popularityName(p);
    }
}

TEST(KeyspaceTest, ShiftRotatesTheHotSet)
{
    KeyspaceConfig cfg;
    cfg.keys = 100;
    cfg.shiftPeriod = 1000;
    const Keyspace ks(cfg);
    const std::uint64_t before = ks.keyForRank(0, 0);
    // Stable within a window, different across windows.
    EXPECT_EQ(ks.keyForRank(0, 999), before);
    EXPECT_NE(ks.keyForRank(0, 1000), before);
    EXPECT_NE(ks.keyForRank(0, 2000), ks.keyForRank(0, 1000));

    // The rotation is a permutation: two ranks never collide.
    EXPECT_NE(ks.keyForRank(0, 1000), ks.keyForRank(1, 1000));

    // Without a period the mapping is the identity for all time.
    cfg.shiftPeriod = 0;
    const Keyspace fixed(cfg);
    EXPECT_EQ(fixed.keyForRank(7, 0), 7u);
    EXPECT_EQ(fixed.keyForRank(7, 1u << 30), 7u);
}

// -- cache models -------------------------------------------------------

CacheModelConfig
cacheCfg(std::uint64_t capacity, CachePolicy policy = CachePolicy::Lru)
{
    CacheModelConfig c;
    c.capacity = capacity;
    c.policy = policy;
    return c;
}

TEST(CacheModelTest, LruExactTrace)
{
    CacheModel m(cacheCfg(3));
    // Fill: 1 2 3 all miss.
    EXPECT_FALSE(m.access(1, 0));
    EXPECT_FALSE(m.access(2, 0));
    EXPECT_FALSE(m.access(3, 0));
    // Touch 1 -> order (1, 3, 2) MRU..LRU.
    EXPECT_TRUE(m.access(1, 0));
    // 4 evicts 2 (LRU).
    EXPECT_FALSE(m.access(4, 0));
    EXPECT_FALSE(m.access(2, 0)); // gone; evicts 3
    EXPECT_FALSE(m.access(3, 0)); // gone; evicts 1
    EXPECT_TRUE(m.access(2, 0));  // still resident
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.stats().hits, 2u);
    EXPECT_EQ(m.stats().misses, 6u);
    EXPECT_EQ(m.stats().inserts, 6u);
    EXPECT_EQ(m.stats().evictions, 3u);
}

TEST(CacheModelTest, LfuKeepsFrequentKeys)
{
    CacheModel m(cacheCfg(2, CachePolicy::Lfu));
    m.access(1, 0);
    m.access(1, 0); // freq(1) = 2
    m.access(2, 0); // freq(2) = 1
    m.access(3, 0); // evicts 2, the least frequent
    EXPECT_TRUE(m.access(1, 0));
    EXPECT_FALSE(m.access(2, 0)); // evicts 3 (freq 1, FIFO)
    EXPECT_FALSE(m.access(3, 0));
}

TEST(CacheModelTest, SegmentedLruResistsScans)
{
    CacheModelConfig cfg = cacheCfg(10, CachePolicy::SegmentedLru);
    cfg.protectedFraction = 0.5;
    CacheModel m(cfg);
    // Two accesses promote the hot keys into the protected segment.
    for (std::uint64_t k = 1; k <= 4; ++k) {
        m.access(k, 0);
        m.access(k, 0);
    }
    // A long one-shot scan churns probation only.
    for (std::uint64_t k = 100; k < 200; ++k)
        m.access(k, 0);
    for (std::uint64_t k = 1; k <= 4; ++k)
        EXPECT_TRUE(m.access(k, 0)) << "hot key " << k << " scanned out";

    // Plain LRU of the same capacity loses the hot set to the scan.
    CacheModel lru(cacheCfg(10));
    for (std::uint64_t k = 1; k <= 4; ++k) {
        lru.access(k, 0);
        lru.access(k, 0);
    }
    for (std::uint64_t k = 100; k < 200; ++k)
        lru.access(k, 0);
    for (std::uint64_t k = 1; k <= 4; ++k)
        EXPECT_FALSE(lru.access(k, 0));
}

TEST(CacheModelTest, TtlExpiresEntries)
{
    CacheModelConfig cfg = cacheCfg(16);
    cfg.ttl = 100;
    CacheModel m(cfg);
    EXPECT_FALSE(m.access(1, 0));
    EXPECT_TRUE(m.access(1, 50));   // still fresh
    EXPECT_FALSE(m.access(1, 150)); // expired; reinstalls
    EXPECT_EQ(m.stats().expirations, 1u);
    // The reinstall refreshed the clock.
    EXPECT_TRUE(m.access(1, 200));
}

TEST(CacheModelTest, WriteThroughKeepsKeysWarm)
{
    CacheModelConfig cfg = cacheCfg(16);
    cfg.ttl = 100;
    CacheModel m(cfg);
    m.access(1, 0);
    m.write(1, 90); // refreshes the entry
    EXPECT_TRUE(m.access(1, 150));
    EXPECT_EQ(m.stats().writes, 1u);
    EXPECT_EQ(m.stats().invalidations, 0u);

    // Writing an absent key installs it (the written value is cached).
    m.write(2, 0);
    EXPECT_TRUE(m.access(2, 0));
}

TEST(CacheModelTest, WriteInvalidateEvicts)
{
    CacheModelConfig cfg = cacheCfg(16);
    cfg.write = WritePolicy::Invalidate;
    CacheModel m(cfg);
    m.access(1, 0);
    m.write(1, 0);
    EXPECT_FALSE(m.access(1, 0));
    EXPECT_EQ(m.stats().invalidations, 1u);
    // Invalidating an absent key is a no-op.
    m.write(99, 0);
    EXPECT_EQ(m.stats().invalidations, 1u);
    EXPECT_EQ(m.stats().writes, 2u);
}

TEST(CacheModelTest, EvictionAccountingIsExact)
{
    CacheModel m(cacheCfg(4));
    for (std::uint64_t k = 0; k < 10; ++k)
        m.access(k, 0);
    EXPECT_EQ(m.size(), 4u);
    EXPECT_EQ(m.stats().inserts, 10u);
    EXPECT_EQ(m.stats().evictions, 6u);
}

TEST(CacheModelTest, ClearColdDropsEverything)
{
    CacheModel m(cacheCfg(8));
    for (std::uint64_t k = 0; k < 5; ++k)
        m.access(k, 0);
    m.clearCold();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.stats().coldRestarts, 1u);
    EXPECT_FALSE(m.access(0, 0)); // everything must re-warm
}

TEST(CacheModelTest, DropWrittenAfterTrimsExactlyTheLogTail)
{
    CacheModel m(cacheCfg(16));
    for (std::uint64_t k = 0; k < 4; ++k)
        m.access(k, 100 * k); // written at 0, 100, 200, 300
    m.write(0, 350);          // refresh moves key 0 past the cutoff

    const std::uint64_t dropped = m.dropWrittenAfter(250);
    EXPECT_EQ(dropped, 2u); // keys 3 (t=300) and 0 (refreshed t=350)
    EXPECT_EQ(m.stats().replayDrops, 2u);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_TRUE(m.access(1, 400)); // the applied prefix survives
    EXPECT_TRUE(m.access(2, 400));
    EXPECT_FALSE(m.access(3, 400)); // the un-replicated tail is gone

    // Trimming at or past the newest write is a no-op.
    EXPECT_EQ(m.dropWrittenAfter(1000), 0u);
}

// -- shard placement ----------------------------------------------------

TEST(ShardMapTest, DeterministicAndReasonablyBalanced)
{
    ShardMap a(64), b(64);
    a.rebuild(8);
    b.rebuild(8);
    std::vector<std::uint64_t> counts(8, 0);
    for (std::uint64_t k = 0; k < 100000; ++k) {
        const unsigned s = a.shardFor(k);
        EXPECT_EQ(s, b.shardFor(k));
        ASSERT_LT(s, 8u);
        ++counts[s];
    }
    // 64 vnodes/shard keeps imbalance well under 2x of fair share.
    for (unsigned s = 0; s < 8; ++s) {
        EXPECT_GT(counts[s], 100000 / 8 / 2) << "shard " << s;
        EXPECT_LT(counts[s], 100000 / 8 * 2) << "shard " << s;
    }
}

TEST(ShardMapTest, GrowingMovesAboutOneNth)
{
    ShardMap before(64), after(64);
    before.rebuild(8);
    after.rebuild(9);
    std::uint64_t moved = 0;
    const std::uint64_t n = 100000;
    for (std::uint64_t k = 0; k < n; ++k)
        if (before.shardFor(k) != after.shardFor(k))
            ++moved;
    // Expected 1/9 of the keys; modulo placement would move ~8/9.
    const double frac = static_cast<double>(moved) / n;
    EXPECT_GT(frac, 0.03);
    EXPECT_LT(frac, 0.25);
}

TEST(ShardMapTest, RemovingAShardMovesOnlyItsOwnKeys)
{
    ShardMap before(64), after(64);
    before.rebuild(8);
    after.rebuild(8);
    after.removeShard(3);
    EXPECT_FALSE(after.hasShard(3));
    EXPECT_TRUE(after.hasShard(2));
    EXPECT_EQ(after.shards(), 7u);

    std::uint64_t moved = 0, evacuated = 0;
    const std::uint64_t n = 100000;
    for (std::uint64_t k = 0; k < n; ++k) {
        const unsigned was = before.shardFor(k);
        const unsigned now = after.shardFor(k);
        EXPECT_NE(now, 3u) << "key " << k << " still on the dead shard";
        if (was == 3u) {
            ++evacuated;
            EXPECT_NE(now, was);
        } else {
            // Every other key's owner is stable: the shrink mirror of
            // the grow-remap bound (modulo would reshuffle ~7/8).
            EXPECT_EQ(now, was) << "key " << k << " moved gratuitously";
        }
        if (was != now)
            ++moved;
    }
    EXPECT_EQ(moved, evacuated);
    const double frac = static_cast<double>(moved) / n;
    EXPECT_GT(frac, 0.03); // ~1/8 of the keyspace, not 0
    EXPECT_LT(frac, 0.25); // and nowhere near a full reshuffle
}

TEST(ShardMapTest, HotKeyOwnsExactlyOneShard)
{
    ShardMap m(64);
    m.rebuild(16);
    const unsigned owner = m.shardFor(0); // rank-0: the hottest key
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(m.shardFor(0), owner);
}

// -- Che approximation --------------------------------------------------

/**
 * Che's approximation for LRU under IRM: the characteristic time T_c
 * solves sum_i (1 - e^{-p_i T_c}) = C, and the hit ratio is
 * H = sum_i p_i (1 - e^{-p_i T_c}).
 */
double
cheHitRatio(const KeyPopularity &pop, std::uint64_t keys,
            std::uint64_t capacity)
{
    std::vector<double> p(keys);
    for (std::uint64_t i = 0; i < keys; ++i)
        p[i] = pop.rankProbability(i);
    double lo = 0.0, hi = 1.0;
    auto occupancy = [&](double t) {
        double sum = 0.0;
        for (const double pi : p)
            sum += 1.0 - std::exp(-pi * t);
        return sum;
    };
    while (occupancy(hi) < static_cast<double>(capacity))
        hi *= 2.0;
    for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        (occupancy(mid) < static_cast<double>(capacity) ? lo : hi) = mid;
    }
    const double tc = 0.5 * (lo + hi);
    double h = 0.0;
    for (const double pi : p)
        h += pi * (1.0 - std::exp(-pi * tc));
    return h;
}

TEST(CacheModelTest, LruHitRatioMatchesCheApproximation)
{
    // IRM Zipf accesses through one LRU store: the *emergent* hit
    // ratio must land within 2% (absolute) of Che's approximation —
    // the acceptance bar for the whole keyed data tier.
    KeyspaceConfig cfg;
    cfg.keys = 10000;
    cfg.zipfS = 0.8;
    const KeyPopularity pop(cfg);
    const std::uint64_t capacity = 1000;
    CacheModel m(cacheCfg(capacity));
    Rng rng(17);

    // Warm until the store is full and the hot set has settled.
    for (std::uint64_t i = 0; i < 100000; ++i)
        m.access(pop.sampleRank(rng), 0);
    const CacheStats warm = m.stats();
    for (std::uint64_t i = 0; i < 400000; ++i)
        m.access(pop.sampleRank(rng), 0);
    const CacheStats done = m.stats();

    const double hits = static_cast<double>(done.hits - warm.hits);
    const double misses =
        static_cast<double>(done.misses - warm.misses);
    const double measured = hits / (hits + misses);
    const double predicted = cheHitRatio(pop, cfg.keys, capacity);
    EXPECT_NEAR(measured, predicted, 0.02)
        << "emergent LRU hit ratio drifted from Che's approximation";
}

// -- name parsing -------------------------------------------------------

TEST(DataNamesTest, RoundTrip)
{
    CachePolicy pol;
    EXPECT_TRUE(cachePolicyByName("slru", pol));
    EXPECT_EQ(pol, CachePolicy::SegmentedLru);
    EXPECT_STREQ(cachePolicyName(CachePolicy::SegmentedLru), "slru");
    EXPECT_FALSE(cachePolicyByName("mru", pol));

    Popularity pop;
    EXPECT_TRUE(popularityByName("hotspot", pop));
    EXPECT_EQ(pop, Popularity::Hotspot);
    EXPECT_FALSE(popularityByName("pareto", pop));

    WritePolicy wp;
    EXPECT_TRUE(writePolicyByName("invalidate", wp));
    EXPECT_EQ(wp, WritePolicy::Invalidate);
    EXPECT_FALSE(writePolicyByName("back", wp));
}

} // namespace
} // namespace uqsim::data
