/**
 * @file
 * Tests for the log-bucketed histogram, including a property test
 * comparing percentile queries against exact sorted-sample answers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/histogram.hh"
#include "core/rng.hh"

namespace uqsim {
namespace {

TEST(HistogramTest, EmptyReturnsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(99.0), 0u);
    EXPECT_EQ(h.percentile(100.0), 0u);
}

TEST(HistogramTest, SingleValue)
{
    Histogram h;
    h.record(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 1000u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.mean(), 1000.0);
    // With one sample every percentile is that sample, exactly: the
    // bucket upper bound is clamped to the tracked min/max.
    for (double p : {0.0, 0.1, 50.0, 99.9, 100.0})
        EXPECT_EQ(h.percentile(p), 1000u) << "p=" << p;
}

TEST(HistogramTest, ExtremePercentilesAreExact)
{
    // p0 and p100 must return the exact tracked min/max, not the
    // (possibly overshooting) upper bound of their buckets.
    Histogram h;
    h.record(1000003);
    h.record(999);
    h.record(5000);
    EXPECT_EQ(h.percentile(0.0), 999u);
    EXPECT_EQ(h.percentile(-5.0), 999u);  // clamped into [0, 100]
    EXPECT_EQ(h.percentile(100.0), 1000003u);
    EXPECT_EQ(h.percentile(250.0), 1000003u);
    // Interior percentiles stay within [min, max].
    for (double p = 1.0; p < 100.0; p += 7.0) {
        EXPECT_GE(h.percentile(p), h.min());
        EXPECT_LE(h.percentile(p), h.max());
    }
}

TEST(HistogramTest, HugeValuesSaturateSafely)
{
    Histogram h;
    h.record(~0ull);        // kMaxTick-style sentinel
    h.record(~0ull - 1);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), ~0ull);
    EXPECT_EQ(h.percentile(100.0), ~0ull);
    EXPECT_LE(h.percentile(50.0), ~0ull);
}

TEST(HistogramTest, SmallValuesAreExact)
{
    // Values below the sub-bucket count live in exact unit buckets.
    Histogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.percentile(100.0), 63u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, CountAndMean)
{
    Histogram h;
    h.record(100, 5);
    h.record(200, 5);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_NEAR(h.mean(), 150.0, 1e-9);
}

TEST(HistogramTest, PercentileMonotone)
{
    Histogram h;
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        h.record(static_cast<std::uint64_t>(rng.exponential(50000.0)));
    std::uint64_t prev = 0;
    for (double p = 1.0; p <= 100.0; p += 1.0) {
        const std::uint64_t v = h.percentile(p);
        ASSERT_GE(v, prev);
        prev = v;
    }
}

TEST(HistogramTest, MergeCombinesCounts)
{
    Histogram a, b;
    a.record(100);
    b.record(10000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 100u);
    EXPECT_GE(a.max(), 10000u);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(HistogramTest, MaxNeverExceededByPercentile)
{
    Histogram h;
    h.record(1000003);
    h.record(17);
    EXPECT_LE(h.percentile(100.0), h.max());
}

/**
 * Property: the histogram percentile must match the exact empirical
 * percentile within the bucketing's relative error (~3.2% for 6 sub-
 * bucket bits), across very different distributions.
 */
class HistogramAccuracyTest : public ::testing::TestWithParam<int>
{};

TEST_P(HistogramAccuracyTest, MatchesSortedSamples)
{
    Rng rng(100 + GetParam());
    Histogram h;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 50000; ++i) {
        std::uint64_t v = 0;
        switch (GetParam()) {
          case 0:
            v = static_cast<std::uint64_t>(rng.exponential(1e6));
            break;
          case 1:
            v = static_cast<std::uint64_t>(rng.uniform(0, 1e4));
            break;
          case 2:
            v = static_cast<std::uint64_t>(rng.lognormal(12.0, 1.0));
            break;
          case 3:
            v = static_cast<std::uint64_t>(
                rng.boundedPareto(1.2, 100.0, 1e8));
            break;
        }
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        const std::size_t rank = static_cast<std::size_t>(
            p / 100.0 * static_cast<double>(values.size()));
        const std::uint64_t exact =
            values[std::min(rank, values.size() - 1)];
        const std::uint64_t approx = h.percentile(p);
        const double tolerance =
            std::max(2.0, static_cast<double>(exact) * 0.05);
        EXPECT_NEAR(static_cast<double>(approx),
                    static_cast<double>(exact), tolerance)
            << "p=" << p << " dist=" << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramAccuracyTest,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace uqsim
