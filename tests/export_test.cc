/**
 * @file
 * Tests for the Zipkin JSON trace export and the added application
 * variants (extra Social Network query classes, E-commerce monolith).
 */

#include <gtest/gtest.h>

#include "apps/builder.hh"
#include "apps/ecommerce.hh"
#include "apps/social_network.hh"
#include "trace/export.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

apps::WorldConfig
cfg(unsigned servers = 5)
{
    apps::WorldConfig c;
    c.workerServers = servers;
    return c;
}

TEST(TraceExportTest, EmptyStoreIsEmptyArray)
{
    trace::TraceStore store;
    EXPECT_EQ(trace::toZipkinJson(store), "[]\n");
}

TEST(TraceExportTest, SpansCarryZipkinFields)
{
    trace::TraceStore store;
    trace::Span sp;
    sp.traceId = 0xabc;
    sp.spanId = 0x123;
    sp.parentSpanId = 0x99;
    sp.service = store.intern("composePost");
    sp.start = 1000;
    sp.end = 51000;
    sp.appTime = 30000;
    sp.networkTime = 10000;
    store.insert(sp);

    const std::string json = trace::toZipkinJson(store);
    EXPECT_NE(json.find("\"traceId\":\"0000000000000abc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"id\":\"0000000000000123\""),
              std::string::npos);
    EXPECT_NE(json.find("\"parentId\":\"0000000000000099\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"composePost\""), std::string::npos);
    EXPECT_NE(json.find("\"duration\":50"), std::string::npos); // us
    EXPECT_NE(json.find("\"serviceName\":\"composePost\""),
              std::string::npos);
}

TEST(TraceExportTest, FailedSpansCarryStatusTags)
{
    trace::TraceStore store;
    trace::Span ok;
    ok.traceId = 1;
    ok.spanId = 2;
    ok.service = store.intern("healthy");
    ok.start = 1000;
    ok.end = 2000;
    store.insert(ok);
    trace::Span bad;
    bad.traceId = 1;
    bad.spanId = 3;
    bad.service = store.intern("flaky");
    bad.start = 1000;
    bad.end = 2000;
    bad.status = static_cast<std::uint8_t>(trace::SpanStatus::Timeout);
    bad.attempt = 3;
    store.insert(bad);

    const std::string zipkin = trace::toZipkinJson(store);
    EXPECT_NE(zipkin.find("\"error\":\"timeout\""), std::string::npos);
    EXPECT_NE(zipkin.find("\"attempt\":\"3\""), std::string::npos);

    const std::string perfetto = trace::toPerfettoJson(store);
    // Failed hops land in their own category with status/attempt args.
    EXPECT_NE(perfetto.find("\"cat\":\"rpc.error\""), std::string::npos);
    EXPECT_NE(perfetto.find("\"status\":\"timeout\""), std::string::npos);
    EXPECT_NE(perfetto.find("\"attempt\":3"), std::string::npos);
    // The healthy span keeps the plain category.
    EXPECT_NE(perfetto.find("\"cat\":\"rpc\""), std::string::npos);
}

TEST(TraceExportTest, HealthySpansCarryNoStatusTags)
{
    trace::TraceStore store;
    trace::Span sp;
    sp.traceId = 1;
    sp.spanId = 2;
    sp.service = store.intern("healthy");
    sp.start = 1000;
    sp.end = 2000;
    store.insert(sp);
    // No failures anywhere: the legacy export stays byte-for-byte free
    // of resilience vocabulary.
    EXPECT_EQ(trace::toZipkinJson(store).find("error"), std::string::npos);
    const std::string perfetto = trace::toPerfettoJson(store);
    EXPECT_EQ(perfetto.find("rpc.error"), std::string::npos);
    EXPECT_EQ(perfetto.find("status"), std::string::npos);
    EXPECT_EQ(perfetto.find("attempt"), std::string::npos);
}

TEST(TraceExportTest, RootSpanOmitsParentId)
{
    trace::TraceStore store;
    trace::Span sp;
    sp.traceId = 1;
    sp.spanId = 2;
    sp.parentSpanId = trace::kNoParent;
    sp.service = store.intern("client");
    sp.start = 0;
    sp.end = 10;
    store.insert(sp);
    EXPECT_EQ(trace::toZipkinJson(store).find("parentId"),
              std::string::npos);
}

TEST(TraceExportTest, MaxSpansCapsOutput)
{
    trace::TraceStore store;
    for (int i = 0; i < 10; ++i) {
        trace::Span sp;
        sp.traceId = 1;
        sp.spanId = static_cast<trace::SpanId>(i + 1);
        sp.service = store.intern("svc");
        sp.start = 0;
        sp.end = 1;
        store.insert(sp);
    }
    const std::string json = trace::toZipkinJson(store, 3);
    std::size_t count = 0, pos = 0;
    while ((pos = json.find("\"id\":", pos)) != std::string::npos) {
        ++count;
        pos += 5;
    }
    EXPECT_EQ(count, 3u);
}

TEST(TraceExportTest, RealRunProducesBalancedJson)
{
    apps::World w(cfg());
    apps::buildSocialNetwork(w);
    workload::runLoad(*w.app, 100.0, kTicksPerSec, kTicksPerSec,
                      workload::QueryMix::fromApp(*w.app),
                      workload::UserPopulation::uniform(50), 3);
    const std::string json =
        trace::toZipkinJson(w.app->traceStore(), 500);
    // Braces and brackets balance.
    long depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_GT(json.size(), 1000u);
}

TEST(PerfettoExportTest, EventsCarryTrackMetadata)
{
    trace::TraceStore store;
    trace::Span root;
    root.traceId = 0x42;
    root.spanId = 1;
    root.service = store.intern("frontend");
    root.start = 0;
    root.end = 2000;
    store.insert(root);
    trace::Span child = root;
    child.spanId = 2;
    child.parentSpanId = 1;
    child.service = store.intern("backend");
    child.start = 500;
    child.end = 1500;
    store.insert(child);

    const std::string json = trace::toPerfettoJson(store);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // One process_name per trace, one thread_name per service track.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"frontend\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"backend\""), std::string::npos);
    // Complete ("X") events for both spans, tagged with components.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"downstreamUs\""), std::string::npos);
    // Eviction accounting rides along for tooling.
    EXPECT_NE(json.find("\"spansEvicted\":0"), std::string::npos);
}

TEST(PerfettoExportTest, RealRunProducesBalancedJson)
{
    apps::World w(cfg());
    apps::buildSocialNetwork(w);
    workload::runLoad(*w.app, 100.0, kTicksPerSec, kTicksPerSec,
                      workload::QueryMix::fromApp(*w.app),
                      workload::UserPopulation::uniform(50), 3);
    const std::string json =
        trace::toPerfettoJson(w.app->traceStore(), 500);
    long depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_GT(json.size(), 1000u);
}

TEST(SocialQueriesTest, NewQueryClassesExerciseTheRightTiers)
{
    apps::World w(cfg());
    const auto q = apps::buildSocialNetwork(w);
    service::App &app = *w.app;

    auto servedOf = [&](const char *svc) {
        std::uint64_t total = 0;
        for (const auto &inst : app.service(svc).instances())
            total += inst->served();
        return total;
    };

    // Direct messages write straight into a timeline inbox.
    app.inject(q.directMessage, 7);
    w.sim.run();
    EXPECT_EQ(servedOf("writeTimeline"), 1u);
    EXPECT_EQ(servedOf("composePost"), 0u);

    // Blocking a user touches blockedUsers and the social graph.
    app.inject(q.blockUser, 7);
    w.sim.run();
    EXPECT_GE(servedOf("blockedUsers"), 1u);
    EXPECT_GE(servedOf("writeGraph"), 1u);

    // A reply reads the post then composes.
    app.inject(q.reply, 7);
    w.sim.run();
    EXPECT_GE(servedOf("readPost"), 1u);
    EXPECT_EQ(servedOf("composePost"), 1u);
}

TEST(EcommerceMonolithTest, BuildsSixTiersAndServes)
{
    apps::World w(cfg());
    const auto q = apps::buildEcommerceMonolith(w);
    EXPECT_EQ(w.app->services().size(), 6u);
    EXPECT_TRUE(w.app->hasService("monolith"));
    auto r = workload::runLoad(*w.app, 150.0, kTicksPerSec,
                               2 * kTicksPerSec,
                               workload::QueryMix::fromApp(*w.app),
                               workload::UserPopulation::uniform(100),
                               5);
    EXPECT_GT(r.completed, 0u);
    // Orders remain far slower than browsing, as in the tiered app.
    const auto &browse =
        w.app->endToEndLatencyFor(q.browseCatalogue);
    const auto &order = w.app->endToEndLatencyFor(q.placeOrder);
    ASSERT_GT(browse.count(), 0u);
    ASSERT_GT(order.count(), 0u);
    EXPECT_GT(order.mean(), browse.mean());
}

} // namespace
} // namespace uqsim
