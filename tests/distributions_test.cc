/**
 * @file
 * Tests for the composable distributions and the Zipf sampler,
 * including parameterized sweeps over distribution shapes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/distributions.hh"

namespace uqsim {
namespace {

double
sampleMean(const Dist &d, int n = 100000, std::uint64_t seed = 5)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng);
    return sum / n;
}

TEST(DistTest, DefaultIsZero)
{
    Dist d;
    Rng rng(1);
    EXPECT_EQ(d.sample(rng), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(DistTest, ConstantAlwaysSame)
{
    Dist d = Dist::constant(42.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(d.sample(rng), 42.0);
    EXPECT_EQ(d.mean(), 42.0);
}

TEST(DistTest, UniformMeanAndBounds)
{
    Dist d = Dist::uniform(10.0, 20.0);
    EXPECT_NEAR(d.mean(), 15.0, 1e-9);
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const double v = d.sample(rng);
        ASSERT_GE(v, 10.0);
        ASSERT_LT(v, 20.0);
    }
    EXPECT_NEAR(sampleMean(d), 15.0, 0.1);
}

TEST(DistTest, ExponentialSampleMeanMatches)
{
    Dist d = Dist::exponential(123.0);
    EXPECT_EQ(d.mean(), 123.0);
    EXPECT_NEAR(sampleMean(d), 123.0, 3.0);
}

/** Log-normal must hit its configured mean across sigma values. */
class LognormalSigmaTest : public ::testing::TestWithParam<double>
{};

TEST_P(LognormalSigmaTest, MeanMatchesConfigured)
{
    const double sigma = GetParam();
    Dist d = Dist::lognormalMean(500.0, sigma);
    EXPECT_EQ(d.mean(), 500.0);
    EXPECT_NEAR(sampleMean(d, 300000), 500.0, 500.0 * 0.03);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, LognormalSigmaTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8, 1.2));

TEST(DistTest, MixtureRespectsWeights)
{
    Dist d = Dist::mixture({{0.75, Dist::constant(0.0)},
                            {0.25, Dist::constant(100.0)}});
    EXPECT_NEAR(d.mean(), 25.0, 1e-9);
    EXPECT_NEAR(sampleMean(d), 25.0, 1.0);
}

TEST(DistTest, ScaledAndShifted)
{
    Dist d = Dist::constant(10.0).scaled(3.0).shifted(4.0);
    Rng rng(1);
    EXPECT_EQ(d.sample(rng), 34.0);
    EXPECT_EQ(d.mean(), 34.0);
}

TEST(DistTest, ClampedMinFloorsSamples)
{
    Dist d = Dist::uniform(0.0, 10.0).clampedMin(5.0);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GE(d.sample(rng), 5.0);
}

TEST(DistTest, BoundedParetoMeanApprox)
{
    Dist d = Dist::boundedPareto(2.0, 100.0, 10000.0);
    EXPECT_NEAR(sampleMean(d, 300000), d.mean(), d.mean() * 0.05);
}

// ---- Zipf -------------------------------------------------------------

TEST(ZipfTest, UniformWhenExponentZero)
{
    ZipfDistribution z(10, 0.0);
    EXPECT_NEAR(z.topKMass(5), 0.5, 1e-9);
}

TEST(ZipfTest, SkewConcentratesMass)
{
    ZipfDistribution z(1000, 1.0);
    EXPECT_GT(z.topKMass(10), 0.35); // top-1% of items >35% of mass
    EXPECT_LT(z.topKMass(10), 0.60);
}

TEST(ZipfTest, TopKMassMonotone)
{
    ZipfDistribution z(100, 0.8);
    double prev = 0.0;
    for (std::size_t k = 1; k <= 100; ++k) {
        const double m = z.topKMass(k);
        ASSERT_GE(m, prev);
        prev = m;
    }
    EXPECT_NEAR(z.topKMass(100), 1.0, 1e-9);
}

TEST(ZipfTest, SamplesWithinRange)
{
    ZipfDistribution z(50, 1.2);
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(z.sample(rng), 50u);
}

TEST(ZipfTest, EmpiricalRankZeroFrequencyMatchesAnalytic)
{
    ZipfDistribution z(100, 1.0);
    Rng rng(11);
    int rank0 = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        if (z.sample(rng) == 0)
            ++rank0;
    EXPECT_NEAR(static_cast<double>(rank0) / n, z.topKMass(1), 0.01);
}

} // namespace
} // namespace uqsim
