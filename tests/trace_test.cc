/**
 * @file
 * Tests for the distributed-tracing store, collector and analysis.
 */

#include <gtest/gtest.h>

#include "trace/analysis.hh"
#include "trace/collector.hh"

namespace uqsim::trace {
namespace {

Span
makeSpan(TraceId trace, SpanId id, SpanId parent, const std::string &svc,
         Tick start, Tick end, Tick net = 0, Tick app = 0)
{
    Span s;
    s.traceId = trace;
    s.spanId = id;
    s.parentSpanId = parent;
    s.service = svc;
    s.start = start;
    s.end = end;
    s.networkTime = net;
    s.appTime = app;
    return s;
}

TEST(TraceStoreTest, InsertAndIndex)
{
    TraceStore store;
    store.insert(makeSpan(1, 10, kNoParent, "front", 0, 100));
    store.insert(makeSpan(1, 11, 10, "back", 10, 60));
    store.insert(makeSpan(2, 12, kNoParent, "front", 0, 50));
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.byTrace(1).size(), 2u);
    EXPECT_EQ(store.byTrace(2).size(), 1u);
    EXPECT_EQ(store.byService("front").size(), 2u);
    EXPECT_EQ(store.byService("missing").size(), 0u);
    EXPECT_EQ(store.services(), (std::vector<std::string>{"back", "front"}));
}

TEST(TraceStoreTest, ClearEmptiesEverything)
{
    TraceStore store;
    store.insert(makeSpan(1, 1, kNoParent, "svc", 0, 10));
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(store.byTrace(1).empty());
}

TEST(CollectorTest, DisabledDropsSpans)
{
    TraceStore store;
    Collector c(store);
    c.setEnabled(false);
    c.collect(makeSpan(1, 1, kNoParent, "svc", 0, 10));
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(c.offered(), 1u);
}

TEST(CollectorTest, SamplingKeepsEveryNth)
{
    TraceStore store;
    Collector c(store);
    c.setSampleEvery(10);
    for (int i = 0; i < 100; ++i)
        c.collect(makeSpan(1, i + 1, kNoParent, "svc", 0, 10));
    EXPECT_EQ(store.size(), 10u);
}

TEST(TraceAnalysisTest, PerServiceSummary)
{
    TraceStore store;
    store.insert(makeSpan(1, 1, kNoParent, "a", 0, 100, 25, 50));
    store.insert(makeSpan(2, 2, kNoParent, "a", 0, 200, 50, 100));
    TraceAnalysis ta(store);
    const auto s = ta.forService("a");
    EXPECT_EQ(s.spanCount, 2u);
    EXPECT_NEAR(s.networkShare, 0.25, 1e-9);
    EXPECT_NEAR(s.appShare, 0.5, 1e-9);
    EXPECT_NEAR(s.meanLatencyUs, 0.15, 1e-6); // (100+200)/2 ns
}

TEST(TraceAnalysisTest, EndToEndNetworkShare)
{
    TraceStore store;
    // Root of trace 1: 1000ns long; total network across spans 300ns.
    store.insert(makeSpan(1, 1, kNoParent, "client", 0, 1000, 100, 0));
    store.insert(makeSpan(1, 2, 1, "svc", 100, 800, 200, 400));
    TraceAnalysis ta(store);
    EXPECT_NEAR(ta.endToEndNetworkShare(), 0.3, 1e-9);
}

TEST(TraceAnalysisTest, EndToEndLatencyUsesRootsOnly)
{
    TraceStore store;
    store.insert(makeSpan(1, 1, kNoParent, "client", 0, 5000));
    store.insert(makeSpan(1, 2, 1, "svc", 0, 4000));
    store.insert(makeSpan(2, 3, kNoParent, "client", 0, 7000));
    TraceAnalysis ta(store);
    const auto h = ta.endToEndLatency();
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GE(h.max(), 7000u);
}

TEST(TraceAnalysisTest, CriticalPathExclusiveTimes)
{
    TraceStore store;
    // parent [0,1000], child [200,700]: parent exclusive 500, child 500.
    store.insert(makeSpan(1, 1, kNoParent, "parent", 0, 1000));
    store.insert(makeSpan(1, 2, 1, "child", 200, 700));
    TraceAnalysis ta(store);
    const auto cp = ta.criticalPath();
    EXPECT_NEAR(cp.at("parent"), 500.0, 1e-9);
    EXPECT_NEAR(cp.at("child"), 500.0, 1e-9);
}

TEST(TraceAnalysisTest, CriticalPathClampsOverlappingChildren)
{
    TraceStore store;
    // Parallel children whose summed duration exceeds the parent.
    store.insert(makeSpan(1, 1, kNoParent, "parent", 0, 1000));
    store.insert(makeSpan(1, 2, 1, "child", 0, 900));
    store.insert(makeSpan(1, 3, 1, "child", 0, 900));
    TraceAnalysis ta(store);
    const auto cp = ta.criticalPath();
    EXPECT_NEAR(cp.at("parent"), 0.0, 1e-9); // fully covered
    EXPECT_NEAR(cp.at("child"), 1800.0, 1e-9);
}

TEST(IdAllocatorTest, MonotonicIds)
{
    IdAllocator ids;
    const TraceId t1 = ids.nextTrace();
    const TraceId t2 = ids.nextTrace();
    EXPECT_LT(t1, t2);
    const SpanId s1 = ids.nextSpan();
    const SpanId s2 = ids.nextSpan();
    EXPECT_LT(s1, s2);
}

} // namespace
} // namespace uqsim::trace
