/**
 * @file
 * Tests for the distributed-tracing store, collector and analysis:
 * ring-buffer storage and eviction, service-name interning,
 * trace-coherent sampling and critical-path attribution.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/metrics.hh"
#include "trace/analysis.hh"
#include "trace/collector.hh"

namespace uqsim::trace {
namespace {

Span
makeSpan(TraceStore &store, TraceId trace, SpanId id, SpanId parent,
         const std::string &svc, Tick start, Tick end, Tick net = 0,
         Tick app = 0)
{
    Span s;
    s.traceId = trace;
    s.spanId = id;
    s.parentSpanId = parent;
    s.service = store.intern(svc);
    s.start = start;
    s.end = end;
    s.networkTime = net;
    s.appTime = app;
    return s;
}

TEST(TraceStoreTest, InsertAndIndex)
{
    TraceStore store;
    store.insert(makeSpan(store, 1, 10, kNoParent, "front", 0, 100));
    store.insert(makeSpan(store, 1, 11, 10, "back", 10, 60));
    store.insert(makeSpan(store, 2, 12, kNoParent, "front", 0, 50));
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.byTrace(1).size(), 2u);
    EXPECT_EQ(store.byTrace(2).size(), 1u);
    EXPECT_EQ(store.byService("front").size(), 2u);
    EXPECT_EQ(store.byService("missing").size(), 0u);
    EXPECT_EQ(store.services(), (std::vector<std::string>{"back", "front"}));
}

TEST(TraceStoreTest, InterningIsIdempotentAndStable)
{
    TraceStore store;
    const ServiceId a = store.intern("alpha");
    const ServiceId b = store.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(store.intern("alpha"), a);
    EXPECT_EQ(store.serviceId("alpha"), a);
    EXPECT_EQ(store.serviceId("unknown"), kNoService);
    EXPECT_EQ(store.serviceName(a), "alpha");
    EXPECT_EQ(store.serviceName(b), "beta");
}

TEST(TraceStoreTest, ClearEmptiesEverything)
{
    TraceStore store;
    store.insert(makeSpan(store, 1, 1, kNoParent, "svc", 0, 10));
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_TRUE(store.byTrace(1).empty());
    EXPECT_EQ(store.evicted(), 0u);
    EXPECT_EQ(store.inserted(), 0u);
    // Interned names survive a clear; recording code caches the ids.
    EXPECT_EQ(store.serviceId("svc"), 0u);
}

TEST(TraceStoreTest, RingWrapKeepsNewestSpans)
{
    TraceStore store(4);
    for (SpanId id = 1; id <= 6; ++id)
        store.insert(makeSpan(store, id, id, kNoParent, "svc",
                              id * 100, id * 100 + 10));
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.capacity(), 4u);
    EXPECT_EQ(store.inserted(), 6u);
    EXPECT_EQ(store.evicted(), 2u);
    // Oldest-first order over the survivors: spans 3..6.
    for (std::size_t i = 0; i < store.size(); ++i)
        EXPECT_EQ(store.at(i).spanId, i + 3);
}

TEST(TraceStoreTest, IndicesConsistentAfterEviction)
{
    TraceStore store(4);
    for (SpanId id = 1; id <= 7; ++id)
        store.insert(makeSpan(store, /*trace=*/id % 2, id, kNoParent,
                              id % 2 ? "odd" : "even", 0, 10));
    // Survivors are spans 4..7: traces {0: 4,6} and {1: 5,7}.
    const auto even_trace = store.byTrace(0);
    ASSERT_EQ(even_trace.size(), 2u);
    EXPECT_EQ(even_trace[0].spanId, 4u);
    EXPECT_EQ(even_trace[1].spanId, 6u);
    EXPECT_EQ(store.byTrace(1).size(), 2u);
    EXPECT_EQ(store.byService("odd").size(), 2u);
    EXPECT_EQ(store.byService("even").size(), 2u);
    // Index positions must dereference to spans of the right service.
    for (std::size_t pos : store.byService("odd"))
        EXPECT_EQ(store.serviceName(store.at(pos).service), "odd");
}

TEST(TraceStoreTest, ShrinkKeepsNewestAndCountsEvicted)
{
    TraceStore store(8);
    for (SpanId id = 1; id <= 6; ++id)
        store.insert(makeSpan(store, 1, id, kNoParent, "svc", 0, 10));
    store.setCapacity(3);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.evicted(), 3u);
    EXPECT_EQ(store.at(0).spanId, 4u);
    EXPECT_EQ(store.at(2).spanId, 6u);

    // Growing after a wrap keeps order and makes room again.
    store.setCapacity(5);
    store.insert(makeSpan(store, 1, 7, kNoParent, "svc", 0, 10));
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.at(0).spanId, 4u);
    EXPECT_EQ(store.at(3).spanId, 7u);
}

TEST(CollectorTest, DisabledDropsSpans)
{
    TraceStore store;
    Collector c(store);
    c.setEnabled(false);
    c.collect(makeSpan(store, 1, 1, kNoParent, "svc", 0, 10));
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(c.offered(), 1u);
    EXPECT_EQ(c.stored(), 0u);
}

TEST(CollectorTest, SamplingIsTraceCoherent)
{
    TraceStore store;
    Collector c(store);
    c.setSampleEvery(4);
    // Three spans per trace, many traces: every stored trace must be
    // complete — sampling drops whole traces, never individual spans.
    const int kTraces = 256, kSpansPerTrace = 3;
    SpanId next_span = 1;
    for (TraceId t = 1; t <= kTraces; ++t)
        for (int i = 0; i < kSpansPerTrace; ++i)
            c.collect(makeSpan(store, t, next_span++, kNoParent, "svc",
                               0, 10));

    std::set<TraceId> kept;
    for (const Span &s : store.spans()) {
        kept.insert(s.traceId);
        EXPECT_TRUE(c.sampled(s.traceId));
    }
    for (TraceId t : kept)
        EXPECT_EQ(store.byTrace(t).size(),
                  static_cast<std::size_t>(kSpansPerTrace));
    // The hash keeps roughly 1-in-4 traces; exact count is
    // deterministic, so pin a sane band rather than an exact value.
    EXPECT_GT(kept.size(), kTraces / 8u);
    EXPECT_LT(kept.size(), kTraces / 2u);
    EXPECT_EQ(c.offered(), kTraces * kSpansPerTrace);
    EXPECT_EQ(c.stored(), kept.size() * kSpansPerTrace);
    EXPECT_EQ(c.sampledOut(), c.offered() - c.stored());
}

TEST(CollectorTest, SampleEveryOneKeepsEverything)
{
    TraceStore store;
    Collector c(store);
    c.setSampleEvery(1);
    for (TraceId t = 1; t <= 50; ++t)
        c.collect(makeSpan(store, t, t, kNoParent, "svc", 0, 10));
    EXPECT_EQ(store.size(), 50u);
    EXPECT_EQ(c.sampledOut(), 0u);
}

TEST(CollectorTest, BindMetricsCarriesValuesOver)
{
    TraceStore store;
    Collector c(store);
    c.collect(makeSpan(store, 1, 1, kNoParent, "svc", 0, 10));

    MetricsRegistry metrics;
    c.bindMetrics(metrics);
    EXPECT_EQ(metrics.counter("trace.spans_offered").value(), 1u);
    c.collect(makeSpan(store, 2, 2, kNoParent, "svc", 0, 10));
    EXPECT_EQ(metrics.counter("trace.spans_offered").value(), 2u);
    EXPECT_EQ(c.offered(), 2u);
    EXPECT_EQ(metrics.counter("trace.spans_stored").value(), c.stored());
}

TEST(TraceAnalysisTest, PerServiceSummary)
{
    TraceStore store;
    store.insert(makeSpan(store, 1, 1, kNoParent, "a", 0, 100, 25, 50));
    store.insert(makeSpan(store, 2, 2, kNoParent, "a", 0, 200, 50, 100));
    TraceAnalysis ta(store);
    const auto s = ta.forService("a");
    EXPECT_EQ(s.spanCount, 2u);
    EXPECT_NEAR(s.networkShare, 0.25, 1e-9);
    EXPECT_NEAR(s.appShare, 0.5, 1e-9);
    EXPECT_NEAR(s.meanLatencyUs, 0.15, 1e-6); // (100+200)/2 ns
}

TEST(TraceAnalysisTest, EndToEndNetworkShare)
{
    TraceStore store;
    // Root of trace 1: 1000ns long; total network across spans 300ns.
    store.insert(makeSpan(store, 1, 1, kNoParent, "client", 0, 1000, 100, 0));
    store.insert(makeSpan(store, 1, 2, 1, "svc", 100, 800, 200, 400));
    TraceAnalysis ta(store);
    EXPECT_NEAR(ta.endToEndNetworkShare(), 0.3, 1e-9);
}

TEST(TraceAnalysisTest, EndToEndLatencyUsesRootsOnly)
{
    TraceStore store;
    store.insert(makeSpan(store, 1, 1, kNoParent, "client", 0, 5000));
    store.insert(makeSpan(store, 1, 2, 1, "svc", 0, 4000));
    store.insert(makeSpan(store, 2, 3, kNoParent, "client", 0, 7000));
    TraceAnalysis ta(store);
    const auto h = ta.endToEndLatency();
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GE(h.max(), 7000u);
}

TEST(TraceAnalysisTest, CriticalPathExclusiveTimes)
{
    TraceStore store;
    // parent [0,1000], child [200,700]: parent exclusive 500, child 500.
    store.insert(makeSpan(store, 1, 1, kNoParent, "parent", 0, 1000));
    store.insert(makeSpan(store, 1, 2, 1, "child", 200, 700));
    TraceAnalysis ta(store);
    const auto cp = ta.criticalPath();
    EXPECT_NEAR(cp.at("parent"), 500.0, 1e-9);
    EXPECT_NEAR(cp.at("child"), 500.0, 1e-9);
}

TEST(TraceAnalysisTest, CriticalPathSequentialChildren)
{
    TraceStore store;
    // parent [0,1000] with back-to-back children [100,400] and
    // [500,900]: parent keeps only the gaps (100+100+100).
    store.insert(makeSpan(store, 1, 1, kNoParent, "parent", 0, 1000));
    store.insert(makeSpan(store, 1, 2, 1, "child", 100, 400));
    store.insert(makeSpan(store, 1, 3, 1, "child", 500, 900));
    TraceAnalysis ta(store);
    const auto cp = ta.criticalPath();
    EXPECT_NEAR(cp.at("parent"), 300.0, 1e-9);
    EXPECT_NEAR(cp.at("child"), 700.0, 1e-9);
}

TEST(TraceAnalysisTest, CriticalPathClampsOverlappingChildren)
{
    TraceStore store;
    // Parallel children whose summed duration exceeds the parent.
    store.insert(makeSpan(store, 1, 1, kNoParent, "parent", 0, 1000));
    store.insert(makeSpan(store, 1, 2, 1, "child", 0, 900));
    store.insert(makeSpan(store, 1, 3, 1, "child", 0, 900));
    TraceAnalysis ta(store);
    const auto cp = ta.criticalPath();
    EXPECT_NEAR(cp.at("parent"), 0.0, 1e-9); // fully covered
    EXPECT_NEAR(cp.at("child"), 1800.0, 1e-9);
}

TEST(TraceAnalysisTest, CriticalPathBreakdownComponents)
{
    TraceStore store;
    Span parent =
        makeSpan(store, 1, 1, kNoParent, "parent", 0, 1000, 100, 200);
    parent.queueTime = 50;
    parent.downstreamWait = 500;
    store.insert(parent);
    store.insert(makeSpan(store, 1, 2, 1, "child", 200, 700, 30, 400));

    TraceAnalysis ta(store);
    const auto bd = ta.criticalPathBreakdown();
    ASSERT_EQ(bd.size(), 2u);
    // Ordered by exclusive time descending: both are 500 here, so the
    // tie breaks by name.
    EXPECT_EQ(bd[0].service, "child");
    EXPECT_NEAR(bd[0].exclusiveNs, 500.0, 1e-9);
    EXPECT_NEAR(bd[0].appNs, 400.0, 1e-9);
    EXPECT_NEAR(bd[0].networkNs, 30.0, 1e-9);
    EXPECT_EQ(bd[1].service, "parent");
    EXPECT_NEAR(bd[1].exclusiveNs, 500.0, 1e-9);
    EXPECT_NEAR(bd[1].queueNs, 50.0, 1e-9);
    EXPECT_NEAR(bd[1].appNs, 200.0, 1e-9);
    EXPECT_NEAR(bd[1].networkNs, 100.0, 1e-9);
    EXPECT_NEAR(bd[1].downstreamNs, 500.0, 1e-9);
}

TEST(TraceAnalysisTest, TraceBreakdownDepthsAndOrder)
{
    TraceStore store;
    store.insert(makeSpan(store, 7, 1, kNoParent, "root", 0, 1000));
    store.insert(makeSpan(store, 7, 2, 1, "mid", 100, 900));
    store.insert(makeSpan(store, 7, 3, 2, "leaf", 200, 600));
    // A different trace must not leak into the breakdown.
    store.insert(makeSpan(store, 8, 4, kNoParent, "root", 0, 500));

    TraceAnalysis ta(store);
    const auto hops = ta.traceBreakdown(7);
    ASSERT_EQ(hops.size(), 3u);
    EXPECT_EQ(hops[0].span.spanId, 1u);
    EXPECT_EQ(hops[0].depth, 0u);
    EXPECT_EQ(hops[0].exclusiveNs, 200u); // 1000 - mid's 800
    EXPECT_EQ(hops[1].span.spanId, 2u);
    EXPECT_EQ(hops[1].depth, 1u);
    EXPECT_EQ(hops[1].exclusiveNs, 400u); // 800 - leaf's 400
    EXPECT_EQ(hops[2].depth, 2u);
    EXPECT_EQ(hops[2].exclusiveNs, 400u);
    EXPECT_TRUE(ta.traceBreakdown(99).empty());
}

TEST(IdAllocatorTest, MonotonicIds)
{
    IdAllocator ids;
    const TraceId t1 = ids.nextTrace();
    const TraceId t2 = ids.nextTrace();
    EXPECT_LT(t1, t2);
    const SpanId s1 = ids.nextSpan();
    const SpanId s2 = ids.nextSpan();
    EXPECT_LT(s1, s2);
}

} // namespace
} // namespace uqsim::trace
