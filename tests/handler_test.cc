/**
 * @file
 * Tests for the handler-program builder.
 */

#include <gtest/gtest.h>

#include "service/handler.hh"
#include "service/request.hh"

namespace uqsim::service {
namespace {

TEST(HandlerTest, BuilderAppendsStagesInOrder)
{
    HandlerSpec h;
    h.compute(Dist::constant(100.0))
        .call("a")
        .parallelCall("b", 3)
        .cache("c", "d", 0.9)
        .delay(Dist::constant(5.0));
    ASSERT_EQ(h.stages.size(), 5u);
    EXPECT_EQ(h.stages[0].kind, Stage::Kind::Compute);
    EXPECT_EQ(h.stages[1].kind, Stage::Kind::Call);
    EXPECT_EQ(h.stages[1].target, "a");
    EXPECT_TRUE(h.stages[2].parallel);
    EXPECT_EQ(h.stages[2].fanout, 3u);
    EXPECT_EQ(h.stages[3].kind, Stage::Kind::Cache);
    EXPECT_EQ(h.stages[3].dbTarget, "d");
    EXPECT_EQ(h.stages[4].kind, Stage::Kind::Delay);
}

TEST(HandlerTest, CallTargetsDeduplicated)
{
    HandlerSpec h;
    h.call("a").call("a").cache("cache", "db", 0.9).call("db");
    const auto targets = h.callTargets();
    EXPECT_EQ(targets,
              (std::vector<std::string>{"a", "cache", "db"}));
}

TEST(HandlerTest, TaggedStagesCarryTag)
{
    HandlerSpec h;
    h.callTagged("video", "videoSvc").computeTagged("img", Dist::constant(1));
    EXPECT_EQ(h.stages[0].onlyForTag, "video");
    EXPECT_EQ(h.stages[1].onlyForTag, "img");
}

TEST(HandlerTest, ProbabilisticCall)
{
    HandlerSpec h;
    h.callWithProbability("maybe", 0.25);
    EXPECT_EQ(h.stages[0].probability, 0.25);
}

TEST(HandlerTest, MediaCallsFlagged)
{
    HandlerSpec h;
    h.callWithMedia("m").callTaggedWithMedia("video", "v").call("plain");
    EXPECT_TRUE(h.stages[0].carriesMedia);
    EXPECT_TRUE(h.stages[1].carriesMedia);
    EXPECT_FALSE(h.stages[2].carriesMedia);
}

TEST(HandlerTest, DelayNetworkAttribution)
{
    HandlerSpec h;
    h.delay(Dist::constant(10.0), /*is_network=*/true);
    EXPECT_TRUE(h.stages[0].delayIsNetwork);
}

TEST(QueryTypeTest, HasTag)
{
    QueryType qt;
    qt.tags = {"read", "compose"};
    EXPECT_TRUE(qt.hasTag("read"));
    EXPECT_TRUE(qt.hasTag("compose"));
    EXPECT_FALSE(qt.hasTag("video"));
}

} // namespace
} // namespace uqsim::service
