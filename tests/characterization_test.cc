/**
 * @file
 * Characterization property tests: the qualitative findings of the
 * paper's Secs 4-5 must hold in the models (network-share ordering,
 * frequency sensitivity, I/O-boundness, brawny-vs-wimpy).
 */

#include <gtest/gtest.h>

#include "apps/catalog.hh"
#include "apps/single_tier.hh"
#include "apps/social_network.hh"
#include "apps/swarm.hh"
#include "workload/load_sweep.hh"

namespace uqsim::apps {
namespace {

WorldConfig
cfg(unsigned servers = 5)
{
    WorldConfig c;
    c.workerServers = servers;
    return c;
}

workload::LoadResult
measureApp(AppId id, double qps, double freq_mhz = 0.0)
{
    World w(cfg());
    buildApp(w, id);
    if (freq_mhz > 0.0)
        w.cluster.setAllFrequenciesMhz(freq_mhz);
    return workload::runLoad(*w.app, qps, kTicksPerSec,
                             3 * kTicksPerSec,
                             workload::QueryMix::fromApp(*w.app),
                             workload::UserPopulation::uniform(500), 23);
}

workload::LoadResult
measureSingle(SingleTierKind kind, double qps, double freq_mhz = 0.0)
{
    World w(cfg(2));
    buildSingleTier(w, kind);
    if (freq_mhz > 0.0)
        w.cluster.setAllFrequenciesMhz(freq_mhz);
    return workload::runLoad(*w.app, qps, kTicksPerSec,
                             3 * kTicksPerSec, workload::QueryMix({1.0}),
                             workload::UserPopulation::uniform(100), 23);
}

TEST(CharacterizationTest, Fig3NetworkShareOrdering)
{
    // Microservices spend far more of their time on network processing
    // than single-tier services (36.3% vs 5-20% in Fig 3).
    const double social =
        measureApp(AppId::SocialNetwork, 200.0).networkShare;
    const double nginx =
        measureSingle(SingleTierKind::Nginx, 100.0).networkShare;
    const double memcached =
        measureSingle(SingleTierKind::Memcached, 200.0).networkShare;
    EXPECT_GT(social, 0.25);
    EXPECT_LT(nginx, 0.15);
    EXPECT_GT(social, 2.0 * nginx);
    EXPECT_GT(memcached, nginx); // tiny service: relatively more TCP
}

TEST(CharacterizationTest, ComputeIntensiveAppsLessNetworkBound)
{
    // Sec 5: E-commerce and Banking microservices are more
    // computationally intensive => lower network-processing share.
    const double social =
        measureApp(AppId::SocialNetwork, 200.0).networkShare;
    const double banking =
        measureApp(AppId::Banking, 150.0).networkShare;
    const double ecommerce =
        measureApp(AppId::Ecommerce, 150.0).networkShare;
    EXPECT_GT(social, banking);
    EXPECT_GT(social, ecommerce);
}

TEST(CharacterizationTest, Fig12MongoToleratesLowFrequency)
{
    // MongoDB is I/O-bound: latency barely moves at minimum frequency.
    const auto nominal = measureSingle(SingleTierKind::MongoDB, 200.0);
    const auto capped =
        measureSingle(SingleTierKind::MongoDB, 200.0, 1000.0);
    EXPECT_LT(static_cast<double>(capped.p99),
              1.6 * static_cast<double>(nominal.p99));
}

TEST(CharacterizationTest, Fig12XapianSensitiveToFrequency)
{
    const auto nominal = measureSingle(SingleTierKind::Xapian, 150.0);
    const auto capped =
        measureSingle(SingleTierKind::Xapian, 150.0, 1000.0);
    // Compute-bound: ~2.4x slowdown at 1.0/2.4 GHz.
    EXPECT_GT(static_cast<double>(capped.p50),
              1.8 * static_cast<double>(nominal.p50));
}

TEST(CharacterizationTest, Fig12MicroservicesMoreFrequencySensitive)
{
    // End-to-end microservices lose QoS headroom faster than the
    // monolithic single-tier services when frequency drops.
    const auto social_nominal = measureApp(AppId::SocialNetwork, 250.0);
    const auto social_capped =
        measureApp(AppId::SocialNetwork, 250.0, 1200.0);
    const double social_blowup =
        static_cast<double>(social_capped.p99) /
        std::max<double>(1.0, static_cast<double>(social_nominal.p99));
    const auto mongo_nominal = measureSingle(SingleTierKind::MongoDB, 200.0);
    const auto mongo_capped =
        measureSingle(SingleTierKind::MongoDB, 200.0, 1200.0);
    const double mongo_blowup =
        static_cast<double>(mongo_capped.p99) /
        std::max<double>(1.0, static_cast<double>(mongo_nominal.p99));
    EXPECT_GT(social_blowup, mongo_blowup);
}

TEST(CharacterizationTest, Fig13ThunderxSaturatesEarlier)
{
    // Read-only traffic with a tight QoS: ThunderX can meet it at low
    // load, but per-tier latencies ~3x the Xeon's burn the headroom
    // and it saturates much earlier (Fig 13).
    auto maxQps = [](const cpu::CoreModel &model) {
        return workload::findMaxQps(
            [&](double qps) {
                WorldConfig c = cfg();
                c.coreModel = model;
                World w(c);
                buildSocialNetwork(w);
                w.app->setQosLatency(12 * kTicksPerMs);
                workload::QueryMix read_only({1, 0, 0, 0, 0, 0, 0});
                auto r = workload::runLoad(
                    *w.app, qps, kTicksPerSec, 1500 * kTicksPerMs,
                    read_only, workload::UserPopulation::uniform(500),
                    29);
                return r.meetsQos(w.app->config().qosLatency);
            },
            50.0, 16000.0, 5);
    };
    const double xeon = maxQps(cpu::CoreModel::xeon());
    const double thunderx = maxQps(cpu::CoreModel::thunderx());
    EXPECT_LT(thunderx, 0.8 * xeon);
}

TEST(CharacterizationTest, Fig9EdgeVsCloudCrossover)
{
    // Image recognition: cloud >> edge on latency at low load.
    SwarmOptions so;
    so.drones = 8;
    World edge(cfg(4));
    buildSwarm(edge, SwarmVariant::Edge, so);
    World cloud(cfg(4));
    buildSwarm(cloud, SwarmVariant::Cloud, so);
    auto measure = [](World &w, unsigned qt) {
        workload::runLoad(*w.app, 3.0, 2 * kTicksPerSec,
                          6 * kTicksPerSec,
                          workload::QueryMix::fromApp(*w.app),
                          workload::UserPopulation::uniform(64), 31);
        return w.app->endToEndLatencyFor(qt).mean();
    };
    const double edge_ir = measure(edge, 0);
    const double cloud_ir = measure(cloud, 0);
    EXPECT_LT(cloud_ir, 0.5 * edge_ir); // cloud much faster for IR
    const double edge_oa = measure(edge, 1);
    const double cloud_oa = measure(cloud, 1);
    EXPECT_LT(edge_oa, cloud_oa); // OA better on the edge at low load
}

TEST(CharacterizationTest, DeterministicRunsWithSameSeed)
{
    auto run = [](std::uint64_t seed) {
        WorldConfig c = cfg();
        c.seed = seed;
        World w(c);
        buildSocialNetwork(w);
        auto r = workload::runLoad(
            *w.app, 150.0, kTicksPerSec, 2 * kTicksPerSec,
            workload::QueryMix::fromApp(*w.app),
            workload::UserPopulation::uniform(100), 37);
        return r;
    };
    const auto a = run(99), b = run(99), c = run(100);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.p50, b.p50);
    // A different world seed changes the details.
    EXPECT_TRUE(c.p50 != a.p50 || c.completed != a.completed);
}

TEST(CharacterizationTest, MonolithLessNetworkBoundThanMicroservices)
{
    World micro(cfg());
    buildSocialNetwork(micro);
    World mono(cfg());
    buildSocialNetworkMonolith(mono);
    auto measure = [](World &w) {
        return workload::runLoad(
            *w.app, 200.0, kTicksPerSec, 3 * kTicksPerSec,
            workload::QueryMix::fromApp(*w.app),
            workload::UserPopulation::uniform(500), 41);
    };
    const auto m_micro = measure(micro);
    const auto m_mono = measure(mono);
    EXPECT_GT(m_micro.networkShare, 1.5 * m_mono.networkShare);
}

} // namespace
} // namespace uqsim::apps
