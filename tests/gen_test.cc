/**
 * @file
 * Validation of the topology sampler and generated scenarios
 * (src/gen): structural invariants of sampled graphs, bit-level
 * determinism of sampling / JSON round-trips / whole runs, and the
 * closed-form behaviour of the degenerate single-tier profile.
 */

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "apps/builder.hh"
#include "apps/scenario.hh"
#include "core/rng.hh"
#include "core/simulator.hh"
#include "core/types.hh"
#include "gen/profile.hh"
#include "gen/topology.hh"

namespace uqsim {
namespace {

using gen::GenOverrides;
using gen::GenProfile;
using gen::GenRole;
using gen::GenTier;
using gen::Topology;

/** Field-for-field equality of two sampled topologies. */
bool
topologiesEqual(const Topology &a, const Topology &b)
{
    if (a.profile != b.profile || a.seed != b.seed ||
        a.depth != b.depth || a.qosLatency != b.qosLatency ||
        a.tiers.size() != b.tiers.size() ||
        a.queries.size() != b.queries.size())
        return false;
    for (std::size_t i = 0; i < a.tiers.size(); ++i) {
        const GenTier &x = a.tiers[i], &y = b.tiers[i];
        if (x.name != y.name || x.role != y.role ||
            x.level != y.level || x.serviceUs != y.serviceUs ||
            x.sigma != y.sigma || x.exponential != y.exponential ||
            x.instances != y.instances || x.threads != y.threads ||
            x.calls.size() != y.calls.size() ||
            x.caches.size() != y.caches.size())
            return false;
        for (std::size_t j = 0; j < x.calls.size(); ++j)
            if (x.calls[j].target != y.calls[j].target ||
                x.calls[j].fanout != y.calls[j].fanout ||
                x.calls[j].parallel != y.calls[j].parallel)
                return false;
        for (std::size_t j = 0; j < x.caches.size(); ++j)
            if (x.caches[j].cacheTier != y.caches[j].cacheTier ||
                x.caches[j].dbTier != y.caches[j].dbTier ||
                x.caches[j].hitRatio != y.caches[j].hitRatio)
                return false;
    }
    for (std::size_t i = 0; i < a.queries.size(); ++i)
        if (a.queries[i].name != b.queries[i].name ||
            a.queries[i].weight != b.queries[i].weight ||
            a.queries[i].computeScale != b.queries[i].computeScale ||
            a.queries[i].write != b.queries[i].write)
            return false;
    return true;
}

TEST(GenProfileTest, SixProfilesWithUniqueNames)
{
    const std::vector<GenProfile> &all = gen::allGenProfiles();
    EXPECT_EQ(all.size(), 6u);
    std::set<std::string> names;
    for (const GenProfile &p : all) {
        EXPECT_FALSE(p.summary.empty()) << p.name;
        names.insert(p.name);
    }
    EXPECT_EQ(names.size(), all.size());
    EXPECT_NE(gen::genProfileByName("social-network"), nullptr);
    EXPECT_NE(gen::genProfileByName("single-tier"), nullptr);
    EXPECT_EQ(gen::genProfileByName("does-not-exist"), nullptr);
}

TEST(TopologySamplerTest, SamplingIsDeterministic)
{
    for (const GenProfile &p : gen::allGenProfiles()) {
        for (const std::uint64_t seed : {1ull, 5ull}) {
            const Topology a = gen::sampleTopology(p, seed);
            const Topology b = gen::sampleTopology(p, seed);
            EXPECT_TRUE(topologiesEqual(a, b))
                << p.name << " seed=" << seed;
            EXPECT_EQ(gen::topologySummary(a), gen::topologySummary(b));
        }
    }
}

TEST(TopologySamplerTest, SeedsProduceDistinctGraphs)
{
    const GenProfile *p = gen::genProfileByName("social-network");
    ASSERT_NE(p, nullptr);
    std::set<std::string> summaries;
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
        summaries.insert(
            gen::topologySummary(gen::sampleTopology(*p, seed)));
    // Shape summaries (tier/edge/query counts) alone must already
    // separate most seeds.
    EXPECT_GE(summaries.size(), 3u);
    EXPECT_FALSE(topologiesEqual(gen::sampleTopology(*p, 1),
                                 gen::sampleTopology(*p, 2)));
}

TEST(TopologySamplerTest, GraphsAreAcyclicAndConnected)
{
    for (const GenProfile &p : gen::allGenProfiles()) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const Topology t = gen::sampleTopology(p, seed);
            ASSERT_FALSE(t.tiers.empty());
            EXPECT_EQ(t.tiers[0].role, GenRole::Frontend);
            EXPECT_EQ(t.tiers[0].level, 0u);

            std::vector<bool> reached(t.tiers.size(), false);
            reached[0] = true;
            std::vector<unsigned> frontier{0};
            while (!frontier.empty()) {
                const unsigned i = frontier.back();
                frontier.pop_back();
                const GenTier &tier = t.tiers[i];
                for (const auto &c : tier.calls) {
                    ASSERT_LT(c.target, t.tiers.size());
                    // Calls only ever target strictly deeper logic
                    // tiers: acyclic by construction.
                    EXPECT_EQ(t.tiers[c.target].role, GenRole::Logic);
                    EXPECT_GT(t.tiers[c.target].level, tier.level);
                    EXPECT_GE(c.fanout, 1u);
                    if (!reached[c.target]) {
                        reached[c.target] = true;
                        frontier.push_back(c.target);
                    }
                }
                for (const auto &r : tier.caches) {
                    ASSERT_LT(r.cacheTier, t.tiers.size());
                    ASSERT_LT(r.dbTier, t.tiers.size());
                    EXPECT_EQ(t.tiers[r.cacheTier].role, GenRole::Cache);
                    EXPECT_EQ(t.tiers[r.dbTier].role, GenRole::Db);
                    EXPECT_GT(r.hitRatio, 0.0);
                    EXPECT_LE(r.hitRatio, 1.0);
                    for (const unsigned s : {r.cacheTier, r.dbTier})
                        if (!reached[s]) {
                            reached[s] = true;
                            frontier.push_back(s);
                        }
                }
                // Stateful tiers are leaves.
                if (tier.role == GenRole::Cache ||
                    tier.role == GenRole::Db) {
                    EXPECT_TRUE(tier.calls.empty());
                    EXPECT_TRUE(tier.caches.empty());
                }
            }
            for (std::size_t i = 0; i < t.tiers.size(); ++i)
                EXPECT_TRUE(reached[i])
                    << p.name << " seed=" << seed << " tier "
                    << t.tiers[i].name << " unreachable";
        }
    }
}

TEST(TopologySamplerTest, OverridesPinTheShape)
{
    const GenProfile *p = gen::genProfileByName("social-network");
    ASSERT_NE(p, nullptr);
    GenOverrides ov;
    ov.depth = 2;
    ov.width = 3;
    const Topology t = gen::sampleTopology(*p, 11, ov);
    EXPECT_EQ(t.depth, 2u);
    unsigned perLevel[3] = {0, 0, 0};
    for (const GenTier &tier : t.tiers)
        if (tier.role == GenRole::Logic) {
            ASSERT_GE(tier.level, 1u);
            ASSERT_LE(tier.level, 2u);
            ++perLevel[tier.level];
        }
    EXPECT_EQ(perLevel[1], 3u);
    EXPECT_EQ(perLevel[2], 3u);
    // Overridden draws must stay deterministic too.
    EXPECT_TRUE(topologiesEqual(t, gen::sampleTopology(*p, 11, ov)));
}

TEST(TopologySamplerTest, SingleTierIsDegenerate)
{
    const GenProfile *p = gen::genProfileByName("single-tier");
    ASSERT_NE(p, nullptr);
    const Topology t = gen::sampleTopology(*p, 1);
    ASSERT_EQ(t.tiers.size(), 1u);
    EXPECT_EQ(t.depth, 0u);
    EXPECT_EQ(t.edges(), 0u);
    const GenTier &tier = t.tiers[0];
    EXPECT_EQ(tier.role, GenRole::Frontend);
    EXPECT_TRUE(tier.exponential);
    EXPECT_EQ(tier.instances, 1u);
    EXPECT_EQ(tier.threads, 1u);
    ASSERT_EQ(t.queries.size(), 1u);
}

TEST(TopologySamplerTest, EveryProfileBuildsAValidApp)
{
    for (const GenProfile &p : gen::allGenProfiles()) {
        apps::WorldConfig config;
        config.workerServers = 8;
        apps::World w(config);
        // buildGeneratedApp() ends in App::validate(), which dies on
        // dangling call targets, missing entry tiers and the like.
        gen::buildGeneratedApp(w, gen::sampleTopology(p, 3));
        EXPECT_FALSE(w.app->entry().empty()) << p.name;
    }
}

// -- Generated scenarios end to end -------------------------------------

TEST(GeneratedScenarioTest, JsonRoundTripsByteIdentically)
{
    apps::Scenario s;
    s.genProfile = "banking";
    s.genSeed = 7;
    s.genDepth = 2;
    s.arrival = "mmpp";
    s.arrivalBurst = 3.0;
    s.arrivalDuty = 0.2;
    s.arrivalDwell = 100 * kTicksPerMs;
    const std::string json1 = apps::scenarioToJson(s);
    apps::Scenario parsed;
    std::string error;
    ASSERT_TRUE(apps::parseScenarioJson(json1, parsed, error)) << error;
    EXPECT_EQ(parsed.genProfile, "banking");
    EXPECT_EQ(parsed.genSeed, 7u);
    EXPECT_EQ(parsed.genDepth, 2u);
    EXPECT_EQ(parsed.arrival, "mmpp");
    EXPECT_DOUBLE_EQ(parsed.arrivalBurst, 3.0);
    EXPECT_EQ(parsed.arrivalDwell, 100 * kTicksPerMs);
    EXPECT_EQ(apps::scenarioToJson(parsed), json1);
}

TEST(GeneratedScenarioTest, ParseRejectsInvalidGenerateAndArrival)
{
    const auto rejects = [](const std::string &body,
                            const std::string &needle) {
        apps::Scenario s;
        std::string error;
        EXPECT_FALSE(apps::parseScenarioJson(body, s, error)) << body;
        EXPECT_NE(error.find(needle), std::string::npos)
            << "error was: " << error;
    };
    rejects("{\"generate\": {\"profile\": \"nope\"}}",
            "unknown generate.profile");
    rejects("{\"generate\": {\"depth\": 2}}", "profile");
    rejects("{\"generate\": {\"profile\": \"swarm\", \"depth\": 99}}",
            "depth");
    rejects("{\"arrival\": {\"kind\": \"weibull\"}}", "arrival");
    rejects("{\"arrival\": {\"kind\": \"mmpp\", \"burst\": 0.5}}",
            "burst");
    rejects("{\"arrival\": {\"kind\": \"diurnal\", \"low\": 0.0}}",
            "low");
}

apps::Scenario
smallGeneratedScenario()
{
    apps::Scenario s;
    s.genProfile = "swarm";
    s.genSeed = 3;
    s.qps = 100.0;
    s.servers = 4;
    s.durationSec = 1.0;
    s.warmupSec = 0.25;
    return s;
}

TEST(GeneratedScenarioTest, RunsAreSeedDeterministic)
{
    const apps::Scenario s = smallGeneratedScenario();
    const apps::ScenarioRunResult a = apps::runScenario(s);
    const apps::ScenarioRunResult b = apps::runScenario(s);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.load.completed, b.load.completed);
    EXPECT_GT(a.load.completed, 0u);

    apps::Scenario other = s;
    other.genSeed = 4;
    EXPECT_NE(apps::runScenario(other).digest, a.digest);
}

TEST(GeneratedScenarioTest, ArrivalProcessChangesOnlyTheSchedule)
{
    const apps::Scenario s = smallGeneratedScenario();
    apps::Scenario bursty = s;
    bursty.arrival = "mmpp";
    const apps::ScenarioRunResult a = apps::runScenario(s);
    const apps::ScenarioRunResult b = apps::runScenario(bursty);
    // A different arrival process is a different run...
    EXPECT_NE(a.digest, b.digest);
    // ...but re-running the bursty scenario is still deterministic.
    EXPECT_EQ(apps::runScenario(bursty).digest, b.digest);
}

TEST(GeneratedScenarioTest, SingleTierServiceMatchesMm1ClosedForm)
{
    // The degenerate profile's *sampled parameters* (exponential
    // service at serviceUs * computeScale, one server thread), driven
    // as a bare M/M/1 station on the event queue, must land on the
    // closed-form sojourn S / (1 - rho) — the same validation chain
    // tests/queueing_theory_test.cc pins for the hand-written models.
    const gen::GenProfile *p = gen::genProfileByName("single-tier");
    ASSERT_NE(p, nullptr);
    const Topology t = gen::sampleTopology(*p, 1);
    ASSERT_EQ(t.tiers.size(), 1u);
    ASSERT_EQ(t.queries.size(), 1u);
    const double meanServiceTicks = t.tiers[0].serviceUs *
                                    t.queries[0].computeScale *
                                    static_cast<double>(kTicksPerUs);
    const double rho = 0.7;
    const double expected = meanServiceTicks / (1.0 - rho);

    Simulator sim;
    Rng rng(6001);
    std::deque<Tick> waiting;
    bool busy = false;
    std::uint64_t completed = 0, measured = 0, arrived = 0;
    double sumSojourn = 0.0;
    const std::uint64_t jobs = 120000, warmup = jobs / 5;
    const std::uint64_t total = warmup + jobs + jobs / 5;
    const double meanGap = meanServiceTicks / rho;

    std::function<void(Tick)> serve = [&](Tick when) {
        sim.schedule(
            static_cast<Tick>(rng.exponential(meanServiceTicks)) + 1,
            [&, when] {
                ++completed;
                if (completed > warmup && measured < jobs) {
                    sumSojourn += static_cast<double>(sim.now() - when);
                    ++measured;
                }
                if (!waiting.empty()) {
                    const Tick next = waiting.front();
                    waiting.pop_front();
                    serve(next);
                } else {
                    busy = false;
                }
            });
    };
    std::function<void()> arrive = [&] {
        if (arrived++ < total) {
            sim.schedule(
                static_cast<Tick>(rng.exponential(meanGap)) + 1, arrive);
            if (!busy) {
                busy = true;
                serve(sim.now());
            } else {
                waiting.push_back(sim.now());
            }
        }
    };
    sim.schedule(0, arrive);
    sim.run();

    EXPECT_NEAR(sumSojourn / static_cast<double>(measured), expected,
                0.05 * expected);
}

TEST(GeneratedScenarioTest, SingleTierEndToEndQueueingIsBounded)
{
    // End to end, the single-tier world serves each request with the
    // exponential handler work *plus* deterministic protocol cycles
    // on the same thread (REST parsing/serialization — a deliberate
    // model feature the paper's microservice-tax studies hinge on),
    // so its exact sojourn has no simple closed form. The handler
    // work alone lower-bounds the queueing growth, and the protocol
    // tax is well under one service time, which upper-bounds it: the
    // measured sojourn *difference* between two utilisation points
    // (the network/protocol latency offset cancels) must fall between
    // 1x and 3.5x the handler-only M/M/1 prediction.
    const gen::GenProfile *p = gen::genProfileByName("single-tier");
    ASSERT_NE(p, nullptr);
    const Topology t = gen::sampleTopology(*p, 1);
    const double serviceMs = t.tiers[0].serviceUs *
                             t.queries[0].computeScale / 1000.0;
    const double capacity = 1000.0 / serviceMs; // handler-only rho = 1

    apps::Scenario s;
    s.genProfile = "single-tier";
    s.genSeed = 1;
    s.servers = 1;
    s.durationSec = 25.0;
    s.warmupSec = 3.0;
    auto meanAt = [&](double rho) {
        apps::Scenario run = s;
        run.qps = rho * capacity;
        const apps::ScenarioRunResult r = apps::runScenario(run);
        // Still below the true knee: throughput tracks offered load.
        EXPECT_GT(static_cast<double>(r.load.completed),
                  0.95 * run.qps * run.durationSec);
        return r.load.meanMs;
    };
    const double low = meanAt(0.25);
    const double high = meanAt(0.70);
    const double handlerOnly =
        serviceMs * (0.70 / 0.30 - 0.25 / 0.75);
    EXPECT_GT(high, low);
    EXPECT_GE(high - low, 1.0 * handlerOnly);
    EXPECT_LE(high - low, 3.5 * handlerOnly);
}

} // namespace
} // namespace uqsim
