/**
 * @file
 * Partitioned deployments: one application graph split across shards.
 *
 * The contract under test, in order of strictness:
 *  - placement "none" keeps the classic replica-worlds digest
 *    bit-for-bit (the pinned default-scenario digest);
 *  - a one-shard partition reproduces the standalone World digest;
 *  - at any fixed shard count a partitioned run is thread-count
 *    invariant and seed-deterministic;
 *  - tier pins reroute work without losing requests;
 *  - the bounded-lookahead engine path (lookahead = wire latency)
 *    still reproduces M/M/k queueing against the Erlang-C closed form
 *    when arrivals cross shards to a pinned station.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "apps/social_network.hh"
#include "core/rng.hh"
#include "data/placement.hh"
#include "workload/load_sweep.hh"

namespace uqsim {
namespace {

/** The default-scenario execution digest pinned by older releases. */
constexpr std::uint64_t kDefaultDigest = 0x3e4c3130724e0248ull;

struct PartitionRun
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
};

/** Build + drive one partitioned social network, runWorld-style. */
PartitionRun
runPartitioned(unsigned shards, unsigned threads, std::uint64_t seed,
               double qps,
               const std::vector<data::PlacementPin> &pins = {},
               Tick measure = 3 * kTicksPerSec / 10)
{
    apps::Scenario scn;
    scn.seed = seed;
    scn.shards = shards;
    scn.threads = threads;
    apps::WorldHandle w(apps::worldConfigFor(scn), shards, threads,
                        apps::Deployment::Partition);
    for (unsigned s = 0; s < shards; ++s)
        apps::buildScenarioApp(w.shard(s), scn);
    w.enablePartition(pins);
    apps::LoadSpec spec;
    spec.qps = qps;
    spec.warmup = measure / 3;
    spec.measure = measure;
    spec.users = workload::UserPopulation::uniform(100);
    spec.seed = seed;
    const auto r = apps::runWorld(w, spec);
    PartitionRun out;
    out.digest = w.engine().executionDigest();
    out.events = w.engine().eventsExecuted();
    out.completed = r.completed;
    out.dropped = r.dropped;
    return out;
}

// -- placement assignment -----------------------------------------------

TEST(PlacementTest, EntryHomesOnShardZeroOthersRoundRobin)
{
    std::map<std::string, unsigned> homes;
    std::string error;
    ASSERT_TRUE(data::assignPlacement({"lb", "logic", "cache", "db"},
                                      "lb", 2, {}, homes, error))
        << error;
    EXPECT_EQ(homes.at("lb"), 0u);
    // Unpinned non-entry tiers alternate in insertion order.
    EXPECT_EQ(homes.at("logic"), 0u);
    EXPECT_EQ(homes.at("cache"), 1u);
    EXPECT_EQ(homes.at("db"), 0u);
}

TEST(PlacementTest, PinsOverrideRoundRobin)
{
    std::map<std::string, unsigned> homes;
    std::string error;
    ASSERT_TRUE(data::assignPlacement({"lb", "logic", "cache"}, "lb", 4,
                                      {{"cache", 3}, {"lb", 1}}, homes,
                                      error))
        << error;
    EXPECT_EQ(homes.at("cache"), 3u);
    EXPECT_EQ(homes.at("lb"), 1u);
}

TEST(PlacementTest, RejectsUnknownTierOutOfRangeAndDuplicate)
{
    std::map<std::string, unsigned> homes;
    std::string error;
    EXPECT_FALSE(data::assignPlacement({"lb"}, "lb", 2, {{"nosuch", 0}},
                                       homes, error));
    EXPECT_NE(error.find("unknown tier 'nosuch'"), std::string::npos);
    EXPECT_FALSE(data::assignPlacement({"lb"}, "lb", 2, {{"lb", 2}},
                                       homes, error));
    EXPECT_NE(error.find("only 2 shards exist"), std::string::npos);
    EXPECT_FALSE(data::assignPlacement({"lb"}, "lb", 2,
                                       {{"lb", 0}, {"lb", 1}}, homes,
                                       error));
    EXPECT_NE(error.find("duplicate placement pin"), std::string::npos);
}

// -- digest contracts ---------------------------------------------------

TEST(PartitionTest, PlacementNoneKeepsPinnedDefaultDigest)
{
    // The full default scenario (qps 300, 10s window, 2s warmup, seed
    // 42) driven exactly as uqsim_run drives it with --placement none.
    apps::Scenario scn;
    apps::WorldHandle w(apps::worldConfigFor(scn), scn.shards,
                        scn.threads);
    apps::buildScenarioApp(w.shard(0), scn);
    apps::LoadSpec spec;
    spec.qps = scn.qps;
    spec.warmup = secToTicks(scn.warmupSec);
    spec.measure = secToTicks(scn.durationSec);
    spec.users = workload::UserPopulation::uniform(scn.users);
    spec.seed = scn.seed + 1;
    const auto r = apps::runWorld(w, spec);
    EXPECT_EQ(w.engine().executionDigest(), kDefaultDigest);
    EXPECT_EQ(r.completed, 3039u);
}

TEST(PartitionTest, OneShardPartitionMatchesStandaloneWorld)
{
    apps::WorldConfig c;
    c.seed = 42;
    apps::World standalone(c);
    apps::buildSocialNetwork(standalone);
    workload::runLoad(*standalone.app, 200.0, kTicksPerSec / 10,
                      3 * kTicksPerSec / 10,
                      workload::QueryMix::fromApp(*standalone.app),
                      workload::UserPopulation::uniform(100), 42);

    const PartitionRun part = runPartitioned(1, 1, 42, 200.0);
    EXPECT_EQ(part.digest, standalone.sim.executionDigest());
    EXPECT_EQ(part.events, standalone.sim.eventsExecuted());
}

TEST(PartitionTest, ThreadCountInvariantAtFixedShards)
{
    for (unsigned shards : {2u, 4u}) {
        const PartitionRun one = runPartitioned(shards, 1, 42, 200.0);
        const PartitionRun four = runPartitioned(shards, 4, 42, 200.0);
        EXPECT_GT(one.completed, 0u) << "shards=" << shards;
        EXPECT_EQ(one.digest, four.digest) << "shards=" << shards;
        EXPECT_EQ(one.events, four.events) << "shards=" << shards;
        EXPECT_EQ(one.completed, four.completed)
            << "shards=" << shards;
    }
}

TEST(PartitionTest, SeedDeterministicAndSeedSensitive)
{
    const PartitionRun a = runPartitioned(2, 2, 42, 200.0);
    const PartitionRun b = runPartitioned(2, 2, 42, 200.0);
    const PartitionRun c = runPartitioned(2, 2, 43, 200.0);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.events, b.events);
    EXPECT_NE(a.digest, c.digest);
}

TEST(PartitionTest, PartitionLosesNoTraffic)
{
    // Splitting the graph adds cross-shard latency but must not lose
    // or duplicate requests: the same arrival schedule completes.
    const PartitionRun solo = runPartitioned(1, 1, 42, 200.0);
    const PartitionRun split = runPartitioned(4, 1, 42, 200.0);
    EXPECT_EQ(split.completed, solo.completed);
    EXPECT_EQ(split.dropped, solo.dropped);
}

TEST(PartitionTest, PinsRerouteDeterministically)
{
    const std::vector<data::PlacementPin> pins = {
        {"posts-memcached", 1}, {"posts-db", 1}};
    const PartitionRun def = runPartitioned(2, 1, 42, 200.0);
    const PartitionRun pinned = runPartitioned(2, 1, 42, 200.0, pins);
    const PartitionRun again = runPartitioned(2, 2, 42, 200.0, pins);
    EXPECT_NE(pinned.digest, def.digest);
    EXPECT_EQ(pinned.digest, again.digest);
    EXPECT_EQ(pinned.completed, def.completed);
}

TEST(PartitionTest, PartitionShardsShareTheBaseSeed)
{
    apps::Scenario scn;
    scn.seed = 77;
    apps::WorldHandle part(apps::worldConfigFor(scn), 3, 1,
                           apps::Deployment::Partition);
    apps::WorldHandle repl(apps::worldConfigFor(scn), 3, 1,
                           apps::Deployment::Replicate);
    for (unsigned s = 0; s < 3; ++s) {
        EXPECT_EQ(part.shard(s).config().seed, 77u);
        EXPECT_EQ(repl.shard(s).config().seed,
                  apps::WorldHandle::shardSeed(77, s));
    }
    EXPECT_EQ(part.deployment(), apps::Deployment::Partition);
    EXPECT_EQ(repl.deployment(), apps::Deployment::Replicate);
}

// -- M/M/k across a pinned cross-shard hop ------------------------------

/** Erlang-C: probability an arrival must wait in an M/M/k queue. */
double
erlangC(unsigned k, double offered)
{
    double invSum = 0.0, term = 1.0;
    for (unsigned i = 0; i < k; ++i) {
        invSum += term;
        term *= offered / static_cast<double>(i + 1);
    }
    const double last = term * static_cast<double>(k) /
                        (static_cast<double>(k) - offered);
    return last / (invSum + last);
}

/**
 * An M/M/k FCFS station living on one shard, fed by offer() calls
 * posted from another: the minimal model of a tier pinned away from
 * its callers. Sojourn is measured from station arrival, so the
 * constant forwarding delay cancels out of the Erlang-C comparison.
 */
class PinnedStation
{
  public:
    PinnedStation(SimContext ctx, std::uint64_t seed,
                  double mean_service, unsigned k)
        : ctx_(ctx), rng_(seed), meanService_(mean_service), k_(k)
    {}

    void
    offer()
    {
        if (busy_ < k_) {
            ++busy_;
            startService(ctx_.now());
        } else {
            waiting_.push_back(ctx_.now());
        }
    }

    std::uint64_t completed() const { return completed_; }

    double
    meanSojournTicks() const
    {
        return sumSojourn_ / static_cast<double>(completed_);
    }

  private:
    void
    startService(Tick arrived)
    {
        ctx_.schedule(
            static_cast<Tick>(rng_.exponential(meanService_)) + 1,
            [this, arrived]() {
                ++completed_;
                sumSojourn_ += static_cast<double>(ctx_.now() - arrived);
                if (!waiting_.empty()) {
                    const Tick next = waiting_.front();
                    waiting_.pop_front();
                    startService(next);
                } else {
                    --busy_;
                }
            });
    }

    SimContext ctx_;
    Rng rng_;
    double meanService_;
    unsigned k_;
    std::deque<Tick> waiting_;
    unsigned busy_ = 0;
    std::uint64_t completed_ = 0;
    double sumSojourn_ = 0.0;
};

TEST(PartitionTest, MmkAcrossPinnedShardMatchesErlangC)
{
    constexpr double kMeanServiceTicks = 100.0 * kTicksPerUs;
    constexpr double kRho = 0.7;
    constexpr unsigned kServers = 4;
    constexpr std::uint64_t kJobs = 60000;
    constexpr Tick kLookahead = 10 * kTicksPerUs; // the wire latency

    auto run = [&](unsigned threads) {
        ParallelSimulator par({2, kLookahead, threads});
        PinnedStation station(par.context(1), 9001, kMeanServiceTicks,
                              kServers);
        // Poisson arrivals on shard 0, each forwarded to the pinned
        // station with exactly the conservative lookahead — the
        // minimum legal cross-shard delay, and the worst case for the
        // engine's barrier logic.
        struct Source
        {
            SimContext ctx;
            Rng rng;
            double meanInterarrival;
            std::uint64_t remaining;
            PinnedStation *station;
            void
            arrive()
            {
                if (remaining == 0)
                    return;
                --remaining;
                ctx.postToShard(1, kLookahead,
                                [st = station]() { st->offer(); });
                ctx.schedule(
                    static_cast<Tick>(
                        rng.exponential(meanInterarrival)) +
                        1,
                    [this]() { arrive(); });
            }
        };
        Source src{par.context(0), Rng(9000),
                   kMeanServiceTicks / (kRho * kServers), kJobs,
                   &station};
        par.context(0).schedule(0, [&src]() { src.arrive(); });
        par.run();
        EXPECT_EQ(station.completed(), kJobs);
        return std::pair<double, std::uint64_t>(
            station.meanSojournTicks(), par.executionDigest());
    };

    const auto one = run(1);
    const auto two = run(2);
    EXPECT_EQ(one.second, two.second); // thread-invariant digest

    const double a = kRho * kServers;
    const double mu = 1.0 / kMeanServiceTicks;
    const double lambda = a * mu;
    const double expected =
        erlangC(kServers, a) / (kServers * mu - lambda) +
        kMeanServiceTicks;
    EXPECT_NEAR(one.first, expected, 0.05 * expected);
}

} // namespace
} // namespace uqsim
