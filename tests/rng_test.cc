/**
 * @file
 * Unit and statistical tests for the PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.hh"

namespace uqsim {
namespace {

constexpr int kSamples = 200000;

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(RngTest, Uniform01Bounds)
{
    Rng rng(7);
    for (int i = 0; i < kSamples; ++i) {
        const double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, Uniform01Mean)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i)
        sum += rng.uniform01();
    EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformIntRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.uniformInt(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i)
        sum += rng.exponential(250.0);
    EXPECT_NEAR(sum / kSamples, 250.0, 5.0);
}

TEST(RngTest, ExponentialIsPositive)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        ASSERT_GT(rng.exponential(1.0), 0.0);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < kSamples; ++i) {
        const double v = rng.normal(10.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / kSamples;
    const double var = sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, LognormalMean)
{
    Rng rng(19);
    const double mu = 1.0, sigma = 0.5;
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i)
        sum += rng.lognormal(mu, sigma);
    const double expected = std::exp(mu + 0.5 * sigma * sigma);
    EXPECT_NEAR(sum / kSamples, expected, 0.05 * expected);
}

TEST(RngTest, BoundedParetoStaysInBounds)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.boundedPareto(1.5, 10.0, 1000.0);
        ASSERT_GE(v, 10.0 * 0.999);
        ASSERT_LE(v, 1000.0 * 1.001);
    }
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    for (int i = 0; i < kSamples; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace uqsim
