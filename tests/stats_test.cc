/**
 * @file
 * Tests for counters, time-weighted gauges, windowed stats and the
 * registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/stats.hh"

namespace uqsim {
namespace {

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(TimeWeightedGaugeTest, ConstantValueAverage)
{
    TimeWeightedGauge g;
    g.update(0, 0.5);
    EXPECT_NEAR(g.average(100), 0.5, 1e-9);
}

TEST(TimeWeightedGaugeTest, StepChangeWeightsByDuration)
{
    TimeWeightedGauge g;
    g.update(0, 0.0);
    g.update(50, 1.0); // 0.0 for [0,50), 1.0 for [50,100)
    EXPECT_NEAR(g.average(100), 0.5, 1e-9);
}

TEST(TimeWeightedGaugeTest, PeakTracksMaximum)
{
    TimeWeightedGauge g;
    g.update(0, 0.2);
    g.update(10, 0.9);
    g.update(20, 0.1);
    EXPECT_NEAR(g.peak(), 0.9, 1e-9);
}

TEST(TimeWeightedGaugeTest, ResetRestartsIntegration)
{
    TimeWeightedGauge g;
    g.update(0, 1.0);
    g.reset(100);
    g.update(100, 0.0);
    EXPECT_NEAR(g.average(200), 0.0, 1e-9);
}

TEST(TimeWeightedGaugeTest, AverageAtResetTimeIsCurrent)
{
    TimeWeightedGauge g;
    g.update(0, 0.7);
    g.reset(10);
    EXPECT_NEAR(g.average(10), 0.7, 1e-9);
}

TEST(WindowedStatTest, RollExposesLastWindow)
{
    WindowedStat s(100);
    s.record(10, 500);
    s.record(20, 700);
    s.roll(100);
    EXPECT_EQ(s.windowCount(), 2u);
    EXPECT_NEAR(s.windowMean(), 600.0, 1.0);
}

TEST(WindowedStatTest, AutoRollOnWindowBoundary)
{
    WindowedStat s(100);
    s.record(10, 500);
    // Recording far past the boundary closes the previous window.
    s.record(250, 900);
    EXPECT_EQ(s.windowCount(), 1u);
    EXPECT_NEAR(s.windowMean(), 500.0, 1.0);
}

TEST(WindowedStatTest, EmptyWindowReportsZero)
{
    WindowedStat s(100);
    s.roll(100);
    EXPECT_EQ(s.windowCount(), 0u);
    EXPECT_EQ(s.windowMean(), 0.0);
    EXPECT_EQ(s.windowP99(), 0u);
}

TEST(StatRegistryTest, OwnsNamedStats)
{
    StatRegistry reg;
    reg.counter("requests").inc(3);
    reg.gauge("load").set(0.7);
    reg.histogram("latency").record(123);
    EXPECT_EQ(reg.counter("requests").value(), 3u);
    EXPECT_EQ(reg.gauge("load").value(), 0.7);
    EXPECT_EQ(reg.histogram("latency").count(), 1u);
}

TEST(StatRegistryTest, DumpContainsNames)
{
    StatRegistry reg;
    reg.counter("foo").inc();
    reg.histogram("bar").record(10);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("foo"), std::string::npos);
    EXPECT_NE(os.str().find("bar"), std::string::npos);
}

TEST(StatRegistryTest, ResetAllClears)
{
    StatRegistry reg;
    reg.counter("c").inc(9);
    reg.histogram("h").record(5);
    reg.resetAll();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
}

} // namespace
} // namespace uqsim
