/**
 * @file
 * Tests for counters, time-weighted gauges and windowed stats. The
 * named registry is covered in metrics_test.cc.
 */

#include <gtest/gtest.h>

#include "core/stats.hh"

namespace uqsim {
namespace {

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(TimeWeightedGaugeTest, ConstantValueAverage)
{
    TimeWeightedGauge g;
    g.update(0, 0.5);
    EXPECT_NEAR(g.average(100), 0.5, 1e-9);
}

TEST(TimeWeightedGaugeTest, StepChangeWeightsByDuration)
{
    TimeWeightedGauge g;
    g.update(0, 0.0);
    g.update(50, 1.0); // 0.0 for [0,50), 1.0 for [50,100)
    EXPECT_NEAR(g.average(100), 0.5, 1e-9);
}

TEST(TimeWeightedGaugeTest, PeakTracksMaximum)
{
    TimeWeightedGauge g;
    g.update(0, 0.2);
    g.update(10, 0.9);
    g.update(20, 0.1);
    EXPECT_NEAR(g.peak(), 0.9, 1e-9);
}

TEST(TimeWeightedGaugeTest, ResetRestartsIntegration)
{
    TimeWeightedGauge g;
    g.update(0, 1.0);
    g.reset(100);
    g.update(100, 0.0);
    EXPECT_NEAR(g.average(200), 0.0, 1e-9);
}

TEST(TimeWeightedGaugeTest, AverageAtResetTimeIsCurrent)
{
    TimeWeightedGauge g;
    g.update(0, 0.7);
    g.reset(10);
    EXPECT_NEAR(g.average(10), 0.7, 1e-9);
}

TEST(WindowedStatTest, RollExposesLastWindow)
{
    WindowedStat s(100);
    s.record(10, 500);
    s.record(20, 700);
    s.roll(100);
    EXPECT_EQ(s.windowCount(), 2u);
    EXPECT_NEAR(s.windowMean(), 600.0, 1.0);
}

TEST(WindowedStatTest, AutoRollOnWindowBoundary)
{
    WindowedStat s(100);
    s.record(10, 500);
    // Recording far past the boundary closes the previous window.
    s.record(250, 900);
    EXPECT_EQ(s.windowCount(), 1u);
    EXPECT_NEAR(s.windowMean(), 500.0, 1.0);
}

TEST(WindowedStatTest, EmptyWindowReportsZero)
{
    WindowedStat s(100);
    s.roll(100);
    EXPECT_EQ(s.windowCount(), 0u);
    EXPECT_EQ(s.windowMean(), 0.0);
    EXPECT_EQ(s.windowP99(), 0u);
}

} // namespace
} // namespace uqsim
