/**
 * @file
 * uqsim_sweep: corpus emitter and batch scenario runner.
 *
 * Two modes over the scenario surface uqsim_run exposes one run at a
 * time:
 *
 *   uqsim_sweep --emit scenarios/
 *       Write the built-in corpus — every shipped (profile, seed,
 *       arrival-process) combination — as ordinary scenario JSON
 *       files. Emission is pure apps::scenarioToJson output, so
 *       regenerating the corpus is bit-identical on every platform
 *       (CI diffs a re-emission against the committed files).
 *
 *   uqsim_sweep --corpus scenarios/ [--match SUBSTR] [--qps 100,200]
 *               [--out results.json]
 *       Run every scenario file in the directory (sorted by name,
 *       optionally filtered), optionally fanning each one out over a
 *       comma-separated qps grid, and aggregate per-scenario
 *       tail-latency/goodput/digest results into one JSON document.
 *
 * Every run goes through apps::runScenario(), the same headless driver
 * sequence uqsim_run performs, so sweep digests match CLI digests.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/scenario.hh"
#include "core/json.hh"
#include "core/logging.hh"

using namespace uqsim;

namespace {

struct CorpusEntry
{
    const char *profile;
    std::uint64_t seed;
    const char *arrival;
    double qps;
    unsigned servers;
};

/**
 * The committed corpus under scenarios/: three to five samples per
 * profile family, with at least one bursty arrival process each.
 * Poisson load points sit below each sample's saturation knee so the
 * corpus doubles as a quick regression sweep; the mmpp/flash entries
 * intentionally push their samples into transient overload — that is
 * what those arrival processes are for.
 */
constexpr CorpusEntry kCorpus[] = {
    {"single-tier", 1, "poisson", 200.0, 1},
    {"single-tier", 2, "poisson", 200.0, 1},
    {"single-tier", 1, "mmpp", 200.0, 1},
    {"social-network", 1, "poisson", 40.0, 12},
    {"social-network", 2, "poisson", 100.0, 10},
    {"social-network", 3, "poisson", 60.0, 12},
    {"social-network", 1, "mmpp", 30.0, 12},
    {"social-network", 1, "flash", 20.0, 12},
    {"media", 1, "poisson", 80.0, 10},
    {"media", 2, "poisson", 120.0, 10},
    {"media", 1, "diurnal", 50.0, 10},
    {"ecommerce", 1, "poisson", 80.0, 10},
    {"ecommerce", 2, "poisson", 120.0, 10},
    {"ecommerce", 1, "mmpp", 40.0, 10},
    {"banking", 1, "poisson", 150.0, 8},
    {"banking", 2, "poisson", 150.0, 8},
    {"banking", 1, "diurnal", 150.0, 8},
    {"swarm", 1, "poisson", 200.0, 6},
    {"swarm", 2, "poisson", 200.0, 6},
    {"swarm", 1, "flash", 120.0, 6},
};

std::string
corpusFileName(const CorpusEntry &e)
{
    return strCat(e.profile, "-s", e.seed, "-", e.arrival, ".json");
}

apps::Scenario
corpusScenario(const CorpusEntry &e)
{
    apps::Scenario s;
    s.genProfile = e.profile;
    s.genSeed = e.seed;
    s.arrival = e.arrival;
    s.qps = e.qps;
    s.servers = e.servers;
    s.durationSec = 4.0;
    s.warmupSec = 1.0;
    // Fit one whole diurnal "day" inside the measured window so the
    // long-run mean rate is observable in a 4-second run.
    if (s.arrival == std::string("diurnal"))
        s.arrivalPeriod = 4 * kTicksPerSec;
    return s;
}

struct Options
{
    std::string emitDir;
    std::string corpusDir;
    std::string match;
    std::string outPath;
    std::vector<double> qpsGrid;
};

void
usage()
{
    std::cout <<
        "uqsim_sweep - emit the scenario corpus or batch-run one\n\n"
        "  --emit DIR       write the built-in corpus into DIR, exit\n"
        "  --corpus DIR     run every scenario JSON in DIR (sorted)\n"
        "  --match SUBSTR   only run files whose name contains SUBSTR\n"
        "  --qps LIST       comma-separated qps grid: run each scenario\n"
        "                   once per value, overriding its own qps\n"
        "  --out FILE       write the results JSON (default: stdout)\n"
        "\nOptions taking a value also accept --opt=value.\n";
}

bool
parse(int argc, char **argv, Options &opt)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }
    auto need = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            fatal(strCat("missing value for ", args[i]));
        return args[++i];
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--emit")
            opt.emitDir = need(i);
        else if (a == "--corpus")
            opt.corpusDir = need(i);
        else if (a == "--match")
            opt.match = need(i);
        else if (a == "--out")
            opt.outPath = need(i);
        else if (a == "--qps") {
            const std::string &flag = args[i], &v = need(i);
            std::stringstream ss(v);
            std::string part;
            while (std::getline(ss, part, ',')) {
                try {
                    std::size_t consumed = 0;
                    const double q = std::stod(part, &consumed);
                    if (consumed != part.size() || q <= 0.0)
                        throw std::invalid_argument(part);
                    opt.qpsGrid.push_back(q);
                } catch (...) {
                    fatal(strCat("bad qps '", part, "' for ", flag));
                }
            }
            if (opt.qpsGrid.empty())
                fatal("--qps needs at least one value");
        } else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal(strCat("unknown option '", a, "' (try --help)"));
        }
    }
    if (opt.emitDir.empty() == opt.corpusDir.empty())
        fatal("exactly one of --emit or --corpus is required");
    return true;
}

int
emitCorpus(const std::string &dir)
{
    std::filesystem::create_directories(dir);
    for (const CorpusEntry &e : kCorpus) {
        const std::string name = corpusFileName(e);
        const std::filesystem::path path =
            std::filesystem::path(dir) / name;
        std::ofstream out(path);
        if (!out)
            fatal(strCat("cannot write '", path.string(), "'"));
        out << apps::scenarioToJson(corpusScenario(e));
        std::cout << name << "\n";
    }
    std::cout << std::size(kCorpus) << " scenarios emitted to " << dir
              << "\n";
    return 0;
}

std::string
digestHex(std::uint64_t digest)
{
    std::ostringstream out;
    out << std::hex << std::setw(16) << std::setfill('0') << digest;
    return out.str();
}

int
runCorpus(const Options &opt)
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(opt.corpusDir)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json")
            continue;
        const std::string name = entry.path().filename().string();
        if (!opt.match.empty() &&
            name.find(opt.match) == std::string::npos)
            continue;
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty())
        fatal(strCat("no scenario files under '", opt.corpusDir,
                     opt.match.empty()
                         ? std::string("'")
                         : strCat("' matching '", opt.match, "'")));

    json::Writer w;
    w.beginObject();
    w.beginArray("scenarios");
    for (const std::filesystem::path &path : files) {
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        apps::Scenario scn;
        std::string error;
        if (!apps::parseScenarioJson(text.str(), scn, error))
            fatal(strCat("bad scenario '", path.string(), "': ",
                         error));
        std::vector<double> grid = opt.qpsGrid;
        if (grid.empty())
            grid.push_back(scn.qps);
        for (const double qps : grid) {
            scn.qps = qps;
            std::cerr << path.filename().string() << " @ " << qps
                      << " qps...\n";
            const apps::ScenarioRunResult r = apps::runScenario(scn);
            w.beginObject();
            w.field("file", path.filename().string());
            w.field("qps", qps);
            w.field("completed", r.load.completed);
            w.field("dropped", r.load.dropped);
            w.field("failed", r.failed);
            w.field("p50_ms", ticksToMs(r.load.p50));
            w.field("p95_ms", ticksToMs(r.load.p95));
            w.field("p99_ms", ticksToMs(r.load.p99));
            w.field("mean_ms", r.load.meanMs);
            w.field("achieved_qps", r.load.achievedQps);
            w.field("goodput_qps", r.load.goodputQps);
            w.field("utilization", r.load.meanUtilization);
            w.field("events", r.events);
            w.field("digest", digestHex(r.digest));
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
    const std::string doc = w.str() + "\n";
    if (opt.outPath.empty()) {
        std::cout << doc;
    } else {
        std::ofstream out(opt.outPath);
        if (!out)
            fatal(strCat("cannot write '", opt.outPath, "'"));
        out << doc;
        // Echo the document so PASS_REGULAR_EXPRESSION-style smoke
        // checks (and humans) see the aggregate without a second read.
        std::cout << doc;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return 0;
    if (!opt.emitDir.empty())
        return emitCorpus(opt.emitDir);
    return runCorpus(opt);
}
