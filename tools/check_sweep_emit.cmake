# Re-emit the scenario corpus into a scratch directory and verify it
# is bit-identical to the committed scenarios/ files — the property
# that makes the corpus reviewable (any generator change must show up
# as a corpus diff in the same commit).
#
# Inputs: SWEEP (uqsim_sweep binary), WORK_DIR (scratch directory),
# SCENARIOS_DIR (the committed corpus).

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(COMMAND "${SWEEP}" --emit "${WORK_DIR}"
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "uqsim_sweep --emit failed (${rc})")
endif()

file(GLOB emitted RELATIVE "${WORK_DIR}" "${WORK_DIR}/*.json")
file(GLOB committed RELATIVE "${SCENARIOS_DIR}" "${SCENARIOS_DIR}/*.json")
list(LENGTH emitted n_emitted)
list(LENGTH committed n_committed)
if(n_emitted EQUAL 0)
    message(FATAL_ERROR "uqsim_sweep --emit produced no scenarios")
endif()
if(NOT n_emitted EQUAL n_committed)
    message(FATAL_ERROR "corpus size mismatch: emitted ${n_emitted}, "
        "committed ${n_committed} — re-run uqsim_sweep --emit scenarios/")
endif()

foreach(f ${emitted})
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
        "${WORK_DIR}/${f}" "${SCENARIOS_DIR}/${f}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR "emitted ${f} differs from the committed "
            "corpus — re-run uqsim_sweep --emit scenarios/")
    endif()
endforeach()

message(STATUS "corpus re-emission matches: ${n_emitted} scenarios")
