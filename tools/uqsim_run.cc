/**
 * @file
 * uqsim_run: command-line driver over the whole suite.
 *
 * Run any end-to-end application under any platform/protocol/fault
 * configuration without writing C++:
 *
 *   uqsim_run --app social-network --qps 300 --duration 10
 *   uqsim_run --app ecommerce --core thunderx --freq 1800 --report services
 *   uqsim_run --app social-network --fpga --report traces
 *   uqsim_run --app banking --lambda s3 --report cost
 *   uqsim_run --app swarm-edge --qps 4 --drones 24
 *   uqsim_run --app social-network --slow-servers 2 --skew 90
 *   uqsim_run --list
 *
 * Prints a latency/goodput summary plus the requested report section.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "apps/single_tier.hh"
#include "apps/social_network.hh"
#include "apps/swarm.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "cpu/power.hh"
#include "serverless/platform.hh"
#include "trace/analysis.hh"
#include "trace/export.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

struct Options
{
    std::string app = "social-network";
    double qps = 300.0;
    double durationSec = 10.0;
    double warmupSec = 2.0;
    unsigned servers = 5;
    unsigned drones = 24;
    std::string core = "xeon";
    double freqMhz = 0.0;
    bool fpga = false;
    std::string lambda;          // "", "s3", "mem"
    unsigned slowServers = 0;
    double slowFactor = 40.0;
    double skew = -1.0;          // <0: uniform users
    std::uint64_t users = 1000;
    std::uint64_t seed = 42;
    std::string report = "summary"; // summary|services|traces|cost|energy
    std::string traceOut;           // Perfetto JSON file ("" = none)
    std::string metricsOut;         // metrics snapshot JSON ("" = none)
    std::size_t traceCapacity = trace::TraceStore::kDefaultCapacity;
    bool list = false;
};

void
usage()
{
    std::cout <<
        "uqsim_run - drive a DeathStarBench model from the CLI\n\n"
        "  --app NAME         social-network | media | ecommerce | banking |\n"
        "                     swarm-cloud | swarm-edge | social-monolith |\n"
        "                     nginx | memcached | mongodb | xapian | recommender\n"
        "  --qps N            offered load (default 300)\n"
        "  --duration SEC     measured window (default 10)\n"
        "  --warmup SEC       warmup window (default 2)\n"
        "  --servers N        worker servers (default 5)\n"
        "  --drones N         swarm size (default 24)\n"
        "  --core MODEL       xeon | xeon18 | thunderx (default xeon)\n"
        "  --freq MHZ         RAPL frequency cap for all servers\n"
        "  --fpga             enable the TCP offload\n"
        "  --lambda KIND      serverless execution: s3 | mem\n"
        "  --slow-servers N   inject N slow servers\n"
        "  --slow-factor X    slowdown multiplier (default 40)\n"
        "  --skew PCT         user skew 0-99 (default: uniform)\n"
        "  --users N          user population (default 1000)\n"
        "  --seed N           world seed (default 42)\n"
        "  --report KIND      summary | services | traces | cost | energy\n"
        "  --trace-out FILE   write collected spans as Chrome/Perfetto\n"
        "                     trace-event JSON (open in ui.perfetto.dev)\n"
        "  --metrics-out FILE write the metrics-registry snapshot as JSON\n"
        "  --trace-capacity N span ring-buffer capacity (default "
            + std::to_string(trace::TraceStore::kDefaultCapacity) + ")\n"
        "  --list             list applications and exit\n"
        "\nOptions taking a value also accept --opt=value.\n";
}

bool
parse(int argc, char **argv, Options &opt)
{
    // Accept both "--opt value" and "--opt=value" by splitting on the
    // first '=' of every long option up-front.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    auto need = [&](std::size_t &i) -> const char * {
        if (i + 1 >= args.size())
            fatal(strCat("missing value for ", args[i]));
        return args[++i].c_str();
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--app")
            opt.app = need(i);
        else if (a == "--qps")
            opt.qps = std::atof(need(i));
        else if (a == "--duration")
            opt.durationSec = std::atof(need(i));
        else if (a == "--warmup")
            opt.warmupSec = std::atof(need(i));
        else if (a == "--servers")
            opt.servers = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--drones")
            opt.drones = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--core")
            opt.core = need(i);
        else if (a == "--freq")
            opt.freqMhz = std::atof(need(i));
        else if (a == "--fpga")
            opt.fpga = true;
        else if (a == "--lambda")
            opt.lambda = need(i);
        else if (a == "--slow-servers")
            opt.slowServers = static_cast<unsigned>(std::atoi(need(i)));
        else if (a == "--slow-factor")
            opt.slowFactor = std::atof(need(i));
        else if (a == "--skew")
            opt.skew = std::atof(need(i));
        else if (a == "--users")
            opt.users = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (a == "--seed")
            opt.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (a == "--report")
            opt.report = need(i);
        else if (a == "--trace-out")
            opt.traceOut = need(i);
        else if (a == "--metrics-out")
            opt.metricsOut = need(i);
        else if (a == "--trace-capacity")
            opt.traceCapacity =
                static_cast<std::size_t>(std::atoll(need(i)));
        else if (a == "--list")
            opt.list = true;
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal(strCat("unknown option '", a, "' (try --help)"));
        }
    }
    return true;
}

cpu::CoreModel
coreModel(const std::string &name)
{
    if (name == "xeon")
        return cpu::CoreModel::xeon();
    if (name == "xeon18")
        return cpu::CoreModel::xeonAt1800();
    if (name == "thunderx")
        return cpu::CoreModel::thunderx();
    fatal(strCat("unknown core model '", name, "'"));
}

/** Build the requested app; returns true if it is a swarm variant. */
void
buildByName(apps::World &w, const Options &opt)
{
    const std::string &n = opt.app;
    apps::SwarmOptions so;
    so.drones = opt.drones;
    if (n == "social-network")
        apps::buildSocialNetwork(w);
    else if (n == "social-monolith")
        apps::buildSocialNetworkMonolith(w);
    else if (n == "media")
        apps::buildApp(w, apps::AppId::MediaService);
    else if (n == "ecommerce")
        apps::buildApp(w, apps::AppId::Ecommerce);
    else if (n == "banking")
        apps::buildApp(w, apps::AppId::Banking);
    else if (n == "swarm-cloud")
        apps::buildSwarm(w, apps::SwarmVariant::Cloud, so);
    else if (n == "swarm-edge")
        apps::buildSwarm(w, apps::SwarmVariant::Edge, so);
    else if (n == "nginx")
        apps::buildSingleTier(w, apps::SingleTierKind::Nginx);
    else if (n == "memcached")
        apps::buildSingleTier(w, apps::SingleTierKind::Memcached);
    else if (n == "mongodb")
        apps::buildSingleTier(w, apps::SingleTierKind::MongoDB);
    else if (n == "xapian")
        apps::buildSingleTier(w, apps::SingleTierKind::Xapian);
    else if (n == "recommender")
        apps::buildSingleTier(w, apps::SingleTierKind::Recommender);
    else
        fatal(strCat("unknown app '", n, "' (try --list)"));
}

void
listApps()
{
    std::cout << "End-to-end services (Table 1):\n";
    for (apps::AppId id : apps::allApps()) {
        const auto &info = apps::appInfo(id);
        std::cout << "  " << info.name << ": "
                  << info.uniqueMicroservices << " microservices, "
                  << info.protocol << "\n";
    }
    std::cout << "Single-tier baselines: nginx, memcached, mongodb, "
                 "xapian, recommender\nMonolith: social-monolith\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return 0;
    if (opt.list) {
        listApps();
        return 0;
    }

    apps::WorldConfig config;
    config.workerServers = opt.servers;
    config.coreModel = coreModel(opt.core);
    config.seed = opt.seed;
    config.appConfig.traceCapacity = opt.traceCapacity;
    if (opt.fpga)
        config.appConfig.fpga = net::FpgaOffloadModel::on();
    apps::World world(config);
    buildByName(world, opt);
    service::App &app = *world.app;

    serverless::LambdaConfig lambda_cfg;
    if (!opt.lambda.empty()) {
        lambda_cfg.stateStore = opt.lambda == "s3"
                                    ? serverless::StateStoreKind::S3
                                    : serverless::StateStoreKind::
                                          RemoteMemory;
        serverless::LambdaPlatform::applyToApp(app, lambda_cfg,
                                               world.cluster);
    }
    if (opt.freqMhz > 0.0)
        world.cluster.setAllFrequenciesMhz(opt.freqMhz);
    if (opt.slowServers > 0)
        world.cluster.injectSlowServers(opt.slowServers, opt.slowFactor);

    cpu::EnergyMeter meter(world.sim, world.cluster,
                           cpu::PowerModel::xeon());
    if (opt.report == "energy")
        meter.start();

    const workload::UserPopulation users =
        opt.skew >= 0.0
            ? workload::UserPopulation::skewed(opt.users, opt.skew)
            : workload::UserPopulation::uniform(opt.users);
    const auto r = workload::runLoad(
        app, opt.qps, secToTicks(opt.warmupSec),
        secToTicks(opt.durationSec), workload::QueryMix::fromApp(app),
        users, opt.seed + 1);

    // ---- summary ---------------------------------------------------------
    std::cout << opt.app << " @ " << opt.qps << " qps on " << opt.servers
              << "x " << config.coreModel.name << "\n";
    TextTable summary({"metric", "value"});
    summary.add("completed", r.completed);
    summary.add("dropped", r.dropped);
    summary.add("p50", fmtMs(r.p50));
    summary.add("p95", fmtMs(r.p95));
    summary.add("p99", fmtMs(r.p99));
    summary.add("mean", fmtDouble(r.meanMs, 3) + "ms");
    summary.add("goodput (QoS " +
                    fmtDouble(ticksToMs(app.config().qosLatency), 0) +
                    "ms)",
                fmtDouble(r.goodputQps, 1) + " qps");
    summary.add("network-processing share",
                fmtDouble(100.0 * r.networkShare, 1) + "%");
    summary.add("cluster CPU utilization",
                fmtDouble(100.0 * r.meanUtilization, 2) + "%");
    summary.add("events simulated", world.sim.eventsExecuted());
    {
        // Order-sensitive fingerprint of the executed event sequence;
        // equal seeds must reproduce it bit-for-bit.
        std::ostringstream digest;
        digest << std::hex << std::setw(16) << std::setfill('0')
               << world.sim.executionDigest();
        summary.add("execution digest", digest.str());
    }
    summary.print(std::cout);

    // ---- per-query-type latency ----------------------------------------
    if (app.queryTypes().size() > 1) {
        TextTable q({"query type", "count", "p50(ms)", "p99(ms)"});
        for (unsigned i = 0; i < app.queryTypes().size(); ++i) {
            const auto &h = app.endToEndLatencyFor(i);
            if (h.count() == 0)
                continue;
            q.add(app.queryTypes()[i].name, h.count(),
                  fmtDouble(ticksToMs(h.p50()), 2),
                  fmtDouble(ticksToMs(h.p99()), 2));
        }
        printBanner(std::cout, "query types");
        q.print(std::cout);
    }

    // ---- optional report sections ---------------------------------------
    if (opt.report == "services" || opt.report == "traces") {
        trace::TraceAnalysis ta(app.traceStore());
        printBanner(std::cout, "per-service (from traces)");
        TextTable t({"service", "spans", "mean(us)", "p99(ms)", "net%",
                     "app%", "queue%"});
        for (const auto &s : ta.perService()) {
            t.add(s.service, s.spanCount, fmtDouble(s.meanLatencyUs, 0),
                  fmtDouble(ticksToMs(s.p99LatencyNs), 2),
                  fmtDouble(100 * s.networkShare, 0),
                  fmtDouble(100 * s.appShare, 0),
                  fmtDouble(100 * s.queueShare, 0));
        }
        t.print(std::cout);
    }
    if (opt.report == "traces") {
        trace::TraceAnalysis ta(app.traceStore());
        printBanner(std::cout, "critical path (mean us/request)");
        TextTable cp({"service", "exclusive", "queue", "app", "network",
                      "downstream"});
        for (const auto &e : ta.criticalPathBreakdown())
            cp.add(e.service, fmtDouble(e.exclusiveNs / 1000.0, 0),
                   fmtDouble(e.queueNs / 1000.0, 0),
                   fmtDouble(e.appNs / 1000.0, 0),
                   fmtDouble(e.networkNs / 1000.0, 0),
                   fmtDouble(e.downstreamNs / 1000.0, 0));
        cp.print(std::cout);
        const auto &store = app.traceStore();
        if (store.evicted() > 0)
            std::cout << "note: " << store.evicted()
                      << " oldest spans evicted from the ring "
                         "(capacity " << store.capacity()
                      << "; raise with --trace-capacity)\n";
    }
    if (opt.report == "cost") {
        const Tick window = secToTicks(600.0);
        const serverless::Ec2CostModel ec2;
        printBanner(std::cout, "cost (per 10 minutes)");
        if (opt.lambda.empty()) {
            std::cout << "EC2 reserved (" << opt.servers
                      << " servers as m5.12xlarge): $"
                      << fmtDouble(ec2.cost(opt.servers, window), 2)
                      << "\n";
        } else {
            const serverless::LambdaCostModel lc;
            const auto inv = serverless::LambdaPlatform::invocations(
                app, lambda_cfg.storeName);
            const auto billed =
                serverless::LambdaPlatform::billedDuration(
                    app, lc, lambda_cfg.storeName);
            const double scale = 600.0 / opt.durationSec;
            std::cout << "Lambda (" << opt.lambda << " state): $"
                      << fmtDouble(lc.cost(inv, billed) * scale, 2)
                      << "  (" << inv << " invocations measured)\n";
        }
    }
    if (opt.report == "energy") {
        printBanner(std::cout, "energy");
        std::cout << "cluster average power: "
                  << fmtDouble(meter.averageWatts(), 0) << " W\n"
                  << "energy per completed request: "
                  << fmtDouble(meter.totalJoules() /
                                   std::max<double>(1.0, r.completed),
                               2)
                  << " J\n";
    }

    // ---- file exports ---------------------------------------------------
    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out)
            fatal(strCat("cannot open '", opt.traceOut, "' for writing"));
        trace::exportPerfettoJson(app.traceStore(), out);
        std::cout << "wrote " << app.traceStore().size() << " spans to "
                  << opt.traceOut << " (open in ui.perfetto.dev)\n";
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out)
            fatal(strCat("cannot open '", opt.metricsOut,
                         "' for writing"));
        app.metrics().writeJson(out);
        std::cout << "wrote metrics snapshot to " << opt.metricsOut
                  << "\n";
    }
    return 0;
}
