/**
 * @file
 * uqsim_run: command-line driver over the whole suite.
 *
 * Run any end-to-end application under any platform/protocol/fault
 * configuration without writing C++:
 *
 *   uqsim_run --app social-network --qps 300 --duration 10
 *   uqsim_run --app ecommerce --core thunderx --freq 1800 --report services
 *   uqsim_run --app social-network --fpga --report traces
 *   uqsim_run --app banking --lambda s3 --report cost
 *   uqsim_run --app swarm-edge --qps 4 --drones 24
 *   uqsim_run --app social-network --slow-servers 2 --skew 90
 *   uqsim_run --app social-network --shards 4 --threads 4
 *   uqsim_run --app social-network --placement partition --shards 4
 *   uqsim_run --config scenario.json
 *   uqsim_run --list
 *
 * Prints a latency/goodput summary plus the requested report section.
 * The whole run is described by an apps::Scenario: flags fill one in,
 * --config loads one from JSON (later flags override it), and
 * --dump-config prints the effective scenario and exits.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "apps/scenario.hh"
#include "core/logging.hh"
#include "data/cache_model.hh"
#include "data/keyspace.hh"
#include "core/table.hh"
#include "cpu/power.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "gen/profile.hh"
#include "gen/topology.hh"
#include "obs/culprit.hh"
#include "obs/export.hh"
#include "serverless/platform.hh"
#include "trace/analysis.hh"
#include "trace/export.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

struct Options
{
    /** The run itself; every model-affecting flag lands here. */
    apps::Scenario scn;

    // -- output-only options (not part of the scenario) -------------
    std::string report = "summary"; // see kReportKinds
    std::string traceOut;           // Perfetto JSON file ("" = none)
    std::string metricsOut;         // metrics snapshot JSON ("" = none)
    std::string timeseriesOut;      // interval series ("" = none)
    bool list = false;
    bool listGenProfiles = false;
    bool dumpConfig = false;
    /** --app was given explicitly (conflicts with --generate). */
    bool appFlag = false;
};

const char *const kReportKinds[] = {
    "summary", "services", "traces", "cost",        "energy",
    "resilience", "data",  "qos",    "replication", "slo"};

void
usage()
{
    std::cout <<
        "uqsim_run - drive a DeathStarBench model from the CLI\n\n"
        "  --app NAME         social-network | media | ecommerce | banking |\n"
        "                     swarm-cloud | swarm-edge | social-monolith |\n"
        "                     nginx | memcached | mongodb | xapian | recommender\n"
        "  --generate PROFILE sample a microservice topology from a\n"
        "                     profile instead of building --app (see\n"
        "                     --list-gen-profiles; conflicts with --app)\n"
        "  --gen-seed N       topology sampling seed (default 1)\n"
        "  --gen-depth N      pin the logic levels (0 = profile draw)\n"
        "  --gen-width N      pin tiers per level (0 = profile draw)\n"
        "  --gen-fanout X     override mean call fan-out (0 = profile)\n"
        "  --arrival KIND     arrival process: poisson | mmpp | diurnal\n"
        "                     | flash (default poisson, the legacy\n"
        "                     byte-identical sampler)\n"
        "  --arrival-burst X  mmpp peak/base rate ratio (default 4)\n"
        "  --arrival-duty F   mmpp peak-state time fraction, in (0, 1)\n"
        "                     (default 0.1)\n"
        "  --arrival-dwell DUR  mmpp mean peak sojourn (default 200ms)\n"
        "  --arrival-period DUR diurnal day length (default 10s)\n"
        "  --arrival-low F    diurnal trough rate fraction (default 0.2)\n"
        "  --arrival-flash-at DUR    flash-crowd onset (default 2s)\n"
        "  --arrival-flash-ramp DUR  flash ramp-up / decay constant\n"
        "                     (default 200ms)\n"
        "  --arrival-flash-mult X    flash peak rate multiplier\n"
        "                     (default 8)\n"
        "  --arrival-flash-hold DUR  flash plateau length (default 1s)\n"
        "  --qps N            offered load (default 300)\n"
        "  --duration SEC     measured window (default 10)\n"
        "  --warmup SEC       warmup window (default 2)\n"
        "  --servers N        worker servers per shard (default 5)\n"
        "  --drones N         swarm size (default 24)\n"
        "  --core MODEL       xeon | xeon18 | thunderx (default xeon)\n"
        "  --freq MHZ         RAPL frequency cap for all servers\n"
        "  --fpga             enable the TCP offload\n"
        "  --lambda KIND      serverless execution: s3 | mem\n"
        "  --slow-servers N   inject N slow servers\n"
        "  --slow-factor X    slowdown multiplier (default 40)\n"
        "  --skew PCT         user skew 0-99 (default: uniform)\n"
        "  --users N          user population (default 1000)\n"
        "  --seed N           world seed (default 42)\n"
        "  --shards N         replica shards, each its own event queue\n"
        "                     (default 1; load splits evenly)\n"
        "  --threads N        worker threads driving the shards\n"
        "                     (default 1; never changes results)\n"
        "  --placement MODE   none | replicate | partition: how --shards\n"
        "                     deploys the world (default none; replicate\n"
        "                     is the same replica-worlds layout spelled\n"
        "                     explicitly; partition splits ONE world\n"
        "                     with each tier pinned to a home shard)\n"
        "  --pin TIER=SHARD   partition: pin a tier to a home shard\n"
        "                     (repeatable; unpinned tiers round-robin,\n"
        "                     the entry tier defaults to shard 0)\n"
        "  --config FILE      load a scenario JSON (flags after it\n"
        "                     override; see --dump-config)\n"
        "  --dump-config      print the effective scenario JSON, exit\n"
        "  --report KIND      summary | services | traces | cost | energy |\n"
        "                     resilience | data | qos | replication | slo\n"
        "  --cache-keys N     keyed data tier: keys per app (0 = legacy\n"
        "                     fixed-hit-probability caches, the default)\n"
        "  --cache-capacity N entries per cache instance (default 4096)\n"
        "  --cache-policy P   lru | lfu | slru (default lru)\n"
        "  --cache-popularity P  zipf | uniform | hotspot (default zipf)\n"
        "  --cache-zipf S     Zipf skew exponent (default 1.0)\n"
        "  --cache-hot-fraction F  hotspot: hot key fraction (default 0.1)\n"
        "  --cache-hot-mass M hotspot: mass on hot keys (default 0.9)\n"
        "  --cache-ttl DUR    entry time-to-live (0 = no expiry)\n"
        "  --cache-write P    through | invalidate (default through)\n"
        "  --cache-shift DUR  hotspot rotation period (0 = static)\n"
        "  --cache-vnodes N   consistent-hash vnodes per shard (default 64)\n"
        "  --replica-factor N replicate each keyed cache shard across N\n"
        "                     instances (leader + N-1 followers; needs\n"
        "                     --cache-keys; 0 = unreplicated, the default)\n"
        "  --replica-quorum W write quorum: acks a write needs before the\n"
        "                     handler unblocks (0 = majority of factor)\n"
        "  --replica-apply-lag DUR  follower apply lag per ring hop\n"
        "                     (default 1ms)\n"
        "  --replica-election-timeout DUR  leaderless window before a\n"
        "                     follower is promoted (default 50ms)\n"
        "  --replica-catch-up DUR  log replay a restarted replica needs\n"
        "                     before it is quorum-eligible (default 100ms)\n"
        "  --replica-read P   leader | nearest | ryw (read-your-writes;\n"
        "                     default leader)\n"
        "  --txn-keys N       2PC: write-tagged keyed stages touch N keys\n"
        "                     as one multi-partition transaction (0 = off,\n"
        "                     needs --replica-factor)\n"
        "  --txn-prepare-timeout DUR  coordinator deadline on the 2PC\n"
        "                     prepare phase (default 10ms)\n"
        "  --faults FILE      JSON fault schedule (see docs/RESILIENCE.md)\n"
        "  --fault SPEC       one fault window, repeatable:\n"
        "                     crash@t=2s,dur=1s,service=X,instance=0\n"
        "                     crash@t=2s,dur=1s,service=X,group=0,\n"
        "                       role=leader   (replicated tiers)\n"
        "                     errors@t=1s,dur=2s,service=X,rate=0.5\n"
        "                     slow@t=1s,dur=2s,server=0,factor=10\n"
        "                     partition@t=3s,dur=1s,a=0-1,b=2-4,loss=1\n"
        "  --qos              server-side admission control: bounded\n"
        "                     per-class queues with weighted dequeue\n"
        "                     (any --qos-* flag implies it)\n"
        "  --qos-weights U,B,E  WRR credits for user-facing, batch,\n"
        "                     best-effort (default 8,2,1)\n"
        "  --qos-queue N      per-class queue bound (0 = tier capacity)\n"
        "  --qos-rate R       token bucket: admitted req/s per instance\n"
        "                     (default 0 = unlimited)\n"
        "  --qos-burst N      token bucket burst (default 32)\n"
        "  --qos-shed-batch F shed batch above this backlog fraction\n"
        "                     (default 0.5)\n"
        "  --qos-shed-best F  shed best-effort above this fraction\n"
        "                     (default 0.25)\n"
        "  --qos-batch LIST   comma-separated query types in the batch\n"
        "                     class\n"
        "  --qos-best-effort LIST  query types in the best-effort class\n"
        "  --rpc-timeout DUR  per-attempt RPC timeout (e.g. 50ms; 0 = off)\n"
        "  --deadline DUR     end-to-end request deadline (0 = off)\n"
        "  --retries N        RPC retries after a failed attempt\n"
        "  --retry-budget R   retry tokens earned per request (0 = unlimited)\n"
        "  --breaker          per-edge circuit breaker (default thresholds)\n"
        "  --shed N           shed arrivals above queue length N\n"
        "  --slo-latency DUR  SLO: latency bound at --slo-quantile on\n"
        "                     the target series (any --slo-* or\n"
        "                     --timeseries-* flag enables telemetry\n"
        "                     sampling)\n"
        "  --slo-quantile Q   quantile the latency bound applies to,\n"
        "                     in (0, 1) (default 0.99)\n"
        "  --slo-window N     consecutive bad intervals before a\n"
        "                     violation trips (default 3)\n"
        "  --slo-error-rate R SLO: error-rate bound in [0, 1]\n"
        "  --slo-tier NAME    series under the SLO (default: the\n"
        "                     end-to-end stream)\n"
        "  --timeseries-interval DUR  telemetry sampling interval\n"
        "                     (default 100ms)\n"
        "  --timeseries-ring N  ring bound per series (default 4096)\n"
        "  --timeseries-out FILE  write the interval series (.csv gets\n"
        "                     CSV, anything else JSON)\n"
        "  --trace-out FILE   write collected spans as Chrome/Perfetto\n"
        "                     trace-event JSON (open in ui.perfetto.dev);\n"
        "                     with telemetry enabled, per-tier counter\n"
        "                     tracks ride along\n"
        "  --metrics-out FILE write the metrics-registry snapshot as JSON\n"
        "  --trace-capacity N span ring-buffer capacity (default "
            + std::to_string(trace::TraceStore::kDefaultCapacity) + ")\n"
        "  --list, --list-apps  list applications and exit\n"
        "  --list-gen-profiles  list topology-sampling profiles, exit\n"
        "\nOptions taking a value also accept --opt=value.\n";
}

bool
parse(int argc, char **argv, Options &opt)
{
    // Accept both "--opt value" and "--opt=value" by splitting on the
    // first '=' of every long option up-front.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    auto need = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            fatal(strCat("missing value for ", args[i]));
        return args[++i];
    };
    // Strict numeric parsing: the whole value must convert, so typos
    // like "--qps 3o0" die with a clear message instead of silently
    // truncating to garbage the way atof/atoi would.
    auto numDouble = [&](std::size_t &i) {
        const std::string &flag = args[i], &v = need(i);
        try {
            std::size_t consumed = 0;
            const double value = std::stod(v, &consumed);
            if (consumed != v.size())
                throw std::invalid_argument(v);
            return value;
        } catch (...) {
            fatal(strCat("bad number '", v, "' for ", flag));
        }
    };
    auto numU64 = [&](std::size_t &i) {
        const std::string &flag = args[i], &v = need(i);
        try {
            std::size_t consumed = 0;
            const unsigned long long value = std::stoull(v, &consumed);
            if (consumed != v.size() || v[0] == '-')
                throw std::invalid_argument(v);
            return static_cast<std::uint64_t>(value);
        } catch (...) {
            fatal(strCat("bad non-negative integer '", v, "' for ",
                         flag));
        }
    };
    auto numUnsigned = [&](std::size_t &i) {
        return static_cast<unsigned>(numU64(i));
    };
    auto durationVal = [&](std::size_t &i) {
        const std::string &flag = args[i], &v = need(i);
        Tick out = 0;
        if (!fault::parseDuration(v, out))
            fatal(strCat("bad duration '", v, "' for ", flag,
                         " (want e.g. 50ms, 2s, 800us)"));
        return out;
    };
    apps::Scenario &scn = opt.scn;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--app") {
            scn.app = need(i);
            opt.appFlag = true;
        } else if (a == "--generate")
            scn.genProfile = need(i);
        else if (a == "--gen-seed")
            scn.genSeed = numU64(i);
        else if (a == "--gen-depth")
            scn.genDepth = numUnsigned(i);
        else if (a == "--gen-width")
            scn.genWidth = numUnsigned(i);
        else if (a == "--gen-fanout")
            scn.genFanout = numDouble(i);
        else if (a == "--arrival")
            scn.arrival = need(i);
        else if (a == "--arrival-burst")
            scn.arrivalBurst = numDouble(i);
        else if (a == "--arrival-duty")
            scn.arrivalDuty = numDouble(i);
        else if (a == "--arrival-dwell")
            scn.arrivalDwell = durationVal(i);
        else if (a == "--arrival-period")
            scn.arrivalPeriod = durationVal(i);
        else if (a == "--arrival-low")
            scn.arrivalLow = numDouble(i);
        else if (a == "--arrival-flash-at")
            scn.arrivalFlashAt = durationVal(i);
        else if (a == "--arrival-flash-ramp")
            scn.arrivalFlashRamp = durationVal(i);
        else if (a == "--arrival-flash-mult")
            scn.arrivalFlashMult = numDouble(i);
        else if (a == "--arrival-flash-hold")
            scn.arrivalFlashHold = durationVal(i);
        else if (a == "--qps")
            scn.qps = numDouble(i);
        else if (a == "--duration")
            scn.durationSec = numDouble(i);
        else if (a == "--warmup")
            scn.warmupSec = numDouble(i);
        else if (a == "--servers")
            scn.servers = numUnsigned(i);
        else if (a == "--drones")
            scn.drones = numUnsigned(i);
        else if (a == "--core")
            scn.core = need(i);
        else if (a == "--freq")
            scn.freqMhz = numDouble(i);
        else if (a == "--fpga")
            scn.fpga = true;
        else if (a == "--lambda")
            scn.lambda = need(i);
        else if (a == "--slow-servers")
            scn.slowServers = numUnsigned(i);
        else if (a == "--slow-factor")
            scn.slowFactor = numDouble(i);
        else if (a == "--skew")
            scn.skew = numDouble(i);
        else if (a == "--users")
            scn.users = numU64(i);
        else if (a == "--seed")
            scn.seed = numU64(i);
        else if (a == "--shards")
            scn.shards = numUnsigned(i);
        else if (a == "--threads")
            scn.threads = numUnsigned(i);
        else if (a == "--placement")
            scn.placement = need(i);
        else if (a == "--pin") {
            const std::string &flag = args[i], &v = need(i);
            const std::size_t eq = v.find('=');
            data::PlacementPin pin;
            bool ok = eq != std::string::npos && eq > 0;
            if (ok) {
                pin.tier = v.substr(0, eq);
                const std::string num = v.substr(eq + 1);
                try {
                    std::size_t consumed = 0;
                    const unsigned long shard =
                        std::stoul(num, &consumed);
                    ok = !num.empty() && consumed == num.size() &&
                         num[0] != '-';
                    pin.shard = static_cast<unsigned>(shard);
                } catch (...) {
                    ok = false;
                }
            }
            if (!ok)
                fatal(strCat("bad pin '", v, "' for ", flag,
                             " (want TIER=SHARD, e.g. user-db=1)"));
            scn.pins.push_back(std::move(pin));
        } else if (a == "--config") {
            // Processed in flag order: flags before act as defaults
            // the file overrides, flags after override the file.
            const std::string &path = need(i);
            std::ifstream in(path);
            if (!in)
                fatal(strCat("cannot read scenario '", path, "'"));
            std::ostringstream text;
            text << in.rdbuf();
            std::string error;
            if (!apps::parseScenarioJson(text.str(), scn, error))
                fatal(strCat("bad scenario '", path, "': ", error));
        } else if (a == "--dump-config")
            opt.dumpConfig = true;
        else if (a == "--report")
            opt.report = need(i);
        else if (a == "--trace-out")
            opt.traceOut = need(i);
        else if (a == "--metrics-out")
            opt.metricsOut = need(i);
        else if (a == "--trace-capacity")
            scn.traceCapacity = static_cast<std::size_t>(numU64(i));
        else if (a == "--faults") {
            const std::string &path = need(i);
            std::ifstream in(path);
            if (!in)
                fatal(strCat("cannot read fault schedule '", path, "'"));
            std::ostringstream text;
            text << in.rdbuf();
            std::vector<fault::FaultSpec> specs;
            std::string error;
            if (!fault::parseFaultFile(text.str(), specs, error))
                fatal(strCat("bad fault schedule '", path, "': ", error));
            scn.faults.insert(scn.faults.end(), specs.begin(),
                              specs.end());
        } else if (a == "--fault") {
            const std::string &spec_text = need(i);
            fault::FaultSpec spec;
            std::string error;
            if (!fault::parseFaultFlag(spec_text, spec, error))
                fatal(strCat("bad --fault '", spec_text, "': ", error));
            scn.faults.push_back(std::move(spec));
        } else if (a == "--cache-keys")
            scn.dataKeys = numU64(i);
        else if (a == "--cache-capacity")
            scn.dataCapacity = numU64(i);
        else if (a == "--cache-policy")
            scn.dataPolicy = need(i);
        else if (a == "--cache-popularity")
            scn.dataPopularity = need(i);
        else if (a == "--cache-zipf")
            scn.dataZipfS = numDouble(i);
        else if (a == "--cache-hot-fraction")
            scn.dataHotFraction = numDouble(i);
        else if (a == "--cache-hot-mass")
            scn.dataHotMass = numDouble(i);
        else if (a == "--cache-ttl")
            scn.dataTtl = durationVal(i);
        else if (a == "--cache-write")
            scn.dataWrite = need(i);
        else if (a == "--cache-shift")
            scn.dataShiftPeriod = durationVal(i);
        else if (a == "--cache-vnodes")
            scn.dataVnodes = numUnsigned(i);
        else if (a == "--replica-factor")
            scn.replicaFactor = numUnsigned(i);
        else if (a == "--replica-quorum")
            scn.replicaQuorum = numUnsigned(i);
        else if (a == "--replica-apply-lag")
            scn.replicaApplyLag = durationVal(i);
        else if (a == "--replica-election-timeout")
            scn.replicaElectionTimeout = durationVal(i);
        else if (a == "--replica-catch-up")
            scn.replicaCatchUp = durationVal(i);
        else if (a == "--replica-read")
            scn.replicaRead = need(i);
        else if (a == "--txn-keys")
            scn.txnKeys = numUnsigned(i);
        else if (a == "--txn-prepare-timeout")
            scn.txnPrepareTimeout = durationVal(i);
        else if (a == "--qos")
            scn.qosEnabled = true;
        else if (a == "--qos-weights") {
            const std::string &flag = args[i], &v = need(i);
            if (!apps::parseQosWeights(v, scn.qosWeightUser,
                                       scn.qosWeightBatch,
                                       scn.qosWeightBest))
                fatal(strCat("bad weights '", v, "' for ", flag,
                             " (want three positive integers "
                             "\"user,batch,best\")"));
            scn.qosEnabled = true;
        } else if (a == "--qos-queue") {
            scn.qosQueue = numUnsigned(i);
            scn.qosEnabled = true;
        } else if (a == "--qos-rate") {
            scn.qosRate = numDouble(i);
            scn.qosEnabled = true;
        } else if (a == "--qos-burst") {
            scn.qosBurst = numDouble(i);
            scn.qosEnabled = true;
        } else if (a == "--qos-shed-batch") {
            scn.qosShedBatch = numDouble(i);
            scn.qosEnabled = true;
        } else if (a == "--qos-shed-best") {
            scn.qosShedBest = numDouble(i);
            scn.qosEnabled = true;
        } else if (a == "--qos-batch") {
            scn.qosBatch = need(i);
            scn.qosEnabled = true;
        } else if (a == "--qos-best-effort") {
            scn.qosBestEffort = need(i);
            scn.qosEnabled = true;
        } else if (a == "--slo-latency") {
            scn.sloLatency = durationVal(i);
            scn.obsEnabled = true;
        } else if (a == "--slo-quantile") {
            scn.sloQuantile = numDouble(i);
            scn.obsEnabled = true;
        } else if (a == "--slo-window") {
            scn.sloWindow = numUnsigned(i);
            scn.obsEnabled = true;
        } else if (a == "--slo-error-rate") {
            scn.sloErrorRate = numDouble(i);
            scn.obsEnabled = true;
        } else if (a == "--slo-tier") {
            scn.sloTier = need(i);
            scn.obsEnabled = true;
        } else if (a == "--timeseries-interval") {
            scn.obsInterval = durationVal(i);
            scn.obsEnabled = true;
        } else if (a == "--timeseries-ring") {
            scn.obsRing = numU64(i);
            scn.obsEnabled = true;
        } else if (a == "--timeseries-out") {
            opt.timeseriesOut = need(i);
            scn.obsEnabled = true;
        } else if (a == "--rpc-timeout")
            scn.rpcTimeout = durationVal(i);
        else if (a == "--deadline")
            scn.deadline = durationVal(i);
        else if (a == "--retries")
            scn.retries = numUnsigned(i);
        else if (a == "--retry-budget") {
            scn.retryBudget = numDouble(i);
            if (scn.retryBudget < 0.0)
                fatal("--retry-budget must be >= 0");
        } else if (a == "--breaker")
            scn.breaker = true;
        else if (a == "--shed")
            scn.shed = numUnsigned(i);
        else if (a == "--list" || a == "--list-apps")
            opt.list = true;
        else if (a == "--list-gen-profiles")
            opt.listGenProfiles = true;
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal(strCat("unknown option '", a, "' (try --help)"));
        }
    }

    bool report_ok = false;
    for (const char *kind : kReportKinds)
        report_ok = report_ok || opt.report == kind;
    if (!report_ok)
        fatal(strCat("unknown report kind '", opt.report,
                     "' (want summary, services, traces, cost, energy, "
                     "resilience, data, qos, replication or slo)"));
    if (scn.qps <= 0.0)
        fatal("--qps must be positive");
    if (scn.durationSec <= 0.0)
        fatal("--duration must be positive");
    if (scn.warmupSec < 0.0)
        fatal("--warmup must be non-negative");
    if (scn.servers == 0)
        fatal("--servers must be positive");
    if (scn.shards == 0)
        fatal("--shards must be positive");
    if (scn.threads == 0)
        fatal("--threads must be positive");
    if (scn.placement != "none" && scn.placement != "replicate" &&
        scn.placement != "partition")
        fatal(strCat("unknown --placement mode '", scn.placement,
                     "' (want none, replicate or partition)"));
    if (!scn.pins.empty() && scn.placement != "partition")
        fatal("--pin needs --placement partition");
    if (scn.placement == "partition") {
        // Same feature matrix the scenario-JSON parser enforces.
        if (!scn.faults.empty())
            fatal("--placement partition does not support faults");
        if (scn.replicaFactor >= 2)
            fatal("--placement partition does not support replication");
        if (scn.fpga)
            fatal("--placement partition does not support --fpga");
        if (!scn.lambda.empty())
            fatal("--placement partition does not support --lambda");
        if (scn.app.rfind("swarm-", 0) == 0)
            fatal(strCat("--placement partition does not support app '",
                         scn.app, "'"));
        for (const data::PlacementPin &pin : scn.pins)
            if (pin.shard >= scn.shards)
                fatal(strCat("placement pin '", pin.tier,
                             "' targets shard ", pin.shard,
                             " but only ", scn.shards,
                             " shards exist"));
        for (std::size_t pi = 0; pi < scn.pins.size(); ++pi)
            for (std::size_t pj = 0; pj < pi; ++pj)
                if (scn.pins[pi].tier == scn.pins[pj].tier)
                    fatal(strCat("duplicate placement pin for tier '",
                                 scn.pins[pi].tier, "'"));
    }
    if (scn.skew >= 100.0)
        fatal("--skew must be below 100");
    if (!scn.lambda.empty() && scn.lambda != "s3" && scn.lambda != "mem")
        fatal(strCat("unknown --lambda kind '", scn.lambda,
                     "' (want s3 or mem)"));
    cpu::CoreModel core_check;
    if (!apps::coreModelByName(scn.core, core_check))
        fatal(strCat("unknown core model '", scn.core, "'"));
    {
        // Same rules the scenario-JSON parser enforces; flags must not
        // be a loophole around them.
        data::CachePolicy pol;
        if (!data::cachePolicyByName(scn.dataPolicy, pol))
            fatal(strCat("unknown --cache-policy '", scn.dataPolicy,
                         "' (want lru, lfu or slru)"));
        data::Popularity pop;
        if (!data::popularityByName(scn.dataPopularity, pop))
            fatal(strCat("unknown --cache-popularity '",
                         scn.dataPopularity,
                         "' (want zipf, uniform or hotspot)"));
        data::WritePolicy wp;
        if (!data::writePolicyByName(scn.dataWrite, wp))
            fatal(strCat("unknown --cache-write '", scn.dataWrite,
                         "' (want through or invalidate)"));
        if (scn.dataKeys > 0 && scn.dataCapacity == 0)
            fatal("--cache-capacity must be positive");
        if (scn.dataZipfS < 0.0)
            fatal("--cache-zipf must be non-negative");
        if (scn.dataHotFraction <= 0.0 || scn.dataHotFraction > 1.0)
            fatal("--cache-hot-fraction must be in (0, 1]");
        if (scn.dataHotMass < 0.0 || scn.dataHotMass > 1.0)
            fatal("--cache-hot-mass must be in [0, 1]");
        if (scn.dataVnodes == 0)
            fatal("--cache-vnodes must be positive");
        replica::ReadPreference rp;
        if (!replica::readPreferenceByName(scn.replicaRead, rp))
            fatal(strCat("unknown --replica-read '", scn.replicaRead,
                         "' (want leader, nearest or ryw)"));
        if (scn.replicaFactor == 1)
            fatal("--replica-factor must be 0 (off) or >= 2");
        if (scn.replicaFactor >= 2 && scn.dataKeys == 0)
            fatal("--replica-factor needs --cache-keys");
        if (scn.replicaQuorum > scn.replicaFactor)
            fatal("--replica-quorum must be <= --replica-factor");
        if (scn.replicaFactor >= 2 && scn.replicaApplyLag == 0)
            fatal("--replica-apply-lag must be positive");
        if (scn.replicaFactor >= 2 && scn.replicaElectionTimeout == 0)
            fatal("--replica-election-timeout must be positive");
        if (scn.txnKeys == 1)
            fatal("--txn-keys must be 0 (off) or >= 2");
        if (scn.txnKeys >= 2 && scn.replicaFactor < 2)
            fatal("--txn-keys needs --replica-factor");
        if (scn.txnKeys >= 2 && scn.txnPrepareTimeout == 0)
            fatal("--txn-prepare-timeout must be positive");
        if (scn.qosRate < 0.0)
            fatal("--qos-rate must be >= 0");
        if (scn.qosBurst <= 0.0)
            fatal("--qos-burst must be positive");
        if (scn.qosShedBatch <= 0.0 || scn.qosShedBatch > 1.0)
            fatal("--qos-shed-batch must be in (0, 1]");
        if (scn.qosShedBest <= 0.0 || scn.qosShedBest > 1.0)
            fatal("--qos-shed-best must be in (0, 1]");
        if (scn.obsInterval == 0)
            fatal("--timeseries-interval must be positive");
        if (scn.obsRing == 0)
            fatal("--timeseries-ring must be positive");
        if (scn.sloQuantile <= 0.0 || scn.sloQuantile >= 1.0)
            fatal("--slo-quantile must be in (0, 1)");
        if (scn.sloWindow == 0)
            fatal("--slo-window must be positive");
        if (scn.sloErrorRate < 0.0 || scn.sloErrorRate > 1.0)
            fatal("--slo-error-rate must be in [0, 1]");
    }
    if (opt.appFlag && !scn.genProfile.empty())
        fatal("--generate conflicts with --app (the sampled topology "
              "replaces the hand-written app)");
    if (!scn.genProfile.empty() &&
        gen::genProfileByName(scn.genProfile) == nullptr)
        fatal(strCat("unknown gen profile '", scn.genProfile,
                     "' (try --list-gen-profiles)"));
    if (scn.genProfile.empty() &&
        (scn.genDepth != 0 || scn.genWidth != 0 || scn.genFanout != 0.0))
        fatal("--gen-depth/--gen-width/--gen-fanout need --generate");
    if (scn.genDepth > 8)
        fatal("--gen-depth must be <= 8");
    if (scn.genWidth > 8)
        fatal("--gen-width must be <= 8");
    if (scn.genFanout < 0.0 || scn.genFanout > 8.0)
        fatal("--gen-fanout must be in [0, 8]");
    workload::ArrivalKind arrival_kind;
    if (!workload::arrivalKindByName(scn.arrival, arrival_kind))
        fatal(strCat("unknown --arrival kind '", scn.arrival,
                     "' (want poisson, mmpp, diurnal or flash)"));
    if (scn.arrivalBurst < 1.0)
        fatal("--arrival-burst must be >= 1");
    if (scn.arrivalDuty <= 0.0 || scn.arrivalDuty >= 1.0)
        fatal("--arrival-duty must be in (0, 1)");
    if (scn.arrivalDwell == 0)
        fatal("--arrival-dwell must be positive");
    if (scn.arrivalPeriod == 0)
        fatal("--arrival-period must be positive");
    if (scn.arrivalLow <= 0.0 || scn.arrivalLow > 1.0)
        fatal("--arrival-low must be in (0, 1]");
    if (scn.arrivalFlashMult < 1.0)
        fatal("--arrival-flash-mult must be >= 1");
    if (scn.arrivalFlashRamp == 0)
        fatal("--arrival-flash-ramp must be positive");
    return true;
}

const char *
appFlagName(apps::AppId id)
{
    switch (id) {
    case apps::AppId::SocialNetwork: return "social-network";
    case apps::AppId::MediaService: return "media";
    case apps::AppId::Ecommerce: return "ecommerce";
    case apps::AppId::Banking: return "banking";
    case apps::AppId::SwarmCloud: return "swarm-cloud";
    case apps::AppId::SwarmEdge: return "swarm-edge";
    }
    return "";
}

void
listApps()
{
    std::cout << "End-to-end services (Table 1):\n";
    for (apps::AppId id : apps::allApps()) {
        const auto &info = apps::appInfo(id);
        std::cout << "  " << appFlagName(id) << ": " << info.name
                  << ", " << info.uniqueMicroservices
                  << " microservices, " << info.protocol << "\n";
    }
    std::cout << "Single-tier baselines: nginx, memcached, mongodb, "
                 "xapian, recommender\nMonolith: social-monolith\n";
}

void
listGenProfiles()
{
    std::cout << "Topology-sampling profiles (--generate):\n";
    for (const gen::GenProfile &p : gen::allGenProfiles())
        std::cout << "  " << p.name << ": " << p.summary << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return 0;
    if (opt.list) {
        listApps();
        return 0;
    }
    if (opt.listGenProfiles) {
        listGenProfiles();
        return 0;
    }
    if (opt.dumpConfig) {
        std::cout << apps::scenarioToJson(opt.scn);
        return 0;
    }
    const apps::Scenario &scn = opt.scn;

    const apps::WorldConfig config = apps::worldConfigFor(scn);
    const apps::Deployment deployment =
        scn.placement == "partition" ? apps::Deployment::Partition
                                     : apps::Deployment::Replicate;
    apps::WorldHandle sharded(config, scn.shards, scn.threads,
                              deployment);
    const unsigned nshards = sharded.shards();

    serverless::LambdaConfig lambda_cfg;
    if (!scn.lambda.empty())
        lambda_cfg.stateStore = scn.lambda == "s3"
                                    ? serverless::StateStoreKind::S3
                                    : serverless::StateStoreKind::
                                          RemoteMemory;

    // Build and configure every shard identically (modulo its seed).
    // Per-shard application order matches the classic single-world
    // driver step for step, so one shard reproduces it bit-for-bit.
    std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
    std::vector<std::unique_ptr<cpu::EnergyMeter>> meters;
    // One pipeline per shard, sampling its own replica. Declared after
    // the WorldHandle so each pipeline dies first, while the app it
    // taps is still alive.
    std::vector<std::unique_ptr<obs::Pipeline>> pipelines;
    for (unsigned s = 0; s < nshards; ++s) {
        apps::World &world = sharded.shard(s);
        apps::buildScenarioApp(world, scn);
        service::App &app = *world.app;

        if (!scn.lambda.empty())
            serverless::LambdaPlatform::applyToApp(app, lambda_cfg,
                                                   world.cluster);
        if (scn.freqMhz > 0.0)
            world.cluster.setAllFrequenciesMhz(scn.freqMhz);
        if (scn.slowServers > 0)
            world.cluster.injectSlowServers(scn.slowServers,
                                            scn.slowFactor);

        // Client-side resilience: apply the same policy to the callers
        // of every tier. Left untouched (all flags at defaults) the RPC
        // path is the legacy one and digests match older builds
        // bit-for-bit.
        if (scn.rpcTimeout || scn.retries || scn.breaker || scn.shed) {
            for (service::Microservice *svc : app.services()) {
                rpc::ResiliencePolicy &pol = svc->mutableDef().resilience;
                pol.timeout = scn.rpcTimeout;
                if (scn.retries) {
                    pol.retry.maxAttempts = scn.retries + 1;
                    pol.retry.budgetRatio = scn.retryBudget;
                }
                pol.breaker.enabled = scn.breaker;
                pol.shedQueueLength = scn.shed;
            }
        }
        if (scn.deadline)
            app.setRequestDeadline(scn.deadline);

        if (!scn.faults.empty()) {
            auto injector = std::make_unique<fault::FaultInjector>(
                app, apps::WorldHandle::shardSeed(scn.seed, s));
            injector->addAll(scn.faults);
            injector->arm();
            injectors.push_back(std::move(injector));
        }

        meters.push_back(std::make_unique<cpu::EnergyMeter>(
            world.ctx, world.cluster, cpu::PowerModel::xeon()));
        if (opt.report == "energy")
            meters.back()->start();

        if (auto pipe = apps::attachObservability(world, scn))
            pipelines.push_back(std::move(pipe));
    }
    if (!injectors.empty()) {
        // Every shard arms the same schedule; print it once.
        std::cout << "armed fault schedule:\n";
        for (const fault::FaultSpec &spec : injectors.front()->schedule())
            std::cout << "  " << spec.describe() << "\n";
    }

    // Partitioned deployment: pin every tier to its home shard now
    // that each shard's (identical) graph exists. Dies on a pin naming
    // an unknown tier — the one placement error flag validation alone
    // cannot catch.
    if (deployment == apps::Deployment::Partition)
        sharded.enablePartition(scn.pins);

    service::App &app = *sharded.shard(0).app;
    const workload::UserPopulation users =
        scn.skew >= 0.0
            ? workload::UserPopulation::skewed(scn.users, scn.skew)
            : workload::UserPopulation::uniform(scn.users);
    apps::LoadSpec load;
    load.qps = scn.qps;
    load.warmup = secToTicks(scn.warmupSec);
    load.measure = secToTicks(scn.durationSec);
    load.users = users;
    load.seed = scn.seed + 1;
    load.arrival = apps::arrivalConfigFor(scn);
    const auto r = apps::runWorld(sharded, load);

    // Cross-shard sums for the summary/report sections.
    std::uint64_t failed_total = 0;
    for (unsigned s = 0; s < nshards; ++s)
        failed_total += sharded.shard(s).app->failedRequests();

    // ---- summary ---------------------------------------------------------
    if (!scn.genProfile.empty()) {
        // Re-sampling is cheap and deterministic; every shard built
        // this same shape.
        gen::GenOverrides ov;
        ov.depth = scn.genDepth;
        ov.width = scn.genWidth;
        ov.fanout = scn.genFanout;
        std::cout << gen::topologySummary(gen::sampleTopology(
                         *gen::genProfileByName(scn.genProfile),
                         scn.genSeed, ov))
                  << "\n";
    }
    std::cout << (scn.genProfile.empty() ? scn.app
                                         : "gen:" + scn.genProfile)
              << " @ " << scn.qps << " qps on " << scn.servers
              << "x " << config.coreModel.name;
    if (nshards > 1)
        std::cout << " (" << nshards << " shards, "
                  << (deployment == apps::Deployment::Partition
                          ? "partitioned, "
                          : "")
                  << sharded.engine().threads() << " threads)";
    std::cout << "\n";
    TextTable summary({"metric", "value"});
    summary.add("completed", r.completed);
    summary.add("dropped", r.dropped);
    // Only present when something actually failed, so the default
    // (fault-free) output stays byte-identical.
    if (failed_total > 0)
        summary.add("failed", failed_total);
    summary.add("p50", fmtMs(r.p50));
    summary.add("p95", fmtMs(r.p95));
    summary.add("p99", fmtMs(r.p99));
    summary.add("mean", fmtDouble(r.meanMs, 3) + "ms");
    summary.add("goodput (QoS " +
                    fmtDouble(ticksToMs(app.config().qosLatency), 0) +
                    "ms)",
                fmtDouble(r.goodputQps, 1) + " qps");
    summary.add("network-processing share",
                fmtDouble(100.0 * r.networkShare, 1) + "%");
    summary.add("cluster CPU utilization",
                fmtDouble(100.0 * r.meanUtilization, 2) + "%");
    summary.add("events simulated", sharded.engine().eventsExecuted());
    {
        // Order-sensitive fingerprint of the executed event sequence;
        // equal seeds must reproduce it bit-for-bit (at any --threads).
        std::ostringstream digest;
        digest << std::hex << std::setw(16) << std::setfill('0')
               << sharded.engine().executionDigest();
        summary.add("execution digest", digest.str());
    }
    summary.print(std::cout);

    // ---- per-query-type latency ----------------------------------------
    if (app.queryTypes().size() > 1) {
        TextTable q({"query type", "count", "p50(ms)", "p99(ms)"});
        for (unsigned i = 0; i < app.queryTypes().size(); ++i) {
            Histogram h;
            for (unsigned s = 0; s < nshards; ++s)
                h.merge(sharded.shard(s).app->endToEndLatencyFor(i));
            if (h.count() == 0)
                continue;
            q.add(app.queryTypes()[i].name, h.count(),
                  fmtDouble(ticksToMs(h.p50()), 2),
                  fmtDouble(ticksToMs(h.p99()), 2));
        }
        printBanner(std::cout, "query types");
        q.print(std::cout);
    }

    // ---- optional report sections ---------------------------------------
    // Trace-derived sections read shard 0 (each shard records its own
    // spans; the shards are statistical replicas).
    if (nshards > 1 &&
        (opt.report == "services" || opt.report == "traces" ||
         opt.report == "slo" || !opt.traceOut.empty() ||
         !opt.metricsOut.empty() || !opt.timeseriesOut.empty()))
        std::cout << "note: trace/metrics sections cover shard 0 of "
                  << nshards << "\n";
    if (opt.report == "services" || opt.report == "traces") {
        trace::TraceAnalysis ta(app.traceStore());
        printBanner(std::cout, "per-service (from traces)");
        TextTable t({"service", "spans", "mean(us)", "p99(ms)", "net%",
                     "app%", "queue%"});
        for (const auto &s : ta.perService()) {
            t.add(s.service, s.spanCount, fmtDouble(s.meanLatencyUs, 0),
                  fmtDouble(ticksToMs(s.p99LatencyNs), 2),
                  fmtDouble(100 * s.networkShare, 0),
                  fmtDouble(100 * s.appShare, 0),
                  fmtDouble(100 * s.queueShare, 0));
        }
        t.print(std::cout);
    }
    if (opt.report == "traces") {
        trace::TraceAnalysis ta(app.traceStore());
        printBanner(std::cout, "critical path (mean us/request)");
        TextTable cp({"service", "exclusive", "queue", "app", "network",
                      "downstream"});
        for (const auto &e : ta.criticalPathBreakdown())
            cp.add(e.service, fmtDouble(e.exclusiveNs / 1000.0, 0),
                   fmtDouble(e.queueNs / 1000.0, 0),
                   fmtDouble(e.appNs / 1000.0, 0),
                   fmtDouble(e.networkNs / 1000.0, 0),
                   fmtDouble(e.downstreamNs / 1000.0, 0));
        cp.print(std::cout);
        const auto &store = app.traceStore();
        if (store.evicted() > 0)
            std::cout << "note: " << store.evicted()
                      << " oldest spans evicted from the ring "
                         "(capacity " << store.capacity()
                      << "; raise with --trace-capacity)\n";
    }
    if (opt.report == "cost") {
        const Tick window = secToTicks(600.0);
        const serverless::Ec2CostModel ec2;
        printBanner(std::cout, "cost (per 10 minutes)");
        if (scn.lambda.empty()) {
            std::cout << "EC2 reserved (" << scn.servers * nshards
                      << " servers as m5.12xlarge): $"
                      << fmtDouble(
                             ec2.cost(scn.servers * nshards, window), 2)
                      << "\n";
        } else {
            const serverless::LambdaCostModel lc;
            std::uint64_t inv = 0;
            Tick billed = 0;
            for (unsigned s = 0; s < nshards; ++s) {
                service::App &a = *sharded.shard(s).app;
                inv += serverless::LambdaPlatform::invocations(
                    a, lambda_cfg.storeName);
                billed += serverless::LambdaPlatform::billedDuration(
                    a, lc, lambda_cfg.storeName);
            }
            const double scale = 600.0 / scn.durationSec;
            std::cout << "Lambda (" << scn.lambda << " state): $"
                      << fmtDouble(lc.cost(inv, billed) * scale, 2)
                      << "  (" << inv << " invocations measured)\n";
        }
    }
    if (opt.report == "resilience") {
        printBanner(std::cout, "resilience / fault outcomes");
        TextTable t({"counter", "value"});
        static const char *const kCounters[] = {
            "app.requests_failed",
            "rpc.errors",
            "rpc.timeouts",
            "rpc.retries",
            "rpc.retry_budget_exhausted",
            "rpc.breaker_fast_fails",
            "rpc.deadline_exceeded",
            "rpc.shed",
            "rpc.pool.acquire_timeouts",
            "rpc.crashed_in_flight",
            "rpc.abandoned_arrivals",
            "fault.requests_failed",
            "fault.crashes",
            "fault.messages_dropped",
        };
        for (const char *name : kCounters) {
            std::uint64_t total = 0;
            for (unsigned s = 0; s < nshards; ++s)
                total += sharded.shard(s)
                             .app->metrics()
                             .counter(name)
                             .value();
            t.add(name, total);
        }
        {
            std::uint64_t net_dropped = 0;
            for (unsigned s = 0; s < nshards; ++s)
                net_dropped +=
                    sharded.shard(s).network->messagesDropped();
            t.add("net.messages_dropped", net_dropped);
        }
        t.print(std::cout);
        TextTable e({"service", "served", "failed", "dropped"});
        for (unsigned i = 0; i < app.services().size(); ++i) {
            std::uint64_t served = 0, failed = 0, dropped = 0;
            for (unsigned s = 0; s < nshards; ++s) {
                const service::Microservice *svc =
                    sharded.shard(s).app->services()[i];
                for (const auto &inst : svc->instances()) {
                    served += inst->served();
                    failed += inst->failed();
                    dropped += inst->dropped();
                }
            }
            e.add(app.services()[i]->name(), served, failed, dropped);
        }
        printBanner(std::cout, "per-service outcomes");
        e.print(std::cout);
    }
    if (opt.report == "qos") {
        printBanner(std::cout, "admission control / qos classes");
        if (!scn.qosEnabled) {
            std::cout << "admission control disabled (--qos): tiers "
                         "use the legacy single-FIFO queue\n";
        } else {
            TextTable t({"class", "admitted", "served", "shed",
                         "throttled", "overflow"});
            for (unsigned c = 0; c < service::kQosClassCount; ++c) {
                const char *cls = service::qosClassName(
                    static_cast<service::QosClass>(c));
                auto sum = [&](const char *what) {
                    std::uint64_t total = 0;
                    for (unsigned s = 0; s < nshards; ++s)
                        total += sharded.shard(s)
                                     .app->metrics()
                                     .counter(strCat("admission.",
                                                     what, ".", cls))
                                     .value();
                    return total;
                };
                t.add(cls, sum("admitted"), sum("served"),
                      sum("shed"), sum("throttled"), sum("overflow"));
            }
            t.print(std::cout);
        }
    }
    if (opt.report == "slo") {
        printBanner(std::cout, "slo / telemetry");
        if (pipelines.empty()) {
            std::cout << "observability disabled: pass an --slo-* or "
                         "--timeseries-* flag (or a scenario slo: "
                         "block) to sample telemetry\n";
        } else {
            obs::Pipeline &pipe = *pipelines.front();
            const obs::SloConfig &sc = pipe.config().slo;
            TextTable cfg({"setting", "value"});
            cfg.add("target series", pipe.slo().targetSeries());
            cfg.add("interval",
                    fmtDouble(ticksToMs(pipe.config().interval), 0) +
                        "ms");
            cfg.add("intervals sampled",
                    pipe.store().intervalsSampled());
            cfg.add("latency objective",
                    sc.latency
                        ? strCat(fmtDouble(ticksToMs(sc.latency), 2),
                                 "ms at quantile ",
                                 fmtDouble(sc.quantile, 3))
                        : std::string("off"));
            cfg.add("error-rate objective",
                    sc.errorRate > 0.0 ? fmtDouble(sc.errorRate, 3)
                                       : std::string("off"));
            cfg.add("window (intervals)", sc.window);
            cfg.print(std::cout);

            const auto &viol = pipe.slo().violations();
            if (viol.empty()) {
                std::cout << (sc.armed()
                                  ? "no SLO violations\n"
                                  : "no objectives armed (pure "
                                    "telemetry; use --slo-latency / "
                                    "--slo-error-rate)\n");
            } else {
                auto fmtVal = [](const obs::SloViolation &x, double v) {
                    return x.kind ==
                                   obs::SloViolation::Kind::Latency
                               ? fmtDouble(v / 1e6, 2) + "ms"
                               : fmtDouble(v, 3);
                };
                printBanner(std::cout, "slo violations");
                TextTable v({"kind", "series", "onset(s)", "trip(s)",
                             "value", "bound"});
                for (const auto &x : viol)
                    v.add(obs::sloViolationKindName(x.kind), x.series,
                          fmtDouble(ticksToSec(x.onset), 2),
                          fmtDouble(ticksToSec(x.time), 2),
                          fmtVal(x, x.value), fmtVal(x, x.threshold));
                v.print(std::cout);

                // Walk the tier graph backwards from the first trip:
                // which tier degraded first, and how long before the
                // user-visible violation?
                trace::TraceAnalysis ta(app.traceStore());
                obs::CulpritLocalizer loc(pipe.store());
                const auto ranking = loc.localize(
                    pipe.slo().firstViolationTime(),
                    obs::CulpritLocalizer::tierDepths(app),
                    ta.criticalPathBreakdown());
                printBanner(std::cout, "culprit ranking");
                if (ranking.empty())
                    std::cout << "no tier shows a sustained "
                                 "pre-violation degradation\n";
                else
                    std::cout << obs::culpritTable(ranking);
            }
        }
    }
    if (opt.report == "data") {
        printBanner(std::cout, "keyed data tier");
        if (scn.dataKeys == 0) {
            std::cout << "keyed data tier disabled (--cache-keys 0): "
                         "caches use fixed hit probabilities\n";
        } else {
            std::cout << scn.dataKeys << " keys, " << scn.dataPopularity
                      << " popularity";
            if (scn.dataPopularity == "zipf")
                std::cout << " (s=" << fmtDouble(scn.dataZipfS, 2)
                          << ")";
            std::cout << ", " << scn.dataCapacity
                      << " entries/instance, " << scn.dataPolicy << "/"
                      << scn.dataWrite << "\n";
            TextTable t({"tier", "lookups", "hit%", "evict", "expire",
                         "inval", "writes", "cold"});
            for (unsigned i = 0; i < app.services().size(); ++i) {
                // Sum the emergent per-instance stats across shards;
                // the tier counter adds misses on downed shards.
                data::CacheStats total;
                bool keyed = false;
                std::uint64_t unreachable = 0;
                for (unsigned s = 0; s < nshards; ++s) {
                    service::Microservice *svc =
                        sharded.shard(s).app->services()[i];
                    if (!svc->hasCacheModels())
                        continue;
                    keyed = true;
                    const data::CacheStats st = svc->dataStats();
                    total.hits += st.hits;
                    total.misses += st.misses;
                    total.evictions += st.evictions;
                    total.expirations += st.expirations;
                    total.invalidations += st.invalidations;
                    total.writes += st.writes;
                    total.coldRestarts += st.coldRestarts;
                    unreachable +=
                        sharded.shard(s)
                            .app->metrics()
                            .counter("data." + svc->name() + ".misses")
                            .value() -
                        st.misses;
                }
                if (!keyed)
                    continue;
                const std::uint64_t misses =
                    total.misses + unreachable;
                const std::uint64_t lookups = total.hits + misses;
                t.add(app.services()[i]->name(), lookups,
                      fmtDouble(lookups ? 100.0 * total.hits / lookups
                                        : 0.0,
                                2),
                      total.evictions, total.expirations,
                      total.invalidations, total.writes,
                      total.coldRestarts);
            }
            t.print(std::cout);
        }
    }
    if (opt.report == "replication") {
        printBanner(std::cout, "replicated keyed-data tier");
        if (scn.replicaFactor < 2) {
            std::cout << "replication disabled (--replica-factor): "
                         "keyed shards are single copies\n";
        } else {
            std::cout << "factor " << scn.replicaFactor << ", quorum "
                      << (scn.replicaQuorum
                              ? scn.replicaQuorum
                              : scn.replicaFactor / 2 + 1)
                      << ", read preference " << scn.replicaRead;
            if (scn.txnKeys >= 2)
                std::cout << ", 2PC over " << scn.txnKeys << " keys";
            std::cout << "\n";
            auto sum = [&](const std::string &name) {
                std::uint64_t v = 0;
                for (unsigned s = 0; s < nshards; ++s)
                    v += sharded.shard(s)
                             .app->metrics()
                             .counter(name)
                             .value();
                return v;
            };
            TextTable t({"tier", "elections", "failovers", "trims",
                         "lost", "stale", "redirect", "quorum-", "stale-"});
            for (unsigned i = 0; i < app.services().size(); ++i) {
                const service::Microservice *svc = app.services()[i];
                if (!svc->replicated())
                    continue;
                const std::string p = "replica." + svc->name() + ".";
                t.add(svc->name(), sum(p + "elections"),
                      sum(p + "failovers"), sum(p + "log_trims"),
                      sum(p + "store_losses"), sum(p + "stale_reads"),
                      sum(p + "ryw_redirects"), sum(p + "quorum_lost"),
                      sum(p + "stale_rejects"));
            }
            t.print(std::cout);
            std::cout << "typed rejects settled by callers: quorum_lost="
                      << sum("rpc.quorum_lost")
                      << " stale=" << sum("rpc.stale_rejects") << "\n";
            if (scn.txnKeys >= 2)
                std::cout << "transactions: started="
                          << sum("rpc.txn_started")
                          << " committed=" << sum("rpc.txn_commits")
                          << " aborted=" << sum("rpc.txn_aborts")
                          << "\n";
        }
    }
    if (opt.report == "energy") {
        double joules = 0.0, watts = 0.0;
        for (const auto &meter : meters) {
            joules += meter->totalJoules();
            watts += meter->averageWatts();
        }
        printBanner(std::cout, "energy");
        std::cout << "cluster average power: " << fmtDouble(watts, 0)
                  << " W\n"
                  << "energy per completed request: "
                  << fmtDouble(joules /
                                   std::max<double>(1.0, r.completed),
                               2)
                  << " J\n";
    }

    // ---- file exports ---------------------------------------------------
    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out)
            fatal(strCat("cannot open '", opt.traceOut, "' for writing"));
        // With telemetry on, the span timeline gains per-tier counter
        // tracks (latency quantiles, load, rates) from shard 0.
        const std::string counters =
            pipelines.empty() ? std::string()
                              : obs::perfettoCounterEvents(
                                    pipelines.front()->store());
        trace::exportPerfettoJson(app.traceStore(), out, 0, counters);
        std::cout << "wrote " << app.traceStore().size() << " spans to "
                  << opt.traceOut << " (open in ui.perfetto.dev)\n";
    }
    if (!opt.timeseriesOut.empty()) {
        if (pipelines.empty()) {
            // Possible when a --config after the flag disables the
            // slo block; an empty export would just mislead.
            std::cout << "note: telemetry disabled, skipping "
                      << opt.timeseriesOut << "\n";
        } else {
            std::ofstream out(opt.timeseriesOut);
            if (!out)
                fatal(strCat("cannot open '", opt.timeseriesOut,
                             "' for writing"));
            const obs::TimeSeriesStore &store =
                pipelines.front()->store();
            const bool csv =
                opt.timeseriesOut.size() >= 4 &&
                opt.timeseriesOut.compare(opt.timeseriesOut.size() - 4,
                                          4, ".csv") == 0;
            if (csv)
                obs::writeTimeSeriesCsv(store, out);
            else
                obs::writeTimeSeriesJson(store, out);
            std::cout << "wrote " << store.intervalsSampled()
                      << " sampled intervals to " << opt.timeseriesOut
                      << (csv ? " (CSV)" : " (JSON)") << "\n";
        }
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out)
            fatal(strCat("cannot open '", opt.metricsOut,
                         "' for writing"));
        app.metrics().writeJson(out);
        std::cout << "wrote metrics snapshot to " << opt.metricsOut
                  << "\n";
    }
    return 0;
}
