/**
 * @file
 * uqsim_run: command-line driver over the whole suite.
 *
 * Run any end-to-end application under any platform/protocol/fault
 * configuration without writing C++:
 *
 *   uqsim_run --app social-network --qps 300 --duration 10
 *   uqsim_run --app ecommerce --core thunderx --freq 1800 --report services
 *   uqsim_run --app social-network --fpga --report traces
 *   uqsim_run --app banking --lambda s3 --report cost
 *   uqsim_run --app swarm-edge --qps 4 --drones 24
 *   uqsim_run --app social-network --slow-servers 2 --skew 90
 *   uqsim_run --list
 *
 * Prints a latency/goodput summary plus the requested report section.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/catalog.hh"
#include "apps/single_tier.hh"
#include "apps/social_network.hh"
#include "apps/swarm.hh"
#include "core/logging.hh"
#include "core/table.hh"
#include "cpu/power.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "serverless/platform.hh"
#include "trace/analysis.hh"
#include "trace/export.hh"
#include "workload/load_sweep.hh"

using namespace uqsim;

namespace {

struct Options
{
    std::string app = "social-network";
    double qps = 300.0;
    double durationSec = 10.0;
    double warmupSec = 2.0;
    unsigned servers = 5;
    unsigned drones = 24;
    std::string core = "xeon";
    double freqMhz = 0.0;
    bool fpga = false;
    std::string lambda;          // "", "s3", "mem"
    unsigned slowServers = 0;
    double slowFactor = 40.0;
    double skew = -1.0;          // <0: uniform users
    std::uint64_t users = 1000;
    std::uint64_t seed = 42;
    std::string report = "summary"; // see kReportKinds
    std::string traceOut;           // Perfetto JSON file ("" = none)
    std::string metricsOut;         // metrics snapshot JSON ("" = none)
    std::size_t traceCapacity = trace::TraceStore::kDefaultCapacity;
    bool list = false;

    // -- Fault injection & client-side resilience -------------------
    std::vector<fault::FaultSpec> faults;
    Tick rpcTimeout = 0;      // per-attempt timeout (0 = none)
    Tick deadline = 0;        // end-to-end deadline (0 = none)
    unsigned retries = 0;     // extra attempts beyond the first
    double retryBudget = 0.0; // budget tokens per request (0 = unlimited)
    bool breaker = false;     // circuit breaker with defaults
    unsigned shed = 0;        // shed above this queue length (0 = off)
};

const char *const kReportKinds[] = {"summary", "services", "traces",
                                    "cost", "energy", "resilience"};

void
usage()
{
    std::cout <<
        "uqsim_run - drive a DeathStarBench model from the CLI\n\n"
        "  --app NAME         social-network | media | ecommerce | banking |\n"
        "                     swarm-cloud | swarm-edge | social-monolith |\n"
        "                     nginx | memcached | mongodb | xapian | recommender\n"
        "  --qps N            offered load (default 300)\n"
        "  --duration SEC     measured window (default 10)\n"
        "  --warmup SEC       warmup window (default 2)\n"
        "  --servers N        worker servers (default 5)\n"
        "  --drones N         swarm size (default 24)\n"
        "  --core MODEL       xeon | xeon18 | thunderx (default xeon)\n"
        "  --freq MHZ         RAPL frequency cap for all servers\n"
        "  --fpga             enable the TCP offload\n"
        "  --lambda KIND      serverless execution: s3 | mem\n"
        "  --slow-servers N   inject N slow servers\n"
        "  --slow-factor X    slowdown multiplier (default 40)\n"
        "  --skew PCT         user skew 0-99 (default: uniform)\n"
        "  --users N          user population (default 1000)\n"
        "  --seed N           world seed (default 42)\n"
        "  --report KIND      summary | services | traces | cost | energy |\n"
        "                     resilience\n"
        "  --faults FILE      JSON fault schedule (see docs/RESILIENCE.md)\n"
        "  --fault SPEC       one fault window, repeatable:\n"
        "                     crash@t=2s,dur=1s,service=X,instance=0\n"
        "                     errors@t=1s,dur=2s,service=X,rate=0.5\n"
        "                     slow@t=1s,dur=2s,server=0,factor=10\n"
        "                     partition@t=3s,dur=1s,a=0-1,b=2-4,loss=1\n"
        "  --rpc-timeout DUR  per-attempt RPC timeout (e.g. 50ms; 0 = off)\n"
        "  --deadline DUR     end-to-end request deadline (0 = off)\n"
        "  --retries N        RPC retries after a failed attempt\n"
        "  --retry-budget R   retry tokens earned per request (0 = unlimited)\n"
        "  --breaker          per-edge circuit breaker (default thresholds)\n"
        "  --shed N           shed arrivals above queue length N\n"
        "  --trace-out FILE   write collected spans as Chrome/Perfetto\n"
        "                     trace-event JSON (open in ui.perfetto.dev)\n"
        "  --metrics-out FILE write the metrics-registry snapshot as JSON\n"
        "  --trace-capacity N span ring-buffer capacity (default "
            + std::to_string(trace::TraceStore::kDefaultCapacity) + ")\n"
        "  --list             list applications and exit\n"
        "\nOptions taking a value also accept --opt=value.\n";
}

bool
parse(int argc, char **argv, Options &opt)
{
    // Accept both "--opt value" and "--opt=value" by splitting on the
    // first '=' of every long option up-front.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    auto need = [&](std::size_t &i) -> const std::string & {
        if (i + 1 >= args.size())
            fatal(strCat("missing value for ", args[i]));
        return args[++i];
    };
    // Strict numeric parsing: the whole value must convert, so typos
    // like "--qps 3o0" die with a clear message instead of silently
    // truncating to garbage the way atof/atoi would.
    auto numDouble = [&](std::size_t &i) {
        const std::string &flag = args[i], &v = need(i);
        try {
            std::size_t consumed = 0;
            const double value = std::stod(v, &consumed);
            if (consumed != v.size())
                throw std::invalid_argument(v);
            return value;
        } catch (...) {
            fatal(strCat("bad number '", v, "' for ", flag));
        }
    };
    auto numU64 = [&](std::size_t &i) {
        const std::string &flag = args[i], &v = need(i);
        try {
            std::size_t consumed = 0;
            const unsigned long long value = std::stoull(v, &consumed);
            if (consumed != v.size() || v[0] == '-')
                throw std::invalid_argument(v);
            return static_cast<std::uint64_t>(value);
        } catch (...) {
            fatal(strCat("bad non-negative integer '", v, "' for ",
                         flag));
        }
    };
    auto numUnsigned = [&](std::size_t &i) {
        return static_cast<unsigned>(numU64(i));
    };
    auto durationVal = [&](std::size_t &i) {
        const std::string &flag = args[i], &v = need(i);
        Tick out = 0;
        if (!fault::parseDuration(v, out))
            fatal(strCat("bad duration '", v, "' for ", flag,
                         " (want e.g. 50ms, 2s, 800us)"));
        return out;
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--app")
            opt.app = need(i);
        else if (a == "--qps")
            opt.qps = numDouble(i);
        else if (a == "--duration")
            opt.durationSec = numDouble(i);
        else if (a == "--warmup")
            opt.warmupSec = numDouble(i);
        else if (a == "--servers")
            opt.servers = numUnsigned(i);
        else if (a == "--drones")
            opt.drones = numUnsigned(i);
        else if (a == "--core")
            opt.core = need(i);
        else if (a == "--freq")
            opt.freqMhz = numDouble(i);
        else if (a == "--fpga")
            opt.fpga = true;
        else if (a == "--lambda")
            opt.lambda = need(i);
        else if (a == "--slow-servers")
            opt.slowServers = numUnsigned(i);
        else if (a == "--slow-factor")
            opt.slowFactor = numDouble(i);
        else if (a == "--skew")
            opt.skew = numDouble(i);
        else if (a == "--users")
            opt.users = numU64(i);
        else if (a == "--seed")
            opt.seed = numU64(i);
        else if (a == "--report")
            opt.report = need(i);
        else if (a == "--trace-out")
            opt.traceOut = need(i);
        else if (a == "--metrics-out")
            opt.metricsOut = need(i);
        else if (a == "--trace-capacity")
            opt.traceCapacity = static_cast<std::size_t>(numU64(i));
        else if (a == "--faults") {
            const std::string &path = need(i);
            std::ifstream in(path);
            if (!in)
                fatal(strCat("cannot read fault schedule '", path, "'"));
            std::ostringstream text;
            text << in.rdbuf();
            std::vector<fault::FaultSpec> specs;
            std::string error;
            if (!fault::parseFaultFile(text.str(), specs, error))
                fatal(strCat("bad fault schedule '", path, "': ", error));
            opt.faults.insert(opt.faults.end(), specs.begin(),
                              specs.end());
        } else if (a == "--fault") {
            const std::string &spec_text = need(i);
            fault::FaultSpec spec;
            std::string error;
            if (!fault::parseFaultFlag(spec_text, spec, error))
                fatal(strCat("bad --fault '", spec_text, "': ", error));
            opt.faults.push_back(std::move(spec));
        } else if (a == "--rpc-timeout")
            opt.rpcTimeout = durationVal(i);
        else if (a == "--deadline")
            opt.deadline = durationVal(i);
        else if (a == "--retries")
            opt.retries = numUnsigned(i);
        else if (a == "--retry-budget") {
            opt.retryBudget = numDouble(i);
            if (opt.retryBudget < 0.0)
                fatal("--retry-budget must be >= 0");
        } else if (a == "--breaker")
            opt.breaker = true;
        else if (a == "--shed")
            opt.shed = numUnsigned(i);
        else if (a == "--list")
            opt.list = true;
        else if (a == "--help" || a == "-h") {
            usage();
            return false;
        } else {
            fatal(strCat("unknown option '", a, "' (try --help)"));
        }
    }

    bool report_ok = false;
    for (const char *kind : kReportKinds)
        report_ok = report_ok || opt.report == kind;
    if (!report_ok)
        fatal(strCat("unknown report kind '", opt.report,
                     "' (want summary, services, traces, cost, energy "
                     "or resilience)"));
    if (opt.qps <= 0.0)
        fatal("--qps must be positive");
    if (opt.durationSec <= 0.0)
        fatal("--duration must be positive");
    if (opt.warmupSec < 0.0)
        fatal("--warmup must be non-negative");
    if (opt.servers == 0)
        fatal("--servers must be positive");
    if (opt.skew >= 100.0)
        fatal("--skew must be below 100");
    if (!opt.lambda.empty() && opt.lambda != "s3" && opt.lambda != "mem")
        fatal(strCat("unknown --lambda kind '", opt.lambda,
                     "' (want s3 or mem)"));
    return true;
}

cpu::CoreModel
coreModel(const std::string &name)
{
    if (name == "xeon")
        return cpu::CoreModel::xeon();
    if (name == "xeon18")
        return cpu::CoreModel::xeonAt1800();
    if (name == "thunderx")
        return cpu::CoreModel::thunderx();
    fatal(strCat("unknown core model '", name, "'"));
}

/** Build the requested app; returns true if it is a swarm variant. */
void
buildByName(apps::World &w, const Options &opt)
{
    const std::string &n = opt.app;
    apps::SwarmOptions so;
    so.drones = opt.drones;
    if (n == "social-network")
        apps::buildSocialNetwork(w);
    else if (n == "social-monolith")
        apps::buildSocialNetworkMonolith(w);
    else if (n == "media")
        apps::buildApp(w, apps::AppId::MediaService);
    else if (n == "ecommerce")
        apps::buildApp(w, apps::AppId::Ecommerce);
    else if (n == "banking")
        apps::buildApp(w, apps::AppId::Banking);
    else if (n == "swarm-cloud")
        apps::buildSwarm(w, apps::SwarmVariant::Cloud, so);
    else if (n == "swarm-edge")
        apps::buildSwarm(w, apps::SwarmVariant::Edge, so);
    else if (n == "nginx")
        apps::buildSingleTier(w, apps::SingleTierKind::Nginx);
    else if (n == "memcached")
        apps::buildSingleTier(w, apps::SingleTierKind::Memcached);
    else if (n == "mongodb")
        apps::buildSingleTier(w, apps::SingleTierKind::MongoDB);
    else if (n == "xapian")
        apps::buildSingleTier(w, apps::SingleTierKind::Xapian);
    else if (n == "recommender")
        apps::buildSingleTier(w, apps::SingleTierKind::Recommender);
    else
        fatal(strCat("unknown app '", n, "' (try --list)"));
}

void
listApps()
{
    std::cout << "End-to-end services (Table 1):\n";
    for (apps::AppId id : apps::allApps()) {
        const auto &info = apps::appInfo(id);
        std::cout << "  " << info.name << ": "
                  << info.uniqueMicroservices << " microservices, "
                  << info.protocol << "\n";
    }
    std::cout << "Single-tier baselines: nginx, memcached, mongodb, "
                 "xapian, recommender\nMonolith: social-monolith\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parse(argc, argv, opt))
        return 0;
    if (opt.list) {
        listApps();
        return 0;
    }

    apps::WorldConfig config;
    config.workerServers = opt.servers;
    config.coreModel = coreModel(opt.core);
    config.seed = opt.seed;
    config.appConfig.traceCapacity = opt.traceCapacity;
    if (opt.fpga)
        config.appConfig.fpga = net::FpgaOffloadModel::on();
    apps::World world(config);
    buildByName(world, opt);
    service::App &app = *world.app;

    serverless::LambdaConfig lambda_cfg;
    if (!opt.lambda.empty()) {
        lambda_cfg.stateStore = opt.lambda == "s3"
                                    ? serverless::StateStoreKind::S3
                                    : serverless::StateStoreKind::
                                          RemoteMemory;
        serverless::LambdaPlatform::applyToApp(app, lambda_cfg,
                                               world.cluster);
    }
    if (opt.freqMhz > 0.0)
        world.cluster.setAllFrequenciesMhz(opt.freqMhz);
    if (opt.slowServers > 0)
        world.cluster.injectSlowServers(opt.slowServers, opt.slowFactor);

    // Client-side resilience: apply the same policy to the callers of
    // every tier. Left untouched (all flags at defaults) the RPC path
    // is the legacy one and digests match older builds bit-for-bit.
    if (opt.rpcTimeout || opt.retries || opt.breaker || opt.shed) {
        for (service::Microservice *svc : app.services()) {
            rpc::ResiliencePolicy &pol = svc->mutableDef().resilience;
            pol.timeout = opt.rpcTimeout;
            if (opt.retries) {
                pol.retry.maxAttempts = opt.retries + 1;
                pol.retry.budgetRatio = opt.retryBudget;
            }
            pol.breaker.enabled = opt.breaker;
            pol.shedQueueLength = opt.shed;
        }
    }
    if (opt.deadline)
        app.setRequestDeadline(opt.deadline);

    std::unique_ptr<fault::FaultInjector> injector;
    if (!opt.faults.empty()) {
        injector = std::make_unique<fault::FaultInjector>(app, opt.seed);
        injector->addAll(opt.faults);
        injector->arm();
        std::cout << "armed fault schedule:\n";
        for (const fault::FaultSpec &spec : injector->schedule())
            std::cout << "  " << spec.describe() << "\n";
    }

    cpu::EnergyMeter meter(world.sim, world.cluster,
                           cpu::PowerModel::xeon());
    if (opt.report == "energy")
        meter.start();

    const workload::UserPopulation users =
        opt.skew >= 0.0
            ? workload::UserPopulation::skewed(opt.users, opt.skew)
            : workload::UserPopulation::uniform(opt.users);
    const auto r = workload::runLoad(
        app, opt.qps, secToTicks(opt.warmupSec),
        secToTicks(opt.durationSec), workload::QueryMix::fromApp(app),
        users, opt.seed + 1);

    // ---- summary ---------------------------------------------------------
    std::cout << opt.app << " @ " << opt.qps << " qps on " << opt.servers
              << "x " << config.coreModel.name << "\n";
    TextTable summary({"metric", "value"});
    summary.add("completed", r.completed);
    summary.add("dropped", r.dropped);
    // Only present when something actually failed, so the default
    // (fault-free) output stays byte-identical.
    if (app.failedRequests() > 0)
        summary.add("failed", app.failedRequests());
    summary.add("p50", fmtMs(r.p50));
    summary.add("p95", fmtMs(r.p95));
    summary.add("p99", fmtMs(r.p99));
    summary.add("mean", fmtDouble(r.meanMs, 3) + "ms");
    summary.add("goodput (QoS " +
                    fmtDouble(ticksToMs(app.config().qosLatency), 0) +
                    "ms)",
                fmtDouble(r.goodputQps, 1) + " qps");
    summary.add("network-processing share",
                fmtDouble(100.0 * r.networkShare, 1) + "%");
    summary.add("cluster CPU utilization",
                fmtDouble(100.0 * r.meanUtilization, 2) + "%");
    summary.add("events simulated", world.sim.eventsExecuted());
    {
        // Order-sensitive fingerprint of the executed event sequence;
        // equal seeds must reproduce it bit-for-bit.
        std::ostringstream digest;
        digest << std::hex << std::setw(16) << std::setfill('0')
               << world.sim.executionDigest();
        summary.add("execution digest", digest.str());
    }
    summary.print(std::cout);

    // ---- per-query-type latency ----------------------------------------
    if (app.queryTypes().size() > 1) {
        TextTable q({"query type", "count", "p50(ms)", "p99(ms)"});
        for (unsigned i = 0; i < app.queryTypes().size(); ++i) {
            const auto &h = app.endToEndLatencyFor(i);
            if (h.count() == 0)
                continue;
            q.add(app.queryTypes()[i].name, h.count(),
                  fmtDouble(ticksToMs(h.p50()), 2),
                  fmtDouble(ticksToMs(h.p99()), 2));
        }
        printBanner(std::cout, "query types");
        q.print(std::cout);
    }

    // ---- optional report sections ---------------------------------------
    if (opt.report == "services" || opt.report == "traces") {
        trace::TraceAnalysis ta(app.traceStore());
        printBanner(std::cout, "per-service (from traces)");
        TextTable t({"service", "spans", "mean(us)", "p99(ms)", "net%",
                     "app%", "queue%"});
        for (const auto &s : ta.perService()) {
            t.add(s.service, s.spanCount, fmtDouble(s.meanLatencyUs, 0),
                  fmtDouble(ticksToMs(s.p99LatencyNs), 2),
                  fmtDouble(100 * s.networkShare, 0),
                  fmtDouble(100 * s.appShare, 0),
                  fmtDouble(100 * s.queueShare, 0));
        }
        t.print(std::cout);
    }
    if (opt.report == "traces") {
        trace::TraceAnalysis ta(app.traceStore());
        printBanner(std::cout, "critical path (mean us/request)");
        TextTable cp({"service", "exclusive", "queue", "app", "network",
                      "downstream"});
        for (const auto &e : ta.criticalPathBreakdown())
            cp.add(e.service, fmtDouble(e.exclusiveNs / 1000.0, 0),
                   fmtDouble(e.queueNs / 1000.0, 0),
                   fmtDouble(e.appNs / 1000.0, 0),
                   fmtDouble(e.networkNs / 1000.0, 0),
                   fmtDouble(e.downstreamNs / 1000.0, 0));
        cp.print(std::cout);
        const auto &store = app.traceStore();
        if (store.evicted() > 0)
            std::cout << "note: " << store.evicted()
                      << " oldest spans evicted from the ring "
                         "(capacity " << store.capacity()
                      << "; raise with --trace-capacity)\n";
    }
    if (opt.report == "cost") {
        const Tick window = secToTicks(600.0);
        const serverless::Ec2CostModel ec2;
        printBanner(std::cout, "cost (per 10 minutes)");
        if (opt.lambda.empty()) {
            std::cout << "EC2 reserved (" << opt.servers
                      << " servers as m5.12xlarge): $"
                      << fmtDouble(ec2.cost(opt.servers, window), 2)
                      << "\n";
        } else {
            const serverless::LambdaCostModel lc;
            const auto inv = serverless::LambdaPlatform::invocations(
                app, lambda_cfg.storeName);
            const auto billed =
                serverless::LambdaPlatform::billedDuration(
                    app, lc, lambda_cfg.storeName);
            const double scale = 600.0 / opt.durationSec;
            std::cout << "Lambda (" << opt.lambda << " state): $"
                      << fmtDouble(lc.cost(inv, billed) * scale, 2)
                      << "  (" << inv << " invocations measured)\n";
        }
    }
    if (opt.report == "resilience") {
        printBanner(std::cout, "resilience / fault outcomes");
        TextTable t({"counter", "value"});
        static const char *const kCounters[] = {
            "app.requests_failed",
            "rpc.errors",
            "rpc.timeouts",
            "rpc.retries",
            "rpc.retry_budget_exhausted",
            "rpc.breaker_fast_fails",
            "rpc.deadline_exceeded",
            "rpc.shed",
            "rpc.pool.acquire_timeouts",
            "rpc.crashed_in_flight",
            "rpc.abandoned_arrivals",
            "fault.requests_failed",
            "fault.crashes",
            "fault.messages_dropped",
        };
        for (const char *name : kCounters)
            t.add(name, app.metrics().counter(name).value());
        t.add("net.messages_dropped",
              world.network->messagesDropped());
        t.print(std::cout);
        TextTable e({"service", "served", "failed", "dropped"});
        for (const service::Microservice *svc : app.services()) {
            std::uint64_t served = 0, failed = 0, dropped = 0;
            for (const auto &inst : svc->instances()) {
                served += inst->served();
                failed += inst->failed();
                dropped += inst->dropped();
            }
            e.add(svc->name(), served, failed, dropped);
        }
        printBanner(std::cout, "per-service outcomes");
        e.print(std::cout);
    }
    if (opt.report == "energy") {
        printBanner(std::cout, "energy");
        std::cout << "cluster average power: "
                  << fmtDouble(meter.averageWatts(), 0) << " W\n"
                  << "energy per completed request: "
                  << fmtDouble(meter.totalJoules() /
                                   std::max<double>(1.0, r.completed),
                               2)
                  << " J\n";
    }

    // ---- file exports ---------------------------------------------------
    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut);
        if (!out)
            fatal(strCat("cannot open '", opt.traceOut, "' for writing"));
        trace::exportPerfettoJson(app.traceStore(), out);
        std::cout << "wrote " << app.traceStore().size() << " spans to "
                  << opt.traceOut << " (open in ui.perfetto.dev)\n";
    }
    if (!opt.metricsOut.empty()) {
        std::ofstream out(opt.metricsOut);
        if (!out)
            fatal(strCat("cannot open '", opt.metricsOut,
                         "' for writing"));
        app.metrics().writeJson(out);
        std::cout << "wrote metrics snapshot to " << opt.metricsOut
                  << "\n";
    }
    return 0;
}
