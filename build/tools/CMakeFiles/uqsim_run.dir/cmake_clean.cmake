file(REMOVE_RECURSE
  "CMakeFiles/uqsim_run.dir/uqsim_run.cc.o"
  "CMakeFiles/uqsim_run.dir/uqsim_run.cc.o.d"
  "uqsim_run"
  "uqsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
