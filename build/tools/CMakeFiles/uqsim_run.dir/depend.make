# Empty dependencies file for uqsim_run.
# This may be replaced when dependencies are built.
