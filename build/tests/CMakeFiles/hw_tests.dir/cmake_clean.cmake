file(REMOVE_RECURSE
  "CMakeFiles/hw_tests.dir/connection_pool_test.cc.o"
  "CMakeFiles/hw_tests.dir/connection_pool_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/microarch_test.cc.o"
  "CMakeFiles/hw_tests.dir/microarch_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/network_test.cc.o"
  "CMakeFiles/hw_tests.dir/network_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/power_lb_test.cc.o"
  "CMakeFiles/hw_tests.dir/power_lb_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/protocol_test.cc.o"
  "CMakeFiles/hw_tests.dir/protocol_test.cc.o.d"
  "CMakeFiles/hw_tests.dir/server_test.cc.o"
  "CMakeFiles/hw_tests.dir/server_test.cc.o.d"
  "hw_tests"
  "hw_tests.pdb"
  "hw_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
