file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/distributions_test.cc.o"
  "CMakeFiles/core_tests.dir/distributions_test.cc.o.d"
  "CMakeFiles/core_tests.dir/event_queue_test.cc.o"
  "CMakeFiles/core_tests.dir/event_queue_test.cc.o.d"
  "CMakeFiles/core_tests.dir/histogram_test.cc.o"
  "CMakeFiles/core_tests.dir/histogram_test.cc.o.d"
  "CMakeFiles/core_tests.dir/rng_test.cc.o"
  "CMakeFiles/core_tests.dir/rng_test.cc.o.d"
  "CMakeFiles/core_tests.dir/simulator_test.cc.o"
  "CMakeFiles/core_tests.dir/simulator_test.cc.o.d"
  "CMakeFiles/core_tests.dir/stats_test.cc.o"
  "CMakeFiles/core_tests.dir/stats_test.cc.o.d"
  "CMakeFiles/core_tests.dir/table_test.cc.o"
  "CMakeFiles/core_tests.dir/table_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
