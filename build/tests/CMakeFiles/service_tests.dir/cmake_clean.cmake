file(REMOVE_RECURSE
  "CMakeFiles/service_tests.dir/app_test.cc.o"
  "CMakeFiles/service_tests.dir/app_test.cc.o.d"
  "CMakeFiles/service_tests.dir/backpressure_test.cc.o"
  "CMakeFiles/service_tests.dir/backpressure_test.cc.o.d"
  "CMakeFiles/service_tests.dir/export_test.cc.o"
  "CMakeFiles/service_tests.dir/export_test.cc.o.d"
  "CMakeFiles/service_tests.dir/handler_test.cc.o"
  "CMakeFiles/service_tests.dir/handler_test.cc.o.d"
  "CMakeFiles/service_tests.dir/microservice_test.cc.o"
  "CMakeFiles/service_tests.dir/microservice_test.cc.o.d"
  "CMakeFiles/service_tests.dir/trace_test.cc.o"
  "CMakeFiles/service_tests.dir/trace_test.cc.o.d"
  "service_tests"
  "service_tests.pdb"
  "service_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
