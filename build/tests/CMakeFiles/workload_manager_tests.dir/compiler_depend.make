# Empty compiler generated dependencies file for workload_manager_tests.
# This may be replaced when dependencies are built.
