file(REMOVE_RECURSE
  "CMakeFiles/workload_manager_tests.dir/generators_test.cc.o"
  "CMakeFiles/workload_manager_tests.dir/generators_test.cc.o.d"
  "CMakeFiles/workload_manager_tests.dir/load_sweep_test.cc.o"
  "CMakeFiles/workload_manager_tests.dir/load_sweep_test.cc.o.d"
  "CMakeFiles/workload_manager_tests.dir/manager_test.cc.o"
  "CMakeFiles/workload_manager_tests.dir/manager_test.cc.o.d"
  "CMakeFiles/workload_manager_tests.dir/user_population_test.cc.o"
  "CMakeFiles/workload_manager_tests.dir/user_population_test.cc.o.d"
  "workload_manager_tests"
  "workload_manager_tests.pdb"
  "workload_manager_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_manager_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
