# Empty dependencies file for uqsim_workload.
# This may be replaced when dependencies are built.
