file(REMOVE_RECURSE
  "libuqsim_workload.a"
)
