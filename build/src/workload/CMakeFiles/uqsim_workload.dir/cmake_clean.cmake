file(REMOVE_RECURSE
  "CMakeFiles/uqsim_workload.dir/generators.cc.o"
  "CMakeFiles/uqsim_workload.dir/generators.cc.o.d"
  "CMakeFiles/uqsim_workload.dir/load_sweep.cc.o"
  "CMakeFiles/uqsim_workload.dir/load_sweep.cc.o.d"
  "CMakeFiles/uqsim_workload.dir/user_population.cc.o"
  "CMakeFiles/uqsim_workload.dir/user_population.cc.o.d"
  "libuqsim_workload.a"
  "libuqsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
