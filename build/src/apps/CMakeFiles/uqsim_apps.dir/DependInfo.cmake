
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/banking.cc" "src/apps/CMakeFiles/uqsim_apps.dir/banking.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/banking.cc.o.d"
  "/root/repo/src/apps/builder.cc" "src/apps/CMakeFiles/uqsim_apps.dir/builder.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/builder.cc.o.d"
  "/root/repo/src/apps/catalog.cc" "src/apps/CMakeFiles/uqsim_apps.dir/catalog.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/catalog.cc.o.d"
  "/root/repo/src/apps/ecommerce.cc" "src/apps/CMakeFiles/uqsim_apps.dir/ecommerce.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/ecommerce.cc.o.d"
  "/root/repo/src/apps/media_service.cc" "src/apps/CMakeFiles/uqsim_apps.dir/media_service.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/media_service.cc.o.d"
  "/root/repo/src/apps/profiles.cc" "src/apps/CMakeFiles/uqsim_apps.dir/profiles.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/profiles.cc.o.d"
  "/root/repo/src/apps/single_tier.cc" "src/apps/CMakeFiles/uqsim_apps.dir/single_tier.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/single_tier.cc.o.d"
  "/root/repo/src/apps/social_network.cc" "src/apps/CMakeFiles/uqsim_apps.dir/social_network.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/social_network.cc.o.d"
  "/root/repo/src/apps/swarm.cc" "src/apps/CMakeFiles/uqsim_apps.dir/swarm.cc.o" "gcc" "src/apps/CMakeFiles/uqsim_apps.dir/swarm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uqsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/uqsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uqsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/uqsim_service.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/uqsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/uqsim_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/uqsim_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/uqsim_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/uqsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
