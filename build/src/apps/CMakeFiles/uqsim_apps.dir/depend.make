# Empty dependencies file for uqsim_apps.
# This may be replaced when dependencies are built.
