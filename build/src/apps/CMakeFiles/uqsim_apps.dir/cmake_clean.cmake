file(REMOVE_RECURSE
  "CMakeFiles/uqsim_apps.dir/banking.cc.o"
  "CMakeFiles/uqsim_apps.dir/banking.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/builder.cc.o"
  "CMakeFiles/uqsim_apps.dir/builder.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/catalog.cc.o"
  "CMakeFiles/uqsim_apps.dir/catalog.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/ecommerce.cc.o"
  "CMakeFiles/uqsim_apps.dir/ecommerce.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/media_service.cc.o"
  "CMakeFiles/uqsim_apps.dir/media_service.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/profiles.cc.o"
  "CMakeFiles/uqsim_apps.dir/profiles.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/single_tier.cc.o"
  "CMakeFiles/uqsim_apps.dir/single_tier.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/social_network.cc.o"
  "CMakeFiles/uqsim_apps.dir/social_network.cc.o.d"
  "CMakeFiles/uqsim_apps.dir/swarm.cc.o"
  "CMakeFiles/uqsim_apps.dir/swarm.cc.o.d"
  "libuqsim_apps.a"
  "libuqsim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
