file(REMOVE_RECURSE
  "libuqsim_apps.a"
)
