# Empty compiler generated dependencies file for uqsim_serverless.
# This may be replaced when dependencies are built.
