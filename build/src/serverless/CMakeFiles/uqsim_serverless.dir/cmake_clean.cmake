file(REMOVE_RECURSE
  "CMakeFiles/uqsim_serverless.dir/platform.cc.o"
  "CMakeFiles/uqsim_serverless.dir/platform.cc.o.d"
  "libuqsim_serverless.a"
  "libuqsim_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
