file(REMOVE_RECURSE
  "libuqsim_serverless.a"
)
