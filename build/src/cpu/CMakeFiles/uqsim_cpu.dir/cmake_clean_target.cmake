file(REMOVE_RECURSE
  "libuqsim_cpu.a"
)
