file(REMOVE_RECURSE
  "CMakeFiles/uqsim_cpu.dir/core_model.cc.o"
  "CMakeFiles/uqsim_cpu.dir/core_model.cc.o.d"
  "CMakeFiles/uqsim_cpu.dir/microarch.cc.o"
  "CMakeFiles/uqsim_cpu.dir/microarch.cc.o.d"
  "CMakeFiles/uqsim_cpu.dir/power.cc.o"
  "CMakeFiles/uqsim_cpu.dir/power.cc.o.d"
  "CMakeFiles/uqsim_cpu.dir/server.cc.o"
  "CMakeFiles/uqsim_cpu.dir/server.cc.o.d"
  "libuqsim_cpu.a"
  "libuqsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
