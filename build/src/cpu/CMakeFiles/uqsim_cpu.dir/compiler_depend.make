# Empty compiler generated dependencies file for uqsim_cpu.
# This may be replaced when dependencies are built.
