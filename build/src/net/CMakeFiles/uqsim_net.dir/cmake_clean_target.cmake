file(REMOVE_RECURSE
  "libuqsim_net.a"
)
