# Empty dependencies file for uqsim_net.
# This may be replaced when dependencies are built.
