file(REMOVE_RECURSE
  "CMakeFiles/uqsim_net.dir/network.cc.o"
  "CMakeFiles/uqsim_net.dir/network.cc.o.d"
  "libuqsim_net.a"
  "libuqsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
