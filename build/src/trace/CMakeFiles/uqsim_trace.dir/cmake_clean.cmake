file(REMOVE_RECURSE
  "CMakeFiles/uqsim_trace.dir/analysis.cc.o"
  "CMakeFiles/uqsim_trace.dir/analysis.cc.o.d"
  "CMakeFiles/uqsim_trace.dir/collector.cc.o"
  "CMakeFiles/uqsim_trace.dir/collector.cc.o.d"
  "CMakeFiles/uqsim_trace.dir/export.cc.o"
  "CMakeFiles/uqsim_trace.dir/export.cc.o.d"
  "libuqsim_trace.a"
  "libuqsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
