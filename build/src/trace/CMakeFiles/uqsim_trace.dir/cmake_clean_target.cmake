file(REMOVE_RECURSE
  "libuqsim_trace.a"
)
