
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cc" "src/trace/CMakeFiles/uqsim_trace.dir/analysis.cc.o" "gcc" "src/trace/CMakeFiles/uqsim_trace.dir/analysis.cc.o.d"
  "/root/repo/src/trace/collector.cc" "src/trace/CMakeFiles/uqsim_trace.dir/collector.cc.o" "gcc" "src/trace/CMakeFiles/uqsim_trace.dir/collector.cc.o.d"
  "/root/repo/src/trace/export.cc" "src/trace/CMakeFiles/uqsim_trace.dir/export.cc.o" "gcc" "src/trace/CMakeFiles/uqsim_trace.dir/export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uqsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
