# Empty compiler generated dependencies file for uqsim_trace.
# This may be replaced when dependencies are built.
