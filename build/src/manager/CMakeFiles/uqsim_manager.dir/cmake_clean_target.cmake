file(REMOVE_RECURSE
  "libuqsim_manager.a"
)
