file(REMOVE_RECURSE
  "CMakeFiles/uqsim_manager.dir/autoscaler.cc.o"
  "CMakeFiles/uqsim_manager.dir/autoscaler.cc.o.d"
  "CMakeFiles/uqsim_manager.dir/monitor.cc.o"
  "CMakeFiles/uqsim_manager.dir/monitor.cc.o.d"
  "CMakeFiles/uqsim_manager.dir/qos.cc.o"
  "CMakeFiles/uqsim_manager.dir/qos.cc.o.d"
  "CMakeFiles/uqsim_manager.dir/rate_limiter.cc.o"
  "CMakeFiles/uqsim_manager.dir/rate_limiter.cc.o.d"
  "libuqsim_manager.a"
  "libuqsim_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
