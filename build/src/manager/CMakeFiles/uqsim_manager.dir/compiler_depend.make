# Empty compiler generated dependencies file for uqsim_manager.
# This may be replaced when dependencies are built.
