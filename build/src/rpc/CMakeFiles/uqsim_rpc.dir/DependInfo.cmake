
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/connection_pool.cc" "src/rpc/CMakeFiles/uqsim_rpc.dir/connection_pool.cc.o" "gcc" "src/rpc/CMakeFiles/uqsim_rpc.dir/connection_pool.cc.o.d"
  "/root/repo/src/rpc/protocol.cc" "src/rpc/CMakeFiles/uqsim_rpc.dir/protocol.cc.o" "gcc" "src/rpc/CMakeFiles/uqsim_rpc.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uqsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uqsim_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
