# Empty compiler generated dependencies file for uqsim_rpc.
# This may be replaced when dependencies are built.
