file(REMOVE_RECURSE
  "CMakeFiles/uqsim_rpc.dir/connection_pool.cc.o"
  "CMakeFiles/uqsim_rpc.dir/connection_pool.cc.o.d"
  "CMakeFiles/uqsim_rpc.dir/protocol.cc.o"
  "CMakeFiles/uqsim_rpc.dir/protocol.cc.o.d"
  "libuqsim_rpc.a"
  "libuqsim_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
