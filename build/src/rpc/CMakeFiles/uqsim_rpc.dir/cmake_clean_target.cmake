file(REMOVE_RECURSE
  "libuqsim_rpc.a"
)
