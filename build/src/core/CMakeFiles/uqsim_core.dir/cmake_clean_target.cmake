file(REMOVE_RECURSE
  "libuqsim_core.a"
)
