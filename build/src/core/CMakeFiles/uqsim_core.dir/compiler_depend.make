# Empty compiler generated dependencies file for uqsim_core.
# This may be replaced when dependencies are built.
