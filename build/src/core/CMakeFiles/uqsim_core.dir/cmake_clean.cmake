file(REMOVE_RECURSE
  "CMakeFiles/uqsim_core.dir/distributions.cc.o"
  "CMakeFiles/uqsim_core.dir/distributions.cc.o.d"
  "CMakeFiles/uqsim_core.dir/event_queue.cc.o"
  "CMakeFiles/uqsim_core.dir/event_queue.cc.o.d"
  "CMakeFiles/uqsim_core.dir/histogram.cc.o"
  "CMakeFiles/uqsim_core.dir/histogram.cc.o.d"
  "CMakeFiles/uqsim_core.dir/logging.cc.o"
  "CMakeFiles/uqsim_core.dir/logging.cc.o.d"
  "CMakeFiles/uqsim_core.dir/rng.cc.o"
  "CMakeFiles/uqsim_core.dir/rng.cc.o.d"
  "CMakeFiles/uqsim_core.dir/simulator.cc.o"
  "CMakeFiles/uqsim_core.dir/simulator.cc.o.d"
  "CMakeFiles/uqsim_core.dir/stats.cc.o"
  "CMakeFiles/uqsim_core.dir/stats.cc.o.d"
  "CMakeFiles/uqsim_core.dir/table.cc.o"
  "CMakeFiles/uqsim_core.dir/table.cc.o.d"
  "libuqsim_core.a"
  "libuqsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
