# Empty compiler generated dependencies file for uqsim_service.
# This may be replaced when dependencies are built.
