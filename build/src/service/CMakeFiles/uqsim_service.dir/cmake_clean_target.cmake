file(REMOVE_RECURSE
  "libuqsim_service.a"
)
