file(REMOVE_RECURSE
  "CMakeFiles/uqsim_service.dir/app.cc.o"
  "CMakeFiles/uqsim_service.dir/app.cc.o.d"
  "CMakeFiles/uqsim_service.dir/handler.cc.o"
  "CMakeFiles/uqsim_service.dir/handler.cc.o.d"
  "CMakeFiles/uqsim_service.dir/microservice.cc.o"
  "CMakeFiles/uqsim_service.dir/microservice.cc.o.d"
  "libuqsim_service.a"
  "libuqsim_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uqsim_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
