
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/app.cc" "src/service/CMakeFiles/uqsim_service.dir/app.cc.o" "gcc" "src/service/CMakeFiles/uqsim_service.dir/app.cc.o.d"
  "/root/repo/src/service/handler.cc" "src/service/CMakeFiles/uqsim_service.dir/handler.cc.o" "gcc" "src/service/CMakeFiles/uqsim_service.dir/handler.cc.o.d"
  "/root/repo/src/service/microservice.cc" "src/service/CMakeFiles/uqsim_service.dir/microservice.cc.o" "gcc" "src/service/CMakeFiles/uqsim_service.dir/microservice.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uqsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/uqsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uqsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/uqsim_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/uqsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
