file(REMOVE_RECURSE
  "CMakeFiles/serverless_migration.dir/serverless_migration.cpp.o"
  "CMakeFiles/serverless_migration.dir/serverless_migration.cpp.o.d"
  "serverless_migration"
  "serverless_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
