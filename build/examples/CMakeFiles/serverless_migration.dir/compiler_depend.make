# Empty compiler generated dependencies file for serverless_migration.
# This may be replaced when dependencies are built.
