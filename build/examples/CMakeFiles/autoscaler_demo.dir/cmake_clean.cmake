file(REMOVE_RECURSE
  "CMakeFiles/autoscaler_demo.dir/autoscaler_demo.cpp.o"
  "CMakeFiles/autoscaler_demo.dir/autoscaler_demo.cpp.o.d"
  "autoscaler_demo"
  "autoscaler_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaler_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
