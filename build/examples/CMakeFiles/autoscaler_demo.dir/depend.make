# Empty dependencies file for autoscaler_demo.
# This may be replaced when dependencies are built.
