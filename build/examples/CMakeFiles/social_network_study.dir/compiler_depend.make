# Empty compiler generated dependencies file for social_network_study.
# This may be replaced when dependencies are built.
