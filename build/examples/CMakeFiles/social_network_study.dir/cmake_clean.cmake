file(REMOVE_RECURSE
  "CMakeFiles/social_network_study.dir/social_network_study.cpp.o"
  "CMakeFiles/social_network_study.dir/social_network_study.cpp.o.d"
  "social_network_study"
  "social_network_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
