# Empty compiler generated dependencies file for swarm_offload.
# This may be replaced when dependencies are built.
