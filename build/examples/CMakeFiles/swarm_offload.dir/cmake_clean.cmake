file(REMOVE_RECURSE
  "CMakeFiles/swarm_offload.dir/swarm_offload.cpp.o"
  "CMakeFiles/swarm_offload.dir/swarm_offload.cpp.o.d"
  "swarm_offload"
  "swarm_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
