file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_swarm.dir/bench_fig09_swarm.cc.o"
  "CMakeFiles/bench_fig09_swarm.dir/bench_fig09_swarm.cc.o.d"
  "bench_fig09_swarm"
  "bench_fig09_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
