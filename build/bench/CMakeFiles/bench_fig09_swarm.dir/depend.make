# Empty dependencies file for bench_fig09_swarm.
# This may be replaced when dependencies are built.
