# Empty dependencies file for bench_sec7_rpc_vs_http.
# This may be replaced when dependencies are built.
