file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_rpc_vs_http.dir/bench_sec7_rpc_vs_http.cc.o"
  "CMakeFiles/bench_sec7_rpc_vs_http.dir/bench_sec7_rpc_vs_http.cc.o.d"
  "bench_sec7_rpc_vs_http"
  "bench_sec7_rpc_vs_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_rpc_vs_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
