# Empty dependencies file for bench_fig19_cascade.
# This may be replaced when dependencies are built.
