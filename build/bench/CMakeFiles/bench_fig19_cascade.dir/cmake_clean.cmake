file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_cascade.dir/bench_fig19_cascade.cc.o"
  "CMakeFiles/bench_fig19_cascade.dir/bench_fig19_cascade.cc.o.d"
  "bench_fig19_cascade"
  "bench_fig19_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
