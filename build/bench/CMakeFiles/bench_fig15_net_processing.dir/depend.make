# Empty dependencies file for bench_fig15_net_processing.
# This may be replaced when dependencies are built.
