file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_net_processing.dir/bench_fig15_net_processing.cc.o"
  "CMakeFiles/bench_fig15_net_processing.dir/bench_fig15_net_processing.cc.o.d"
  "bench_fig15_net_processing"
  "bench_fig15_net_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_net_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
