# Empty dependencies file for bench_fig20_recovery.
# This may be replaced when dependencies are built.
