file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_backpressure.dir/bench_fig17_backpressure.cc.o"
  "CMakeFiles/bench_fig17_backpressure.dir/bench_fig17_backpressure.cc.o.d"
  "bench_fig17_backpressure"
  "bench_fig17_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
