file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_l1i.dir/bench_fig11_l1i.cc.o"
  "CMakeFiles/bench_fig11_l1i.dir/bench_fig11_l1i.cc.o.d"
  "bench_fig11_l1i"
  "bench_fig11_l1i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_l1i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
