
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig16_fpga.cc" "bench/CMakeFiles/bench_fig16_fpga.dir/bench_fig16_fpga.cc.o" "gcc" "bench/CMakeFiles/bench_fig16_fpga.dir/bench_fig16_fpga.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/uqsim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/uqsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/uqsim_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/uqsim_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/uqsim_service.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/uqsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/uqsim_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uqsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/uqsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uqsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
