file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_fpga.dir/bench_fig16_fpga.cc.o"
  "CMakeFiles/bench_fig16_fpga.dir/bench_fig16_fpga.cc.o.d"
  "bench_fig16_fpga"
  "bench_fig16_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
