file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_net_vs_app.dir/bench_fig03_net_vs_app.cc.o"
  "CMakeFiles/bench_fig03_net_vs_app.dir/bench_fig03_net_vs_app.cc.o.d"
  "bench_fig03_net_vs_app"
  "bench_fig03_net_vs_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_net_vs_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
