# Empty compiler generated dependencies file for bench_fig03_net_vs_app.
# This may be replaced when dependencies are built.
