# Empty dependencies file for bench_fig14_os_user_libs.
# This may be replaced when dependencies are built.
