file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_os_user_libs.dir/bench_fig14_os_user_libs.cc.o"
  "CMakeFiles/bench_fig14_os_user_libs.dir/bench_fig14_os_user_libs.cc.o.d"
  "bench_fig14_os_user_libs"
  "bench_fig14_os_user_libs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_os_user_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
