file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_serverless.dir/bench_fig21_serverless.cc.o"
  "CMakeFiles/bench_fig21_serverless.dir/bench_fig21_serverless.cc.o.d"
  "bench_fig21_serverless"
  "bench_fig21_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
