# Empty dependencies file for bench_fig21_serverless.
# This may be replaced when dependencies are built.
