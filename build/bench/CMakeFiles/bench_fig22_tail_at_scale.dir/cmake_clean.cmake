file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_tail_at_scale.dir/bench_fig22_tail_at_scale.cc.o"
  "CMakeFiles/bench_fig22_tail_at_scale.dir/bench_fig22_tail_at_scale.cc.o.d"
  "bench_fig22_tail_at_scale"
  "bench_fig22_tail_at_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_tail_at_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
