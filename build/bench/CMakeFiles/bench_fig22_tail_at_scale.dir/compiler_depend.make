# Empty compiler generated dependencies file for bench_fig22_tail_at_scale.
# This may be replaced when dependencies are built.
