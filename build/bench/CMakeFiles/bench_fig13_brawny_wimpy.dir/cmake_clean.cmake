file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_brawny_wimpy.dir/bench_fig13_brawny_wimpy.cc.o"
  "CMakeFiles/bench_fig13_brawny_wimpy.dir/bench_fig13_brawny_wimpy.cc.o.d"
  "bench_fig13_brawny_wimpy"
  "bench_fig13_brawny_wimpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_brawny_wimpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
