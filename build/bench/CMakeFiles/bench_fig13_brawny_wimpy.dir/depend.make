# Empty dependencies file for bench_fig13_brawny_wimpy.
# This may be replaced when dependencies are built.
