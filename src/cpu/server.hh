/**
 * @file
 * Multi-core server model with DVFS and fault injection.
 *
 * A Server executes work expressed in core cycles. Tasks are scheduled
 * FCFS onto free cores; when all cores are busy, tasks queue - this is
 * where CPU saturation and colocation interference come from. Execution
 * time is cycles / (effective_ipc * frequency), so RAPL-style frequency
 * capping (Fig 12) and "slow server" injection (Fig 22c) fall out of
 * the same mechanism.
 */

#ifndef UQSIM_CPU_SERVER_HH
#define UQSIM_CPU_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/sim_context.hh"
#include "core/stats.hh"
#include "core/types.hh"
#include "cpu/core_model.hh"

namespace uqsim::cpu {

/** Completion callback; receives the task's time on the core. */
using TaskDone = std::function<void(Tick busy_time)>;

/**
 * A server: N identical cores fed from one FCFS queue.
 */
class Server
{
  public:
    /**
     * @param ctx    scheduling context (names the owning shard)
     * @param id     unique server id within the cluster
     * @param model  core type and count
     */
    Server(SimContext ctx, unsigned id, CoreModel model);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Unique id within the cluster. */
    unsigned id() const { return id_; }

    /** Core type description. */
    const CoreModel &model() const { return model_; }

    /** Number of cores. */
    unsigned numCores() const { return model_.coresPerServer; }

    /**
     * Submit @p cycles of work at effective IPC @p ipc. @p done fires
     * when the work completes (possibly after queueing).
     */
    void execute(Cycles cycles, double ipc, TaskDone done);

    /** Current operating frequency in MHz. */
    double frequencyMhz() const { return freqMhz_; }

    /**
     * RAPL-style frequency cap. Takes effect for tasks that *start*
     * after the call (in-flight tasks finish at their old speed).
     */
    void setFrequencyMhz(double mhz);

    /** Restore nominal frequency. */
    void resetFrequency() { setFrequencyMhz(model_.nominalFreqMhz); }

    /**
     * Inject a uniform execution-time multiplier (>1 slows the server
     * down); models the "aggressive power management" fault of Fig 22c.
     */
    void setSlowFactor(double factor);

    /** Current slow factor (1.0 = healthy). */
    double slowFactor() const { return slowFactor_; }

    /** Cores currently executing a task. */
    unsigned busyCores() const { return busyCores_; }

    /** Tasks waiting for a core. */
    std::size_t queueLength() const { return pending_.size(); }

    /** Time-weighted CPU utilization in [0,1] since last statReset. */
    double utilizationAvg() const;

    /** Total core-busy time accumulated. */
    Tick totalBusyTime() const { return totalBusyTime_; }

    /** Total tasks completed. */
    std::uint64_t tasksCompleted() const { return tasksCompleted_; }

    /** Restart utilization integration at the current sim time. */
    void statReset();

  private:
    struct Task
    {
        Cycles cycles;
        double ipc;
        TaskDone done;
    };

    /** Execution time of a task at current settings. */
    Tick taskDuration(const Task &t) const;

    void startTask(Task task);
    void onTaskDone(Tick busy_time, TaskDone done);

    SimContext ctx_;
    unsigned id_;
    CoreModel model_;
    double freqMhz_;
    double slowFactor_ = 1.0;

    unsigned busyCores_ = 0;
    std::deque<Task> pending_;

    TimeWeightedGauge utilization_;
    Tick totalBusyTime_ = 0;
    std::uint64_t tasksCompleted_ = 0;
};

/**
 * A cluster: the set of servers an application deploys onto, plus the
 * fault-injection helpers the tail-at-scale study needs.
 */
class Cluster
{
  public:
    explicit Cluster(SimContext ctx) : ctx_(ctx) {}

    /** Add one server of the given core type; returns it. */
    Server &addServer(const CoreModel &model);

    /** Add @p n servers of the given core type. */
    void addServers(unsigned n, const CoreModel &model);

    /** All servers. */
    const std::vector<std::unique_ptr<Server>> &servers() const
    {
        return servers_;
    }

    /** Server by id. */
    Server &server(unsigned id);
    std::size_t size() const { return servers_.size(); }

    /** Round-robin placement cursor (cheap default placement). */
    Server &nextServerRoundRobin();

    /**
     * Mark the first @p count servers as slow with the given
     * execution-time multiplier (deterministic; callers shuffle ids
     * themselves if needed).
     */
    void injectSlowServers(unsigned count, double factor);

    /** Clear all slow markings. */
    void clearSlowServers();

    /** Apply a frequency cap to every server (RAPL sweep, Fig 12). */
    void setAllFrequenciesMhz(double mhz);

    /** Average utilization across servers. */
    double averageUtilization() const;

    /** Reset every server's utilization integration. */
    void statResetAll();

  private:
    SimContext ctx_;
    std::vector<std::unique_ptr<Server>> servers_;
    std::size_t rrCursor_ = 0;
};

} // namespace uqsim::cpu

#endif // UQSIM_CPU_SERVER_HH
