#include "cpu/power.hh"

#include "core/logging.hh"

namespace uqsim::cpu {

EnergyMeter::EnergyMeter(SimContext ctx, Cluster &cluster,
                         PowerModel model, Tick interval)
    : ctx_(ctx), cluster_(cluster), model_(model), interval_(interval)
{
    if (interval == 0)
        fatal("EnergyMeter with zero interval");
}

void
EnergyMeter::start()
{
    if (running_)
        return;
    running_ = true;
    lastBusy_.assign(cluster_.size(), 0);
    for (std::size_t i = 0; i < cluster_.size(); ++i)
        lastBusy_[i] = cluster_.server(static_cast<unsigned>(i))
                           .totalBusyTime();
    pending_ = ctx_.schedule(interval_, [this]() { sampleOnce(); });
}

void
EnergyMeter::stop()
{
    running_ = false;
    pending_.cancel();
}

void
EnergyMeter::sampleOnce()
{
    if (!running_)
        return;
    const double interval_sec = ticksToSec(interval_);
    for (std::size_t i = 0; i < cluster_.size(); ++i) {
        Server &s = cluster_.server(static_cast<unsigned>(i));
        const Tick busy = s.totalBusyTime();
        const Tick delta = busy >= lastBusy_[i] ? busy - lastBusy_[i]
                                                : busy;
        lastBusy_[i] = busy;
        const double capacity =
            static_cast<double>(interval_) * s.numCores();
        const double u =
            capacity > 0.0
                ? std::min(1.0, static_cast<double>(delta) / capacity)
                : 0.0;
        joules_ += model_.watts(u, s.frequencyMhz(),
                                s.model().nominalFreqMhz) *
                   interval_sec;
    }
    meteredTime_ += interval_;
    pending_ = ctx_.schedule(interval_, [this]() { sampleOnce(); });
}

double
EnergyMeter::averageWatts() const
{
    const double sec = ticksToSec(meteredTime_);
    return sec > 0.0 ? joules_ / sec : 0.0;
}

void
EnergyMeter::reset()
{
    joules_ = 0.0;
    meteredTime_ = 0;
}

} // namespace uqsim::cpu
