/**
 * @file
 * CPU core microarchitecture classes (brawny vs wimpy vs edge).
 *
 * A CoreModel captures what the paper varies across platforms in
 * Sections 4 (Figs 12-13): issue width, in-order vs out-of-order
 * execution, nominal frequency and sensitivity to instruction-cache
 * misses. The per-service IPC on a given core is derived by
 * MicroarchModel from the service's static profile.
 */

#ifndef UQSIM_CPU_CORE_MODEL_HH
#define UQSIM_CPU_CORE_MODEL_HH

#include <string>

namespace uqsim::cpu {

/**
 * Static description of one CPU core type.
 */
struct CoreModel
{
    /** Human-readable platform name ("Xeon E5-2660v3", "ThunderX"). */
    std::string name;

    /** Pipeline issue width (ideal IPC ceiling). */
    double issueWidth = 4.0;

    /** True for in-order pipelines (no latency hiding). */
    bool inOrder = false;

    /**
     * Fraction of stall cycles the core can hide by reordering
     * (0 for in-order, ~0.45 for aggressive OoO).
     */
    double stallHiding = 0.45;

    /** Nominal core frequency in MHz. */
    double nominalFreqMhz = 2400.0;

    /** Minimum frequency reachable via DVFS/RAPL in MHz. */
    double minFreqMhz = 1000.0;

    /** Cores per server built from this model. */
    unsigned coresPerServer = 40;

    /** L1 instruction cache capacity in KiB. */
    double l1iCapacityKb = 32.0;

    // -- Presets matching the paper's evaluation platforms ------------

    /** 2-socket Intel Xeon (E5-2660 v3 class): 40 OoO cores @2.4GHz. */
    static CoreModel xeon();

    /** Xeon frequency-capped to 1.8GHz (Fig 13 middle curve). */
    static CoreModel xeonAt1800();

    /** Cavium ThunderX: 2x48 in-order cores @1.8GHz (Fig 13). */
    static CoreModel thunderx();

    /** Edge-device SoC on the drones (Swarm Edge): 4 small cores. */
    static CoreModel edgeArm();

    /** EC2 c5.18xlarge-like VM for the tail-at-scale study (Sec 8). */
    static CoreModel ec2C5();
};

} // namespace uqsim::cpu

#endif // UQSIM_CPU_CORE_MODEL_HH
