/**
 * @file
 * Server power and energy model.
 *
 * The paper's Fig 12 studies the latency side of RAPL frequency
 * capping; this module supplies the other half of that trade-off so
 * energy-proportionality ablations can be run: per-server power as a
 * function of utilization and frequency, integrated into energy over
 * simulated time.
 *
 * Model: P(t) = P_idle + (P_peak - P_idle) * u(t) * (f/f_nom)^3
 * with u(t) the instantaneous core utilization. The cubic frequency
 * term is the classic dynamic-power approximation (V roughly
 * proportional to f in the DVFS range).
 */

#ifndef UQSIM_CPU_POWER_HH
#define UQSIM_CPU_POWER_HH

#include <vector>

#include "core/simulator.hh"
#include "core/types.hh"
#include "cpu/server.hh"

namespace uqsim::cpu {

/** Static power parameters of one server. */
struct PowerModel
{
    /** Power at zero utilization (fans, DRAM, uncore), watts. */
    double idleWatts = 120.0;

    /** Power at full utilization and nominal frequency, watts. */
    double peakWatts = 400.0;

    /** Two-socket Xeon defaults (E5-2660v3-class). */
    static PowerModel xeon() { return PowerModel{}; }

    /** Cavium ThunderX board. */
    static PowerModel
    thunderx()
    {
        return PowerModel{90.0, 210.0};
    }

    /** Drone SoC. */
    static PowerModel
    edgeArm()
    {
        return PowerModel{2.0, 8.0};
    }

    /** Instantaneous power at utilization @p u and frequency @p f. */
    double
    watts(double u, double freq_mhz, double nominal_mhz) const
    {
        const double fr = freq_mhz / nominal_mhz;
        return idleWatts + (peakWatts - idleWatts) * u * fr * fr * fr;
    }
};

/**
 * Periodically samples a cluster's utilization and integrates energy.
 */
class EnergyMeter
{
  public:
    /**
     * @param sim      owning simulator
     * @param cluster  servers to meter
     * @param model    per-server power parameters
     * @param interval sampling period
     */
    EnergyMeter(SimContext ctx, Cluster &cluster, PowerModel model,
                Tick interval = 100 * kTicksPerMs);

    /** Begin sampling. */
    void start();
    void stop();

    /** Total cluster energy integrated so far, joules. */
    double totalJoules() const { return joules_; }

    /** Mean cluster power over the metered window, watts. */
    double averageWatts() const;

    /** Reset the integration. */
    void reset();

  private:
    void sampleOnce();

    SimContext ctx_;
    Cluster &cluster_;
    PowerModel model_;
    Tick interval_;
    bool running_ = false;
    EventHandle pending_;
    double joules_ = 0.0;
    Tick meteredTime_ = 0;
    std::vector<Tick> lastBusy_;
};

} // namespace uqsim::cpu

#endif // UQSIM_CPU_POWER_HH
