#include "cpu/microarch.hh"

#include <algorithm>
#include <cmath>

namespace uqsim::cpu {

double
MicroarchModel::l1iMpki(const ServiceProfile &p, const CoreModel &core)
{
    const double cap = core.l1iCapacityKb;
    if (p.codeFootprintKb <= cap) {
        // In-cache footprints still see compulsory/conflict misses,
        // scaling mildly with how much of the cache they use.
        return 0.5 + 2.0 * (p.codeFootprintKb / cap);
    }
    const double excess = p.codeFootprintKb - cap;
    return std::max(
        2.5, kMaxMpki * (1.0 - std::exp(-excess / kFootprintScaleKb)));
}

double
MicroarchModel::cpi(const ServiceProfile &p, const CoreModel &core)
{
    const double sh = core.inOrder ? 0.0 : core.stallHiding;
    const double in_order_mult = core.inOrder ? kInOrderStallMult : 1.0;
    const double mpki = l1iMpki(p, core);

    const double base = 1.0 / core.issueWidth;
    const double icache =
        mpki / 1000.0 * kL1iMissCycles * (1.0 - sh) * in_order_mult;
    const double mem =
        p.memIntensity * kMemStallCpi * (1.0 - sh) * in_order_mult;
    const double branch = kBranchCpi * p.branchEntropy;
    const double kernel = p.kernelShare * kKernelCpi * (1.0 - 0.5 * sh);

    return base + icache + mem + branch + kernel;
}

double
MicroarchModel::effectiveIpc(const ServiceProfile &p, const CoreModel &core)
{
    return 1.0 / cpi(p, core);
}

CycleBreakdown
MicroarchModel::cycleBreakdown(const ServiceProfile &p,
                               const CoreModel &core)
{
    const double sh = core.inOrder ? 0.0 : core.stallHiding;
    const double in_order_mult = core.inOrder ? kInOrderStallMult : 1.0;
    const double mpki = l1iMpki(p, core);

    const double total = cpi(p, core);
    const double base = 1.0 / core.issueWidth;
    const double icache =
        mpki / 1000.0 * kL1iMissCycles * (1.0 - sh) * in_order_mult;
    const double mem =
        p.memIntensity * kMemStallCpi * (1.0 - sh) * in_order_mult;
    const double branch = kBranchCpi * p.branchEntropy;
    const double kernel = p.kernelShare * kKernelCpi * (1.0 - 0.5 * sh);

    CycleBreakdown b;
    // Fetch misses, the fetch-facing part of kernel processing and the
    // long-memory-access component all starve the front-end (the paper
    // attributes most front-end stalls to fetch).
    b.frontend = (icache + 0.7 * kernel + 0.4 * mem) / total;
    b.badSpec = branch / total;
    b.retiring = base / total;
    b.backend =
        std::max(0.0, 1.0 - b.frontend - b.badSpec - b.retiring);
    return b;
}

ModeBreakdown
MicroarchModel::cycleModes(const ServiceProfile &p)
{
    ModeBreakdown m;
    m.kernel = p.kernelShare;
    m.libs = p.libShare;
    const double rest = std::max(0.0, 1.0 - m.kernel - m.libs);
    m.other = 0.08 * rest;
    m.user = rest - m.other;
    return m;
}

ModeBreakdown
MicroarchModel::instructionModes(const ServiceProfile &p)
{
    // Kernel code stalls more per instruction, so its *instruction*
    // share is lower than its cycle share; library code is closer to
    // parity; user code picks up the difference.
    ModeBreakdown m;
    m.kernel = 0.72 * p.kernelShare;
    m.libs = 0.95 * p.libShare;
    const double rest = std::max(0.0, 1.0 - m.kernel - m.libs);
    m.other = 0.08 * rest;
    m.user = rest - m.other;
    return m;
}

} // namespace uqsim::cpu
