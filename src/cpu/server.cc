#include "cpu/server.hh"

#include <algorithm>
#include <utility>

#include "core/logging.hh"

namespace uqsim::cpu {

Server::Server(SimContext ctx, unsigned id, CoreModel model)
    : ctx_(ctx), id_(id), model_(std::move(model)),
      freqMhz_(model_.nominalFreqMhz)
{
    if (model_.coresPerServer == 0)
        fatal("Server with zero cores");
}

Tick
Server::taskDuration(const Task &t) const
{
    // cycles / (ipc * freq) with freq in cycles-per-ns (GHz).
    const double freq_ghz = freqMhz_ / 1000.0;
    const double ns = static_cast<double>(t.cycles) /
                      std::max(1e-9, t.ipc * freq_ghz) * slowFactor_;
    return std::max<Tick>(1, static_cast<Tick>(ns));
}

void
Server::execute(Cycles cycles, double ipc, TaskDone done)
{
    if (ipc <= 0.0)
        panic("Server::execute with non-positive IPC");
    Task task{cycles, ipc, std::move(done)};
    if (busyCores_ < numCores()) {
        startTask(std::move(task));
    } else {
        pending_.push_back(std::move(task));
    }
}

void
Server::startTask(Task task)
{
    ++busyCores_;
    utilization_.update(ctx_.now(),
                        static_cast<double>(busyCores_) / numCores());
    const Tick duration = taskDuration(task);
    TaskDone done = std::move(task.done);
    ctx_.schedule(duration, [this, duration, done = std::move(done)]() {
        onTaskDone(duration, std::move(done));
    });
}

void
Server::onTaskDone(Tick busy_time, TaskDone done)
{
    --busyCores_;
    totalBusyTime_ += busy_time;
    ++tasksCompleted_;
    if (!pending_.empty()) {
        Task next = std::move(pending_.front());
        pending_.pop_front();
        startTask(std::move(next));
    } else {
        utilization_.update(ctx_.now(),
                            static_cast<double>(busyCores_) / numCores());
    }
    if (done)
        done(busy_time);
}

void
Server::setFrequencyMhz(double mhz)
{
    if (mhz <= 0.0)
        fatal("Server frequency must be positive");
    freqMhz_ = std::max(mhz, model_.minFreqMhz);
}

void
Server::setSlowFactor(double factor)
{
    if (factor < 1.0)
        fatal("Server slow factor must be >= 1.0");
    slowFactor_ = factor;
}

double
Server::utilizationAvg() const
{
    return utilization_.average(ctx_.now());
}

void
Server::statReset()
{
    utilization_.reset(ctx_.now());
    totalBusyTime_ = 0;
    tasksCompleted_ = 0;
}

Server &
Cluster::addServer(const CoreModel &model)
{
    servers_.push_back(std::make_unique<Server>(
        ctx_, static_cast<unsigned>(servers_.size()), model));
    return *servers_.back();
}

void
Cluster::addServers(unsigned n, const CoreModel &model)
{
    for (unsigned i = 0; i < n; ++i)
        addServer(model);
}

Server &
Cluster::server(unsigned id)
{
    if (id >= servers_.size())
        panic(strCat("Cluster::server(", id, ") out of range"));
    return *servers_[id];
}

Server &
Cluster::nextServerRoundRobin()
{
    if (servers_.empty())
        panic("Cluster::nextServerRoundRobin on empty cluster");
    Server &s = *servers_[rrCursor_ % servers_.size()];
    ++rrCursor_;
    return s;
}

void
Cluster::injectSlowServers(unsigned count, double factor)
{
    count = std::min<unsigned>(count,
                               static_cast<unsigned>(servers_.size()));
    for (unsigned i = 0; i < count; ++i)
        servers_[i]->setSlowFactor(factor);
}

void
Cluster::clearSlowServers()
{
    for (auto &s : servers_)
        s->setSlowFactor(1.0);
}

void
Cluster::setAllFrequenciesMhz(double mhz)
{
    for (auto &s : servers_)
        s->setFrequencyMhz(mhz);
}

double
Cluster::averageUtilization() const
{
    if (servers_.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &s : servers_)
        total += s->utilizationAvg();
    return total / static_cast<double>(servers_.size());
}

void
Cluster::statResetAll()
{
    for (auto &s : servers_)
        s->statReset();
}

} // namespace uqsim::cpu
