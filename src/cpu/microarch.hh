/**
 * @file
 * Analytical top-down microarchitecture model.
 *
 * The paper characterizes each microservice with vTune: top-down cycle
 * breakdown and IPC (Fig 10), L1-i MPKI (Fig 11) and OS/user/library
 * shares (Fig 14). Those are *static* properties of each binary on a
 * given core. We reproduce them with a small analytical model driven by
 * a per-service ServiceProfile: instruction footprint, branch entropy,
 * memory intensity and kernel/library shares. The same model feeds the
 * dynamic simulation: the effective IPC it derives converts work cycles
 * into execution time on a specific CoreModel, which is how
 * brawny-vs-wimpy (Fig 13) and frequency scaling (Fig 12) emerge.
 */

#ifndef UQSIM_CPU_MICROARCH_HH
#define UQSIM_CPU_MICROARCH_HH

#include <string>

#include "cpu/core_model.hh"

namespace uqsim::cpu {

/**
 * Static per-service characteristics that drive the microarchitecture
 * model. Values are calibrated per service in src/apps (see DESIGN.md).
 */
struct ServiceProfile
{
    /** Service name for reporting. */
    std::string name = "unnamed";

    /** Active instruction footprint in KiB (drives L1-i MPKI). */
    double codeFootprintKb = 128.0;

    /** Branch-behaviour irregularity in [0,1] (drives bad speculation). */
    double branchEntropy = 0.15;

    /** Data-memory boundness in [0,1] (drives back-end stalls). */
    double memIntensity = 0.30;

    /** Fraction of cycles executed in kernel mode (TCP, syscalls). */
    double kernelShare = 0.30;

    /** Fraction of cycles executed in shared libraries. */
    double libShare = 0.25;

    /**
     * Fraction of handler *service time* spent blocked on I/O rather
     * than computing (e.g. ~0.8 for MongoDB). I/O time does not
     * stretch when frequency drops - the mechanism behind MongoDB
     * tolerating minimum frequency in Fig 12.
     */
    double ioBoundFraction = 0.0;

    /** Implementation language, for Table-1 style metadata. */
    std::string language = "C++";
};

/** Top-down cycle accounting, fractions summing to 1. */
struct CycleBreakdown
{
    double frontend = 0.0;  ///< Fetch/i-cache/decode stalls.
    double badSpec = 0.0;   ///< Branch misprediction recovery.
    double backend = 0.0;   ///< Data memory / execution stalls.
    double retiring = 0.0;  ///< Usefully committed work.
};

/** OS/user/library attribution (Fig 14), fractions summing to 1. */
struct ModeBreakdown
{
    double kernel = 0.0;
    double user = 0.0;
    double libs = 0.0;
    double other = 0.0;
};

/**
 * Analytical model mapping (ServiceProfile, CoreModel) to the
 * microarchitectural metrics the paper reports.
 */
class MicroarchModel
{
  public:
    /**
     * L1 instruction-cache misses per kilo-instruction. Saturating in
     * footprint: tiny single-concern microservices stay near zero, the
     * monolith's multi-MiB footprint reaches the ~65-75 MPKI the paper
     * measures.
     */
    static double l1iMpki(const ServiceProfile &p, const CoreModel &core);

    /**
     * Cycles per instruction on the given core. In-order (wimpy) cores
     * cannot hide i-cache or memory stalls, which is what makes them
     * saturate early in Fig 13.
     */
    static double cpi(const ServiceProfile &p, const CoreModel &core);

    /** Effective instructions-per-cycle: 1 / cpi(). */
    static double effectiveIpc(const ServiceProfile &p,
                               const CoreModel &core);

    /** Top-down cycle breakdown (Fig 10). */
    static CycleBreakdown cycleBreakdown(const ServiceProfile &p,
                                         const CoreModel &core);

    /**
     * Cycle attribution to kernel/user/libs (Fig 14, "C" columns).
     */
    static ModeBreakdown cycleModes(const ServiceProfile &p);

    /**
     * Instruction attribution to kernel/user/libs (Fig 14, "I"
     * columns): kernel instructions are fewer than kernel cycles
     * (kernel code stalls more), so the instruction share shifts
     * toward user code.
     */
    static ModeBreakdown instructionModes(const ServiceProfile &p);

  private:
    // Model constants (single place for calibration).
    // L1-i misses mostly hit in L2 and are partially overlapped by
    // next-line prefetch, so the *exposed* cost per miss is well below
    // the raw L2 latency.
    static constexpr double kL1iMissCycles = 8.0;   ///< exposed miss cost
    static constexpr double kMemStallCpi = 3.0;     ///< per-unit intensity
    static constexpr double kBranchCpi = 0.30;      ///< per-unit entropy
    static constexpr double kKernelCpi = 2.0;       ///< per-unit share
    static constexpr double kInOrderStallMult = 2.2;
    static constexpr double kMaxMpki = 75.0;
    static constexpr double kFootprintScaleKb = 1200.0;
};

} // namespace uqsim::cpu

#endif // UQSIM_CPU_MICROARCH_HH
