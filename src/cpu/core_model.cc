#include "cpu/core_model.hh"

namespace uqsim::cpu {

CoreModel
CoreModel::xeon()
{
    CoreModel m;
    m.name = "Xeon";
    m.issueWidth = 4.0;
    m.inOrder = false;
    m.stallHiding = 0.45;
    m.nominalFreqMhz = 2400.0;
    m.minFreqMhz = 1000.0;
    m.coresPerServer = 40;
    m.l1iCapacityKb = 32.0;
    return m;
}

CoreModel
CoreModel::xeonAt1800()
{
    CoreModel m = xeon();
    m.name = "Xeon@1.8";
    m.nominalFreqMhz = 1800.0;
    return m;
}

CoreModel
CoreModel::thunderx()
{
    CoreModel m;
    m.name = "ThunderX";
    m.issueWidth = 2.0;
    m.inOrder = true;
    m.stallHiding = 0.0;
    m.nominalFreqMhz = 1800.0;
    m.minFreqMhz = 1800.0;
    m.coresPerServer = 96;
    m.l1iCapacityKb = 78.0; // 78KB I-cache per ThunderX core
    return m;
}

CoreModel
CoreModel::edgeArm()
{
    CoreModel m;
    m.name = "EdgeARM";
    m.issueWidth = 2.0;
    m.inOrder = true;
    m.stallHiding = 0.0;
    m.nominalFreqMhz = 1000.0;
    m.minFreqMhz = 600.0;
    m.coresPerServer = 4;
    m.l1iCapacityKb = 32.0;
    return m;
}

CoreModel
CoreModel::ec2C5()
{
    CoreModel m = xeon();
    m.name = "c5.18xlarge";
    m.nominalFreqMhz = 3000.0;
    m.coresPerServer = 72;
    return m;
}

} // namespace uqsim::cpu
