/**
 * @file
 * Span model for the Dapper/Zipkin-style distributed tracer (Sec 3.7).
 *
 * The paper's tracing system timestamps every RPC on arrival at and
 * departure from each microservice, associates RPCs belonging to the
 * same end-to-end request, and records traces centrally. A Span here
 * is the server-side view of one RPC: queueing, application compute,
 * network processing and downstream wait are recorded separately so
 * the analysis module can regenerate Figs 3, 14 and 15.
 */

#ifndef UQSIM_TRACE_SPAN_HH
#define UQSIM_TRACE_SPAN_HH

#include <cstdint>
#include <type_traits>

#include "core/types.hh"

namespace uqsim::trace {

/** Identifies one end-to-end user request. */
using TraceId = std::uint64_t;

/** Identifies one RPC within a trace. */
using SpanId = std::uint64_t;

/** Sentinel parent for root spans. */
constexpr SpanId kNoParent = 0;

/**
 * Interned service-name id, allocated by TraceStore::intern(). Spans
 * carry the id rather than the name so recording a span on the hot
 * path never allocates; names are resolved back through the store.
 */
using ServiceId = std::uint32_t;

/** Sentinel for "no service name attached". */
constexpr ServiceId kNoService = 0xffffffffu;

/**
 * Terminal outcome of one RPC (or one attempt of it). Ok is the value
 * zero so legacy spans — and the exporters' "only emit when non-default"
 * rule — need no migration.
 */
enum class SpanStatus : std::uint8_t
{
    Ok = 0,
    Error,             ///< injected or application-level failure
    Timeout,           ///< per-attempt RPC timer expired
    DeadlineExceeded,  ///< end-to-end deadline passed
    Crashed,           ///< serving instance crashed mid-flight
    Overflow,          ///< instance queue full (resilient path)
    Shed,              ///< load shedding at a saturated tier
    BreakerOpen,       ///< circuit breaker refused the call
    PoolTimeout,       ///< connection-pool acquire timed out
    Unreachable,       ///< no active instance to route to
    Throttled,         ///< admission token bucket refused the class
    StaleRead,         ///< freshness requirement unsatisfiable (replica)
    TxnAborted,        ///< multi-partition transaction aborted (2PC)
    QuorumLost,        ///< replica group below write/election quorum
};

/** @return a short printable status name ("ok", "timeout", ...). */
inline const char *
spanStatusName(SpanStatus s)
{
    switch (s) {
      case SpanStatus::Ok:
        return "ok";
      case SpanStatus::Error:
        return "error";
      case SpanStatus::Timeout:
        return "timeout";
      case SpanStatus::DeadlineExceeded:
        return "deadline_exceeded";
      case SpanStatus::Crashed:
        return "crashed";
      case SpanStatus::Overflow:
        return "overflow";
      case SpanStatus::Shed:
        return "shed";
      case SpanStatus::BreakerOpen:
        return "breaker_open";
      case SpanStatus::PoolTimeout:
        return "pool_timeout";
      case SpanStatus::Unreachable:
        return "unreachable";
      case SpanStatus::Throttled:
        return "throttled";
      case SpanStatus::StaleRead:
        return "stale_read";
      case SpanStatus::TxnAborted:
        return "txn_aborted";
      case SpanStatus::QuorumLost:
        return "quorum_lost";
    }
    return "unknown";
}

/**
 * Server-side record of a single RPC. Plain trivially-copyable data:
 * the ring-buffer store overwrites slots in place.
 */
struct Span
{
    TraceId traceId = 0;
    SpanId spanId = 0;
    SpanId parentSpanId = kNoParent;

    /** Microservice that served the RPC (interned name id). */
    ServiceId service = kNoService;

    /** Instance index within the service. */
    unsigned instance = 0;

    /** Query type index of the enclosing end-to-end request. */
    unsigned queryType = 0;

    /** RPC arrival at the service (after kernel receive). */
    Tick start = 0;

    /** Response departure from the service. */
    Tick end = 0;

    /** Time waiting for a free worker thread. */
    Tick queueTime = 0;

    /** Time in handler computation (incl. I/O wait). */
    Tick appTime = 0;

    /**
     * Time in network processing attributable to this RPC at this
     * service: kernel TCP cycles, (de)serialization, NIC queueing and
     * wire time of downstream calls.
     */
    Tick networkTime = 0;

    /** Time blocked waiting on downstream RPC responses. */
    Tick downstreamWait = 0;

    /** Terminal outcome (SpanStatus; Ok for successful RPCs). */
    std::uint8_t status = 0;

    /** 1-based attempt number of the RPC this span records. */
    std::uint8_t attempt = 1;

    /**
     * Keyed data-tier accesses made by this handler: cache hits and
     * misses (saturating at 255). Zero on non-keyed runs, so the
     * exporters' emit-when-non-default rule keeps legacy output
     * byte-identical.
     */
    std::uint8_t dataHits = 0;
    std::uint8_t dataMisses = 0;

    /**
     * QoS class of the enclosing request (service::QosClass value).
     * Zero — user-facing — on runs without admission control, keeping
     * legacy exporter output byte-identical.
     */
    std::uint8_t qosClass = 0;

    /** Total server-side latency. */
    Tick duration() const { return end - start; }

    /** @return the typed outcome. */
    SpanStatus statusEnum() const
    {
        return static_cast<SpanStatus>(status);
    }

    /** @return true if the RPC ended in any non-Ok outcome. */
    bool failed() const { return status != 0; }
};

static_assert(std::is_trivially_copyable_v<Span>,
              "Span must stay trivially copyable: the ring-buffer "
              "store relies on cheap slot overwrites");

} // namespace uqsim::trace

#endif // UQSIM_TRACE_SPAN_HH
