#include "trace/collector.hh"

#include <algorithm>

namespace uqsim::trace {

void
TraceStore::insert(const Span &span)
{
    const std::size_t idx = spans_.size();
    spans_.push_back(span);
    byTrace_[span.traceId].push_back(idx);
    byService_[span.service].push_back(idx);
}

std::vector<Span>
TraceStore::byTrace(TraceId id) const
{
    std::vector<Span> out;
    auto it = byTrace_.find(id);
    if (it == byTrace_.end())
        return out;
    out.reserve(it->second.size());
    for (std::size_t idx : it->second)
        out.push_back(spans_[idx]);
    return out;
}

const std::vector<std::size_t> &
TraceStore::byService(const std::string &svc) const
{
    auto it = byService_.find(svc);
    return it == byService_.end() ? empty_ : it->second;
}

std::vector<std::string>
TraceStore::services() const
{
    std::vector<std::string> out;
    out.reserve(byService_.size());
    for (const auto &[name, idxs] : byService_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

void
TraceStore::clear()
{
    spans_.clear();
    byTrace_.clear();
    byService_.clear();
}

void
Collector::collect(const Span &span)
{
    ++offered_;
    if (!enabled_)
        return;
    if (offered_ % sampleEvery_ != 0)
        return;
    store_.insert(span);
}

} // namespace uqsim::trace
