#include "trace/collector.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::trace {

TraceStore::TraceStore(std::size_t capacity)
{
    setCapacity(capacity);
}

ServiceId
TraceStore::intern(const std::string &name)
{
    auto it = idByName_.find(name);
    if (it != idByName_.end())
        return it->second;
    const ServiceId id = static_cast<ServiceId>(names_.size());
    names_.push_back(name);
    idByName_.emplace(name, id);
    return id;
}

ServiceId
TraceStore::serviceId(const std::string &name) const
{
    auto it = idByName_.find(name);
    return it == idByName_.end() ? kNoService : it->second;
}

const std::string &
TraceStore::serviceName(ServiceId id) const
{
    if (id >= names_.size())
        fatal(strCat("TraceStore::serviceName: invalid id ", id));
    return names_[id];
}

void
TraceStore::insert(const Span &span)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(span);
    } else {
        // Full: overwrite the oldest slot and advance the head.
        ring_[head_] = span;
        head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
        ++evicted_;
    }
    ++inserted_;
    indexDirty_ = true;
}

const Span &
TraceStore::at(std::size_t i) const
{
    const std::size_t pos = head_ + i;
    return ring_[pos < ring_.size() ? pos : pos - ring_.size()];
}

void
TraceStore::rebuildIndices() const
{
    byTrace_.clear();
    byService_.assign(names_.size(), {});
    for (std::size_t i = 0; i < size(); ++i) {
        const Span &sp = at(i);
        byTrace_[sp.traceId].push_back(i);
        if (sp.service < byService_.size())
            byService_[sp.service].push_back(i);
    }
    indexDirty_ = false;
}

std::vector<Span>
TraceStore::byTrace(TraceId id) const
{
    if (indexDirty_)
        rebuildIndices();
    std::vector<Span> out;
    auto it = byTrace_.find(id);
    if (it == byTrace_.end())
        return out;
    out.reserve(it->second.size());
    for (std::size_t idx : it->second)
        out.push_back(at(idx));
    return out;
}

const std::vector<std::size_t> &
TraceStore::byService(ServiceId id) const
{
    if (indexDirty_)
        rebuildIndices();
    return id < byService_.size() ? byService_[id] : empty_;
}

const std::vector<std::size_t> &
TraceStore::byService(const std::string &svc) const
{
    return byService(serviceId(svc));
}

std::vector<std::string>
TraceStore::services() const
{
    if (indexDirty_)
        rebuildIndices();
    std::vector<std::string> out;
    for (ServiceId id = 0; id < byService_.size(); ++id)
        if (!byService_[id].empty())
            out.push_back(names_[id]);
    std::sort(out.begin(), out.end());
    return out;
}

void
TraceStore::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        fatal("TraceStore capacity must be at least 1");
    if (capacity < ring_.size()) {
        // Keep the newest `capacity` spans, oldest first.
        std::vector<Span> kept;
        kept.reserve(capacity);
        const std::size_t drop = ring_.size() - capacity;
        for (std::size_t i = drop; i < ring_.size(); ++i)
            kept.push_back(at(i));
        evicted_ += drop;
        ring_ = std::move(kept);
        head_ = 0;
        indexDirty_ = true;
    } else if (head_ != 0) {
        // Growing a wrapped ring: linearize so new pushes append.
        std::vector<Span> lin;
        lin.reserve(ring_.size());
        for (std::size_t i = 0; i < ring_.size(); ++i)
            lin.push_back(at(i));
        ring_ = std::move(lin);
        head_ = 0;
        indexDirty_ = true;
    }
    capacity_ = capacity;
}

void
TraceStore::clear()
{
    ring_.clear();
    head_ = 0;
    evicted_ = 0;
    inserted_ = 0;
    byTrace_.clear();
    byService_.clear();
    indexDirty_ = false;
}

namespace {

/** splitmix64 finalizer: decorrelates sequential trace ids. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

bool
Collector::sampled(TraceId id) const
{
    if (sampleEvery_ <= 1)
        return true;
    // Deterministic per-trace decision: every span of a trace agrees,
    // so sampled stores only ever hold complete traces.
    return mix64(id) % sampleEvery_ == 0;
}

void
Collector::collect(const Span &span)
{
    offered_->inc();
    if (!enabled_)
        return;
    if (!sampled(span.traceId)) {
        sampledOut_->inc();
        return;
    }
    stored_->inc();
    store_.insert(span);
}

void
Collector::bindMetrics(MetricsRegistry &metrics)
{
    Counter &off = metrics.counter("trace.spans_offered");
    Counter &out = metrics.counter("trace.spans_sampled_out");
    Counter &sto = metrics.counter("trace.spans_stored");
    off.inc(offered_->value());
    out.inc(sampledOut_->value());
    sto.inc(stored_->value());
    offered_ = &off;
    sampledOut_ = &out;
    stored_ = &sto;
}

} // namespace uqsim::trace
