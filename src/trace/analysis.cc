#include "trace/analysis.hh"

#include <algorithm>
#include <unordered_map>

namespace uqsim::trace {

ServiceSummary
TraceAnalysis::summarize(const std::string &name,
                         const std::vector<std::size_t> &idxs) const
{
    ServiceSummary s;
    s.service = name;
    if (idxs.empty())
        return s;

    Histogram lat;
    double net_share = 0.0, app_share = 0.0, queue_share = 0.0,
           down_share = 0.0;
    double net_ns = 0.0, app_ns = 0.0, mean_us = 0.0;
    for (std::size_t idx : idxs) {
        const Span &sp = store_.spans()[idx];
        const double dur =
            std::max<double>(1.0, static_cast<double>(sp.duration()));
        lat.record(sp.duration());
        net_share += static_cast<double>(sp.networkTime) / dur;
        app_share += static_cast<double>(sp.appTime) / dur;
        queue_share += static_cast<double>(sp.queueTime) / dur;
        down_share += static_cast<double>(sp.downstreamWait) / dur;
        net_ns += static_cast<double>(sp.networkTime);
        app_ns += static_cast<double>(sp.appTime);
        mean_us += ticksToUs(sp.duration());
    }
    const double n = static_cast<double>(idxs.size());
    s.spanCount = idxs.size();
    s.meanLatencyUs = mean_us / n;
    s.p99LatencyNs = lat.p99();
    s.networkShare = std::min(1.0, net_share / n);
    s.appShare = std::min(1.0, app_share / n);
    s.queueShare = std::min(1.0, queue_share / n);
    s.downstreamShare = std::min(1.0, down_share / n);
    s.meanNetworkNs = net_ns / n;
    s.meanAppNs = app_ns / n;
    return s;
}

std::vector<ServiceSummary>
TraceAnalysis::perService() const
{
    std::vector<ServiceSummary> out;
    for (const auto &name : store_.services())
        out.push_back(summarize(name, store_.byService(name)));
    return out;
}

ServiceSummary
TraceAnalysis::forService(const std::string &service) const
{
    return summarize(service, store_.byService(service));
}

double
TraceAnalysis::endToEndNetworkShare() const
{
    // Group spans by trace, find the root, and compare the sum of
    // network time across the trace with the root duration.
    std::unordered_map<TraceId, double> net_by_trace;
    std::unordered_map<TraceId, double> root_dur;
    for (const Span &sp : store_.spans()) {
        net_by_trace[sp.traceId] += static_cast<double>(sp.networkTime);
        if (sp.parentSpanId == kNoParent)
            root_dur[sp.traceId] = std::max<double>(
                1.0, static_cast<double>(sp.duration()));
    }
    if (root_dur.empty())
        return 0.0;
    double total = 0.0;
    std::size_t n = 0;
    for (const auto &[trace, dur] : root_dur) {
        auto it = net_by_trace.find(trace);
        if (it == net_by_trace.end())
            continue;
        total += std::min(1.0, it->second / dur);
        ++n;
    }
    return n ? total / static_cast<double>(n) : 0.0;
}

Histogram
TraceAnalysis::endToEndLatency() const
{
    Histogram h;
    for (const Span &sp : store_.spans())
        if (sp.parentSpanId == kNoParent)
            h.record(sp.duration());
    return h;
}

std::map<std::string, double>
TraceAnalysis::criticalPath() const
{
    // Exclusive-time attribution: each span is charged its duration
    // minus the time covered by its children (clamped at zero for
    // parallel fan-outs whose children overlap the parent fully).
    std::unordered_map<SpanId, Tick> child_time;
    for (const Span &sp : store_.spans())
        if (sp.parentSpanId != kNoParent)
            child_time[sp.parentSpanId] += sp.duration();

    std::map<std::string, double> total;
    std::size_t n_traces = 0;
    for (const Span &sp : store_.spans()) {
        if (sp.parentSpanId == kNoParent)
            ++n_traces;
        const Tick children = child_time.count(sp.spanId)
                                  ? child_time[sp.spanId]
                                  : 0;
        const Tick exclusive =
            sp.duration() > children ? sp.duration() - children : 0;
        total[sp.service] += static_cast<double>(exclusive);
    }
    if (n_traces == 0)
        return total;
    for (auto &[svc, ns] : total)
        ns /= static_cast<double>(n_traces);
    return total;
}

} // namespace uqsim::trace
