#include "trace/analysis.hh"

#include <algorithm>
#include <unordered_map>

namespace uqsim::trace {

ServiceSummary
TraceAnalysis::summarize(const std::string &name,
                         const std::vector<std::size_t> &idxs) const
{
    ServiceSummary s;
    s.service = name;
    if (idxs.empty())
        return s;

    Histogram lat;
    double net_share = 0.0, app_share = 0.0, queue_share = 0.0,
           down_share = 0.0;
    double net_ns = 0.0, app_ns = 0.0, mean_us = 0.0;
    for (std::size_t idx : idxs) {
        const Span &sp = store_.at(idx);
        const double dur =
            std::max<double>(1.0, static_cast<double>(sp.duration()));
        lat.record(sp.duration());
        net_share += static_cast<double>(sp.networkTime) / dur;
        app_share += static_cast<double>(sp.appTime) / dur;
        queue_share += static_cast<double>(sp.queueTime) / dur;
        down_share += static_cast<double>(sp.downstreamWait) / dur;
        net_ns += static_cast<double>(sp.networkTime);
        app_ns += static_cast<double>(sp.appTime);
        mean_us += ticksToUs(sp.duration());
    }
    const double n = static_cast<double>(idxs.size());
    s.spanCount = idxs.size();
    s.meanLatencyUs = mean_us / n;
    s.p99LatencyNs = lat.p99();
    s.networkShare = std::min(1.0, net_share / n);
    s.appShare = std::min(1.0, app_share / n);
    s.queueShare = std::min(1.0, queue_share / n);
    s.downstreamShare = std::min(1.0, down_share / n);
    s.meanNetworkNs = net_ns / n;
    s.meanAppNs = app_ns / n;
    return s;
}

std::vector<ServiceSummary>
TraceAnalysis::perService() const
{
    std::vector<ServiceSummary> out;
    for (const auto &name : store_.services())
        out.push_back(summarize(name, store_.byService(name)));
    return out;
}

ServiceSummary
TraceAnalysis::forService(const std::string &service) const
{
    return summarize(service, store_.byService(service));
}

double
TraceAnalysis::endToEndNetworkShare() const
{
    // Group spans by trace, find the root, and compare the sum of
    // network time across the trace with the root duration.
    std::unordered_map<TraceId, double> net_by_trace;
    std::unordered_map<TraceId, double> root_dur;
    for (const Span &sp : store_.spans()) {
        net_by_trace[sp.traceId] += static_cast<double>(sp.networkTime);
        if (sp.parentSpanId == kNoParent)
            root_dur[sp.traceId] = std::max<double>(
                1.0, static_cast<double>(sp.duration()));
    }
    if (root_dur.empty())
        return 0.0;
    double total = 0.0;
    std::size_t n = 0;
    for (const auto &[trace, dur] : root_dur) {
        auto it = net_by_trace.find(trace);
        if (it == net_by_trace.end())
            continue;
        total += std::min(1.0, it->second / dur);
        ++n;
    }
    return n ? total / static_cast<double>(n) : 0.0;
}

Histogram
TraceAnalysis::endToEndLatency() const
{
    Histogram h;
    for (const Span &sp : store_.spans())
        if (sp.parentSpanId == kNoParent)
            h.record(sp.duration());
    return h;
}

std::map<std::string, double>
TraceAnalysis::criticalPath() const
{
    std::map<std::string, double> out;
    for (const CriticalPathEntry &e : criticalPathBreakdown())
        out[e.service] = e.exclusiveNs;
    return out;
}

std::vector<CriticalPathEntry>
TraceAnalysis::criticalPathBreakdown() const
{
    // Exclusive-time attribution: each span is charged its duration
    // minus the time covered by its children (clamped at zero for
    // parallel fan-outs whose children overlap the parent fully),
    // with the span's own component accounting riding along.
    std::unordered_map<SpanId, Tick> child_time;
    for (const Span &sp : store_.spans())
        if (sp.parentSpanId != kNoParent)
            child_time[sp.parentSpanId] += sp.duration();

    std::map<std::string, CriticalPathEntry> by_service;
    std::size_t n_traces = 0;
    for (const Span &sp : store_.spans()) {
        if (sp.parentSpanId == kNoParent)
            ++n_traces;
        auto ct = child_time.find(sp.spanId);
        const Tick children = ct == child_time.end() ? 0 : ct->second;
        const Tick exclusive =
            sp.duration() > children ? sp.duration() - children : 0;
        const std::string &name = sp.service == kNoService
                                      ? std::string("?")
                                      : store_.serviceName(sp.service);
        CriticalPathEntry &e = by_service[name];
        e.service = name;
        e.exclusiveNs += static_cast<double>(exclusive);
        e.queueNs += static_cast<double>(sp.queueTime);
        e.appNs += static_cast<double>(sp.appTime);
        e.networkNs += static_cast<double>(sp.networkTime);
        e.downstreamNs += static_cast<double>(sp.downstreamWait);
    }

    std::vector<CriticalPathEntry> out;
    out.reserve(by_service.size());
    for (auto &[name, e] : by_service) {
        if (n_traces > 0) {
            const double n = static_cast<double>(n_traces);
            e.exclusiveNs /= n;
            e.queueNs /= n;
            e.appNs /= n;
            e.networkNs /= n;
            e.downstreamNs /= n;
        }
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(),
              [](const CriticalPathEntry &a, const CriticalPathEntry &b) {
                  if (a.exclusiveNs != b.exclusiveNs)
                      return a.exclusiveNs > b.exclusiveNs;
                  return a.service < b.service;
              });
    return out;
}

std::vector<TraceHop>
TraceAnalysis::traceBreakdown(TraceId id) const
{
    const std::vector<Span> spans = store_.byTrace(id);

    std::unordered_map<SpanId, Tick> child_time;
    std::unordered_map<SpanId, SpanId> parent_of;
    for (const Span &sp : spans) {
        parent_of[sp.spanId] = sp.parentSpanId;
        if (sp.parentSpanId != kNoParent)
            child_time[sp.parentSpanId] += sp.duration();
    }

    std::vector<TraceHop> out;
    out.reserve(spans.size());
    for (const Span &sp : spans) {
        TraceHop hop;
        hop.span = sp;
        auto ct = child_time.find(sp.spanId);
        const Tick children = ct == child_time.end() ? 0 : ct->second;
        hop.exclusiveNs =
            sp.duration() > children ? sp.duration() - children : 0;
        // Walk up to the root; a missing parent (evicted or sampled
        // out) terminates the walk, as does a cycle guard.
        SpanId cur = sp.parentSpanId;
        while (cur != kNoParent && hop.depth <= spans.size()) {
            auto it = parent_of.find(cur);
            if (it == parent_of.end())
                break;
            ++hop.depth;
            cur = it->second;
        }
        out.push_back(hop);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceHop &a, const TraceHop &b) {
                  if (a.span.start != b.span.start)
                      return a.span.start < b.span.start;
                  return a.span.spanId < b.span.spanId;
              });
    return out;
}

} // namespace uqsim::trace
