/**
 * @file
 * JSON exports of collected traces.
 *
 * Two renderings of a TraceStore:
 *  - Zipkin v2 span arrays, as the paper's tracing system stores spans
 *    "similarly to the Zipkin collector" (inspect with Zipkin UI,
 *    jaeger, or plain jq);
 *  - Chrome trace_event JSON, which https://ui.perfetto.dev opens
 *    directly: each trace becomes a process, each service a named
 *    thread, and each span a complete ("X") event carrying its
 *    queue/app/network/downstream breakdown in args.
 */

#ifndef UQSIM_TRACE_EXPORT_HH
#define UQSIM_TRACE_EXPORT_HH

#include <ostream>
#include <string>

#include "trace/collector.hh"

namespace uqsim::trace {

/**
 * Render up to @p max_spans spans as a Zipkin v2 JSON array.
 * Timestamps and durations are microseconds, as Zipkin expects.
 * @param store     span source
 * @param os        destination stream
 * @param max_spans cap on exported spans (0 = all)
 */
void exportZipkinJson(const TraceStore &store, std::ostream &os,
                      std::size_t max_spans = 0);

/** Convenience wrapper returning a string. */
std::string toZipkinJson(const TraceStore &store,
                         std::size_t max_spans = 0);

/**
 * Render up to @p max_spans spans as Chrome trace_event JSON for
 * ui.perfetto.dev / chrome://tracing. Timestamps are microseconds.
 * Includes process/thread metadata so traces and services are
 * labelled, and a trailing record of the store's eviction accounting.
 *
 * @p extra_events, when non-empty, is appended verbatim inside the
 * traceEvents array: a comma-separated sequence of complete JSON
 * event objects with no leading or trailing comma. This is how the
 * obs layer adds its counter ("ph":"C") tracks without the trace
 * library depending on it.
 */
void exportPerfettoJson(const TraceStore &store, std::ostream &os,
                        std::size_t max_spans = 0,
                        const std::string &extra_events = {});

/** Convenience wrapper returning a string. */
std::string toPerfettoJson(const TraceStore &store,
                           std::size_t max_spans = 0,
                           const std::string &extra_events = {});

/**
 * Render a whole run as one JSON object: the simulator's execution
 * digest (see Simulator::executionDigest()) plus the span array. The
 * digest field lets an exported trace assert which exact event
 * sequence produced it, so archived traces are re-checkable.
 */
void exportRunJson(const TraceStore &store,
                   std::uint64_t execution_digest, std::ostream &os,
                   std::size_t max_spans = 0);

/** Convenience wrapper returning a string. */
std::string toRunJson(const TraceStore &store,
                      std::uint64_t execution_digest,
                      std::size_t max_spans = 0);

} // namespace uqsim::trace

#endif // UQSIM_TRACE_EXPORT_HH
