/**
 * @file
 * Offline trace analysis: the queries the paper runs over its tracing
 * database to produce Figs 3, 15 and the Sec 7 latency breakdowns.
 */

#ifndef UQSIM_TRACE_ANALYSIS_HH
#define UQSIM_TRACE_ANALYSIS_HH

#include <map>
#include <string>
#include <vector>

#include "core/histogram.hh"
#include "trace/collector.hh"
#include "trace/span.hh"

namespace uqsim::trace {

/** Aggregated per-service view over a set of traces. */
struct ServiceSummary
{
    std::string service;
    std::uint64_t spanCount = 0;
    double meanLatencyUs = 0.0;
    std::uint64_t p99LatencyNs = 0;
    /** Mean share of span time spent in network processing [0,1]. */
    double networkShare = 0.0;
    /** Mean share in application compute [0,1]. */
    double appShare = 0.0;
    /** Mean share queued for a worker thread [0,1]. */
    double queueShare = 0.0;
    /** Mean share blocked on downstream RPCs [0,1]. */
    double downstreamShare = 0.0;
    /** Mean absolute network processing time per span (ns). */
    double meanNetworkNs = 0.0;
    /** Mean absolute application time per span (ns). */
    double meanAppNs = 0.0;
};

/**
 * Analysis over a TraceStore.
 */
class TraceAnalysis
{
  public:
    explicit TraceAnalysis(const TraceStore &store) : store_(store) {}

    /** Per-service summary, ordered by service name. */
    std::vector<ServiceSummary> perService() const;

    /** Summary restricted to one service. */
    ServiceSummary forService(const std::string &service) const;

    /**
     * End-to-end network-processing share: for each trace, total
     * network time across spans / end-to-end (root span) latency;
     * returns the mean across traces. This is Fig 3's red fraction.
     */
    double endToEndNetworkShare() const;

    /** Histogram of root-span (end-to-end) latencies. */
    Histogram endToEndLatency() const;

    /**
     * Critical-path service attribution: walks each trace's span tree
     * and charges each tick of the root span to the deepest span
     * covering it; returns mean ns charged per service.
     */
    std::map<std::string, double> criticalPath() const;

  private:
    ServiceSummary summarize(const std::string &name,
                             const std::vector<std::size_t> &idxs) const;

    const TraceStore &store_;
};

} // namespace uqsim::trace

#endif // UQSIM_TRACE_ANALYSIS_HH
