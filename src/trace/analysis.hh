/**
 * @file
 * Offline trace analysis: the queries the paper runs over its tracing
 * database to produce Figs 3, 15 and the Sec 7 latency breakdowns,
 * plus per-trace critical-path breakdowns for the Perfetto export.
 */

#ifndef UQSIM_TRACE_ANALYSIS_HH
#define UQSIM_TRACE_ANALYSIS_HH

#include <map>
#include <string>
#include <vector>

#include "core/histogram.hh"
#include "trace/collector.hh"
#include "trace/span.hh"

namespace uqsim::trace {

/** Aggregated per-service view over a set of traces. */
struct ServiceSummary
{
    std::string service;
    std::uint64_t spanCount = 0;
    double meanLatencyUs = 0.0;
    std::uint64_t p99LatencyNs = 0;
    /** Mean share of span time spent in network processing [0,1]. */
    double networkShare = 0.0;
    /** Mean share in application compute [0,1]. */
    double appShare = 0.0;
    /** Mean share queued for a worker thread [0,1]. */
    double queueShare = 0.0;
    /** Mean share blocked on downstream RPCs [0,1]. */
    double downstreamShare = 0.0;
    /** Mean absolute network processing time per span (ns). */
    double meanNetworkNs = 0.0;
    /** Mean absolute application time per span (ns). */
    double meanAppNs = 0.0;
};

/**
 * Per-service critical-path attribution with per-hop component
 * breakdown, averaged over traces (all values ns/trace).
 */
struct CriticalPathEntry
{
    std::string service;
    /** Exclusive (critical-path) time charged to this service. */
    double exclusiveNs = 0.0;
    /** Time its spans spent waiting for a worker thread. */
    double queueNs = 0.0;
    /** Time in handler computation. */
    double appNs = 0.0;
    /** Time in network processing (TCP, serialization, NIC, wire). */
    double networkNs = 0.0;
    /** Time blocked on downstream RPCs. */
    double downstreamNs = 0.0;
};

/** One RPC hop of a single trace, with exclusive-time attribution. */
struct TraceHop
{
    Span span;
    /** Span duration minus time covered by its children (clamped). */
    Tick exclusiveNs = 0;
    /** Depth below the root span (root = 0). */
    unsigned depth = 0;
};

/**
 * Analysis over a TraceStore.
 */
class TraceAnalysis
{
  public:
    explicit TraceAnalysis(const TraceStore &store) : store_(store) {}

    /** Per-service summary, ordered by service name. */
    std::vector<ServiceSummary> perService() const;

    /** Summary restricted to one service. */
    ServiceSummary forService(const std::string &service) const;

    /**
     * End-to-end network-processing share: for each trace, total
     * network time across spans / end-to-end (root span) latency;
     * returns the mean across traces. This is Fig 3's red fraction.
     */
    double endToEndNetworkShare() const;

    /** Histogram of root-span (end-to-end) latencies. */
    Histogram endToEndLatency() const;

    /**
     * Critical-path service attribution: charges each span its
     * exclusive time (duration minus children, clamped at zero for
     * overlapping fan-outs); returns mean ns charged per service.
     */
    std::map<std::string, double> criticalPath() const;

    /**
     * criticalPath() extended with per-hop queue/app/network/
     * downstream attribution, ordered by exclusive time descending.
     */
    std::vector<CriticalPathEntry> criticalPathBreakdown() const;

    /**
     * The hops of one trace with exclusive-time and depth
     * attribution, ordered by (start, spanId) — a request's life,
     * ready to print or export.
     */
    std::vector<TraceHop> traceBreakdown(TraceId id) const;

  private:
    ServiceSummary summarize(const std::string &name,
                             const std::vector<std::size_t> &idxs) const;

    const TraceStore &store_;
};

} // namespace uqsim::trace

#endif // UQSIM_TRACE_ANALYSIS_HH
