#include "trace/export.hh"

#include <iomanip>
#include <sstream>

#include "core/types.hh"

namespace uqsim::trace {

namespace {

/** Zipkin ids are lower-case hex strings. */
std::string
hexId(std::uint64_t id)
{
    std::ostringstream oss;
    oss << std::hex << std::setw(16) << std::setfill('0') << id;
    return oss.str();
}

void
emitSpan(std::ostream &os, const Span &sp)
{
    os << "{\"traceId\":\"" << hexId(sp.traceId) << "\""
       << ",\"id\":\"" << hexId(sp.spanId) << "\"";
    if (sp.parentSpanId != kNoParent)
        os << ",\"parentId\":\"" << hexId(sp.parentSpanId) << "\"";
    os << ",\"name\":\"" << sp.service << "\""
       << ",\"timestamp\":" << ticksToUs(sp.start)
       << ",\"duration\":" << ticksToUs(sp.duration())
       << ",\"localEndpoint\":{\"serviceName\":\"" << sp.service
       << "\"}"
       << ",\"tags\":{"
       << "\"instance\":\"" << sp.instance << "\""
       << ",\"queryType\":\"" << sp.queryType << "\""
       << ",\"queueUs\":\"" << ticksToUs(sp.queueTime) << "\""
       << ",\"appUs\":\"" << ticksToUs(sp.appTime) << "\""
       << ",\"networkUs\":\"" << ticksToUs(sp.networkTime) << "\""
       << "}}";
}

} // namespace

void
exportZipkinJson(const TraceStore &store, std::ostream &os,
                 std::size_t max_spans)
{
    const auto &spans = store.spans();
    const std::size_t n = max_spans == 0
                              ? spans.size()
                              : std::min(max_spans, spans.size());
    os << "[";
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            os << ",\n ";
        emitSpan(os, spans[i]);
    }
    os << "]\n";
}

std::string
toZipkinJson(const TraceStore &store, std::size_t max_spans)
{
    std::ostringstream oss;
    exportZipkinJson(store, oss, max_spans);
    return oss.str();
}

void
exportRunJson(const TraceStore &store, std::uint64_t execution_digest,
              std::ostream &os, std::size_t max_spans)
{
    os << "{\"executionDigest\":\"" << hexId(execution_digest)
       << "\",\"spans\":";
    exportZipkinJson(store, os, max_spans);
    os << "}\n";
}

std::string
toRunJson(const TraceStore &store, std::uint64_t execution_digest,
          std::size_t max_spans)
{
    std::ostringstream oss;
    exportRunJson(store, execution_digest, oss, max_spans);
    return oss.str();
}

} // namespace uqsim::trace
