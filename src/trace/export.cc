#include "trace/export.hh"

#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "core/types.hh"

namespace uqsim::trace {

namespace {

/** Zipkin ids are lower-case hex strings. */
std::string
hexId(std::uint64_t id)
{
    std::ostringstream oss;
    oss << std::hex << std::setw(16) << std::setfill('0') << id;
    return oss.str();
}

const std::string &
spanService(const TraceStore &store, const Span &sp)
{
    static const std::string unknown = "?";
    return sp.service == kNoService ? unknown
                                    : store.serviceName(sp.service);
}

/**
 * QoS class tag value. Mirrors service::qosClassName without a
 * dependency cycle (trace cannot include service); class 0 is
 * user-facing, which is also the legacy default and never emitted.
 */
const char *
qosClassTag(std::uint8_t cls)
{
    switch (cls) {
    case 1:
        return "batch";
    case 2:
        return "best-effort";
    default:
        return "user-facing";
    }
}

void
emitSpan(std::ostream &os, const TraceStore &store, const Span &sp)
{
    const std::string &service = spanService(store, sp);
    os << "{\"traceId\":\"" << hexId(sp.traceId) << "\""
       << ",\"id\":\"" << hexId(sp.spanId) << "\"";
    if (sp.parentSpanId != kNoParent)
        os << ",\"parentId\":\"" << hexId(sp.parentSpanId) << "\"";
    os << ",\"name\":\"" << service << "\""
       << ",\"timestamp\":" << ticksToUs(sp.start)
       << ",\"duration\":" << ticksToUs(sp.duration())
       << ",\"localEndpoint\":{\"serviceName\":\"" << service << "\"}"
       << ",\"tags\":{"
       << "\"instance\":\"" << sp.instance << "\""
       << ",\"queryType\":\"" << sp.queryType << "\""
       << ",\"queueUs\":\"" << ticksToUs(sp.queueTime) << "\""
       << ",\"appUs\":\"" << ticksToUs(sp.appTime) << "\""
       << ",\"networkUs\":\"" << ticksToUs(sp.networkTime) << "\"";
    if (sp.failed())
        os << ",\"error\":\"" << spanStatusName(sp.statusEnum()) << "\"";
    if (sp.attempt > 1)
        os << ",\"attempt\":\"" << unsigned{sp.attempt} << "\"";
    // Keyed-data accounting: zero on non-keyed runs, so legacy
    // exports stay byte-identical.
    if (sp.dataHits > 0)
        os << ",\"dataHits\":\"" << unsigned{sp.dataHits} << "\"";
    if (sp.dataMisses > 0)
        os << ",\"dataMisses\":\"" << unsigned{sp.dataMisses} << "\"";
    if (sp.qosClass > 0)
        os << ",\"qosClass\":\"" << qosClassTag(sp.qosClass) << "\"";
    os << "}}";
}

} // namespace

void
exportZipkinJson(const TraceStore &store, std::ostream &os,
                 std::size_t max_spans)
{
    const auto spans = store.spans();
    const std::size_t n = max_spans == 0
                              ? spans.size()
                              : std::min(max_spans, spans.size());
    os << "[";
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            os << ",\n ";
        emitSpan(os, store, spans[i]);
    }
    os << "]\n";
}

std::string
toZipkinJson(const TraceStore &store, std::size_t max_spans)
{
    std::ostringstream oss;
    exportZipkinJson(store, oss, max_spans);
    return oss.str();
}

void
exportPerfettoJson(const TraceStore &store, std::ostream &os,
                   std::size_t max_spans,
                   const std::string &extra_events)
{
    const auto spans = store.spans();
    const std::size_t n = max_spans == 0
                              ? spans.size()
                              : std::min(max_spans, spans.size());

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n ";
    };

    // Metadata first: label each trace (process) and each service
    // track (thread) so Perfetto's timeline reads naturally.
    std::set<TraceId> traces_seen;
    std::set<std::pair<TraceId, ServiceId>> tracks_seen;
    for (std::size_t i = 0; i < n; ++i) {
        const Span &sp = spans[i];
        if (traces_seen.insert(sp.traceId).second) {
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << sp.traceId
               << ",\"name\":\"process_name\",\"args\":{\"name\":"
               << "\"trace " << hexId(sp.traceId) << "\"}}";
        }
        if (tracks_seen.insert({sp.traceId, sp.service}).second) {
            sep();
            // tid 0 is reserved; shift interned ids up by one.
            os << "{\"ph\":\"M\",\"pid\":" << sp.traceId
               << ",\"tid\":" << sp.service + 1
               << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
               << spanService(store, sp) << "\"}}";
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        const Span &sp = spans[i];
        sep();
        // Failed hops go to a distinct category so a Perfetto query
        // (or the UI's category filter) isolates them at a glance.
        os << "{\"ph\":\"X\",\"pid\":" << sp.traceId
           << ",\"tid\":" << sp.service + 1 << ",\"cat\":\""
           << (sp.failed() ? "rpc.error" : "rpc") << "\""
           << ",\"name\":\"" << spanService(store, sp) << "\""
           << ",\"ts\":" << ticksToUs(sp.start)
           << ",\"dur\":" << ticksToUs(sp.duration())
           << ",\"args\":{"
           << "\"spanId\":\"" << hexId(sp.spanId) << "\""
           << ",\"parentId\":\"" << hexId(sp.parentSpanId) << "\""
           << ",\"instance\":" << sp.instance
           << ",\"queryType\":" << sp.queryType
           << ",\"queueUs\":" << ticksToUs(sp.queueTime)
           << ",\"appUs\":" << ticksToUs(sp.appTime)
           << ",\"networkUs\":" << ticksToUs(sp.networkTime)
           << ",\"downstreamUs\":" << ticksToUs(sp.downstreamWait);
        if (sp.failed())
            os << ",\"status\":\"" << spanStatusName(sp.statusEnum())
               << "\"";
        if (sp.attempt > 1)
            os << ",\"attempt\":" << unsigned{sp.attempt};
        if (sp.dataHits > 0)
            os << ",\"dataHits\":" << unsigned{sp.dataHits};
        if (sp.dataMisses > 0)
            os << ",\"dataMisses\":" << unsigned{sp.dataMisses};
        if (sp.qosClass > 0)
            os << ",\"qosClass\":\"" << qosClassTag(sp.qosClass)
               << "\"";
        os << "}}";
    }
    if (!extra_events.empty()) {
        sep();
        os << extra_events;
    }
    os << "\n],\"otherData\":{"
       << "\"spansStored\":" << store.size()
       << ",\"spansInserted\":" << store.inserted()
       << ",\"spansEvicted\":" << store.evicted()
       << ",\"capacity\":" << store.capacity() << "}}\n";
}

std::string
toPerfettoJson(const TraceStore &store, std::size_t max_spans,
               const std::string &extra_events)
{
    std::ostringstream oss;
    exportPerfettoJson(store, oss, max_spans, extra_events);
    return oss.str();
}

void
exportRunJson(const TraceStore &store, std::uint64_t execution_digest,
              std::ostream &os, std::size_t max_spans)
{
    os << "{\"executionDigest\":\"" << hexId(execution_digest)
       << "\",\"spans\":";
    exportZipkinJson(store, os, max_spans);
    os << "}\n";
}

std::string
toRunJson(const TraceStore &store, std::uint64_t execution_digest,
          std::size_t max_spans)
{
    std::ostringstream oss;
    exportRunJson(store, execution_digest, oss, max_spans);
    return oss.str();
}

} // namespace uqsim::trace
