/**
 * @file
 * Trace collection and centralized storage.
 *
 * The Collector plays the role of the Zipkin-style collector in the
 * paper; the TraceStore is the centralized Cassandra database. Both
 * are in-process here, but the interface keeps the same separation so
 * analysis code only ever talks to the store.
 *
 * The store is built for *always-on* tracing: a fixed-capacity ring
 * buffer of trivially-copyable spans with interned service names, so
 * recording a span on the simulator's hottest path (every RPC hop)
 * costs one bounded memcpy and never allocates once the ring has
 * grown to capacity. When full, the oldest spans are overwritten and
 * counted, so analysis always knows what it is missing.
 */

#ifndef UQSIM_TRACE_COLLECTOR_HH
#define UQSIM_TRACE_COLLECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.hh"
#include "trace/span.hh"

namespace uqsim::trace {

/**
 * Centralized span storage: a bounded ring buffer with interned
 * service names and lazily rebuilt per-trace / per-service indices.
 *
 * Spans are addressed by position in [0, size()), oldest first. Any
 * insert may shift positions (on eviction) and invalidates the index
 * references returned by byService().
 */
class TraceStore
{
  public:
    /** Default ring capacity (spans); ~24 MiB when completely full. */
    static constexpr std::size_t kDefaultCapacity = 1u << 18;

    explicit TraceStore(std::size_t capacity = kDefaultCapacity);

    // -- Service-name interning ---------------------------------------

    /** Intern @p name, returning its stable id (idempotent). */
    ServiceId intern(const std::string &name);

    /** Id of an already-interned name, or kNoService. */
    ServiceId serviceId(const std::string &name) const;

    /** Name behind an interned id (fatal on invalid id). */
    const std::string &serviceName(ServiceId id) const;

    // -- Span storage -------------------------------------------------

    /** Persist one span, evicting the oldest when at capacity. */
    void insert(const Span &span);

    /** Span at position @p i in [0, size()), oldest first. */
    const Span &at(std::size_t i) const;

    /** Lightweight random-access view over the stored spans. */
    class SpanView
    {
      public:
        class iterator
        {
          public:
            using value_type = Span;
            using difference_type = std::ptrdiff_t;

            iterator(const TraceStore *store, std::size_t pos)
                : store_(store), pos_(pos)
            {}
            const Span &operator*() const { return store_->at(pos_); }
            const Span *operator->() const { return &store_->at(pos_); }
            iterator &operator++()
            {
                ++pos_;
                return *this;
            }
            bool operator!=(const iterator &o) const
            {
                return pos_ != o.pos_;
            }
            bool operator==(const iterator &o) const
            {
                return pos_ == o.pos_;
            }

          private:
            const TraceStore *store_;
            std::size_t pos_;
        };

        explicit SpanView(const TraceStore &store) : store_(&store) {}
        std::size_t size() const { return store_->size(); }
        bool empty() const { return size() == 0; }
        const Span &operator[](std::size_t i) const
        {
            return store_->at(i);
        }
        iterator begin() const { return iterator(store_, 0); }
        iterator end() const { return iterator(store_, size()); }

      private:
        const TraceStore *store_;
    };

    /** All stored spans, oldest first. */
    SpanView spans() const { return SpanView(*this); }

    /** Spans belonging to one end-to-end request (copies). */
    std::vector<Span> byTrace(TraceId id) const;

    /**
     * Positions of spans served by one microservice. Valid until the
     * next insert/clear/setCapacity.
     */
    const std::vector<std::size_t> &byService(const std::string &svc) const;
    const std::vector<std::size_t> &byService(ServiceId id) const;

    /** Sorted names of services with at least one stored span. */
    std::vector<std::string> services() const;

    /** Spans currently stored. */
    std::size_t size() const { return ring_.size(); }

    /** Ring capacity (maximum stored spans). */
    std::size_t capacity() const { return capacity_; }

    /**
     * Change the ring capacity. Shrinking keeps the newest spans and
     * counts the discarded ones as evicted. Fatal on zero.
     */
    void setCapacity(std::size_t capacity);

    /** Spans overwritten (or discarded by a shrink) since clear(). */
    std::uint64_t evicted() const { return evicted_; }

    /** Total spans ever inserted since clear(). */
    std::uint64_t inserted() const { return inserted_; }

    /** Drop all spans and counters; interned names survive. */
    void clear();

  private:
    void rebuildIndices() const;

    std::size_t capacity_;
    std::vector<Span> ring_;
    /** Position of the oldest span once the ring has wrapped. */
    std::size_t head_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t inserted_ = 0;

    std::vector<std::string> names_;
    std::unordered_map<std::string, ServiceId> idByName_;

    mutable bool indexDirty_ = false;
    mutable std::unordered_map<TraceId, std::vector<std::size_t>> byTrace_;
    mutable std::vector<std::vector<std::size_t>> byService_;
    std::vector<std::size_t> empty_;
};

/**
 * Receives spans from the tracing modules and forwards them to the
 * store. Sampling is *trace-coherent*: the keep/drop decision is a
 * deterministic hash of the trace id, so a sampled store only ever
 * holds complete traces (we sample records, not behaviour; the
 * simulation itself is unaffected either way).
 */
class Collector
{
  public:
    explicit Collector(TraceStore &store) : store_(store) {}

    /**
     * Set sampling: keep one in @p n *traces* (1 = keep all). All
     * spans of a kept trace are stored; all spans of a dropped trace
     * are discarded.
     */
    void setSampleEvery(std::uint64_t n) { sampleEvery_ = n ? n : 1; }
    std::uint64_t sampleEvery() const { return sampleEvery_; }

    /** Enable/disable collection entirely. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Whether spans of @p id survive the sampling decision. */
    bool sampled(TraceId id) const;

    /** Ingest one finished span. */
    void collect(const Span &span);

    /** Spans offered (including sampled-out and disabled periods). */
    std::uint64_t offered() const { return offered_->value(); }

    /** Spans discarded by the sampling decision. */
    std::uint64_t sampledOut() const { return sampledOut_->value(); }

    /** Spans forwarded to the store. */
    std::uint64_t stored() const { return stored_->value(); }

    /**
     * Report through @p metrics instead of private counters
     * (trace.spans_offered / trace.spans_sampled_out /
     * trace.spans_stored); current values carry over.
     */
    void bindMetrics(MetricsRegistry &metrics);

  private:
    TraceStore &store_;
    bool enabled_ = true;
    std::uint64_t sampleEvery_ = 1;

    Counter ownOffered_, ownSampledOut_, ownStored_;
    Counter *offered_ = &ownOffered_;
    Counter *sampledOut_ = &ownSampledOut_;
    Counter *stored_ = &ownStored_;
};

/** Allocates trace and span ids deterministically. */
class IdAllocator
{
  public:
    TraceId nextTrace() { return ++lastTrace_; }
    SpanId nextSpan() { return ++lastSpan_; }

  private:
    TraceId lastTrace_ = 0;
    SpanId lastSpan_ = 0;
};

} // namespace uqsim::trace

#endif // UQSIM_TRACE_COLLECTOR_HH
