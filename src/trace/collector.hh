/**
 * @file
 * Trace collection and centralized storage.
 *
 * The Collector plays the role of the Zipkin-style collector in the
 * paper; the TraceStore is the centralized Cassandra database. Both
 * are in-process here, but the interface keeps the same separation so
 * analysis code only ever talks to the store.
 */

#ifndef UQSIM_TRACE_COLLECTOR_HH
#define UQSIM_TRACE_COLLECTOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/span.hh"

namespace uqsim::trace {

/**
 * Centralized span storage with per-trace and per-service indices.
 */
class TraceStore
{
  public:
    /** Persist one span. */
    void insert(const Span &span);

    /** All spans, in insertion order. */
    const std::vector<Span> &spans() const { return spans_; }

    /** Spans belonging to one end-to-end request. */
    std::vector<Span> byTrace(TraceId id) const;

    /** Indices of spans served by one microservice. */
    const std::vector<std::size_t> &byService(const std::string &svc) const;

    /** Names of all services seen. */
    std::vector<std::string> services() const;

    /** Total spans stored. */
    std::size_t size() const { return spans_.size(); }

    /** Drop everything. */
    void clear();

  private:
    std::vector<Span> spans_;
    std::unordered_map<TraceId, std::vector<std::size_t>> byTrace_;
    std::unordered_map<std::string, std::vector<std::size_t>> byService_;
    std::vector<std::size_t> empty_;
};

/**
 * Receives spans from the tracing modules and forwards them to the
 * store. Sampling keeps overhead negligible, matching the paper's
 * <0.1% tracing overhead claim (we sample records, not behaviour; the
 * simulation itself is unaffected either way).
 */
class Collector
{
  public:
    explicit Collector(TraceStore &store) : store_(store) {}

    /** Set sampling: keep one in @p n spans' traces (1 = keep all). */
    void setSampleEvery(std::uint64_t n) { sampleEvery_ = n ? n : 1; }

    /** Enable/disable collection entirely. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Ingest one finished span. */
    void collect(const Span &span);

    /** Spans offered (including sampled-out and disabled periods). */
    std::uint64_t offered() const { return offered_; }

  private:
    TraceStore &store_;
    bool enabled_ = true;
    std::uint64_t sampleEvery_ = 1;
    std::uint64_t offered_ = 0;
};

/** Allocates trace and span ids deterministically. */
class IdAllocator
{
  public:
    TraceId nextTrace() { return ++lastTrace_; }
    SpanId nextSpan() { return ++lastSpan_; }

  private:
    TraceId lastTrace_ = 0;
    SpanId lastSpan_ = 0;
};

} // namespace uqsim::trace

#endif // UQSIM_TRACE_COLLECTOR_HH
