/**
 * @file
 * Topology sampling: profile + seed -> a concrete microservice DAG.
 *
 * sampleTopology() draws a dependency graph from a GenProfile with a
 * private Rng, in one fixed draw order, so the same (profile, seed,
 * overrides) triple yields the identical Topology on every platform —
 * the property that lets a generated scenario file pin nothing but the
 * seed and still be bit-reproducible.
 *
 * The sampled graph is acyclic by construction (calls only ever target
 * strictly deeper levels; stateful tiers have no outgoing edges) and
 * connected by construction (the frontend calls every first-level
 * tier; deeper tiers that no sampled edge reached get one fix-up
 * caller from the level above).
 *
 * buildGeneratedApp() lowers a Topology into an ordinary World/App
 * using the same tier-building helpers as the hand-written seed apps,
 * so every opt-in subsystem (keyed data, replication, QoS, telemetry,
 * placement) composes with generated worlds unchanged.
 */

#ifndef UQSIM_GEN_TOPOLOGY_HH
#define UQSIM_GEN_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"
#include "gen/profile.hh"

namespace uqsim::apps {
class World;
}

namespace uqsim::gen {

/** One downstream RPC edge of a sampled handler. */
struct GenCall
{
    unsigned target = 0;   ///< index into Topology::tiers
    unsigned fanout = 1;   ///< RPCs issued by this stage
    bool parallel = false; ///< issue the fan-out concurrently
};

/** One cache-with-database-fallback access of a sampled handler. */
struct GenCacheRef
{
    unsigned cacheTier = 0; ///< index into Topology::tiers
    unsigned dbTier = 0;    ///< index into Topology::tiers
    double hitRatio = 0.95;
};

/** Structural role of a sampled tier. */
enum class GenRole
{
    Frontend,
    Logic,
    Cache,
    Db,
};

/** One sampled microservice tier. */
struct GenTier
{
    std::string name;
    GenRole role = GenRole::Logic;
    unsigned level = 0; ///< 0 = frontend; stateful tiers: depth + 1
    double serviceUs = 0.0;
    double sigma = 0.5;        ///< lognormal sigma (ignored if exponential)
    bool exponential = false;  ///< exponential service (validation mode)
    unsigned instances = 1;    ///< instances (stateless) / shards (stateful)
    unsigned threads = 16;
    std::vector<GenCall> calls;      ///< logic/frontend tiers only
    std::vector<GenCacheRef> caches; ///< logic/frontend tiers only
};

/** One sampled query type. */
struct GenQuery
{
    std::string name;
    double weight = 1.0;
    double computeScale = 1.0;
    bool write = false; ///< tagged "write" (keyed-data/txn stages)
};

/**
 * A complete sampled application graph. Tier order is deterministic:
 * frontend, logic levels ascending (index ascending within a level),
 * caches, then databases.
 */
struct Topology
{
    std::string profile;
    std::uint64_t seed = 0;
    unsigned depth = 0; ///< logic levels below the frontend
    std::vector<GenTier> tiers;
    std::vector<GenQuery> queries;
    Tick qosLatency = 0;

    /** Total sampled RPC edges (cache/db fallback pairs count 2). */
    unsigned edges() const;
};

/**
 * Optional per-scenario overrides of a profile's shape draws
 * (the --gen-depth/--gen-width/--gen-fanout flags). 0 keeps the
 * profile's own distribution.
 */
struct GenOverrides
{
    unsigned depth = 0;  ///< pin the number of logic levels
    unsigned width = 0;  ///< pin tiers per level
    double fanout = 0.0; ///< override the mean call fan-out
};

/** Sample a topology; deterministic in (profile, seed, overrides). */
Topology sampleTopology(const GenProfile &profile, std::uint64_t seed,
                        const GenOverrides &overrides = {});

/**
 * Lower @p t into @p w's App: add every tier, wire handlers, register
 * query types, set the entry/QoS latency and validate. The app is
 * ready for any load driver afterwards.
 */
void buildGeneratedApp(apps::World &w, const Topology &t);

/** One-line human summary ("14 tiers over 3 levels, 17 edges, ..."). */
std::string topologySummary(const Topology &t);

} // namespace uqsim::gen

#endif // UQSIM_GEN_TOPOLOGY_HH
