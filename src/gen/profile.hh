/**
 * @file
 * Declarative topology-sampling profiles.
 *
 * A GenProfile is the distributional fingerprint of one microservice
 * app family: graph depth, per-level width, call fan-out, cache/db
 * usage, per-tier service times and query-mix skew. The shipped
 * profiles are fit to the six seed apps in src/apps (in the spirit of
 * Ditto's fitted dependency graphs): sampling a profile yields a fresh
 * DAG that is statistically like its family but structurally new.
 *
 * The degenerate "single-tier" profile pins every distribution (one
 * tier, exponential service, no skew) so generated worlds land exactly
 * on the closed-form M/M/1 / Erlang-C territory the validation tier
 * checks.
 */

#ifndef UQSIM_GEN_PROFILE_HH
#define UQSIM_GEN_PROFILE_HH

#include <string>
#include <vector>

#include "core/types.hh"

namespace uqsim::gen {

/**
 * The sampling distributions for one app family. Ranges are inclusive;
 * a min == max range pins the value.
 */
struct GenProfile
{
    std::string name;
    std::string summary; ///< one line for --list-gen-profiles

    // -- graph shape ------------------------------------------------
    unsigned depthMin = 2;  ///< logic levels below the frontend
    unsigned depthMax = 3;
    unsigned widthMin = 2;  ///< logic tiers per level
    unsigned widthMax = 4;
    double fanoutMean = 2.0; ///< mean downstream calls per logic tier
    unsigned fanoutMax = 4;  ///< hard cap on calls per tier
    double parallelProb = 0.3;    ///< a call fans out concurrently
    unsigned parallelWidthMax = 3; ///< concurrent RPCs per parallel call
    double skipProb = 0.15;  ///< a call skips past the next level

    // -- stateful tiers ---------------------------------------------
    unsigned cachePairsMin = 1; ///< cache+db pool pairs
    unsigned cachePairsMax = 2;
    double cacheProb = 0.5;  ///< a logic tier reads a cache/db pair
    double hitMin = 0.7;     ///< cache hit-ratio range
    double hitMax = 0.98;
    std::string dbKind = "mongo"; ///< "mongo" | "mysql"

    // -- service times (microseconds on the reference core) ---------
    double frontendUs = 900.0;
    double logicUsLo = 150.0;
    double logicUsHi = 1200.0;
    double cacheUs = 55.0;
    double dbUs = 320.0;
    double sigmaLo = 0.3; ///< lognormal sigma range for logic tiers
    double sigmaHi = 0.7;
    /**
     * Validation mode: draw service times exponentially (no lognormal
     * tail, no clamping) so a generated single tier is an M/M/k
     * station the closed-form tests can pin.
     */
    bool exponentialService = false;

    // -- scale-out --------------------------------------------------
    unsigned frontendInstances = 2;
    unsigned instancesPerTier = 1;
    unsigned cacheShards = 2;
    unsigned dbShards = 2;
    unsigned frontendThreads = 64;
    unsigned logicThreads = 16;

    // -- workload ---------------------------------------------------
    unsigned queryTypesMin = 2;
    unsigned queryTypesMax = 4;
    double queryZipfS = 0.8;  ///< query-weight skew (0 = uniform)
    double writeTagProb = 0.25; ///< a query is tagged "write"
    Tick qosLatency = 35 * kTicksPerMs;
};

/** The shipped profiles, fit to the six seed app families. */
const std::vector<GenProfile> &allGenProfiles();

/** Look up a profile by name; @return null if unknown. */
const GenProfile *genProfileByName(const std::string &name);

} // namespace uqsim::gen

#endif // UQSIM_GEN_PROFILE_HH
