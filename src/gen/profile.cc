#include "gen/profile.hh"

namespace uqsim::gen {

namespace {

std::vector<GenProfile>
makeProfiles()
{
    std::vector<GenProfile> out;

    {
        // The densest seed graph (Table 1: 36 unique microservices):
        // wide mid-tiers, heavy caching, parallel read fan-outs.
        GenProfile p;
        p.name = "social-network";
        p.summary = "deep wide graph, heavy caching, parallel reads";
        p.depthMin = 3;
        p.depthMax = 4;
        p.widthMin = 3;
        p.widthMax = 5;
        p.fanoutMean = 2.4;
        p.fanoutMax = 4;
        p.parallelProb = 0.35;
        p.parallelWidthMax = 3;
        p.skipProb = 0.15;
        p.cachePairsMin = 2;
        p.cachePairsMax = 3;
        p.cacheProb = 0.6;
        p.hitMin = 0.85;
        p.hitMax = 0.98;
        p.frontendUs = 900.0;
        p.logicUsLo = 150.0;
        p.logicUsHi = 1100.0;
        p.queryTypesMin = 3;
        p.queryTypesMax = 6;
        p.queryZipfS = 0.9;
        p.writeTagProb = 0.3;
        // Deep samples carry unloaded end-to-end latencies well past
        // 100ms; the target leaves headroom for moderate queueing.
        p.qosLatency = 250 * kTicksPerMs;
        out.push_back(p);
    }

    {
        // Media streaming: fewer but heavier logic tiers (encode,
        // serve), large-payload paths, moderate caching.
        GenProfile p;
        p.name = "media";
        p.summary = "heavier logic tiers, large payloads, moderate caching";
        p.depthMin = 3;
        p.depthMax = 4;
        p.widthMin = 2;
        p.widthMax = 4;
        p.fanoutMean = 2.0;
        p.fanoutMax = 4;
        p.parallelProb = 0.25;
        p.parallelWidthMax = 3;
        p.skipProb = 0.1;
        p.cachePairsMin = 1;
        p.cachePairsMax = 2;
        p.cacheProb = 0.5;
        p.hitMin = 0.8;
        p.hitMax = 0.95;
        p.frontendUs = 1000.0;
        p.logicUsLo = 200.0;
        p.logicUsHi = 1400.0;
        p.queryTypesMin = 2;
        p.queryTypesMax = 4;
        p.queryZipfS = 0.7;
        p.writeTagProb = 0.2;
        p.qosLatency = 150 * kTicksPerMs;
        out.push_back(p);
    }

    {
        // E-commerce: the deepest synchronous chains of the suite
        // (checkout touches everything), modest fan-out per hop.
        GenProfile p;
        p.name = "ecommerce";
        p.summary = "deepest call chains, modest fan-out, mixed queries";
        p.depthMin = 4;
        p.depthMax = 5;
        p.widthMin = 2;
        p.widthMax = 3;
        p.fanoutMean = 1.8;
        p.fanoutMax = 3;
        p.parallelProb = 0.2;
        p.parallelWidthMax = 2;
        p.skipProb = 0.1;
        p.cachePairsMin = 1;
        p.cachePairsMax = 2;
        p.cacheProb = 0.45;
        p.hitMin = 0.75;
        p.hitMax = 0.95;
        p.frontendUs = 850.0;
        p.logicUsLo = 150.0;
        p.logicUsHi = 900.0;
        p.queryTypesMin = 3;
        p.queryTypesMax = 5;
        p.queryZipfS = 0.7;
        p.writeTagProb = 0.25;
        p.qosLatency = 150 * kTicksPerMs;
        out.push_back(p);
    }

    {
        // Banking: shallow graph, relational store, write-heavy mix
        // and a relaxed latency target.
        GenProfile p;
        p.name = "banking";
        p.summary = "shallow graph, mysql-backed, write-heavy";
        p.depthMin = 2;
        p.depthMax = 3;
        p.widthMin = 2;
        p.widthMax = 3;
        p.fanoutMean = 1.6;
        p.fanoutMax = 3;
        p.parallelProb = 0.15;
        p.parallelWidthMax = 2;
        p.skipProb = 0.1;
        p.cachePairsMin = 1;
        p.cachePairsMax = 1;
        p.cacheProb = 0.5;
        p.hitMin = 0.7;
        p.hitMax = 0.9;
        p.dbKind = "mysql";
        p.dbUs = 450.0;
        p.frontendUs = 800.0;
        p.logicUsLo = 200.0;
        p.logicUsHi = 1000.0;
        p.queryTypesMin = 2;
        p.queryTypesMax = 4;
        p.queryZipfS = 0.5;
        p.writeTagProb = 0.45;
        p.qosLatency = 60 * kTicksPerMs;
        out.push_back(p);
    }

    {
        // Swarm coordination: tiny edge-style graphs, light tiers,
        // tight latency, wide parallel drone-style fan-outs.
        GenProfile p;
        p.name = "swarm";
        p.summary = "tiny edge graph, light tiers, tight latency";
        p.depthMin = 1;
        p.depthMax = 2;
        p.widthMin = 1;
        p.widthMax = 3;
        p.fanoutMean = 1.3;
        p.fanoutMax = 3;
        p.parallelProb = 0.4;
        p.parallelWidthMax = 4;
        p.skipProb = 0.0;
        p.cachePairsMin = 0;
        p.cachePairsMax = 1;
        p.cacheProb = 0.3;
        p.hitMin = 0.8;
        p.hitMax = 0.95;
        p.frontendUs = 600.0;
        p.logicUsLo = 120.0;
        p.logicUsHi = 600.0;
        p.frontendThreads = 32;
        p.logicThreads = 8;
        p.queryTypesMin = 1;
        p.queryTypesMax = 2;
        p.queryZipfS = 0.3;
        p.writeTagProb = 0.1;
        p.qosLatency = 20 * kTicksPerMs;
        out.push_back(p);
    }

    {
        // Degenerate validation profile: one exponential-service tier,
        // one query type, no skew — a generated world that must land
        // on the closed-form M/M/1 / Erlang-C results.
        GenProfile p;
        p.name = "single-tier";
        p.summary = "degenerate M/M/k tier for closed-form validation";
        p.depthMin = 0;
        p.depthMax = 0;
        p.widthMin = 0;
        p.widthMax = 0;
        p.fanoutMean = 0.0;
        p.fanoutMax = 0;
        p.parallelProb = 0.0;
        p.parallelWidthMax = 0;
        p.skipProb = 0.0;
        p.cachePairsMin = 0;
        p.cachePairsMax = 0;
        p.cacheProb = 0.0;
        p.frontendUs = 500.0;
        p.sigmaLo = 0.0;
        p.sigmaHi = 0.0;
        p.exponentialService = true;
        p.frontendInstances = 1;
        p.frontendThreads = 1;
        p.queryTypesMin = 1;
        p.queryTypesMax = 1;
        p.queryZipfS = 0.0;
        p.writeTagProb = 0.0;
        p.qosLatency = 10 * kTicksPerMs;
        out.push_back(p);
    }

    return out;
}

} // namespace

const std::vector<GenProfile> &
allGenProfiles()
{
    static const std::vector<GenProfile> profiles = makeProfiles();
    return profiles;
}

const GenProfile *
genProfileByName(const std::string &name)
{
    for (const GenProfile &p : allGenProfiles())
        if (p.name == name)
            return &p;
    return nullptr;
}

} // namespace uqsim::gen
