#include "gen/topology.hh"

#include <algorithm>
#include <cmath>

#include "apps/builder.hh"
#include "apps/profiles.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "data/config.hh"
#include "service/app.hh"

namespace uqsim::gen {

namespace {

/** Inclusive uniform integer draw over [lo, hi]. */
unsigned
uniformRange(Rng &rng, unsigned lo, unsigned hi)
{
    if (hi <= lo)
        return lo;
    return lo + static_cast<unsigned>(rng.uniformInt(hi - lo + 1));
}

/**
 * Truncated-geometric call count with the profile's mean: start at 1
 * and keep adding with the continuation probability that gives the
 * untruncated distribution mean @p mean.
 */
unsigned
sampleCallCount(Rng &rng, double mean, unsigned cap)
{
    if (cap == 0 || mean <= 0.0)
        return 0;
    const double p = mean <= 1.0 ? 0.0 : 1.0 - 1.0 / mean;
    unsigned k = 1;
    while (k < cap && rng.bernoulli(p))
        ++k;
    return k;
}

} // namespace

unsigned
Topology::edges() const
{
    unsigned n = 0;
    for (const GenTier &t : tiers) {
        n += static_cast<unsigned>(t.calls.size());
        n += 2 * static_cast<unsigned>(t.caches.size());
    }
    return n;
}

Topology
sampleTopology(const GenProfile &profile, std::uint64_t seed,
               const GenOverrides &overrides)
{
    Rng rng(seed);
    Topology t;
    t.profile = profile.name;
    t.seed = seed;
    t.qosLatency = profile.qosLatency;

    // -- shape draws (fixed order: depth, widths, cache pairs) ------
    t.depth = overrides.depth > 0
                  ? overrides.depth
                  : uniformRange(rng, profile.depthMin, profile.depthMax);
    std::vector<unsigned> width(t.depth + 1, 0);
    for (unsigned level = 1; level <= t.depth; ++level)
        width[level] =
            overrides.width > 0
                ? overrides.width
                : std::max(1u, uniformRange(rng, profile.widthMin,
                                            profile.widthMax));
    const unsigned cache_pairs =
        uniformRange(rng, profile.cachePairsMin, profile.cachePairsMax);
    const double fanout_mean = overrides.fanout > 0.0
                                   ? overrides.fanout
                                   : profile.fanoutMean;

    // -- tier skeleton: frontend, logic by level, caches, dbs -------
    std::vector<std::vector<unsigned>> by_level(t.depth + 1);
    {
        GenTier fe;
        fe.name = "gen-fe";
        fe.role = GenRole::Frontend;
        fe.level = 0;
        fe.serviceUs = profile.frontendUs;
        fe.sigma = profile.sigmaLo;
        fe.exponential = profile.exponentialService;
        fe.instances = std::max(1u, profile.frontendInstances);
        fe.threads = std::max(1u, profile.frontendThreads);
        by_level[0].push_back(static_cast<unsigned>(t.tiers.size()));
        t.tiers.push_back(std::move(fe));
    }
    for (unsigned level = 1; level <= t.depth; ++level) {
        for (unsigned i = 0; i < width[level]; ++i) {
            GenTier tier;
            tier.name = strCat("gen-l", level, "-", i);
            tier.role = GenRole::Logic;
            tier.level = level;
            tier.serviceUs =
                rng.uniform(profile.logicUsLo, profile.logicUsHi);
            tier.sigma = rng.uniform(profile.sigmaLo, profile.sigmaHi);
            tier.exponential = profile.exponentialService;
            tier.instances = std::max(1u, profile.instancesPerTier);
            tier.threads = std::max(1u, profile.logicThreads);
            by_level[level].push_back(
                static_cast<unsigned>(t.tiers.size()));
            t.tiers.push_back(std::move(tier));
        }
    }
    std::vector<unsigned> cache_idx, db_idx;
    for (unsigned j = 0; j < cache_pairs; ++j) {
        GenTier c;
        c.name = strCat("gen-cache", j);
        c.role = GenRole::Cache;
        c.level = t.depth + 1;
        c.serviceUs = profile.cacheUs;
        c.instances = std::max(1u, profile.cacheShards);
        c.threads = 32;
        cache_idx.push_back(static_cast<unsigned>(t.tiers.size()));
        t.tiers.push_back(std::move(c));
    }
    for (unsigned j = 0; j < cache_pairs; ++j) {
        GenTier d;
        d.name = strCat("gen-db", j);
        d.role = GenRole::Db;
        d.level = t.depth + 1;
        d.serviceUs = profile.dbUs;
        d.instances = std::max(1u, profile.dbShards);
        d.threads = 32;
        db_idx.push_back(static_cast<unsigned>(t.tiers.size()));
        t.tiers.push_back(std::move(d));
    }

    // -- call edges -------------------------------------------------
    // The frontend orchestrates: it calls every first-level tier, like
    // the seed apps' entry tiers fanning out over their mid-tiers.
    if (t.depth >= 1)
        for (unsigned idx : by_level[1])
            t.tiers[0].calls.push_back({idx, 1, false});

    // Logic tiers call strictly deeper levels: acyclic by construction.
    for (unsigned level = 1; level < t.depth; ++level) {
        for (unsigned u : by_level[level]) {
            const unsigned k =
                sampleCallCount(rng, fanout_mean, profile.fanoutMax);
            for (unsigned c = 0; c < k; ++c) {
                unsigned target_level = level + 1;
                if (target_level < t.depth &&
                    rng.bernoulli(profile.skipProb))
                    target_level =
                        uniformRange(rng, target_level + 1, t.depth);
                const auto &pool = by_level[target_level];
                const unsigned v = pool[static_cast<unsigned>(
                    rng.uniformInt(pool.size()))];
                GenCall call;
                call.target = v;
                if (profile.parallelWidthMax >= 2 &&
                    rng.bernoulli(profile.parallelProb)) {
                    call.parallel = true;
                    call.fanout = uniformRange(rng, 2,
                                               profile.parallelWidthMax);
                }
                t.tiers[u].calls.push_back(call);
            }
        }
    }

    // Connectivity fix-up: any tier below level 1 that no sampled edge
    // reached gets one caller from the level above (deterministic
    // order: level ascending, index ascending).
    std::vector<bool> reached(t.tiers.size(), false);
    for (const GenTier &tier : t.tiers)
        for (const GenCall &c : tier.calls)
            reached[c.target] = true;
    for (unsigned level = 2; level <= t.depth; ++level) {
        for (unsigned v : by_level[level]) {
            if (reached[v])
                continue;
            const auto &pool = by_level[level - 1];
            const unsigned u = pool[static_cast<unsigned>(
                rng.uniformInt(pool.size()))];
            t.tiers[u].calls.push_back({v, 1, false});
            reached[v] = true;
        }
    }

    // -- cache/db accesses ------------------------------------------
    if (cache_pairs > 0) {
        for (unsigned level = 1; level <= t.depth; ++level) {
            for (unsigned u : by_level[level]) {
                if (!rng.bernoulli(profile.cacheProb))
                    continue;
                const unsigned j = static_cast<unsigned>(
                    rng.uniformInt(cache_pairs));
                GenCacheRef ref;
                ref.cacheTier = cache_idx[j];
                ref.dbTier = db_idx[j];
                ref.hitRatio =
                    rng.uniform(profile.hitMin, profile.hitMax);
                t.tiers[u].caches.push_back(ref);
            }
        }
        // A graph whose profile caches must cache somewhere: if no
        // tier drew an access, the frontend reads pair 0 (keeps the
        // data/replication blocks meaningful on every sample).
        bool any = false;
        for (const GenTier &tier : t.tiers)
            any = any || !tier.caches.empty();
        if (!any) {
            GenCacheRef ref;
            ref.cacheTier = cache_idx[0];
            ref.dbTier = db_idx[0];
            ref.hitRatio = rng.uniform(profile.hitMin, profile.hitMax);
            t.tiers[0].caches.push_back(ref);
        }
    }

    // -- query mix --------------------------------------------------
    const unsigned nq = std::max(
        1u,
        uniformRange(rng, profile.queryTypesMin, profile.queryTypesMax));
    for (unsigned i = 0; i < nq; ++i) {
        GenQuery q;
        q.name = strCat("q", i);
        q.weight = 1.0 / std::pow(static_cast<double>(i + 1),
                                  profile.queryZipfS);
        q.computeScale = rng.uniform(0.8, 1.4);
        q.write = rng.bernoulli(profile.writeTagProb);
        t.queries.push_back(std::move(q));
    }

    return t;
}

void
buildGeneratedApp(apps::World &w, const Topology &t)
{
    using service::ServiceDef;
    using service::ServiceKind;

    auto compute_dist = [](const GenTier &tier) {
        // 1440 cycles per microsecond of work on the reference core
        // (apps::computeUs); exponential mode feeds the closed-form
        // M/M/k validation and must not clamp the tail away.
        return tier.exponential
                   ? Dist::exponential(tier.serviceUs * 1440.0)
                         .clampedMin(1.0)
                   : apps::computeUs(tier.serviceUs, tier.sigma);
    };

    for (const GenTier &tier : t.tiers) {
        if (tier.role == GenRole::Cache) {
            apps::addCacheTier(w, tier.name, tier.instances,
                               tier.serviceUs);
            continue;
        }
        if (tier.role == GenRole::Db) {
            const GenProfile *p = genProfileByName(t.profile);
            if (p && p->dbKind == "mysql")
                apps::addMysqlTier(w, tier.name, tier.instances,
                                   tier.serviceUs);
            else
                apps::addMongoTier(w, tier.name, tier.instances,
                                   tier.serviceUs);
            continue;
        }

        ServiceDef def;
        def.name = tier.name;
        def.kind = tier.role == GenRole::Frontend
                       ? ServiceKind::Frontend
                       : ServiceKind::Stateless;
        def.profile = tier.role == GenRole::Frontend
                          ? apps::nginxProfile(tier.name)
                          : apps::cppMicroProfile(tier.name);
        if (tier.role == GenRole::Frontend)
            def.protocol = rpc::ProtocolModel::restHttp1();
        def.threadsPerInstance = tier.threads;
        def.handler.compute(compute_dist(tier));
        for (const GenCacheRef &ref : tier.caches)
            def.handler.cache(t.tiers[ref.cacheTier].name,
                              t.tiers[ref.dbTier].name, ref.hitRatio);
        for (const GenCall &call : tier.calls) {
            if (call.parallel)
                def.handler.parallelCall(t.tiers[call.target].name,
                                         call.fanout);
            else
                def.handler.call(t.tiers[call.target].name,
                                 call.fanout);
        }
        apps::addLogicTier(w, std::move(def), tier.instances);
    }

    for (const GenQuery &q : t.queries) {
        std::vector<std::string> tags;
        if (q.write)
            tags.push_back(data::kWriteTag);
        w.app->addQueryType(
            {q.name, q.weight, q.computeScale, 0, std::move(tags)});
    }
    w.app->setEntry(t.tiers[0].name);
    w.app->setQosLatency(t.qosLatency);
    w.app->validate();
}

std::string
topologySummary(const Topology &t)
{
    unsigned logic = 0, caches = 0, dbs = 0;
    for (const GenTier &tier : t.tiers) {
        if (tier.role == GenRole::Logic)
            ++logic;
        else if (tier.role == GenRole::Cache)
            ++caches;
        else if (tier.role == GenRole::Db)
            ++dbs;
    }
    return strCat("profile=", t.profile, " seed=", t.seed, ": ",
                  t.tiers.size(), " tiers (1 frontend, ", logic,
                  " logic over ", t.depth, " levels, ", caches,
                  " caches, ", dbs, " dbs), ", t.edges(), " edges, ",
                  t.queries.size(), " query types");
}

} // namespace uqsim::gen
