/**
 * @file
 * Consistent-hash key -> shard placement for stateful tiers.
 *
 * Cache and database tiers shard their key universe across instances.
 * A ShardMap places each shard at several virtual points on a hash
 * ring and routes a key to the first point clockwise of the key's own
 * hash — the memcached-client/Dynamo scheme. Two properties matter
 * for the simulation: the hottest key maps to exactly *one* shard
 * (hot-shard tails emerge without tuning), and growing the tier moves
 * only ~1/n of the keys (a scale-out warms up the new replica instead
 * of chilling every shard, unlike modulo placement).
 *
 * Hashing is a fixed 64-bit mixer, not std::hash, so placement is
 * identical across platforms and library versions — digests depend
 * on it.
 */

#ifndef UQSIM_DATA_SHARD_MAP_HH
#define UQSIM_DATA_SHARD_MAP_HH

#include <cstdint>
#include <vector>

namespace uqsim::data {

/** SplitMix64 finalizer: the ring's position/lookup mixer. */
inline std::uint64_t
mixKey(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Hash-ring placement of @p shards shards.
 */
class ShardMap
{
  public:
    /** @param vnodes virtual ring points per shard (placement grain). */
    explicit ShardMap(unsigned vnodes = 64);

    /** (Re)build the ring for @p shards shards. */
    void rebuild(unsigned shards);

    /**
     * Retire shard @p shard: its ring points disappear and its keys
     * remap to their ring successors (~1/n of the keyspace). Remaining
     * shard ids are untouched, so owners of every other key are stable
     * — the shrink mirror of the grow-remap bound. Fatal on an unknown
     * shard or when it is the last one standing.
     */
    void removeShard(unsigned shard);

    /** Shards still on the ring (rebuild count minus removals). */
    unsigned shards() const { return shards_; }
    unsigned vnodes() const { return vnodes_; }

    /** @return true while @p shard still owns ring points. */
    bool hasShard(unsigned shard) const;

    /** The shard owning @p key (ring successor of the key's hash). */
    unsigned shardFor(std::uint64_t key) const;

  private:
    struct Point
    {
        std::uint64_t position;
        unsigned shard;
    };

    unsigned vnodes_;
    unsigned shards_ = 0;
    /** Ring points sorted by position. */
    std::vector<Point> ring_;
};

} // namespace uqsim::data

#endif // UQSIM_DATA_SHARD_MAP_HH
