#include "data/cache_model.hh"

#include <algorithm>
#include <vector>

#include "core/logging.hh"

namespace uqsim::data {

namespace {

inline void
bump(Counter *c)
{
    if (c)
        c->inc();
}

} // namespace

const char *
cachePolicyName(CachePolicy p)
{
    switch (p) {
      case CachePolicy::Lru:
        return "lru";
      case CachePolicy::Lfu:
        return "lfu";
      case CachePolicy::SegmentedLru:
        return "slru";
    }
    return "unknown";
}

bool
cachePolicyByName(const std::string &name, CachePolicy &out)
{
    if (name == "lru")
        out = CachePolicy::Lru;
    else if (name == "lfu")
        out = CachePolicy::Lfu;
    else if (name == "slru")
        out = CachePolicy::SegmentedLru;
    else
        return false;
    return true;
}

const char *
writePolicyName(WritePolicy p)
{
    switch (p) {
      case WritePolicy::Through:
        return "through";
      case WritePolicy::Invalidate:
        return "invalidate";
    }
    return "unknown";
}

bool
writePolicyByName(const std::string &name, WritePolicy &out)
{
    if (name == "through")
        out = WritePolicy::Through;
    else if (name == "invalidate")
        out = WritePolicy::Invalidate;
    else
        return false;
    return true;
}

CacheModel::CacheModel(CacheModelConfig config) : config_(config)
{
    if (config_.capacity == 0)
        fatal("CacheModel with zero capacity");
    if (config_.policy == CachePolicy::SegmentedLru) {
        const double frac =
            std::clamp(config_.protectedFraction, 0.0, 1.0);
        protectedCapacity_ = std::min<std::uint64_t>(
            config_.capacity - 1,
            static_cast<std::uint64_t>(
                frac * static_cast<double>(config_.capacity)));
    }
}

void
CacheModel::bindMetrics(MetricsRegistry &m, const std::string &tier)
{
    hits_ = &m.counter("data." + tier + ".hits");
    misses_ = &m.counter("data." + tier + ".misses");
    inserts_ = &m.counter("data." + tier + ".inserts");
    evictions_ = &m.counter("data." + tier + ".evictions");
    expirations_ = &m.counter("data." + tier + ".expirations");
    invalidations_ = &m.counter("data." + tier + ".invalidations");
    writes_ = &m.counter("data." + tier + ".writes");
    coldRestarts_ = &m.counter("data." + tier + ".cold_restarts");
    replayDrops_ = &m.counter("data." + tier + ".replay_drops");
}

bool
CacheModel::expired(const Entry &e, Tick now) const
{
    return config_.ttl != 0 && now >= e.written + config_.ttl;
}

bool
CacheModel::access(std::uint64_t key, Tick now)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        if (expired(it->second, now)) {
            eraseEntry(key, it->second);
            ++stats_.expirations;
            bump(expirations_);
        } else {
            ++stats_.hits;
            bump(hits_);
            touch(key, it->second);
            return true;
        }
    }
    ++stats_.misses;
    bump(misses_);
    insert(key, now);
    return false;
}

void
CacheModel::write(std::uint64_t key, Tick now)
{
    ++stats_.writes;
    bump(writes_);
    auto it = entries_.find(key);
    if (config_.write == WritePolicy::Through) {
        if (it != entries_.end()) {
            it->second.written = now;
            touch(key, it->second);
        } else {
            insert(key, now);
        }
        return;
    }
    if (it != entries_.end()) {
        eraseEntry(key, it->second);
        ++stats_.invalidations;
        bump(invalidations_);
    }
}

void
CacheModel::clearCold()
{
    entries_.clear();
    recency_[0].clear();
    recency_[1].clear();
    freqBuckets_.clear();
    ++stats_.coldRestarts;
    bump(coldRestarts_);
}

std::uint64_t
CacheModel::dropWrittenAfter(Tick cutoff)
{
    // Collect first: erasing while iterating an unordered_map is UB-
    // adjacent, and a sorted victim list keeps the walk deterministic
    // across library implementations (the final store state is
    // order-independent, but determinism should not rest on that).
    std::vector<std::uint64_t> victims;
    for (const auto &[key, e] : entries_)
        if (e.written > cutoff)
            victims.push_back(key);
    std::sort(victims.begin(), victims.end());
    for (std::uint64_t key : victims) {
        eraseEntry(key, entries_.find(key)->second);
        ++stats_.replayDrops;
        if (replayDrops_)
            replayDrops_->inc();
    }
    return victims.size();
}

void
CacheModel::eraseEntry(std::uint64_t key, Entry &e)
{
    if (config_.policy == CachePolicy::Lfu) {
        auto bit = freqBuckets_.find(e.freq);
        bit->second.erase(e.where);
        if (bit->second.empty())
            freqBuckets_.erase(bit);
    } else {
        recency_[e.segment].erase(e.where);
    }
    entries_.erase(key);
}

void
CacheModel::insert(std::uint64_t key, Tick now)
{
    while (entries_.size() >= config_.capacity)
        evictOne();
    Entry e;
    e.written = now;
    if (config_.policy == CachePolicy::Lfu) {
        e.freq = 1;
        auto &bucket = freqBuckets_[1];
        bucket.push_back(key);
        e.where = std::prev(bucket.end());
    } else {
        // LRU and SLRU both install at the probation/recency head.
        recency_[0].push_front(key);
        e.where = recency_[0].begin();
        e.segment = 0;
    }
    entries_.emplace(key, e);
    ++stats_.inserts;
    bump(inserts_);
}

void
CacheModel::evictOne()
{
    std::uint64_t victim = 0;
    switch (config_.policy) {
      case CachePolicy::Lru:
        victim = recency_[0].back();
        break;
      case CachePolicy::SegmentedLru:
        // Probation evicts first; the protected segment is only
        // raided when probation is empty.
        victim = recency_[0].empty() ? recency_[1].back()
                                     : recency_[0].back();
        break;
      case CachePolicy::Lfu:
        // Coldest frequency bucket, FIFO within it.
        victim = freqBuckets_.begin()->second.front();
        break;
    }
    auto it = entries_.find(victim);
    eraseEntry(victim, it->second);
    ++stats_.evictions;
    bump(evictions_);
}

void
CacheModel::touch(std::uint64_t key, Entry &e)
{
    switch (config_.policy) {
      case CachePolicy::Lru:
        recency_[0].splice(recency_[0].begin(), recency_[0], e.where);
        return;
      case CachePolicy::Lfu: {
        auto bit = freqBuckets_.find(e.freq);
        bit->second.erase(e.where);
        if (bit->second.empty())
            freqBuckets_.erase(bit);
        ++e.freq;
        auto &bucket = freqBuckets_[e.freq];
        bucket.push_back(key);
        e.where = std::prev(bucket.end());
        return;
      }
      case CachePolicy::SegmentedLru:
        if (e.segment == 1) {
            recency_[1].splice(recency_[1].begin(), recency_[1],
                               e.where);
            return;
        }
        // Promotion on a probation hit; the protected segment demotes
        // its own LRU tail back to probation when over budget.
        recency_[0].erase(e.where);
        recency_[1].push_front(key);
        e.where = recency_[1].begin();
        e.segment = 1;
        if (recency_[1].size() > protectedCapacity_ &&
            recency_[1].size() > 1) {
            const std::uint64_t demoted = recency_[1].back();
            recency_[1].pop_back();
            recency_[0].push_front(demoted);
            Entry &d = entries_.find(demoted)->second;
            d.where = recency_[0].begin();
            d.segment = 0;
        }
        return;
    }
}

} // namespace uqsim::data
