/**
 * @file
 * Key universes and key popularity for the stateful data tier.
 *
 * Every DeathStarBench application leans on memcached/MongoDB tiers,
 * and the phenomena the paper reports around them — tail-at-scale
 * under skew (Fig 22), slow post-incident recovery (Fig 20) — are
 * driven by *which keys* requests touch: a few hot keys concentrate
 * load and fill caches, and a cold cache after a crash re-learns the
 * same hot set. A Keyspace models that: a bounded universe of keys
 * with a popularity law (Zipf, uniform, or a shifting hotspot),
 * sampled deterministically from the app's existing RNG stream.
 *
 * Sampling returns an abstract key id in [0, keys). Hot keys have low
 * ranks; the ShardMap hashes ids onto shards, so the hottest key lands
 * on exactly one shard and hot-shard effects emerge without tuning.
 */

#ifndef UQSIM_DATA_KEYSPACE_HH
#define UQSIM_DATA_KEYSPACE_HH

#include <cstdint>
#include <string>

#include "core/distributions.hh"
#include "core/rng.hh"
#include "core/types.hh"

namespace uqsim::data {

/** Popularity law over the key universe. */
enum class Popularity
{
    Zipf,     ///< rank r drawn with P(r) ~ 1/r^s (IRM)
    Uniform,  ///< every key equally likely
    Hotspot,  ///< a small hot set receives most accesses
};

/** @return printable name ("zipf", "uniform", "hotspot"). */
const char *popularityName(Popularity p);

/** Parse a popularity name; @return false if unknown. */
bool popularityByName(const std::string &name, Popularity &out);

/** Declarative description of one key universe. */
struct KeyspaceConfig
{
    /** Number of distinct keys (0 = keyed data tier disabled). */
    std::uint64_t keys = 0;

    Popularity popularity = Popularity::Zipf;

    /** Zipf exponent s (Popularity::Zipf). */
    double zipfS = 1.0;

    /** Fraction of keys that form the hot set (Popularity::Hotspot). */
    double hotFraction = 0.1;

    /** Fraction of accesses that go to the hot set. */
    double hotMass = 0.9;

    /**
     * Period after which the popularity ranking rotates to a different
     * region of the keyspace (0 = static). A shifting hotspot forces
     * caches to continuously re-warm — the paper's diurnal/trending
     * access patterns in miniature.
     */
    Tick shiftPeriod = 0;
};

/**
 * KeyPopularity: draws a popularity *rank* (0 = hottest). Split from
 * Keyspace so the statistical tests can validate the rank law in
 * isolation from the rank->key rotation.
 */
class KeyPopularity
{
  public:
    KeyPopularity(const KeyspaceConfig &config);

    /** Draw a rank in [0, keys); one uniform draw from @p rng. */
    std::uint64_t sampleRank(Rng &rng) const;

    /** Closed-form probability of @p rank (the chi-square oracle). */
    double rankProbability(std::uint64_t rank) const;

  private:
    KeyspaceConfig config_;
    /** Inverted-CDF sampler (Zipf only). */
    ZipfDistribution zipf_;
    /** Hot-set size in keys (Hotspot only). */
    std::uint64_t hotKeys_ = 0;
};

/**
 * A key universe: popularity + time-based rotation. sampleKey() is the
 * one hot-path entry point: exactly one RNG draw per access, taken
 * from the caller's stream, so keyed runs stay seed-deterministic at
 * any shard/thread count.
 */
class Keyspace
{
  public:
    explicit Keyspace(const KeyspaceConfig &config);

    const KeyspaceConfig &config() const { return config_; }
    std::uint64_t keys() const { return config_.keys; }

    /**
     * Draw the key accessed by one data operation at time @p now.
     * Rank is drawn from the popularity law; with a shift period the
     * rank->key mapping rotates once per period, moving the hot set.
     */
    std::uint64_t sampleKey(Rng &rng, Tick now) const;

    /** The key identity of @p rank at time @p now (test hook). */
    std::uint64_t keyForRank(std::uint64_t rank, Tick now) const;

  private:
    KeyspaceConfig config_;
    KeyPopularity popularity_;
};

} // namespace uqsim::data

#endif // UQSIM_DATA_KEYSPACE_HH
