#include "data/shard_map.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::data {

ShardMap::ShardMap(unsigned vnodes) : vnodes_(vnodes)
{
    if (vnodes_ == 0)
        fatal("ShardMap with zero vnodes");
}

void
ShardMap::rebuild(unsigned shards)
{
    if (shards == 0)
        fatal("ShardMap with zero shards");
    shards_ = shards;
    ring_.clear();
    ring_.reserve(static_cast<std::size_t>(shards) * vnodes_);
    for (unsigned s = 0; s < shards; ++s)
        for (unsigned v = 0; v < vnodes_; ++v)
            ring_.push_back(
                {mixKey((static_cast<std::uint64_t>(s) << 32) | v), s});
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  // Positions can collide across shards; break the tie
                  // by shard id so the ring order is total.
                  return a.position != b.position
                             ? a.position < b.position
                             : a.shard < b.shard;
              });
}

void
ShardMap::removeShard(unsigned shard)
{
    if (!hasShard(shard))
        fatal("ShardMap::removeShard of a shard not on the ring");
    if (shards_ <= 1)
        fatal("ShardMap::removeShard would empty the ring");
    // Dropping the shard's points keeps every other point in place, so
    // only keys whose successor was a removed point move — and they
    // move to the next point clockwise, exactly the consistent-hash
    // shrink property the tests pin.
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [shard](const Point &p) {
                                   return p.shard == shard;
                               }),
                ring_.end());
    --shards_;
}

bool
ShardMap::hasShard(unsigned shard) const
{
    for (const Point &p : ring_)
        if (p.shard == shard)
            return true;
    return false;
}

unsigned
ShardMap::shardFor(std::uint64_t key) const
{
    if (ring_.empty())
        fatal("ShardMap::shardFor before rebuild()");
    const std::uint64_t h = mixKey(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t pos) { return p.position < pos; });
    if (it == ring_.end())
        it = ring_.begin(); // wrap around the ring
    return it->shard;
}

} // namespace uqsim::data
