#include "data/shard_map.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::data {

ShardMap::ShardMap(unsigned vnodes) : vnodes_(vnodes)
{
    if (vnodes_ == 0)
        fatal("ShardMap with zero vnodes");
}

void
ShardMap::rebuild(unsigned shards)
{
    if (shards == 0)
        fatal("ShardMap with zero shards");
    shards_ = shards;
    ring_.clear();
    ring_.reserve(static_cast<std::size_t>(shards) * vnodes_);
    for (unsigned s = 0; s < shards; ++s)
        for (unsigned v = 0; v < vnodes_; ++v)
            ring_.push_back(
                {mixKey((static_cast<std::uint64_t>(s) << 32) | v), s});
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  // Positions can collide across shards; break the tie
                  // by shard id so the ring order is total.
                  return a.position != b.position
                             ? a.position < b.position
                             : a.shard < b.shard;
              });
}

unsigned
ShardMap::shardFor(std::uint64_t key) const
{
    if (ring_.empty())
        fatal("ShardMap::shardFor before rebuild()");
    const std::uint64_t h = mixKey(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t pos) { return p.position < pos; });
    if (it == ring_.end())
        it = ring_.begin(); // wrap around the ring
    return it->shard;
}

} // namespace uqsim::data
