#include "data/keyspace.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace uqsim::data {

const char *
popularityName(Popularity p)
{
    switch (p) {
      case Popularity::Zipf:
        return "zipf";
      case Popularity::Uniform:
        return "uniform";
      case Popularity::Hotspot:
        return "hotspot";
    }
    return "unknown";
}

bool
popularityByName(const std::string &name, Popularity &out)
{
    if (name == "zipf")
        out = Popularity::Zipf;
    else if (name == "uniform")
        out = Popularity::Uniform;
    else if (name == "hotspot")
        out = Popularity::Hotspot;
    else
        return false;
    return true;
}

KeyPopularity::KeyPopularity(const KeyspaceConfig &config)
    : config_(config),
      // The Zipf table is built only when used; a 1-key placeholder
      // keeps the member cheap for the other laws.
      zipf_(config.popularity == Popularity::Zipf
                ? static_cast<std::size_t>(std::max<std::uint64_t>(
                      1, config.keys))
                : 1,
            config.zipfS)
{
    if (config_.keys == 0)
        fatal("KeyPopularity over an empty keyspace");
    if (config_.popularity == Popularity::Hotspot) {
        hotKeys_ = static_cast<std::uint64_t>(
            std::ceil(config_.hotFraction *
                      static_cast<double>(config_.keys)));
        hotKeys_ = std::clamp<std::uint64_t>(hotKeys_, 1, config_.keys);
    }
}

std::uint64_t
KeyPopularity::sampleRank(Rng &rng) const
{
    switch (config_.popularity) {
      case Popularity::Zipf:
        return static_cast<std::uint64_t>(zipf_.sample(rng));
      case Popularity::Uniform:
        return rng.uniformInt(config_.keys);
      case Popularity::Hotspot: {
        // One draw decides both hot-vs-cold and the position within
        // the chosen set, keeping the one-draw-per-access contract.
        const double u = rng.uniform01();
        if (u < config_.hotMass && hotKeys_ > 0) {
            const double frac = u / std::max(1e-300, config_.hotMass);
            const auto r = static_cast<std::uint64_t>(
                frac * static_cast<double>(hotKeys_));
            return std::min(r, hotKeys_ - 1);
        }
        const std::uint64_t coldKeys = config_.keys - hotKeys_;
        if (coldKeys == 0)
            return config_.keys - 1;
        const double frac = (u - config_.hotMass) /
                            std::max(1e-300, 1.0 - config_.hotMass);
        const auto r = static_cast<std::uint64_t>(
            frac * static_cast<double>(coldKeys));
        return hotKeys_ + std::min(r, coldKeys - 1);
      }
    }
    return 0;
}

double
KeyPopularity::rankProbability(std::uint64_t rank) const
{
    if (rank >= config_.keys)
        return 0.0;
    switch (config_.popularity) {
      case Popularity::Zipf: {
        const double below =
            rank ? zipf_.topKMass(static_cast<std::size_t>(rank)) : 0.0;
        return zipf_.topKMass(static_cast<std::size_t>(rank + 1)) - below;
      }
      case Popularity::Uniform:
        return 1.0 / static_cast<double>(config_.keys);
      case Popularity::Hotspot:
        if (rank < hotKeys_)
            return config_.hotMass / static_cast<double>(hotKeys_);
        return (1.0 - config_.hotMass) /
               static_cast<double>(config_.keys - hotKeys_);
    }
    return 0.0;
}

Keyspace::Keyspace(const KeyspaceConfig &config)
    : config_(config), popularity_(config)
{}

std::uint64_t
Keyspace::keyForRank(std::uint64_t rank, Tick now) const
{
    if (config_.shiftPeriod == 0)
        return rank;
    // Rotate the rank->key mapping once per period by a large odd
    // stride, so consecutive hot sets are disjoint key regions (a
    // modest +1 rotation would keep most of the old hot set hot).
    const std::uint64_t window = now / config_.shiftPeriod;
    const std::uint64_t stride =
        (config_.keys / 2) | 1; // odd => full-cycle rotation
    return (rank + window * stride) % config_.keys;
}

std::uint64_t
Keyspace::sampleKey(Rng &rng, Tick now) const
{
    return keyForRank(popularity_.sampleRank(rng), now);
}

} // namespace uqsim::data
