/**
 * @file
 * Aggregate configuration of the keyed data tier, plus the routing
 * hint RPCs carry when a call is addressed to a key's shard.
 */

#ifndef UQSIM_DATA_CONFIG_HH
#define UQSIM_DATA_CONFIG_HH

#include <cstdint>

#include "data/cache_model.hh"
#include "data/keyspace.hh"

namespace uqsim::data {

/**
 * Everything `App::enableKeyedData()` needs: the key universe, the
 * per-instance cache store, and the ring grain. keys == 0 means the
 * keyed tier is disabled and the legacy fixed-hitProb path runs
 * bit-for-bit unchanged.
 */
struct DataTierConfig
{
    KeyspaceConfig keyspace;

    /** Store of each cache instance (capacity is per instance). */
    CacheModelConfig cache;

    /** Virtual ring points per shard of every stateful tier. */
    unsigned vnodes = 64;

    bool enabled() const { return keyspace.keys > 0; }
};

/**
 * How one RPC should be routed. Passed by value through the RPC path
 * because instance selection happens at a later simulated time than
 * the stage that issued the call, and the Request object is shared
 * by every concurrent hop — a mutable field on it would race.
 */
struct RouteHint
{
    /** Data key the call is about (valid when byKey). */
    std::uint64_t key = 0;

    /** Route by consistent-hash shard of `key` instead of user id. */
    bool byKey = false;

    /**
     * The access is a write. Replicated tiers route writes to the
     * group leader and reads per the read preference; without
     * replication the flag is ignored (reads and writes both hit the
     * ring owner).
     */
    bool write = false;

    /**
     * Perform the cache store lookup/write on the callee's shard when
     * the target tier lives on another shard of a partitioned world.
     * Only the cache-tier hop of a keyed stage sets this; the database
     * fallthrough routes by the same key but touches no store.
     */
    bool storeAccess = false;
};

/**
 * Query-type tag marking writes: keyed cache stages of queries
 * carrying this tag apply the write policy (update or invalidate)
 * instead of a read lookup.
 */
inline constexpr const char *kWriteTag = "write";

} // namespace uqsim::data

#endif // UQSIM_DATA_CONFIG_HH
