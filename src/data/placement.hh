/**
 * @file
 * Tier-to-shard placement for partitioned application graphs.
 *
 * In `Deployment::Partition` mode one application world is split
 * across `ParallelSimulator` shards: every microservice tier lives on
 * exactly one shard ("home shard") and calls between tiers on
 * different shards cross the engine's mailbox with conservative
 * lookahead equal to the inter-shard wire latency. The placement map
 * is the declarative input: a list of explicit pins plus a
 * deterministic default assignment for everything unpinned.
 */

#ifndef UQSIM_DATA_PLACEMENT_HH
#define UQSIM_DATA_PLACEMENT_HH

#include <map>
#include <string>
#include <vector>

namespace uqsim::data {

/** One explicit tier-to-shard pin from the scenario surface. */
struct PlacementPin
{
    /** Service tier name ("posts-memcached"). */
    std::string tier;

    /** Home shard the tier is pinned to. */
    unsigned shard = 0;
};

/**
 * Compute the tier -> home-shard map for a partitioned world.
 *
 * @p tiers is every service name in graph insertion order, @p entry
 * the entry tier's name, and @p shards the shard count. Pins are
 * validated strictly: an unknown tier, a shard >= @p shards, or a
 * duplicate pin for the same tier is an error (message in @p error,
 * return false), never a silent skip.
 *
 * Assignment rule: pins win; the entry tier defaults to shard 0 (the
 * load generator injects there, so an unpinned entry must not move
 * between runs); every other unpinned tier is assigned round-robin
 * over insertion order. The result depends only on (tiers, pins,
 * shards), so a fixed scenario always yields the same placement.
 */
bool assignPlacement(const std::vector<std::string> &tiers,
                     const std::string &entry, unsigned shards,
                     const std::vector<PlacementPin> &pins,
                     std::map<std::string, unsigned> &homes,
                     std::string &error);

} // namespace uqsim::data

#endif // UQSIM_DATA_PLACEMENT_HH
