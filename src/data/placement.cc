#include "data/placement.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::data {

bool
assignPlacement(const std::vector<std::string> &tiers,
                const std::string &entry, unsigned shards,
                const std::vector<PlacementPin> &pins,
                std::map<std::string, unsigned> &homes, std::string &error)
{
    homes.clear();
    if (shards == 0) {
        error = "placement requires a positive shard count";
        return false;
    }

    for (const PlacementPin &pin : pins) {
        if (std::find(tiers.begin(), tiers.end(), pin.tier) == tiers.end()) {
            error = strCat("placement pin names unknown tier '", pin.tier,
                           "'");
            return false;
        }
        if (pin.shard >= shards) {
            error = strCat("placement pin '", pin.tier, "' targets shard ",
                           pin.shard, " but only ", shards,
                           " shards exist");
            return false;
        }
        if (homes.count(pin.tier)) {
            error = strCat("duplicate placement pin for tier '", pin.tier,
                           "'");
            return false;
        }
        homes[pin.tier] = pin.shard;
    }

    // The entry tier hosts the load generator's injection point, so an
    // unpinned entry stays on shard 0 rather than drifting with the
    // round-robin cursor as other tiers are pinned.
    unsigned next = 0;
    for (const std::string &tier : tiers) {
        if (homes.count(tier))
            continue;
        homes[tier] = tier == entry ? 0 : next++ % shards;
    }
    return true;
}

} // namespace uqsim::data
