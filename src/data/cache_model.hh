/**
 * @file
 * Bounded-memory cache models with emergent hit/miss behaviour.
 *
 * A CacheModel is one cache process's resident set: a bounded number
 * of entries managed by LRU, LFU or segmented-LRU replacement, with
 * optional TTL expiry and a write policy (write-through keeps written
 * keys warm; write-invalidate evicts them). Hit/miss is *emergent*
 * from the access stream and the capacity — there is no hit-probability
 * knob — which is what makes cold caches after a crash, warm-up
 * transients after scale-out, and working-set effects under skew
 * reproducible phenomena instead of inputs.
 *
 * The model is fill-on-miss (cache-aside): a read miss installs the
 * key immediately, as trace-driven cache simulators do; fill latency
 * is modelled by the database RPC the handler issues on the miss, not
 * inside the cache. All bookkeeping is deterministic: replacement
 * order derives from lists and ordered maps only, never from
 * unordered-container iteration.
 */

#ifndef UQSIM_DATA_CACHE_MODEL_HH
#define UQSIM_DATA_CACHE_MODEL_HH

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>

#include "core/metrics.hh"
#include "core/types.hh"

namespace uqsim::data {

/** Replacement policy. */
enum class CachePolicy
{
    Lru,           ///< classic least-recently-used (memcached default)
    Lfu,           ///< least-frequently-used, FIFO within a frequency
    SegmentedLru,  ///< probation + protected segments (scan-resistant)
};

/** What a write does to the cached copy. */
enum class WritePolicy
{
    Through,     ///< write updates the cache entry (stays warm)
    Invalidate,  ///< write evicts the entry (next read misses)
};

const char *cachePolicyName(CachePolicy p);
bool cachePolicyByName(const std::string &name, CachePolicy &out);
const char *writePolicyName(WritePolicy p);
bool writePolicyByName(const std::string &name, WritePolicy &out);

/** Configuration of one cache instance's store. */
struct CacheModelConfig
{
    /** Resident-set capacity in entries (must be > 0). */
    std::uint64_t capacity = 4096;

    CachePolicy policy = CachePolicy::Lru;

    WritePolicy write = WritePolicy::Through;

    /** Entry time-to-live (0 = entries never expire). */
    Tick ttl = 0;

    /** Fraction of capacity given to the protected segment (SLRU). */
    double protectedFraction = 0.8;
};

/** Cumulative per-instance accounting. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expirations = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t writes = 0;
    /** Cold restarts (crash or fresh scale-out replica). */
    std::uint64_t coldRestarts = 0;
    /** Entries lost to the un-replicated log tail on a failover. */
    std::uint64_t replayDrops = 0;

    double
    hitRatio() const
    {
        const std::uint64_t n = hits + misses;
        return n ? static_cast<double>(hits) / static_cast<double>(n)
                 : 0.0;
    }
};

/**
 * One cache instance's keyed store.
 */
class CacheModel
{
  public:
    explicit CacheModel(CacheModelConfig config);

    CacheModel(const CacheModel &) = delete;
    CacheModel &operator=(const CacheModel &) = delete;

    const CacheModelConfig &config() const { return config_; }

    /**
     * Bind shared per-tier counters (data.<tier>.*). Instances of a
     * tier share the counters; per-instance detail stays in stats().
     */
    void bindMetrics(MetricsRegistry &m, const std::string &tier);

    /**
     * One read access to @p key at time @p now. @return true on hit.
     * A miss installs the key (fill-on-miss), evicting per policy.
     */
    bool access(std::uint64_t key, Tick now);

    /** One write: apply the write policy (update or invalidate). */
    void write(std::uint64_t key, Tick now);

    /** Drop everything: the process died or just started. */
    void clearCold();

    /**
     * Log-replay trim: drop every entry written (inserted or
     * refreshed) after @p cutoff. A promoted follower's store is the
     * leader's store minus the un-applied log tail — everything older
     * than its lag survives, which is what makes failover a *warm*
     * restart instead of clearCold()'s full dip. @return entries
     * dropped (counted as replayDrops).
     */
    std::uint64_t dropWrittenAfter(Tick cutoff);

    /** Resident entries right now. */
    std::uint64_t size() const { return entries_.size(); }

    const CacheStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        /** Position in the recency list of segment_ (LRU/SLRU). */
        std::list<std::uint64_t>::iterator where;
        /** Which SLRU segment holds the key (0 probation, 1 protected). */
        std::uint8_t segment = 0;
        /** Access count (LFU). */
        std::uint64_t freq = 0;
        /** Insert/refresh time for TTL expiry. */
        Tick written = 0;
    };

    bool expired(const Entry &e, Tick now) const;
    void eraseEntry(std::uint64_t key, Entry &e);
    /** Install @p key, evicting per policy if at capacity. */
    void insert(std::uint64_t key, Tick now);
    void evictOne();
    /** Move @p key to the front of its recency order after a hit. */
    void touch(std::uint64_t key, Entry &e);

    CacheModelConfig config_;
    std::uint64_t protectedCapacity_ = 0;

    std::unordered_map<std::uint64_t, Entry> entries_;
    /** Recency lists, MRU at front: [0] probation/LRU, [1] protected. */
    std::list<std::uint64_t> recency_[2];
    /** LFU frequency buckets, FIFO within a bucket; begin() = coldest. */
    std::map<std::uint64_t, std::list<std::uint64_t>> freqBuckets_;

    CacheStats stats_;
    /** Shared tier counters (null until bindMetrics). */
    Counter *hits_ = nullptr;
    Counter *misses_ = nullptr;
    Counter *inserts_ = nullptr;
    Counter *evictions_ = nullptr;
    Counter *expirations_ = nullptr;
    Counter *invalidations_ = nullptr;
    Counter *writes_ = nullptr;
    Counter *coldRestarts_ = nullptr;
    Counter *replayDrops_ = nullptr;
};

} // namespace uqsim::data

#endif // UQSIM_DATA_CACHE_MODEL_HH
