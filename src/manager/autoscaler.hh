/**
 * @file
 * Utilization-threshold autoscaler (EC2-default style, Sec 6/7).
 *
 * The policy is deliberately the naive one the paper critiques: when a
 * watched signal (CPU utilization or thread occupancy) exceeds a
 * threshold, add an instance of that tier after a startup delay. It
 * fixes genuine single-tier saturation (Fig 17A) but mis-scales under
 * backpressure (Fig 17B) and takes long to find the culprit of a
 * cascading violation (Fig 20).
 */

#ifndef UQSIM_MANAGER_AUTOSCALER_HH
#define UQSIM_MANAGER_AUTOSCALER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hh"
#include "cpu/server.hh"
#include "manager/monitor.hh"
#include "service/app.hh"

namespace uqsim::manager {

/** A scale-out decision, for timeline reporting. */
struct ScaleEvent
{
    Tick time = 0;
    std::string service;
    unsigned newInstanceCount = 0;
    double signalValue = 0.0;
};

/**
 * Threshold autoscaler over Monitor signals.
 */
class AutoScaler
{
  public:
    /** Which telemetry signal triggers scaling. */
    enum class Signal
    {
        CpuUtilization,    ///< busy cores / capacity
        ThreadOccupancy,   ///< busy-or-blocked worker threads
    };

    struct Config
    {
        /** Scale-out trigger threshold (EC2 default-ish 0.7). */
        double threshold = 0.7;

        /** Decision period. */
        Tick interval = kTicksPerSec;

        /** Time before a new instance starts serving. */
        Tick startupDelay = 4 * kTicksPerSec;

        /** Minimum time between scale-outs of the same tier. */
        Tick cooldown = 5 * kTicksPerSec;

        /** Signal driving decisions. */
        Signal signal = Signal::ThreadOccupancy;

        /** Cap on instances per tier (0 = unlimited). */
        unsigned maxInstances = 0;

        /**
         * Scale-out budget per decision round (0 = unlimited): real
         * autoscalers upsize gradually, which is what makes them slow
         * to locate the culprit tier in Fig 20.
         */
        unsigned maxScaleOutsPerRound = 0;
    };

    /**
     * @param app     application to scale
     * @param monitor telemetry source (must outlive the scaler)
     * @param placer  returns the server to place each new instance on
     */
    AutoScaler(service::App &app, Monitor &monitor, Config config,
               std::function<cpu::Server &()> placer);

    /** Watch a tier (untracked tiers never scale). */
    void watch(const std::string &service);

    /** Watch every non-stateful tier of the app. */
    void watchAllStateless();

    /** Begin making decisions. */
    void start();
    void stop();

    /** All scale-outs performed, in time order. */
    const std::vector<ScaleEvent> &events() const { return events_; }

  private:
    void decideOnce();
    double signalFor(const TierSample &s) const;

    service::App &app_;
    Monitor &monitor_;
    Config config_;
    std::function<cpu::Server &()> placer_;
    std::vector<std::string> watched_;
    std::unordered_map<std::string, Tick> lastScale_;
    std::vector<ScaleEvent> events_;
    bool running_ = false;
    EventHandle pending_;
};

} // namespace uqsim::manager

#endif // UQSIM_MANAGER_AUTOSCALER_HH
