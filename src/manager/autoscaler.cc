#include "manager/autoscaler.hh"

#include "core/logging.hh"

namespace uqsim::manager {

AutoScaler::AutoScaler(service::App &app, Monitor &monitor, Config config,
                       std::function<cpu::Server &()> placer)
    : app_(app), monitor_(monitor), config_(config),
      placer_(std::move(placer))
{
    if (!placer_)
        fatal("AutoScaler needs a placement function");
}

void
AutoScaler::watch(const std::string &service)
{
    if (!app_.hasService(service))
        fatal(strCat("AutoScaler::watch unknown service '", service, "'"));
    watched_.push_back(service);
}

void
AutoScaler::watchAllStateless()
{
    for (const service::Microservice *svc : app_.services()) {
        const auto kind = svc->def().kind;
        if (kind == service::ServiceKind::Stateless ||
            kind == service::ServiceKind::Frontend)
            watched_.push_back(svc->name());
    }
}

void
AutoScaler::start()
{
    if (running_)
        return;
    running_ = true;
    pending_ =
        app_.ctx().schedule(config_.interval, [this]() { decideOnce(); });
}

void
AutoScaler::stop()
{
    running_ = false;
    pending_.cancel();
}

double
AutoScaler::signalFor(const TierSample &s) const
{
    switch (config_.signal) {
      case Signal::CpuUtilization:
        return s.cpuUtil;
      case Signal::ThreadOccupancy:
        return s.occupancy;
    }
    return 0.0;
}

void
AutoScaler::decideOnce()
{
    if (!running_)
        return;
    const Tick now = app_.ctx().now();
    unsigned scaled_this_round = 0;
    for (const std::string &name : watched_) {
        if (config_.maxScaleOutsPerRound &&
            scaled_this_round >= config_.maxScaleOutsPerRound)
            break;
        const TierSample s = monitor_.latest(name);
        const double value = signalFor(s);
        if (value < config_.threshold)
            continue;
        const Tick last =
            lastScale_.count(name) ? lastScale_[name] : 0;
        if (last != 0 && now - last < config_.cooldown)
            continue;
        service::Microservice &svc = app_.service(name);
        if (config_.maxInstances &&
            svc.instances().size() >= config_.maxInstances)
            continue;

        // Provision the instance now; it begins serving after the
        // startup (container pull + warmup) delay.
        service::Instance &inst = svc.addInstance(placer_());
        inst.setActive(false);
        app_.ctx().schedule(config_.startupDelay, [&inst]() {
            inst.setActive(true);
        });
        lastScale_[name] = now;
        ++scaled_this_round;
        app_.metrics().counter("autoscaler.scale_outs").inc();
        events_.push_back(ScaleEvent{
            now, name, static_cast<unsigned>(svc.instances().size()),
            value});
    }
    pending_ =
        app_.ctx().schedule(config_.interval, [this]() { decideOnce(); });
}

} // namespace uqsim::manager
