/**
 * @file
 * Admission-control rate limiter (Sec 8, Fig 22a recovery).
 *
 * Token-bucket limiter placed in front of an App's inject path: when
 * hotspots cascade, operators constrain admitted traffic until queues
 * drain. Effective, but it drops user requests - which the bench
 * reports.
 */

#ifndef UQSIM_MANAGER_RATE_LIMITER_HH
#define UQSIM_MANAGER_RATE_LIMITER_HH

#include <cstdint>
#include <functional>

#include "core/types.hh"
#include "service/app.hh"

namespace uqsim::manager {

/**
 * Token-bucket admission controller.
 */
class RateLimiter
{
  public:
    /**
     * @param app        application whose inject path is guarded
     * @param rate_qps   sustained admitted rate (<=0: unlimited)
     * @param burst      bucket depth in requests
     */
    RateLimiter(service::App &app, double rate_qps, double burst = 32.0);

    /** Change the admitted rate at runtime (rate limiting on/off). */
    void setRateQps(double rate_qps);
    double rateQps() const { return rateQps_; }

    /**
     * Admit-or-drop one request. Returns true and forwards to
     * App::inject when a token is available; otherwise counts a
     * rejection and returns false.
     */
    bool tryInject(unsigned query_type, std::uint64_t user_id,
                   service::CompletionFn done = {});

    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t rejected() const { return rejected_; }

  private:
    void refill();

    service::App &app_;
    double rateQps_;
    double burst_;
    double tokens_;
    Tick lastRefill_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejected_ = 0;
};

} // namespace uqsim::manager

#endif // UQSIM_MANAGER_RATE_LIMITER_HH
