/**
 * @file
 * Periodic per-tier telemetry (what a cluster manager sees).
 *
 * The Monitor samples every service at a fixed interval: recent tail
 * latency, CPU utilization (busy core time / capacity), worker-thread
 * occupancy and queue depth. Figs 17, 19, 20 and 22a are rendered from
 * this history, and the AutoScaler makes its (sometimes wrong)
 * decisions from the same signals - exactly the paper's point about
 * utilization being misleading under backpressure.
 */

#ifndef UQSIM_MANAGER_MONITOR_HH
#define UQSIM_MANAGER_MONITOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/simulator.hh"
#include "core/types.hh"
#include "service/app.hh"

namespace uqsim::manager {

/** One tier's telemetry at one sampling instant. */
struct TierSample
{
    Tick time = 0;
    std::string service;
    /** p99 latency over the last completed window (ns). */
    std::uint64_t p99 = 0;
    /** Mean latency over the last completed window (ns). */
    double meanLatency = 0.0;
    /** CPU utilization in [0,1]: busy time / (interval * threads). */
    double cpuUtil = 0.0;
    /** Worker-thread occupancy in [0,1] (busy or blocked). */
    double occupancy = 0.0;
    /** Mean queue depth across instances. */
    double queueDepth = 0.0;
    /**
     * Mean in-flight RPCs across instances (occupying a worker thread
     * or queued). Queue depth alone misses a tier saturated
     * thread-for-thread with an empty queue.
     */
    double inFlight = 0.0;
    /** Active instances. */
    unsigned instances = 0;
    /**
     * Fraction of requests finishing at this tier during the last
     * interval that failed (injected errors, shedding, deadline
     * refusals, crash victims). What an operator's error-rate panel
     * shows during an incident.
     */
    double errorRate = 0.0;
    /**
     * Cache hit ratio over the last interval (keyed data tiers only;
     * 0 elsewhere). Downed-shard lookups count as misses, so an
     * operator sees the dip while a shard is unreachable and the
     * cold-cache warm-up curve after it restarts.
     */
    double hitRatio = 0.0;
    /** Cache lookups during the last interval (keyed tiers only). */
    std::uint64_t cacheLookups = 0;
};

/**
 * Samples an App's tiers on a fixed interval.
 */
class Monitor
{
  public:
    /**
     * @param app      application to watch
     * @param interval sampling period
     */
    Monitor(service::App &app, Tick interval);

    /** Begin sampling (first sample after one interval). */
    void start();

    /** Stop sampling. */
    void stop();

    Tick interval() const { return interval_; }

    /** Full history, in time order, grouped per sampling round. */
    const std::vector<std::vector<TierSample>> &history() const
    {
        return history_;
    }

    /** Latest sample for @p service (zeros if none yet). */
    TierSample latest(const std::string &service) const;

    /**
     * Baseline mean latency per tier (median of the first
     * @p rounds samples with traffic); used to express "latency
     * increase %" as in Figs 19/22a.
     */
    std::map<std::string, double> baselineLatency(unsigned rounds) const;

  private:
    /** Cached registry gauges for one tier (resolved on first sample). */
    struct TierGauges
    {
        Gauge *p99 = nullptr;
        Gauge *cpuUtil = nullptr;
        Gauge *occupancy = nullptr;
        Gauge *queueDepth = nullptr;
        Gauge *inFlight = nullptr;
        Gauge *instances = nullptr;
        Gauge *errorRate = nullptr;
        /** Only for keyed data tiers; null keeps legacy snapshots. */
        Gauge *hitRatio = nullptr;
    };

    void sampleOnce();
    TierGauges &gaugesFor(const service::Microservice &svc);

    service::App &app_;
    Tick interval_;
    bool running_ = false;
    EventHandle pending_;
    std::vector<std::vector<TierSample>> history_;
    /** Previous cumulative busy time per instance, for utilization. */
    std::unordered_map<const void *, Tick> lastBusy_;
    /** Previous served/failed counts per instance, for error rate. */
    std::unordered_map<const void *, std::uint64_t> lastServed_;
    std::unordered_map<const void *, std::uint64_t> lastFailed_;
    /** Previous data-tier hit/miss counters, for interval hit ratio. */
    std::unordered_map<const void *, std::uint64_t> lastHits_;
    std::unordered_map<const void *, std::uint64_t> lastMisses_;
    /** Per-tier gauges published to the app's metrics registry. */
    std::unordered_map<const void *, TierGauges> gauges_;
};

} // namespace uqsim::manager

#endif // UQSIM_MANAGER_MONITOR_HH
