/**
 * @file
 * QoS bookkeeping: violation detection over monitor history and
 * goodput accounting.
 */

#ifndef UQSIM_MANAGER_QOS_HH
#define UQSIM_MANAGER_QOS_HH

#include <string>
#include <vector>

#include "core/types.hh"
#include "manager/monitor.hh"
#include "service/app.hh"

namespace uqsim::manager {

/** A detected QoS violation interval for one tier. */
struct Violation
{
    std::string service;
    Tick start = 0;
    Tick end = 0;  ///< 0 while ongoing
};

/**
 * QoS policy evaluation over an App + Monitor pair.
 */
class QosTracker
{
  public:
    /**
     * @param app         application under QoS
     * @param monitor     telemetry source
     * @param tier_budget per-tier p99 budget (ns); tiers above it for
     *                    a full sample are in violation
     */
    QosTracker(service::App &app, const Monitor &monitor, Tick tier_budget);

    /** Scan the monitor history and extract violation intervals. */
    std::vector<Violation> violations() const;

    /**
     * First time the *end-to-end* p99 (entry tier window) exceeded the
     * app QoS, or 0 if never - the "QoS detection" instant of Fig 20.
     */
    Tick firstEndToEndViolation() const;

    /**
     * Time from @p from until the entry tier's windowed p99 returned
     * below the app QoS for @p stable consecutive samples (recovery
     * time, Fig 20); returns 0 when it never recovered.
     */
    Tick recoveryTime(Tick from, unsigned stable = 3) const;

  private:
    service::App &app_;
    const Monitor &monitor_;
    Tick tierBudget_;
};

} // namespace uqsim::manager

#endif // UQSIM_MANAGER_QOS_HH
