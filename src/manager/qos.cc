#include "manager/qos.hh"

#include <unordered_map>

#include "core/logging.hh"

namespace uqsim::manager {

QosTracker::QosTracker(service::App &app, const Monitor &monitor,
                       Tick tier_budget)
    : app_(app), monitor_(monitor), tierBudget_(tier_budget)
{
    if (tier_budget == 0)
        fatal("QosTracker with zero tier budget");
}

std::vector<Violation>
QosTracker::violations() const
{
    std::vector<Violation> out;
    std::unordered_map<std::string, std::size_t> open; // service -> idx
    for (const auto &round : monitor_.history()) {
        for (const TierSample &s : round) {
            const bool violating = s.p99 > tierBudget_;
            auto it = open.find(s.service);
            if (violating && it == open.end()) {
                out.push_back(Violation{s.service, s.time, 0});
                open[s.service] = out.size() - 1;
            } else if (!violating && it != open.end()) {
                out[it->second].end = s.time;
                open.erase(it);
            }
        }
    }
    return out;
}

Tick
QosTracker::firstEndToEndViolation() const
{
    const std::string entry = app_.entry();
    for (const auto &round : monitor_.history())
        for (const TierSample &s : round)
            if (s.service == entry && s.p99 > app_.config().qosLatency)
                return s.time;
    return 0;
}

Tick
QosTracker::recoveryTime(Tick from, unsigned stable) const
{
    const std::string entry = app_.entry();
    unsigned streak = 0;
    for (const auto &round : monitor_.history()) {
        for (const TierSample &s : round) {
            if (s.service != entry || s.time <= from)
                continue;
            if (s.p99 <= app_.config().qosLatency && s.p99 > 0) {
                if (++streak >= stable)
                    return s.time - from;
            } else {
                streak = 0;
            }
        }
    }
    return 0;
}

} // namespace uqsim::manager
