#include "manager/monitor.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::manager {

Monitor::Monitor(service::App &app, Tick interval)
    : app_(app), interval_(interval)
{
    if (interval == 0)
        fatal("Monitor with zero interval");
}

void
Monitor::start()
{
    if (running_)
        return;
    running_ = true;
    pending_ = app_.ctx().schedule(interval_, [this]() { sampleOnce(); });
}

void
Monitor::stop()
{
    running_ = false;
    pending_.cancel();
}

void
Monitor::sampleOnce()
{
    if (!running_)
        return;
    const Tick now = app_.ctx().now();
    std::vector<TierSample> round;
    round.reserve(app_.services().size());

    for (service::Microservice *svc : app_.services()) {
        TierSample s;
        s.time = now;
        s.service = svc->name();
        svc->latencyWindow().roll(now);
        s.p99 = svc->latencyWindow().windowP99();
        s.meanLatency = svc->latencyWindow().windowMean();
        s.occupancy = svc->meanOccupancy();
        s.queueDepth = svc->meanQueueLength();
        s.inFlight = svc->meanInFlight();
        s.instances = svc->activeInstances();

        // CPU utilization: busy-time delta over capacity. Capacity is
        // approximated by thread count (an instance rarely gets more
        // cores than threads).
        double util = 0.0;
        unsigned n = 0;
        std::uint64_t served_delta = 0, failed_delta = 0;
        for (const auto &inst : svc->instances()) {
            // Error accounting counts *all* instances: a crashed
            // instance's failures are exactly what the panel must show.
            const std::uint64_t served = inst->served();
            const std::uint64_t failed = inst->failed();
            const std::uint64_t prev_served =
                lastServed_.count(inst.get()) ? lastServed_[inst.get()]
                                              : 0;
            const std::uint64_t prev_failed =
                lastFailed_.count(inst.get()) ? lastFailed_[inst.get()]
                                              : 0;
            lastServed_[inst.get()] = served;
            lastFailed_[inst.get()] = failed;
            served_delta += served >= prev_served ? served - prev_served
                                                  : served;
            failed_delta += failed >= prev_failed ? failed - prev_failed
                                                  : failed;

            if (!inst->active())
                continue;
            const Tick busy = inst->cpuBusyTime();
            const Tick prev = lastBusy_.count(inst.get())
                                  ? lastBusy_[inst.get()]
                                  : 0;
            lastBusy_[inst.get()] = busy;
            const double cap =
                static_cast<double>(interval_) *
                static_cast<double>(svc->def().threadsPerInstance);
            const Tick delta = busy >= prev ? busy - prev : busy;
            util += std::min(1.0, static_cast<double>(delta) / cap);
            ++n;
        }
        s.cpuUtil = n ? util / n : 0.0;
        const std::uint64_t finished = served_delta + failed_delta;
        s.errorRate = finished ? static_cast<double>(failed_delta) /
                                     static_cast<double>(finished)
                               : 0.0;

        if (svc->hasCacheModels()) {
            // Interval hit ratio from the tier's registry counters
            // (which include downed-shard misses the models never see).
            const std::uint64_t hits =
                app_.metrics()
                    .counter("data." + svc->name() + ".hits")
                    .value();
            const std::uint64_t misses =
                app_.metrics()
                    .counter("data." + svc->name() + ".misses")
                    .value();
            const std::uint64_t h = hits - lastHits_[svc];
            const std::uint64_t m = misses - lastMisses_[svc];
            lastHits_[svc] = hits;
            lastMisses_[svc] = misses;
            s.cacheLookups = h + m;
            s.hitRatio = s.cacheLookups
                             ? static_cast<double>(h) /
                                   static_cast<double>(s.cacheLookups)
                             : 0.0;
        }

        // Publish the same signals to the app-wide registry so one
        // metrics snapshot shows what the cluster manager saw.
        TierGauges &g = gaugesFor(*svc);
        g.p99->set(static_cast<double>(s.p99));
        g.cpuUtil->set(s.cpuUtil);
        g.occupancy->set(s.occupancy);
        g.queueDepth->set(s.queueDepth);
        g.inFlight->set(s.inFlight);
        g.instances->set(static_cast<double>(s.instances));
        g.errorRate->set(s.errorRate);
        if (g.hitRatio)
            g.hitRatio->set(s.hitRatio);

        round.push_back(std::move(s));
    }
    history_.push_back(std::move(round));
    pending_ = app_.ctx().schedule(interval_, [this]() { sampleOnce(); });
}

Monitor::TierGauges &
Monitor::gaugesFor(const service::Microservice &svc)
{
    auto it = gauges_.find(&svc);
    if (it != gauges_.end())
        return it->second;

    MetricsRegistry &m = app_.metrics();
    TierGauges g;
    g.p99 = &m.gauge("monitor.p99_ns." + svc.name());
    g.cpuUtil = &m.gauge("monitor.cpu_util." + svc.name());
    g.occupancy = &m.gauge("monitor.occupancy." + svc.name());
    g.queueDepth = &m.gauge("monitor.queue_depth." + svc.name());
    g.inFlight = &m.gauge("monitor.in_flight." + svc.name());
    g.instances = &m.gauge("monitor.instances." + svc.name());
    g.errorRate = &m.gauge("monitor.error_rate." + svc.name());
    if (svc.hasCacheModels())
        g.hitRatio = &m.gauge("monitor.hit_ratio." + svc.name());
    return gauges_.emplace(&svc, g).first->second;
}

TierSample
Monitor::latest(const std::string &service) const
{
    for (auto it = history_.rbegin(); it != history_.rend(); ++it)
        for (const TierSample &s : *it)
            if (s.service == service)
                return s;
    return TierSample{};
}

std::map<std::string, double>
Monitor::baselineLatency(unsigned rounds) const
{
    std::map<std::string, std::vector<double>> values;
    unsigned used = 0;
    for (const auto &round : history_) {
        if (used >= rounds)
            break;
        ++used;
        for (const TierSample &s : round)
            if (s.meanLatency > 0.0)
                values[s.service].push_back(s.meanLatency);
    }
    std::map<std::string, double> out;
    for (auto &[svc, v] : values) {
        std::sort(v.begin(), v.end());
        out[svc] = v[v.size() / 2];
    }
    return out;
}

} // namespace uqsim::manager
