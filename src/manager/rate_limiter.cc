#include "manager/rate_limiter.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::manager {

RateLimiter::RateLimiter(service::App &app, double rate_qps, double burst)
    : app_(app), rateQps_(rate_qps), burst_(burst), tokens_(burst)
{
    if (burst <= 0.0)
        fatal("RateLimiter with non-positive burst");
    lastRefill_ = app.ctx().now();
}

void
RateLimiter::setRateQps(double rate_qps)
{
    refill();
    rateQps_ = rate_qps;
}

void
RateLimiter::refill()
{
    const Tick now = app_.ctx().now();
    if (rateQps_ > 0.0) {
        const double elapsed_sec = ticksToSec(now - lastRefill_);
        tokens_ = std::min(burst_, tokens_ + elapsed_sec * rateQps_);
    } else {
        tokens_ = burst_;
    }
    lastRefill_ = now;
}

bool
RateLimiter::tryInject(unsigned query_type, std::uint64_t user_id,
                       service::CompletionFn done)
{
    refill();
    if (rateQps_ > 0.0 && tokens_ < 1.0) {
        ++rejected_;
        return false;
    }
    if (rateQps_ > 0.0)
        tokens_ -= 1.0;
    ++admitted_;
    app_.inject(query_type, user_id, std::move(done));
    return true;
}

} // namespace uqsim::manager
