/**
 * @file
 * Declarative SLO evaluation over sliding interval windows.
 *
 * An SloConfig names one target series (a tier, or the end-to-end
 * stream) and up to two objectives: a latency quantile bound and an
 * error-rate bound. The monitor consumes one IntervalSample per
 * boundary and trips after `window` *consecutive* bad intervals — one
 * bad interval is noise, a filled window is an incident. Each sustained
 * episode records exactly one typed SloViolation (the monitor re-arms
 * only after a good interval), carrying both the trip time and the
 * onset (the first bad interval), which is what the CulpritLocalizer
 * measures its lead times against.
 *
 * The latency objective judges *completed* requests; under a total
 * collapse nothing completes and the latency stream goes quiet, which
 * is why operators pair it with the error-rate objective — failures
 * and drops still finish and still count.
 */

#ifndef UQSIM_OBS_SLO_HH
#define UQSIM_OBS_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"
#include "obs/timeseries.hh"

namespace uqsim::obs {

/** One app's service-level objectives. */
struct SloConfig
{
    /** Series under the SLO: a tier name, or "" = end-to-end. */
    std::string tier;

    /** Latency bound in ns at `quantile` (0 = no latency objective). */
    Tick latency = 0;

    /** Quantile the latency bound applies to, in (0, 1). */
    double quantile = 0.99;

    /** Consecutive bad intervals before a violation trips. */
    unsigned window = 3;

    /** Error-rate bound in [0, 1] (0 = no error-rate objective). */
    double errorRate = 0.0;

    /** @return true when at least one objective is armed. */
    bool armed() const { return latency > 0 || errorRate > 0.0; }
};

/** One tripped objective. */
struct SloViolation
{
    enum class Kind : std::uint8_t
    {
        Latency,
        ErrorRate,
    };

    Kind kind = Kind::Latency;
    /** Boundary tick at which the window filled (the trip). */
    Tick time = 0;
    /** Start tick of the first bad interval of the episode. */
    Tick onset = 0;
    /** Series the objective watches ("e2e" or a tier name). */
    std::string series;
    /** Observed value at the trip (ns, or error rate). */
    double value = 0.0;
    /** The configured bound (ns, or error rate). */
    double threshold = 0.0;
};

/** @return a short printable kind name. */
const char *sloViolationKindName(SloViolation::Kind kind);

/**
 * Evaluates one SloConfig against the target series' interval stream.
 */
class SloMonitor
{
  public:
    explicit SloMonitor(SloConfig config);

    const SloConfig &config() const { return config_; }

    /** The series name this monitor watches ("e2e" when tier empty). */
    std::string targetSeries() const;

    /**
     * Feed the target series' sample for the interval ending at
     * @p boundary. @p latency_q_ns is the configured quantile of the
     * interval's latency sketch (the sample rows only carry the fixed
     * p50/p95/p99 columns). Intervals without traffic are neutral:
     * they neither extend nor reset a bad streak.
     */
    void observe(Tick boundary, double latency_q_ns,
                 const IntervalSample &s);

    /** All violations, in trip order. */
    const std::vector<SloViolation> &violations() const
    {
        return violations_;
    }

    /** @return true once any objective has tripped. */
    bool violated() const { return !violations_.empty(); }

    /** Trip time of the earliest violation (0 if none). */
    Tick firstViolationTime() const;

  private:
    /** Streak state of one objective. */
    struct Streak
    {
        unsigned bad = 0;
        Tick onset = 0;
        /** Episode already reported; re-arm on a good interval. */
        bool open = false;
    };

    void update(Streak &st, bool is_bad, Tick boundary, Tick start,
                SloViolation::Kind kind, double value,
                double threshold);

    SloConfig config_;
    Streak latency_;
    Streak errors_;
    std::vector<SloViolation> violations_;
};

} // namespace uqsim::obs

#endif // UQSIM_OBS_SLO_HH
