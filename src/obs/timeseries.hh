/**
 * @file
 * Bounded per-tier time series of interval samples.
 *
 * The store is the time dimension the end-of-run aggregates lack: one
 * Series per tier (plus the "e2e" end-to-end series), each a bounded
 * ring of IntervalSample rows produced once per sampling interval by
 * the obs Pipeline. A run that degrades in its last 10% and a run that
 * was slow throughout produce the same run-level histogram but very
 * different series — which is exactly the signal the SloMonitor and
 * CulpritLocalizer consume.
 *
 * The store itself is passive and deterministic: plain data keyed by
 * sorted tier name, no clocks, no callbacks. All sampling policy lives
 * in the Pipeline.
 */

#ifndef UQSIM_OBS_TIMESERIES_HH
#define UQSIM_OBS_TIMESERIES_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hh"

namespace uqsim::obs {

/** The reserved series name of the end-to-end request stream. */
inline const char *kEndToEndSeries = "e2e";

/** One tier's signals over one sampling interval [start, end). */
struct IntervalSample
{
    Tick start = 0;
    Tick end = 0;

    /** Requests finishing in the interval (tier: served; e2e: ok). */
    std::uint64_t count = 0;
    /** Requests failing in the interval (tier: failed; e2e: failed+dropped). */
    std::uint64_t errors = 0;
    /** Admission refusals (throttled/shed/overflow) at this tier. */
    std::uint64_t admissionRejects = 0;
    /** Keyed-cache lookups (0 for non-cache tiers and e2e). */
    std::uint64_t cacheLookups = 0;
    /** Stale replicated reads served (0 on unreplicated tiers). */
    std::uint64_t staleReads = 0;
    /** Typed quorum-lost rejects (writes + reads) at this tier. */
    std::uint64_t quorumLost = 0;
    /** 2PC transactions aborted with this tier as a participant. */
    std::uint64_t txnAborts = 0;

    /** Finishing requests (count + errors) per second. */
    double rps = 0.0;
    /** errors / (count + errors), 0 with no traffic. */
    double errorRate = 0.0;
    /** Mean queue depth across active instances at the boundary. */
    double queueDepth = 0.0;
    /** Mean in-flight RPCs across active instances at the boundary. */
    double inFlight = 0.0;
    /** Busy-time delta over capacity (interval * threads), in [0,1]. */
    double utilization = 0.0;
    /** Keyed-cache hit ratio over the interval (0 without lookups). */
    double hitRatio = 0.0;
    /**
     * Worst replica-group staleness bound at the boundary (ns): the
     * election gap while a group is leaderless, else the worst
     * eligible-follower apply lag. 0 on unreplicated tiers.
     */
    double replicaLagNs = 0.0;

    /** Latency over the interval, from the per-tier sketch (ns). */
    double meanLatencyNs = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
};

/**
 * A bounded ring of interval samples for one tier.
 */
class Series
{
  public:
    Series(std::string name, std::size_t capacity);

    const std::string &name() const { return name_; }

    /** Append one sample, evicting the oldest at capacity. */
    void append(const IntervalSample &s);

    /** Samples currently retained. */
    std::size_t size() const { return size_; }

    /** Samples appended over the series' lifetime. */
    std::uint64_t total() const { return total_; }

    /** Samples evicted by the ring bound. */
    std::uint64_t evicted() const { return total_ - size_; }

    /** Retained sample @p i, oldest first (0 <= i < size()). */
    const IntervalSample &at(std::size_t i) const;

    /** The most recent sample (fatal when empty). */
    const IntervalSample &latest() const;

  private:
    std::string name_;
    std::vector<IntervalSample> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0; ///< next write position
    std::size_t size_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * All series of one app, keyed by tier name (sorted, deterministic).
 */
class TimeSeriesStore
{
  public:
    /**
     * @param interval sampling period (ticks)
     * @param capacity ring bound per series (samples)
     */
    TimeSeriesStore(Tick interval, std::size_t capacity);

    Tick interval() const { return interval_; }
    std::size_t capacity() const { return capacity_; }

    /** Get-or-create the series for @p name. */
    Series &series(const std::string &name);

    /** Series for @p name, or null if never written. */
    const Series *find(const std::string &name) const;

    /** Series names in sorted order. */
    std::vector<std::string> names() const;

    /** Sampling boundaries recorded so far. */
    std::uint64_t intervalsSampled() const { return intervals_; }
    void noteIntervalSampled() { ++intervals_; }

  private:
    Tick interval_;
    std::size_t capacity_;
    std::uint64_t intervals_ = 0;
    std::map<std::string, std::unique_ptr<Series>> series_;
};

} // namespace uqsim::obs

#endif // UQSIM_OBS_TIMESERIES_HH
