#include "obs/pipeline.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::obs {

Pipeline::Pipeline(service::App &app, PipelineConfig config)
    : app_(app), config_(config),
      store_(config.interval, config.ring), slo_(config.slo)
{
}

Pipeline::~Pipeline()
{
    if (app_.obsTap() == this)
        app_.setObsTap(nullptr);
}

void
Pipeline::start()
{
    if (started_)
        return;
    started_ = true;
    if (!config_.slo.tier.empty() &&
        !app_.hasService(config_.slo.tier))
        fatal(strCat("slo tier '", config_.slo.tier,
                     "' is not a service of app '",
                     app_.config().name, "'"));
    app_.setObsTap(this);
    // Materialize every series up front so exports list all tiers
    // even before the first boundary, and resolve the per-tier
    // reference-stable handles (series, cache counters, SLO target)
    // once, so the per-boundary sampler never builds a string.
    const std::string target = slo_.targetSeries();
    for (const service::Microservice *svc : app_.services()) {
        TierLive &live = liveFor(*svc);
        live.series = &store_.series(svc->name());
        live.sloTarget = config_.slo.armed() && svc->name() == target;
        if (svc->hasCacheModels()) {
            live.hits = &app_.metrics().counter("data." + svc->name() +
                                                ".hits");
            live.misses = &app_.metrics().counter("data." + svc->name() +
                                                  ".misses");
        }
        if (svc->replicated()) {
            const std::string p = "replica." + svc->name() + ".";
            live.staleReads = &app_.metrics().counter(p + "stale_reads");
            live.quorumLost = &app_.metrics().counter(p + "quorum_lost");
            live.txnAborts = &app_.metrics().counter(p + "txn_aborts");
            live.replicatedTier = svc;
        }
    }
    e2eSeries_ = &store_.series(kEndToEndSeries);
    e2eTarget_ = config_.slo.armed() && target == kEndToEndSeries;
    app_.ctx().addClockObserver(
        config_.interval, [this](Tick boundary) { sampleAt(boundary); });
}

Pipeline::TierLive &
Pipeline::liveFor(const service::Microservice &svc)
{
    const std::size_t id = svc.traceServiceId();
    if (id >= tiers_.size())
        tiers_.resize(id + 1);
    return tiers_[id];
}

void
Pipeline::onTierLatency(const service::Microservice &svc, Tick latency)
{
    liveFor(svc).sketch.record(latency);
}

void
Pipeline::onEndToEnd(Tick latency, bool ok)
{
    if (ok) {
        e2eSketch_.record(latency);
        ++e2eOk_;
    } else {
        ++e2eFailed_;
    }
}

void
Pipeline::onAdmissionReject(const service::Microservice &svc)
{
    ++liveFor(svc).rejects;
}

void
Pipeline::sampleAt(Tick boundary)
{
    const Tick interval = config_.interval;
    const Tick start = boundary - interval;
    const double interval_sec =
        static_cast<double>(interval) / static_cast<double>(kTicksPerSec);

    // Tiers, in deterministic insertion order.
    for (service::Microservice *svc : app_.services()) {
        TierLive &live = liveFor(*svc);
        IntervalSample s;
        s.start = start;
        s.end = boundary;

        // Cumulative-counter deltas, Monitor-style: a counter that
        // shrank was reset (statReset after warmup), in which case the
        // current value *is* the delta since the reset.
        std::uint64_t served = 0, failed = 0;
        unsigned active = 0;
        Tick busy = 0;
        for (const auto &inst : svc->instances()) {
            served += inst->served();
            failed += inst->failed();
            busy += inst->cpuBusyTime();
            if (!inst->active())
                continue;
            ++active;
        }
        const std::uint64_t served_d =
            served >= live.lastServed ? served - live.lastServed : served;
        const std::uint64_t failed_d =
            failed >= live.lastFailed ? failed - live.lastFailed : failed;
        const Tick busy_d =
            busy >= live.lastBusy ? busy - live.lastBusy : busy;
        live.lastServed = served;
        live.lastFailed = failed;
        live.lastBusy = busy;

        s.count = served_d;
        s.errors = failed_d;
        s.admissionRejects = live.rejects;
        live.rejects = 0;
        const std::uint64_t finished = served_d + failed_d;
        s.rps = static_cast<double>(finished) / interval_sec;
        s.errorRate = finished ? static_cast<double>(failed_d) /
                                     static_cast<double>(finished)
                               : 0.0;
        s.queueDepth = svc->meanQueueLength();
        s.inFlight = svc->meanInFlight();
        const double capacity =
            static_cast<double>(interval) *
            static_cast<double>(svc->def().threadsPerInstance) *
            static_cast<double>(std::max(1u, active));
        s.utilization =
            std::min(1.0, static_cast<double>(busy_d) / capacity);

        if (live.hits) {
            const std::uint64_t hits = live.hits->value();
            const std::uint64_t misses = live.misses->value();
            const std::uint64_t h =
                hits >= live.lastHits ? hits - live.lastHits : hits;
            const std::uint64_t m = misses >= live.lastMisses
                                        ? misses - live.lastMisses
                                        : misses;
            live.lastHits = hits;
            live.lastMisses = misses;
            s.cacheLookups = h + m;
            s.hitRatio = s.cacheLookups
                             ? static_cast<double>(h) /
                                   static_cast<double>(s.cacheLookups)
                             : 0.0;
        }

        if (live.replicatedTier) {
            auto delta = [](const Counter *c, std::uint64_t &last) {
                const std::uint64_t cur = c->value();
                const std::uint64_t d = cur >= last ? cur - last : cur;
                last = cur;
                return d;
            };
            s.staleReads = delta(live.staleReads, live.lastStaleReads);
            s.quorumLost = delta(live.quorumLost, live.lastQuorumLost);
            s.txnAborts = delta(live.txnAborts, live.lastTxnAborts);
            s.replicaLagNs = static_cast<double>(
                live.replicatedTier->replicaSet()->maxStalenessBound(
                    boundary));
        }

        s.meanLatencyNs = live.sketch.mean();
        const double qs[4] = {0.50, 0.95, 0.99, config_.slo.quantile};
        std::uint64_t vals[4];
        live.sketch.quantiles(qs, 4, vals);
        s.p50 = vals[0];
        s.p95 = vals[1];
        s.p99 = vals[2];
        const double lat_q = static_cast<double>(vals[3]);
        live.sketch.reset();

        live.series->append(s);
        if (live.sloTarget)
            slo_.observe(boundary, lat_q, s);
    }

    // End-to-end stream.
    {
        IntervalSample s;
        s.start = start;
        s.end = boundary;
        s.count = e2eOk_;
        s.errors = e2eFailed_;
        const std::uint64_t finished = e2eOk_ + e2eFailed_;
        s.rps = static_cast<double>(finished) / interval_sec;
        s.errorRate = finished ? static_cast<double>(e2eFailed_) /
                                     static_cast<double>(finished)
                               : 0.0;
        s.meanLatencyNs = e2eSketch_.mean();
        const double qs[4] = {0.50, 0.95, 0.99, config_.slo.quantile};
        std::uint64_t vals[4];
        e2eSketch_.quantiles(qs, 4, vals);
        s.p50 = vals[0];
        s.p95 = vals[1];
        s.p99 = vals[2];
        const double lat_q = static_cast<double>(vals[3]);
        e2eSketch_.reset();
        e2eOk_ = 0;
        e2eFailed_ = 0;

        e2eSeries_->append(s);
        if (e2eTarget_)
            slo_.observe(boundary, lat_q, s);
    }

    store_.noteIntervalSampled();
}

} // namespace uqsim::obs
