/**
 * @file
 * The online telemetry pipeline: App -> TimeSeriesStore -> SloMonitor.
 *
 * One Pipeline watches one App (in a sharded world: one per shard,
 * each sampling its own replica). It is both the App's ObsTap —
 * feeding per-tier and end-to-end latency sketches and per-tier
 * admission-reject counts as requests finish — and a clock observer on
 * the app's shard: at every interval boundary it closes the interval,
 * derives the delta signals (RPS, error rate, utilization, hit ratio)
 * Monitor-style from cumulative instance counters, snapshots the
 * sketches into an IntervalSample per tier plus one for the
 * end-to-end stream, and feeds the SLO monitor.
 *
 * Everything runs *between* events (see ClockObserver): the pipeline
 * never schedules, never mutates model state, and therefore leaves
 * the execution digest bit-identical whether it is attached or not —
 * a stronger guarantee than the usual "disabled == inert" opt-in
 * contract. Sampling is a pure function of shard-local state at each
 * boundary, so series contents are seed-deterministic and invariant
 * under the worker-thread count at a fixed shard layout.
 *
 * Lifetime: the pipeline must outlive all driving of the world (the
 * clock observer cannot be unregistered) and clears the App's tap on
 * destruction.
 */

#ifndef UQSIM_OBS_PIPELINE_HH
#define UQSIM_OBS_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/types.hh"
#include "obs/sketch.hh"
#include "obs/slo.hh"
#include "obs/timeseries.hh"
#include "service/app.hh"

namespace uqsim::obs {

/** Pipeline-wide configuration (the scenario `slo:` block). */
struct PipelineConfig
{
    /** Sampling interval (sim time). */
    Tick interval = 100 * kTicksPerMs;

    /** Ring bound per series (samples). */
    std::size_t ring = 4096;

    /** Objectives (unarmed by default: pure telemetry). */
    SloConfig slo;
};

/**
 * Online sampler over one App (see file comment).
 */
class Pipeline : public service::ObsTap
{
  public:
    Pipeline(service::App &app, PipelineConfig config);
    ~Pipeline() override;

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    /**
     * Install the tap and register the clock observer. Call once,
     * after the app graph is built, before driving the world.
     */
    void start();

    const PipelineConfig &config() const { return config_; }
    TimeSeriesStore &store() { return store_; }
    const TimeSeriesStore &store() const { return store_; }
    SloMonitor &slo() { return slo_; }
    const SloMonitor &slo() const { return slo_; }
    service::App &app() { return app_; }

    // -- ObsTap ---------------------------------------------------------

    void onTierLatency(const service::Microservice &svc,
                       Tick latency) override;
    void onEndToEnd(Tick latency, bool ok) override;
    void onAdmissionReject(const service::Microservice &svc) override;

  private:
    /** Per-tier accumulation between boundaries. */
    struct TierLive
    {
        QuantileSketch sketch;
        std::uint64_t rejects = 0;
        // Previous cumulative values, for interval deltas. The
        // "delta falls back to the current value" idiom below absorbs
        // the statReset() after warmup, exactly as manager::Monitor.
        std::uint64_t lastServed = 0;
        std::uint64_t lastFailed = 0;
        Tick lastBusy = 0;
        std::uint64_t lastHits = 0;
        std::uint64_t lastMisses = 0;
        std::uint64_t lastStaleReads = 0;
        std::uint64_t lastQuorumLost = 0;
        std::uint64_t lastTxnAborts = 0;
        // Resolved once at start(): both the registry counters and
        // the series are reference-stable, so boundary sampling never
        // touches a string.
        const Counter *hits = nullptr;
        const Counter *misses = nullptr;
        // Replication signals (null on unreplicated tiers). The tier
        // pointer reads the staleness bound — a pure function of
        // replica-group state — at each boundary.
        const Counter *staleReads = nullptr;
        const Counter *quorumLost = nullptr;
        const Counter *txnAborts = nullptr;
        const service::Microservice *replicatedTier = nullptr;
        Series *series = nullptr;
        /** Whether this tier is the SLO monitor's target series. */
        bool sloTarget = false;
    };

    /** Close the interval ending at @p boundary. */
    void sampleAt(Tick boundary);

    TierLive &liveFor(const service::Microservice &svc);

    service::App &app_;
    PipelineConfig config_;
    TimeSeriesStore store_;
    SloMonitor slo_;
    bool started_ = false;

    /** Indexed by the tier's interned traceServiceId (dense per app). */
    std::vector<TierLive> tiers_;
    /** End-to-end accumulation between boundaries. */
    QuantileSketch e2eSketch_;
    std::uint64_t e2eOk_ = 0;
    std::uint64_t e2eFailed_ = 0;
    Series *e2eSeries_ = nullptr;
    bool e2eTarget_ = false;
};

} // namespace uqsim::obs

#endif // UQSIM_OBS_PIPELINE_HH
