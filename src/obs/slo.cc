#include "obs/slo.hh"

#include "core/logging.hh"

namespace uqsim::obs {

const char *
sloViolationKindName(SloViolation::Kind kind)
{
    switch (kind) {
    case SloViolation::Kind::Latency: return "latency";
    case SloViolation::Kind::ErrorRate: return "error-rate";
    }
    return "?";
}

SloMonitor::SloMonitor(SloConfig config) : config_(std::move(config))
{
    if (config_.window == 0)
        fatal("SloMonitor with zero window");
    if (config_.quantile <= 0.0 || config_.quantile >= 1.0)
        fatal("SloMonitor quantile outside (0, 1)");
    if (config_.errorRate < 0.0 || config_.errorRate > 1.0)
        fatal("SloMonitor error-rate bound outside [0, 1]");
}

std::string
SloMonitor::targetSeries() const
{
    return config_.tier.empty() ? kEndToEndSeries : config_.tier;
}

void
SloMonitor::update(Streak &st, bool is_bad, Tick boundary, Tick start,
                   SloViolation::Kind kind, double value,
                   double threshold)
{
    if (!is_bad) {
        st.bad = 0;
        st.open = false;
        return;
    }
    if (st.bad == 0)
        st.onset = start;
    ++st.bad;
    if (st.bad >= config_.window && !st.open) {
        st.open = true;
        SloViolation v;
        v.kind = kind;
        v.time = boundary;
        v.onset = st.onset;
        v.series = targetSeries();
        v.value = value;
        v.threshold = threshold;
        violations_.push_back(std::move(v));
    }
}

void
SloMonitor::observe(Tick boundary, double latency_q_ns,
                    const IntervalSample &s)
{
    // No finishing traffic at all: the interval says nothing about
    // either objective, so it leaves both streaks untouched.
    if (s.count + s.errors == 0)
        return;
    if (config_.latency > 0 && s.count > 0)
        update(latency_, latency_q_ns >
                             static_cast<double>(config_.latency),
               boundary, s.start, SloViolation::Kind::Latency,
               latency_q_ns, static_cast<double>(config_.latency));
    if (config_.errorRate > 0.0)
        update(errors_, s.errorRate > config_.errorRate, boundary,
               s.start, SloViolation::Kind::ErrorRate, s.errorRate,
               config_.errorRate);
}

Tick
SloMonitor::firstViolationTime() const
{
    Tick first = 0;
    for (const SloViolation &v : violations_)
        if (first == 0 || v.time < first)
            first = v.time;
    return first;
}

} // namespace uqsim::obs
