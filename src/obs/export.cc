#include "obs/export.hh"

#include <cstdio>
#include <sstream>

#include "core/types.hh"

namespace uqsim::obs {

namespace {

/** Compact, locale-independent float rendering. */
std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void
emitSampleJson(std::ostream &os, const IntervalSample &s)
{
    os << "{\"start\":" << s.start << ",\"end\":" << s.end
       << ",\"count\":" << s.count << ",\"errors\":" << s.errors
       << ",\"admission_rejects\":" << s.admissionRejects
       << ",\"cache_lookups\":" << s.cacheLookups
       << ",\"stale_reads\":" << s.staleReads
       << ",\"quorum_lost\":" << s.quorumLost
       << ",\"txn_aborts\":" << s.txnAborts
       << ",\"rps\":" << fmt(s.rps)
       << ",\"error_rate\":" << fmt(s.errorRate)
       << ",\"queue_depth\":" << fmt(s.queueDepth)
       << ",\"in_flight\":" << fmt(s.inFlight)
       << ",\"utilization\":" << fmt(s.utilization)
       << ",\"hit_ratio\":" << fmt(s.hitRatio)
       << ",\"replica_lag_ns\":" << fmt(s.replicaLagNs)
       << ",\"mean_latency_ns\":" << fmt(s.meanLatencyNs)
       << ",\"p50\":" << s.p50 << ",\"p95\":" << s.p95
       << ",\"p99\":" << s.p99 << "}";
}

} // namespace

void
writeTimeSeriesJson(const TimeSeriesStore &store, std::ostream &os)
{
    os << "{\"interval_ns\":" << store.interval()
       << ",\"ring_capacity\":" << store.capacity()
       << ",\"intervals_sampled\":" << store.intervalsSampled()
       << ",\"series\":{";
    bool first_series = true;
    for (const std::string &name : store.names()) {
        const Series *s = store.find(name);
        if (!first_series)
            os << ",";
        first_series = false;
        os << "\n \"" << name << "\":{\"total\":" << s->total()
           << ",\"evicted\":" << s->evicted() << ",\"samples\":[";
        for (std::size_t i = 0; i < s->size(); ++i) {
            if (i)
                os << ",";
            os << "\n  ";
            emitSampleJson(os, s->at(i));
        }
        os << "]}";
    }
    os << "}}\n";
}

std::string
toTimeSeriesJson(const TimeSeriesStore &store)
{
    std::ostringstream oss;
    writeTimeSeriesJson(store, oss);
    return oss.str();
}

void
writeTimeSeriesCsv(const TimeSeriesStore &store, std::ostream &os)
{
    os << "series,start_ns,end_ns,count,errors,admission_rejects,"
          "cache_lookups,stale_reads,quorum_lost,txn_aborts,rps,"
          "error_rate,queue_depth,in_flight,utilization,hit_ratio,"
          "replica_lag_ns,mean_latency_ns,p50_ns,p95_ns,p99_ns\n";
    for (const std::string &name : store.names()) {
        const Series *s = store.find(name);
        for (std::size_t i = 0; i < s->size(); ++i) {
            const IntervalSample &row = s->at(i);
            os << name << "," << row.start << "," << row.end << ","
               << row.count << "," << row.errors << ","
               << row.admissionRejects << "," << row.cacheLookups
               << "," << row.staleReads << "," << row.quorumLost
               << "," << row.txnAborts << "," << fmt(row.rps) << ","
               << fmt(row.errorRate) << "," << fmt(row.queueDepth)
               << "," << fmt(row.inFlight) << ","
               << fmt(row.utilization) << "," << fmt(row.hitRatio)
               << "," << fmt(row.replicaLagNs) << ","
               << fmt(row.meanLatencyNs) << "," << row.p50 << ","
               << row.p95 << "," << row.p99 << "\n";
        }
    }
}

std::string
toTimeSeriesCsv(const TimeSeriesStore &store)
{
    std::ostringstream oss;
    writeTimeSeriesCsv(store, oss);
    return oss.str();
}

std::string
perfettoCounterEvents(const TimeSeriesStore &store)
{
    std::ostringstream os;
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n ";
        first = false;
    };
    // Counter tracks live on their own "process" so they group
    // together under one named row instead of scattering across the
    // per-trace processes the span events use.
    bool any = false;
    for (const std::string &name : store.names())
        if (store.find(name)->size() > 0)
            any = true;
    if (!any)
        return "";
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"observability\"}}";
    for (const std::string &name : store.names()) {
        const Series *s = store.find(name);
        for (std::size_t i = 0; i < s->size(); ++i) {
            const IntervalSample &row = s->at(i);
            const double ts = ticksToUs(row.end);
            sep();
            os << "{\"ph\":\"C\",\"pid\":0,\"name\":\"" << name
               << "/latency_ns\",\"ts\":" << fmt(ts)
               << ",\"args\":{\"p50\":" << row.p50
               << ",\"p95\":" << row.p95 << ",\"p99\":" << row.p99
               << "}}";
            sep();
            os << "{\"ph\":\"C\",\"pid\":0,\"name\":\"" << name
               << "/load\",\"ts\":" << fmt(ts)
               << ",\"args\":{\"queue_depth\":" << fmt(row.queueDepth)
               << ",\"in_flight\":" << fmt(row.inFlight) << "}}";
            sep();
            os << "{\"ph\":\"C\",\"pid\":0,\"name\":\"" << name
               << "/rate\",\"ts\":" << fmt(ts)
               << ",\"args\":{\"rps\":" << fmt(row.rps)
               << ",\"error_rate\":" << fmt(row.errorRate)
               << ",\"utilization\":" << fmt(row.utilization) << "}}";
        }
    }
    return os.str();
}

} // namespace uqsim::obs
