/**
 * @file
 * Streaming latency-quantile sketch.
 *
 * An HDR-style fixed-footprint sketch: values are grouped into
 * power-of-two octaves, each split into 2^subBucketBits linear
 * sub-buckets, so record() is O(1), memory is a few KB regardless of
 * stream length, and any quantile query carries a *provable* relative
 * error bound of 1/2^subBucketBits (~1.6% at the default 6 bits; the
 * documented contract is <= 2%). Unlike the P² estimator — which
 * tracks five markers and answers a single pre-chosen quantile
 * approximately, with no hard bound — the histogram shape answers
 * every quantile from one pass and is exactly mergeable, which is what
 * the per-interval p50/p95/p99 columns of the time-series store need.
 *
 * The sketch differs from core/histogram.hh in its lifecycle: it is
 * snapshot-and-reset once per sampling interval, so reset() is O(set
 * of touched buckets), not O(table size).
 */

#ifndef UQSIM_OBS_SKETCH_HH
#define UQSIM_OBS_SKETCH_HH

#include <cstdint>
#include <vector>

namespace uqsim::obs {

/**
 * Fixed-precision streaming quantile sketch over non-negative values.
 */
class QuantileSketch
{
  public:
    /** @param sub_bucket_bits linear resolution within each octave. */
    explicit QuantileSketch(unsigned sub_bucket_bits = 6);

    /** Record one sample, O(1). */
    void record(std::uint64_t value);

    /** Samples recorded since the last reset. */
    std::uint64_t count() const { return count_; }

    /** Smallest recorded value (0 if empty; exact). */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /** Largest recorded value (0 if empty; exact). */
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /** Arithmetic mean (0 if empty; exact). */
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1]: an upper bound of the bucket
     * holding the requested rank, clamped to [min, max] (0 if empty).
     * Relative error vs the exact order statistic is bounded by
     * relativeErrorBound().
     */
    std::uint64_t quantile(double q) const;

    /**
     * Answer @p n quantiles (any order) in one pass over the touched
     * bucket range — equivalent to n quantile() calls, but the
     * histogram is scanned once. This is what keeps the per-interval
     * snapshot (p50/p95/p99 + the SLO quantile) cheap enough for the
     * telemetry pipeline's per-boundary budget.
     */
    void quantiles(const double *qs, std::size_t n,
                   std::uint64_t *out) const;

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p95() const { return quantile(0.95); }
    std::uint64_t p99() const { return quantile(0.99); }

    /** Merge another sketch (same resolution) into this one. */
    void merge(const QuantileSketch &other);

    /** Forget all samples; O(buckets touched since last reset). */
    void reset();

    /** The guaranteed relative error of quantile(): 1/2^bits. */
    double relativeErrorBound() const
    {
        return 1.0 / static_cast<double>(subBucketCount_);
    }

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketUpperBound(std::size_t index) const;

    unsigned subBucketBits_;
    std::uint64_t subBucketCount_;
    std::vector<std::uint64_t> buckets_;
    /** Indices of non-zero buckets, for cheap interval resets. */
    std::vector<std::uint32_t> touched_;
    /** Touched index range: quantile scans skip the empty prefix. */
    std::size_t lo_ = ~std::size_t{0};
    std::size_t hi_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace uqsim::obs

#endif // UQSIM_OBS_SKETCH_HH
