#include "obs/timeseries.hh"

#include "core/logging.hh"

namespace uqsim::obs {

Series::Series(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    if (capacity == 0)
        fatal("Series with zero capacity");
    // Ring storage grows on demand up to the bound, so a short run
    // with a large configured ring never pays for the idle tail.
    ring_.reserve(std::min<std::size_t>(capacity, 64));
}

void
Series::append(const IntervalSample &s)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(s);
    } else {
        ring_[head_] = s;
        head_ = (head_ + 1) % capacity_;
    }
    size_ = ring_.size();
    ++total_;
}

const IntervalSample &
Series::at(std::size_t i) const
{
    if (i >= size_)
        panic(strCat("Series::at(", i, ") out of range; size ", size_));
    return ring_[(head_ + i) % size_];
}

const IntervalSample &
Series::latest() const
{
    if (size_ == 0)
        panic("Series::latest() on an empty series");
    return at(size_ - 1);
}

TimeSeriesStore::TimeSeriesStore(Tick interval, std::size_t capacity)
    : interval_(interval), capacity_(capacity)
{
    if (interval == 0)
        fatal("TimeSeriesStore with zero interval");
    if (capacity == 0)
        fatal("TimeSeriesStore with zero ring capacity");
}

Series &
TimeSeriesStore::series(const std::string &name)
{
    auto &slot = series_[name];
    if (!slot)
        slot = std::make_unique<Series>(name, capacity_);
    return *slot;
}

const Series *
TimeSeriesStore::find(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : it->second.get();
}

std::vector<std::string>
TimeSeriesStore::names() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto &[name, s] : series_)
        out.push_back(name);
    return out;
}

} // namespace uqsim::obs
