/**
 * @file
 * Cascading-QoS culprit localization.
 *
 * When backpressure propagates a backend bottleneck up the tier graph
 * (the paper's Figs 17/19), every tier on the path eventually looks
 * slow — the operator's question is which one degraded *first*. The
 * localizer answers it Seer-style, from the interval series alone:
 *
 *  1. Per tier, establish a baseline (median interval mean latency
 *     over the earliest intervals with traffic) and find the onset —
 *     the first of `sustain` consecutive intervals whose mean exceeds
 *     `factor` x baseline, strictly before the end-to-end violation.
 *  2. Rank tiers by onset (earlier first), breaking ties by graph
 *     depth (deeper — further downstream from the entry — first,
 *     because a cascade reaches the backend before its callers within
 *     one interval), then by inflation over baseline.
 *  3. Attribute shares from TraceAnalysis::criticalPathBreakdown so
 *     the ranking carries "how much of the end-to-end path this tier
 *     owns" next to "how early it degraded".
 *
 * The injected bottleneck of bench_fig19_cascade and
 * bench_fig17_backpressure must rank first with a positive lead time
 * (onset before the client-side violation); tests/obs_culprit_test.cc
 * pins that.
 */

#ifndef UQSIM_OBS_CULPRIT_HH
#define UQSIM_OBS_CULPRIT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hh"
#include "obs/timeseries.hh"
#include "service/app.hh"
#include "trace/analysis.hh"

namespace uqsim::obs {

/** Localization knobs. */
struct CulpritConfig
{
    /** Degradation threshold: mean latency > factor x baseline. */
    double factor = 2.0;

    /** Consecutive degraded intervals that define an onset. */
    unsigned sustain = 2;

    /** Earliest intervals with traffic forming the baseline median. */
    unsigned baselineIntervals = 8;
};

/** One ranked tier. */
struct CulpritEntry
{
    std::string tier;
    /** Start tick of the first sustained degraded interval. */
    Tick onset = 0;
    /** violation time - onset; how early the tier flagged (ns). */
    Tick lead = 0;
    /** Peak interval mean latency before the violation / baseline. */
    double inflation = 0.0;
    /** Baseline interval mean latency (ns). */
    double baselineNs = 0.0;
    /** Hops below the entry tier (entry = 0; deeper = downstream). */
    unsigned depth = 0;
    /** Share of critical-path exclusive time in [0,1] (0 if unknown). */
    double share = 0.0;
};

/**
 * Ranks culprit tiers for one end-to-end violation.
 */
class CulpritLocalizer
{
  public:
    explicit CulpritLocalizer(const TimeSeriesStore &store,
                              CulpritConfig config = {});

    /**
     * Tier depths of @p app's graph: BFS from the entry over handler
     * call targets (entry = 0). Unreachable tiers get depth 0.
     */
    static std::map<std::string, unsigned>
    tierDepths(const service::App &app);

    /**
     * Rank culprits for the violation tripped at @p violation_time.
     * Only tiers whose onset precedes the violation appear — a tier
     * that degraded after the user noticed explains nothing.
     * @p depths    graph depths (see tierDepths)
     * @p breakdown optional critical-path attribution for the share
     *              column (pass the result of criticalPathBreakdown)
     */
    std::vector<CulpritEntry>
    localize(Tick violation_time,
             const std::map<std::string, unsigned> &depths,
             const std::vector<trace::CriticalPathEntry> &breakdown =
                 {}) const;

  private:
    const TimeSeriesStore &store_;
    CulpritConfig config_;
};

/** Render a culprit ranking as an aligned text table. */
std::string culpritTable(const std::vector<CulpritEntry> &ranking);

} // namespace uqsim::obs

#endif // UQSIM_OBS_CULPRIT_HH
