#include "obs/culprit.hh"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <sstream>

#include "core/logging.hh"

namespace uqsim::obs {

CulpritLocalizer::CulpritLocalizer(const TimeSeriesStore &store,
                                   CulpritConfig config)
    : store_(store), config_(config)
{
    if (config_.factor <= 1.0)
        fatal("CulpritLocalizer factor must exceed 1");
    if (config_.sustain == 0 || config_.baselineIntervals == 0)
        fatal("CulpritLocalizer with zero sustain/baseline window");
}

std::map<std::string, unsigned>
CulpritLocalizer::tierDepths(const service::App &app)
{
    std::map<std::string, unsigned> depth;
    for (const service::Microservice *svc : app.services())
        depth[svc->name()] = 0;
    std::deque<std::string> frontier{app.entry()};
    while (!frontier.empty()) {
        const std::string name = std::move(frontier.front());
        frontier.pop_front();
        const unsigned d = depth[name];
        for (const std::string &callee :
             app.service(name).def().handler.callTargets()) {
            // First visit wins: BFS order guarantees the minimum hop
            // count, and revisits would loop on diamond graphs.
            if (callee != app.entry() && depth[callee] == 0 &&
                d + 1 > 0) {
                depth[callee] = d + 1;
                frontier.push_back(callee);
            }
        }
    }
    return depth;
}

std::vector<CulpritEntry>
CulpritLocalizer::localize(
    Tick violation_time, const std::map<std::string, unsigned> &depths,
    const std::vector<trace::CriticalPathEntry> &breakdown) const
{
    double exclusive_total = 0.0;
    std::map<std::string, double> exclusive;
    for (const trace::CriticalPathEntry &e : breakdown) {
        exclusive[e.service] = e.exclusiveNs;
        exclusive_total += e.exclusiveNs;
    }

    std::vector<CulpritEntry> out;
    for (const std::string &name : store_.names()) {
        if (name == kEndToEndSeries)
            continue;
        const Series *s = store_.find(name);
        if (!s || s->size() == 0)
            continue;

        // Baseline: median interval mean over the earliest intervals
        // that saw traffic and ended before the violation.
        std::vector<double> base;
        for (std::size_t i = 0;
             i < s->size() && base.size() < config_.baselineIntervals;
             ++i) {
            const IntervalSample &row = s->at(i);
            if (row.end > violation_time)
                break;
            if (row.count > 0 && row.meanLatencyNs > 0.0)
                base.push_back(row.meanLatencyNs);
        }
        if (base.empty())
            continue;
        std::sort(base.begin(), base.end());
        const double baseline = base[base.size() / 2];
        const double bar = config_.factor * baseline;

        // Onset: the first of `sustain` consecutive degraded
        // intervals, strictly before the violation.
        Tick onset = 0;
        double peak = 0.0;
        unsigned streak = 0;
        for (std::size_t i = 0; i < s->size(); ++i) {
            const IntervalSample &row = s->at(i);
            if (row.start >= violation_time)
                break;
            const bool bad = row.count > 0 && row.meanLatencyNs > bar;
            if (bad) {
                if (streak == 0)
                    onset = row.start;
                ++streak;
                peak = std::max(peak, row.meanLatencyNs);
                if (streak >= config_.sustain)
                    break;
            } else if (row.count > 0) {
                streak = 0;
                onset = 0;
            }
            // Traffic-free intervals are neutral, as in SloMonitor.
        }
        if (streak < config_.sustain || onset >= violation_time)
            continue;

        CulpritEntry e;
        e.tier = name;
        e.onset = onset;
        e.lead = violation_time - onset;
        e.inflation = peak / baseline;
        e.baselineNs = baseline;
        auto dit = depths.find(name);
        e.depth = dit == depths.end() ? 0 : dit->second;
        auto xit = exclusive.find(name);
        if (xit != exclusive.end() && exclusive_total > 0.0)
            e.share = xit->second / exclusive_total;
        out.push_back(std::move(e));
    }

    std::sort(out.begin(), out.end(),
              [](const CulpritEntry &a, const CulpritEntry &b) {
                  if (a.onset != b.onset)
                      return a.onset < b.onset;
                  if (a.depth != b.depth)
                      return a.depth > b.depth;
                  if (a.inflation != b.inflation)
                      return a.inflation > b.inflation;
                  return a.tier < b.tier;
              });
    return out;
}

std::string
culpritTable(const std::vector<CulpritEntry> &ranking)
{
    std::ostringstream os;
    os << "  rank  tier                   onset(s)  lead(s)  "
          "inflation  depth  path-share\n";
    unsigned rank = 1;
    for (const CulpritEntry &e : ranking) {
        os << "  " << std::left << std::setw(6) << rank++
           << std::setw(22) << e.tier << std::right << std::fixed
           << std::setprecision(2) << std::setw(9)
           << static_cast<double>(e.onset) /
                  static_cast<double>(kTicksPerSec)
           << std::setw(9)
           << static_cast<double>(e.lead) /
                  static_cast<double>(kTicksPerSec)
           << std::setw(10) << e.inflation << "x" << std::setw(6)
           << e.depth << std::setw(11) << std::setprecision(3)
           << e.share << "\n";
    }
    if (ranking.empty())
        os << "  (no tier degraded ahead of the violation)\n";
    return os.str();
}

} // namespace uqsim::obs
