/**
 * @file
 * Exports of the time-series store.
 *
 * Three renderings:
 *  - JSON: one object per series, samples as arrays of rows, plus the
 *    store's interval/ring accounting — the `--timeseries-out x.json`
 *    format;
 *  - CSV: one flat table (series,start,end,signal columns), the
 *    `--timeseries-out x.csv` format, trivially plottable;
 *  - Perfetto counter events ("ph":"C"): a comma-separated fragment
 *    for trace::exportPerfettoJson's extra_events hook, so the
 *    existing --trace-out file gains per-tier counter tracks next to
 *    the span timeline.
 *
 * All output is byte-stable: series in sorted name order, samples in
 * time order, fixed decimal formatting.
 */

#ifndef UQSIM_OBS_EXPORT_HH
#define UQSIM_OBS_EXPORT_HH

#include <ostream>
#include <string>

#include "obs/slo.hh"
#include "obs/timeseries.hh"

namespace uqsim::obs {

/** Render @p store as a JSON document. */
void writeTimeSeriesJson(const TimeSeriesStore &store, std::ostream &os);

/** Convenience wrapper returning a string. */
std::string toTimeSeriesJson(const TimeSeriesStore &store);

/** Render @p store as one CSV table (header + one row per sample). */
void writeTimeSeriesCsv(const TimeSeriesStore &store, std::ostream &os);

/** Convenience wrapper returning a string. */
std::string toTimeSeriesCsv(const TimeSeriesStore &store);

/**
 * Render @p store as Chrome trace_event counter events: for every
 * series, per sample, one "latency_ns" event (p50/p95/p99), one
 * "load" event (queue depth / in-flight) and one "rate" event
 * (rps / error rate / utilization), all on a dedicated pid-0
 * "observability" process. The result is a comma-separated fragment
 * of complete JSON objects (no leading/trailing comma) for
 * trace::exportPerfettoJson(..., extra_events). Empty when the store
 * holds no samples.
 */
std::string perfettoCounterEvents(const TimeSeriesStore &store);

} // namespace uqsim::obs

#endif // UQSIM_OBS_EXPORT_HH
