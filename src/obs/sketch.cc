#include "obs/sketch.hh"

#include <algorithm>

#include "core/logging.hh"

namespace uqsim::obs {

QuantileSketch::QuantileSketch(unsigned sub_bucket_bits)
    : subBucketBits_(sub_bucket_bits),
      subBucketCount_(1ull << sub_bucket_bits)
{
    if (sub_bucket_bits < 1 || sub_bucket_bits > 16)
        fatal("QuantileSketch sub_bucket_bits out of range [1,16]");
    // Same scheme as core/histogram.hh: a linear region below
    // subBucketCount, then 2^subBucketBits sub-buckets per octave.
    buckets_.assign(64 * subBucketCount_, 0);
}

std::size_t
QuantileSketch::bucketIndex(std::uint64_t value) const
{
    if (value < subBucketCount_)
        return static_cast<std::size_t>(value);
    // Octave of values whose shifted top subBucketBits+1 bits land in
    // [2^bits, 2^(bits+1)): every sub-bucket's width is 1/2^bits of
    // its own lower bound, which is what makes relativeErrorBound()
    // a guarantee rather than a best case.
    const unsigned msb =
        63u - static_cast<unsigned>(__builtin_clzll(value));
    const unsigned octave = msb - subBucketBits_;
    const std::uint64_t sub =
        (value >> octave) - subBucketCount_; // in [0, 2^bits)
    return (static_cast<std::size_t>(octave) + 1) * subBucketCount_ +
           static_cast<std::size_t>(sub);
}

std::uint64_t
QuantileSketch::bucketUpperBound(std::size_t index) const
{
    if (index < subBucketCount_)
        return static_cast<std::uint64_t>(index);
    const std::size_t octave = index / subBucketCount_ - 1;
    const std::uint64_t sub = index % subBucketCount_;
    return ((sub + subBucketCount_ + 1) << octave) - 1;
}

void
QuantileSketch::record(std::uint64_t value)
{
    const std::size_t idx =
        std::min(bucketIndex(value), buckets_.size() - 1);
    if (buckets_[idx] == 0)
        touched_.push_back(static_cast<std::uint32_t>(idx));
    lo_ = std::min(lo_, idx);
    hi_ = std::max(hi_, idx);
    ++buckets_[idx];
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
}

double
QuantileSketch::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(count_) + 0.5));
    std::uint64_t seen = 0;
    for (std::size_t i = lo_; i <= hi_; ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::clamp(bucketUpperBound(i), min_, max_);
    }
    return max_;
}

void
QuantileSketch::quantiles(const double *qs, std::size_t n,
                          std::uint64_t *out) const
{
    if (count_ == 0) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = 0;
        return;
    }
    // Ranks, with the q<=0 / q>=1 exact answers filled up front.
    std::uint64_t ranks[16];
    if (n > sizeof(ranks) / sizeof(ranks[0]))
        panic("QuantileSketch::quantiles with too many quantiles");
    std::size_t open = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (qs[i] <= 0.0) {
            out[i] = min_;
            ranks[i] = 0;
        } else if (qs[i] >= 1.0) {
            out[i] = max_;
            ranks[i] = 0;
        } else {
            ranks[i] = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       qs[i] * static_cast<double>(count_) + 0.5));
            out[i] = max_;
            ++open;
        }
    }
    std::uint64_t seen = 0;
    for (std::size_t i = lo_; i <= hi_ && open > 0; ++i) {
        if (buckets_[i] == 0)
            continue;
        seen += buckets_[i];
        for (std::size_t k = 0; k < n; ++k) {
            if (ranks[k] != 0 && seen >= ranks[k]) {
                out[k] = std::clamp(bucketUpperBound(i), min_, max_);
                ranks[k] = 0;
                --open;
            }
        }
    }
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (other.subBucketBits_ != subBucketBits_)
        panic("QuantileSketch::merge with different resolution");
    for (std::uint32_t idx : other.touched_) {
        if (buckets_[idx] == 0)
            touched_.push_back(idx);
        buckets_[idx] += other.buckets_[idx];
    }
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    if (other.count_ != 0) {
        lo_ = std::min(lo_, other.lo_);
        hi_ = std::max(hi_, other.hi_);
    }
}

void
QuantileSketch::reset()
{
    for (std::uint32_t idx : touched_)
        buckets_[idx] = 0;
    touched_.clear();
    lo_ = ~std::size_t{0};
    hi_ = 0;
    count_ = 0;
    min_ = ~0ull;
    max_ = 0;
    sum_ = 0.0;
}

} // namespace uqsim::obs
