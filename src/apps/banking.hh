/**
 * @file
 * The secure Banking System end-to-end service (Sec 3.5, Fig 7).
 *
 * Payments, credit cards, loans and wealth management behind a node.js
 * front-end: 34 unique microservices. Every money-moving path passes
 * authentication and ACL checks before transactionPosting commits to
 * the ledger; a relational BankInfoDB holds bank/representative
 * information. Most tiers are Java/Javascript, making the service more
 * compute-intensive and less kernel-bound than Social Network (Fig 14).
 */

#ifndef UQSIM_APPS_BANKING_HH
#define UQSIM_APPS_BANKING_HH

#include "apps/builder.hh"

namespace uqsim::apps {

/** Query-type indices registered by buildBanking. */
struct BankingQueries
{
    unsigned processPayment = 0;
    unsigned payCreditCard = 0;
    unsigned requestLoan = 0;
    unsigned browseInfo = 0;
    unsigned wealthMgmt = 0;
    unsigned openAccount = 0;
};

/**
 * Build the Banking System into @p w. Entry "front-end"; QoS 20ms.
 */
BankingQueries buildBanking(World &w, const AppOptions &opt = {});

} // namespace uqsim::apps

#endif // UQSIM_APPS_BANKING_HH
