/**
 * @file
 * The E-commerce end-to-end service (Sec 3.4, Fig 6).
 *
 * Clothing web shop inspired by Weave Sockshop: 41 unique
 * microservices behind a node.js front-end. Mixed protocols as in the
 * paper (Table 1): REST/HTTP between the front-end and first-level
 * services, Thrift RPC deeper in the graph. Orders are serialized and
 * committed through queueMaster, whose synchronization constrains
 * scalability at high load (Sec 7).
 */

#ifndef UQSIM_APPS_ECOMMERCE_HH
#define UQSIM_APPS_ECOMMERCE_HH

#include "apps/builder.hh"

namespace uqsim::apps {

/** Query-type indices registered by buildEcommerce. */
struct EcommerceQueries
{
    unsigned browseCatalogue = 0;
    unsigned addToCart = 0;
    unsigned placeOrder = 0;
    unsigned wishlist = 0;
    unsigned login = 0;
};

/**
 * Build the E-commerce site into @p w. Entry is "front-end"; QoS 20ms
 * (placing an order is 1-2 orders of magnitude slower than browsing).
 */
EcommerceQueries buildEcommerce(World &w, const AppOptions &opt = {});

/**
 * Monolithic counterpart (Sec 4 / Fig 10): the full shop logic in one
 * Java binary behind nginx, with external memcached/MongoDB backends.
 */
EcommerceQueries buildEcommerceMonolith(World &w,
                                        const AppOptions &opt = {});

} // namespace uqsim::apps

#endif // UQSIM_APPS_ECOMMERCE_HH
