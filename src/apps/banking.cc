#include "apps/banking.hh"

#include "apps/profiles.hh"

namespace uqsim::apps {

namespace {

using service::HandlerSpec;
using service::ServiceDef;
using service::ServiceKind;

ServiceDef
logic(const std::string &name, cpu::ServiceProfile profile,
      HandlerSpec handler, unsigned threads = 16)
{
    ServiceDef def;
    def.name = name;
    def.profile = std::move(profile);
    def.handler = std::move(handler);
    def.kind = ServiceKind::Stateless;
    def.threadsPerInstance = threads;
    def.protocol = rpc::ProtocolModel::thrift();
    return def;
}

} // namespace

BankingQueries
buildBanking(World &w, const AppOptions &opt)
{
    service::App &app = *w.app;

    // ---- State: 5 memcached tiers + 4 MongoDB + relational BankInfoDB --
    addCacheTier(w, "customer-memcached", opt.cacheShards);
    addCacheTier(w, "transaction-memcached", opt.cacheShards);
    addCacheTier(w, "offer-memcached", opt.cacheShards, 40.0);
    addCacheTier(w, "wealth-memcached", opt.cacheShards, 45.0);
    addCacheTier(w, "account-memcached", opt.cacheShards);
    addMongoTier(w, "customer-db", opt.dbShards, 280.0);
    addMongoTier(w, "transaction-db", opt.dbShards, 360.0);
    addMongoTier(w, "wealth-db", opt.dbShards, 280.0);
    addMongoTier(w, "offer-db", opt.dbShards, 240.0);
    addMysqlTier(w, "bank-info-db", opt.dbShards, 420.0);

    // ---- Leaves -----------------------------------------------------------
    addLogicTier(w,
                 logic("customerInfo", javaMicroProfile("customerInfo"),
                       HandlerSpec{}
                           .compute(computeUs(80.0, 0.4))
                           .cache("customer-memcached", "customer-db",
                                  0.95)),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("customerActivity", javaMicroProfile("customerActivity"),
              HandlerSpec{}
                  .compute(computeUs(90.0, 0.4))
                  .cache("transaction-memcached", "transaction-db", 0.90)),
        opt.instancesPerTier);
    addLogicTier(w,
                 logic("userPreferences",
                       nodejsMicroProfile("userPreferences"),
                       HandlerSpec{}
                           .compute(computeUs(60.0, 0.4))
                           .cache("customer-memcached", "customer-db",
                                  0.96)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("contact", nodejsMicroProfile("contact"),
                       HandlerSpec{}
                           .compute(computeUs(70.0, 0.4))
                           .call("bank-info-db")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("offerBanners", nodejsMicroProfile("offerBanners"),
                       HandlerSpec{}
                           .compute(computeUs(60.0, 0.4))
                           .cache("offer-memcached", "offer-db", 0.95)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("media", nodejsMicroProfile("media"),
                       HandlerSpec{}.compute(computeUs(90.0, 0.5))),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("ads", javaMicroProfile("ads"),
                       HandlerSpec{}.compute(computeUs(140.0, 0.5))),
                 opt.instancesPerTier);
    for (const char *idx : {"index0", "index1"}) {
        addLogicTier(w,
                     logic(idx, xapianProfile(idx),
                           HandlerSpec{}.compute(computeUs(170.0, 0.5))),
                     opt.instancesPerTier);
    }
    addLogicTier(w,
                 logic("search", xapianProfile("search"),
                       HandlerSpec{}
                           .compute(computeUs(40.0, 0.4))
                           .parallelCall("index0", 1)
                           .parallelCall("index1", 1)),
                 opt.instancesPerTier);

    // ---- Security / ledger -----------------------------------------------
    addLogicTier(w,
                 logic("ACL", javaMicroProfile("ACL"),
                       HandlerSpec{}
                           .compute(computeUs(120.0, 0.4))
                           .cache("customer-memcached", "customer-db", 0.97)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("authentication",
                       javaMicroProfile("authentication"),
                       HandlerSpec{}
                           .compute(computeUs(420.0, 0.5)) // crypto checks
                           .cache("customer-memcached", "customer-db", 0.92)
                           .call("ACL")),
                 opt.instancesPerTier);
    addLogicTier(
        w,
        logic("transactionPosting",
              javaMicroProfile("transactionPosting"),
              HandlerSpec{}
                  .compute(computeUs(260.0, 0.5))
                  .call("transaction-db")
                  .call("transaction-memcached"),
              32),
        opt.instancesPerTier);
    addLogicTier(w,
                 logic("payments", javaMicroProfile("payments"),
                       HandlerSpec{}
                           .compute(computeUs(540.0, 0.5))
                           .call("customerInfo")
                           .call("transactionPosting"),
                       32),
                 opt.instancesPerTier);

    // ---- Products -----------------------------------------------------------
    addLogicTier(w,
                 logic("investmentAccount",
                       javaMicroProfile("investmentAccount"),
                       HandlerSpec{}
                           .compute(computeUs(200.0, 0.5))
                           .cache("account-memcached", "customer-db",
                                  0.94)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("depositAccount",
                       javaMicroProfile("depositAccount"),
                       HandlerSpec{}
                           .compute(computeUs(160.0, 0.5))
                           .cache("account-memcached", "customer-db",
                                  0.94)),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("personalLending",
                       javaMicroProfile("personalLending"),
                       HandlerSpec{}
                           .compute(computeUs(380.0, 0.5))
                           .call("customerInfo")
                           .call("customerActivity")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("businessLending",
                       javaMicroProfile("businessLending"),
                       HandlerSpec{}
                           .compute(computeUs(420.0, 0.5))
                           .call("customerInfo")
                           .call("customerActivity")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("creditCard", javaMicroProfile("creditCard"),
                       HandlerSpec{}
                           .compute(computeUs(300.0, 0.5))
                           .call("customerInfo")
                           .call("payments")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("mortgages", javaMicroProfile("mortgages"),
                       HandlerSpec{}
                           .compute(computeUs(360.0, 0.5))
                           .call("customerInfo")
                           .call("customerActivity")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("wealthMgmt", javaMicroProfile("wealthMgmt"),
                       HandlerSpec{}
                           .compute(computeUs(320.0, 0.5))
                           .cache("wealth-memcached", "wealth-db", 0.93)
                           .call("customerInfo")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("openAccount", javaMicroProfile("openAccount"),
                       HandlerSpec{}
                           .compute(computeUs(280.0, 0.5))
                           .call("customerInfo")
                           .call("depositAccount")),
                 opt.instancesPerTier);
    addLogicTier(w,
                 logic("openCreditCard",
                       javaMicroProfile("openCreditCard"),
                       HandlerSpec{}
                           .compute(computeUs(300.0, 0.5))
                           .call("customerInfo")
                           .call("creditCard")),
                 opt.instancesPerTier);

    // ---- Front end -----------------------------------------------------------
    {
        ServiceDef fe = logic(
            "front-end", nodejsMicroProfile("front-end"),
            HandlerSpec{}
                .compute(computeUs(200.0, 0.5))
                .call("authentication")
                .callTagged("payment", "payments")
                .callTagged("creditcard", "creditCard")
                .callTagged("loan", "personalLending")
                .callTagged("bizloan", "businessLending")
                .callTagged("browse", "contact")
                .callTagged("browse", "offerBanners")
                .callTagged("wealth", "wealthMgmt")
                .callTagged("open", "openAccount")
                .callWithProbability("ads", 0.25)
                .callWithProbability("search", 0.1)
                .callWithProbability("media", 0.2),
            64);
        fe.kind = ServiceKind::Frontend;
        fe.protocol = rpc::ProtocolModel::restHttp1();
        fe.protocol.connectionsPerPair = 8192; // per-user client connections
        addLogicTier(w, std::move(fe), opt.frontendInstances);
    }

    app.setEntry("front-end");
    app.setQosLatency(20 * kTicksPerMs);

    BankingQueries q;
    q.processPayment =
        app.addQueryType({"processPayment", 30.0, 1.0, 0, {"payment"}});
    q.payCreditCard =
        app.addQueryType({"payCreditCard", 15.0, 1.0, 0, {"creditcard"}});
    q.requestLoan =
        app.addQueryType({"requestLoan", 10.0, 1.1, 0, {"loan"}});
    q.browseInfo =
        app.addQueryType({"browseInfo", 25.0, 1.0, 0, {"browse"}});
    q.wealthMgmt =
        app.addQueryType({"wealthMgmt", 10.0, 1.0, 0, {"wealth"}});
    q.openAccount =
        app.addQueryType({"openAccount", 10.0, 1.0, 0, {"open"}});
    app.validate();
    return q;
}

} // namespace uqsim::apps
