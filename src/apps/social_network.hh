/**
 * @file
 * The Social Network end-to-end service (Sec 3.2, Fig 4).
 *
 * Broadcast-style social network with unidirectional follow
 * relationships: 36 unique microservices (25 logic tiers, 6 memcached
 * caches, 5 MongoDB stores). Requests arrive over http at an nginx
 * load balancer, a php-fpm web tier fans out to Thrift microservices
 * for composing/reading posts, ads, search (Xapian leaves), ML
 * recommendations and social-graph maintenance.
 *
 * Query types follow Sec 3.8: readTimeline dominates; composePost
 * varies by embedded media (text / image / video); repost is the most
 * expensive (read + prepend + re-broadcast); login and followUser
 * round out the mix.
 */

#ifndef UQSIM_APPS_SOCIAL_NETWORK_HH
#define UQSIM_APPS_SOCIAL_NETWORK_HH

#include "apps/builder.hh"

namespace uqsim::apps {

/** Query-type indices registered by buildSocialNetwork. */
struct SocialNetworkQueries
{
    unsigned readTimeline = 0;
    unsigned composeText = 0;
    unsigned composeImage = 0;
    unsigned composeVideo = 0;
    unsigned repost = 0;
    unsigned reply = 0;
    unsigned directMessage = 0;
    unsigned login = 0;
    unsigned followUser = 0;
    unsigned unfollowUser = 0;
    unsigned blockUser = 0;
};

/**
 * Build the Social Network into @p w. Returns the registered query
 * type indices. The app entry is "nginx-lb"; QoS defaults to 10ms.
 */
SocialNetworkQueries buildSocialNetwork(World &w,
                                        const AppOptions &opt = {});

/**
 * Monolithic counterpart (Sec 4): all logic in one Java binary behind
 * nginx, with the memcached/MongoDB back-ends kept external.
 */
SocialNetworkQueries buildSocialNetworkMonolith(World &w,
                                                const AppOptions &opt = {});

} // namespace uqsim::apps

#endif // UQSIM_APPS_SOCIAL_NETWORK_HH
