/**
 * @file
 * Calibrated static profiles for the open-source components the suite
 * is built from (Sec 3.1) and for the microservice classes the paper's
 * characterization distinguishes (Sec 4).
 *
 * Calibration targets (from the paper's figures):
 *  - L1i MPKI (Fig 11): monolith ~65-70, nginx ~30, MongoDB ~38,
 *    memcached ~12, single-concern microservices ~2-12, wishlist ~1.
 *  - Cycle breakdown (Fig 10): front-end-stall dominated, retiring
 *    ~21% average for Social Network; Search (Xapian) high IPC;
 *    Recommender very low IPC.
 *  - Kernel share (Fig 14): memcached/MongoDB kernel-heavy; node.js
 *    and Java tiers more user/library time.
 *  - MongoDB I/O-bound (Fig 12: tolerates minimum frequency).
 */

#ifndef UQSIM_APPS_PROFILES_HH
#define UQSIM_APPS_PROFILES_HH

#include <string>

#include "cpu/microarch.hh"

namespace uqsim::apps {

using cpu::ServiceProfile;

/** nginx: web server / load balancer (C). */
ServiceProfile nginxProfile(const std::string &name = "nginx");

/** php-fpm web tier behind nginx (PHP/C). */
ServiceProfile phpFpmProfile(const std::string &name = "php-fpm");

/** memcached in-memory KV cache (C). */
ServiceProfile memcachedProfile(const std::string &name = "memcached");

/** MongoDB persistent store (C++); heavily I/O-bound. */
ServiceProfile mongodbProfile(const std::string &name = "mongodb");

/** MySQL relational store; I/O-bound with more compute than Mongo. */
ServiceProfile mysqlProfile(const std::string &name = "mysql");

/** NFS file store for streaming media. */
ServiceProfile nfsProfile(const std::string &name = "nfs");

/** Small single-concern Thrift microservice in C/C++. */
ServiceProfile cppMicroProfile(const std::string &name);

/** Single-concern microservice in Java (bigger footprint, JIT). */
ServiceProfile javaMicroProfile(const std::string &name);

/** Single-concern microservice in Go. */
ServiceProfile goMicroProfile(const std::string &name);

/** node.js microservice (event-driven, library-heavy). */
ServiceProfile nodejsMicroProfile(const std::string &name);

/** Python microservice. */
ServiceProfile pythonMicroProfile(const std::string &name);

/** Xapian-based search leaf: locality-optimized, high IPC. */
ServiceProfile xapianProfile(const std::string &name = "search-index");

/** ML recommender engine: memory-bound, very low IPC. */
ServiceProfile recommenderProfile(const std::string &name = "recommender");

/** Monolithic Java implementation of an end-to-end service. */
ServiceProfile monolithProfile(const std::string &name = "monolith");

/** Queue broker (RabbitMQ-like). */
ServiceProfile queueProfile(const std::string &name = "queue");

/** nginx-hls video streaming module. */
ServiceProfile streamingProfile(const std::string &name = "nginx-hls");

} // namespace uqsim::apps

#endif // UQSIM_APPS_PROFILES_HH
