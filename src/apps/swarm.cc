#include "apps/swarm.hh"

#include "apps/profiles.hh"
#include "core/logging.hh"

namespace uqsim::apps {

namespace {

using service::HandlerSpec;
using service::ServiceDef;
using service::ServiceKind;

/** Profile of a drone-local sensing/actuation service. */
cpu::ServiceProfile
droneProfile(const std::string &name, const std::string &lang = "Javascript")
{
    cpu::ServiceProfile p;
    p.name = name;
    p.codeFootprintKb = 180.0;
    p.branchEntropy = 0.2;
    p.memIntensity = 0.35;
    p.kernelShare = 0.20;
    p.libShare = 0.45; // Cylon.js / ardrone-autonomy libraries
    p.language = lang;
    return p;
}

/** Image recognition (jimp / OpenCV): memory-streaming, low IPC. */
cpu::ServiceProfile
imageRecProfile()
{
    cpu::ServiceProfile p;
    p.name = "imageRecognition";
    p.codeFootprintKb = 350.0;
    p.branchEntropy = 0.10;
    p.memIntensity = 0.85;
    p.kernelShare = 0.10;
    p.libShare = 0.50;
    p.language = "node.js";
    return p;
}

/**
 * A service sharded one-instance-per-drone. ServiceKind::Cache gives
 * user-keyed shard selection, and because every drone-local tier has
 * the same instance count, a request (keyed by its drone id) stays on
 * one drone for its whole local pipeline - IPC over loopback, exactly
 * like the paper's native on-drone deployment.
 */
service::Microservice &
addDroneTier(World &w, ServiceDef def,
             const std::vector<unsigned> &drone_servers)
{
    def.kind = ServiceKind::Cache;
    service::Microservice &svc = w.app->addService(std::move(def));
    for (unsigned sid : drone_servers)
        svc.addInstance(w.cluster.server(sid));
    return svc;
}

ServiceDef
tier(const std::string &name, cpu::ServiceProfile profile,
     HandlerSpec handler, unsigned threads = 8)
{
    ServiceDef def;
    def.name = name;
    def.profile = std::move(profile);
    def.handler = std::move(handler);
    def.threadsPerInstance = threads;
    // Cloud and drones talk over http to avoid Thrift's dependencies
    // on the edge devices (Sec 3.6); drone-local IPC is cheap anyway.
    def.protocol = rpc::ProtocolModel::restHttp1();
    def.protocol.connectionsPerPair = 32;
    return def;
}

} // namespace

SwarmQueries
buildSwarm(World &w, SwarmVariant variant, const SwarmOptions &opt)
{
    service::App &app = *w.app;
    if (opt.drones == 0)
        fatal("buildSwarm with zero drones");

    // ---- Add the drones to the cluster, behind the wireless router ----
    std::vector<unsigned> drones;
    for (unsigned i = 0; i < opt.drones; ++i) {
        cpu::Server &d = w.cluster.addServer(cpu::CoreModel::edgeArm());
        w.network->attachWireless(d.id());
        drones.push_back(d.id());
    }
    if (variant == SwarmVariant::Cloud) {
        // Sensor streams originate at the drones: the client (which
        // models the swarm's request sources) sits behind the router.
        w.network->attachWireless(w.clientServer().id());
    }

    // ---- Cloud-resident persistent stores (8 DBs, both variants) ----
    for (const char *db :
         {"target-db", "orientation-db", "luminosity-db", "speed-db",
          "location-db", "video-db", "image-db", "stock-image-db"}) {
        addMongoTier(w, db, opt.base.dbShards, 300.0);
    }

    // ---- constructRoute: Java service on the cloud (both variants) ----
    addLogicTier(w,
                 tier("constructRoute", javaMicroProfile("constructRoute"),
                      HandlerSpec{}
                          .compute(computeUs(800.0, 0.5))
                          .call("target-db")
                          .call("location-db")),
                 opt.base.instancesPerTier);

    const bool edge = variant == SwarmVariant::Edge;

    // ---- Sensor/actuation tiers (always on the drones) ---------------
    addDroneTier(w,
                 tier("camera-image", droneProfile("camera-image"),
                      HandlerSpec{}.compute(computeUs(2000.0, 0.3))),
                 drones);
    addDroneTier(w,
                 tier("camera-video", droneProfile("camera-video"),
                      HandlerSpec{}
                          .compute(computeUs(3000.0, 0.3))
                          .callWithProbability("video-db", 0.2)),
                 drones);
    for (const char *sensor :
         {"location", "speed", "luminosity", "orientation"}) {
        addDroneTier(w,
                     tier(sensor, droneProfile(sensor),
                          HandlerSpec{}.compute(computeUs(400.0, 0.3))),
                     drones);
    }
    addDroneTier(w,
                 tier("log", droneProfile("log", "node.js"),
                      HandlerSpec{}.compute(computeUs(300.0, 0.3))),
                 drones);

    // ---- Processing pipeline: on the drones (edge) or the cloud ------
    auto place = [&](ServiceDef def) -> service::Microservice & {
        if (edge)
            return addDroneTier(w, std::move(def), drones);
        return addLogicTier(w, std::move(def), opt.base.instancesPerTier);
    };

    place(tier("imageRecognition", imageRecProfile(),
               HandlerSpec{}
                   .compute(Dist::lognormalMean(5.0e8, 0.35)) // ~0.5G cyc
                   .callWithProbability("stock-image-db", 0.5)
                   .callWithProbability("image-db", 0.3),
               edge ? 2u : 16u));
    place(tier("obstacleAvoidance",
               cppMicroProfile("obstacleAvoidance"),
               HandlerSpec{}
                   .compute(Dist::lognormalMean(6.0e6, 0.35)) // ~6M cyc
                   .callWithProbability("speed-db", 0.15),
               edge ? 4u : 16u));
    place(tier("motionControl", droneProfile("motionControl"),
               HandlerSpec{}
                   .compute(computeUs(1200.0, 0.4))
                   .call("log"),
               edge ? 4u : 16u));

    // ---- Controller: the pipeline root -------------------------------
    {
        HandlerSpec h;
        h.compute(computeUs(600.0, 0.4));
        h.callTagged("img", "camera-image");
        h.callTaggedWithMedia("img", "imageRecognition");
        // Obstacle avoidance reads the inertial sensors first.
        h.callTagged("oa", "location");
        h.callTagged("oa", "speed");
        h.callTagged("oa", "orientation");
        h.callTagged("oa", "luminosity");
        h.callTagged("oa", "obstacleAvoidance");
        h.callTagged("oa", "motionControl");
        h.callWithProbability("constructRoute", 0.05);
        h.call("log");
        addDroneTier(w, tier("controller", droneProfile("controller"), h, 8),
                     drones);
    }

    // ---- Cloud-only coordination tiers (Cloud variant) ----------------
    if (!edge) {
        addLogicTier(w,
                     tier("telemetry", nodejsMicroProfile("telemetry"),
                          HandlerSpec{}
                              .compute(computeUs(150.0, 0.4))
                              .call("location-db")),
                     opt.base.instancesPerTier);
        addLogicTier(w,
                     tier("discovery", goMicroProfile("discovery"),
                          HandlerSpec{}.compute(computeUs(80.0, 0.4))),
                     opt.base.instancesPerTier);
        {
            HandlerSpec h;
            h.compute(computeUs(300.0, 0.4));
            h.callTaggedWithMedia("img", "imageRecognition");
            h.callTagged("oa", "obstacleAvoidance");
            h.callTagged("oa", "motionControl");
            // Image-recognition results also steer the drone.
            h.callTagged("img", "motionControl");
            h.callWithProbability("telemetry", 0.2);
            h.callWithProbability("discovery", 0.05);
            addLogicTier(w, tier("gateway", goMicroProfile("gateway"), h, 32),
                         opt.base.instancesPerTier);
        }
        addLogicTier(w,
                     tier("frontend", nodejsMicroProfile("frontend"),
                          HandlerSpec{}
                              .compute(computeUs(200.0, 0.4))
                              .callWithMedia("gateway"),
                          64),
                     opt.base.frontendInstances);
    }

    // ---- Entry --------------------------------------------------------
    {
        HandlerSpec h;
        h.compute(computeUs(45.0, 0.4));
        if (edge)
            h.callWithMedia("controller");
        else
            h.callWithMedia("frontend");
        ServiceDef lb = tier("nginx-lb", nginxProfile("nginx-lb"), h, 128);
        lb.kind = ServiceKind::Frontend;
        lb.protocol.connectionsPerPair = 8192; // per-user client connections
        addLogicTier(w, std::move(lb), opt.base.frontendInstances);
    }

    // In the Cloud variant the *processing* path skips the on-drone
    // controller for compute, but motionControl's actuation commands
    // still land on the drones: redirect motionControl -> controller
    // (drone) instead of log for actuation.
    if (!edge) {
        service::ServiceDef &mc =
            app.service("motionControl").mutableDef();
        mc.handler = HandlerSpec{}
                         .compute(computeUs(1200.0, 0.4))
                         .call("controller");
        // The drone-side controller just applies the command.
        service::ServiceDef &ctl = app.service("controller").mutableDef();
        ctl.handler = HandlerSpec{}
                          .compute(computeUs(600.0, 0.4))
                          .call("log");
    }

    app.setEntry("nginx-lb");
    // Image-recognition latencies run into seconds (Fig 9's y-axis);
    // the QoS target reflects that scale.
    app.setQosLatency(2500 * kTicksPerMs);

    SwarmQueries q;
    q.imageRecognition = app.addQueryType(
        {"imageRecognition", 50.0, 1.0, 80 * kKiB, {"img"}});
    q.obstacleAvoidance = app.addQueryType(
        {"obstacleAvoidance", 50.0, 1.0, 4 * kKiB, {"oa"}});
    app.validate();
    return q;
}

} // namespace uqsim::apps
