#include "apps/catalog.hh"

#include "apps/banking.hh"
#include "apps/ecommerce.hh"
#include "apps/media_service.hh"
#include "apps/social_network.hh"
#include "apps/swarm.hh"
#include "core/logging.hh"

namespace uqsim::apps {

const std::vector<AppId> &
allApps()
{
    static const std::vector<AppId> apps = {
        AppId::SocialNetwork, AppId::MediaService, AppId::Ecommerce,
        AppId::Banking,       AppId::SwarmCloud,   AppId::SwarmEdge,
    };
    return apps;
}

const std::vector<AppId> &
cloudApps()
{
    static const std::vector<AppId> apps = {
        AppId::SocialNetwork,
        AppId::MediaService,
        AppId::Ecommerce,
        AppId::Banking,
    };
    return apps;
}

const AppInfo &
appInfo(AppId id)
{
    // Metadata transcribed from Table 1 of the paper.
    static const std::vector<AppInfo> table = {
        {AppId::SocialNetwork, "Social Network", 36, 15198, "RPC", 9286,
         52863,
         "34% C, 23% C++, 18% Java, 7% node.js, 6% Python, 5% Scala, "
         "3% PHP, 2% Javascript, 2% Go"},
        {AppId::MediaService, "Movie Reviewing", 38, 12155, "RPC", 9853,
         48001,
         "30% C, 21% C++, 20% Java, 10% PHP, 8% Scala, 5% node.js, "
         "3% Python, 3% Javascript"},
        {AppId::Ecommerce, "E-commerce Website", 41, 16194, "REST+RPC",
         7456, 12085,
         "21% Java, 16% C++, 15% C, 14% Go, 10% Javascript, 7% node.js, "
         "5% Scala, 4% HTML, 3% Ruby"},
        {AppId::Banking, "Banking System", 34, 13876, "RPC", 4757, 31156,
         "29% C, 25% Javascript, 16% Java, 16% node.js, 11% C++, "
         "3% Python"},
        {AppId::SwarmCloud, "Swarm Cloud", 25, 11283, "REST+RPC", 7224,
         21574,
         "36% C, 19% Java, 16% Javascript, 14% node.js, 13% C++, "
         "2% Python"},
        {AppId::SwarmEdge, "Swarm Edge", 21, 13876, "REST", 4757, 0,
         "29% C, 25% Javascript, 16% Java, 16% node.js, 11% C++, "
         "3% Python"},
    };
    for (const AppInfo &info : table)
        if (info.id == id)
            return info;
    panic("appInfo: unknown app id");
}

void
buildApp(World &w, AppId id, const AppOptions &opt)
{
    switch (id) {
      case AppId::SocialNetwork:
        buildSocialNetwork(w, opt);
        return;
      case AppId::MediaService:
        buildMediaService(w, opt);
        return;
      case AppId::Ecommerce:
        buildEcommerce(w, opt);
        return;
      case AppId::Banking:
        buildBanking(w, opt);
        return;
      case AppId::SwarmCloud: {
        SwarmOptions so;
        so.base = opt;
        buildSwarm(w, SwarmVariant::Cloud, so);
        return;
      }
      case AppId::SwarmEdge: {
        SwarmOptions so;
        so.base = opt;
        buildSwarm(w, SwarmVariant::Edge, so);
        return;
      }
    }
    panic("buildApp: unknown app id");
}

std::string
appName(AppId id)
{
    return appInfo(id).name;
}

} // namespace uqsim::apps
