#include "apps/builder.hh"

#include "apps/profiles.hh"
#include "core/logging.hh"
#include "core/rng.hh"

namespace uqsim::apps {

World::World(WorldConfig config) : World(std::move(config), External{}) {}

World::World(WorldConfig config, SimContext external_ctx)
    : World(std::move(config), External{true, external_ctx})
{}

World::World(WorldConfig config, External ext)
    : ctx(ext.present ? ext.ctx : SimContext(sim)), cluster(ctx),
      config_(config)
{
    if (config_.workerServers == 0)
        fatal("World with no worker servers");
    cluster.addServers(config_.workerServers, config_.coreModel);

    // The client machine: plenty of fast cores so client-side protocol
    // processing never limits offered load.
    cpu::CoreModel client_model = cpu::CoreModel::xeon();
    client_model.name = "client";
    client_model.coresPerServer = 64;
    client_model.nominalFreqMhz = 3000.0;
    client_ = &cluster.addServer(client_model);

    Rng root(config_.seed);
    network = std::make_unique<net::Network>(ctx, config_.netConfig,
                                             root.fork());
    app = std::make_unique<service::App>(ctx, cluster, *network,
                                         config_.appConfig, root.next());
    app->setClientServer(*client_);
}

cpu::Server &
World::nextWorker()
{
    cpu::Server &s = cluster.server(
        static_cast<unsigned>(cursor_ % config_.workerServers));
    ++cursor_;
    return s;
}

cpu::Server &
World::worker(unsigned idx)
{
    if (idx >= config_.workerServers)
        panic(strCat("worker(", idx, ") out of range"));
    return cluster.server(idx);
}

Dist
computeUs(double mean_us, double sigma)
{
    // ~0.6 IPC x 2.4 GHz = 1440 cycles per microsecond of work on the
    // reference platform.
    return Dist::lognormalMean(mean_us * 1440.0, sigma).clampedMin(500.0);
}

Dist
computeUsConst(double us)
{
    return Dist::constant(us * 1440.0);
}

service::Microservice &
addLogicTier(World &w, service::ServiceDef def, unsigned instances)
{
    service::Microservice &svc = w.app->addService(std::move(def));
    for (unsigned i = 0; i < std::max(1u, instances); ++i)
        svc.addInstance(w.nextWorker());
    return svc;
}

service::Microservice &
addCacheTier(World &w, const std::string &name, unsigned shards,
             double mean_us)
{
    service::ServiceDef def;
    def.name = name;
    def.profile = memcachedProfile(name);
    def.kind = service::ServiceKind::Cache;
    def.threadsPerInstance = 32;
    def.handler.compute(computeUs(mean_us, 0.4));
    def.defaultRequestBytes = 128;
    def.defaultResponseBytes = 2048;
    service::Microservice &svc = w.app->addService(std::move(def));
    for (unsigned i = 0; i < std::max(1u, shards); ++i)
        svc.addInstance(w.nextWorker());
    return svc;
}

service::Microservice &
addMongoTier(World &w, const std::string &name, unsigned shards,
             double mean_us)
{
    service::ServiceDef def;
    def.name = name;
    def.profile = mongodbProfile(name);
    def.kind = service::ServiceKind::Database;
    def.threadsPerInstance = 32;
    def.handler.compute(computeUs(mean_us, 0.6));
    def.defaultRequestBytes = 512;
    def.defaultResponseBytes = 4096;
    service::Microservice &svc = w.app->addService(std::move(def));
    for (unsigned i = 0; i < std::max(1u, shards); ++i)
        svc.addInstance(w.nextWorker());
    return svc;
}

service::Microservice &
addMysqlTier(World &w, const std::string &name, unsigned shards,
             double mean_us)
{
    service::ServiceDef def;
    def.name = name;
    def.profile = mysqlProfile(name);
    def.kind = service::ServiceKind::Database;
    def.threadsPerInstance = 32;
    def.handler.compute(computeUs(mean_us, 0.6));
    def.defaultRequestBytes = 512;
    def.defaultResponseBytes = 4096;
    service::Microservice &svc = w.app->addService(std::move(def));
    for (unsigned i = 0; i < std::max(1u, shards); ++i)
        svc.addInstance(w.nextWorker());
    return svc;
}

void
tightenStatefulTiers(service::App &app, double cache_cost_scale,
                     unsigned cache_threads, double db_cost_scale,
                     unsigned db_threads)
{
    for (service::Microservice *svc : app.services()) {
        const auto kind = svc->def().kind;
        double scale = 1.0;
        unsigned threads = 0;
        if (kind == service::ServiceKind::Cache) {
            scale = cache_cost_scale;
            threads = cache_threads;
        } else if (kind == service::ServiceKind::Database) {
            scale = db_cost_scale;
            threads = db_threads;
        } else {
            continue;
        }
        for (service::Stage &st : svc->mutableDef().handler.stages)
            if (st.kind == service::Stage::Kind::Compute)
                st.computeCycles = st.computeCycles.scaled(scale);
        if (threads > 0)
            svc->setThreadsPerInstance(threads);
    }
}

void
throttleLogicTiers(service::App &app, unsigned frontend_threads,
                   unsigned logic_threads)
{
    for (service::Microservice *svc : app.services()) {
        const auto kind = svc->def().kind;
        if (kind == service::ServiceKind::Frontend)
            svc->setThreadsPerInstance(frontend_threads);
        else if (kind == service::ServiceKind::Stateless)
            svc->setThreadsPerInstance(logic_threads);
    }
}

} // namespace uqsim::apps
