/**
 * @file
 * Single-tier monolithic baselines (Figs 3, 12): the traditional
 * interactive cloud applications the paper contrasts the end-to-end
 * microservice graphs against.
 */

#ifndef UQSIM_APPS_SINGLE_TIER_HH
#define UQSIM_APPS_SINGLE_TIER_HH

#include <string>

#include "apps/builder.hh"

namespace uqsim::apps {

/** The five standalone interactive services of Fig 12 (top row). */
enum class SingleTierKind
{
    Nginx,        ///< static web serving
    Memcached,    ///< in-memory KV store
    MongoDB,      ///< persistent store (I/O-bound)
    Xapian,       ///< websearch leaf (TailBench)
    Recommender,  ///< ML inference
};

/** @return printable name. */
std::string singleTierName(SingleTierKind kind);

/**
 * Build the standalone service into @p w: client -> service, no other
 * tiers. Entry is the service itself; QoS is service-specific
 * (5x the unloaded mean latency, the usual tail SLO convention).
 */
void buildSingleTier(World &w, SingleTierKind kind,
                     unsigned instances = 2);

} // namespace uqsim::apps

#endif // UQSIM_APPS_SINGLE_TIER_HH
