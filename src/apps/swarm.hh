/**
 * @file
 * Swarm coordination IoT service (Sec 3.6, Fig 8).
 *
 * Coordinates a swarm of programmable drones doing image recognition
 * and obstacle avoidance. Two variants:
 *  - Edge (21 services): motion planning, image recognition and
 *    obstacle avoidance run natively on the drones over IPC; the
 *    cloud only constructs routes and keeps persistent sensor copies.
 *    Avoids the wifi latency but is limited by on-board resources.
 *  - Cloud (25 services): the drones only collect/transmit sensor data
 *    (plus a local node.js logger); every action pays the cloud-edge
 *    wifi latency but benefits from the cluster's resources.
 */

#ifndef UQSIM_APPS_SWARM_HH
#define UQSIM_APPS_SWARM_HH

#include "apps/builder.hh"

namespace uqsim::apps {

/** Which Swarm deployment to build. */
enum class SwarmVariant
{
    Edge,
    Cloud,
};

/** Query-type indices registered by buildSwarm. */
struct SwarmQueries
{
    unsigned imageRecognition = 0;
    unsigned obstacleAvoidance = 0;
};

/** Extra knobs for the Swarm build. */
struct SwarmOptions
{
    AppOptions base{};
    /** Number of drones in the swarm (paper: 24 Parrot AR2.0). */
    unsigned drones = 8;
};

/**
 * Build the Swarm service into @p w. Drone servers are appended to the
 * cluster and attached over the wireless link. Entry is "controller"
 * (edge) or "nginx-lb" (cloud); QoS 150ms.
 */
SwarmQueries buildSwarm(World &w, SwarmVariant variant,
                        const SwarmOptions &opt = {});

} // namespace uqsim::apps

#endif // UQSIM_APPS_SWARM_HH
