#include "apps/profiles.hh"

namespace uqsim::apps {

namespace {

ServiceProfile
base(const std::string &name, double footprint_kb, double branch,
     double mem, double kernel, double lib, double io,
     const std::string &lang)
{
    ServiceProfile p;
    p.name = name;
    p.codeFootprintKb = footprint_kb;
    p.branchEntropy = branch;
    p.memIntensity = mem;
    p.kernelShare = kernel;
    p.libShare = lib;
    p.ioBoundFraction = io;
    p.language = lang;
    return p;
}

} // namespace

ServiceProfile
nginxProfile(const std::string &name)
{
    // Fig 11: nginx L1i MPKI ~30 => footprint ~700KB over a 32KB L1i.
    return base(name, 700.0, 0.22, 0.35, 0.55, 0.18, 0.05, "C");
}

ServiceProfile
phpFpmProfile(const std::string &name)
{
    return base(name, 900.0, 0.30, 0.40, 0.40, 0.30, 0.02, "PHP");
}

ServiceProfile
memcachedProfile(const std::string &name)
{
    // Small codebase, almost all time in kernel TCP handling.
    return base(name, 250.0, 0.15, 0.30, 0.70, 0.10, 0.02, "C");
}

ServiceProfile
mongodbProfile(const std::string &name)
{
    // I/O-bound (Fig 12: tolerates minimum frequency at max load).
    return base(name, 950.0, 0.25, 0.45, 0.45, 0.20, 0.80, "C++");
}

ServiceProfile
mysqlProfile(const std::string &name)
{
    return base(name, 1100.0, 0.28, 0.45, 0.40, 0.22, 0.65, "C++");
}

ServiceProfile
nfsProfile(const std::string &name)
{
    return base(name, 300.0, 0.12, 0.30, 0.60, 0.10, 0.90, "C");
}

ServiceProfile
cppMicroProfile(const std::string &name)
{
    // Tiny single-concern Thrift service: low MPKI, kernel-heavy
    // because most of its work is RPC handling.
    return base(name, 120.0, 0.18, 0.32, 0.42, 0.28, 0.02, "C++");
}

ServiceProfile
javaMicroProfile(const std::string &name)
{
    return base(name, 300.0, 0.22, 0.38, 0.30, 0.34, 0.02, "Java");
}

ServiceProfile
goMicroProfile(const std::string &name)
{
    return base(name, 220.0, 0.20, 0.34, 0.32, 0.26, 0.02, "Go");
}

ServiceProfile
nodejsMicroProfile(const std::string &name)
{
    // Event-driven JS: large library share (V8, libuv).
    return base(name, 380.0, 0.26, 0.40, 0.28, 0.45, 0.02, "node.js");
}

ServiceProfile
pythonMicroProfile(const std::string &name)
{
    return base(name, 420.0, 0.28, 0.42, 0.25, 0.42, 0.02, "Python");
}

ServiceProfile
xapianProfile(const std::string &name)
{
    // Optimized for memory locality, small codebase: high IPC, high
    // retiring (Fig 10 Search outlier).
    return base(name, 160.0, 0.10, 0.15, 0.12, 0.20, 0.02, "C++");
}

ServiceProfile
recommenderProfile(const std::string &name)
{
    // ML inference: streams weights through the cache hierarchy.
    return base(name, 200.0, 0.08, 1.00, 0.10, 0.30, 0.00, "Python");
}

ServiceProfile
monolithProfile(const std::string &name)
{
    // All application functionality in one Java binary: multi-MiB
    // instruction footprint (Fig 11), low kernel share (one network
    // hop per request), slightly higher retiring than microservices.
    return base(name, 4200.0, 0.28, 0.40, 0.15, 0.30, 0.02, "Java");
}

ServiceProfile
queueProfile(const std::string &name)
{
    return base(name, 350.0, 0.18, 0.35, 0.45, 0.25, 0.10, "Erlang");
}

ServiceProfile
streamingProfile(const std::string &name)
{
    return base(name, 500.0, 0.15, 0.30, 0.60, 0.15, 0.50, "C");
}

} // namespace uqsim::apps
